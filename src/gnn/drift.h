#pragma once

#include <vector>

#include "gnn/trainer.h"
#include "util/binio.h"

namespace glint::gnn {

/// Algorithm 3 — Drifting Interaction Pattern Detection.
///
/// Fits class centroids and MAD statistics in the contrastive latent space
/// of a trained ITGNN-C model, then scores test samples by their minimal
/// normalized deviation across classes; samples beyond T_MAD = 3 are
/// drifting (new/evolved threat patterns outside the training
/// distribution).
class DriftDetector {
 public:
  struct Params {
    double t_mad = 3.0;  ///< empirical threshold from the paper
  };

  DriftDetector() : DriftDetector(Params()) {}
  explicit DriftDetector(Params p) : params_(p) {}

  /// Fits centroids and MADs from labeled training embeddings
  /// (lines 1-9 of Algorithm 3).
  void Fit(const std::vector<FloatVec>& embeddings,
           const std::vector<int>& labels);

  /// Drifting degree A^(m) = min_i |d_i - median_i| / MAD_i
  /// (lines 10-16).
  double DriftingDegree(const FloatVec& embedding) const;

  /// True when the sample exceeds T_MAD for every class.
  bool IsDrifting(const FloatVec& embedding) const {
    return DriftingDegree(embedding) > params_.t_mad;
  }

  /// Convenience: fit from a trained model and labeled graphs.
  void FitFromModel(GraphModel* model, const std::vector<GnnGraph>& train);

  /// Batch drift flags for unlabeled graphs.
  std::vector<bool> DetectDrifting(GraphModel* model,
                                   const std::vector<GnnGraph>& unlabeled)
      const;

  /// Appends the fitted statistics (centroids, medians, MADs) to `w` in the
  /// layout RestoreFrom reads back. The t_mad threshold is configuration,
  /// not fitted state, and is not serialized.
  void SerializeTo(util::ByteWriter* w) const;

  /// Restores statistics written by SerializeTo. Returns false on a
  /// truncated or structurally invalid payload, leaving the detector
  /// unchanged.
  bool RestoreFrom(util::ByteReader* r);

  /// True once Fit/FitFromModel/RestoreFrom has populated the statistics.
  bool fitted() const { return !centroids_.empty(); }

  const FloatVec& centroid(int cls) const { return centroids_[static_cast<size_t>(cls)]; }

 private:
  Params params_;
  std::vector<FloatVec> centroids_;      ///< per-class mean embedding
  std::vector<double> median_dist_;      ///< per-class median distance
  std::vector<double> mad_;              ///< per-class MAD
};

}  // namespace glint::gnn
