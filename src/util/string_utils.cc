#include "util/string_utils.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace glint {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(const std::string& s,
                               const std::string& delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string::npos) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  return Split(s, " \t\r\n");
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Strip(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace glint
