#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gnn/tensor.h"
#include "graph/interaction_graph.h"

namespace glint::gnn {

/// Number of node types (text-rule platforms vs voice platforms).
constexpr int kNumNodeTypes = 2;
/// Feature dimensionality per node type (300-d word vectors / 512-d
/// sentence codes).
constexpr int kTypeDims[kNumNodeTypes] = {300, 512};

/// GNN-ready representation of an interaction graph: per-type feature
/// blocks, adjacency structures, and the label.
struct GnnGraph {
  int num_nodes = 0;
  int label = 0;  ///< 1 = vulnerable

  /// Node type per node.
  std::vector<int> node_types;

  /// Per-type feature matrices. typed_features[t] has one row per node of
  /// type t; type_rows[t][k] is the original node index of row k.
  Matrix typed_features[kNumNodeTypes];
  std::vector<int> type_rows[kNumNodeTypes];

  /// Symmetrically normalized adjacency with self-loops:
  /// D^-1/2 (A + A^T + I) D^-1/2 over all nodes.
  SparseMatrix adj_norm;
  /// Raw (unnormalized, symmetrized) adjacency without self-loops.
  SparseMatrix adj_raw;
  /// Directed edges as stored in the interaction graph.
  std::vector<std::pair<int, int>> edges;

  /// Per-node neighbour lists (undirected view) for metapath sampling.
  std::vector<std::vector<int>> neighbors;

  bool IsHeterogeneous() const {
    return !type_rows[1].empty() && !type_rows[0].empty();
  }

  /// Derived per-graph operators shared by the heterogeneous models: the
  /// type-block → node-order scatter permutation and the type-restricted
  /// mean-neighbour sparse operators. They depend only on the graph
  /// structure (node_types / type_rows / neighbors), never on feature
  /// values, so they are built once on first use and shared by copies —
  /// repeated forwards over the same graph stop paying the rebuild.
  struct TypeMeta {
    std::vector<int> perm;
    SparseMatrix type_mean[kNumNodeTypes];
  };

  /// Returns the derived operators, building and caching them on first use.
  /// Safe to call concurrently on a fully-constructed graph: the first
  /// build wins (same discipline as SparseMatrix::CsrView).
  std::shared_ptr<const TypeMeta> TypeMetaView() const;

  GnnGraph() = default;
  GnnGraph(const GnnGraph& o)
      : num_nodes(o.num_nodes),
        label(o.label),
        node_types(o.node_types),
        adj_norm(o.adj_norm),
        adj_raw(o.adj_raw),
        edges(o.edges),
        neighbors(o.neighbors),
        type_meta_(o.type_meta_.load()) {
    for (int t = 0; t < kNumNodeTypes; ++t) {
      typed_features[t] = o.typed_features[t];
      type_rows[t] = o.type_rows[t];
    }
  }
  GnnGraph& operator=(const GnnGraph& o) {
    if (this == &o) return *this;
    num_nodes = o.num_nodes;
    label = o.label;
    node_types = o.node_types;
    for (int t = 0; t < kNumNodeTypes; ++t) {
      typed_features[t] = o.typed_features[t];
      type_rows[t] = o.type_rows[t];
    }
    adj_norm = o.adj_norm;
    adj_raw = o.adj_raw;
    edges = o.edges;
    neighbors = o.neighbors;
    type_meta_.store(o.type_meta_.load());
    return *this;
  }
  GnnGraph(GnnGraph&& o) noexcept
      : num_nodes(o.num_nodes),
        label(o.label),
        node_types(std::move(o.node_types)),
        adj_norm(std::move(o.adj_norm)),
        adj_raw(std::move(o.adj_raw)),
        edges(std::move(o.edges)),
        neighbors(std::move(o.neighbors)),
        type_meta_(o.type_meta_.load()) {
    for (int t = 0; t < kNumNodeTypes; ++t) {
      typed_features[t] = std::move(o.typed_features[t]);
      type_rows[t] = std::move(o.type_rows[t]);
    }
    o.num_nodes = 0;
    o.type_meta_.store(std::shared_ptr<const TypeMeta>());
  }
  GnnGraph& operator=(GnnGraph&& o) noexcept {
    if (this == &o) return *this;
    num_nodes = o.num_nodes;
    label = o.label;
    node_types = std::move(o.node_types);
    for (int t = 0; t < kNumNodeTypes; ++t) {
      typed_features[t] = std::move(o.typed_features[t]);
      type_rows[t] = std::move(o.type_rows[t]);
    }
    adj_norm = std::move(o.adj_norm);
    adj_raw = std::move(o.adj_raw);
    edges = std::move(o.edges);
    neighbors = std::move(o.neighbors);
    type_meta_.store(o.type_meta_.load());
    o.num_nodes = 0;
    o.type_meta_.store(std::shared_ptr<const TypeMeta>());
    return *this;
  }

 private:
  mutable std::atomic<std::shared_ptr<const TypeMeta>> type_meta_;
};

/// Converts an interaction graph (features already attached to nodes) into
/// the GNN representation.
GnnGraph ToGnnGraph(const graph::InteractionGraph& g);

/// Converts a whole dataset.
std::vector<GnnGraph> ToGnnGraphs(const graph::GraphDataset& ds);

/// Small exact-key LRU cache over ToGnnGraph tensorizations, used by
/// DeploymentSession so a no-change Inspect (same rules, same live edges)
/// reuses the typed feature blocks and adjacency matrices instead of
/// re-tensorizing. Keys are compared exactly (node identity hashes + the
/// directed edge list), so a hit is guaranteed to describe the same graph
/// structure — no hash-collision risk to the determinism contract. Not
/// thread-safe; each session owns one.
class GnnGraphCache {
 public:
  struct Key {
    /// Rule identity hashes in node order (graph::LiveGraph::IdentityHashes).
    std::vector<uint64_t> node_ids;
    std::vector<std::pair<int, int>> edges;
    bool operator==(const Key& o) const {
      return node_ids == o.node_ids && edges == o.edges;
    }
  };

  explicit GnnGraphCache(size_t capacity = 4) : capacity_(capacity) {}

  /// Cached tensorization for the key, or nullptr. The pointer stays valid
  /// until the entry is evicted (capacity_ inserts later at worst).
  const GnnGraph* Find(const Key& key);

  /// Inserts (evicting the least recently used entry if full) and returns
  /// the stored copy.
  const GnnGraph* Insert(Key key, GnnGraph g);

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Slot {
    Key key;
    GnnGraph graph;
    uint64_t tick = 0;
  };
  size_t capacity_;
  uint64_t tick_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Builds the normalized adjacency for an explicit edge set over n nodes.
SparseMatrix NormalizedAdjacency(int n,
                                 const std::vector<std::pair<int, int>>& edges);

/// A block-diagonal super-graph packing B member graphs for one batched
/// forward: graph b owns the contiguous node range
/// [offsets[b], offsets[b+1]). Per-type feature blocks are concatenated in
/// graph order, adjacency entries are offset-shifted copies (so the CSR row
/// of any node lists exactly its member graph's entries, in the same
/// order), and no edge crosses a segment boundary. Segment-aware ops
/// (SegmentMeanRows & co.) consume `offsets` to keep per-graph reductions
/// bit-identical to B sequential forwards.
struct GnnBatch {
  GnnGraph graph;
  std::vector<int> offsets;  ///< B+1 ascending node offsets
  int size() const { return static_cast<int>(offsets.size()) - 1; }
};

/// Packs `graphs` (each non-empty) into one block-diagonal batch. The
/// member graphs are copied; the batch does not alias them.
GnnBatch MakeGnnBatch(const std::vector<const GnnGraph*>& graphs);

}  // namespace glint::gnn
