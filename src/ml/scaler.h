#pragma once

#include <vector>

#include "util/vecmath.h"

namespace glint::ml {

/// Standardizes features to zero mean / unit variance (fit on train, apply
/// to test). Constant features are left centred with unit scale.
class StandardScaler {
 public:
  /// Computes per-dimension mean and stddev from `xs`.
  void Fit(const std::vector<FloatVec>& xs);

  /// Standardizes one vector.
  FloatVec Transform(const FloatVec& x) const;

  /// Standardizes a batch in place.
  void TransformInPlace(std::vector<FloatVec>* xs) const;

  const FloatVec& mean() const { return mean_; }
  const FloatVec& scale() const { return scale_; }

 private:
  FloatVec mean_;
  FloatVec scale_;
};

}  // namespace glint::ml
