#include <gtest/gtest.h>

#include "nlp/lexicon.h"

namespace glint::nlp {
namespace {

const Lexicon& Lex() { return Lexicon::Instance(); }

TEST(Lexicon, PosLookup) {
  EXPECT_EQ(Lex().PosOf("turn_on"), Pos::kVerb);
  EXPECT_EQ(Lex().PosOf("window"), Pos::kNoun);
  EXPECT_EQ(Lex().PosOf("the"), Pos::kDeterminer);
  EXPECT_EQ(Lex().PosOf("if"), Pos::kSconj);
  EXPECT_EQ(Lex().PosOf("above"), Pos::kAdposition);
  EXPECT_EQ(Lex().PosOf("zzz_unknown"), Pos::kOther);
}

TEST(Lexicon, PosNames) {
  EXPECT_STREQ(PosName(Pos::kNoun), "NOUN");
  EXPECT_STREQ(PosName(Pos::kVerb), "VERB");
  EXPECT_STREQ(PosName(Pos::kSconj), "SCONJ");
  EXPECT_STREQ(PosName(Pos::kProperNoun), "PROPN");
}

TEST(Lexicon, SynonymClusters) {
  EXPECT_TRUE(Lex().AreSynonyms("turn_on", "activate"));
  EXPECT_TRUE(Lex().AreSynonyms("turn_off", "deactivate"));
  EXPECT_TRUE(Lex().AreSynonyms("open", "raise"));
  EXPECT_FALSE(Lex().AreSynonyms("open", "close"));
  EXPECT_FALSE(Lex().AreSynonyms("turn_on", "turn_off"));
}

TEST(Lexicon, SynonymIsReflexive) {
  EXPECT_TRUE(Lex().AreSynonyms("window", "window"));
  // Even for words without clusters.
  EXPECT_TRUE(Lex().AreSynonyms("zzz", "zzz"));
}

TEST(Lexicon, ClusterOfUnknownIsEmpty) {
  EXPECT_TRUE(Lex().ClusterOf("zzz_unknown").empty());
}

TEST(Lexicon, HypernymDirect) {
  EXPECT_TRUE(Lex().IsHypernym("light", "bulb"));
  EXPECT_TRUE(Lex().IsHypernym("sensor", "motion_sensor"));
  EXPECT_TRUE(Lex().IsHypernym("appliance", "ac"));
  EXPECT_FALSE(Lex().IsHypernym("bulb", "light"));  // direction matters
}

TEST(Lexicon, HypernymTransitive) {
  // bulb -> light -> device
  EXPECT_TRUE(Lex().IsHypernym("device", "bulb"));
  EXPECT_TRUE(Lex().IsHypernym("device", "smoke_alarm"));
}

TEST(Lexicon, HypernymRelatedSiblings) {
  // ac and heater share the "appliance" parent.
  EXPECT_TRUE(Lex().HypernymRelated("ac", "heater"));
  EXPECT_TRUE(Lex().HypernymRelated("window", "door"));  // both openings
}

TEST(Lexicon, MeronymDirect) {
  EXPECT_TRUE(Lex().IsMeronym("lock", "door"));
  EXPECT_TRUE(Lex().IsMeronym("light", "room"));
  EXPECT_FALSE(Lex().IsMeronym("door", "lock"));
}

TEST(Lexicon, MeronymTransitive) {
  // lock is part of door; door is part of house.
  EXPECT_TRUE(Lex().IsMeronym("lock", "house"));
  EXPECT_TRUE(Lex().IsMeronym("light", "house"));  // via room
}

TEST(Lexicon, MeronymRelatedEitherDirection) {
  EXPECT_TRUE(Lex().MeronymRelated("door", "lock"));
  EXPECT_TRUE(Lex().MeronymRelated("lock", "door"));
  EXPECT_FALSE(Lex().MeronymRelated("lock", "oven"));
}

TEST(Lexicon, Channels) {
  EXPECT_EQ(Lex().ChannelOf("thermostat"), "temperature");
  EXPECT_EQ(Lex().ChannelOf("heater"), "temperature");
  EXPECT_EQ(Lex().ChannelOf("smoke_alarm"), "smoke");
  EXPECT_EQ(Lex().ChannelOf("motion_sensor"), "motion");
  EXPECT_EQ(Lex().ChannelOf("email"), "digital");
  EXPECT_TRUE(Lex().ChannelOf("zzz_unknown").empty());
}

TEST(Lexicon, ChannelLinksActuatorsToSensors) {
  // The correlation features rely on heater/temperature sharing a channel.
  EXPECT_EQ(Lex().ChannelOf("heater"), Lex().ChannelOf("temperature"));
  EXPECT_EQ(Lex().ChannelOf("humidifier"), Lex().ChannelOf("humidity"));
}

TEST(Lexicon, NamedEntities) {
  EXPECT_TRUE(Lex().IsNamedEntity("wyze"));
  EXPECT_TRUE(Lex().IsNamedEntity("philips"));
  EXPECT_FALSE(Lex().IsNamedEntity("window"));
}

TEST(Lexicon, StopWords) {
  EXPECT_TRUE(Lex().IsStopWord("the"));
  EXPECT_TRUE(Lex().IsStopWord("is"));
  EXPECT_FALSE(Lex().IsStopWord("window"));
}

TEST(Lexicon, VocabularyIsSubstantial) {
  EXPECT_GT(Lex().Words().size(), 200u);
}

TEST(Lexicon, EveryClusterWordIsKnown) {
  // Words used in synonym clusters must resolve in the POS dictionary so
  // the tagger treats them consistently.
  for (const char* w : {"activate", "deactivate", "shut", "secure",
                        "unlatch", "brighten"}) {
    EXPECT_TRUE(Lex().Contains(w)) << w;
  }
}

}  // namespace
}  // namespace glint::nlp
