#pragma once

#include <vector>

#include "util/rng.h"
#include "util/vecmath.h"

namespace glint::ml {

/// A labeled feature-vector dataset for the classic ML substrate.
struct Dataset {
  std::vector<FloatVec> x;
  std::vector<int> y;

  size_t size() const { return x.size(); }
  size_t dim() const { return x.empty() ? 0 : x[0].size(); }

  void Add(FloatVec features, int label) {
    x.push_back(std::move(features));
    y.push_back(label);
  }

  /// Subset by indices.
  Dataset Select(const std::vector<size_t>& idx) const {
    Dataset out;
    out.x.reserve(idx.size());
    out.y.reserve(idx.size());
    for (size_t i : idx) {
      out.x.push_back(x[i]);
      out.y.push_back(y[i]);
    }
    return out;
  }

  /// Number of distinct classes (assumes labels are 0..k-1).
  int NumClasses() const {
    int k = 0;
    for (int label : y) k = std::max(k, label + 1);
    return k;
  }
};

/// Random train/test split with the given train fraction.
struct Split {
  Dataset train;
  Dataset test;
};
inline Split TrainTestSplit(const Dataset& d, double train_frac, Rng* rng) {
  std::vector<size_t> idx(d.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng->Shuffle(&idx);
  size_t n_train = static_cast<size_t>(train_frac * static_cast<double>(idx.size()));
  Split s;
  s.train = d.Select({idx.begin(), idx.begin() + static_cast<long>(n_train)});
  s.test = d.Select({idx.begin() + static_cast<long>(n_train), idx.end()});
  return s;
}

/// Class weights inversely proportional to class frequencies
/// (scikit-learn's "balanced" mode): w_c = n / (k * n_c).
inline std::vector<double> BalancedClassWeights(const std::vector<int>& y,
                                                int num_classes) {
  std::vector<double> counts(static_cast<size_t>(num_classes), 0.0);
  for (int label : y) counts[static_cast<size_t>(label)] += 1.0;
  std::vector<double> w(static_cast<size_t>(num_classes), 1.0);
  const double n = static_cast<double>(y.size());
  for (int c = 0; c < num_classes; ++c) {
    if (counts[static_cast<size_t>(c)] > 0) {
      w[static_cast<size_t>(c)] = n / (num_classes * counts[static_cast<size_t>(c)]);
    }
  }
  return w;
}

/// Random oversampling of the minority class until its count reaches
/// `target_ratio` times the majority count (paper: doubled minority).
inline Dataset Oversample(const Dataset& d, int minority_class, double factor,
                          Rng* rng) {
  Dataset out = d;
  std::vector<size_t> minority_idx;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d.y[i] == minority_class) minority_idx.push_back(i);
  }
  if (minority_idx.empty()) return out;
  size_t extra = static_cast<size_t>(
      (factor - 1.0) * static_cast<double>(minority_idx.size()));
  for (size_t k = 0; k < extra; ++k) {
    size_t i = minority_idx[rng->Below(minority_idx.size())];
    out.Add(d.x[i], d.y[i]);
  }
  return out;
}

}  // namespace glint::ml
