#pragma once

#include <string>
#include <vector>

#include "nlp/embedding.h"
#include "util/vecmath.h"

namespace glint::nlp {

/// Dynamic time warping distance between two sequences under an arbitrary
/// pairwise cost. Used by Algorithm 1 (line 4) to compare the verb/object
/// sequences of a trigger and an action, whose lengths vary.
///
/// `cost[i][j]` must be the alignment cost of a[i] with b[j]. Returns the
/// minimal cumulative alignment cost; empty-vs-nonempty costs the sum of the
/// other sequence aligned to nothing at `gap_cost` each, empty-vs-empty is 0.
double DtwDistance(const std::vector<std::vector<double>>& cost,
                   double gap_cost = 1.0);

/// DTW over scalar sequences with |a_i - b_j| cost (for tests/properties).
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b);

/// DTW over word sequences with (1 - cosine similarity) cost in the given
/// embedding model; normalised by the warping path length so values are
/// comparable across sequence lengths.
double DtwWordDistance(const std::vector<std::string>& a,
                       const std::vector<std::string>& b,
                       const EmbeddingModel& model);

}  // namespace glint::nlp
