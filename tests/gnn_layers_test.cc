// Unit tests for the GNN layer primitives: Linear, the convolutions,
// semantic attention, VIPool, and the metapath converter.

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/metapath.h"

namespace glint::gnn {
namespace {

Matrix Rand(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (auto& v : m.data) v = static_cast<float>(rng.Gaussian());
  return m;
}

SparseMatrix ChainAdjNorm(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return NormalizedAdjacency(n, edges);
}

SparseMatrix ChainAdjRaw(int n) {
  SparseMatrix adj;
  adj.rows = n;
  adj.cols = n;
  for (int i = 0; i + 1 < n; ++i) {
    adj.entries.push_back({i, i + 1, 1.f});
    adj.entries.push_back({i + 1, i, 1.f});
  }
  return adj;
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

TEST(LinearLayer, ShapesAndBias) {
  Rng rng(1);
  Linear lin(3, 5, &rng);
  EXPECT_EQ(lin.in_dim(), 3);
  EXPECT_EQ(lin.out_dim(), 5);
  Tape t;
  Tensor* y = lin.Forward(&t, t.Constant(Matrix(2, 3, 0.f)));
  EXPECT_EQ(y->rows(), 2);
  EXPECT_EQ(y->cols(), 5);
  // Zero input -> bias (zero-initialized) output.
  for (float v : y->value.data) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(LinearLayer, FreezeTogglesParameters) {
  Rng rng(2);
  Linear lin(2, 2, &rng);
  lin.SetFrozen(true);
  for (Parameter* p : lin.Parameters()) EXPECT_TRUE(p->frozen);
  lin.SetFrozen(false);
  for (Parameter* p : lin.Parameters()) EXPECT_FALSE(p->frozen);
}

// ---------------------------------------------------------------------------
// Convolutions
// ---------------------------------------------------------------------------

TEST(Convolutions, GcnOutputsNonNegative) {
  Rng rng(3);
  GcnConv conv(4, 8, &rng);
  Tape t;
  Tensor* h = conv.Forward(&t, ChainAdjNorm(5), t.Constant(Rand(5, 4, 9)));
  EXPECT_EQ(h->rows(), 5);
  EXPECT_EQ(h->cols(), 8);
  for (float v : h->value.data) EXPECT_GE(v, 0.f);  // ReLU output
}

TEST(Convolutions, GcnMixesNeighbourInformation) {
  // With a chain graph, perturbing node 0's features must change node 1's
  // output (message passing) but not node 4's in a single layer... node 4
  // is 4 hops away, so one conv layer cannot reach it.
  Rng rng(4);
  GcnConv conv(2, 4, &rng);
  Matrix x = Rand(5, 2, 10);
  Tape t1;
  Tensor* base = conv.Forward(&t1, ChainAdjNorm(5), t1.Constant(x));
  Matrix x2 = x;
  x2.At(0, 0) += 5.f;
  Tape t2;
  Tensor* pert = conv.Forward(&t2, ChainAdjNorm(5), t2.Constant(x2));
  double delta1 = 0, delta4 = 0;
  for (int j = 0; j < 4; ++j) {
    delta1 += std::fabs(base->value.At(1, j) - pert->value.At(1, j));
    delta4 += std::fabs(base->value.At(4, j) - pert->value.At(4, j));
  }
  EXPECT_GT(delta1, 1e-4);
  EXPECT_NEAR(delta4, 0.0, 1e-6);
}

TEST(Convolutions, GinAndTagShapes) {
  Rng rng(5);
  GinConv gin(4, 6, &rng);
  TagConv tag(4, 6, 2, &rng);
  Tape t;
  Tensor* x = t.Constant(Rand(5, 4, 11));
  EXPECT_EQ(gin.Forward(&t, ChainAdjRaw(5), x)->cols(), 6);
  EXPECT_EQ(tag.Forward(&t, ChainAdjNorm(5), x)->cols(), 6);
}

TEST(Convolutions, TagHopsExpandReceptiveField) {
  // A K-hop TAG conv reaches K steps along the chain in one layer.
  Rng rng(6);
  TagConv tag(2, 4, 3, &rng);
  Matrix x = Rand(6, 2, 12);
  Tape t1;
  Tensor* base = tag.Forward(&t1, ChainAdjNorm(6), t1.Constant(x));
  Matrix x2 = x;
  x2.At(0, 0) += 5.f;
  Tape t2;
  Tensor* pert = tag.Forward(&t2, ChainAdjNorm(6), t2.Constant(x2));
  double delta3 = 0, delta5 = 0;
  for (int j = 0; j < 4; ++j) {
    delta3 += std::fabs(base->value.At(3, j) - pert->value.At(3, j));
    delta5 += std::fabs(base->value.At(5, j) - pert->value.At(5, j));
  }
  EXPECT_GT(delta3, 1e-5);         // 3 hops: reachable
  EXPECT_NEAR(delta5, 0.0, 1e-6);  // 5 hops: out of range
}

// ---------------------------------------------------------------------------
// Semantic attention
// ---------------------------------------------------------------------------

TEST(SemanticAttentionLayer, OutputIsConvexishCombination) {
  Rng rng(7);
  SemanticAttention att(3, 2, &rng);
  Tape t;
  // Two constant paths with distinct values.
  Tensor* p0 = t.Constant(Matrix(4, 3, 1.f));
  Tensor* p1 = t.Constant(Matrix(4, 3, 3.f));
  Tensor* out = att.Forward(&t, {p0, p1});
  ASSERT_EQ(out->rows(), 4);
  for (float v : out->value.data) {
    EXPECT_GE(v, 1.f - 1e-5);
    EXPECT_LE(v, 3.f + 1e-5);
  }
}

TEST(SemanticAttentionLayer, SinglePathIsIdentity) {
  Rng rng(8);
  SemanticAttention att(3, 1, &rng);
  Tape t;
  Tensor* p0 = t.Constant(Rand(4, 3, 13));
  EXPECT_EQ(att.Forward(&t, {p0}), p0);
}

// ---------------------------------------------------------------------------
// VIPool
// ---------------------------------------------------------------------------

TEST(VIPoolLayer, KeepsRequestedFraction) {
  Rng rng(9);
  VIPool pool(4, 0.5, &rng);
  Tape t;
  auto result = pool.Forward(&t, ChainAdjNorm(8), ChainAdjRaw(8),
                             t.Constant(Rand(8, 4, 14)));
  EXPECT_EQ(result.kept.size(), 4u);  // ceil(0.5 * 8)
  EXPECT_EQ(result.features->rows(), 4);
  EXPECT_NE(result.graph_logit, nullptr);
  // Kept indices are valid and strictly increasing.
  for (size_t i = 1; i < result.kept.size(); ++i) {
    EXPECT_LT(result.kept[i - 1], result.kept[i]);
  }
}

TEST(VIPoolLayer, RatioOneKeepsEverything) {
  Rng rng(10);
  VIPool pool(4, 1.0, &rng);
  Tape t;
  auto result = pool.Forward(&t, ChainAdjNorm(5), ChainAdjRaw(5),
                             t.Constant(Rand(5, 4, 15)));
  EXPECT_EQ(result.kept.size(), 5u);
}

TEST(VIPoolLayer, SingleNodeGraphSafe) {
  Rng rng(11);
  VIPool pool(4, 0.6, &rng);
  Tape t;
  auto result = pool.Forward(&t, ChainAdjNorm(1), ChainAdjRaw(1),
                             t.Constant(Rand(1, 4, 16)));
  EXPECT_EQ(result.kept.size(), 1u);
}

TEST(VIPoolLayer, TwoHopConnectivityPreserved) {
  // Pooling a chain must not fully disconnect it: consecutive kept nodes
  // within 2 hops get an edge.
  Rng rng(12);
  VIPool pool(4, 0.5, &rng);
  Tape t;
  auto result = pool.Forward(&t, ChainAdjNorm(6), ChainAdjRaw(6),
                             t.Constant(Rand(6, 4, 17)));
  // If two kept nodes are adjacent-or-2-hop in the original chain, the
  // pooled adjacency must contain at least one edge when > 1 node kept.
  bool any_close = false;
  for (size_t i = 1; i < result.kept.size(); ++i) {
    if (result.kept[i] - result.kept[i - 1] <= 2) any_close = true;
  }
  if (any_close) {
    EXPECT_FALSE(result.adj_raw.entries.empty());
  }
}

// ---------------------------------------------------------------------------
// Metapath converter
// ---------------------------------------------------------------------------

GnnGraph MixedGraph() {
  GnnGraph g;
  g.num_nodes = 3;
  g.node_types = {0, 1, 0};
  g.type_rows[0] = {0, 2};
  g.type_rows[1] = {1};
  g.typed_features[0] = Matrix(2, kTypeDims[0], 0.5f);
  g.typed_features[1] = Matrix(1, kTypeDims[1], -0.5f);
  g.edges = {{0, 1}, {1, 2}};
  g.adj_norm = NormalizedAdjacency(3, g.edges);
  g.adj_raw.rows = 3;
  g.adj_raw.cols = 3;
  g.neighbors = {{1}, {0, 2}, {1}};
  return g;
}

TEST(MetapathConverterLayer, ProjectsToSharedSpaceInNodeOrder) {
  Rng rng(13);
  MetapathConverter conv({16, true, true}, &rng);
  Tape t;
  GnnGraph g = MixedGraph();
  Tensor* h = conv.Forward(&t, g);
  EXPECT_EQ(h->rows(), 3);
  EXPECT_EQ(h->cols(), 16);
  // Nodes 0 and 2 share the same type and identical raw features but have
  // different neighbourhood types; with intra aggregation their outputs
  // may differ — but under full ablation they must be identical.
  Rng rng2(13);
  MetapathConverter plain({16, false, false}, &rng2);
  Tape t2;
  Tensor* h2 = plain.Forward(&t2, g);
  for (int j = 0; j < 16; ++j) {
    EXPECT_NEAR(h2->value.At(0, j), h2->value.At(2, j), 1e-5);
  }
}

TEST(MetapathConverterLayer, HandlesSingleTypeGraphs) {
  Rng rng(14);
  MetapathConverter conv({16, true, true}, &rng);
  GnnGraph g;
  g.num_nodes = 2;
  g.node_types = {0, 0};
  g.type_rows[0] = {0, 1};
  g.typed_features[0] = Matrix(2, kTypeDims[0], 0.3f);
  g.edges = {{0, 1}};
  g.adj_norm = NormalizedAdjacency(2, g.edges);
  g.adj_raw.rows = 2;
  g.adj_raw.cols = 2;
  g.neighbors = {{1}, {0}};
  Tape t;
  Tensor* h = conv.Forward(&t, g);
  EXPECT_EQ(h->rows(), 2);
  for (float v : h->value.data) EXPECT_FALSE(std::isnan(v));
}

TEST(MetapathConverterLayer, ParametersIncludeAllSubmodules) {
  Rng rng(15);
  MetapathConverter conv({16, true, true}, &rng);
  // 2 projections + 2 intra + self + attention(summar + q) = 2*2+2*2+2+3
  EXPECT_EQ(conv.Parameters().size(), 13u);
}

}  // namespace
}  // namespace glint::gnn
