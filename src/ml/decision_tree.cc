#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace glint::ml {
namespace {

double GiniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

int DecisionTree::Build(const std::vector<FloatVec>& x,
                        const std::vector<double>& target,
                        const std::vector<int>& labels,
                        const std::vector<double>& weights,
                        std::vector<size_t> idx, int depth,
                        bool classification, int num_classes, Rng* rng) {
  Node node;
  // Leaf statistics.
  if (classification) {
    node.dist.assign(static_cast<size_t>(num_classes), 0.0);
    for (size_t i : idx) {
      const double w = weights.empty() ? 1.0 : weights[i];
      node.dist[static_cast<size_t>(labels[i])] += w;
    }
    double total = 0;
    for (double d : node.dist) total += d;
    if (total > 0) {
      for (double& d : node.dist) d /= total;
    }
  } else {
    double sum = 0;
    for (size_t i : idx) sum += target[i];
    node.value = idx.empty() ? 0 : sum / static_cast<double>(idx.size());
  }

  auto make_leaf = [&]() {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (depth >= params_.max_depth ||
      idx.size() < static_cast<size_t>(2 * params_.min_samples_leaf)) {
    return make_leaf();
  }
  // Pure node?
  if (classification) {
    int nonzero = 0;
    for (double d : node.dist) nonzero += d > 0 ? 1 : 0;
    if (nonzero <= 1) return make_leaf();
  }

  const size_t dim = x[0].size();
  size_t n_feats = dim;
  if (params_.max_features > 0) {
    n_feats = std::min<size_t>(dim, static_cast<size_t>(params_.max_features));
  } else if (params_.max_features < 0) {
    n_feats = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(dim))));
  }
  std::vector<size_t> feats(dim);
  for (size_t f = 0; f < dim; ++f) feats[f] = f;
  if (n_feats < dim) rng->Shuffle(&feats);

  double best_score = -1;
  int best_feature = -1;
  float best_threshold = 0;

  std::vector<std::pair<float, size_t>> sorted;
  sorted.reserve(idx.size());

  for (size_t fi = 0; fi < n_feats; ++fi) {
    const size_t f = feats[fi];
    sorted.clear();
    for (size_t i : idx) sorted.emplace_back(x[i][f], i);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    if (classification) {
      std::vector<double> left_counts(static_cast<size_t>(num_classes), 0.0);
      std::vector<double> right_counts(static_cast<size_t>(num_classes), 0.0);
      double left_total = 0, right_total = 0;
      for (size_t i : idx) {
        const double w = weights.empty() ? 1.0 : weights[i];
        right_counts[static_cast<size_t>(labels[i])] += w;
        right_total += w;
      }
      const double parent_gini = GiniFromCounts(right_counts, right_total);
      for (size_t s = 0; s + 1 < sorted.size(); ++s) {
        const size_t i = sorted[s].second;
        const double w = weights.empty() ? 1.0 : weights[i];
        left_counts[static_cast<size_t>(labels[i])] += w;
        left_total += w;
        right_counts[static_cast<size_t>(labels[i])] -= w;
        right_total -= w;
        if (sorted[s].first == sorted[s + 1].first) continue;
        if (s + 1 < static_cast<size_t>(params_.min_samples_leaf) ||
            sorted.size() - s - 1 <
                static_cast<size_t>(params_.min_samples_leaf)) {
          continue;
        }
        const double total = left_total + right_total;
        const double gain =
            parent_gini -
            (left_total / total) * GiniFromCounts(left_counts, left_total) -
            (right_total / total) * GiniFromCounts(right_counts, right_total);
        if (gain > best_score) {
          best_score = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5f * (sorted[s].first + sorted[s + 1].first);
        }
      }
    } else {
      // Regression: maximise variance reduction via running sums.
      double right_sum = 0, right_sq = 0;
      for (size_t i : idx) {
        right_sum += target[i];
        right_sq += target[i] * target[i];
      }
      double left_sum = 0, left_sq = 0;
      const double n = static_cast<double>(idx.size());
      const double parent_sse = right_sq - right_sum * right_sum / n;
      for (size_t s = 0; s + 1 < sorted.size(); ++s) {
        const double t = target[sorted[s].second];
        left_sum += t;
        left_sq += t * t;
        right_sum -= t;
        right_sq -= t * t;
        if (sorted[s].first == sorted[s + 1].first) continue;
        const double nl = static_cast<double>(s + 1);
        const double nr = n - nl;
        if (nl < params_.min_samples_leaf || nr < params_.min_samples_leaf) {
          continue;
        }
        const double sse_l = left_sq - left_sum * left_sum / nl;
        const double sse_r = right_sq - right_sum * right_sum / nr;
        const double gain = parent_sse - sse_l - sse_r;
        if (gain > best_score) {
          best_score = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5f * (sorted[s].first + sorted[s + 1].first);
        }
      }
    }
  }

  if (best_feature < 0 || best_score <= 1e-12) return make_leaf();

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : idx) {
    if (x[i][static_cast<size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const int self = static_cast<int>(nodes_.size() - 1);
  const int left = Build(x, target, labels, weights, std::move(left_idx),
                         depth + 1, classification, num_classes, rng);
  const int right = Build(x, target, labels, weights, std::move(right_idx),
                          depth + 1, classification, num_classes, rng);
  nodes_[static_cast<size_t>(self)].left = left;
  nodes_[static_cast<size_t>(self)].right = right;
  return self;
}

void DecisionTree::FitClassifier(const std::vector<FloatVec>& x,
                                 const std::vector<int>& y,
                                 const std::vector<double>& sample_weights,
                                 int num_classes) {
  GLINT_CHECK(!x.empty() && x.size() == y.size());
  nodes_.clear();
  Rng rng(params_.seed);
  std::vector<size_t> idx(x.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Build(x, {}, y, sample_weights, std::move(idx), 0, /*classification=*/true,
        num_classes, &rng);
}

void DecisionTree::FitRegressor(const std::vector<FloatVec>& x,
                                const std::vector<double>& targets) {
  GLINT_CHECK(!x.empty() && x.size() == targets.size());
  nodes_.clear();
  Rng rng(params_.seed);
  std::vector<size_t> idx(x.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Build(x, targets, {}, {}, std::move(idx), 0, /*classification=*/false, 0,
        &rng);
}

const DecisionTree::Node& DecisionTree::Leaf(const FloatVec& x) const {
  GLINT_CHECK(!nodes_.empty());
  // Root is node 0 (built first).
  size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    cur = static_cast<size_t>(
        x[static_cast<size_t>(nodes_[cur].feature)] <= nodes_[cur].threshold
            ? nodes_[cur].left
            : nodes_[cur].right);
  }
  return nodes_[cur];
}

int DecisionTree::PredictClass(const FloatVec& x) const {
  const auto& dist = Leaf(x).dist;
  int best = 0;
  for (size_t c = 1; c < dist.size(); ++c) {
    if (dist[c] > dist[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

const std::vector<double>& DecisionTree::PredictDistribution(
    const FloatVec& x) const {
  return Leaf(x).dist;
}

double DecisionTree::PredictValue(const FloatVec& x) const {
  return Leaf(x).value;
}

int DecisionTree::Depth() const {
  if (nodes_.empty()) return -1;
  // Iterative depth computation from the root.
  struct Item { size_t node; int depth; };
  std::vector<Item> stack{{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, it.depth);
    const Node& n = nodes_[it.node];
    if (n.feature >= 0) {
      stack.push_back({static_cast<size_t>(n.left), it.depth + 1});
      stack.push_back({static_cast<size_t>(n.right), it.depth + 1});
    }
  }
  return max_depth;
}

// ---------------------------------------------------------------------------
// RandomForest
// ---------------------------------------------------------------------------

void RandomForest::Fit(const Dataset& data,
                       const std::vector<double>& class_weights) {
  GLINT_CHECK(data.size() > 0);
  num_classes_ = std::max(2, data.NumClasses());
  trees_.clear();
  Rng rng(params_.seed);
  std::vector<double> sample_weights(data.size(), 1.0);
  if (!class_weights.empty()) {
    for (size_t i = 0; i < data.size(); ++i) {
      sample_weights[i] = class_weights[static_cast<size_t>(data.y[i])];
    }
  }
  for (int t = 0; t < params_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<FloatVec> bx;
    std::vector<int> by;
    std::vector<double> bw;
    bx.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      const size_t j = rng.Below(data.size());
      bx.push_back(data.x[j]);
      by.push_back(data.y[j]);
      bw.push_back(sample_weights[j]);
    }
    DecisionTree::Params tp;
    tp.max_depth = params_.max_depth;
    tp.min_samples_leaf = params_.min_samples_leaf;
    tp.max_features = -1;  // sqrt(dim) random subspace
    tp.seed = rng.NextU64();
    DecisionTree tree(tp);
    tree.FitClassifier(bx, by, bw, num_classes_);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::Predict(const FloatVec& x) const {
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto& dist = tree.PredictDistribution(x);
    for (size_t c = 0; c < dist.size(); ++c) votes[c] += dist[c];
  }
  int best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

double RandomForest::PredictProba(const FloatVec& x) const {
  double p = 0;
  for (const auto& tree : trees_) {
    const auto& dist = tree.PredictDistribution(x);
    if (dist.size() > 1) p += dist[1];
  }
  return trees_.empty() ? 0 : p / static_cast<double>(trees_.size());
}

// ---------------------------------------------------------------------------
// GradientBoosting
// ---------------------------------------------------------------------------

void GradientBoosting::Fit(const Dataset& data,
                           const std::vector<double>& class_weights) {
  GLINT_CHECK(data.size() > 0);
  trees_.clear();
  // Initial score: log-odds of the positive class.
  double pos = 0;
  for (int y : data.y) pos += y == 1 ? 1 : 0;
  double p = std::clamp(pos / static_cast<double>(data.size()), 1e-4, 1 - 1e-4);
  base_score_ = std::log(p / (1 - p));

  std::vector<double> raw(data.size(), base_score_);
  Rng rng(params_.seed);
  for (int round = 0; round < params_.num_rounds; ++round) {
    // Negative gradient of the class-weighted logistic loss.
    std::vector<double> grad(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      const double yi = data.y[i] == 1 ? 1.0 : 0.0;
      const double pi = 1.0 / (1.0 + std::exp(-raw[i]));
      const double cw =
          class_weights.empty() ? 1.0
                                : class_weights[static_cast<size_t>(data.y[i])];
      grad[i] = cw * (yi - pi);
    }
    DecisionTree::Params tp;
    tp.max_depth = params_.max_depth;
    tp.min_samples_leaf = 3;
    tp.seed = rng.NextU64();
    DecisionTree tree(tp);
    tree.FitRegressor(data.x, grad);
    for (size_t i = 0; i < data.size(); ++i) {
      raw[i] += params_.learning_rate * tree.PredictValue(data.x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoosting::RawScore(const FloatVec& x) const {
  double s = base_score_;
  for (const auto& tree : trees_) {
    s += params_.learning_rate * tree.PredictValue(x);
  }
  return s;
}

int GradientBoosting::Predict(const FloatVec& x) const {
  return RawScore(x) >= 0 ? 1 : 0;
}

double GradientBoosting::PredictProba(const FloatVec& x) const {
  return 1.0 / (1.0 + std::exp(-RawScore(x)));
}

}  // namespace glint::ml
