// Property suite for ServingEngine::InspectAllBatched: for every batch
// size, thread count and kernel backend, the batched fleet inspection must
// be *bit-identical* to the sequential InspectAll — same verdicts, same
// confidences (compared as hex doubles), same explainer culprits, same
// rendered warnings — and the per-home verdict/tensor caches must end up
// in the same state (AggregateStats equality, verdict hits on re-inspect).
// A recovery leg runs the same equivalence through a durable engine with
// an injected WAL append failure and a post-snapshot Recover().

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/glint.h"
#include "core/serving.h"
#include "core/session.h"
#include "gnn/kernels.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace glint::core {
namespace {

// One small trained detector shared by every test here; quality is
// irrelevant — equivalence only depends on the computation graph.
class BatchedServingTest : public ::testing::Test {
 public:  // helpers are shared with the free RunEquivalenceScript driver
  static void SetUpTestSuite() {
    Glint::Options opts;
    opts.corpus.ifttt = 200;
    opts.corpus.smartthings = 40;
    opts.corpus.alexa = 60;
    opts.corpus.google_assistant = 40;
    opts.corpus.home_assistant = 40;
    opts.num_training_graphs = 40;
    opts.builder.max_nodes = 8;
    opts.model.num_scales = 2;
    opts.model.embed_dim = 32;
    opts.train.epochs = 2;
    opts.pairs.num_positive = 60;
    opts.pairs.num_negative = 90;
    glint_ = new Glint(opts);
    glint_->TrainOffline();
  }

  void SetUp() override { fault::Registry::Global().Clear(); }
  void TearDown() override {
    fault::Registry::Global().Clear();
    ThreadPool::SetGlobalThreads(ThreadPool::ConfiguredThreads());
    gnn::kernels::SetBackend(gnn::kernels::AvailableBackends().back());
  }

  static std::vector<rules::Rule> HomeRules(int n, int base_id = 9000) {
    std::vector<rules::Rule> out(
        glint_->corpus().begin(),
        glint_->corpus().begin() +
            std::min<size_t>(static_cast<size_t>(n),
                             glint_->corpus().size()));
    for (size_t i = 0; i < out.size(); ++i) {
      out[i].id = base_id + static_cast<int>(i);
    }
    return out;
  }

  static graph::Event EventFor(const rules::Rule& r, double t) {
    graph::Event e;
    e.time_hours = t;
    e.location = r.location;
    e.device = r.trigger.device;
    e.state = r.trigger.state;
    return e;
  }

  /// Hex-exact fingerprint of a warning: flips in any bit of the verdict,
  /// confidence, or explainer output change the string.
  static std::string Fp(const ThreatWarning& w) {
    char buf[64];
    std::string out;
    out += w.threat ? "T" : "t";
    out += w.drifting ? "D" : "d";
    std::snprintf(buf, sizeof buf, " %.17a", w.confidence);
    out += buf;
    for (auto ty : w.types) {
      std::snprintf(buf, sizeof buf, " y%d", static_cast<int>(ty));
      out += buf;
    }
    for (const auto& c : w.culprits) {
      std::snprintf(buf, sizeof buf, " [%d %.17a ", c.node, c.importance);
      out += buf;
      out += c.platform + " " + c.rule_text + "]";
    }
    out += "\n" + w.Render();
    return out;
  }

  static std::string Fp(const std::vector<ThreatWarning>& ws) {
    std::string out;
    for (const auto& w : ws) out += Fp(w) + "\n---\n";
    return out;
  }

  static std::string StatsFp(const DeploymentSession::CacheStats& s) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "inspects=%llu events=%llu rules=%llu vh=%llu vm=%llu "
                  "th=%llu tm=%llu",
                  (unsigned long long)s.inspects, (unsigned long long)s.events,
                  (unsigned long long)s.rules,
                  (unsigned long long)s.verdict_hits,
                  (unsigned long long)s.verdict_misses,
                  (unsigned long long)s.tensor_hits,
                  (unsigned long long)s.tensor_misses);
    return buf;
  }

  /// Registers the same small fleet into `eng`: homes with different rule
  /// counts (1-rule through 7-rule graphs) so super-graph segments have
  /// heterogeneous sizes.
  static void BuildFleet(ServingEngine* eng) {
    const int counts[] = {3, 5, 2, 7, 1, 4, 6, 3};
    int base = 9000;
    for (int n : counts) {
      eng->AddHome(HomeRules(n, base));
      base += 100;
    }
  }

  /// Fires one round of events (a subset of homes, trigger events derived
  /// from their own rules) so graphs drift apart between inspections.
  static void FireRound(ServingEngine* eng, int round, double t) {
    const int counts[] = {3, 5, 2, 7, 1, 4, 6, 3};
    for (int h = 0; h < 8; ++h) {
      if ((h + round) % 3 == 0) continue;  // skip some homes each round
      auto rules = HomeRules(counts[h], 9000 + 100 * h);
      const auto& r = rules[static_cast<size_t>(round) % rules.size()];
      eng->OnEvent(h, EventFor(r, t));
    }
  }

  static Glint* glint_;
};

Glint* BatchedServingTest::glint_ = nullptr;

/// Drives two engines (one sequential, one batched with `max_batch`)
/// through an identical script and asserts bit-identical warnings and
/// identical aggregate cache counters after every round.
void RunEquivalenceScript(Glint* glint, int max_batch) {
  ServingEngine seq(&glint->detector());
  ServingEngine bat(&glint->detector());
  BatchedServingTest::BuildFleet(&seq);
  BatchedServingTest::BuildFleet(&bat);

  double now = 1.0;
  for (int round = 0; round < 3; ++round) {
    BatchedServingTest::FireRound(&seq, round, now - 0.25);
    BatchedServingTest::FireRound(&bat, round, now - 0.25);
    const auto ws = seq.InspectAll(now);
    const auto wb = bat.InspectAllBatched(now, max_batch);
    ASSERT_EQ(ws.size(), wb.size());
    EXPECT_EQ(BatchedServingTest::Fp(ws), BatchedServingTest::Fp(wb))
        << "round " << round << " max_batch " << max_batch;
    EXPECT_EQ(BatchedServingTest::StatsFp(seq.AggregateStats()),
              BatchedServingTest::StatsFp(bat.AggregateStats()))
        << "round " << round << " max_batch " << max_batch;
    now += 1.0;
  }

  // Re-inspect at the same instant: every home must serve its warning from
  // the verdict cache on both sides — FinishInspect left the batched
  // caches in the same state the sequential path did.
  const double pre_hits_now = now - 1.0;
  const auto s0 = bat.AggregateStats();
  const auto ws = seq.InspectAll(pre_hits_now);
  const auto wb = bat.InspectAllBatched(pre_hits_now, max_batch);
  EXPECT_EQ(BatchedServingTest::Fp(ws), BatchedServingTest::Fp(wb));
  const auto s1 = bat.AggregateStats();
  EXPECT_EQ(s1.verdict_hits - s0.verdict_hits, bat.num_homes());
  EXPECT_EQ(BatchedServingTest::StatsFp(seq.AggregateStats()),
            BatchedServingTest::StatsFp(s1));
}

TEST_F(BatchedServingTest, MatchesSequentialAcrossBatchSizes) {
  // max_batch 1 (every super-graph is one graph), tiny batches that split
  // the fleet unevenly, and one covering the whole fleet.
  for (int max_batch : {1, 2, 3, 256}) {
    RunEquivalenceScript(glint_, max_batch);
    if (HasFatalFailure()) return;
  }
}

TEST_F(BatchedServingTest, MatchesSequentialAcrossThreadCounts) {
  for (int threads : {1, 2, 4}) {
    ThreadPool::SetGlobalThreads(threads);
    RunEquivalenceScript(glint_, 3);
    if (HasFatalFailure()) return;
  }
}

TEST_F(BatchedServingTest, MatchesSequentialOnForcedScalarBackend) {
  ASSERT_TRUE(gnn::kernels::SetBackend(gnn::kernels::Backend::kScalar));
  RunEquivalenceScript(glint_, 256);
}

TEST_F(BatchedServingTest, SingleHomeAndEmptyFleet) {
  ServingEngine eng(&glint_->detector());
  EXPECT_TRUE(eng.InspectAllBatched(1.0).empty());
  eng.AddHome(HomeRules(4));
  ServingEngine ref(&glint_->detector());
  ref.AddHome(HomeRules(4));
  EXPECT_EQ(Fp(ref.InspectAll(1.0)), Fp(eng.InspectAllBatched(1.0)));
}

/// GLINT_FAULTS leg: a durable engine suffers a WAL append failure (the op
/// must not be applied), recovers from snapshot + tail in a fresh engine,
/// and the recovered fleet's batched inspection still matches an
/// uninterrupted non-durable engine's sequential InspectAll bit-for-bit.
TEST_F(BatchedServingTest, BatchedMatchesSequentialAfterFaultAndRecovery) {
  char tmpl[] = "/tmp/glint_batched_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = std::string(tmpl) + "/state";

  ServingEngine ref(&glint_->detector());  // uninterrupted reference
  BuildFleet(&ref);

  auto dur = std::make_unique<ServingEngine>(&glint_->detector());
  ASSERT_TRUE(dur->Recover(dir).ok());
  BuildFleet(dur.get());

  // Round 0 on both, then a faulted append on the durable engine: the
  // rejected event must leave its state untouched (so no compensating op
  // on the reference side).
  FireRound(&ref, 0, 0.75);
  FireRound(dur.get(), 0, 0.75);
  fault::Registry::Global().Arm("wal.append.write", fault::Mode::kFail);
  auto rules0 = HomeRules(3, 9000);
  EXPECT_FALSE(dur->TryOnEvent(0, EventFor(rules0[0], 0.9)).ok());
  fault::Registry::Global().Clear();

  ASSERT_TRUE(dur->Snapshot().ok());

  // Round 1 lands after the snapshot, so recovery replays it from the WAL
  // tail.
  FireRound(&ref, 1, 1.75);
  FireRound(dur.get(), 1, 1.75);

  dur.reset();  // drop without snapshotting: round 1 lives only in the WAL
  ServingEngine rec(&glint_->detector());
  ASSERT_TRUE(rec.Recover(dir).ok());
  ASSERT_EQ(rec.num_homes(), ref.num_homes());

  const auto ws = ref.InspectAll(2.0);
  const auto wb = rec.InspectAllBatched(2.0, 3);
  EXPECT_EQ(Fp(ws), Fp(wb));
}

}  // namespace
}  // namespace glint::core
