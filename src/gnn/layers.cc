#include "gnn/layers.h"

#include <algorithm>
#include <numeric>

namespace glint::gnn {

Tensor* SemanticAttention::Forward(Tape* t,
                                   const std::vector<Tensor*>& paths) {
  GLINT_CHECK(!paths.empty());
  if (paths.size() == 1) return paths[0];

  // s_p = mean_v sigmoid(M h_v + b); score_p = q . s_p
  Tensor* scores = nullptr;  // 1 x P
  for (Tensor* p : paths) {
    Tensor* s = MeanRows(t, Sigmoid(t, summar_.Forward(t, p)));
    Tensor* score = MatMul(t, s, t->Leaf(&q_));  // 1 x 1
    scores = scores == nullptr ? score : ConcatCols(t, scores, score);
  }
  Tensor* beta = SoftmaxRowOp(t, scores);  // 1 x P

  Tensor* out = nullptr;
  for (size_t p = 0; p < paths.size(); ++p) {
    Tensor* weighted = ScaleByEntry(t, paths[p], beta, static_cast<int>(p));
    out = AddLoss(t, out, weighted);
  }
  return out;
}

Tensor* SemanticAttention::ForwardBatched(Tape* t,
                                          const std::vector<Tensor*>& paths,
                                          const std::vector<int>& offsets) {
  GLINT_CHECK(!paths.empty());
  if (paths.size() == 1) return paths[0];

  // Per-segment s_p / score_p: SegmentMeanRows reduces each graph's rows
  // with exactly the MeanRows accumulation order on that range, so row b of
  // `scores` matches the sequential 1 x P score row of graph b bit for bit.
  Tensor* scores = nullptr;  // B x P
  for (Tensor* p : paths) {
    Tensor* s =
        SegmentMeanRows(t, Sigmoid(t, summar_.Forward(t, p)), offsets);
    Tensor* score = MatMul(t, s, t->Leaf(&q_));  // B x 1
    scores = scores == nullptr ? score : ConcatCols(t, scores, score);
  }
  Tensor* beta = SoftmaxRows(t, scores);  // B x P

  Tensor* out = nullptr;
  for (size_t p = 0; p < paths.size(); ++p) {
    Tensor* weighted =
        SegmentScaleByCol(t, paths[p], beta, static_cast<int>(p), offsets);
    out = AddLoss(t, out, weighted);
  }
  return out;
}

VIPool::Result VIPool::Forward(Tape* t, const SparseMatrix& adj_norm,
                               const SparseMatrix& adj_raw, Tensor* h) {
  const int n = h->rows();
  Result result;

  // MI proxy: score_v = sigmoid(w . [h_v ; (Â h)_v]) — high when the vertex
  // agrees with (is informative about) its neighbourhood.
  Tensor* neigh = SpMM(t, adj_norm, h);
  Tensor* both = ConcatCols(t, h, neigh);
  Tensor* scores = Sigmoid(t, score_.Forward(t, both));  // n x 1

  // Keep ceil(ratio * n) highest-scoring vertices (at least 1).
  const int keep =
      std::max(1, static_cast<int>(ratio_ * static_cast<double>(n) + 0.999));
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores->value.At(a, 0) > scores->value.At(b, 0);
  });
  order.resize(static_cast<size_t>(std::min(keep, n)));
  std::sort(order.begin(), order.end());
  result.kept = order;

  // Gate features by score (keeps the scorer trainable), then gather.
  Tensor* gated = RowScale(t, h, scores);
  result.features = GatherRows(t, gated, order);

  // Induced adjacency over kept nodes, connecting nodes whose original
  // distance is <= 2 (so pooling does not disconnect chains). Walks the
  // cached CSR form of adj_raw: mark N(u) and N(N(u)) once per kept u, then
  // membership-test the later kept nodes — no dense n x n rebuild.
  const auto csr = adj_raw.CsrView();
  std::vector<char> reach(static_cast<size_t>(n), 0);
  std::vector<int> touched;
  std::vector<std::pair<int, int>> new_edges;
  for (size_t a = 0; a < order.size(); ++a) {
    const int u = order[a];
    touched.clear();
    auto mark = [&](int w) {
      if (!reach[static_cast<size_t>(w)]) {
        reach[static_cast<size_t>(w)] = 1;
        touched.push_back(w);
      }
    };
    const int k0 = csr->row_ptr[static_cast<size_t>(u)];
    const int k1 = csr->row_ptr[static_cast<size_t>(u) + 1];
    for (int k = k0; k < k1; ++k) {
      const int w = csr->col_idx[static_cast<size_t>(k)];
      mark(w);
      const int w0 = csr->row_ptr[static_cast<size_t>(w)];
      const int w1 = csr->row_ptr[static_cast<size_t>(w) + 1];
      for (int k2 = w0; k2 < w1; ++k2) mark(csr->col_idx[static_cast<size_t>(k2)]);
    }
    for (size_t b = a + 1; b < order.size(); ++b) {
      if (reach[static_cast<size_t>(order[b])]) {
        new_edges.emplace_back(static_cast<int>(a), static_cast<int>(b));
      }
    }
    for (int w : touched) reach[static_cast<size_t>(w)] = 0;
  }
  result.adj_norm =
      NormalizedAdjacency(static_cast<int>(order.size()), new_edges);
  result.adj_raw.rows = static_cast<int>(order.size());
  result.adj_raw.cols = result.adj_raw.rows;
  result.adj_raw.Reserve(2 * new_edges.size());
  for (const auto& [a, b] : new_edges) result.adj_raw.AddSymmetric(a, b, 1.f);
  result.adj_raw.BuildCsrCache();

  // Per-scale graph logit for the pooling loss.
  result.graph_logit = logit_.Forward(t, MeanRows(t, result.features));
  return result;
}

VIPool::BatchedResult VIPool::ForwardBatched(Tape* t,
                                             const SparseMatrix& adj_norm,
                                             const SparseMatrix& adj_raw,
                                             Tensor* h,
                                             const std::vector<int>& offsets) {
  const int B = static_cast<int>(offsets.size()) - 1;
  BatchedResult result;

  // Scoring is row-wise (and SpMM rows of a block-diagonal adjacency only
  // read their own segment), so `scores` rows match the sequential
  // per-graph scores bit for bit.
  Tensor* neigh = SpMM(t, adj_norm, h);
  Tensor* both = ConcatCols(t, h, neigh);
  Tensor* scores = Sigmoid(t, score_.Forward(t, both));  // n x 1

  // Per-segment top-ratio selection: the sequential stable ranking,
  // restricted to the segment's rows. Kept indices are global rows,
  // ascending within each segment.
  result.offsets.reserve(static_cast<size_t>(B) + 1);
  result.offsets.push_back(0);
  for (int s = 0; s < B; ++s) {
    const int n = offsets[s + 1] - offsets[s];
    const int keep =
        std::max(1, static_cast<int>(ratio_ * static_cast<double>(n) + 0.999));
    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), offsets[s]);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return scores->value.At(a, 0) > scores->value.At(b, 0);
    });
    order.resize(static_cast<size_t>(std::min(keep, n)));
    std::sort(order.begin(), order.end());
    result.kept.insert(result.kept.end(), order.begin(), order.end());
    result.offsets.push_back(static_cast<int>(result.kept.size()));
  }

  Tensor* gated = RowScale(t, h, scores);
  result.features = GatherRows(t, gated, result.kept);

  // Distance-<=2 induced adjacency, one segment at a time over the batch
  // CSR (a block-diagonal walk never leaves its segment). Each segment's
  // normalized block is built by the same per-graph NormalizedAdjacency
  // call the sequential path uses — never a dense pass over the whole
  // batch — then shifted into the block-diagonal result.
  const auto csr = adj_raw.CsrView();
  std::vector<char> reach(static_cast<size_t>(h->rows()), 0);
  std::vector<int> touched;
  std::vector<std::pair<int, int>> new_edges;
  result.adj_norm.rows = result.adj_norm.cols =
      static_cast<int>(result.kept.size());
  result.adj_raw.rows = result.adj_raw.cols = result.adj_norm.rows;
  for (int s = 0; s < B; ++s) {
    const int k0 = result.offsets[s];
    const int k1 = result.offsets[s + 1];
    new_edges.clear();
    for (int a = k0; a < k1; ++a) {
      const int u = result.kept[static_cast<size_t>(a)];
      touched.clear();
      auto mark = [&](int w) {
        if (!reach[static_cast<size_t>(w)]) {
          reach[static_cast<size_t>(w)] = 1;
          touched.push_back(w);
        }
      };
      const int e0 = csr->row_ptr[static_cast<size_t>(u)];
      const int e1 = csr->row_ptr[static_cast<size_t>(u) + 1];
      for (int k = e0; k < e1; ++k) {
        const int w = csr->col_idx[static_cast<size_t>(k)];
        mark(w);
        const int w0 = csr->row_ptr[static_cast<size_t>(w)];
        const int w1 = csr->row_ptr[static_cast<size_t>(w) + 1];
        for (int k2 = w0; k2 < w1; ++k2) {
          mark(csr->col_idx[static_cast<size_t>(k2)]);
        }
      }
      for (int b = a + 1; b < k1; ++b) {
        if (reach[static_cast<size_t>(result.kept[static_cast<size_t>(b)])]) {
          new_edges.emplace_back(a - k0, b - k0);
        }
      }
      for (int w : touched) reach[static_cast<size_t>(w)] = 0;
    }
    const SparseMatrix block = NormalizedAdjacency(k1 - k0, new_edges);
    for (const auto& e : block.entries) {
      result.adj_norm.Add(e.r + k0, e.c + k0, e.v);
    }
    for (const auto& [a, b] : new_edges) {
      result.adj_raw.AddSymmetric(a + k0, b + k0, 1.f);
    }
  }
  result.adj_norm.BuildCsrCache();
  result.adj_raw.BuildCsrCache();

  // Per-scale B x 1 graph logits for the pooling loss.
  result.graph_logits =
      logit_.Forward(t, SegmentMeanRows(t, result.features, result.offsets));
  return result;
}

}  // namespace glint::gnn
