#pragma once

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace glint::ml {

/// CART decision tree supporting both classification (Gini impurity,
/// weighted samples) and regression (variance reduction). The regression
/// mode serves as the base learner for gradient boosting.
class DecisionTree {
 public:
  struct Params {
    int max_depth = 10;
    int min_samples_leaf = 2;
    /// Number of features sampled per split; 0 = all, -1 = sqrt(dim).
    int max_features = 0;
    uint64_t seed = 3;
  };

  DecisionTree() : DecisionTree(Params()) {}
  explicit DecisionTree(Params params) : params_(params) {}

  /// Classification fit with per-sample weights (empty = uniform).
  void FitClassifier(const std::vector<FloatVec>& x, const std::vector<int>& y,
                     const std::vector<double>& sample_weights,
                     int num_classes);

  /// Regression fit on real targets.
  void FitRegressor(const std::vector<FloatVec>& x,
                    const std::vector<double>& targets);

  /// Classification: most probable class. Requires FitClassifier.
  int PredictClass(const FloatVec& x) const;

  /// Classification: class distribution at the leaf.
  const std::vector<double>& PredictDistribution(const FloatVec& x) const;

  /// Regression: leaf mean. Requires FitRegressor.
  double PredictValue(const FloatVec& x) const;

  /// Depth of the learned tree (root = 0; empty tree = -1).
  int Depth() const;

 private:
  struct Node {
    int feature = -1;       ///< -1 marks a leaf
    float threshold = 0;
    int left = -1, right = -1;
    std::vector<double> dist;  ///< class distribution (classification)
    double value = 0;          ///< mean target (regression)
  };

  int Build(const std::vector<FloatVec>& x, const std::vector<double>& target,
            const std::vector<int>& labels,
            const std::vector<double>& weights, std::vector<size_t> idx,
            int depth, bool classification, int num_classes, Rng* rng);
  const Node& Leaf(const FloatVec& x) const;

  Params params_;
  std::vector<Node> nodes_;
};

/// Random forest of classification trees (bagging + feature subsampling).
class RandomForest : public Classifier {
 public:
  struct Params {
    int num_trees = 40;
    int max_depth = 12;
    int min_samples_leaf = 1;
    uint64_t seed = 5;
  };

  RandomForest() : RandomForest(Params()) {}
  explicit RandomForest(Params params) : params_(params) {}

  void Fit(const Dataset& data, const std::vector<double>& class_weights) override;
  int Predict(const FloatVec& x) const override;
  double PredictProba(const FloatVec& x) const override;
  std::string Name() const override { return "RForest"; }

 private:
  Params params_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 2;
};

/// Gradient-boosted trees for binary classification: regression trees fit
/// to the negative gradient of the logistic loss, with shrinkage.
class GradientBoosting : public Classifier {
 public:
  struct Params {
    int num_rounds = 60;
    int max_depth = 3;
    double learning_rate = 0.15;
    uint64_t seed = 13;
  };

  GradientBoosting() : GradientBoosting(Params()) {}
  explicit GradientBoosting(Params params) : params_(params) {}

  void Fit(const Dataset& data, const std::vector<double>& class_weights) override;
  int Predict(const FloatVec& x) const override;
  double PredictProba(const FloatVec& x) const override;
  std::string Name() const override { return "GBoost"; }

 private:
  double RawScore(const FloatVec& x) const;

  Params params_;
  std::vector<DecisionTree> trees_;
  double base_score_ = 0;
};

}  // namespace glint::ml
