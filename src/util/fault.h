#pragma once

// glint::fault — named fault points for durability / recovery testing.
//
// Every fallible I/O call in the crash-safe serving path (WAL appends,
// snapshot writes, renames, fsyncs, model-file loads) is preceded by a
// GLINT_FAULT_POINT("subsystem.op.step"). Unarmed, a point costs one
// relaxed atomic load and a predicted-not-taken branch — it stays compiled
// in for release builds so production binaries and test binaries exercise
// the same code. Armed (programmatically or via the GLINT_FAULTS env var),
// the Nth hit of a point can:
//
//   fail      return Status::IOError from the enclosing function — the
//             injected-error path every caller must tolerate;
//   crash     _exit(kCrashExitCode) without flushing stdio, simulating a
//             hard process kill mid-I/O (tests fork a child first);
//   delay:MS  sleep MS milliseconds, for latency/timeout testing.
//
// Env syntax:  GLINT_FAULTS=wal.append.write:3=crash,snapshot.rename=fail
// (point[:nth]=mode, comma separated; nth defaults to 1 = the next hit).
//
// Naming convention: `<file-or-subsystem>.<operation>.<step>`, e.g.
// wal.append.write / wal.append.tear / snapshot.rename / model.load.read.
// Points self-register on first execution, so a reference run of a
// workload is also an enumeration pass: Registry::Points() afterwards
// lists every fault site the workload can reach (the crash-matrix tests
// iterate exactly that list).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace glint::fault {

enum class Mode {
  kFail,   ///< return Status::IOError from the enclosing function
  kCrash,  ///< _exit(kCrashExitCode), no stdio flush, no destructors
  kDelay,  ///< sleep delay_ms, then continue
};

/// Exit code used by kCrash so test parents can tell an injected crash
/// from an ordinary failure.
constexpr int kCrashExitCode = 112;

class Registry {
 public:
  /// Process-wide registry. The first call parses GLINT_FAULTS.
  static Registry& Global();

  /// True when any point is armed; the only cost unarmed sites pay.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Static-init hook used by GLINT_FAULT_POINT; always returns true.
  bool RegisterPoint(const char* name);

  /// Every point registered so far (sorted). A point registers the first
  /// time its code path executes, so run the workload once before
  /// enumerating.
  std::vector<std::string> Points() const;

  /// Arms `point` to act on its `nth` upcoming hit (1 = next hit). The
  /// trigger is one-shot: after acting, the point returns to pass-through
  /// (hit counting continues).
  void Arm(const std::string& point, Mode mode, int nth = 1,
           int delay_ms = 0);
  void Disarm(const std::string& point);

  /// Disarms every point and resets all hit counters.
  void Clear();

  /// Parses a GLINT_FAULTS-style spec and arms each entry. Returns a
  /// Status describing the first malformed entry (valid entries before it
  /// are still armed).
  Status ArmFromSpec(const std::string& spec);

  /// Called by armed sites (via the macro). Counts the hit; acts if the
  /// point is armed and its trigger count is reached.
  Status Hit(const char* point);

  /// Total times `point` has been hit (armed or not) since the last Clear.
  uint64_t hits(const std::string& point) const;

 private:
  Registry();

  struct PointState {
    uint64_t hits = 0;
    bool armed = false;
    Mode mode = Mode::kFail;
    uint64_t trigger_at = 0;  ///< absolute hit count that fires the fault
    int delay_ms = 0;
  };

  static std::atomic<bool> armed_;
  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  int armed_count_ = 0;
};

}  // namespace glint::fault

/// Drops a named fault point into a Status-returning function. Unarmed:
/// one relaxed load + branch. Armed: may return IOError, crash, or sleep.
#define GLINT_FAULT_POINT(name)                                     \
  do {                                                              \
    static const bool _glint_fault_registered =                     \
        ::glint::fault::Registry::Global().RegisterPoint(name);     \
    (void)_glint_fault_registered;                                  \
    if (::glint::fault::Registry::Armed()) {                        \
      ::glint::Status _glint_fault_status =                         \
          ::glint::fault::Registry::Global().Hit(name);             \
      if (!_glint_fault_status.ok()) return _glint_fault_status;    \
    }                                                               \
  } while (0)
