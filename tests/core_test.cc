#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "core/explain.h"
#include "core/glint.h"
#include "core/session.h"
#include "graph/threat_analyzer.h"

namespace glint::core {
namespace {

/// A unique per-test temporary directory, removed (with its contents) on
/// test teardown. Tests must not write to shared paths like /tmp directly:
/// concurrent runs of the suite would race on the same file names.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string tmpl = ::testing::TempDir() + "glint_core_test_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    GLINT_CHECK(mkdtemp(buf.data()) != nullptr);
    path_ = buf.data();
  }
  ~ScopedTempDir() {
    std::error_code ec;  // best-effort cleanup; never throw from a dtor
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// One small trained Glint shared by all tests in this file (training is the
// expensive part).
class GlintTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Glint::Options opts;
    opts.corpus.ifttt = 500;
    opts.corpus.smartthings = 80;
    opts.corpus.alexa = 150;
    opts.corpus.google_assistant = 80;
    opts.corpus.home_assistant = 80;
    opts.num_training_graphs = 600;
    opts.builder.max_nodes = 10;
    opts.builder.size_skew = 2.0;
    opts.model.num_scales = 2;
    opts.model.embed_dim = 64;
    opts.train.epochs = 14;
    opts.train.oversample_factor = 2.5;
    opts.pairs.num_positive = 200;
    opts.pairs.num_negative = 300;
    // Re-seeded when the kernel backends moved float reductions to the
    // fixed 8-lane tree (gnn/kernels.h): the summation-order change shifts
    // every training trajectory, and the old seed's run landed on a model
    // that misread the Table-1 graph.
    opts.seed = 101;
    glint_ = new Glint(opts);
    glint_->TrainOffline();
  }

  static Glint* glint_;
};

Glint* GlintTest::glint_ = nullptr;

TEST_F(GlintTest, ReadyAfterTraining) { EXPECT_TRUE(glint_->ready()); }

TEST_F(GlintTest, Table1IsFlaggedAsThreat) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  auto g = glint_->builder()->BuildFromRules(table1);
  auto warning = glint_->InspectGraph(g);
  EXPECT_TRUE(warning.threat);
  EXPECT_GT(warning.confidence, 0.5);
  EXPECT_FALSE(warning.culprits.empty());
}

TEST_F(GlintTest, BenignDeploymentPasses) {
  using rules::Command;
  using rules::DeviceType;
  std::vector<rules::Rule> benign(2);
  benign[0].id = 1;
  benign[0].trigger.device = DeviceType::kMotionSensor;
  benign[0].trigger.channel = rules::Channel::kMotion;
  benign[0].trigger.cmp = rules::Comparator::kEquals;
  benign[0].trigger.state = "active";
  benign[0].actions.push_back({DeviceType::kLight, Command::kOn, 0});
  benign[0].text = "If motion is detected, turn on the light.";
  benign[1].id = 2;
  benign[1].trigger.device = DeviceType::kPresenceSensor;
  benign[1].trigger.channel = rules::Channel::kPresence;
  benign[1].trigger.cmp = rules::Comparator::kEquals;
  benign[1].trigger.state = "away";
  benign[1].actions.push_back({DeviceType::kLock, Command::kLock, 0});
  benign[1].text = "When everyone leaves, lock the door.";

  auto g = glint_->builder()->BuildFromRules(benign);
  ASSERT_FALSE(g.vulnerable());  // analyzer agrees it is benign
  auto warning = glint_->InspectGraph(g);
  EXPECT_FALSE(warning.threat);
}

TEST_F(GlintTest, LearnedCorrelationGraphApproximatesOracle) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  auto learned = glint_->BuildGraph(table1);
  auto oracle = glint_->builder()->BuildFromRules(table1);
  // The learned classifier rebuilds most oracle edges.
  int shared = 0;
  for (const auto& e : oracle.edges()) {
    shared += learned.HasEdge(e.src, e.dst) ? 1 : 0;
  }
  EXPECT_GT(shared * 2, oracle.num_edges());
}

TEST_F(GlintTest, InspectRealTimeRunsEndToEnd) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  graph::EventLog log;
  graph::Event tv;
  tv.time_hours = 20.1;
  tv.device = rules::DeviceType::kTv;
  tv.state = "playing";
  log.Append(tv);
  graph::Event lights;
  lights.time_hours = 20.15;
  lights.device = rules::DeviceType::kLight;
  lights.state = "off";
  log.Append(lights);
  auto warning = glint_->Inspect(table1, log, 20.5);
  // End-to-end smoke: produces a decision and renderable output.
  EXPECT_FALSE(warning.Render().empty());
}

TEST_F(GlintTest, SaveLoadRoundTrip) {
  ScopedTempDir dir;
  ASSERT_TRUE(glint_->SaveModels(dir.path()).ok());
  // A fresh Glint with the same architecture can load and classify.
  Glint::Options opts;
  opts.model.num_scales = 2;
  opts.model.embed_dim = 64;
  Glint fresh(opts);
  ASSERT_TRUE(fresh.LoadModels(dir.path()).ok());
  EXPECT_TRUE(fresh.ready());
}

TEST_F(GlintTest, WarningRenderContainsCulprits) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  auto g = glint_->builder()->BuildFromRules(table1);
  auto warning = glint_->InspectGraph(g);
  const std::string text = warning.Render();
  EXPECT_NE(text.find("GLINT NOTIFICATION"), std::string::npos);
  if (warning.threat) {
    EXPECT_NE(text.find("JUMP TO"), std::string::npos);
  }
}

TEST_F(GlintTest, ExplainScoresNormalized) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  auto g = glint_->builder()->BuildFromRules(table1);
  auto gg = gnn::ToGnnGraph(g);
  auto importance = ExplainNodes(glint_->classifier(), gg);
  ASSERT_EQ(importance.size(), static_cast<size_t>(gg.num_nodes));
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(TopCulpritsTest, OrdersByImportance) {
  auto top = TopCulprits({0.1, 0.9, 0.5}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 2);
}

TEST(WarningTest, NoThreatRender) {
  ThreatWarning w;
  w.threat = false;
  EXPECT_NE(w.Render().find("No interactive threats"), std::string::npos);
}

TEST(WarningTest, DriftingRender) {
  ThreatWarning w;
  w.drifting = true;
  EXPECT_NE(w.Render().find("drifting"), std::string::npos);
}

graph::Event TriggerEvent(const rules::Rule& r, double t) {
  graph::Event e;
  e.time_hours = t;
  e.device = r.trigger.device;
  e.state = r.trigger.state;
  e.location = r.location;
  return e;
}

graph::Event EffectEvent(const rules::Rule& r, size_t a, double t) {
  graph::Event e;
  e.time_hours = t;
  e.device = r.actions[a].device;
  e.state = rules::CommandResultState(r.actions[a].command);
  e.location = r.location;
  return e;
}

void ExpectSameWarning(const ThreatWarning& warm, const ThreatWarning& cold,
                       int step) {
  ASSERT_EQ(warm.threat, cold.threat) << "step " << step;
  ASSERT_EQ(warm.drifting, cold.drifting) << "step " << step;
  ASSERT_EQ(warm.confidence, cold.confidence) << "step " << step;
  ASSERT_EQ(warm.Render(), cold.Render()) << "step " << step;
}

TEST_F(GlintTest, SessionMatchesColdPipelineUnderRandomOps) {
  // The serving determinism contract, on the *learned* correlation
  // pipeline: after any sequence of AddRule / RemoveRule / OnEvent, a
  // session's warm incremental Inspect is bit-identical to the cold
  // full-rebuild Glint::Inspect over the same rules, events, and time.
  std::vector<rules::Rule> pool = rules::CorpusGenerator::Table1Rules();
  {
    auto t4 = rules::CorpusGenerator::Table4Settings();
    pool.insert(pool.end(), t4.begin(), t4.end());
    const auto& corpus = glint_->corpus();
    pool.insert(pool.end(), corpus.begin(),
                corpus.begin() + std::min<size_t>(20, corpus.size()));
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    pool[i].id = 9000 + static_cast<int>(i);
  }

  DeploymentSession session(&glint_->detector());
  graph::EventLog log;
  Rng rng(71);
  size_t next = 0;
  double now = 10.0;
  for (int i = 0; i < 6; ++i) session.AddRule(pool[next++]);

  for (int step = 0; step < 30; ++step) {
    const double r = rng.Uniform();
    if (r < 0.2 && next < pool.size()) {
      session.AddRule(pool[next++]);
    } else if (r < 0.3 && session.num_rules() > 2) {
      const auto cur = session.CurrentRules();
      EXPECT_TRUE(session.RemoveRule(cur[rng.Below(cur.size())].id));
    } else {
      now += 0.02 + rng.Uniform() * 0.4;
      const auto cur = session.CurrentRules();
      const auto& rule = cur[rng.Below(cur.size())];
      graph::Event e =
          (rng.Chance(0.5) || rule.actions.empty())
              ? TriggerEvent(rule, now)
              : EffectEvent(rule, rng.Below(rule.actions.size()), now);
      session.OnEvent(e);
      log.Append(e);
    }
    auto warm = session.Inspect(now);
    auto cold = glint_->Inspect(session.CurrentRules(), log, now);
    ExpectSameWarning(warm, cold, step);
    // A repeated no-change Inspect is a verdict-cache hit and must still
    // equal the cold result.
    auto warm_again = session.Inspect(now);
    ExpectSameWarning(warm_again, cold, step);
  }
  EXPECT_GT(session.verdict_hits(), 0u);
}

TEST_F(GlintTest, SessionStaticMatchesColdBuildGraph) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  DeploymentSession session(&glint_->detector());
  for (const auto& r : table1) session.AddRule(r);
  auto warm = session.InspectStatic();
  auto cold = glint_->InspectGraph(glint_->BuildGraph(table1));
  ExpectSameWarning(warm, cold, 0);
}

TEST_F(GlintTest, FineTuneAdaptsToUserFeedback) {
  // Take a vulnerable graph the user declares a false alarm; after
  // fine-tuning the confidence for that exact graph should not increase.
  auto table1 = rules::CorpusGenerator::Table1Rules();
  auto g = glint_->builder()->BuildFromRules(table1);
  auto before = glint_->InspectGraph(g);
  glint_->FineTune({g}, {false});
  auto after = glint_->InspectGraph(g);
  EXPECT_LE(after.confidence, before.confidence + 1e-6);
}

}  // namespace
}  // namespace glint::core
