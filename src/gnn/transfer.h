#pragma once

#include "gnn/trainer.h"

namespace glint::gnn {

/// Cross-domain graph transfer learning (Sec. 3.3.4): freeze the first k
/// parameter groups of a source-trained model (the generic early-layer
/// features), optionally re-initialize the head, and fine-tune on the
/// target domain.
struct TransferConfig {
  /// Number of leading parameter groups to freeze. -1 = freeze all but the
  /// last group (the paper's "only fine-tune the fully connected layer"
  /// mode for tiny targets).
  int freeze_groups = -1;
  TrainConfig fine_tune;
};

/// Applies freezing and fine-tunes `model` (already trained on the source
/// domain) on the target training set. Afterwards all parameters are
/// unfrozen again.
void TransferFineTune(GraphModel* model, const std::vector<GnnGraph>& target,
                      const TransferConfig& config);

}  // namespace glint::gnn
