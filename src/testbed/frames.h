#pragma once

#include "graph/event_log.h"
#include "testbed/home.h"
#include "util/vecmath.h"

namespace glint::testbed {

/// Encodes event logs into fixed-width state frames for the OCSVM and
/// IsolationForest baselines (Sec. 4.8.1: "we capture all devices' states
/// as a frame when a new event happens; four consecutive frames compose a
/// data vector").
class FrameEncoder {
 public:
  /// `devices` fixes the frame layout (one slot per device instance).
  explicit FrameEncoder(std::vector<DeviceInstance> devices);

  /// One frame: the devices' states just after the i-th event of `log`.
  FloatVec FrameAt(const graph::EventLog& log, size_t event_index) const;

  /// Sliding windows of `window` consecutive frames, concatenated.
  std::vector<FloatVec> Windows(const graph::EventLog& log,
                                int window = 4) const;

  size_t frame_dim() const { return devices_.size() + 1; }

 private:
  /// Numeric code of a device state keyword.
  static float StateCode(const std::string& state);

  std::vector<DeviceInstance> devices_;
};

}  // namespace glint::testbed
