#pragma once

// Shared little-endian binary codec for Glint's on-disk formats (dataset
// store, model files, WAL records, snapshots). ByteWriter appends into a
// growable buffer; ByteReader consumes a borrowed buffer and reports
// truncation via bool returns (callers convert to Status at the format
// boundary). Neither owns a file: I/O and checksumming live with the
// format, the codec is layout only.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace glint::util {

// The codec is raw host memory order; the documented little-endian layout
// therefore holds only on little-endian hosts. Pin that at compile time so
// a big-endian port fails loudly here instead of silently writing files
// and wire frames other hosts cannot read.
static_assert(std::endian::native == std::endian::little,
              "glint's binary formats assume a little-endian host; port "
              "ByteWriter/ByteReader to explicit byte order first");

class ByteWriter {
 public:
  void U8(uint8_t v) { Raw(&v, sizeof v); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void F32(float v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }

  const std::vector<char>& buffer() const { return buf_; }
  std::vector<char> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::vector<char> buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<char>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof *v); }
  bool U32(uint32_t* v) { return Raw(v, sizeof *v); }
  bool U64(uint64_t* v) { return Raw(v, sizeof *v); }
  bool I32(int32_t* v) { return Raw(v, sizeof *v); }
  bool F32(float* v) { return Raw(v, sizeof *v); }
  bool F64(double* v) { return Raw(v, sizeof *v); }
  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n) || n > size_ - pos_) return false;
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool Raw(void* p, size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace glint::util
