#pragma once

#include <string>

#include "gnn/drift.h"
#include "gnn/models.h"
#include "util/status.h"

namespace glint::gnn {

/// Serializes a model's parameter values to a binary file (used for the
/// Sec. 4.8.2 model-size measurement and for shipping the cloud-trained
/// public model to the hub).
///
/// File layout: u32 magic 'GMDL' | u32 format version | u32 payload_len |
/// u32 crc32c(payload) | payload (param count + per-param rows/cols/f32
/// data). The file is staged to `path`.tmp and renamed, so a crash mid-save
/// never clobbers an existing good model.
Status SaveModel(GraphModel* model, const std::string& path);

/// Loads parameter values into a model of identical architecture. Malformed
/// input is a Status, never an abort: truncated/corrupt/bad-magic files are
/// IOError, a version or architecture mismatch is FailedPrecondition.
Status LoadModel(GraphModel* model, const std::string& path);

/// Serialized size in bytes without writing a file.
size_t ModelBytes(GraphModel* model);

/// Persists a fitted drift detector's statistics (centroids + MAD bands)
/// in the same hardened container as model files (magic 'GDRF', versioned,
/// CRC-checked, staged to .tmp and renamed). Drift statistics are fitted
/// during offline training, so a detector restored via LoadModel alone
/// cannot score drift — this file completes the model directory.
Status SaveDriftStats(const DriftDetector& drift, const std::string& path);

/// Restores drift statistics written by SaveDriftStats. Same Status
/// taxonomy as LoadModel: corrupt/truncated is IOError, a format version
/// mismatch is FailedPrecondition; never aborts.
Status LoadDriftStats(DriftDetector* drift, const std::string& path);

}  // namespace glint::gnn
