#pragma once

#include "ml/dataset.h"
#include "nlp/embedding.h"
#include "rules/rule.h"
#include "util/rng.h"

namespace glint::correlation {

/// Algorithm 1 — Home Automation Rule Feature Extraction.
///
/// For a candidate "action-trigger" pair (the action clause of a source
/// rule, the trigger clause of a destination rule) this computes:
///   V1: DTW similarity between verb sequences and between object (noun)
///       sequences, under the embedding cosine cost;
///   V2: binary synonym / hypernym relations between the verbs;
///   V3: binary meronym-holonym / hypernym / synonym relations between the
///       objects;
///   V4: the sum of the averaged word embeddings of the action and the
///       trigger clause (E_T + E_A).
/// The concatenation [V1, V2, V3, V4] is the correlation feature vector.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const nlp::EmbeddingModel* model)
      : model_(model) {}

  /// Features for "does src's action trigger dst?". Dimension: 7 + dim().
  FloatVec ExtractPair(const rules::Rule& src, const rules::Rule& dst) const;

  /// Feature dimensionality.
  size_t Dim() const { return 7 + model_->dim(); }

 private:
  const nlp::EmbeddingModel* model_;
};

/// Builds a labeled action-trigger pair dataset from a rule corpus, using
/// the semantic oracle for ground truth (the stand-in for the paper's 5,600
/// manually labeled positive and 8,000 negative pairs).
struct PairDatasetConfig {
  int num_positive = 1400;
  int num_negative = 2000;
  uint64_t seed = 77;
};
ml::Dataset BuildPairDataset(const std::vector<rules::Rule>& corpus,
                             const FeatureExtractor& extractor,
                             const PairDatasetConfig& config);

}  // namespace glint::correlation
