#pragma once

// Write-ahead log + snapshot pair for one ServingEngine's state directory:
//
//   <dir>/wal.log       append-only record log
//   <dir>/snapshot.bin  latest full-state snapshot (atomically replaced)
//
// WAL layout (all little-endian):
//   header: u32 magic 'GWAL' | u32 format version
//   record: u32 payload_len | u32 crc32c(payload) | payload
//   payload: u64 seq | operation bytes (opaque to the journal)
//
// Snapshot layout:
//   u32 magic 'GSNP' | u32 version | u64 seq | u32 payload_len |
//   u32 crc32c(payload) | payload
//
// Durability contract:
//   - Append writes the full record then flushes to the OS; a crash can
//     lose or tear only the *tail* record, never a middle one.
//   - WriteSnapshot stages to snapshot.bin.tmp, fsyncs, renames over the
//     old snapshot (atomic on POSIX), fsyncs the directory, and only then
//     truncates the WAL — a crash at any step leaves either the old
//     (snapshot, full WAL) pair or the new one, never a mix that loses
//     operations (replay filters records with seq <= snapshot seq).
//   - Recover validates every record checksum; the first torn or corrupt
//     record ends the replay and the file is truncated to the last valid
//     boundary (graceful degradation — corruption is never silently
//     replayed and never a crash).
//
// Every fopen / fwrite / fsync / rename in this file sits behind a
// GLINT_FAULT_POINT, so the crash-matrix tests can kill or fail the
// process at each I/O step (see util/fault.h for the naming convention).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace glint::core {

class Journal {
 public:
  struct Config {
    /// fsync the WAL after every Append. Off by default: the torn-tail
    /// detection already bounds loss to the final record, and serving
    /// workloads append per event.
    bool sync_each_append = false;
  };

  /// What Recover found; surfaced as glint.recovery.* counters too.
  struct RecoveryInfo {
    bool snapshot_loaded = false;
    uint64_t snapshot_seq = 0;   ///< ops folded into the snapshot
    size_t tail_records = 0;     ///< WAL records handed to apply
    size_t skipped_records = 0;  ///< records with seq <= snapshot_seq
    size_t truncated_bytes = 0;  ///< torn/corrupt tail dropped from the WAL
    bool tail_torn = false;      ///< a torn/corrupt tail was detected
  };

  explicit Journal(std::string dir);
  Journal(std::string dir, Config config);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& dir() const { return dir_; }
  std::string wal_path() const { return dir_ + "/wal.log"; }
  std::string snapshot_path() const { return dir_ + "/snapshot.bin"; }

  /// Creates the state directory if needed, loads the snapshot (if one
  /// exists) through `apply_snapshot`, replays the WAL tail through
  /// `apply_record` (already filtered to seq > snapshot seq), truncates a
  /// torn/corrupt tail, and leaves the WAL open for Append. Must be called
  /// exactly once, before any Append/WriteSnapshot.
  Status Recover(
      const std::function<Status(const std::vector<char>&)>& apply_snapshot,
      const std::function<Status(uint64_t, const std::vector<char>&)>&
          apply_record,
      RecoveryInfo* info);

  /// Appends one operation record. On any error (including an injected
  /// fault) the record is not considered durable, the file is rolled back
  /// to the previous record boundary (so a later append after a transient
  /// failure cannot leave a duplicate or interleaved record), and the
  /// caller must not apply the operation.
  Status Append(uint64_t seq, const std::vector<char>& payload);

  /// fsyncs the WAL (no-op if nothing appended since the last sync).
  Status Sync();

  /// Atomically replaces the snapshot with `payload` (covering every op up
  /// to and including `seq`) and truncates the WAL.
  Status WriteSnapshot(uint64_t seq, const std::vector<char>& payload);

 private:
  Status OpenWal(bool truncate);
  Status CloseWal();

  std::string dir_;
  Config config_;
  std::FILE* wal_ = nullptr;
  bool recovered_ = false;
};

}  // namespace glint::core
