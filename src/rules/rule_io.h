#pragma once

// Binary codec for rules::Rule — the single serialization used everywhere a
// rule crosses a process boundary (dataset store graphs, WAL records,
// serving snapshots). Readers return false on truncation; callers convert
// to Status at the file-format boundary.

#include "rules/rule.h"
#include "util/binio.h"

namespace glint::rules {

void WriteRule(util::ByteWriter* w, const Rule& rule);
bool ReadRule(util::ByteReader* r, Rule* rule);

void WriteTrigger(util::ByteWriter* w, const TriggerSpec& t);
bool ReadTrigger(util::ByteReader* r, TriggerSpec* t);

}  // namespace glint::rules
