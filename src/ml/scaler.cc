#include "ml/scaler.h"

#include <cmath>

#include "util/status.h"

namespace glint::ml {

void StandardScaler::Fit(const std::vector<FloatVec>& xs) {
  GLINT_CHECK(!xs.empty());
  const size_t dim = xs[0].size();
  mean_.assign(dim, 0.f);
  scale_.assign(dim, 1.f);
  for (const auto& x : xs) {
    for (size_t i = 0; i < dim; ++i) mean_[i] += x[i];
  }
  const float n = static_cast<float>(xs.size());
  for (auto& m : mean_) m /= n;
  FloatVec var(dim, 0.f);
  for (const auto& x : xs) {
    for (size_t i = 0; i < dim; ++i) {
      const float d = x[i] - mean_[i];
      var[i] += d * d;
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    const float sd = std::sqrt(var[i] / n);
    scale_[i] = sd > 1e-8f ? sd : 1.f;
  }
}

FloatVec StandardScaler::Transform(const FloatVec& x) const {
  GLINT_CHECK(x.size() == mean_.size());
  FloatVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - mean_[i]) / scale_[i];
  return out;
}

void StandardScaler::TransformInPlace(std::vector<FloatVec>* xs) const {
  for (auto& x : *xs) x = Transform(x);
}

}  // namespace glint::ml
