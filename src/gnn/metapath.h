#pragma once

#include "gnn/layers.h"

namespace glint::gnn {

/// Metapath-based node transformation (Algorithm 2 lines 1-13, the
/// MAGNN-inspired front end): projects each node type's features into a
/// shared space, aggregates intra-metapath neighbourhoods per node type,
/// applies inter-metapath semantic attention, and returns a homogeneous
/// node matrix in original node order.
class MetapathConverter {
 public:
  struct Config {
    int hidden = 64;
    bool use_intra = true;  ///< ablation: intra-metapath aggregation
    bool use_inter = true;  ///< ablation: inter-metapath attention
    /// Ablation: include the Hadamard self-neighbour interaction term in
    /// the intra-metapath transform (DESIGN.md "Hadamard interaction").
    bool use_hadamard = true;
  };

  MetapathConverter() = default;
  MetapathConverter(Config config, Rng* rng);

  /// Returns an n x hidden homogeneous node-feature tensor.
  Tensor* Forward(Tape* t, const GnnGraph& g);

  std::vector<Parameter*> Parameters();
  void SetFrozen(bool f);

 private:
  Config config_;
  Linear proj_[kNumNodeTypes];     ///< per-type feature projection
  Linear intra_[kNumNodeTypes];    ///< per-metapath transformation
  Linear self_;                    ///< self-path transformation
  SemanticAttention attention_;
};

}  // namespace glint::gnn
