#pragma once

#include <string>
#include <vector>

#include "graph/interaction_graph.h"

namespace glint::core {

/// A user-facing interactive-threat warning (the Fig. 3 experience): what
/// was detected, which rules are the likely culprits, and where to go to
/// fix them.
struct ThreatWarning {
  bool threat = false;
  bool drifting = false;
  double confidence = 0;  ///< P(threat) from the classifier
  std::vector<graph::ThreatType> types;

  struct Culprit {
    int node = 0;
    std::string platform;
    std::string rule_text;
    double importance = 0;  ///< explanation score in [0, 1]
  };
  std::vector<Culprit> culprits;

  /// Renders the warning as a terminal notification block (Fig. 3a/3c).
  std::string Render() const;
};

}  // namespace glint::core
