#include "graph/dataset_store.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace glint::graph {
namespace {

constexpr uint32_t kMagic = 0x474c4e54;  // "GLNT"
constexpr uint32_t kVersion = 2;

class Writer {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void F32(float v) { Raw(&v, sizeof v); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  const std::vector<char>& buffer() const { return buf_; }

 private:
  std::vector<char> buf_;
};

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof *v); }
  bool I32(int32_t* v) { return Raw(v, sizeof *v); }
  bool F64(double* v) { return Raw(v, sizeof *v); }
  bool F32(float* v) { return Raw(v, sizeof *v); }
  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n) || pos_ + n > size_) return false;
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool Raw(void* p, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void WriteTrigger(Writer* w, const rules::TriggerSpec& t) {
  w->I32(static_cast<int32_t>(t.channel));
  w->I32(static_cast<int32_t>(t.device));
  w->I32(static_cast<int32_t>(t.cmp));
  w->F64(t.lo);
  w->F64(t.hi);
  w->Str(t.state);
  w->I32(t.direction);
  w->I32(t.has_time ? 1 : 0);
  w->I32(t.hour_lo);
  w->I32(t.hour_hi);
}

bool ReadTrigger(Reader* r, rules::TriggerSpec* t) {
  int32_t ch, dev, cmp, dir, ht, hlo, hhi;
  if (!r->I32(&ch) || !r->I32(&dev) || !r->I32(&cmp) || !r->F64(&t->lo) ||
      !r->F64(&t->hi) || !r->Str(&t->state) || !r->I32(&dir) ||
      !r->I32(&ht) || !r->I32(&hlo) || !r->I32(&hhi)) {
    return false;
  }
  t->channel = static_cast<rules::Channel>(ch);
  t->device = static_cast<rules::DeviceType>(dev);
  t->cmp = static_cast<rules::Comparator>(cmp);
  t->direction = dir;
  t->has_time = ht != 0;
  t->hour_lo = hlo;
  t->hour_hi = hhi;
  return true;
}

void WriteRule(Writer* w, const rules::Rule& rule) {
  w->I32(rule.id);
  w->I32(static_cast<int32_t>(rule.platform));
  w->I32(static_cast<int32_t>(rule.location));
  WriteTrigger(w, rule.trigger);
  w->U32(static_cast<uint32_t>(rule.conditions.size()));
  for (const auto& c : rule.conditions) {
    rules::TriggerSpec t;
    t.channel = c.channel;
    t.device = c.device;
    t.cmp = c.cmp;
    t.lo = c.lo;
    t.hi = c.hi;
    t.state = c.state;
    t.has_time = c.has_time;
    t.hour_lo = c.hour_lo;
    t.hour_hi = c.hour_hi;
    WriteTrigger(w, t);
  }
  w->U32(static_cast<uint32_t>(rule.actions.size()));
  for (const auto& a : rule.actions) {
    w->I32(static_cast<int32_t>(a.device));
    w->I32(static_cast<int32_t>(a.command));
    w->F64(a.level);
  }
  w->Str(rule.text);
  w->I32(rule.manual_mode_pin ? 1 : 0);
}

bool ReadRule(Reader* r, rules::Rule* rule) {
  int32_t platform, location, pin;
  if (!r->I32(&rule->id) || !r->I32(&platform) || !r->I32(&location) ||
      !ReadTrigger(r, &rule->trigger)) {
    return false;
  }
  rule->platform = static_cast<rules::Platform>(platform);
  rule->location = static_cast<rules::Location>(location);
  uint32_t nc;
  if (!r->U32(&nc)) return false;
  rule->conditions.resize(nc);
  for (auto& c : rule->conditions) {
    rules::TriggerSpec t;
    if (!ReadTrigger(r, &t)) return false;
    c.channel = t.channel;
    c.device = t.device;
    c.cmp = t.cmp;
    c.lo = t.lo;
    c.hi = t.hi;
    c.state = t.state;
    c.has_time = t.has_time;
    c.hour_lo = t.hour_lo;
    c.hour_hi = t.hour_hi;
  }
  uint32_t na;
  if (!r->U32(&na)) return false;
  rule->actions.resize(na);
  for (auto& a : rule->actions) {
    int32_t dev, cmd;
    if (!r->I32(&dev) || !r->I32(&cmd) || !r->F64(&a.level)) return false;
    a.device = static_cast<rules::DeviceType>(dev);
    a.command = static_cast<rules::Command>(cmd);
  }
  if (!r->Str(&rule->text)) return false;
  if (!r->I32(&pin)) return false;
  rule->manual_mode_pin = pin != 0;
  return true;
}

void SerializeDataset(const GraphDataset& ds, Writer* w) {
  w->U32(kMagic);
  w->U32(kVersion);
  w->U32(static_cast<uint32_t>(ds.graphs.size()));
  for (const auto& g : ds.graphs) {
    w->U32(static_cast<uint32_t>(g.num_nodes()));
    for (const auto& node : g.nodes()) {
      WriteRule(w, node.rule);
      w->I32(node.type);
      w->U32(static_cast<uint32_t>(node.features.size()));
      for (float f : node.features) w->F32(f);
    }
    w->U32(static_cast<uint32_t>(g.edges().size()));
    for (const auto& e : g.edges()) {
      w->I32(e.src);
      w->I32(e.dst);
    }
    w->I32(g.vulnerable() ? 1 : 0);
    w->U32(static_cast<uint32_t>(g.threat_types().size()));
    for (auto t : g.threat_types()) w->I32(static_cast<int32_t>(t));
    w->U32(static_cast<uint32_t>(g.culprit_nodes().size()));
    for (int c : g.culprit_nodes()) w->I32(c);
  }
}

}  // namespace

Status DatasetStore::Save(const GraphDataset& ds, const std::string& path) {
  Writer w;
  SerializeDataset(ds, &w);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(w.buffer().data(), 1, w.buffer().size(), f);
  std::fclose(f);
  if (written != w.buffer().size()) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<GraphDataset> DatasetStore::Load(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> buf(static_cast<size_t>(size));
  const size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size()) return Status::IOError("short read: " + path);

  Reader r(buf.data(), buf.size());
  uint32_t magic, version, num_graphs;
  if (!r.U32(&magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!r.U32(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported version in " + path);
  }
  if (!r.U32(&num_graphs)) return Status::InvalidArgument("truncated header");

  GraphDataset ds;
  ds.graphs.reserve(num_graphs);
  for (uint32_t gi = 0; gi < num_graphs; ++gi) {
    uint32_t num_nodes;
    if (!r.U32(&num_nodes)) return Status::InvalidArgument("truncated graph");
    InteractionGraph g;
    for (uint32_t ni = 0; ni < num_nodes; ++ni) {
      Node node;
      if (!ReadRule(&r, &node.rule)) {
        return Status::InvalidArgument("truncated rule");
      }
      uint32_t feat_len;
      if (!r.I32(&node.type) || !r.U32(&feat_len)) {
        return Status::InvalidArgument("truncated node");
      }
      node.features.resize(feat_len);
      for (auto& f : node.features) {
        if (!r.F32(&f)) return Status::InvalidArgument("truncated features");
      }
      g.AddNode(std::move(node));
    }
    uint32_t num_edges;
    if (!r.U32(&num_edges)) return Status::InvalidArgument("truncated edges");
    for (uint32_t ei = 0; ei < num_edges; ++ei) {
      int32_t src, dst;
      if (!r.I32(&src) || !r.I32(&dst)) {
        return Status::InvalidArgument("truncated edge");
      }
      g.AddEdge(src, dst);
    }
    int32_t vul;
    uint32_t nt, nculprit;
    if (!r.I32(&vul) || !r.U32(&nt)) {
      return Status::InvalidArgument("truncated label");
    }
    g.set_vulnerable(vul != 0);
    std::vector<ThreatType> types(nt);
    for (auto& t : types) {
      int32_t v;
      if (!r.I32(&v)) return Status::InvalidArgument("truncated types");
      t = static_cast<ThreatType>(v);
    }
    g.set_threat_types(std::move(types));
    if (!r.U32(&nculprit)) return Status::InvalidArgument("truncated culprits");
    std::vector<int> culprits(nculprit);
    for (auto& c : culprits) {
      if (!r.I32(&c)) return Status::InvalidArgument("truncated culprit");
    }
    g.set_culprit_nodes(std::move(culprits));
    ds.graphs.push_back(std::move(g));
  }
  return ds;
}

size_t DatasetStore::SerializedBytes(const GraphDataset& ds) {
  Writer w;
  SerializeDataset(ds, &w);
  return w.buffer().size();
}

}  // namespace glint::graph
