// Serial-vs-parallel determinism contract: corpus generation, dataset
// construction, training, evaluation, and embedding must produce
// bit-identical results at 1 thread and at N threads (DESIGN.md,
// "Concurrency model").

#include <vector>

#include <gtest/gtest.h>

#include "gnn/ggraph.h"
#include "gnn/models.h"
#include "gnn/trainer.h"
#include "graph/builder.h"
#include "nlp/embedding.h"
#include "rules/corpus.h"
#include "util/thread_pool.h"

namespace glint {
namespace {

/// Restores the global pool to its env-configured size when a test ends.
struct ThreadRestore {
  ~ThreadRestore() {
    ThreadPool::SetGlobalThreads(ThreadPool::ConfiguredThreads());
  }
};

constexpr int kParallelThreads = 4;

std::vector<rules::Rule> SmallCorpus() {
  rules::CorpusConfig cc;
  cc.ifttt = 300;
  cc.smartthings = 50;
  cc.alexa = 60;
  cc.google_assistant = 60;
  cc.home_assistant = 60;
  return rules::CorpusGenerator(cc).Generate();
}

const nlp::EmbeddingModel& WordModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(300, 17);
  return *m;
}
const nlp::EmbeddingModel& SentenceModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(512, 18);
  return *m;
}

std::vector<gnn::GnnGraph> BuildGraphs(const std::vector<rules::Rule>& pool,
                                       int num_graphs) {
  graph::GraphBuilder::Config bc;
  bc.seed = 99;
  bc.max_nodes = 12;
  graph::GraphBuilder builder(bc, &WordModel(), &SentenceModel());
  return gnn::ToGnnGraphs(builder.BuildDataset(pool, num_graphs));
}

void ExpectSameGraphs(const std::vector<gnn::GnnGraph>& a,
                      const std::vector<gnn::GnnGraph>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].num_nodes, b[i].num_nodes) << "graph " << i;
    ASSERT_EQ(a[i].label, b[i].label) << "graph " << i;
    ASSERT_EQ(a[i].node_types, b[i].node_types) << "graph " << i;
    ASSERT_EQ(a[i].edges, b[i].edges) << "graph " << i;
    for (int t = 0; t < gnn::kNumNodeTypes; ++t) {
      ASSERT_EQ(a[i].typed_features[t].data, b[i].typed_features[t].data)
          << "graph " << i << " type " << t;
    }
    ASSERT_EQ(a[i].adj_norm.entries.size(), b[i].adj_norm.entries.size());
    for (size_t k = 0; k < a[i].adj_norm.entries.size(); ++k) {
      const auto& ea = a[i].adj_norm.entries[k];
      const auto& eb = b[i].adj_norm.entries[k];
      ASSERT_EQ(ea.r, eb.r);
      ASSERT_EQ(ea.c, eb.c);
      ASSERT_EQ(ea.v, eb.v);
    }
  }
}

TEST(ParallelDeterminismTest, CorpusIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto serial = SmallCorpus();
  ThreadPool::SetGlobalThreads(kParallelThreads);
  const auto parallel = SmallCorpus();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].id, parallel[i].id) << "rule " << i;
    ASSERT_EQ(serial[i].platform, parallel[i].platform) << "rule " << i;
    ASSERT_EQ(serial[i].text, parallel[i].text) << "rule " << i;
    ASSERT_EQ(serial[i].trigger.device, parallel[i].trigger.device);
    ASSERT_EQ(serial[i].conditions.size(), parallel[i].conditions.size());
    ASSERT_EQ(serial[i].actions.size(), parallel[i].actions.size());
  }
}

TEST(ParallelDeterminismTest, DatasetIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  const auto pool = SmallCorpus();
  ThreadPool::SetGlobalThreads(1);
  const auto serial = BuildGraphs(pool, 10);
  ThreadPool::SetGlobalThreads(kParallelThreads);
  const auto parallel = BuildGraphs(pool, 10);
  ExpectSameGraphs(serial, parallel);
}

TEST(ParallelDeterminismTest, EvaluateAndEmbedAllIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto graphs = BuildGraphs(SmallCorpus(), 16);

  gnn::ItgnnModel::Config mc;
  mc.seed = 5;
  gnn::ItgnnModel model(mc);

  const auto serial_metrics = gnn::Trainer::Evaluate(&model, graphs);
  const auto serial_embeds = gnn::Trainer::EmbedAll(&model, graphs);
  ThreadPool::SetGlobalThreads(kParallelThreads);
  const auto parallel_metrics = gnn::Trainer::Evaluate(&model, graphs);
  const auto parallel_embeds = gnn::Trainer::EmbedAll(&model, graphs);

  EXPECT_EQ(serial_metrics.accuracy, parallel_metrics.accuracy);
  EXPECT_EQ(serial_metrics.precision, parallel_metrics.precision);
  EXPECT_EQ(serial_metrics.recall, parallel_metrics.recall);
  EXPECT_EQ(serial_metrics.f1, parallel_metrics.f1);
  ASSERT_EQ(serial_embeds.size(), parallel_embeds.size());
  for (size_t i = 0; i < serial_embeds.size(); ++i) {
    ASSERT_EQ(serial_embeds[i], parallel_embeds[i]) << "embedding " << i;
  }
}

TEST(ParallelDeterminismTest, SupervisedTrainingIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto graphs = BuildGraphs(SmallCorpus(), 16);

  auto train_and_embed = [&graphs](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    gnn::ItgnnModel::Config mc;
    mc.seed = 3;
    gnn::ItgnnModel model(mc);
    gnn::TrainConfig tc;
    tc.epochs = 2;
    gnn::Trainer(tc).TrainSupervised(&model, graphs);
    return gnn::Trainer::EmbedAll(&model, graphs);
  };
  const auto serial = train_and_embed(1);
  const auto parallel = train_and_embed(kParallelThreads);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "embedding " << i;
  }
}

TEST(ParallelDeterminismTest, ContrastiveTrainingIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto graphs = BuildGraphs(SmallCorpus(), 16);

  auto train_and_embed = [&graphs](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    gnn::ItgnnModel::Config mc;
    mc.seed = 11;
    gnn::ItgnnModel model(mc);
    gnn::TrainConfig tc;
    tc.epochs = 2;
    gnn::Trainer(tc).TrainContrastive(&model, graphs);
    return gnn::Trainer::EmbedAll(&model, graphs);
  };
  const auto serial = train_and_embed(1);
  const auto parallel = train_and_embed(kParallelThreads);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "embedding " << i;
  }
}

}  // namespace
}  // namespace glint
