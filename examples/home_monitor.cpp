// Online-stage demo (the paper's Fig. 3 experience in a terminal): a
// simulated smart home streams event logs into a DeploymentSession, which
// maintains the interaction graph incrementally — each rule embedded once,
// pairwise correlations evaluated once, edge liveness updated in place —
// checks for drift, and raises threat warnings with the culprit rules
// highlighted, including when an attacker strikes. At the end the user
// retires a culprit rule (an O(n) delta, not a rebuild) and re-inspects.

#include <cstdio>

#include "core/glint.h"
#include "core/session.h"
#include "testbed/attacks.h"
#include "testbed/scenarios.h"

using namespace glint;  // NOLINT

int main() {
  std::printf("== Glint home monitor ==\n\n");

  core::Glint::Options options;
  options.corpus.ifttt = 500;
  options.corpus.smartthings = 80;
  options.corpus.alexa = 150;
  options.corpus.google_assistant = 80;
  options.corpus.home_assistant = 80;
  options.num_training_graphs = 600;
  options.builder.max_nodes = 10;
  options.builder.size_skew = 2.0;
  options.model.num_scales = 2;
  options.model.embed_dim = 64;
  options.train.epochs = 14;
  options.train.oversample_factor = 2.5;
  options.pairs.num_positive = 200;
  options.pairs.num_negative = 300;
  core::Glint glint(options);
  std::printf("training the public detector model (offline stage)...\n\n");
  glint.TrainOffline();

  // A house with the benign deployment plus the smoke-unlock / night-lock
  // pair (the settings 8/9 action conflict, latent until smoke).
  auto deployed = testbed::ScenarioGenerator::BenignDeployment();
  {
    rules::Rule smoke_unlock;
    smoke_unlock.id = 100;
    smoke_unlock.platform = rules::Platform::kSmartThings;
    smoke_unlock.trigger.device = rules::DeviceType::kSmokeAlarm;
    smoke_unlock.trigger.channel = rules::Channel::kSmoke;
    smoke_unlock.trigger.cmp = rules::Comparator::kEquals;
    smoke_unlock.trigger.state = "beeping";
    smoke_unlock.actions.push_back(
        {rules::DeviceType::kLock, rules::Command::kUnlock, 0});
    smoke_unlock.text = "If smoke is detected, unlock the door.";
    deployed.push_back(smoke_unlock);

    rules::Rule night_lock;
    night_lock.id = 101;
    night_lock.platform = rules::Platform::kAlexa;
    night_lock.trigger.channel = rules::Channel::kTime;
    night_lock.trigger.cmp = rules::Comparator::kEquals;
    night_lock.trigger.has_time = true;
    night_lock.trigger.hour_lo = 22;
    night_lock.trigger.hour_hi = 22;
    night_lock.actions.push_back(
        {rules::DeviceType::kLock, rules::Command::kLock, 0});
    night_lock.text = "Lock the door at 10 pm every day.";
    deployed.push_back(night_lock);
  }

  // The deployment session: the home's live half of the split. Rules are
  // embedded and pairwise-classified once here, not on every inspection.
  core::DeploymentSession session(&glint.detector());
  for (const auto& r : deployed) session.AddRule(r);
  std::printf("deployed %d rules into the session\n\n", session.num_rules());

  testbed::SmartHome::Config home_cfg;
  home_cfg.seed = 2026;
  home_cfg.start_hour = 18.0;
  testbed::SmartHome home(home_cfg, deployed);
  size_t cursor = 0;  // events already streamed into the session

  Rng rng(7);
  const struct {
    double until_hour;
    testbed::AttackType attack;
    const char* note;
  } timeline[] = {
      {20.0, testbed::AttackType::kNone, "normal evening"},
      {21.0, testbed::AttackType::kNone, "normal evening"},
      {22.3, testbed::AttackType::kFakeEvent,
       "ATTACK: forged smoke alarm report after the 10 pm lock"},
      {23.0, testbed::AttackType::kNone, "post-attack"},
  };

  for (const auto& step : timeline) {
    home.Simulate(step.until_hour - home.now());
    if (step.attack != testbed::AttackType::kNone) {
      testbed::ApplyAttack(step.attack, &home, &rng);
    }
    std::printf("---- %s (t = %.1f h) ----\n", step.note, home.now());

    // Show the tail of the event log (Fig. 3b).
    auto lines = home.log().Render();
    const size_t start = lines.size() > 5 ? lines.size() - 5 : 0;
    for (size_t i = start; i < lines.size(); ++i) {
      std::printf("  %s\n", lines[i].c_str());
    }

    // Stream the new events, then inspect incrementally (Fig. 3a/3c).
    const auto& events = home.log().events();
    for (; cursor < events.size(); ++cursor) session.OnEvent(events[cursor]);
    auto warning = session.Inspect(home.now());
    std::printf("%s\n", warning.Render().c_str());
  }

  // Steps 7-8 of Fig. 2, the remediation: the user retires the smoke-unlock
  // rule. One O(n) delta on the live graph — no rebuild — and the threat
  // chain is gone at the next inspection.
  std::printf("---- user retires rule #100 (smoke -> unlock) ----\n");
  session.RemoveRule(100);
  auto after = session.Inspect(home.now());
  std::printf("%s\n", after.Render().c_str());

  std::printf(
      "session stats: %zu inspections, %zu verdict-cache hits, "
      "%zu tensor-cache hits\n",
      session.inspect_count(), session.verdict_hits(), session.tensor_hits());
  return 0;
}
