// Unit tests for the glint::obs telemetry layer: histogram bucket/quantile
// correctness against an exact sorted reference, concurrent-increment
// totals, snapshot-merge determinism across thread counts, registry
// collision enforcement, and the trace ring.
//
// Minimal linkage (glint_obs + gtest only) so the TSAN stage of
// tools/check.sh can build it without the model stack.

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/obs.h"

namespace glint::obs {
namespace {

/// Restores collection on scope exit; tests that disable it must not leak
/// the off state into later tests.
struct EnabledGuard {
  ~EnabledGuard() { SetEnabled(true); }
};

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c]() {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddPeak) {
  Gauge g;
  g.Set(3);
  g.Add(4);
  EXPECT_EQ(g.Value(), 7);
  EXPECT_EQ(g.Peak(), 7);
  g.Add(-5);
  EXPECT_EQ(g.Value(), 2);
  EXPECT_EQ(g.Peak(), 7);  // high-water mark survives the drop
  g.Set(1);
  EXPECT_EQ(g.Peak(), 7);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({1.0, 2.0, 5.0});
  // One observation per interesting position: below, exactly on each edge,
  // between edges, and past the last edge (overflow).
  for (double x : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 6.0}) h.Observe(x);
  const auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0  (x <= 1)
  EXPECT_EQ(counts[1], 2u);  // 1.5, 2.0  (1 < x <= 2)
  EXPECT_EQ(counts[2], 2u);  // 3.0, 5.0  (2 < x <= 5)
  EXPECT_EQ(counts[3], 1u);  // 6.0       (overflow)
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_NEAR(h.Sum(), 19.0, 1e-9);
}

TEST(Histogram, QuantileTracksExactSortedReference) {
  // Uniform bucket ladder with width 10 over observations 1..200: the
  // interpolated estimate must stay within one bucket width of the exact
  // nearest-rank percentile.
  std::vector<double> bounds;
  for (double b = 10; b <= 200; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  std::vector<double> xs;
  for (int i = 1; i <= 200; ++i) xs.push_back(double(i));
  for (double x : xs) h.Observe(x);
  std::sort(xs.begin(), xs.end());
  for (double q : {0.10, 0.25, 0.50, 0.90, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * double(xs.size()))) - 1;
    const double exact = xs[std::min(rank, xs.size() - 1)];
    EXPECT_NEAR(h.Quantile(q), exact, 10.0) << "q=" << q;
  }
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 10.0);
  EXPECT_NEAR(h.Quantile(1.0), 200.0, 10.0);
}

TEST(Histogram, OverflowQuantileSaturatesAtLastEdge) {
  Histogram h({1.0, 2.0});
  h.Observe(100.0);
  h.Observe(200.0);
  // Everything is in the overflow bucket, whose upper edge is unknown; the
  // estimate reports the last finite edge rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
}

TEST(Histogram, LatencyLadderCoversMicrosecondsToSeconds) {
  const auto b = Histogram::LatencyBucketsMs();
  ASSERT_FALSE(b.empty());
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  EXPECT_DOUBLE_EQ(b.front(), 1e-3);  // 1us
  EXPECT_DOUBLE_EQ(b.back(), 1e4);    // 10s
}

TEST(Histogram, SnapshotMergeIsDeterministicAcrossThreadCounts) {
  // The same multiset of observations, split across 1 / 2 / 4 / 8 threads,
  // must merge to identical totals and bucket counts: shard layout is an
  // implementation detail, not an output.
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(double(i % 97) * 0.25);
  std::vector<uint64_t> reference;
  for (int threads : {1, 2, 4, 8}) {
    Histogram h(Histogram::LatencyBucketsMs());
    std::vector<std::thread> ts;
    const size_t per = xs.size() / static_cast<size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      const size_t lo = static_cast<size_t>(t) * per;
      const size_t hi = t == threads - 1 ? xs.size() : lo + per;
      ts.emplace_back([&h, &xs, lo, hi]() {
        for (size_t i = lo; i < hi; ++i) h.Observe(xs[i]);
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(h.Count(), xs.size()) << threads << " threads";
    const auto counts = h.BucketCounts();
    if (reference.empty()) {
      reference = counts;
    } else {
      EXPECT_EQ(counts, reference) << threads << " threads";
    }
  }
}

TEST(Registry, LookupsAreIdempotent) {
  auto& reg = Registry::Global();
  Counter* c1 = reg.GetCounter("test.obs.idempotent");
  Counter* c2 = reg.GetCounter("test.obs.idempotent");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("test.obs.idempotent_ms");
  Histogram* h2 = reg.GetHistogram("test.obs.idempotent_ms");
  EXPECT_EQ(h1, h2);
}

TEST(RegistryDeathTest, KindCollisionAborts) {
  auto& reg = Registry::Global();
  reg.GetCounter("test.obs.collision");
  EXPECT_DEATH(reg.GetGauge("test.obs.collision"), "collision");
}

TEST(RegistryDeathTest, HistogramBoundsCollisionAborts) {
  auto& reg = Registry::Global();
  reg.GetHistogram("test.obs.bounds_ms", {1.0, 2.0});
  EXPECT_DEATH(reg.GetHistogram("test.obs.bounds_ms", {1.0, 3.0}),
               "collision");
}

TEST(Registry, SnapshotAndJsonAreByteStable) {
  auto& reg = Registry::Global();
  reg.GetCounter("test.obs.snap")->Add(5);
  reg.GetGauge("test.obs.snap_gauge")->Set(2);
  reg.GetHistogram("test.obs.snap_ms")->Observe(1.5);
  const auto s1 = reg.TakeSnapshot();
  const auto s2 = reg.TakeSnapshot();
  EXPECT_EQ(s1.RenderJson(), s2.RenderJson());
  EXPECT_EQ(s1.RenderText(), s2.RenderText());
  EXPECT_NE(s1.RenderJson().find("\"test.obs.snap\":5"), std::string::npos);
  EXPECT_NE(s1.RenderJson().find(
                "\"test.obs.snap_gauge\":{\"value\":2,\"peak\":2}"),
            std::string::npos);
  EXPECT_EQ(s1.histograms.at("test.obs.snap_ms").count, 1u);
}

TEST(Span, TraceRingRecordsAndMergesInStartOrder) {
  ClearTrace();
  {
    Span outer("test.outer");
    Span inner("test.inner");
  }
  const auto trace = CollectTrace();
  ASSERT_EQ(trace.size(), 2u);
  // Merge order is start time: outer starts before inner but ends after.
  EXPECT_STREQ(trace[0].stage, "test.outer");
  EXPECT_STREQ(trace[1].stage, "test.inner");
  EXPECT_LE(trace[0].start_ns, trace[1].start_ns);
  EXPECT_GE(trace[0].dur_ns, trace[1].dur_ns);
  ClearTrace();
  EXPECT_TRUE(CollectTrace().empty());
}

TEST(Span, RingIsBounded) {
  ClearTrace();
  for (size_t i = 0; i < kTraceRingCapacity + 100; ++i) {
    Span s("test.bounded");
  }
  EXPECT_EQ(CollectTrace().size(), kTraceRingCapacity);
  ClearTrace();
}

TEST(Span, FeedsHistogram) {
  auto& reg = Registry::Global();
  Histogram* h = reg.GetHistogram("test.obs.span_ms");
  { Span s("test.span", h); }
  EXPECT_EQ(h->Count(), 1u);
}

TEST(Disabled, NothingRecords) {
  EnabledGuard guard;
  auto& reg = Registry::Global();
  Counter* c = reg.GetCounter("test.obs.off_counter");
  Gauge* g = reg.GetGauge("test.obs.off_gauge");
  Histogram* h = reg.GetHistogram("test.obs.off_ms");
  ClearTrace();
  SetEnabled(false);
  c->Add(7);
  g->Set(7);
  h->Observe(7.0);
  { Span s("test.off"); }
  SetEnabled(true);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_TRUE(CollectTrace().empty());
}

}  // namespace
}  // namespace glint::obs
