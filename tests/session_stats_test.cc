// Ground-truth property test for the per-session cache counters surfaced
// through DeploymentSession::Stats() / ServingEngine::AggregateStats(): a
// scripted AddRule / OnEvent / Inspect sequence whose verdict-LRU and
// GnnGraphCache hit counts are derivable by hand, plus the bounds-guard
// behavior of ServingEngine (has_home / FindHome / TryOnEvent / home).

#include <gtest/gtest.h>

#include <vector>

#include "core/glint.h"
#include "core/serving.h"
#include "core/session.h"

namespace glint::core {
namespace {

// One small trained detector shared by every test here; quality is
// irrelevant — the counters only depend on cache keys and LRU mechanics.
class SessionStatsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Glint::Options opts;
    opts.corpus.ifttt = 200;
    opts.corpus.smartthings = 40;
    opts.corpus.alexa = 60;
    opts.corpus.google_assistant = 40;
    opts.corpus.home_assistant = 40;
    opts.num_training_graphs = 40;
    opts.builder.max_nodes = 8;
    opts.model.num_scales = 2;
    opts.model.embed_dim = 32;
    opts.train.epochs = 2;
    opts.pairs.num_positive = 60;
    opts.pairs.num_negative = 90;
    glint_ = new Glint(opts);
    glint_->TrainOffline();
  }

  static std::vector<rules::Rule> HomeRules(int n) {
    std::vector<rules::Rule> out(
        glint_->corpus().begin(),
        glint_->corpus().begin() +
            std::min<size_t>(static_cast<size_t>(n),
                             glint_->corpus().size()));
    for (size_t i = 0; i < out.size(); ++i) {
      out[i].id = 9000 + static_cast<int>(i);
    }
    return out;
  }

  static graph::Event EventFor(const rules::Rule& r, double t) {
    graph::Event e;
    e.time_hours = t;
    e.location = r.location;
    e.device = r.trigger.device;
    e.state = r.trigger.state;
    return e;
  }

  static Glint* glint_;
};

Glint* SessionStatsTest::glint_ = nullptr;

TEST_F(SessionStatsTest, FreshSessionCountsRulesOnly) {
  auto rules = HomeRules(4);
  DeploymentSession session(&glint_->detector());
  for (const auto& r : rules) session.AddRule(r);
  const auto s = session.Stats();
  EXPECT_EQ(s.rules, 4u);
  EXPECT_EQ(s.inspects, 0u);
  EXPECT_EQ(s.events, 0u);
  EXPECT_EQ(s.verdict_hits, 0u);
  EXPECT_EQ(s.verdict_misses, 0u);
  EXPECT_EQ(s.tensor_hits, 0u);
  EXPECT_EQ(s.tensor_misses, 0u);
}

TEST_F(SessionStatsTest, ScriptedSequenceHitsExactCounts) {
  // Capacity 2 on both caches. The script walks three graph structures:
  //   A = rules {0..4}, B = {0..3}, C = {0..2}
  // (removing the *last* rule, so re-adding it restores the exact node
  // order and therefore the exact cache key).
  auto rules = HomeRules(5);
  DeploymentSession::Config cfg;
  cfg.cache_capacity = 2;
  DeploymentSession session(&glint_->detector(), cfg);
  for (const auto& r : rules) session.AddRule(r);
  const double now = 1.0;

  // 1) A: verdict miss, tensor miss.        verdict LRU {A}, tensor {A}
  const auto wa = session.Inspect(now);
  // 2) B: verdict miss, tensor miss.        verdict {A,B}, tensor {A,B}
  ASSERT_TRUE(session.RemoveRule(rules[4].id));
  const auto wb = session.Inspect(now);
  // 3) A again: verdict HIT (refreshes A in the verdict LRU only — the
  //    tensor cache is never consulted on a verdict hit, so its recency
  //    order still says A is oldest).       verdict {B,A}, tensor {A,B}
  session.AddRule(rules[4]);
  const auto wa2 = session.Inspect(now);
  EXPECT_EQ(wa2.Render(), wa.Render());
  // 4) C: verdict miss, tensor miss; both caches are full, so the verdict
  //    LRU evicts B (oldest there) while the tensor cache evicts A.
  //                                         verdict {A,C}, tensor {B,C}
  ASSERT_TRUE(session.RemoveRule(rules[4].id));
  ASSERT_TRUE(session.RemoveRule(rules[3].id));
  const auto wc = session.Inspect(now);
  // 5) B again: verdict miss (B was evicted in step 4) but tensor HIT —
  //    the divergent recency orders are exactly what the two counters are
  //    supposed to make visible.
  session.AddRule(rules[3]);
  const auto wb2 = session.Inspect(now);
  EXPECT_EQ(wb2.Render(), wb.Render());  // hit path == recompute path

  const auto s = session.Stats();
  EXPECT_EQ(s.inspects, 5u);
  EXPECT_EQ(s.verdict_hits, 1u);
  EXPECT_EQ(s.verdict_misses, 4u);
  EXPECT_EQ(s.tensor_hits, 1u);
  EXPECT_EQ(s.tensor_misses, 3u);
  // Every verdict miss does exactly one tensor lookup.
  EXPECT_EQ(s.tensor_hits + s.tensor_misses, s.verdict_misses);
  EXPECT_EQ(s.rules, 4u);  // ended at structure B
  (void)wc;
}

TEST_F(SessionStatsTest, EventsAreCountedAndChangeTheKey) {
  auto rules = HomeRules(4);
  DeploymentSession session(&glint_->detector());
  for (const auto& r : rules) session.AddRule(r);
  (void)session.Inspect(1.0);
  session.OnEvent(EventFor(rules[0], 1.1));
  session.OnEvent(EventFor(rules[1], 1.2));
  const auto s = session.Stats();
  EXPECT_EQ(s.events, 2u);
  // Counters stay internally consistent whatever the events did to edges.
  const auto s2 = session.Stats();
  (void)session.Inspect(1.3);
  const auto s3 = session.Stats();
  EXPECT_EQ(s3.inspects, s2.inspects + 1);
  EXPECT_EQ(s3.verdict_hits + s3.verdict_misses, s3.inspects);
}

TEST_F(SessionStatsTest, AggregateStatsSumsHomes) {
  auto rules = HomeRules(4);
  ServingEngine engine(&glint_->detector());
  engine.AddHome(rules);
  engine.AddHome(rules);
  engine.AddHome(rules);
  engine.OnEvent(0, EventFor(rules[0], 1.0));
  engine.OnEvent(2, EventFor(rules[1], 1.1));
  (void)engine.InspectAll(1.5);
  (void)engine.InspectAll(1.5);  // unchanged structures: all verdict hits

  DeploymentSession::CacheStats manual;
  for (int h = 0; h < 3; ++h) manual += engine.home(h).Stats();
  const auto agg = engine.AggregateStats();
  EXPECT_EQ(agg.inspects, manual.inspects);
  EXPECT_EQ(agg.events, manual.events);
  EXPECT_EQ(agg.rules, manual.rules);
  EXPECT_EQ(agg.verdict_hits, manual.verdict_hits);
  EXPECT_EQ(agg.tensor_hits, manual.tensor_hits);
  EXPECT_EQ(agg.inspects, 6u);
  EXPECT_EQ(agg.events, 2u);
  EXPECT_EQ(agg.verdict_hits, 3u);  // the second InspectAll, per home
}

TEST_F(SessionStatsTest, BoundsGuards) {
  auto rules = HomeRules(3);
  ServingEngine engine(&glint_->detector());
  const int h = engine.AddHome(rules);
  EXPECT_TRUE(engine.has_home(h));
  EXPECT_FALSE(engine.has_home(-1));
  EXPECT_FALSE(engine.has_home(1));
  EXPECT_NE(engine.FindHome(h), nullptr);
  EXPECT_EQ(engine.FindHome(-1), nullptr);
  EXPECT_EQ(engine.FindHome(7), nullptr);

  const graph::Event e = EventFor(rules[0], 1.0);
  EXPECT_TRUE(engine.TryOnEvent(h, e).ok());
  const Status bad = engine.TryOnEvent(5, e);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("no home with index 5"), std::string::npos);
  EXPECT_EQ(engine.home(h).Stats().events, 1u);  // bad route touched nothing
}

TEST_F(SessionStatsTest, CheckedAccessorAbortsOutOfRange) {
  auto rules = HomeRules(3);
  ServingEngine engine(&glint_->detector());
  engine.AddHome(rules);
  EXPECT_DEATH((void)engine.home(3), "");
}

}  // namespace
}  // namespace glint::core
