#pragma once

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace glint::ml {

/// Multi-layer perceptron with ReLU hidden layers and a softmax output,
/// trained with mini-batch Adam on class-weighted cross-entropy. Backprop
/// is hand-rolled for the fixed feedforward topology.
class Mlp : public Classifier {
 public:
  struct Params {
    std::vector<size_t> hidden = {64, 32};
    int epochs = 80;
    int batch_size = 32;
    double lr = 1e-3;
    double weight_decay = 1e-5;
    uint64_t seed = 11;
  };

  Mlp() : Mlp(Params()) {}
  explicit Mlp(Params params) : params_(std::move(params)) {}

  void Fit(const Dataset& data, const std::vector<double>& class_weights) override;
  int Predict(const FloatVec& x) const override;
  double PredictProba(const FloatVec& x) const override;
  std::string Name() const override { return "MLP"; }

  /// Class probability vector for one sample.
  std::vector<double> Probabilities(const FloatVec& x) const;

 private:
  struct Layer {
    // Row-major [out][in] weights and biases with Adam moments.
    std::vector<FloatVec> w;
    FloatVec b;
    std::vector<FloatVec> mw, vw;
    FloatVec mb, vb;
  };

  std::vector<double> Forward(const FloatVec& x,
                              std::vector<FloatVec>* activations) const;

  Params params_;
  StandardScaler scaler_;
  std::vector<Layer> layers_;
  int num_classes_ = 2;
};

}  // namespace glint::ml
