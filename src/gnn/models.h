#pragma once

#include <memory>
#include <string>

#include "gnn/metapath.h"

namespace glint::gnn {

/// Output of a model forward pass.
struct ForwardResult {
  Tensor* embedding = nullptr;           ///< 1 x embed_dim graph embedding
  Tensor* logits = nullptr;              ///< 1 x 2 class logits
  std::vector<Tensor*> pool_logits;      ///< per-scale logits for L_pool
};

/// Output of a block-diagonal batched forward over a GnnBatch of B graphs:
/// row b of every tensor is bit-identical to the sequential ForwardResult
/// of member graph b.
struct BatchedForwardResult {
  Tensor* embeddings = nullptr;          ///< B x embed_dim graph embeddings
  Tensor* logits = nullptr;              ///< B x 2 class logits
  std::vector<Tensor*> pool_logits;      ///< per-scale B x 1 logits
};

/// Common interface for all graph classification models compared in the
/// paper (Tables 5-6, Figs. 7-8).
class GraphModel {
 public:
  virtual ~GraphModel() = default;

  /// Runs the model on one graph (batch size 1; graphs are small).
  virtual ForwardResult Forward(Tape* t, const GnnGraph& g) = 0;

  /// Optional self-supervised auxiliary loss (InfoGraph's MI term).
  virtual Tensor* AuxLoss(Tape* /*t*/, const GnnGraph& /*g*/,
                          const ForwardResult& /*r*/) {
    return nullptr;
  }

  /// All trainable parameters.
  virtual std::vector<Parameter*> Parameters() = 0;

  /// Parameters grouped front-to-back for transfer-learning layer freezing
  /// (group 0 = closest to the input; last group = classification head).
  virtual std::vector<std::vector<Parameter*>> ParameterGroups() = 0;

  virtual std::string Name() const = 0;
  virtual int EmbedDim() const = 0;

  /// Total parameter count (for the Sec. 4.8.2 model-size figure).
  size_t NumParameterFloats() {
    size_t n = 0;
    for (auto* p : Parameters()) n += p->value.size();
    return n;
  }
};

/// Homogeneous baselines -------------------------------------------------

/// GCN: stacked graph convolutions + mean readout.
class GcnModel : public GraphModel {
 public:
  GcnModel(int in_dim, int hidden, int num_layers, uint64_t seed);
  ForwardResult Forward(Tape* t, const GnnGraph& g) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<std::vector<Parameter*>> ParameterGroups() override;
  std::string Name() const override { return "GCN"; }
  int EmbedDim() const override { return 2 * hidden_; }

 private:
  int hidden_;
  std::vector<GcnConv> convs_;
  Linear head_;
};

/// GIN: graph isomorphism network + sum readout.
class GinModel : public GraphModel {
 public:
  GinModel(int in_dim, int hidden, int num_layers, uint64_t seed);
  ForwardResult Forward(Tape* t, const GnnGraph& g) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<std::vector<Parameter*>> ParameterGroups() override;
  std::string Name() const override { return "GIN"; }
  int EmbedDim() const override { return 2 * hidden_; }

 protected:
  Tensor* Encode(Tape* t, const GnnGraph& g, Tensor** node_embeddings);

  int hidden_;
  std::vector<GinConv> convs_;
  Linear head_;
};

/// InfoGraph: GIN encoder + graph/node mutual-information maximization
/// (JSD discriminator against feature-shuffled corruptions).
class InfoGraphModel : public GinModel {
 public:
  InfoGraphModel(int in_dim, int hidden, int num_layers, uint64_t seed);
  Tensor* AuxLoss(Tape* t, const GnnGraph& g, const ForwardResult& r) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override { return "IFG"; }

 private:
  Parameter disc_w_{Matrix(1, 1)};
};

/// GXN: multi-scale graph network with VIPool (homogeneous).
class GxnModel : public GraphModel {
 public:
  GxnModel(int in_dim, int hidden, int num_scales, double pooling_ratio,
           uint64_t seed);
  ForwardResult Forward(Tape* t, const GnnGraph& g) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<std::vector<Parameter*>> ParameterGroups() override;
  std::string Name() const override { return "GXN"; }
  int EmbedDim() const override { return embed_dim_; }

 private:
  int hidden_;
  int embed_dim_;
  Linear input_;
  std::vector<GcnConv> convs_;   ///< one conv per scale
  std::vector<VIPool> pools_;    ///< between scales
  Linear fuse_;
  Linear head_;
};

/// Heterogeneous baselines -------------------------------------------------

/// MAGCN: MAGNN metapath converter + GCN back end.
class MagcnModel : public GraphModel {
 public:
  MagcnModel(int hidden, int num_layers, uint64_t seed);
  ForwardResult Forward(Tape* t, const GnnGraph& g) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<std::vector<Parameter*>> ParameterGroups() override;
  std::string Name() const override { return "MAGCN"; }
  int EmbedDim() const override { return 2 * hidden_; }

 private:
  int hidden_;
  MetapathConverter converter_;
  std::vector<GcnConv> convs_;
  Linear head_;
};

/// MAGXN: MAGNN metapath converter + GXN-style multi-scale back end.
class MagxnModel : public GraphModel {
 public:
  MagxnModel(int hidden, int num_scales, double pooling_ratio, uint64_t seed);
  ForwardResult Forward(Tape* t, const GnnGraph& g) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<std::vector<Parameter*>> ParameterGroups() override;
  std::string Name() const override { return "MAGXN"; }
  int EmbedDim() const override { return embed_dim_; }

 private:
  int hidden_;
  int embed_dim_;
  MetapathConverter converter_;
  std::vector<GcnConv> convs_;
  std::vector<VIPool> pools_;
  Linear fuse_;
  Linear head_;
};

/// HGSL-style heterogeneous graph structure learning: learns a residual
/// similarity adjacency S = sigmoid(H W H^T), mixes it with the observed
/// adjacency, and classifies with graph convolutions over the mixture.
class HgslModel : public GraphModel {
 public:
  HgslModel(int hidden, uint64_t seed);
  ForwardResult Forward(Tape* t, const GnnGraph& g) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<std::vector<Parameter*>> ParameterGroups() override;
  std::string Name() const override { return "HGSL"; }
  int EmbedDim() const override { return hidden_; }

 private:
  int hidden_;
  Linear proj_[kNumNodeTypes];
  Parameter sim_w_{Matrix(1, 1)};
  Linear conv1_, conv2_;
  Linear head_;
};

/// ITGNN ---------------------------------------------------------------

/// The paper's model (Algorithm 2): metapath-based node transformation +
/// multi-scale graph generator (TAG propagation + VIPool) + fused readout.
/// ITGNN-S uses the classification head (Eq. 2); ITGNN-C trains the
/// embedding with contrastive loss (Eq. 1). The same architecture serves
/// both (Sec. 3.3).
class ItgnnModel : public GraphModel {
 public:
  struct Config {
    int hidden = 64;
    int num_scales = 3;        ///< ablation: 1, 2, 3, 5
    double pooling_ratio = 0.6;  ///< ablation: 0.3, 0.6, 1.0
    int prop_layers = 2;       ///< ablation: 1, 2, 4, 6
    int tag_hops = 2;
    int embed_dim = 128;
    bool use_intra = true;     ///< ablation: metapath module toggles
    bool use_inter = true;
    bool use_hadamard = true;  ///< ablation: Hadamard interaction term
    uint64_t seed = 42;
  };

  ItgnnModel() : ItgnnModel(Config()) {}
  explicit ItgnnModel(Config config);

  ForwardResult Forward(Tape* t, const GnnGraph& g) override;

  /// One forward over a block-diagonal GnnBatch: amortizes tape/dispatch
  /// overhead across the fleet while staying bit-identical per graph to B
  /// sequential Forward calls (see the segment-op contract in
  /// gnn/tensor.h).
  BatchedForwardResult ForwardBatched(Tape* t, const GnnBatch& batch);

  std::vector<Parameter*> Parameters() override;
  std::vector<std::vector<Parameter*>> ParameterGroups() override;
  std::string Name() const override { return "ITGNN"; }
  int EmbedDim() const override { return config_.embed_dim; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  MetapathConverter converter_;
  std::vector<std::vector<TagConv>> scale_convs_;  ///< [scale][layer]
  std::vector<VIPool> pools_;
  Linear fuse_;
  Linear head_;
};

/// Helper: full-graph features for single-type graphs (asserts exactly one
/// node type present).
Tensor* HomogeneousFeatures(Tape* t, const GnnGraph& g);

}  // namespace glint::gnn
