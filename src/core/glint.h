#pragma once

#include <memory>

#include "core/warning.h"
#include "correlation/discovery.h"
#include "gnn/drift.h"
#include "gnn/models.h"
#include "gnn/trainer.h"
#include "gnn/transfer.h"
#include "graph/builder.h"
#include "graph/event_log.h"
#include "rules/corpus.h"

namespace glint::core {

/// Glint — the end-to-end interactive-threat detection system (Fig. 2).
///
/// Offline (back end): crawl/generate the rule corpus, train the rule
/// correlation discoverer (Sec. 3.2.1), build labeled interaction-graph
/// datasets (Sec. 3.2.2), train ITGNN-S (classification, Eq. 2) and ITGNN-C
/// (contrastive, Eq. 1), and fit the drifting-sample detector (Alg. 3).
///
/// Online (front end): construct the real-time interaction graph from the
/// deployed rules and event logs, run the drift check then the classifier,
/// and emit a warning with explained culprit rules; user feedback graphs
/// fine-tune the model (steps 4-8 in Fig. 2).
class Glint {
 public:
  struct Options {
    rules::CorpusConfig corpus;
    graph::GraphBuilder::Config builder;
    gnn::ItgnnModel::Config model;
    gnn::TrainConfig train;
    /// Graphs to build for offline training.
    int num_training_graphs = 800;
    /// Labeled action-trigger pairs for the correlation discoverer.
    correlation::PairDatasetConfig pairs;
    /// Use the *learned* correlation classifier (vs the semantic oracle)
    /// when building graphs online, mirroring the paper's pipeline.
    bool use_learned_correlation = true;
    /// Drift threshold T_MAD.
    double t_mad = 3.0;
    uint64_t seed = 97;
  };

  Glint() : Glint(Options()) {}
  explicit Glint(Options options);

  /// Runs the full offline stage. Expensive (trains three models).
  void TrainOffline();

  /// True once TrainOffline (or LoadModels) has completed.
  bool ready() const { return ready_; }

  /// Online stage: inspects a deployment given its event log at time `now`.
  ThreatWarning Inspect(const std::vector<rules::Rule>& deployed,
                        const graph::EventLog& log, double now_hours);

  /// Inspects a pre-built interaction graph (initial-setup check).
  ThreatWarning InspectGraph(const graph::InteractionGraph& g);

  /// Step 7-8 of Fig. 2: the user marks graphs (e.g. false alarms or
  /// confirmed drifting threats); the model is fine-tuned on them.
  void FineTune(const std::vector<graph::InteractionGraph>& feedback,
                const std::vector<bool>& is_threat);

  /// Builds the static interaction graph of a rule set using the learned
  /// (or oracle) correlation predicate.
  graph::InteractionGraph BuildGraph(const std::vector<rules::Rule>& deployed);

  /// Serialization of the trained detector.
  Status SaveModels(const std::string& dir) const;
  Status LoadModels(const std::string& dir);

  // Accessors for benches and examples.
  gnn::ItgnnModel* classifier() { return classifier_.get(); }
  gnn::ItgnnModel* contrastive() { return contrastive_.get(); }
  const gnn::DriftDetector& drift_detector() const { return drift_; }
  const correlation::CorrelationDiscovery& discovery() const {
    return *discovery_;
  }
  graph::GraphBuilder* builder() { return builder_.get(); }
  const std::vector<rules::Rule>& corpus() const { return corpus_rules_; }
  const nlp::EmbeddingModel& word_model() const { return word_model_; }
  const nlp::EmbeddingModel& sentence_model() const { return sentence_model_; }

 private:
  ThreatWarning Analyze(const graph::InteractionGraph& g);

  Options options_;
  nlp::EmbeddingModel word_model_;
  nlp::EmbeddingModel sentence_model_;
  std::vector<rules::Rule> corpus_rules_;
  std::unique_ptr<correlation::CorrelationDiscovery> discovery_;
  std::unique_ptr<graph::GraphBuilder> builder_;
  std::unique_ptr<gnn::ItgnnModel> classifier_;   ///< ITGNN-S
  std::unique_ptr<gnn::ItgnnModel> contrastive_;  ///< ITGNN-C
  gnn::DriftDetector drift_;
  std::vector<gnn::GnnGraph> train_graphs_;
  bool ready_ = false;
};

}  // namespace glint::core
