#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace glint::nlp {

/// Coarse part-of-speech tags (a subset of the Universal Dependencies tag
/// set used by the paper's Figure 4 example).
enum class Pos {
  kNoun,
  kVerb,
  kAdjective,
  kAdverb,
  kAdposition,   // in, on, at, ...
  kDeterminer,   // the, a, ...
  kSconj,        // if, when, while, ...
  kCconj,        // and, or, ...
  kPronoun,
  kNumber,
  kParticle,     // to, not
  kProperNoun,   // named entities (brands), discarded by Algorithm 1
  kOther,
};

const char* PosName(Pos pos);

/// Domain lexicon: the WordNet substitute for the smart-home vocabulary.
///
/// The lexicon provides (i) a POS dictionary, (ii) synonym clusters (e.g.
/// "turn_on"/"activate"/"enable"), (iii) a hypernym taxonomy over devices
/// and physical channels (e.g. bulb -> light -> device), (iv)
/// meronym/holonym part-of relations (e.g. lock is part of door, window is
/// part of room), and (v) a named-entity (brand) list. Algorithm 1's binary
/// semantic features V2/V3 are computed from these relations.
class Lexicon {
 public:
  /// Returns the process-wide lexicon (immutable after construction).
  static const Lexicon& Instance();

  /// POS of a known word, or kOther when unknown.
  Pos PosOf(const std::string& word) const;

  /// True if the lexicon knows the word.
  bool Contains(const std::string& word) const;

  /// Synonym-cluster identifier (empty if the word has no cluster). Words in
  /// the same cluster are domain synonyms.
  const std::string& ClusterOf(const std::string& word) const;

  /// True if `a` and `b` are in the same synonym cluster.
  bool AreSynonyms(const std::string& a, const std::string& b) const;

  /// True if `ancestor` is a (transitive) hypernym of `word`,
  /// e.g. IsHypernym("device", "bulb").
  bool IsHypernym(const std::string& ancestor, const std::string& word) const;

  /// True if the two words are related by hypernymy in either direction or
  /// share an immediate hypernym.
  bool HypernymRelated(const std::string& a, const std::string& b) const;

  /// True if `part` is a registered part of `whole` (meronym), transitively.
  bool IsMeronym(const std::string& part, const std::string& whole) const;

  /// True if the two words stand in any part-whole relation (either
  /// direction).
  bool MeronymRelated(const std::string& a, const std::string& b) const;

  /// True for brand / named-entity words (e.g. "wyze") which Algorithm 1
  /// discards before computing similarities.
  bool IsNamedEntity(const std::string& word) const;

  /// True for stop words excluded from averaged embeddings.
  bool IsStopWord(const std::string& word) const;

  /// Physical channel a word is associated with, if any ("" otherwise).
  /// E.g. "thermostat" -> "temperature", "smoke" -> "smoke".
  const std::string& ChannelOf(const std::string& word) const;

  /// All words known to the lexicon (for tests and vocabulary stats).
  std::vector<std::string> Words() const;

 private:
  Lexicon();

  void AddWords(Pos pos, const std::vector<std::string>& words);
  void AddCluster(const std::string& cluster,
                  const std::vector<std::string>& words);
  void AddHypernym(const std::string& parent,
                   const std::vector<std::string>& children);
  void AddMeronym(const std::string& whole,
                  const std::vector<std::string>& parts);
  void AddChannel(const std::string& channel,
                  const std::vector<std::string>& words);

  std::unordered_map<std::string, Pos> pos_;
  std::unordered_map<std::string, std::string> cluster_;
  std::unordered_map<std::string, std::string> hypernym_parent_;
  std::unordered_map<std::string, std::vector<std::string>> meronym_parts_;
  std::unordered_map<std::string, std::string> channel_;
  std::unordered_set<std::string> named_entities_;
  std::unordered_set<std::string> stop_words_;
  std::string empty_;
};

}  // namespace glint::nlp
