#pragma once

#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>

namespace glint {

/// Error codes for fallible Glint operations (I/O, parsing, shape checks).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kInternal,
};

/// Lightweight status object (Arrow/RocksDB style). Functions whose failure
/// is an expected runtime condition return Status (or Result<T>) instead of
/// throwing; programming errors use GLINT_CHECK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IOError: cannot open file".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kIOError: name = "IOError"; break;
      case StatusCode::kFailedPrecondition: name = "FailedPrecondition"; break;
      case StatusCode::kInternal: name = "Internal"; break;
      default: break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: a value or an error Status. Exactly one of the two is ever
/// constructed (union storage), so T need not be default-constructible and
/// the error path pays no T construction.
template <typename T>
class Result {
 public:
  Result(T value) : ok_(true), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : ok_(false), status_(std::move(status)) {}  // NOLINT

  Result(const Result& o) : ok_(o.ok_) {
    if (ok_) {
      new (&value_) T(o.value_);
    } else {
      new (&status_) Status(o.status_);
    }
  }
  Result(Result&& o) noexcept : ok_(o.ok_) {
    if (ok_) {
      new (&value_) T(std::move(o.value_));
    } else {
      new (&status_) Status(std::move(o.status_));
    }
  }
  Result& operator=(const Result& o) {
    if (this != &o) {
      Destroy();
      ok_ = o.ok_;
      if (ok_) {
        new (&value_) T(o.value_);
      } else {
        new (&status_) Status(o.status_);
      }
    }
    return *this;
  }
  Result& operator=(Result&& o) noexcept {
    if (this != &o) {
      Destroy();
      ok_ = o.ok_;
      if (ok_) {
        new (&value_) T(std::move(o.value_));
      } else {
        new (&status_) Status(std::move(o.status_));
      }
    }
    return *this;
  }
  ~Result() { Destroy(); }

  bool ok() const { return ok_; }
  /// OK when a value is held, the stored error otherwise.
  const Status& status() const {
    static const Status ok_status;
    return ok_ ? ok_status : status_;
  }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  /// Returns the value, aborting with the status message if not ok.
  /// Intended for examples/benches where failure is a bug.
  T ValueOrDie() && {
    if (!ok_) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return std::move(value_);
  }

 private:
  void Destroy() {
    if (ok_) {
      value_.~T();
    } else {
      status_.~Status();
    }
  }

  bool ok_;
  union {
    T value_;
    Status status_;
  };
};

}  // namespace glint

/// Aborts with a diagnostic when `cond` is false. Used for invariants and
/// programmer errors, never for expected runtime failures.
#define GLINT_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GLINT_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Propagates a non-OK Status from the current function.
#define GLINT_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::glint::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)
