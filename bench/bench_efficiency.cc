// Regenerates the Sec. 4.8.2 efficiency study with google-benchmark:
// per-graph prediction latency vs graph size, online graph construction
// latency, embedding throughput, and serialized model size (paper: ~0.61 s
// per heterogeneous graph on their stack; 6.13 MB ITGNN model).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "gnn/model_io.h"
#include "graph/builder.h"
#include "graph/threat_analyzer.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT

namespace {

struct Fixture {
  std::vector<rules::Rule> corpus;
  std::vector<gnn::GnnGraph> graphs_by_size[3];  // ~5, ~20, ~50 nodes
  std::unique_ptr<gnn::ItgnnModel> model;
  std::unique_ptr<graph::GraphBuilder> builder;

  Fixture() {
    corpus = DefaultCorpus();
    graph::GraphBuilder::Config bc;
    builder = std::make_unique<graph::GraphBuilder>(bc, &WordModel(),
                                                    &SentenceModel());
    const int sizes[3][2] = {{4, 6}, {18, 22}, {45, 50}};
    for (int b = 0; b < 3; ++b) {
      graph::GraphBuilder::Config sbc;
      sbc.min_nodes = sizes[b][0];
      sbc.max_nodes = sizes[b][1];
      sbc.size_skew = 1.0;
      sbc.seed = 100 + static_cast<uint64_t>(b);
      graph::GraphBuilder sized(sbc, &WordModel(), &SentenceModel());
      auto ds = sized.BuildDataset(corpus, 24);
      graphs_by_size[b] = gnn::ToGnnGraphs(ds);
    }
    model = std::make_unique<gnn::ItgnnModel>();
  }
};

Fixture& F() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_ItgnnPredict(benchmark::State& state) {
  auto& graphs = F().graphs_by_size[state.range(0)];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gnn::Trainer::Predict(F().model.get(), graphs[i % graphs.size()]));
    ++i;
  }
  state.SetLabel(StrFormat("~%d-node graphs",
                           graphs[0].num_nodes));
}
BENCHMARK(BM_ItgnnPredict)->Arg(0)->Arg(1)->Arg(2);

void BM_ItgnnEmbed(benchmark::State& state) {
  auto& graphs = F().graphs_by_size[1];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gnn::Trainer::Embed(F().model.get(), graphs[i % graphs.size()]));
    ++i;
  }
}
BENCHMARK(BM_ItgnnEmbed);

void BM_RealTimeGraphBuild(benchmark::State& state) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  graph::EventLog log;
  for (int i = 0; i < 40; ++i) {
    graph::Event e;
    e.time_hours = 18.0 + 0.05 * i;
    e.device = i % 2 == 0 ? rules::DeviceType::kLight
                          : rules::DeviceType::kMotionSensor;
    e.state = i % 2 == 0 ? "on" : "active";
    log.Append(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(F().builder->BuildRealTime(table1, log, 20.0));
  }
}
BENCHMARK(BM_RealTimeGraphBuild);

void BM_RuleEmbedding(benchmark::State& state) {
  const auto& corpus = F().corpus;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WordModel().EmbedSentence(corpus[i % corpus.size()].text));
    ++i;
  }
}
BENCHMARK(BM_RuleEmbedding);

void BM_ThreatAnalyzerLabel(benchmark::State& state) {
  auto table4 = rules::CorpusGenerator::Table4Settings();
  auto g = F().builder->BuildFromRules(table4);
  for (auto _ : state) {
    graph::InteractionGraph copy = g;
    graph::ThreatAnalyzer::Label(&copy);
    benchmark::DoNotOptimize(copy.vulnerable());
  }
}
BENCHMARK(BM_ThreatAnalyzerLabel);

}  // namespace

int main(int argc, char** argv) {
  Banner("Sec. 4.8.2: efficiency (latency + model size)", "Sec. 4.8.2");
  // Model size (the paper reports 6.13 MB for ITGNN on heterogeneous
  // graphs; ours is leaner because the CPU substrate uses hidden=64).
  gnn::ItgnnModel itgnn;
  std::printf("ITGNN parameters: %zu floats, serialized %.2f MB "
              "(paper: 6.13 MB)\n",
              itgnn.NumParameterFloats(),
              static_cast<double>(gnn::ModelBytes(&itgnn)) / 1e6);
  std::printf("paper prediction latency: ~0.61 s per heterogeneous graph "
              "(their stack);\nours below (CPU, batch-free forward):\n");

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
