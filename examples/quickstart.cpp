// Quickstart: train a small Glint detector end-to-end and check a user's
// rule deployment for interactive threats.
//
//   $ ./build/examples/quickstart
//
// This walks the full pipeline of the paper's Fig. 2: corpus -> rule
// correlation discovery -> interaction graph dataset -> ITGNN training ->
// threat inspection with an explained warning.

#include <cstdio>

#include "core/glint.h"

using namespace glint;  // NOLINT

int main() {
  std::printf("== Glint quickstart ==\n\n");

  // 1. Configure a small offline training run (scale up for accuracy; see
  //    bench/ for the paper-scale configurations).
  core::Glint::Options options;
  options.corpus.ifttt = 500;
  options.corpus.smartthings = 80;
  options.corpus.alexa = 150;
  options.corpus.google_assistant = 80;
  options.corpus.home_assistant = 80;
  options.num_training_graphs = 600;
  options.builder.max_nodes = 10;
  options.builder.size_skew = 2.0;
  options.model.num_scales = 2;
  options.model.embed_dim = 64;
  options.train.epochs = 14;
  options.train.oversample_factor = 2.5;
  options.pairs.num_positive = 200;
  options.pairs.num_negative = 300;

  core::Glint glint(options);
  std::printf("training offline (corpus, correlation model, ITGNN)...\n");
  glint.TrainOffline();
  std::printf("done. corpus: %zu rules.\n\n", glint.corpus().size());

  // 2. A user's deployment: the paper's Table 1 rules across SmartThings,
  //    IFTTT and Alexa.
  auto deployed = rules::CorpusGenerator::Table1Rules();
  std::printf("deployed rules:\n");
  for (const auto& r : deployed) {
    std::printf("  [%s] %s\n", rules::PlatformName(r.platform),
                r.text.c_str());
  }

  // 3. Initial-setup check: build the interaction graph and inspect it.
  auto graph = glint.BuildGraph(deployed);
  std::printf("\ninteraction graph: %d nodes, %d edges (%s)\n",
              graph.num_nodes(), graph.num_edges(),
              graph.IsHeterogeneous() ? "heterogeneous" : "homogeneous");

  auto warning = glint.InspectGraph(graph);
  std::printf("\n%s\n", warning.Render().c_str());

  // 4. Persist the trained detector for the hub.
  if (auto st = glint.SaveModels("/tmp"); st.ok()) {
    std::printf("models saved to /tmp/itgnn_{s,c}.bin\n");
    std::remove("/tmp/itgnn_s.bin");
    std::remove("/tmp/itgnn_c.bin");
  }
  return 0;
}
