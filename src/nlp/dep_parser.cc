#include "nlp/dep_parser.h"

#include "nlp/tokenizer.h"

namespace glint::nlp {
namespace {

bool IsClauseBoundary(const TaggedToken& t) {
  // Subordinating conjunctions ("if", "when", ...) and the coordinator
  // "then" open a new clause in trigger-action sentences.
  return t.pos == Pos::kSconj || t.text == "then";
}

}  // namespace

Clause DepParser::ParseClause(const std::vector<TaggedToken>& tagged) {
  const Lexicon& lex = Lexicon::Instance();
  Clause clause;
  for (const auto& t : tagged) {
    if (lex.IsNamedEntity(t.text)) continue;  // Algorithm 1 discards NEs.
    switch (t.pos) {
      case Pos::kVerb:
        clause.verbs.push_back(t.text);
        if (clause.root_verb.empty()) clause.root_verb = t.text;
        break;
      case Pos::kNoun:
        if (!lex.IsStopWord(t.text)) {
          clause.nouns.push_back(t.text);
          clause.objects.push_back(t.text);
        }
        break;
      case Pos::kAdjective:
      case Pos::kAdverb:
        clause.modifiers.push_back(t.text);
        break;
      default:
        break;
    }
  }
  // Participles used as states ("is beeping", "is detected") often leave the
  // root verb as the participle; prefer a non-auxiliary if available.
  if (clause.root_verb.empty() && !clause.verbs.empty()) {
    clause.root_verb = clause.verbs.front();
  }
  return clause;
}

ParsedRule DepParser::Parse(const std::string& sentence) {
  auto tagged = PosTagger::TagSentence(sentence);
  ParsedRule parsed;

  // Split tokens into clauses at boundaries. The boundary token itself is
  // dropped but remembered: a SCONJ marks the following span as the trigger.
  std::vector<std::vector<TaggedToken>> spans;
  std::vector<bool> span_is_trigger;
  std::vector<TaggedToken> cur;
  bool cur_trigger = false;
  for (const auto& t : tagged) {
    if (IsClauseBoundary(t)) {
      if (!cur.empty()) {
        spans.push_back(cur);
        span_is_trigger.push_back(cur_trigger);
        cur.clear();
      }
      cur_trigger = (t.pos == Pos::kSconj);
      continue;
    }
    cur.push_back(t);
  }
  if (!cur.empty()) {
    spans.push_back(cur);
    span_is_trigger.push_back(cur_trigger);
  }

  // Assemble: trigger clause first, then actions in order.
  int trigger_idx = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (span_is_trigger[i]) {
      trigger_idx = static_cast<int>(i);
      break;
    }
  }
  if (trigger_idx >= 0) {
    parsed.has_trigger = true;
    parsed.clauses.push_back(ParseClause(spans[trigger_idx]));
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    if (static_cast<int>(i) == trigger_idx) continue;
    Clause c = ParseClause(spans[i]);
    if (c.root_verb.empty() && c.objects.empty()) continue;  // empty span
    parsed.clauses.push_back(std::move(c));
  }
  return parsed;
}

}  // namespace glint::nlp
