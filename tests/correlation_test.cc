#include <gtest/gtest.h>

#include "correlation/discovery.h"
#include "ml/metrics.h"
#include "rules/corpus.h"

namespace glint::correlation {
namespace {

class CorrelationTest : public ::testing::Test {
 protected:
  CorrelationTest() : model_(300, 17), extractor_(&model_) {
    rules::CorpusConfig cc;
    cc.ifttt = 400;
    cc.smartthings = 50;
    cc.alexa = 50;
    cc.google_assistant = 0;
    cc.home_assistant = 50;
    corpus_ = rules::CorpusGenerator(cc).Generate();
  }
  nlp::EmbeddingModel model_;
  FeatureExtractor extractor_;
  std::vector<rules::Rule> corpus_;
};

TEST_F(CorrelationTest, FeatureDimensionFixed) {
  const FloatVec f = extractor_.ExtractPair(corpus_[0], corpus_[1]);
  EXPECT_EQ(f.size(), extractor_.Dim());
  EXPECT_EQ(f.size(), 307u);  // 7 scalar features + 300-d V4
}

TEST_F(CorrelationTest, BinaryFeaturesAreBinary) {
  for (int i = 0; i < 20; ++i) {
    const FloatVec f = extractor_.ExtractPair(corpus_[static_cast<size_t>(i)],
                                              corpus_[static_cast<size_t>(i + 1)]);
    for (size_t k = 2; k <= 6; ++k) {
      EXPECT_TRUE(f[k] == 0.f || f[k] == 1.f);
    }
  }
}

TEST_F(CorrelationTest, DtwFeaturesNonNegative) {
  for (int i = 0; i < 20; ++i) {
    const FloatVec f = extractor_.ExtractPair(corpus_[static_cast<size_t>(i)],
                                              corpus_[static_cast<size_t>(i + 40)]);
    EXPECT_GE(f[0], 0.f);
    EXPECT_GE(f[1], 0.f);
  }
}

TEST_F(CorrelationTest, SharedChannelFeatureFires) {
  // "turn on the heater" action vs "temperature above" trigger: the shared
  // temperature channel indicator (feature index 6) should be 1.
  auto table1 = rules::CorpusGenerator::Table1Rules();
  // Rule 4: AC on when temp > 85; Rule 5: AC on -> close windows.
  const FloatVec f = extractor_.ExtractPair(table1[3], table1[4]);
  EXPECT_EQ(f[6], 1.f);
}

TEST_F(CorrelationTest, PairDatasetBalancedAsConfigured) {
  PairDatasetConfig cfg;
  cfg.num_positive = 60;
  cfg.num_negative = 90;
  ml::Dataset ds = BuildPairDataset(corpus_, extractor_, cfg);
  int pos = 0;
  for (int y : ds.y) pos += y;
  EXPECT_EQ(pos, 60);
  EXPECT_EQ(ds.size(), 150u);
}

TEST_F(CorrelationTest, PairDatasetDeterministic) {
  PairDatasetConfig cfg;
  cfg.num_positive = 20;
  cfg.num_negative = 20;
  ml::Dataset a = BuildPairDataset(corpus_, extractor_, cfg);
  ml::Dataset b = BuildPairDataset(corpus_, extractor_, cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.x[0], b.x[0]);
}

TEST_F(CorrelationTest, EnsembleLearnsCorrelations) {
  PairDatasetConfig cfg;
  cfg.num_positive = 250;
  cfg.num_negative = 350;
  ml::Dataset train = BuildPairDataset(corpus_, extractor_, cfg);

  CorrelationDiscovery discovery(&model_);
  discovery.Train(train);
  EXPECT_TRUE(discovery.trained());

  // Fresh evaluation pairs.
  PairDatasetConfig eval_cfg;
  eval_cfg.num_positive = 60;
  eval_cfg.num_negative = 60;
  eval_cfg.seed = 991;
  Rng rng(eval_cfg.seed);
  int correct = 0, total = 0;
  int pos_needed = eval_cfg.num_positive, neg_needed = eval_cfg.num_negative;
  int guard = 0;
  while ((pos_needed > 0 || neg_needed > 0) && guard++ < 2000000) {
    const auto& a = corpus_[rng.Below(corpus_.size())];
    const auto& b = corpus_[rng.Below(corpus_.size())];
    if (a.id == b.id) continue;
    const bool truth = rules::RuleTriggersRule(a, b);
    if (truth && pos_needed > 0) {
      --pos_needed;
    } else if (!truth && neg_needed > 0) {
      --neg_needed;
    } else {
      continue;
    }
    correct += discovery.Correlated(a, b) == truth ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST_F(CorrelationTest, VoteShareQuantized) {
  PairDatasetConfig cfg;
  cfg.num_positive = 80;
  cfg.num_negative = 120;
  CorrelationDiscovery discovery(&model_);
  discovery.Train(BuildPairDataset(corpus_, extractor_, cfg));
  for (int i = 0; i < 10; ++i) {
    const double v = discovery.VoteShare(corpus_[static_cast<size_t>(i)],
                                         corpus_[static_cast<size_t>(i + 7)]);
    const double scaled = v * 3;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
  }
}

TEST_F(CorrelationTest, KnownPositivePairClassified) {
  PairDatasetConfig cfg;
  cfg.num_positive = 250;
  cfg.num_negative = 350;
  CorrelationDiscovery discovery(&model_);
  discovery.Train(BuildPairDataset(corpus_, extractor_, cfg));
  // Table 1, rule 4 -> rule 5 ("AC on" triggers "if AC is on, close
  // windows") is a textbook positive.
  auto table1 = rules::CorpusGenerator::Table1Rules();
  EXPECT_TRUE(discovery.Correlated(table1[3], table1[4]));
}

}  // namespace
}  // namespace glint::correlation
