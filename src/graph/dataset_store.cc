#include "graph/dataset_store.h"

#include <cstdio>
#include <string>
#include <vector>

#include "rules/rule_io.h"
#include "util/binio.h"

namespace glint::graph {
namespace {

using rules::ReadRule;
using rules::WriteRule;
using Reader = util::ByteReader;
using Writer = util::ByteWriter;

constexpr uint32_t kMagic = 0x474c4e54;  // "GLNT"
constexpr uint32_t kVersion = 2;

void SerializeDataset(const GraphDataset& ds, Writer* w) {
  w->U32(kMagic);
  w->U32(kVersion);
  w->U32(static_cast<uint32_t>(ds.graphs.size()));
  for (const auto& g : ds.graphs) {
    w->U32(static_cast<uint32_t>(g.num_nodes()));
    for (const auto& node : g.nodes()) {
      WriteRule(w, node.rule);
      w->I32(node.type);
      w->U32(static_cast<uint32_t>(node.features.size()));
      for (float f : node.features) w->F32(f);
    }
    w->U32(static_cast<uint32_t>(g.edges().size()));
    for (const auto& e : g.edges()) {
      w->I32(e.src);
      w->I32(e.dst);
    }
    w->I32(g.vulnerable() ? 1 : 0);
    w->U32(static_cast<uint32_t>(g.threat_types().size()));
    for (auto t : g.threat_types()) w->I32(static_cast<int32_t>(t));
    w->U32(static_cast<uint32_t>(g.culprit_nodes().size()));
    for (int c : g.culprit_nodes()) w->I32(c);
  }
}

}  // namespace

Status DatasetStore::Save(const GraphDataset& ds, const std::string& path) {
  Writer w;
  SerializeDataset(ds, &w);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(w.buffer().data(), 1, w.buffer().size(), f);
  std::fclose(f);
  if (written != w.buffer().size()) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<GraphDataset> DatasetStore::Load(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> buf(static_cast<size_t>(size));
  const size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size()) return Status::IOError("short read: " + path);

  Reader r(buf.data(), buf.size());
  uint32_t magic, version, num_graphs;
  if (!r.U32(&magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!r.U32(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported version in " + path);
  }
  if (!r.U32(&num_graphs)) return Status::InvalidArgument("truncated header");

  GraphDataset ds;
  ds.graphs.reserve(num_graphs);
  for (uint32_t gi = 0; gi < num_graphs; ++gi) {
    uint32_t num_nodes;
    if (!r.U32(&num_nodes)) return Status::InvalidArgument("truncated graph");
    InteractionGraph g;
    for (uint32_t ni = 0; ni < num_nodes; ++ni) {
      Node node;
      if (!ReadRule(&r, &node.rule)) {
        return Status::InvalidArgument("truncated rule");
      }
      uint32_t feat_len;
      if (!r.I32(&node.type) || !r.U32(&feat_len)) {
        return Status::InvalidArgument("truncated node");
      }
      node.features.resize(feat_len);
      for (auto& f : node.features) {
        if (!r.F32(&f)) return Status::InvalidArgument("truncated features");
      }
      g.AddNode(std::move(node));
    }
    uint32_t num_edges;
    if (!r.U32(&num_edges)) return Status::InvalidArgument("truncated edges");
    for (uint32_t ei = 0; ei < num_edges; ++ei) {
      int32_t src, dst;
      if (!r.I32(&src) || !r.I32(&dst)) {
        return Status::InvalidArgument("truncated edge");
      }
      g.AddEdge(src, dst);
    }
    int32_t vul;
    uint32_t nt, nculprit;
    if (!r.I32(&vul) || !r.U32(&nt)) {
      return Status::InvalidArgument("truncated label");
    }
    g.set_vulnerable(vul != 0);
    std::vector<ThreatType> types(nt);
    for (auto& t : types) {
      int32_t v;
      if (!r.I32(&v)) return Status::InvalidArgument("truncated types");
      t = static_cast<ThreatType>(v);
    }
    g.set_threat_types(std::move(types));
    if (!r.U32(&nculprit)) return Status::InvalidArgument("truncated culprits");
    std::vector<int> culprits(nculprit);
    for (auto& c : culprits) {
      if (!r.I32(&c)) return Status::InvalidArgument("truncated culprit");
    }
    g.set_culprit_nodes(std::move(culprits));
    ds.graphs.push_back(std::move(g));
  }
  return ds;
}

size_t DatasetStore::SerializedBytes(const GraphDataset& ds) {
  Writer w;
  SerializeDataset(ds, &w);
  return w.buffer().size();
}

}  // namespace glint::graph
