#include "gnn/tensor.h"

#include <algorithm>
#include <cmath>

#include "gnn/kernels.h"
#include "obs/obs.h"
#include "util/thread_pool.h"

namespace glint::gnn {

Matrix Matrix::HeInit(int r, int c, Rng* rng) {
  Matrix m(r, c);
  const double scale = std::sqrt(2.0 / std::max(1, r));
  for (auto& x : m.data) x = static_cast<float>(rng->Gaussian(0, scale));
  return m;
}

std::shared_ptr<const SparseMatrix::Csr> SparseMatrix::CsrView() const {
  auto cached = csr_.load(std::memory_order_acquire);
  if (cached) return cached;

  // Counting sort by row; insertion order is preserved within each row so
  // the summation order (and thus the float result) of a row-wise walk
  // matches the entry list exactly.
  auto csr = std::make_shared<Csr>();
  csr->row_ptr.assign(static_cast<size_t>(rows) + 1, 0);
  for (const auto& e : entries) {
    ++csr->row_ptr[static_cast<size_t>(e.r) + 1];
  }
  for (int r = 0; r < rows; ++r) {
    csr->row_ptr[static_cast<size_t>(r) + 1] +=
        csr->row_ptr[static_cast<size_t>(r)];
  }
  csr->col_idx.resize(entries.size());
  csr->vals.resize(entries.size());
  std::vector<int> cursor(csr->row_ptr.begin(), csr->row_ptr.end() - 1);
  for (const auto& e : entries) {
    const int k = cursor[static_cast<size_t>(e.r)]++;
    csr->col_idx[static_cast<size_t>(k)] = e.c;
    csr->vals[static_cast<size_t>(k)] = e.v;
  }

  // First build wins; concurrent builders adopt it (identical contents).
  std::shared_ptr<const Csr> expected;
  std::shared_ptr<const Csr> built = std::move(csr);
  if (csr_.compare_exchange_strong(expected, built)) return built;
  return expected;
}

std::shared_ptr<const Matrix> SparseMatrix::DenseView() const {
  auto cached = dense_.load(std::memory_order_acquire);
  if (cached) return cached;

  auto dense = std::make_shared<Matrix>(rows, cols);
  for (const auto& e : entries) dense->At(e.r, e.c) = e.v;

  std::shared_ptr<const Matrix> expected;
  std::shared_ptr<const Matrix> built = std::move(dense);
  if (dense_.compare_exchange_strong(expected, built)) return built;
  return expected;
}

// ---- TapeArena -----------------------------------------------------------

namespace {
// Sum of bytes_retained over all live arenas; exported through obs on
// Tape::Reset so a snapshot shows the process-wide tape footprint.
std::atomic<size_t> g_arena_bytes_total{0};
}  // namespace

size_t TapeArena::TotalBytesRetained() {
  return g_arena_bytes_total.load(std::memory_order_relaxed);
}

void TapeArena::CountGrowth(size_t old_cap_bytes, size_t new_cap_bytes) {
  if (new_cap_bytes > old_cap_bytes) {
    ++growth_allocs_;
    bytes_retained_ += new_cap_bytes - old_cap_bytes;
    g_arena_bytes_total.fetch_add(new_cap_bytes - old_cap_bytes,
                                  std::memory_order_relaxed);
  }
}

TapeArena::~TapeArena() {
  g_arena_bytes_total.fetch_sub(bytes_retained_, std::memory_order_relaxed);
}

Tensor* TapeArena::NewTensor() {
  const size_t chunk = tensor_cursor_ / kChunk;
  const size_t slot = tensor_cursor_ % kChunk;
  if (chunk == chunks_.size()) {
    chunks_.push_back(std::make_unique<Tensor[]>(kChunk));
    ++growth_allocs_;
    bytes_retained_ += kChunk * sizeof(Tensor);
    g_arena_bytes_total.fetch_add(kChunk * sizeof(Tensor),
                                  std::memory_order_relaxed);
  }
  ++tensor_cursor_;
  return &chunks_[chunk][slot];
}

size_t TapeArena::AllocInts(size_t n) {
  const size_t off = int_cursor_;
  const size_t need = off + n;
  if (need > ints_.size()) {
    const size_t old_cap = ints_.capacity();
    ints_.resize(need);  // size() is the high-water mark across Reset()
    CountGrowth(old_cap * sizeof(int), ints_.capacity() * sizeof(int));
  }
  int_cursor_ = need;
  return off;
}

size_t TapeArena::AllocDoubles(size_t n) {
  const size_t off = double_cursor_;
  const size_t need = off + n;
  if (need > doubles_.size()) {
    const size_t old_cap = doubles_.capacity();
    doubles_.resize(need);
    CountGrowth(old_cap * sizeof(double), doubles_.capacity() * sizeof(double));
  }
  double_cursor_ = need;
  return off;
}

Matrix* TapeArena::Scratch(int rows, int cols) {
  if (scratch_cursor_ == scratch_.size()) {
    scratch_.push_back(std::make_unique<Matrix>());
    ++growth_allocs_;
    bytes_retained_ += sizeof(Matrix);
    g_arena_bytes_total.fetch_add(sizeof(Matrix), std::memory_order_relaxed);
  }
  Matrix* m = scratch_[scratch_cursor_++].get();
  Shape(m, rows, cols, /*zero=*/false);
  return m;
}

void TapeArena::Shape(Matrix* m, int rows, int cols, bool zero) {
  const size_t need = static_cast<size_t>(rows) * cols;
  const size_t old_cap = m->data.capacity();
  m->rows = rows;
  m->cols = cols;
  if (zero) {
    m->data.assign(need, 0.f);
  } else {
    m->data.resize(need);
  }
  CountGrowth(old_cap * sizeof(float), m->data.capacity() * sizeof(float));
}

void TapeArena::Reset() {
  tensor_cursor_ = 0;
  scratch_cursor_ = 0;
  int_cursor_ = 0;
  double_cursor_ = 0;
}

// ---- Tape ----------------------------------------------------------------

Tensor* Tape::Constant(const Matrix& value) {
  Tensor* t = arena_.NewTensor();
  arena_.Shape(&t->value, value.rows, value.cols, /*zero=*/false);
  std::copy(value.data.begin(), value.data.end(), t->value.data.begin());
  t->requires_grad = track_constants_;
  if (track_constants_) {
    arena_.Shape(&t->grad, value.rows, value.cols, /*zero=*/true);
    tracked_constants_.push_back(t);
  }
  return t;
}

Tensor* Tape::Leaf(Parameter* param) {
  Tensor* t = arena_.NewTensor();
  arena_.Shape(&t->value, param->value.rows, param->value.cols,
               /*zero=*/false);
  std::copy(param->value.data.begin(), param->value.data.end(),
            t->value.data.begin());
  if (freeze_leaves_) {
    // Inference mode: the parameter enters as a plain constant — no grad
    // buffer, no accumulation record, and ops downstream only track if
    // some other input (e.g. a tracked constant) does.
    t->requires_grad = false;
    return t;
  }
  arena_.Shape(&t->grad, param->value.rows, param->value.cols, /*zero=*/true);
  t->requires_grad = true;
  OpRecord r{};
  r.kind = OpKind::kLeaf;
  r.out = t;
  r.param = param;
  Record(r);
  return t;
}

Tensor* Tape::New(int rows, int cols, bool requires_grad) {
  Tensor* t = arena_.NewTensor();
  arena_.Shape(&t->value, rows, cols, /*zero=*/true);
  if (requires_grad) arena_.Shape(&t->grad, rows, cols, /*zero=*/true);
  t->requires_grad = requires_grad;
  return t;
}

void Tape::Record(const OpRecord& r) {
  const size_t old_cap = records_.capacity();
  records_.push_back(r);
  arena_.CountGrowth(old_cap * sizeof(OpRecord),
                     records_.capacity() * sizeof(OpRecord));
}

void Tape::RetainCsr(std::shared_ptr<const SparseMatrix::Csr> csr) {
  const size_t old_cap = csr_refs_.capacity();
  csr_refs_.push_back(std::move(csr));
  arena_.CountGrowth(old_cap * sizeof(csr_refs_[0]),
                     csr_refs_.capacity() * sizeof(csr_refs_[0]));
}

void Tape::Backward(Tensor* loss) {
  GLINT_CHECK(loss->rows() == 1 && loss->cols() == 1);
  GLINT_CHECK(loss->requires_grad);
  loss->grad.data[0] = 1.f;
  // Creation order is topological; replay the records newest-first. This is
  // the same walk (and therefore the same float summation order) as running
  // per-node closures over the node list in reverse.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    RunBackward(*it);
  }
}

void Tape::Reset() {
  GLINT_OBS_GAUGE_SET("glint.tape.nodes_per_step",
                      static_cast<int64_t>(arena_.nodes()));
  GLINT_OBS_GAUGE_SET("glint.tape.arena_bytes_retained",
                      static_cast<int64_t>(TapeArena::TotalBytesRetained()));
  const size_t growth = arena_.growth_allocs();
  GLINT_OBS_COUNT("glint.tape.arena_growth_allocs",
                  static_cast<uint64_t>(growth - growth_published_));
  growth_published_ = growth;
  GLINT_OBS_COUNT("glint.tape.resets", 1);
  arena_.Reset();
  records_.clear();
  csr_refs_.clear();
  grad_sink_ = nullptr;
  track_constants_ = false;
  freeze_leaves_ = false;
  tracked_constants_.clear();
}

Tape::Stats Tape::stats() const {
  Stats s;
  s.nodes = arena_.nodes();
  s.records = records_.size();
  s.bytes_retained = arena_.bytes_retained();
  s.growth_allocs = arena_.growth_allocs();
  return s;
}

// ---- ScopedTape ----------------------------------------------------------

namespace {

struct TapePool {
  std::vector<std::unique_ptr<Tape>> owned;
  std::vector<Tape*> free_list;
};

TapePool& LocalTapePool() {
  thread_local TapePool pool;
  return pool;
}

}  // namespace

ScopedTape::ScopedTape() {
  auto& pool = LocalTapePool();
  if (pool.free_list.empty()) {
    pool.owned.push_back(std::make_unique<Tape>());
    tape_ = pool.owned.back().get();
  } else {
    tape_ = pool.free_list.back();
    pool.free_list.pop_back();
  }
}

ScopedTape::~ScopedTape() {
  tape_->Reset();
  LocalTapePool().free_list.push_back(tape_);
}

// ---- Backward dispatch ---------------------------------------------------

namespace {

bool Track(std::initializer_list<Tensor*> inputs) {
  for (Tensor* t : inputs) {
    if (t != nullptr && t->requires_grad) return true;
  }
  return false;
}

/// Rows are dispatched to the pool in chunks carrying roughly this many
/// multiply-adds each; smaller products run serially (dispatch overhead
/// would dominate).
constexpr int64_t kParallelFlops = 1 << 15;

/// j-tile width of the transposed-B kernel: one tile of B^T rows stays
/// cache-hot while a chunk of A rows streams through it.
constexpr int kMatMulTile = 64;

int64_t RowGrain(int64_t per_row_flops) {
  return std::max<int64_t>(1,
                           kParallelFlops / std::max<int64_t>(1, per_row_flops));
}

}  // namespace

void Tape::RunBackward(const OpRecord& r) {
  Tensor* out = r.out;
  Tensor* a = r.a;
  Tensor* b = r.b;
  const kernels::KernelBackend& kb = kernels::Kernels();
  switch (r.kind) {
    case OpKind::kLeaf: {
      Matrix* dst = &r.param->grad;
      if (grad_sink_ != nullptr) {
        dst = &grad_sink_
                   ->try_emplace(r.param, r.param->value.rows,
                                 r.param->value.cols)
                   .first->second;
      }
      kb.AddInto(dst->data.data(), out->grad.data.data(),
                 static_cast<int>(out->grad.data.size()));
      break;
    }
    case OpKind::kMatMul: {
      const int n = a->rows(), k = a->cols(), m = b->cols();
      // The worker lambdas capture a single context reference so the
      // std::function built at the ParallelFor call site fits its inline
      // buffer — no heap allocation per backward op.
      if (a->requires_grad) {
        // dA = dC * B^T, row-parallel over i (B rows are contiguous).
        struct Ctx {
          float* ga;
          const float* gc;
          const float* bv;
          const kernels::KernelBackend* kb;
          int k, m;
        } c{a->grad.data.data(), out->grad.data.data(), b->value.data.data(),
            &kb, k, m};
        ParallelFor(0, n, RowGrain(static_cast<int64_t>(k) * m),
                    [&c](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        float* garow = c.ga + static_cast<size_t>(i) * c.k;
                        const float* gcrow =
                            c.gc + static_cast<size_t>(i) * c.m;
                        for (int l = 0; l < c.k; ++l) {
                          const float* brow =
                              c.bv + static_cast<size_t>(l) * c.m;
                          garow[l] += c.kb->Dot(gcrow, brow, c.m);
                        }
                      }
                    });
      }
      if (b->requires_grad) {
        // dB = A^T * dC, parallel over B rows: each dB row is owned by one
        // thread and accumulated in ascending-i order (the serial order).
        struct Ctx {
          float* gb;
          const float* av;
          const float* gc;
          const kernels::KernelBackend* kb;
          int n, k, m;
        } c{b->grad.data.data(), a->value.data.data(), out->grad.data.data(),
            &kb, n, k, m};
        ParallelFor(0, k, RowGrain(static_cast<int64_t>(n) * m),
                    [&c](int64_t lo, int64_t hi) {
                      for (int64_t l = lo; l < hi; ++l) {
                        float* gbrow = c.gb + static_cast<size_t>(l) * c.m;
                        for (int i = 0; i < c.n; ++i) {
                          const float av = c.av[static_cast<size_t>(i) * c.k +
                                                static_cast<size_t>(l)];
                          if (av == 0.f) continue;
                          const float* gcrow =
                              c.gc + static_cast<size_t>(i) * c.m;
                          c.kb->Axpy(gbrow, av, gcrow, c.m);
                        }
                      }
                    });
      }
      break;
    }
    case OpKind::kAdd: {
      const bool broadcast = r.i0 != 0;
      const int cols = a->cols();
      if (a->requires_grad) {
        kb.AddInto(a->grad.data.data(), out->grad.data.data(),
                   static_cast<int>(a->grad.data.size()));
      }
      if (b->requires_grad) {
        if (broadcast) {
          for (int i = 0; i < out->rows(); ++i) {
            kb.AddInto(b->grad.data.data(),
                       out->grad.data.data() + static_cast<size_t>(i) * cols,
                       cols);
          }
        } else {
          kb.AddInto(b->grad.data.data(), out->grad.data.data(),
                     static_cast<int>(b->grad.data.size()));
        }
      }
      break;
    }
    case OpKind::kMul: {
      const int n = static_cast<int>(out->grad.data.size());
      if (a->requires_grad) {
        kb.MulAddInto(a->grad.data.data(), out->grad.data.data(),
                      b->value.data.data(), n);
      }
      if (b->requires_grad) {
        kb.MulAddInto(b->grad.data.data(), out->grad.data.data(),
                      a->value.data.data(), n);
      }
      break;
    }
    case OpKind::kScale: {
      kb.Axpy(a->grad.data.data(), r.f0, out->grad.data.data(),
              static_cast<int>(a->grad.data.size()));
      break;
    }
    case OpKind::kRelu: {
      for (size_t i = 0; i < a->grad.data.size(); ++i) {
        a->grad.data[i] +=
            out->grad.data[i] * (a->value.data[i] > 0 ? 1.f : 0.f);
      }
      break;
    }
    case OpKind::kSigmoid: {
      for (size_t i = 0; i < a->grad.data.size(); ++i) {
        const float y = out->value.data[i];
        a->grad.data[i] += out->grad.data[i] * (y * (1.f - y));
      }
      break;
    }
    case OpKind::kTanh: {
      for (size_t i = 0; i < a->grad.data.size(); ++i) {
        const float y = out->value.data[i];
        a->grad.data[i] += out->grad.data[i] * (1.f - y * y);
      }
      break;
    }
    case OpKind::kConcatCols: {
      for (int i = 0; i < a->rows(); ++i) {
        if (a->requires_grad) {
          for (int j = 0; j < a->cols(); ++j) {
            a->grad.At(i, j) += out->grad.At(i, j);
          }
        }
        if (b->requires_grad) {
          for (int j = 0; j < b->cols(); ++j) {
            b->grad.At(i, j) += out->grad.At(i, a->cols() + j);
          }
        }
      }
      break;
    }
    case OpKind::kConcatRows: {
      if (a->requires_grad) {
        kb.AddInto(a->grad.data.data(), out->grad.data.data(),
                   static_cast<int>(a->grad.data.size()));
      }
      if (b->requires_grad) {
        kb.AddInto(b->grad.data.data(),
                   out->grad.data.data() + a->value.size(),
                   static_cast<int>(b->grad.data.size()));
      }
      break;
    }
    case OpKind::kMeanRows: {
      const int cols = a->cols();
      for (int i = 0; i < a->rows(); ++i) {
        kb.Axpy(a->grad.data.data() + static_cast<size_t>(i) * cols, r.f0,
                out->grad.data.data(), cols);
      }
      break;
    }
    case OpKind::kMaxRows: {
      const int* argmax = arena_.Ints(static_cast<size_t>(r.i0));
      for (int j = 0; j < a->cols(); ++j) {
        a->grad.At(argmax[j], j) += out->grad.At(0, j);
      }
      break;
    }
    case OpKind::kGatherRows: {
      const int* idx = arena_.Ints(static_cast<size_t>(r.i0));
      for (int i = 0; i < r.i1; ++i) {
        for (int j = 0; j < a->cols(); ++j) {
          a->grad.At(idx[i], j) += out->grad.At(i, j);
        }
      }
      break;
    }
    case OpKind::kSpMM: {
      const auto* csr = static_cast<const SparseMatrix::Csr*>(r.aux);
      const int rows = out->rows();
      const int cols = a->cols();
      for (int row = 0; row < rows; ++row) {
        const float* gcrow = &out->grad.data[static_cast<size_t>(row) * cols];
        const int k0 = csr->row_ptr[static_cast<size_t>(row)];
        const int k1 = csr->row_ptr[static_cast<size_t>(row) + 1];
        for (int k = k0; k < k1; ++k) {
          float* garow =
              &a->grad.data[static_cast<size_t>(
                                csr->col_idx[static_cast<size_t>(k)]) *
                            cols];
          kb.Axpy(garow, csr->vals[static_cast<size_t>(k)], gcrow, cols);
        }
      }
      break;
    }
    case OpKind::kRowScale: {
      // The a- and b-gradients touch disjoint buffers, so splitting the
      // historically interleaved j-loop into two passes keeps every
      // accumulation order (and therefore every float) unchanged.
      const int cols = a->cols();
      for (int i = 0; i < a->rows(); ++i) {
        const float s = b->value.At(i, 0);
        if (a->requires_grad) {
          kb.Axpy(a->grad.data.data() + static_cast<size_t>(i) * cols, s,
                  out->grad.data.data() + static_cast<size_t>(i) * cols,
                  cols);
        }
        if (b->requires_grad) {
          for (int j = 0; j < cols; ++j) {
            b->grad.At(i, 0) += a->value.At(i, j) * out->grad.At(i, j);
          }
        }
      }
      break;
    }
    case OpKind::kSumAll: {
      const float g = out->grad.data[0];
      for (auto& gv : a->grad.data) gv += g;
      break;
    }
    case OpKind::kSoftmaxXent: {
      const double* p = arena_.Doubles(static_cast<size_t>(r.i0));
      const float g = out->grad.data[0];
      for (int j = 0; j < a->cols(); ++j) {
        const float onehot = (j == r.i1) ? 1.f : 0.f;
        a->grad.At(0, j) +=
            g * r.f0 * (static_cast<float>(p[j]) - onehot);
      }
      break;
    }
    case OpKind::kBceLogit: {
      const double x = a->value.data[0];
      const double p = 1.0 / (1.0 + std::exp(-x));
      const double y = r.i0;
      a->grad.data[0] +=
          out->grad.data[0] * static_cast<float>(r.f0 * (p - y));
      break;
    }
    case OpKind::kContrastiveMargin: {
      if (r.d1 <= 0) break;
      // dL/dd = 2 * margin * (-1) * d / norm
      const float g = out->grad.data[0];
      const float coef = static_cast<float>(-2.0 * r.d1 / r.d0) * g;
      for (size_t i = 0; i < a->grad.data.size(); ++i) {
        a->grad.data[i] += coef * a->value.data[i];
      }
      break;
    }
    case OpKind::kSoftmaxRow: {
      // dL/dx_i = p_i * (g_i - sum_j g_j p_j)
      double dot = 0;
      for (int j = 0; j < a->cols(); ++j) {
        dot += double(out->grad.At(0, j)) * out->value.At(0, j);
      }
      for (int j = 0; j < a->cols(); ++j) {
        a->grad.At(0, j) += static_cast<float>(
            out->value.At(0, j) * (out->grad.At(0, j) - dot));
      }
      break;
    }
    case OpKind::kScaleByEntry: {
      if (a->requires_grad) {
        kb.Axpy(a->grad.data.data(), r.f0, out->grad.data.data(),
                static_cast<int>(a->grad.data.size()));
      }
      if (b->requires_grad) {
        double g = 0;
        for (size_t i = 0; i < a->value.data.size(); ++i) {
          g += double(a->value.data[i]) * out->grad.data[i];
        }
        b->grad.At(0, r.i0) += static_cast<float>(g);
      }
      break;
    }
    case OpKind::kTranspose: {
      for (int i = 0; i < a->rows(); ++i) {
        for (int j = 0; j < a->cols(); ++j) {
          a->grad.At(i, j) += out->grad.At(j, i);
        }
      }
      break;
    }
    case OpKind::kSegmentMeanRows: {
      const int* off = arena_.Ints(static_cast<size_t>(r.i0));
      const int cols = a->cols();
      for (int s = 0; s < out->rows(); ++s) {
        const float inv =
            1.0f / static_cast<float>(std::max(1, off[s + 1] - off[s]));
        for (int i = off[s]; i < off[s + 1]; ++i) {
          kb.Axpy(a->grad.data.data() + static_cast<size_t>(i) * cols, inv,
                  out->grad.data.data() + static_cast<size_t>(s) * cols,
                  cols);
        }
      }
      break;
    }
    case OpKind::kSegmentMaxRows: {
      const int cols = a->cols();
      // Pool layout: B+1 offsets, then B*cols global argmax rows.
      const int* argmax =
          arena_.Ints(static_cast<size_t>(r.i0)) + out->rows() + 1;
      for (int s = 0; s < out->rows(); ++s) {
        for (int j = 0; j < cols; ++j) {
          a->grad.At(argmax[static_cast<size_t>(s) * cols + j], j) +=
              out->grad.At(s, j);
        }
      }
      break;
    }
    case OpKind::kSoftmaxRows: {
      // Per row: the exact kSoftmaxRow Jacobian.
      for (int i = 0; i < a->rows(); ++i) {
        double dot = 0;
        for (int j = 0; j < a->cols(); ++j) {
          dot += double(out->grad.At(i, j)) * out->value.At(i, j);
        }
        for (int j = 0; j < a->cols(); ++j) {
          a->grad.At(i, j) += static_cast<float>(
              out->value.At(i, j) * (out->grad.At(i, j) - dot));
        }
      }
      break;
    }
    case OpKind::kSegmentScaleByCol: {
      const int* off = arena_.Ints(static_cast<size_t>(r.i0));
      const int cols = a->cols();
      for (int s = 0; s < b->rows(); ++s) {
        const size_t base = static_cast<size_t>(off[s]) * cols;
        const int len = (off[s + 1] - off[s]) * cols;
        if (a->requires_grad) {
          kb.Axpy(a->grad.data.data() + base, b->value.At(s, r.i1),
                  out->grad.data.data() + base, len);
        }
        if (b->requires_grad) {
          double g = 0;
          for (int i = 0; i < len; ++i) {
            g += double(a->value.data[base + i]) * out->grad.data[base + i];
          }
          b->grad.At(s, r.i1) += static_cast<float>(g);
        }
      }
      break;
    }
  }
}

// ---- Ops -----------------------------------------------------------------

Tensor* MatMul(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->cols() == b->rows());
  Tensor* out = tape->New(a->rows(), b->cols(), Track({a, b}));
  const int n = a->rows(), k = a->cols(), m = b->cols();
  // Transposed-B kernel: C[i][j] = dot(A row i, B^T row j), both contiguous.
  // B^T lives in arena scratch (fully overwritten below). Each output
  // element is produced by exactly one thread with a fixed l-order, so the
  // result is bit-identical for any thread count.
  Matrix* bt = tape->arena()->Scratch(b->cols(), b->rows());
  for (int l = 0; l < b->rows(); ++l) {
    for (int j = 0; j < b->cols(); ++j) bt->At(j, l) = b->value.At(l, j);
  }
  // Single-context capture keeps the ParallelFor std::function inside its
  // inline buffer — the forward kernel performs no heap allocation.
  GLINT_KERNEL_ASSERT_ALIGNED(a->value.data.data());
  GLINT_KERNEL_ASSERT_ALIGNED(bt->data.data());
  GLINT_KERNEL_ASSERT_ALIGNED(out->value.data.data());
  struct Ctx {
    const float* av;
    const float* bt;
    float* cv;
    const kernels::KernelBackend* kb;
    int k, m;
  } c{a->value.data.data(), bt->data.data(), out->value.data.data(),
      &kernels::Kernels(), k, m};
  ParallelFor(0, n, RowGrain(static_cast<int64_t>(k) * m),
              [&c](int64_t lo, int64_t hi) {
                for (int j0 = 0; j0 < c.m; j0 += kMatMulTile) {
                  const int j1 = std::min(c.m, j0 + kMatMulTile);
                  for (int64_t i = lo; i < hi; ++i) {
                    const float* arow = c.av + static_cast<size_t>(i) * c.k;
                    float* crow = c.cv + static_cast<size_t>(i) * c.m;
                    for (int j = j0; j < j1; ++j) {
                      const float* btrow = c.bt + static_cast<size_t>(j) * c.k;
                      crow[j] = c.kb->Dot(arow, btrow, c.k);
                    }
                  }
                }
              });
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kMatMul;
    r.out = out;
    r.a = a;
    r.b = b;
    tape->Record(r);
  }
  return out;
}

Tensor* Add(Tape* tape, Tensor* a, Tensor* b) {
  const bool broadcast = (b->rows() == 1 && a->rows() != 1);
  GLINT_CHECK(a->cols() == b->cols());
  GLINT_CHECK(broadcast || a->rows() == b->rows());
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, b}));
  const int cols = a->cols();
  for (int i = 0; i < a->rows(); ++i) {
    for (int j = 0; j < cols; ++j) {
      out->value.At(i, j) = a->value.At(i, j) +
                            (broadcast ? b->value.At(0, j) : b->value.At(i, j));
    }
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kAdd;
    r.out = out;
    r.a = a;
    r.b = b;
    r.i0 = broadcast ? 1 : 0;
    tape->Record(r);
  }
  return out;
}

Tensor* Sub(Tape* tape, Tensor* a, Tensor* b) {
  Tensor* nb = Scale(tape, b, -1.f);
  return Add(tape, a, nb);
}

Tensor* Mul(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, b}));
  kernels::Kernels().MulInto(out->value.data.data(), a->value.data.data(),
                             b->value.data.data(),
                             static_cast<int>(out->value.data.size()));
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kMul;
    r.out = out;
    r.a = a;
    r.b = b;
    tape->Record(r);
  }
  return out;
}

Tensor* Scale(Tape* tape, Tensor* a, float s) {
  Tensor* out = tape->New(a->rows(), a->cols(), a->requires_grad);
  kernels::Kernels().ScaleInto(out->value.data.data(), s,
                               a->value.data.data(),
                               static_cast<int>(out->value.data.size()));
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kScale;
    r.out = out;
    r.a = a;
    r.f0 = s;
    tape->Record(r);
  }
  return out;
}

namespace {

template <typename F>
Tensor* Elementwise(Tape* tape, Tensor* a, OpKind kind, F f) {
  Tensor* out = tape->New(a->rows(), a->cols(), a->requires_grad);
  for (size_t i = 0; i < out->value.data.size(); ++i) {
    out->value.data[i] = f(a->value.data[i]);
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = kind;
    r.out = out;
    r.a = a;
    tape->Record(r);
  }
  return out;
}

}  // namespace

Tensor* Relu(Tape* tape, Tensor* a) {
  Tensor* out = tape->New(a->rows(), a->cols(), a->requires_grad);
  kernels::Kernels().ReluInto(out->value.data.data(), a->value.data.data(),
                              static_cast<int>(out->value.data.size()));
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kRelu;
    r.out = out;
    r.a = a;
    tape->Record(r);
  }
  return out;
}

Tensor* Sigmoid(Tape* tape, Tensor* a) {
  return Elementwise(tape, a, OpKind::kSigmoid,
                     [](float x) { return 1.f / (1.f + std::exp(-x)); });
}

Tensor* Tanh(Tape* tape, Tensor* a) {
  return Elementwise(tape, a, OpKind::kTanh,
                     [](float x) { return std::tanh(x); });
}

Tensor* ConcatCols(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->rows() == b->rows());
  Tensor* out = tape->New(a->rows(), a->cols() + b->cols(), Track({a, b}));
  for (int i = 0; i < a->rows(); ++i) {
    for (int j = 0; j < a->cols(); ++j) out->value.At(i, j) = a->value.At(i, j);
    for (int j = 0; j < b->cols(); ++j) {
      out->value.At(i, a->cols() + j) = b->value.At(i, j);
    }
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kConcatCols;
    r.out = out;
    r.a = a;
    r.b = b;
    tape->Record(r);
  }
  return out;
}

Tensor* ConcatRows(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->cols() == b->cols());
  Tensor* out = tape->New(a->rows() + b->rows(), a->cols(), Track({a, b}));
  std::copy(a->value.data.begin(), a->value.data.end(),
            out->value.data.begin());
  std::copy(b->value.data.begin(), b->value.data.end(),
            out->value.data.begin() + static_cast<long>(a->value.size()));
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kConcatRows;
    r.out = out;
    r.a = a;
    r.b = b;
    tape->Record(r);
  }
  return out;
}

Tensor* MeanRows(Tape* tape, Tensor* a) {
  Tensor* out = tape->New(1, a->cols(), a->requires_grad);
  const float inv = 1.0f / static_cast<float>(std::max(1, a->rows()));
  const int cols = a->cols();
  for (int i = 0; i < a->rows(); ++i) {
    kernels::Kernels().Axpy(out->value.data.data(), inv,
                            a->value.data.data() +
                                static_cast<size_t>(i) * cols,
                            cols);
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kMeanRows;
    r.out = out;
    r.a = a;
    r.f0 = inv;
    tape->Record(r);
  }
  return out;
}

Tensor* MaxRows(Tape* tape, Tensor* a) {
  GLINT_CHECK(a->rows() >= 1);
  Tensor* out = tape->New(1, a->cols(), a->requires_grad);
  int* argmax = nullptr;
  size_t off = 0;
  if (out->requires_grad) {
    off = tape->arena()->AllocInts(static_cast<size_t>(a->cols()));
    argmax = tape->arena()->Ints(off);
  }
  for (int j = 0; j < a->cols(); ++j) {
    float best = a->value.At(0, j);
    int bi = 0;
    for (int i = 1; i < a->rows(); ++i) {
      if (a->value.At(i, j) > best) {
        best = a->value.At(i, j);
        bi = i;
      }
    }
    if (argmax != nullptr) argmax[j] = bi;
    out->value.At(0, j) = best;
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kMaxRows;
    r.out = out;
    r.a = a;
    r.i0 = static_cast<int>(off);
    r.i1 = a->cols();
    tape->Record(r);
  }
  return out;
}

Tensor* GatherRows(Tape* tape, Tensor* a, const std::vector<int>& idx) {
  Tensor* out =
      tape->New(static_cast<int>(idx.size()), a->cols(), a->requires_grad);
  for (size_t i = 0; i < idx.size(); ++i) {
    for (int j = 0; j < a->cols(); ++j) {
      out->value.At(static_cast<int>(i), j) = a->value.At(idx[i], j);
    }
  }
  if (out->requires_grad) {
    const size_t off = tape->arena()->AllocInts(idx.size());
    std::copy(idx.begin(), idx.end(), tape->arena()->Ints(off));
    OpRecord r{};
    r.kind = OpKind::kGatherRows;
    r.out = out;
    r.a = a;
    r.i0 = static_cast<int>(off);
    r.i1 = static_cast<int>(idx.size());
    tape->Record(r);
  }
  return out;
}

Tensor* SpMM(Tape* tape, const SparseMatrix& s, Tensor* a) {
  GLINT_CHECK(s.cols == a->rows());
  Tensor* out = tape->New(s.rows, a->cols(), a->requires_grad);
  // Row-wise CSR walk instead of a COO scan: one pass per output row, no
  // re-reading the whole entry list per multiply.
  const auto csr = s.CsrView();
  const int cols = a->cols();
  const kernels::KernelBackend& kb = kernels::Kernels();
  GLINT_KERNEL_ASSERT_ALIGNED(a->value.data.data());
  GLINT_KERNEL_ASSERT_ALIGNED(out->value.data.data());
  for (int r = 0; r < s.rows; ++r) {
    float* crow = &out->value.data[static_cast<size_t>(r) * cols];
    const int k0 = csr->row_ptr[static_cast<size_t>(r)];
    const int k1 = csr->row_ptr[static_cast<size_t>(r) + 1];
    for (int k = k0; k < k1; ++k) {
      const float* arow =
          &a->value
               .data[static_cast<size_t>(csr->col_idx[static_cast<size_t>(k)]) *
                     cols];
      kb.Axpy(crow, csr->vals[static_cast<size_t>(k)], arow, cols);
    }
  }
  if (out->requires_grad) {
    // The record borrows the raw CSR pointer; RetainCsr keeps the view
    // alive for the pass (the SparseMatrix itself may not outlive the
    // tape).
    OpRecord r{};
    r.kind = OpKind::kSpMM;
    r.out = out;
    r.a = a;
    r.aux = csr.get();
    tape->Record(r);
    tape->RetainCsr(csr);
  }
  return out;
}

Tensor* RowScale(Tape* tape, Tensor* a, Tensor* g) {
  GLINT_CHECK(g->rows() == a->rows() && g->cols() == 1);
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, g}));
  const int cols = a->cols();
  for (int i = 0; i < a->rows(); ++i) {
    kernels::Kernels().ScaleInto(
        out->value.data.data() + static_cast<size_t>(i) * cols,
        g->value.At(i, 0),
        a->value.data.data() + static_cast<size_t>(i) * cols, cols);
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kRowScale;
    r.out = out;
    r.a = a;
    r.b = g;
    tape->Record(r);
  }
  return out;
}

Tensor* SumAll(Tape* tape, Tensor* a) {
  Tensor* out = tape->New(1, 1, a->requires_grad);
  double s = 0;
  for (float v : a->value.data) s += v;
  out->value.data[0] = static_cast<float>(s);
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kSumAll;
    r.out = out;
    r.a = a;
    tape->Record(r);
  }
  return out;
}

Tensor* Transpose(Tape* tape, Tensor* a) {
  Tensor* out = tape->New(a->cols(), a->rows(), a->requires_grad);
  for (int i = 0; i < a->rows(); ++i) {
    for (int j = 0; j < a->cols(); ++j) {
      out->value.At(j, i) = a->value.At(i, j);
    }
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kTranspose;
    r.out = out;
    r.a = a;
    tape->Record(r);
  }
  return out;
}

namespace {

/// The one softmax-row normalization every call site funnels through (the
/// 1 x k SoftmaxRowInto / SoftmaxRowOp paths and each row of the batched
/// SoftmaxRows): exp stays a scalar libm call in every backend, the sum
/// runs the backend's fixed 4-lane double tree, the divide is elementwise
/// (exactly rounded, so trivially backend-identical).
void SoftmaxFillRow(const float* logits, int k, double* p) {
  const kernels::KernelBackend& kb = kernels::Kernels();
  for (int j = 0; j < k; ++j) p[j] = logits[j];
  double mx = p[0];
  for (int j = 0; j < k; ++j) mx = std::max(mx, p[j]);
  for (int j = 0; j < k; ++j) p[j] = std::exp(p[j] - mx);
  const double sum = kb.SumDouble(p, k);
  kb.DivDouble(p, sum, k);
}

}  // namespace

void SoftmaxRowInto(const Tensor* logits, double* p) {
  SoftmaxFillRow(logits->value.data.data(),
                 static_cast<int>(logits->value.data.size()), p);
}

void SoftmaxRowInto(const float* logits, int k, double* p) {
  SoftmaxFillRow(logits, k, p);
}

std::vector<double> SoftmaxRow(const Tensor* logits) {
  std::vector<double> p(logits->value.data.size());
  SoftmaxRowInto(logits, p.data());
  return p;
}

namespace {

/// SoftmaxRow() replicated into the arena double pool (same operation
/// order, so the float results are bit-identical to the heap version).
size_t SoftmaxRowIntoPool(Tape* tape, const Tensor* logits) {
  const int k = logits->cols();
  const size_t off = tape->arena()->AllocDoubles(static_cast<size_t>(k));
  SoftmaxFillRow(logits->value.data.data(), k,
                 tape->arena()->Doubles(off));
  return off;
}

}  // namespace

Tensor* SoftmaxCrossEntropy(Tape* tape, Tensor* logits, int label,
                            float weight) {
  GLINT_CHECK(logits->rows() == 1);
  GLINT_CHECK(label >= 0 && label < logits->cols());
  Tensor* out = tape->New(1, 1, logits->requires_grad);
  const size_t off = SoftmaxRowIntoPool(tape, logits);
  const double* p = tape->arena()->Doubles(off);
  out->value.data[0] = static_cast<float>(
      -weight * std::log(std::max(1e-12, p[static_cast<size_t>(label)])));
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kSoftmaxXent;
    r.out = out;
    r.a = logits;
    r.f0 = weight;
    r.i0 = static_cast<int>(off);
    r.i1 = label;
    tape->Record(r);
  }
  return out;
}

Tensor* BceWithLogit(Tape* tape, Tensor* logit, int label, float weight) {
  GLINT_CHECK(logit->rows() == 1 && logit->cols() == 1);
  Tensor* out = tape->New(1, 1, logit->requires_grad);
  const double x = logit->value.data[0];
  const double y = label;
  // Numerically stable: max(x,0) - x*y + log(1+exp(-|x|))
  out->value.data[0] = static_cast<float>(
      weight * (std::max(x, 0.0) - x * y + std::log1p(std::exp(-std::fabs(x)))));
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kBceLogit;
    r.out = out;
    r.a = logit;
    r.f0 = weight;
    r.i0 = label;
    tape->Record(r);
  }
  return out;
}

Tensor* SquaredDistance(Tape* tape, Tensor* a, Tensor* b) {
  Tensor* d = Sub(tape, a, b);
  Tensor* sq = Mul(tape, d, d);
  return SumAll(tape, sq);
}

Tensor* ContrastiveLoss(Tape* tape, Tensor* za, Tensor* zb, bool same_label,
                        float eps) {
  if (same_label) {
    return SquaredDistance(tape, za, zb);  // ||f(xi) - f(xj)||^2
  }
  // max(0, eps - ||f(xi) - f(xj)||_2)^2, computed with a custom record for
  // the norm to keep gradients exact.
  Tensor* d = Sub(tape, za, zb);
  Tensor* out = tape->New(1, 1, d->requires_grad);
  double norm2 = 0;
  for (float v : d->value.data) norm2 += double(v) * v;
  const double norm = std::sqrt(std::max(1e-12, norm2));
  const double margin = std::max(0.0, eps - norm);
  out->value.data[0] = static_cast<float>(margin * margin);
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kContrastiveMargin;
    r.out = out;
    r.a = d;
    r.d0 = norm;
    r.d1 = margin;
    tape->Record(r);
  }
  return out;
}

Tensor* AddLoss(Tape* tape, Tensor* a, Tensor* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Add(tape, a, b);
}

Tensor* SoftmaxRowOp(Tape* tape, Tensor* a) {
  GLINT_CHECK(a->rows() == 1);
  Tensor* out = tape->New(1, a->cols(), a->requires_grad);
  const size_t off = SoftmaxRowIntoPool(tape, a);
  const double* p = tape->arena()->Doubles(off);
  for (int j = 0; j < a->cols(); ++j) {
    out->value.At(0, j) = static_cast<float>(p[static_cast<size_t>(j)]);
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kSoftmaxRow;
    r.out = out;
    r.a = a;
    tape->Record(r);
  }
  return out;
}

Tensor* ScaleByEntry(Tape* tape, Tensor* a, Tensor* s, int idx) {
  GLINT_CHECK(s->rows() == 1 && idx >= 0 && idx < s->cols());
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, s}));
  const float sv = s->value.At(0, idx);
  kernels::Kernels().ScaleInto(out->value.data.data(), sv,
                               a->value.data.data(),
                               static_cast<int>(a->value.data.size()));
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kScaleByEntry;
    r.out = out;
    r.a = a;
    r.b = s;
    r.f0 = sv;
    r.i0 = idx;
    tape->Record(r);
  }
  return out;
}

namespace {

/// Copies a segment table into the arena int pool (records store offsets,
/// not pointers). `extra` reserves trailing ints in the same block.
size_t StashOffsets(Tape* tape, const std::vector<int>& offsets,
                    size_t extra) {
  const size_t off = tape->arena()->AllocInts(offsets.size() + extra);
  std::copy(offsets.begin(), offsets.end(), tape->arena()->Ints(off));
  return off;
}

void CheckOffsets(const Tensor* a, const std::vector<int>& offsets) {
  GLINT_CHECK(offsets.size() >= 2);
  GLINT_CHECK(offsets.front() == 0 && offsets.back() == a->rows());
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    GLINT_CHECK(offsets[s] < offsets[s + 1]);  // segments are non-empty
  }
}

}  // namespace

Tensor* SegmentMeanRows(Tape* tape, Tensor* a,
                        const std::vector<int>& offsets) {
  CheckOffsets(a, offsets);
  const int B = static_cast<int>(offsets.size()) - 1;
  Tensor* out = tape->New(B, a->cols(), a->requires_grad);
  const kernels::KernelBackend& kb = kernels::Kernels();
  const int cols = a->cols();
  for (int s = 0; s < B; ++s) {
    // Same per-segment accumulation as MeanRows over that row range.
    const float inv =
        1.0f / static_cast<float>(std::max(1, offsets[s + 1] - offsets[s]));
    float* orow = out->value.data.data() + static_cast<size_t>(s) * cols;
    for (int i = offsets[s]; i < offsets[s + 1]; ++i) {
      kb.Axpy(orow, inv,
              a->value.data.data() + static_cast<size_t>(i) * cols, cols);
    }
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kSegmentMeanRows;
    r.out = out;
    r.a = a;
    r.i0 = static_cast<int>(StashOffsets(tape, offsets, 0));
    tape->Record(r);
  }
  return out;
}

Tensor* SegmentMaxRows(Tape* tape, Tensor* a,
                       const std::vector<int>& offsets) {
  CheckOffsets(a, offsets);
  const int B = static_cast<int>(offsets.size()) - 1;
  const int cols = a->cols();
  Tensor* out = tape->New(B, cols, a->requires_grad);
  int* argmax = nullptr;
  size_t off = 0;
  if (out->requires_grad) {
    off = StashOffsets(tape, offsets,
                       static_cast<size_t>(B) * static_cast<size_t>(cols));
    argmax = tape->arena()->Ints(off) + B + 1;
  }
  for (int s = 0; s < B; ++s) {
    for (int j = 0; j < cols; ++j) {
      // MaxRows' strict-> scan, restricted to the segment's rows.
      float best = a->value.At(offsets[s], j);
      int bi = offsets[s];
      for (int i = offsets[s] + 1; i < offsets[s + 1]; ++i) {
        if (a->value.At(i, j) > best) {
          best = a->value.At(i, j);
          bi = i;
        }
      }
      if (argmax != nullptr) argmax[static_cast<size_t>(s) * cols + j] = bi;
      out->value.At(s, j) = best;
    }
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kSegmentMaxRows;
    r.out = out;
    r.a = a;
    r.i0 = static_cast<int>(off);
    tape->Record(r);
  }
  return out;
}

Tensor* SoftmaxRows(Tape* tape, Tensor* a) {
  const int B = a->rows();
  const int k = a->cols();
  Tensor* out = tape->New(B, k, a->requires_grad);
  const size_t off = tape->arena()->AllocDoubles(
      static_cast<size_t>(B) * static_cast<size_t>(k));
  for (int i = 0; i < B; ++i) {
    double* p = tape->arena()->Doubles(off) + static_cast<size_t>(i) * k;
    SoftmaxFillRow(a->value.data.data() + static_cast<size_t>(i) * k, k, p);
    for (int j = 0; j < k; ++j) {
      out->value.At(i, j) = static_cast<float>(p[j]);
    }
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kSoftmaxRows;
    r.out = out;
    r.a = a;
    tape->Record(r);
  }
  return out;
}

Tensor* SegmentScaleByCol(Tape* tape, Tensor* a, Tensor* s, int col,
                          const std::vector<int>& offsets) {
  CheckOffsets(a, offsets);
  GLINT_CHECK(s->rows() == static_cast<int>(offsets.size()) - 1);
  GLINT_CHECK(col >= 0 && col < s->cols());
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, s}));
  const kernels::KernelBackend& kb = kernels::Kernels();
  const int cols = a->cols();
  for (int seg = 0; seg < s->rows(); ++seg) {
    const size_t base = static_cast<size_t>(offsets[seg]) * cols;
    kb.ScaleInto(out->value.data.data() + base, s->value.At(seg, col),
                 a->value.data.data() + base,
                 (offsets[seg + 1] - offsets[seg]) * cols);
  }
  if (out->requires_grad) {
    OpRecord r{};
    r.kind = OpKind::kSegmentScaleByCol;
    r.out = out;
    r.a = a;
    r.b = s;
    r.i0 = static_cast<int>(StashOffsets(tape, offsets, 0));
    r.i1 = col;
    tape->Record(r);
  }
  return out;
}

void Adam::Step(const std::vector<Parameter*>& parameters) {
  t_ += 1;
  const double bc1 = 1.0 - std::pow(params_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(params_.beta2, static_cast<double>(t_));
  for (Parameter* p : parameters) {
    if (!p->frozen) {
      for (size_t i = 0; i < p->value.data.size(); ++i) {
        const double g =
            p->grad.data[i] + params_.weight_decay * p->value.data[i];
        p->m.data[i] = static_cast<float>(params_.beta1 * p->m.data[i] +
                                          (1 - params_.beta1) * g);
        p->v.data[i] = static_cast<float>(params_.beta2 * p->v.data[i] +
                                          (1 - params_.beta2) * g * g);
        p->value.data[i] -= static_cast<float>(
            params_.lr * (p->m.data[i] / bc1) /
            (std::sqrt(p->v.data[i] / bc2) + params_.eps));
      }
    }
    p->ZeroGrad();
  }
}

}  // namespace glint::gnn
