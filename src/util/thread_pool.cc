#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "obs/obs.h"

namespace glint {
namespace {

/// Set for the lifetime of a pool worker thread; nested ParallelFor calls
/// check it and run inline instead of re-entering the queue.
thread_local bool in_pool_worker = false;

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool>* pool = new std::unique_ptr<ThreadPool>(
      std::make_unique<ThreadPool>(ThreadPool::ConfiguredThreads()));
  return *pool;
}

}  // namespace

int ThreadPool::ConfiguredThreads() {
  if (const char* env = std::getenv("GLINT_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() { return *GlobalSlot(); }

void ThreadPool::SetGlobalThreads(int threads) {
  GlobalSlot() = std::make_unique<ThreadPool>(threads);
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  GLINT_OBS_GAUGE_SET("glint.threadpool.threads", threads_);
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  in_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this]() { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  if (obs::Enabled()) {
    // Queue-depth gauge (with peak) plus two latencies: time spent waiting
    // in the queue and time spent running. The wrapper costs one extra
    // allocation per task; tasks are ParallelFor chunk drains (a handful
    // per call), not per-index work, so this is off the per-element path.
    GLINT_OBS_COUNT("glint.threadpool.tasks", 1);
    GLINT_OBS_GAUGE_ADD("glint.threadpool.queue_depth", 1);
    const uint64_t enqueue_ns = obs::NowNs();
    task = [enqueue_ns, inner = std::move(task)]() {
      GLINT_OBS_GAUGE_ADD("glint.threadpool.queue_depth", -1);
      GLINT_OBS_OBSERVE("glint.threadpool.task_wait_ms",
                        double(obs::NowNs() - enqueue_ns) * 1e-6);
      GLINT_OBS_TIMER(timer, "glint.threadpool.task_run_ms");
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  if (threads_ == 1 || num_chunks == 1 || in_pool_worker) {
    fn(begin, end);
    return;
  }

  struct State {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    int active = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->next.store(begin, std::memory_order_relaxed);

  // Claim chunks off the shared cursor until the range is exhausted. On the
  // first exception, fast-forward the cursor so remaining chunks are
  // abandoned; the exception is rethrown on the calling thread.
  auto drain = [state, grain, end, &fn]() {
    while (true) {
      const int64_t lo = state->next.fetch_add(grain);
      if (lo >= end) return;
      const int64_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(state->mu);
        if (!state->error) state->error = std::current_exception();
        state->next.store(end);
      }
    }
  };

  const int helpers = static_cast<int>(std::min<int64_t>(
      static_cast<int64_t>(threads_) - 1, num_chunks - 1));
  {
    std::lock_guard<std::mutex> lk(state->mu);
    state->active = helpers;
  }
  for (int h = 0; h < helpers; ++h) {
    // `drain` holds a reference to `fn`; safe because this call blocks
    // until every helper has finished.
    Enqueue([state, drain]() {
      drain();
      std::lock_guard<std::mutex> lk(state->mu);
      if (--state->active == 0) state->done.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lk(state->mu);
  state->done.wait(lk, [&]() { return state->active == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace glint
