#include "core/serving.h"

#include <string>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace glint::core {

ServingEngine::ServingEngine(const TrainedDetector* detector, Config config)
    : detector_(detector), config_(config) {
  GLINT_CHECK(detector_ != nullptr);
}

int ServingEngine::AddHome(const std::vector<rules::Rule>& deployed) {
  auto session =
      std::make_unique<DeploymentSession>(detector_, config_.session);
  for (const auto& r : deployed) session->AddRule(r);
  sessions_.push_back(std::move(session));
  return static_cast<int>(sessions_.size()) - 1;
}

DeploymentSession& ServingEngine::home(int h) {
  GLINT_CHECK(has_home(h));
  return *sessions_[static_cast<size_t>(h)];
}

const DeploymentSession& ServingEngine::home(int h) const {
  GLINT_CHECK(has_home(h));
  return *sessions_[static_cast<size_t>(h)];
}

DeploymentSession* ServingEngine::FindHome(int h) {
  return has_home(h) ? sessions_[static_cast<size_t>(h)].get() : nullptr;
}

const DeploymentSession* ServingEngine::FindHome(int h) const {
  return has_home(h) ? sessions_[static_cast<size_t>(h)].get() : nullptr;
}

void ServingEngine::OnEvent(int h, const graph::Event& e) {
  GLINT_CHECK(has_home(h));
  GLINT_OBS_COUNT("glint.serving.events", 1);
  sessions_[static_cast<size_t>(h)]->OnEvent(e);
}

Status ServingEngine::TryOnEvent(int h, const graph::Event& e) {
  DeploymentSession* session = FindHome(h);
  if (session == nullptr) {
    GLINT_OBS_COUNT("glint.serving.bad_home_index", 1);
    return Status::InvalidArgument(
        "no home with index " + std::to_string(h) + " (have " +
        std::to_string(sessions_.size()) + ")");
  }
  GLINT_OBS_COUNT("glint.serving.events", 1);
  session->OnEvent(e);
  return Status::OK();
}

std::vector<ThreatWarning> ServingEngine::InspectAll(double now_hours) {
  GLINT_OBS_SPAN(span, "glint.serving.inspect_all_ms");
  std::vector<ThreatWarning> out(sessions_.size());
  // One home per chunk: each session is touched by exactly one thread, and
  // results land in per-home slots (bit-identical for any thread count).
  ParallelFor(0, static_cast<int64_t>(sessions_.size()), 1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t h = lo; h < hi; ++h) {
                  out[static_cast<size_t>(h)] =
                      sessions_[static_cast<size_t>(h)]->Inspect(now_hours);
                }
              });
  return out;
}

size_t ServingEngine::total_rules() const {
  size_t n = 0;
  for (const auto& s : sessions_) n += static_cast<size_t>(s->num_rules());
  return n;
}

DeploymentSession::CacheStats ServingEngine::AggregateStats() const {
  DeploymentSession::CacheStats total;
  for (const auto& s : sessions_) total += s->Stats();
  return total;
}

}  // namespace glint::core
