#pragma once

#include <memory>
#include <vector>

#include "core/warning.h"
#include "correlation/discovery.h"
#include "gnn/drift.h"
#include "gnn/models.h"
#include "gnn/trainer.h"
#include "gnn/transfer.h"
#include "graph/builder.h"
#include "rules/corpus.h"

namespace glint::core {

/// The trained half of the Glint split: embedding models, the correlation
/// discoverer, ITGNN-S / ITGNN-C, and the drift detector — everything the
/// offline stage (TrainOffline) or LoadModels produces.
///
/// Lifecycle contract: after TrainOffline() / LoadModels() completes, the
/// detector is *immutable through its const serving API* and may be shared
/// by any number of DeploymentSessions across threads. The memo caches
/// (node features, pairwise correlation verdicts) are internally locked and
/// store pure-function results only, so concurrent sessions always observe
/// the same verdicts as serial execution. The non-const offline methods
/// (TrainOffline, LoadModels, FineTune) must not run concurrently with live
/// sessions; they belong to the maintenance window, not the serving path.
class TrainedDetector {
 public:
  struct Options {
    rules::CorpusConfig corpus;
    graph::GraphBuilder::Config builder;
    gnn::ItgnnModel::Config model;
    gnn::TrainConfig train;
    /// Graphs to build for offline training.
    int num_training_graphs = 800;
    /// Labeled action-trigger pairs for the correlation discoverer.
    correlation::PairDatasetConfig pairs;
    /// Use the *learned* correlation classifier (vs the semantic oracle)
    /// when building graphs online, mirroring the paper's pipeline.
    bool use_learned_correlation = true;
    /// Drift threshold T_MAD.
    double t_mad = 3.0;
    uint64_t seed = 97;
  };

  TrainedDetector() : TrainedDetector(Options()) {}
  explicit TrainedDetector(Options options);

  // ---- Offline stage (maintenance window only) --------------------------

  /// Runs the full offline stage. Expensive (trains three models).
  void TrainOffline();

  /// Serialization of the trained models.
  Status SaveModels(const std::string& dir) const;
  Status LoadModels(const std::string& dir);

  /// Step 7-8 of Fig. 2: fine-tunes the classifier head on user-marked
  /// feedback graphs. Offline only — must not overlap live sessions.
  void FineTune(const std::vector<graph::InteractionGraph>& feedback,
                const std::vector<bool>& is_threat);

  /// True once TrainOffline (or LoadModels) has completed.
  bool ready() const { return ready_; }

  // ---- Const serving API (thread-shareable) -----------------------------

  /// The online edge predicate: the learned correlation classifier when
  /// trained and enabled (memoized by rule content hash in the shared
  /// CorrelationCache), else the semantic oracle.
  bool Correlated(const rules::Rule& src, const rules::Rule& dst) const;

  /// Embeds one rule into a graph node (memoized by rule text).
  graph::Node MakeNode(const rules::Rule& rule) const;

  /// Drift check + classification + culprit explanation over a tensorized
  /// graph; `g` supplies rule text/platform for the warning rendering.
  ThreatWarning Analyze(const gnn::GnnGraph& gg,
                        const graph::InteractionGraph& g) const;

  /// Batched Analyze: packs the (non-empty) graphs into one block-diagonal
  /// GnnBatch and runs a single drift-embedding forward and a single
  /// classification forward for the whole batch, amortizing tape and
  /// dispatch overhead. Warning i is bit-identical to Analyze(*ggs[i],
  /// *gs[i]) — the segment-op contract (gnn/tensor.h) makes every batched
  /// row match its sequential twin, and culprit explanation still runs
  /// per-graph on the threats.
  std::vector<ThreatWarning> AnalyzeBatch(
      const std::vector<const gnn::GnnGraph*>& ggs,
      const std::vector<const graph::InteractionGraph*>& gs) const;

  /// Tensorizes then analyzes (initial-setup checks, cold inspections).
  ThreatWarning AnalyzeGraph(const graph::InteractionGraph& g) const;

  // ---- Accessors (benches, examples, the Glint façade) ------------------

  const Options& options() const { return options_; }
  gnn::ItgnnModel* classifier() const { return classifier_.get(); }
  gnn::ItgnnModel* contrastive() const { return contrastive_.get(); }
  const gnn::DriftDetector& drift_detector() const { return drift_; }
  bool has_discovery() const { return discovery_ != nullptr; }
  const correlation::CorrelationDiscovery& discovery() const {
    return *discovery_;
  }
  graph::GraphBuilder* builder() const { return builder_.get(); }
  const std::vector<rules::Rule>& corpus() const { return corpus_rules_; }
  const nlp::EmbeddingModel& word_model() const { return word_model_; }
  const nlp::EmbeddingModel& sentence_model() const { return sentence_model_; }
  const correlation::CorrelationCache& correlation_cache() const {
    return corr_cache_;
  }
  const std::vector<gnn::GnnGraph>& train_graphs() const {
    return train_graphs_;
  }

 private:
  Options options_;
  nlp::EmbeddingModel word_model_;
  nlp::EmbeddingModel sentence_model_;
  std::vector<rules::Rule> corpus_rules_;
  std::unique_ptr<correlation::CorrelationDiscovery> discovery_;
  std::unique_ptr<graph::GraphBuilder> builder_;
  std::unique_ptr<gnn::ItgnnModel> classifier_;   ///< ITGNN-S
  std::unique_ptr<gnn::ItgnnModel> contrastive_;  ///< ITGNN-C
  gnn::DriftDetector drift_;
  std::vector<gnn::GnnGraph> train_graphs_;
  /// Shared pairwise-correlation memo (one entry per rule pair across every
  /// session served by this detector).
  mutable correlation::CorrelationCache corr_cache_;
  bool ready_ = false;
};

}  // namespace glint::core
