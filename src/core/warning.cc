#include "core/warning.h"

#include "util/string_utils.h"

namespace glint::core {

std::string ThreatWarning::Render() const {
  std::string out;
  out += "+--------------------------------------------------------------+\n";
  out += "| GLINT NOTIFICATION                                             \n";
  if (threat) {
    out += StrFormat("| Potential Interactive Bug Detected!  (confidence %.1f%%)\n",
                     100.0 * confidence);
  } else if (drifting) {
    out += "| Unfamiliar interaction pattern (drifting sample) detected.    \n";
    out += "| Please review — this does not match any known normal or       \n";
    out += "| threat pattern.                                               \n";
  } else {
    out += "| No interactive threats detected. Have a great day!            \n";
  }
  if (!types.empty()) {
    out += "| Threat types:";
    for (auto t : types) out += std::string(" ") + graph::ThreatTypeName(t);
    out += "\n";
  }
  if (!culprits.empty()) {
    out += "| We provide the following automation rules for inspection.    \n";
    out += "| You may stop or update rule configurations by jumping to the  \n";
    out += "| corresponding smart home platform apps.                       \n";
    for (const auto& c : culprits) {
      out += StrFormat("|  [%s] (importance %.2f) %s\n", c.platform.c_str(),
                       c.importance, c.rule_text.c_str());
      out += StrFormat("|      -> JUMP TO %s | STOP\n", c.platform.c_str());
    }
  }
  out += "+--------------------------------------------------------------+\n";
  return out;
}

}  // namespace glint::core
