#include "testbed/scenarios.h"

namespace glint::testbed {

using rules::ActionSpec;
using rules::Channel;
using rules::Command;
using rules::Comparator;
using rules::ConditionSpec;
using rules::DeviceType;
using rules::Location;
using rules::Platform;
using rules::Rule;
using rules::TriggerSpec;

namespace {

TriggerSpec StateTrig(DeviceType d, const char* state) {
  TriggerSpec t;
  t.device = d;
  t.channel = rules::StateChannelOf(d);
  if (rules::IsSensor(d)) t.channel = rules::SensedChannelOf(d);
  t.cmp = Comparator::kEquals;
  t.state = state;
  t.direction = +1;
  return t;
}

TriggerSpec NumTrig(Channel ch, DeviceType d, Comparator cmp, double lo) {
  TriggerSpec t;
  t.channel = ch;
  t.device = d;
  t.cmp = cmp;
  t.lo = lo;
  t.direction = cmp == Comparator::kAbove ? +1 : -1;
  return t;
}

TriggerSpec TimeTrig(int hour) {
  TriggerSpec t;
  t.channel = Channel::kTime;
  t.cmp = Comparator::kEquals;
  t.has_time = true;
  t.hour_lo = hour;
  t.hour_hi = hour;
  return t;
}

Rule Make(int id, Platform p, TriggerSpec t, std::vector<ActionSpec> as,
          const char* text, Location loc = Location::kAny) {
  Rule r;
  r.id = id;
  r.platform = p;
  r.location = loc;
  r.trigger = t;
  r.actions = std::move(as);
  r.text = text;
  return r;
}

}  // namespace

std::vector<Rule> ScenarioGenerator::BenignDeployment() {
  std::vector<Rule> rules;
  rules.push_back(Make(1, Platform::kSmartThings,
                       StateTrig(DeviceType::kMotionSensor, "active"),
                       {{DeviceType::kLight, Command::kOn, 0}},
                       "If motion is detected, turn on the light.",
                       Location::kLivingRoom));
  rules.push_back(Make(2, Platform::kSmartThings,
                       StateTrig(DeviceType::kPresenceSensor, "away"),
                       {{DeviceType::kLock, Command::kLock, 0},
                        {DeviceType::kSecuritySystem, Command::kArm, 0}},
                       "When everyone leaves home, lock the door and arm the "
                       "alarm."));
  rules.push_back(Make(3, Platform::kSmartThings,
                       StateTrig(DeviceType::kPresenceSensor, "present"),
                       {{DeviceType::kSecuritySystem, Command::kDisarm, 0}},
                       "When someone arrives home, disarm the alarm."));
  rules.push_back(Make(4, Platform::kAlexa,
                       NumTrig(Channel::kTemperature,
                               DeviceType::kTemperatureSensor,
                               Comparator::kAbove, 78),
                       {{DeviceType::kAc, Command::kOn, 0}},
                       "Turn on the air conditioner when the temperature is "
                       "above 78 degrees.",
                       Location::kLivingRoom));
  rules.push_back(Make(5, Platform::kAlexa,
                       NumTrig(Channel::kTemperature,
                               DeviceType::kTemperatureSensor,
                               Comparator::kBelow, 62),
                       {{DeviceType::kHeater, Command::kOn, 0}},
                       "Turn on the heater when the temperature is below 62 "
                       "degrees.",
                       Location::kLivingRoom));
  rules.push_back(Make(6, Platform::kIFTTT, TimeTrig(7),
                       {{DeviceType::kBlind, Command::kOpen, 0}},
                       "If the time is 7 am, then open the blinds."));
  return rules;
}

graph::EventLog ScenarioGenerator::BenignWeek(double hours) {
  SmartHome::Config cfg;
  cfg.seed = rng_.NextU64();
  SmartHome home(cfg, BenignDeployment());
  home.Simulate(hours);
  return home.log();
}

Scenario ScenarioGenerator::Run(std::vector<Rule> deployed, AttackType attack,
                                bool threat, bool complex) {
  SmartHome::Config cfg;
  cfg.seed = rng_.NextU64();
  cfg.start_hour = static_cast<double>(rng_.Int(0, 23));
  if (attack == AttackType::kCommandFailure) cfg.command_failure_rate = 0.5;
  SmartHome home(cfg, deployed);
  home.Simulate(1.5 + rng_.Uniform() * 1.0);
  if (attack != AttackType::kNone) {
    ApplyAttack(attack, &home, &rng_);
  }
  home.Simulate(0.8 + rng_.Uniform() * 0.5);

  Scenario s;
  s.deployed = std::move(deployed);
  s.log = home.log();
  s.now_hours = home.now();
  s.threat = threat;
  s.complex = complex;
  s.attack = attack;
  return s;
}

Scenario ScenarioGenerator::MakeBenign() {
  return Run(BenignDeployment(), AttackType::kNone, /*threat=*/false,
             /*complex=*/false);
}

Scenario ScenarioGenerator::MakeBct() {
  std::vector<Rule> deployed = BenignDeployment();
  const int combo = static_cast<int>(rng_.Below(3));
  AttackType attack = AttackType::kFakeEvent;
  switch (combo) {
    case 0: {
      // Action conflict: smoke unlock vs nightly lock (settings 8/9).
      deployed.push_back(Make(next_rule_id_++, Platform::kSmartThings,
                              StateTrig(DeviceType::kSmokeAlarm, "beeping"),
                              {{DeviceType::kLock, Command::kUnlock, 0}},
                              "If smoke is detected, unlock the door."));
      deployed.push_back(Make(next_rule_id_++, Platform::kAlexa, TimeTrig(22),
                              {{DeviceType::kLock, Command::kLock, 0}},
                              "Lock the door at 10 pm every day."));
      attack = AttackType::kFakeEvent;  // forged smoke/motion report
      break;
    }
    case 1: {
      // Action revert on the AC via the humidity side channel.
      deployed.push_back(
          Make(next_rule_id_++, Platform::kIFTTT,
               NumTrig(Channel::kHumidity, DeviceType::kHumiditySensor,
                       Comparator::kBelow, 40),
               {{DeviceType::kHumidifier, Command::kOn, 0},
                {DeviceType::kAc, Command::kOff, 0}},
               "When humidity is below 40 percent, turn on the humidifier "
               "and turn off the air conditioner.",
               Location::kLivingRoom));
      attack = AttackType::kFakeCommand;
      break;
    }
    default: {
      // Condition block: light-on disarms home; armed-only notification
      // becomes dead (settings 3/4).
      deployed.push_back(Make(next_rule_id_++, Platform::kIFTTT,
                              StateTrig(DeviceType::kLight, "on"),
                              {{DeviceType::kSecuritySystem,
                                Command::kDisarm, 0}},
                              "When light is on, disarm home state."));
      {
        Rule r = Make(next_rule_id_++, Platform::kIFTTT,
                      StateTrig(DeviceType::kMotionSensor, "active"),
                      {{DeviceType::kPhone, Command::kNotify, 0}},
                      "If motion is detected at the door and home is in "
                      "armed state, then send a notification.");
        ConditionSpec c;
        c.channel = Channel::kSecurity;
        c.device = DeviceType::kSecuritySystem;
        c.cmp = Comparator::kEquals;
        c.state = "armed";
        r.conditions.push_back(c);
        deployed.push_back(r);
      }
      attack = AttackType::kCommandFailure;
      break;
    }
  }
  return Run(std::move(deployed), attack, /*threat=*/true, /*complex=*/false);
}

Scenario ScenarioGenerator::MakeCct() {
  std::vector<Rule> deployed = BenignDeployment();
  const int combo = static_cast<int>(rng_.Below(3));
  AttackType attack = AttackType::kStealthyCommand;
  switch (combo) {
    case 0: {
      // Trigger-intake chain: 9 pm vacuum -> motion sensor -> snapshot
      // notification spam (3 rules involved with rule 1's lighting).
      deployed.push_back(Make(next_rule_id_++, Platform::kHomeAssistant,
                              TimeTrig(21),
                              {{DeviceType::kVacuum, Command::kStartClean, 0}},
                              "Blueprint: at 9 pm, run the vacuum cleaner.",
                              Location::kLivingRoom));
      deployed.push_back(
          Make(next_rule_id_++, Platform::kHomeAssistant,
               StateTrig(DeviceType::kMotionSensor, "active"),
               {{DeviceType::kCamera, Command::kSnapshot, 0},
                {DeviceType::kPhone, Command::kNotify, 0}},
               "Blueprint: when motion is detected, capture a snapshot with "
               "the camera and notify my phone.",
               Location::kLivingRoom));
      attack = AttackType::kStealthyCommand;
      break;
    }
    case 1: {
      // Action loop chain: tv playing -> lights off -> lock -> ... with the
      // away-state re-light rule (settings 10/11 style, 3 rules).
      deployed.push_back(Make(next_rule_id_++, Platform::kSmartThings,
                              StateTrig(DeviceType::kTv, "playing"),
                              {{DeviceType::kLight, Command::kOff, 0}},
                              "Turn off lights if playing movies."));
      deployed.push_back(Make(next_rule_id_++, Platform::kAlexa,
                              StateTrig(DeviceType::kLight, "off"),
                              {{DeviceType::kLock, Command::kLock, 0},
                               {DeviceType::kTv, Command::kPlay, 0}},
                              "Lock the door and play a movie if all lights "
                              "are turned off."));
      attack = AttackType::kFakeCommand;
      break;
    }
    default: {
      // Condition-duplicate chain: play music -> occupancy reported ->
      // heating starts (3 rules).
      {
        TriggerSpec occ;
        occ.device = DeviceType::kSpeaker;
        occ.channel = Channel::kSound;
        occ.cmp = Comparator::kEquals;
        occ.state = "playing";
        deployed.push_back(Make(next_rule_id_++, Platform::kHomeAssistant,
                                occ, {{DeviceType::kPhone, Command::kNotify, 0}},
                                "Blueprint: report the room is occupied when "
                                "media is playing in the room."));
      }
      deployed.push_back(Make(next_rule_id_++, Platform::kIFTTT, TimeTrig(15),
                              {{DeviceType::kSpeaker, Command::kPlay, 0}},
                              "If the time is 3 pm, then play music in the "
                              "room."));
      {
        TriggerSpec t;
        t.device = DeviceType::kPresenceSensor;
        t.channel = Channel::kOccupancy;
        t.cmp = Comparator::kEquals;
        t.state = "occupied";
        deployed.push_back(Make(next_rule_id_++, Platform::kHomeAssistant, t,
                                {{DeviceType::kHeater, Command::kOn, 0}},
                                "Blueprint: start the heating when the room "
                                "is occupied."));
      }
      attack = AttackType::kEventLoss;
      break;
    }
  }
  return Run(std::move(deployed), attack, /*threat=*/true, /*complex=*/true);
}

}  // namespace glint::testbed
