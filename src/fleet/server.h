#pragma once

// FleetServer — the network front end of a ShardedFleet: a TCP listener
// (loopback by default) speaking the wire protocol, feeding mutations
// through an EventBus onto the shards.
//
// Layering: sockets/framing here, queueing/backpressure in EventBus,
// routing/durability in ShardedFleet, per-home serving in ServingEngine.
//
// Semantics per request:
//   mutations (AddHome/AddRule/RemoveRule/Event)
//       enqueued on the owning shard's bus queue and acknowledged as
//       *accepted* (kAck OK) — apply is asynchronous, at-most-once; apply
//       errors are counted and surfaced via kStats, not the ack. A full
//       queue under the kReject policy is an error ack (backpressure made
//       visible to the producer); under kBlock the ack itself applies the
//       backpressure by arriving late.
//   kInspect
//       runs on the owning shard's bus consumer thread, behind everything
//       that shard has already accepted (EventBus::RunOnShard) — so the
//       verdict covers every event this connection, or any other, already
//       had accepted, and the engine is only ever touched by its one
//       consumer thread even while other clients keep posting.
//   kStats
//       per-shard counters read the same way (one RunOnShard per shard),
//       then aggregated; kPing is liveness.
//
// A malformed frame (bad checksum, oversized length, truncated body) gets
// an error kAck where the stream still permits one and the connection is
// closed — a corrupt byte stream cannot be resynchronized — but the
// server itself never aborts, and other connections are unaffected.

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/event_bus.h"
#include "fleet/sharding.h"
#include "fleet/wire.h"

namespace glint::fleet {

class FleetServer {
 public:
  struct Config {
    /// TCP port to bind on 127.0.0.1; 0 = ephemeral (read back via port()).
    int port = 0;
    int backlog = 64;
    EventBus::Config bus;
  };

  /// The fleet must outlive the server.
  FleetServer(ShardedFleet* fleet, Config config);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Binds, listens, and starts the accept loop + bus consumers.
  Status Start();
  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Stops accepting, shuts every live connection, drains the bus, joins
  /// all threads. Idempotent; the destructor calls it.
  void Stop();

  /// The ingestion bus (bench/test introspection: queue high-water,
  /// reject/apply-error counters).
  EventBus& bus() { return *bus_; }
  ShardedFleet& fleet() { return *fleet_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Joins every thread whose connection has finished (called per accept).
  void ReapDoneThreads();
  wire::Reply Dispatch(const wire::Request& req);

  ShardedFleet* fleet_;
  Config config_;
  std::unique_ptr<EventBus> bus_;
  /// Atomic: Stop() retires the fd while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  /// Live connections: fd → its serving thread. A thread's last act under
  /// conn_mu_ is to move its own handle onto done_threads_ and erase its
  /// entry — before closing the fd, so Stop() never shutdown()s a number
  /// the OS has recycled. AcceptLoop reaps done_threads_ on every accept,
  /// so handle count is bounded by live connections, not connections ever
  /// accepted.
  std::unordered_map<int, std::thread> conn_threads_;
  std::vector<std::thread> done_threads_;
};

}  // namespace glint::fleet
