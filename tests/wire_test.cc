// Wire-protocol robustness: every request/reply round-trips bit-exactly,
// and no byte sequence a peer can produce — truncated length prefix,
// flipped CRC byte, oversized frame, garbage bodies, mid-frame EOF — ever
// aborts the process. Decoders return Status; the framing layer is
// exercised both on in-memory buffers (DecodeFrame) and on real sockets
// (SendFrame/RecvFrame over a socketpair).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "fleet/wire.h"
#include "util/binio.h"

namespace glint::fleet::wire {
namespace {

rules::Rule TestRule(int id) {
  rules::Rule r;
  r.id = id;
  r.platform = rules::Platform::kIFTTT;
  r.location = rules::Location::kHallway;
  r.text = "If motion is detected, turn on the hallway light.";
  r.trigger.device = rules::DeviceType::kMotionSensor;
  r.trigger.state = "active";
  r.actions.push_back({rules::DeviceType::kLight, rules::Command::kOn, 0});
  return r;
}

graph::Event TestEvent(double t) {
  graph::Event e;
  e.time_hours = t;
  e.device = rules::DeviceType::kMotionSensor;
  e.state = "active";
  return e;
}

// ---- Codec round-trips --------------------------------------------------

TEST(WireCodec, RequestRoundTripsEveryType) {
  std::vector<Request> reqs;
  {
    Request r;
    r.type = MsgType::kPing;
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kStats;
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kAddHome;
    r.home = "home-a";
    r.rules = {TestRule(1), TestRule(2)};
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kAddRule;
    r.home = "home-b";
    r.rule = TestRule(7);
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kRemoveRule;
    r.home = "home-c";
    r.rule_id = -3;
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kEvent;
    r.home = "home-d";
    r.event = TestEvent(12.25);
    reqs.push_back(r);
    r = Request();
    r.type = MsgType::kInspect;
    r.home = "home-e";
    r.now_hours = 3.875;
    reqs.push_back(r);
  }
  for (const auto& req : reqs) {
    const auto payload = EncodeRequest(req);
    Request back;
    ASSERT_TRUE(DecodeRequest(payload, &back).ok())
        << static_cast<int>(req.type);
    EXPECT_EQ(back.type, req.type);
    EXPECT_EQ(back.home, req.home);
    EXPECT_EQ(back.rules.size(), req.rules.size());
    EXPECT_EQ(back.rule.id, req.rule.id);
    EXPECT_EQ(back.rule_id, req.rule_id);
    EXPECT_EQ(back.event.time_hours, req.event.time_hours);
    EXPECT_EQ(back.now_hours, req.now_hours);
  }
}

TEST(WireCodec, ReplyRoundTripsEveryType) {
  {
    Reply r;
    r.type = MsgType::kPong;
    Reply back;
    ASSERT_TRUE(DecodeReply(EncodeReply(r), &back).ok());
    EXPECT_EQ(back.type, MsgType::kPong);
  }
  {
    Reply r;
    r.type = MsgType::kAck;
    r.code = 3;
    r.message = "no home with id 'x'";
    Reply back;
    ASSERT_TRUE(DecodeReply(EncodeReply(r), &back).ok());
    EXPECT_EQ(back.code, 3);
    EXPECT_EQ(back.message, r.message);
  }
  {
    Reply r;
    r.type = MsgType::kWarning;
    r.threat = true;
    r.drifting = false;
    r.confidence = 0.8125;
    r.rendered = "THREAT WARNING\nchain: #1 -> #2";
    Reply back;
    ASSERT_TRUE(DecodeReply(EncodeReply(r), &back).ok());
    EXPECT_TRUE(back.threat);
    EXPECT_FALSE(back.drifting);
    EXPECT_EQ(back.confidence, r.confidence);
    EXPECT_EQ(back.rendered, r.rendered);
  }
  {
    Reply r;
    r.type = MsgType::kStatsReply;
    r.homes = 10000;
    r.rules = 30000;
    r.events = 1u << 20;
    r.inspects = 77;
    r.bus_rejected = 5;
    r.bus_apply_errors = 1;
    Reply back;
    ASSERT_TRUE(DecodeReply(EncodeReply(r), &back).ok());
    EXPECT_EQ(back.homes, r.homes);
    EXPECT_EQ(back.rules, r.rules);
    EXPECT_EQ(back.events, r.events);
    EXPECT_EQ(back.bus_rejected, r.bus_rejected);
    EXPECT_EQ(back.bus_apply_errors, r.bus_apply_errors);
  }
}

TEST(WireCodec, MalformedRequestBodiesAreInvalidArgument) {
  Request req;
  // Unknown type byte.
  {
    std::vector<char> payload = {char(0x33)};
    Status st = DecodeRequest(payload, &req);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  // Empty payload: no type at all.
  {
    std::vector<char> payload;
    EXPECT_EQ(DecodeRequest(payload, &req).code(),
              StatusCode::kInvalidArgument);
  }
  // Truncated body: an Inspect with its f64 cut off.
  {
    Request full;
    full.type = MsgType::kInspect;
    full.home = "home-a";
    full.now_hours = 1.5;
    auto payload = EncodeRequest(full);
    payload.resize(payload.size() - 3);
    EXPECT_EQ(DecodeRequest(payload, &req).code(),
              StatusCode::kInvalidArgument);
  }
  // Trailing bytes after a valid body.
  {
    Request full;
    full.type = MsgType::kPing;
    auto payload = EncodeRequest(full);
    payload.push_back('x');
    EXPECT_EQ(DecodeRequest(payload, &req).code(),
              StatusCode::kInvalidArgument);
  }
  // AddHome claiming more rules than the payload can hold.
  {
    util::ByteWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kAddHome));
    w.Str("home-a");
    w.U32(1000000);  // n rules, but no rule bytes follow
    EXPECT_EQ(DecodeRequest(w.TakeBuffer(), &req).code(),
              StatusCode::kInvalidArgument);
  }
}

// ---- Buffer-level framing ----------------------------------------------

std::vector<char> FrameOf(const std::vector<char>& payload) {
  std::vector<char> out;
  AppendFrame(&out, payload);
  return out;
}

TEST(WireFraming, FrameRoundTrip) {
  const std::vector<char> payload = {'h', 'e', 'l', 'l', 'o'};
  auto frame = FrameOf(payload);
  ASSERT_EQ(frame.size(), payload.size() + 8);
  util::ByteReader r(frame);
  std::vector<char> back;
  ASSERT_TRUE(DecodeFrame(&r, &back).ok());
  EXPECT_EQ(back, payload);
  EXPECT_TRUE(r.exhausted());
}

TEST(WireFraming, TruncatedLengthPrefixIsError) {
  auto frame = FrameOf({'a', 'b', 'c'});
  for (size_t keep = 0; keep < 8; ++keep) {
    std::vector<char> cut(frame.begin(),
                          frame.begin() + static_cast<long>(keep));
    util::ByteReader r(cut);
    std::vector<char> payload;
    Status st = DecodeFrame(&r, &payload);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "keep=" << keep;
  }
}

TEST(WireFraming, TruncatedPayloadIsError) {
  auto frame = FrameOf({'a', 'b', 'c', 'd'});
  std::vector<char> cut(frame.begin(), frame.end() - 2);
  util::ByteReader r(cut);
  std::vector<char> payload;
  EXPECT_EQ(DecodeFrame(&r, &payload).code(), StatusCode::kInvalidArgument);
}

TEST(WireFraming, FlippedCrcByteIsError) {
  auto frame = FrameOf({'a', 'b', 'c', 'd'});
  frame[5] = static_cast<char>(frame[5] ^ 0x10);  // inside the crc field
  util::ByteReader r(frame);
  std::vector<char> payload;
  Status st = DecodeFrame(&r, &payload);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
}

TEST(WireFraming, FlippedPayloadByteIsError) {
  auto frame = FrameOf({'a', 'b', 'c', 'd'});
  frame.back() = static_cast<char>(frame.back() ^ 0x01);
  util::ByteReader r(frame);
  std::vector<char> payload;
  EXPECT_EQ(DecodeFrame(&r, &payload).code(), StatusCode::kInvalidArgument);
}

TEST(WireFraming, OversizedLengthPrefixIsRejectedNotAllocated) {
  // A length prefix of ~4 GiB must be refused outright (bounded buffering),
  // not trusted and allocated.
  std::vector<char> frame(8, 0);
  const uint32_t len = 0xfffffff0u;
  std::memcpy(frame.data(), &len, sizeof len);
  util::ByteReader r(frame);
  std::vector<char> payload;
  Status st = DecodeFrame(&r, &payload);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("oversized"), std::string::npos);
}

TEST(WireFraming, BackToBackFramesDecodeInOrder) {
  std::vector<char> stream;
  AppendFrame(&stream, {'1'});
  AppendFrame(&stream, {'2', '2'});
  AppendFrame(&stream, {});
  util::ByteReader r(stream);
  std::vector<char> payload;
  ASSERT_TRUE(DecodeFrame(&r, &payload).ok());
  EXPECT_EQ(payload, std::vector<char>({'1'}));
  ASSERT_TRUE(DecodeFrame(&r, &payload).ok());
  EXPECT_EQ(payload, std::vector<char>({'2', '2'}));
  ASSERT_TRUE(DecodeFrame(&r, &payload).ok());
  EXPECT_TRUE(payload.empty());
  EXPECT_TRUE(r.exhausted());
}

// ---- Socket-level framing ----------------------------------------------

class WireSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void CloseWriter() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }
  int fds_[2] = {-1, -1};
};

TEST_F(WireSocketTest, SendRecvRoundTrip) {
  const std::vector<char> payload = {'p', 'i', 'n', 'g'};
  ASSERT_TRUE(SendFrame(fds_[0], payload).ok());
  std::vector<char> back;
  ASSERT_TRUE(RecvFrame(fds_[1], &back).ok());
  EXPECT_EQ(back, payload);
}

TEST_F(WireSocketTest, CleanEofIsNotFound) {
  CloseWriter();
  std::vector<char> payload;
  Status st = RecvFrame(fds_[1], &payload);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_F(WireSocketTest, EofInsideHeaderIsIOError) {
  // 3 of the 8 header bytes, then EOF: a torn frame, not a clean close.
  ASSERT_EQ(::send(fds_[0], "abc", 3, 0), 3);
  CloseWriter();
  std::vector<char> payload;
  EXPECT_EQ(RecvFrame(fds_[1], &payload).code(), StatusCode::kIOError);
}

TEST_F(WireSocketTest, EofInsidePayloadIsIOError) {
  std::vector<char> frame;
  AppendFrame(&frame, {'a', 'b', 'c', 'd'});
  // Send everything but the last 2 payload bytes.
  ASSERT_EQ(::send(fds_[0], frame.data(), frame.size() - 2, 0),
            static_cast<ssize_t>(frame.size() - 2));
  CloseWriter();
  std::vector<char> payload;
  EXPECT_EQ(RecvFrame(fds_[1], &payload).code(), StatusCode::kIOError);
}

TEST_F(WireSocketTest, FlippedCrcOnTheWireIsInvalidArgument) {
  std::vector<char> frame;
  AppendFrame(&frame, {'a', 'b', 'c', 'd'});
  frame[4] = static_cast<char>(frame[4] ^ 0x80);
  ASSERT_EQ(::send(fds_[0], frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  std::vector<char> payload;
  EXPECT_EQ(RecvFrame(fds_[1], &payload).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WireSocketTest, OversizedPrefixOnTheWireIsInvalidArgument) {
  char header[8] = {0};
  const uint32_t len = kMaxFramePayload + 1;
  std::memcpy(header, &len, sizeof len);
  ASSERT_EQ(::send(fds_[0], header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  std::vector<char> payload;
  EXPECT_EQ(RecvFrame(fds_[1], &payload).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WireSocketTest, GarbageBytesNeverAbort) {
  // 64 frames of deterministic pseudo-random garbage: every outcome must
  // be a Status, never a crash. (A garbage header is overwhelmingly either
  // oversized or a checksum mismatch.)
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 64; ++i) {
    char junk[32];
    for (char& c : junk) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      c = static_cast<char>(x);
    }
    ASSERT_EQ(::send(fds_[0], junk, sizeof junk, 0),
              static_cast<ssize_t>(sizeof junk));
    std::vector<char> payload;
    Status st = RecvFrame(fds_[1], &payload);
    // Drain whatever the failed parse left behind so the next iteration
    // starts at a fresh "header".
    char drain[256];
    while (::recv(fds_[1], drain, sizeof drain, MSG_DONTWAIT) > 0) {
    }
    EXPECT_FALSE(st.ok()) << "iteration " << i;
  }
}

}  // namespace
}  // namespace glint::fleet::wire
