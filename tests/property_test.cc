// Cross-module property tests: randomized invariants that must hold for
// any corpus/graph/seed, plus failure-injection checks on the stores.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "graph/builder.h"
#include "graph/dataset_store.h"
#include "graph/threat_analyzer.h"
#include "nlp/dtw.h"
#include "nlp/tokenizer.h"
#include "rules/corpus.h"
#include "util/string_utils.h"

namespace glint {
namespace {

std::vector<rules::Rule> SmallCorpus(uint64_t seed) {
  rules::CorpusConfig cc;
  cc.ifttt = 150;
  cc.smartthings = 30;
  cc.alexa = 40;
  cc.google_assistant = 20;
  cc.home_assistant = 30;
  cc.seed = seed;
  return rules::CorpusGenerator(cc).Generate();
}

// ---------------------------------------------------------------------------
// Rule semantics invariants, swept over seeds
// ---------------------------------------------------------------------------

class SemanticsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemanticsSweep, InstantTriggerImpliesTrigger) {
  auto corpus = SmallCorpus(GetParam());
  Rng rng(GetParam() ^ 0x1111);
  for (int k = 0; k < 2000; ++k) {
    const auto& a = corpus[rng.Below(corpus.size())];
    const auto& b = corpus[rng.Below(corpus.size())];
    if (rules::RuleTriggersRuleInstant(a, b)) {
      EXPECT_TRUE(rules::RuleTriggersRule(a, b));
    }
  }
}

TEST_P(SemanticsSweep, OpposingCommandsNeverAssertSameState) {
  using rules::Command;
  const Command all[] = {Command::kOn,     Command::kOff,   Command::kOpen,
                         Command::kClose,  Command::kLock,  Command::kUnlock,
                         Command::kDim,    Command::kBrighten,
                         Command::kPlay,   Command::kStopPlay,
                         Command::kArm,    Command::kDisarm};
  for (Command a : all) {
    for (Command b : all) {
      if (!rules::CommandsOppose(a, b)) continue;
      const std::string sa = rules::CommandResultState(a);
      EXPECT_NE(sa, rules::CommandResultState(b));
      // The opposing command negates the state the other asserts.
      EXPECT_TRUE(rules::CommandNegatesState(b, sa));
    }
  }
  (void)GetParam();
}

TEST_P(SemanticsSweep, EffectsDirectionsAreSigned) {
  auto corpus = SmallCorpus(GetParam());
  for (const auto& r : corpus) {
    for (const auto& a : r.actions) {
      for (const auto& e : rules::EffectsOf(a.device, a.command)) {
        EXPECT_NE(e.direction, 0);
        EXPECT_NE(e.channel, rules::Channel::kNone);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsSweep,
                         ::testing::Values(1u, 7u, 99u, 4242u));

// ---------------------------------------------------------------------------
// Analyzer invariants
// ---------------------------------------------------------------------------

class AnalyzerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalyzerSweep, LabelIsDeterministic) {
  auto corpus = SmallCorpus(GetParam());
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder::Config bc;
  bc.seed = GetParam();
  bc.max_nodes = 12;
  graph::GraphBuilder b1(bc, &wm, &sm), b2(bc, &wm, &sm);
  auto d1 = b1.BuildDataset(corpus, 40);
  auto d2 = b2.BuildDataset(corpus, 40);
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1.graphs[i].vulnerable(), d2.graphs[i].vulnerable());
    EXPECT_EQ(d1.graphs[i].num_edges(), d2.graphs[i].num_edges());
  }
}

TEST_P(AnalyzerSweep, LabelInvariantUnderNodePermutation) {
  auto corpus = SmallCorpus(GetParam());
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder::Config bc;
  bc.seed = GetParam() ^ 0xabc;
  bc.max_nodes = 8;
  graph::GraphBuilder builder(bc, &wm, &sm);
  Rng rng(GetParam());
  for (int k = 0; k < 10; ++k) {
    auto g = builder.BuildGraph(corpus);
    // Rebuild with nodes reversed.
    std::vector<rules::Rule> reversed;
    for (int i = g.num_nodes() - 1; i >= 0; --i) {
      reversed.push_back(g.nodes()[static_cast<size_t>(i)].rule);
    }
    auto g2 = builder.BuildFromRules(reversed);
    EXPECT_EQ(g.vulnerable(), g2.vulnerable());
    auto t1 = g.threat_types();
    auto t2 = g2.threat_types();
    std::sort(t1.begin(), t1.end());
    std::sort(t2.begin(), t2.end());
    EXPECT_EQ(t1, t2);
  }
}

TEST_P(AnalyzerSweep, FindingNodesInRange) {
  auto corpus = SmallCorpus(GetParam());
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder::Config bc;
  bc.seed = GetParam() ^ 0xdef;
  graph::GraphBuilder builder(bc, &wm, &sm);
  for (int k = 0; k < 15; ++k) {
    auto g = builder.BuildGraph(corpus);
    for (const auto& f : graph::ThreatAnalyzer::DetectClassic(g)) {
      EXPECT_NE(f.type, graph::ThreatType::kNone);
      EXPECT_FALSE(f.nodes.empty());
      for (int n : f.nodes) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, g.num_nodes());
      }
    }
    // Culprits are sorted & unique.
    const auto& c = g.culprit_nodes();
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    EXPECT_EQ(std::adjacent_find(c.begin(), c.end()), c.end());
  }
}

TEST_P(AnalyzerSweep, SingletonGraphsAreNeverVulnerable) {
  // A single rule cannot interact with anything.
  auto corpus = SmallCorpus(GetParam());
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  Rng rng(GetParam());
  for (int k = 0; k < 30; ++k) {
    auto g = builder.BuildFromRules({rng.Pick(corpus)});
    EXPECT_FALSE(g.vulnerable());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerSweep,
                         ::testing::Values(3u, 11u, 2026u));

// ---------------------------------------------------------------------------
// Store fuzzing: truncated files must fail cleanly, never crash
// ---------------------------------------------------------------------------

TEST(StoreFailureInjection, TruncationsFailGracefully) {
  auto corpus = SmallCorpus(5);
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  auto ds = builder.BuildDataset(corpus, 6);
  const std::string path = "/tmp/glint_fuzz_store.bin";
  ASSERT_TRUE(graph::DatasetStore::Save(ds, path).ok());

  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  fseek(f, 0, SEEK_SET);
  std::vector<char> full(static_cast<size_t>(size));
  ASSERT_EQ(fread(full.data(), 1, full.size(), f), full.size());
  fclose(f);

  // Truncate at a spread of prefixes; every load must return an error.
  for (double frac : {0.01, 0.1, 0.33, 0.66, 0.9, 0.999}) {
    const std::string tpath = "/tmp/glint_fuzz_trunc.bin";
    FILE* tf = fopen(tpath.c_str(), "wb");
    fwrite(full.data(), 1, static_cast<size_t>(frac * size), tf);
    fclose(tf);
    auto r = graph::DatasetStore::Load(tpath);
    EXPECT_FALSE(r.ok()) << "fraction " << frac;
    std::remove(tpath.c_str());
  }
  std::remove(path.c_str());
}

TEST(StoreFailureInjection, BitFlippedHeaderRejected) {
  auto corpus = SmallCorpus(6);
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  auto ds = builder.BuildDataset(corpus, 2);
  const std::string path = "/tmp/glint_fuzz_hdr.bin";
  ASSERT_TRUE(graph::DatasetStore::Save(ds, path).ok());
  FILE* f = fopen(path.c_str(), "r+b");
  fputc('Z', f);  // corrupt the magic
  fclose(f);
  EXPECT_FALSE(graph::DatasetStore::Load(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// NLP invariants
// ---------------------------------------------------------------------------

TEST(NlpProperties, TokenizerIdempotent) {
  auto corpus = SmallCorpus(9);
  for (size_t i = 0; i < 40; ++i) {
    const auto words = nlp::Tokenizer::Words(corpus[i].text);
    const auto again = nlp::Tokenizer::Words(Join(words, " "));
    EXPECT_EQ(words, again) << corpus[i].text;
  }
}

TEST(NlpProperties, AverageEmbeddingPermutationInvariant) {
  nlp::EmbeddingModel m(300, 17);
  std::vector<std::string> words{"open", "window", "smoke", "detected"};
  auto a = m.Average(words);
  std::reverse(words.begin(), words.end());
  auto b = m.Average(words);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6f);  // float summation order tolerance
  }
}

TEST(NlpProperties, DtwSymmetryRandomSequences) {
  Rng rng(77);
  for (int k = 0; k < 50; ++k) {
    std::vector<double> a(rng.Below(6) + 1), b(rng.Below(6) + 1);
    for (auto& v : a) v = rng.Uniform(-5, 5);
    for (auto& v : b) v = rng.Uniform(-5, 5);
    EXPECT_NEAR(nlp::DtwDistance(a, b), nlp::DtwDistance(b, a), 1e-12);
    EXPECT_NEAR(nlp::DtwDistance(a, a), 0.0, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Event-driven cascade safety
// ---------------------------------------------------------------------------

TEST(CascadeSafety, SelfTriggeringRuleTerminates) {
  // A rule whose action re-fires its own trigger must be cut off by the
  // cascade depth limit rather than recursing forever.
  rules::Rule loop;
  loop.id = 1;
  loop.trigger.device = rules::DeviceType::kLight;
  loop.trigger.channel = rules::Channel::kIlluminance;
  loop.trigger.cmp = rules::Comparator::kEquals;
  loop.trigger.state = "on";
  loop.actions.push_back({rules::DeviceType::kLight, rules::Command::kOn, 0});
  loop.text = "If the light is on, turn on the light.";

  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  auto g = builder.BuildFromRules({loop});
  // Single-node self-loop is suppressed by the builder (i != j edges only);
  // analyzer sees no pairwise loop.
  EXPECT_EQ(g.num_edges(), 0);
}

}  // namespace
}  // namespace glint
