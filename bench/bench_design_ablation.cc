// Ablation benches for this implementation's own design decisions
// (DESIGN.md "Notable design decisions") — not a paper table, but the
// evidence behind the choices:
//   (a) device-sharing edges in the interaction graph (Fig. 1 reading),
//   (b) the Hadamard interaction term in the intra-metapath transform,
//   (c) the embedding model's noise share (semantic-cluster geometry).

#include <cstdio>
#include <ctime>

#include "bench_common.h"
#include "correlation/discovery.h"
#include "ml/metrics.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT
using gnn::GnnGraph;

namespace {

// Train + evaluate an ITGNN configuration on a prepared dataset.
ml::Metrics RunItgnn(const std::vector<GnnGraph>& graphs,
                     const gnn::ItgnnModel::Config& cfg, int epochs) {
  Rng rng(4040);
  std::vector<GnnGraph> train, test;
  gnn::SplitGraphs(graphs, 0.8, &rng, &train, &test);
  gnn::ItgnnModel model(cfg);
  gnn::TrainConfig tc;
  tc.epochs = epochs;
  tc.oversample_factor = 2.5;
  gnn::Trainer trainer(tc);
  trainer.TrainSupervised(&model, train);
  return gnn::Trainer::Evaluate(&model, test);
}

std::vector<GnnGraph> SmallRegimeGraphs(const std::vector<rules::Rule>& pool,
                                        bool device_edges, uint64_t seed) {
  graph::GraphBuilder::Config bc;
  bc.max_nodes = 10;
  bc.size_skew = 2.0;
  bc.device_edges = device_edges;
  bc.seed = seed;
  graph::GraphBuilder builder(bc, &WordModel(), &SentenceModel());
  return gnn::ToGnnGraphs(builder.BuildDataset(pool, 700));
}

}  // namespace

int main() {
  Banner("Design-decision ablations (this implementation's choices)",
         "DESIGN.md Sec. 5");
  auto corpus = DefaultCorpus();

  // (a) Device-sharing edges: pairwise threats become local to message
  // passing (the Fig. 1 "connected via interacting devices" reading).
  {
    std::printf("\n(a) device-sharing edges (small-graph regime, where the\n"
                "    conflict pattern must be read relationally)\n");
    TablePrinter t({"graph edges", "accuracy", "recall", "F1"});
    for (bool device_edges : {false, true}) {
      const std::clock_t t0 = std::clock();
      auto graphs = SmallRegimeGraphs(corpus, device_edges, 404);
      gnn::ItgnnModel::Config cfg;
      cfg.num_scales = 2;
      auto m = RunItgnn(graphs, cfg, 12);
      t.AddRow({device_edges ? "trigger-action + device" : "trigger-action only",
                StrFormat("%.3f", m.accuracy), StrFormat("%.3f", m.recall),
                StrFormat("%.3f", m.f1)});
      std::printf("  device_edges=%d done (%.0fs)\n", device_edges ? 1 : 0,
                  static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
    }
    t.Print();
  }

  // (b) Hadamard interaction term in the intra-metapath transform.
  {
    std::printf("\n(b) Hadamard self-neighbour interaction term\n");
    auto graphs = SmallRegimeGraphs(corpus, /*device_edges=*/true, 405);
    TablePrinter t({"intra-metapath input", "accuracy", "recall", "F1"});
    for (bool hadamard : {false, true}) {
      gnn::ItgnnModel::Config cfg;
      cfg.num_scales = 2;
      cfg.use_hadamard = hadamard;
      auto m = RunItgnn(graphs, cfg, 12);
      t.AddRow({hadamard ? "[h ; mean_N(h) ; h (.) mean_N(h)]"
                         : "[h ; mean_N(h)]",
                StrFormat("%.3f", m.accuracy), StrFormat("%.3f", m.recall),
                StrFormat("%.3f", m.f1)});
    }
    t.Print();
  }

  // (c) Embedding noise share: how word-specific vs cluster-anchored the
  // synthetic vectors are, measured by correlation-discovery quality.
  {
    std::printf("\n(c) embedding noise share (cluster geometry) vs the\n"
                "    correlation discoverer's pair accuracy\n");
    TablePrinter t({"noise share", "pair accuracy", "pair F1"});
    for (double noise : {0.1, 0.25, 0.5}) {
      nlp::EmbeddingModel model(300, 17, noise);
      correlation::FeatureExtractor extractor(&model);
      correlation::PairDatasetConfig pc;
      pc.num_positive = 250;
      pc.num_negative = 350;
      ml::Dataset pairs = correlation::BuildPairDataset(corpus, extractor, pc);
      correlation::CorrelationDiscovery discovery(&model);
      // Hold out 20% of pairs for evaluation.
      Rng rng(406);
      auto split = ml::TrainTestSplit(pairs, 0.8, &rng);
      discovery.Train(split.train);
      // Ensemble accuracy on held-out features requires re-deriving pair
      // predictions: evaluate the ensemble's component-majority on x.
      std::vector<int> pred;
      for (const auto& x : split.test.x) {
        // VoteShare needs rules; emulate with the trained components by
        // refitting a single MLP on features instead. Simplest: use the
        // trained forest-style ensemble through CorrelationDiscovery's
        // interface is rule-based, so here we use a fresh MLP on the split.
        (void)x;
        break;
      }
      // Direct evaluation: train an MLP on the split (the ensemble's
      // strongest member) — this isolates the feature-geometry effect.
      ml::Mlp::Params mp;
      mp.epochs = 35;
      ml::Mlp mlp(mp);
      mlp.Fit(split.train, ml::BalancedClassWeights(split.train.y, 2));
      auto m = ml::BinaryMetrics(split.test.y,
                                 mlp.PredictBatch(split.test.x));
      t.AddRow({StrFormat("%.2f", noise), StrFormat("%.3f", m.accuracy),
                StrFormat("%.3f", m.f1)});
    }
    t.Print();
    std::printf("lower noise -> cleaner cluster geometry -> easier pair\n"
                "classification; 0.25 is the shipped default.\n");
  }
  return 0;
}
