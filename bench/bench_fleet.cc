// Sharded-fleet bench: the million-home serving shape at bench scale. One
// ShardedFleet (default 10k homes over 8 shards, each home deploying 2-3
// rules from a small shared pool) is driven through every fleet layer:
//
//   register   synchronous routed TryAddHome           -> homes/sec
//   ingest     EventBus, multi-producer, kBlock        -> events/sec,
//              per-shard queue high-water rollup
//   inspect    sampled per-home TryInspect p50/p99 and a full
//              InspectAll(batched)                     -> homes/sec
//   identity   a 64-home sample replayed on a single ServingEngine must
//              render bit-identically (the fleet determinism gate)
//   wire       FleetServer on loopback TCP: ping RTT p50/p99, multi-
//              connection event ingestion              -> events/sec
//
// Emits one machine-readable line (prefix BENCH_JSON).
//
// Usage: bench_fleet [--smoke] [--homes N] [--shards K]
//   --smoke  400 homes / 4 shards, fewer wire ops; used by tools/check.sh.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/glint.h"
#include "core/serving.h"
#include "fleet/event_bus.h"
#include "fleet/server.h"
#include "fleet/sharding.h"
#include "util/thread_pool.h"

namespace glint::bench {
namespace {

using fleet::BusMessage;
using fleet::EventBus;
using fleet::FleetServer;
using fleet::ShardedFleet;

constexpr int kPoolSize = 8;
constexpr int kEventRounds = 3;

graph::Event EventFor(const rules::Rule& r, double t) {
  graph::Event e;
  e.time_hours = t;
  e.location = r.location;
  e.device = r.trigger.device;
  e.state = r.trigger.state;
  return e;
}

/// Home i's deployed rules: 2-3 drawn from the shared pool, so detector
/// memo caches are shared across homes (the production shape).
std::vector<rules::Rule> DeployedFor(const std::vector<rules::Rule>& pool,
                                     int i) {
  std::vector<rules::Rule> d = {pool[static_cast<size_t>(i % kPoolSize)],
                                pool[static_cast<size_t>((i + 3) % kPoolSize)]};
  if (i % 2 == 0) d.push_back(pool[static_cast<size_t>((i + 5) % kPoolSize)]);
  return d;
}

/// Home i's round-r event — a pure function of (i, r), so the bus replay
/// and the single-engine identity replay see the identical stream.
graph::Event EventAt(const std::vector<rules::Rule>& pool, int i, int r) {
  const rules::Rule& rule = pool[static_cast<size_t>((i + r) % kPoolSize)];
  return EventFor(rule, 0.4 + 0.01 * (kEventRounds * i + r));
}

int Run(int homes, int shards, bool smoke) {
  core::Glint::Options opts;
  opts.corpus.ifttt = 200;
  opts.corpus.smartthings = 40;
  opts.corpus.alexa = 60;
  opts.corpus.google_assistant = 40;
  opts.corpus.home_assistant = 40;
  opts.num_training_graphs = 40;
  opts.builder.max_nodes = 8;
  opts.model.num_scales = 2;
  opts.model.embed_dim = 32;
  opts.train.epochs = 2;
  opts.pairs.num_positive = 60;
  opts.pairs.num_negative = 90;
  core::Glint glint(opts);
  std::printf("training the detector (offline stage)...\n");
  glint.TrainOffline();

  std::vector<rules::Rule> pool(
      glint.corpus().begin(),
      glint.corpus().begin() +
          std::min<size_t>(kPoolSize, glint.corpus().size()));
  for (size_t i = 0; i < pool.size(); ++i) {
    pool[i].id = 9000 + static_cast<int>(i);
  }

  Banner("Sharded fleet: register / ingest / inspect / wire",
         "the Sec. 5 deployment regime at fleet scale");
  std::printf("homes=%d shards=%d threads=%d\n\n", homes, shards,
              ThreadPool::Global().threads());

  fleet::FleetConfig fcfg;
  fcfg.num_shards = shards;
  ShardedFleet fleet(&glint.detector(), fcfg);

  std::vector<core::HomeId> ids;
  ids.reserve(static_cast<size_t>(homes));
  for (int i = 0; i < homes; ++i) ids.push_back("home-" + std::to_string(i));

  // ---- Register: synchronous routed TryAddHome --------------------------
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < homes; ++i) {
    if (!fleet.TryAddHome(ids[static_cast<size_t>(i)], DeployedFor(pool, i))
             .ok()) {
      std::fprintf(stderr, "TryAddHome(%s) failed\n",
                   ids[static_cast<size_t>(i)].c_str());
      return 1;
    }
  }
  const double register_s = Seconds(t0);
  const double register_per_sec = homes / register_s;

  size_t shard_min = fleet.shard(0).num_homes();
  size_t shard_max = shard_min;
  for (int k = 1; k < shards; ++k) {
    shard_min = std::min(shard_min, fleet.shard(k).num_homes());
    shard_max = std::max(shard_max, fleet.shard(k).num_homes());
  }
  std::printf("%-38s %12.0f  (%.2fs; shard homes %zu..%zu)\n",
              "register homes/sec", register_per_sec, register_s, shard_min,
              shard_max);

  // ---- Ingest: EventBus, multi-producer, kBlock -------------------------
  // Each producer owns a strided partition of homes and posts all of a
  // home's rounds in order, so per-home FIFO order is fixed and the end
  // state is deterministic (the bit-identity gate below depends on it).
  const int producers =
      std::max(1, std::min(smoke ? 2 : 4,
                           static_cast<int>(std::thread::hardware_concurrency())));
  EventBus::Config bcfg;
  bcfg.capacity = 1024;
  bcfg.policy = EventBus::Backpressure::kBlock;
  EventBus bus(&fleet, bcfg);
  const uint64_t total_events =
      static_cast<uint64_t>(homes) * kEventRounds;
  t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (int i = p; i < homes; i += producers) {
          for (int r = 0; r < kEventRounds; ++r) {
            BusMessage m;
            m.kind = BusMessage::Kind::kEvent;
            m.home = ids[static_cast<size_t>(i)];
            m.event = EventAt(pool, i, r);
            if (!bus.Post(std::move(m)).ok()) {
              std::fprintf(stderr, "bus post refused under kBlock\n");
              std::abort();
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    bus.Flush();
  }
  const double ingest_s = Seconds(t0);
  const double bus_events_per_sec = static_cast<double>(total_events) / ingest_s;
  size_t queue_hw_max = 0;
  double queue_hw_sum = 0;
  for (int k = 0; k < shards; ++k) {
    queue_hw_max = std::max(queue_hw_max, bus.queue_high_water(k));
    queue_hw_sum += static_cast<double>(bus.queue_high_water(k));
  }
  const uint64_t bus_rejected = bus.rejected();
  const uint64_t bus_apply_errors = bus.apply_errors();
  bus.Stop();
  std::printf("%-38s %12.0f  (%d producers; queue hw max %zu avg %.0f)\n",
              "bus events/sec", bus_events_per_sec, producers, queue_hw_max,
              queue_hw_sum / shards);

  // ---- Inspect: sampled per-home latency, then the batched full sweep ---
  const double now = 0.4 + 0.01 * (kEventRounds * homes) + 1.0;
  const int samples = std::min(homes, 256);
  const int stride = std::max(1, homes / samples);
  std::vector<double> inspect_ms;
  inspect_ms.reserve(static_cast<size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    const auto& id = ids[static_cast<size_t>(s * stride)];
    auto ti = std::chrono::steady_clock::now();
    if (!fleet.TryInspect(id, now).ok()) {
      std::fprintf(stderr, "TryInspect(%s) failed\n", id.c_str());
      return 1;
    }
    inspect_ms.push_back(Seconds(ti) * 1e3);
  }
  const double inspect_p50 = Percentile(inspect_ms, 0.50);
  const double inspect_p99 = Percentile(inspect_ms, 0.99);

  t0 = std::chrono::steady_clock::now();
  fleet::FleetWarnings all = fleet.InspectAll(now, /*max_batch=*/64);
  const double inspect_all_s = Seconds(t0);
  const double inspect_homes_per_sec = homes / inspect_all_s;
  if (all.ids.size() != static_cast<size_t>(homes)) {
    std::fprintf(stderr, "InspectAll covered %zu of %d homes\n",
                 all.ids.size(), homes);
    return 1;
  }
  std::printf("%-38s %12.2f  (p99 %.2f; %d sampled)\n",
              "inspect p50 ms", inspect_p50, inspect_p99, samples);
  std::printf("%-38s %12.0f  (full sweep %.2fs, batch 64)\n",
              "InspectAll homes/sec", inspect_homes_per_sec, inspect_all_s);

  // ---- Identity gate: a 64-home sample vs a single engine ---------------
  bool identity_ok = true;
  {
    core::ServingEngine single(&glint.detector());
    const int n = std::min(homes, 64);
    const int id_stride = std::max(1, homes / n);
    for (int s = 0; s < n; ++s) {
      const int i = s * id_stride;
      const auto& id = ids[static_cast<size_t>(i)];
      if (!single.TryAddHome(id, DeployedFor(pool, i)).ok()) return 1;
      for (int r = 0; r < kEventRounds; ++r) {
        if (!single.TryOnEvent(id, EventAt(pool, i, r)).ok()) return 1;
      }
      auto lhs = fleet.TryInspect(id, now);
      auto rhs = single.TryInspect(id, now);
      if (!lhs.ok() || !rhs.ok() ||
          lhs.value().Render() != rhs.value().Render()) {
        identity_ok = false;
      }
    }
    std::printf("%-38s %12s  (%d-home sample)\n", "fleet == single engine",
                identity_ok ? "yes" : "NO — DETERMINISM BUG", n);
  }

  // ---- Wire: loopback TCP through FleetServer ---------------------------
  FleetServer server(&fleet, {});
  if (!server.Start().ok()) {
    std::fprintf(stderr, "FleetServer failed to start\n");
    return 1;
  }
  const int pings = smoke ? 200 : 1000;
  std::vector<double> ping_us;
  ping_us.reserve(static_cast<size_t>(pings));
  {
    fleet::wire::Client client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      std::fprintf(stderr, "wire client connect failed\n");
      return 1;
    }
    fleet::wire::Request req;
    fleet::wire::Reply reply;
    req.type = fleet::wire::MsgType::kPing;
    for (int i = 0; i < pings; ++i) {
      auto ti = std::chrono::steady_clock::now();
      if (!client.Call(req, &reply).ok()) {
        std::fprintf(stderr, "wire ping failed\n");
        return 1;
      }
      ping_us.push_back(Seconds(ti) * 1e6);
    }
  }
  const double ping_p50 = Percentile(ping_us, 0.50);
  const double ping_p99 = Percentile(ping_us, 0.99);

  // Multi-connection event ingestion over the socket: each connection owns
  // a strided partition of existing homes; acks are accepted-acks, so this
  // measures the framed request/ack round-trip rate, end to end.
  const int conns = smoke ? 2 : 4;
  const int wire_events_per_conn = smoke ? 250 : 2500;
  std::vector<int> wire_failures(static_cast<size_t>(conns), 0);
  t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        fleet::wire::Client client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) {
          wire_failures[static_cast<size_t>(c)] = wire_events_per_conn;
          return;
        }
        fleet::wire::Request req;
        fleet::wire::Reply reply;
        req.type = fleet::wire::MsgType::kEvent;
        for (int i = 0; i < wire_events_per_conn; ++i) {
          const int h = (c + i * conns) % homes;
          req.home = ids[static_cast<size_t>(h)];
          req.event = EventFor(pool[static_cast<size_t>(h % kPoolSize)],
                               now + 0.01 * (i + 1));
          if (!client.Call(req, &reply).ok() || reply.code != 0) {
            ++wire_failures[static_cast<size_t>(c)];
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const double wire_s = Seconds(t0);
  const uint64_t wire_events =
      static_cast<uint64_t>(conns) * wire_events_per_conn;
  const double wire_events_per_sec = static_cast<double>(wire_events) / wire_s;
  int wire_failed = 0;
  for (int f : wire_failures) wire_failed += f;
  server.bus().Flush();
  const uint64_t wire_apply_errors = server.bus().apply_errors();
  server.Stop();
  std::printf("%-38s %12.1f  (p99 %.1f us, %d pings)\n", "wire ping p50 us",
              ping_p50, ping_p99, pings);
  std::printf("%-38s %12.0f  (%d conns x %d events; %d failed)\n",
              "wire events/sec", wire_events_per_sec, conns,
              wire_events_per_conn, wire_failed);

  JsonWriter json;
  json.Str("bench", "fleet");
  json.Int("homes", homes);
  json.Int("shards", shards);
  json.Int("producers", producers);
  json.Num("register_per_sec", register_per_sec, 0);
  json.Int("shard_homes_min", static_cast<long long>(shard_min));
  json.Int("shard_homes_max", static_cast<long long>(shard_max));
  json.Num("bus_events_per_sec", bus_events_per_sec, 0);
  json.Int("bus_queue_hw_max", static_cast<long long>(queue_hw_max));
  json.Num("bus_queue_hw_avg", queue_hw_sum / shards, 1);
  json.Int("bus_rejected", static_cast<long long>(bus_rejected));
  json.Int("bus_apply_errors", static_cast<long long>(bus_apply_errors));
  json.Num("inspect_p50_ms", inspect_p50);
  json.Num("inspect_p99_ms", inspect_p99);
  json.Num("inspect_all_s", inspect_all_s, 2);
  json.Num("inspect_homes_per_sec", inspect_homes_per_sec, 0);
  json.Bool("identity_sample_ok", identity_ok);
  json.Num("wire_ping_p50_us", ping_p50, 1);
  json.Num("wire_ping_p99_us", ping_p99, 1);
  json.Num("wire_events_per_sec", wire_events_per_sec, 0);
  json.Int("wire_failed", wire_failed);
  json.Int("wire_apply_errors", static_cast<long long>(wire_apply_errors));
  std::printf("BENCH_JSON %s\n", json.Render().c_str());

  if (!identity_ok) return 1;
  if (bus_rejected != 0 || bus_apply_errors != 0) {
    std::fprintf(stderr, "bus lost or failed messages under kBlock\n");
    return 1;
  }
  if (wire_failed != 0 || wire_apply_errors != 0) {
    std::fprintf(stderr, "wire leg failed requests\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace glint::bench

int main(int argc, char** argv) {
  bool smoke = false;
  int homes = 0;
  int shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--homes") == 0 && i + 1 < argc) {
      homes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--smoke] [--homes N] [--shards K]\n");
      return 2;
    }
  }
  if (homes <= 0) homes = smoke ? 400 : 10000;
  if (shards <= 0) shards = smoke ? 4 : 8;
  return glint::bench::Run(homes, shards, smoke);
}
