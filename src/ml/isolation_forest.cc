#include "ml/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace glint::ml {
namespace {

// Average unsuccessful-search path length in a BST of n nodes (c(n) in the
// isolation-forest paper).
double AvgPath(double n) {
  if (n <= 1) return 0;
  const double h = std::log(n - 1) + 0.5772156649015329;
  return 2 * h - 2 * (n - 1) / n;
}

}  // namespace

int IsolationForest::BuildTree(Tree* tree,
                               std::vector<const FloatVec*> points, int depth,
                               int max_depth, Rng* rng) {
  Node node;
  node.size = static_cast<int>(points.size());
  if (depth >= max_depth || points.size() <= 1) {
    tree->nodes.push_back(node);
    return static_cast<int>(tree->nodes.size() - 1);
  }
  const size_t dim = points[0]->size();
  // Pick a random feature with spread.
  int feature = -1;
  float lo = 0, hi = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const size_t f = rng->Below(dim);
    float mn = (*points[0])[f], mx = mn;
    for (const auto* p : points) {
      mn = std::min(mn, (*p)[f]);
      mx = std::max(mx, (*p)[f]);
    }
    if (mx > mn) {
      feature = static_cast<int>(f);
      lo = mn;
      hi = mx;
      break;
    }
  }
  if (feature < 0) {
    tree->nodes.push_back(node);
    return static_cast<int>(tree->nodes.size() - 1);
  }
  node.feature = feature;
  node.threshold = static_cast<float>(rng->Uniform(lo, hi));

  std::vector<const FloatVec*> left, right;
  for (const auto* p : points) {
    ((*p)[static_cast<size_t>(feature)] < node.threshold ? left : right)
        .push_back(p);
  }
  if (left.empty() || right.empty()) {
    node.feature = -1;
    tree->nodes.push_back(node);
    return static_cast<int>(tree->nodes.size() - 1);
  }
  tree->nodes.push_back(node);
  const int self = static_cast<int>(tree->nodes.size() - 1);
  const int l = BuildTree(tree, std::move(left), depth + 1, max_depth, rng);
  const int r = BuildTree(tree, std::move(right), depth + 1, max_depth, rng);
  tree->nodes[static_cast<size_t>(self)].left = l;
  tree->nodes[static_cast<size_t>(self)].right = r;
  return self;
}

void IsolationForest::Fit(const std::vector<FloatVec>& xs) {
  GLINT_CHECK(!xs.empty());
  trees_.clear();
  Rng rng(params_.seed);
  const size_t sub =
      std::min<size_t>(static_cast<size_t>(params_.subsample), xs.size());
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max<size_t>(2, sub))));
  avg_path_norm_ = AvgPath(static_cast<double>(sub));

  for (int t = 0; t < params_.num_trees; ++t) {
    std::vector<const FloatVec*> sample;
    sample.reserve(sub);
    for (size_t i = 0; i < sub; ++i) sample.push_back(&xs[rng.Below(xs.size())]);
    Tree tree;
    BuildTree(&tree, std::move(sample), 0, max_depth, &rng);
    trees_.push_back(std::move(tree));
  }
}

double IsolationForest::PathLength(const Tree& tree, const FloatVec& x) const {
  size_t cur = 0;
  double depth = 0;
  while (tree.nodes[cur].feature >= 0) {
    const Node& n = tree.nodes[cur];
    cur = static_cast<size_t>(
        x[static_cast<size_t>(n.feature)] < n.threshold ? n.left : n.right);
    depth += 1;
  }
  return depth + AvgPath(static_cast<double>(tree.nodes[cur].size));
}

double IsolationForest::Score(const FloatVec& x) const {
  GLINT_CHECK(!trees_.empty());
  double sum = 0;
  for (const auto& tree : trees_) sum += PathLength(tree, x);
  const double avg = sum / static_cast<double>(trees_.size());
  return std::pow(2.0, -avg / std::max(1e-9, avg_path_norm_));
}

int IsolationForest::Predict(const FloatVec& x) const {
  return Score(x) >= params_.threshold ? -1 : +1;
}

void IsolationForest::FitThreshold(const std::vector<FloatVec>& xs,
                                   double contamination) {
  std::vector<double> scores;
  scores.reserve(xs.size());
  for (const auto& x : xs) scores.push_back(Score(x));
  std::sort(scores.begin(), scores.end());
  const size_t cut = static_cast<size_t>(
      (1.0 - contamination) * static_cast<double>(scores.size()));
  params_.threshold = scores[std::min(cut, scores.size() - 1)];
}

}  // namespace glint::ml
