#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace glint::obs {

/// Shards per instrument: hot-path increments from different threads land on
/// different cache lines, so a Counter::Add is one relaxed fetch_add with no
/// sharing. Must be a power of two (shard pick is a mask).
constexpr uint32_t kShards = 8;

/// Stable per-thread shard index in [0, kShards).
uint32_t ShardIndex();

/// True unless observability is switched off — by the GLINT_OBS=off (or =0)
/// environment variable, by SetEnabled(false), or at compile time with
/// -DGLINT_OBS_DISABLED (which reduces every instrument call site to dead
/// code). Instruments check this internally, so a disabled build pays one
/// predictable branch per call and never reads the clock.
#ifdef GLINT_OBS_DISABLED
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
bool Enabled();
/// Runtime override (benches toggle it to measure their own overhead).
void SetEnabled(bool on);
#endif

/// Monotonic event counter (cache hits, events ingested, ...). Wait-free:
/// Add is a single relaxed fetch_add on the calling thread's shard.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum over shards. Exact once concurrent writers have quiesced; a
  /// point-in-time read during writes may miss in-flight increments but
  /// never double-counts.
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (queue depth, pool size). Also keeps
/// the high-water mark seen since the last Reset.
class Gauge {
 public:
  void Set(int64_t v);
  /// Delta update (e.g. +1 on enqueue, -1 on dequeue); maintains the peak.
  void Add(int64_t d);
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  int64_t Peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  void RaisePeak(int64_t candidate);
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> peak_{0};
};

/// Fixed-bucket histogram. Bounds are inclusive upper edges of each bucket
/// (bucket i holds x <= bounds[i], first unmatched); one implicit overflow
/// bucket catches the rest. Storage is sharded like Counter, so Observe is
/// wait-free: a bucket search over ~20 doubles plus two relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t Count() const;
  double Sum() const;
  /// Merged per-bucket counts (bounds_.size() + 1 entries, last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  /// Quantile estimate: linear interpolation inside the covering bucket.
  /// Error is bounded by that bucket's width (see Snapshot::Hist::Quantile).
  double Quantile(double q) const;
  void Reset();

  /// Default latency bucket ladder (milliseconds): 1us .. 10s, roughly
  /// 1-2.5-5 per decade. Wide enough for the no-change Inspect fast path
  /// (~10us) and a cold offline build (seconds) alike.
  static std::vector<double> LatencyBucketsMs();

 private:
  struct Shard {
    explicit Shard(size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<uint64_t>> counts;
    alignas(64) std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Process-wide instrument registry. Names follow the
/// `glint.<subsystem>.<name>` convention (DESIGN.md §9); histogram names end
/// in a unit suffix (`_ms`). Registration is idempotent per (name, kind):
/// repeated lookups return the same instrument. Registering an existing name
/// as a *different* kind (or a histogram with conflicting bounds) is a
/// programmer error and aborts via GLINT_CHECK — two subsystems silently
/// sharing one name would corrupt both series.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every `glint.*` instrument lives in.
  /// Intentionally leaked so instruments outlive static destructors.
  static Registry& Global();

  /// Returned pointers are stable for the registry's lifetime; call sites
  /// cache them in function-local statics so the hot path skips the map.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Empty `bounds` means Histogram::LatencyBucketsMs().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Immutable merged view of every instrument, safe to take while writers
  /// are running (counter semantics as in Counter::Value).
  struct Snapshot {
    struct Hist {
      uint64_t count = 0;
      double sum = 0;
      std::vector<double> bounds;
      std::vector<uint64_t> counts;  ///< bounds.size() + 1, last = overflow
      double Mean() const { return count ? sum / double(count) : 0.0; }
      double Quantile(double q) const;
    };
    std::map<std::string, uint64_t> counters;
    /// gauge -> {value, peak}.
    std::map<std::string, std::pair<int64_t, int64_t>> gauges;
    std::map<std::string, Hist> histograms;

    /// Multi-line human-readable rendering (the `--stats` periodic print).
    std::string RenderText() const;
    /// Single-line JSON object (no prefix): {"counters":{...},
    /// "gauges":{...},"histograms":{"name":{"count":..,"sum_ms":..,
    /// "mean":..,"p50":..,"p95":..,"p99":..}}}. Keys are sorted (std::map),
    /// so the line is byte-stable for a given set of values.
    std::string RenderJson() const;
  };
  Snapshot TakeSnapshot() const;

  /// Zeroes every instrument (names and registrations survive). For benches
  /// and tests; not meant to race live writers.
  void ResetAll();

  size_t num_instruments() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace glint::obs
