#include "rules/device.h"

namespace glint::rules {

const char* PlatformName(Platform p) {
  switch (p) {
    case Platform::kIFTTT: return "IFTTT";
    case Platform::kSmartThings: return "SmartThings";
    case Platform::kAlexa: return "Alexa";
    case Platform::kGoogleAssistant: return "GoogleAssistant";
    case Platform::kHomeAssistant: return "HomeAssistant";
  }
  return "?";
}

const char* DeviceWord(DeviceType d) {
  switch (d) {
    case DeviceType::kLight: return "light";
    case DeviceType::kLock: return "lock";
    case DeviceType::kWindow: return "window";
    case DeviceType::kDoor: return "door";
    case DeviceType::kGarage: return "garage";
    case DeviceType::kBlind: return "blind";
    case DeviceType::kThermostat: return "thermostat";
    case DeviceType::kAc: return "ac";
    case DeviceType::kHeater: return "heater";
    case DeviceType::kOven: return "oven";
    case DeviceType::kHumidifier: return "humidifier";
    case DeviceType::kDehumidifier: return "dehumidifier";
    case DeviceType::kFan: return "fan";
    case DeviceType::kTv: return "tv";
    case DeviceType::kSpeaker: return "speaker";
    case DeviceType::kVacuum: return "vacuum";
    case DeviceType::kSprinkler: return "sprinkler";
    case DeviceType::kCoffeeMaker: return "coffee_maker";
    case DeviceType::kKettle: return "kettle";
    case DeviceType::kCamera: return "camera";
    case DeviceType::kMotionSensor: return "motion_sensor";
    case DeviceType::kContactSensor: return "contact_sensor";
    case DeviceType::kTemperatureSensor: return "temperature_sensor";
    case DeviceType::kHumiditySensor: return "humidity_sensor";
    case DeviceType::kSmokeAlarm: return "smoke_alarm";
    case DeviceType::kPresenceSensor: return "presence_sensor";
    case DeviceType::kLeakSensor: return "leak_sensor";
    case DeviceType::kButton: return "button";
    case DeviceType::kPlug: return "plug";
    case DeviceType::kSecuritySystem: return "alarm";
    case DeviceType::kPhone: return "notification";
    case DeviceType::kEmailService: return "email";
    case DeviceType::kWeatherService: return "weather";
    case DeviceType::kCalendar: return "calendar";
    case DeviceType::kSocialMedia: return "message";
    case DeviceType::kSpreadsheet: return "spreadsheet";
  }
  return "device";
}

const char* ChannelName(Channel c) {
  switch (c) {
    case Channel::kNone: return "none";
    case Channel::kTemperature: return "temperature";
    case Channel::kHumidity: return "humidity";
    case Channel::kSmoke: return "smoke";
    case Channel::kMotion: return "motion";
    case Channel::kIlluminance: return "illuminance";
    case Channel::kSound: return "sound";
    case Channel::kContact: return "contact";
    case Channel::kLockState: return "lock_state";
    case Channel::kPresence: return "presence";
    case Channel::kWater: return "water";
    case Channel::kPower: return "power";
    case Channel::kSecurity: return "security";
    case Channel::kTime: return "time";
    case Channel::kOccupancy: return "occupancy";
    case Channel::kDigital: return "digital";
  }
  return "?";
}

const char* CommandWord(Command c) {
  switch (c) {
    case Command::kOn: return "turn_on";
    case Command::kOff: return "turn_off";
    case Command::kOpen: return "open";
    case Command::kClose: return "close";
    case Command::kLock: return "lock";
    case Command::kUnlock: return "unlock";
    case Command::kDim: return "dim";
    case Command::kBrighten: return "brighten";
    case Command::kPlay: return "play";
    case Command::kStopPlay: return "stop";
    case Command::kNotify: return "notify";
    case Command::kSnapshot: return "capture";
    case Command::kArm: return "arm";
    case Command::kDisarm: return "disarm";
    case Command::kStartClean: return "clean";
    case Command::kSetLevel: return "set";
  }
  return "?";
}

bool CommandsOppose(Command a, Command b) {
  auto pair = [&](Command x, Command y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  return pair(Command::kOn, Command::kOff) ||
         pair(Command::kOpen, Command::kClose) ||
         pair(Command::kLock, Command::kUnlock) ||
         pair(Command::kDim, Command::kBrighten) ||
         pair(Command::kPlay, Command::kStopPlay) ||
         pair(Command::kArm, Command::kDisarm);
}

std::vector<EnvEffect> EffectsOf(DeviceType d, Command cmd) {
  using C = Channel;
  const bool on = (cmd == Command::kOn || cmd == Command::kOpen ||
                   cmd == Command::kPlay || cmd == Command::kBrighten ||
                   cmd == Command::kStartClean || cmd == Command::kSetLevel);
  switch (d) {
    case DeviceType::kHeater:
      if (cmd == Command::kOn) return {{C::kTemperature, +1, true}};
      if (cmd == Command::kOff) return {{C::kTemperature, -1, true}};
      return {};
    case DeviceType::kAc:
      // Air conditioning both cools and dries the air (the humidity side
      // effect drives the paper's "action ablation" example).
      if (cmd == Command::kOn)
        return {{C::kTemperature, -1, true}, {C::kHumidity, -1, true}};
      if (cmd == Command::kOff) return {{C::kTemperature, +1, true}};
      return {};
    case DeviceType::kOven:
      if (cmd == Command::kOn) return {{C::kTemperature, +1, true}};
      return {};
    case DeviceType::kThermostat:
      if (cmd == Command::kSetLevel) return {{C::kTemperature, +1, true}};
      return {};
    case DeviceType::kHumidifier:
      if (cmd == Command::kOn) return {{C::kHumidity, +1, true}};
      if (cmd == Command::kOff) return {{C::kHumidity, -1, true}};
      return {};
    case DeviceType::kDehumidifier:
      if (cmd == Command::kOn) return {{C::kHumidity, -1, true}};
      return {};
    case DeviceType::kFan:
      if (cmd == Command::kOn)
        return {{C::kTemperature, -1, true}, {C::kHumidity, -1, true}};
      return {};
    case DeviceType::kWindow:
      if (cmd == Command::kOpen)
        return {{C::kTemperature, -1, true}, {C::kHumidity, -1, true}};
      return {};
    case DeviceType::kLight:
      if (cmd == Command::kOn || cmd == Command::kBrighten)
        return {{C::kIlluminance, +1, false}};
      if (cmd == Command::kOff || cmd == Command::kDim)
        return {{C::kIlluminance, -1, false}};
      return {};
    case DeviceType::kBlind:
      if (cmd == Command::kOpen) return {{C::kIlluminance, +1, false}};
      if (cmd == Command::kClose) return {{C::kIlluminance, -1, false}};
      return {};
    case DeviceType::kTv:
    case DeviceType::kSpeaker:
      if (on) return {{C::kSound, +1, false}};
      return {{C::kSound, -1, false}};
    case DeviceType::kVacuum:
      if (cmd == Command::kOn || cmd == Command::kStartClean)
        return {{C::kMotion, +1, false}, {C::kSound, +1, false}};
      return {};
    case DeviceType::kSprinkler:
      if (on) return {{C::kWater, +1, false}, {C::kHumidity, +1, true}};
      return {};
    case DeviceType::kCoffeeMaker:
    case DeviceType::kKettle:
      if (cmd == Command::kOn) return {{C::kPower, +1, false}};
      return {};
    case DeviceType::kPlug:
      if (cmd == Command::kOn) return {{C::kPower, +1, false}};
      if (cmd == Command::kOff) return {{C::kPower, -1, false}};
      return {};
    default:
      return {};
  }
}

Channel StateChannelOf(DeviceType d) {
  switch (d) {
    case DeviceType::kLight:
    case DeviceType::kBlind: return Channel::kIlluminance;
    case DeviceType::kWindow:
    case DeviceType::kDoor:
    case DeviceType::kGarage: return Channel::kContact;
    case DeviceType::kLock: return Channel::kLockState;
    case DeviceType::kTv:
    case DeviceType::kSpeaker: return Channel::kSound;
    case DeviceType::kSecuritySystem: return Channel::kSecurity;
    case DeviceType::kPhone: return Channel::kSecurity;
    case DeviceType::kCamera: return Channel::kSecurity;
    case DeviceType::kVacuum: return Channel::kMotion;
    case DeviceType::kSprinkler: return Channel::kWater;
    case DeviceType::kPlug:
    case DeviceType::kCoffeeMaker:
    case DeviceType::kKettle: return Channel::kPower;
    case DeviceType::kAc:
    case DeviceType::kHeater:
    case DeviceType::kOven:
    case DeviceType::kThermostat: return Channel::kTemperature;
    case DeviceType::kHumidifier:
    case DeviceType::kDehumidifier: return Channel::kHumidity;
    case DeviceType::kFan: return Channel::kPower;
    case DeviceType::kEmailService:
    case DeviceType::kWeatherService:
    case DeviceType::kCalendar:
    case DeviceType::kSocialMedia:
    case DeviceType::kSpreadsheet: return Channel::kDigital;
    default: return SensedChannelOf(d);
  }
}

Channel SensedChannelOf(DeviceType d) {
  switch (d) {
    case DeviceType::kMotionSensor: return Channel::kMotion;
    case DeviceType::kContactSensor: return Channel::kContact;
    case DeviceType::kTemperatureSensor: return Channel::kTemperature;
    case DeviceType::kHumiditySensor: return Channel::kHumidity;
    case DeviceType::kSmokeAlarm: return Channel::kSmoke;
    case DeviceType::kPresenceSensor: return Channel::kPresence;
    case DeviceType::kLeakSensor: return Channel::kWater;
    case DeviceType::kButton: return Channel::kPower;
    default: return Channel::kNone;
  }
}

bool IsSensor(DeviceType d) {
  return SensedChannelOf(d) != Channel::kNone;
}

}  // namespace glint::rules
