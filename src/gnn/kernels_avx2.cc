// AVX2 kernel backend. Compiled as its own translation unit with -mavx2 and
// -ffp-contract=off (see src/gnn/CMakeLists.txt); nothing here executes
// unless dispatch confirmed AVX2 via __builtin_cpu_supports.
//
// Bit-identity with the scalar backend (see kernels.h):
//   - reductions keep the same 8 float / 4 double striped lanes and reduce
//     with the same fixed tree;
//   - mul and add stay separate instructions (no vfmadd): an FMA skips the
//     intermediate rounding and would diverge from the scalar mul+add in
//     the last ulp;
//   - tails run the scalar code into the striped lanes, never a
//     zero-padded vector step (padding would turn `x + (-0.f * 0.f)`-style
//     tails into signed-zero hazards);
//   - loads are unaligned-tolerant (loadu): Matrix base storage is 64-byte
//     aligned, but row offsets within a matrix are not padded. On every
//     AVX2-era core loadu on an aligned address costs the same as an
//     aligned load.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "gnn/kernels.h"

namespace glint::gnn::kernels {

namespace {

float Avx2Dot(const float* a, const float* b, int n) {
  __m256 acc = _mm256_setzero_ps();
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
  }
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  for (int i = n8; i < n; ++i) lane[i & 7] += a[i] * b[i];
  return detail::ReduceTree8(lane);
}

void Avx2Axpy(float* y, float alpha, const float* x, int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    const __m256 vx = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (int i = n8; i < n; ++i) y[i] += alpha * x[i];
}

void Avx2AddInto(float* y, const float* x, int n) {
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    const __m256 vx = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, vx));
  }
  for (int i = n8; i < n; ++i) y[i] += x[i];
}

void Avx2MulAddInto(float* y, const float* a, const float* b, int n) {
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vb)));
  }
  for (int i = n8; i < n; ++i) y[i] += a[i] * b[i];
}

void Avx2MulInto(float* out, const float* a, const float* b, int n) {
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    _mm256_storeu_ps(out + i, _mm256_mul_ps(va, vb));
  }
  for (int i = n8; i < n; ++i) out[i] = a[i] * b[i];
}

void Avx2ScaleInto(float* out, float s, const float* x, int n) {
  const __m256 vs = _mm256_set1_ps(s);
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(vs, _mm256_loadu_ps(x + i)));
  }
  for (int i = n8; i < n; ++i) out[i] = s * x[i];
}

void Avx2ReluInto(float* out, const float* x, int n) {
  // x > 0 ? x : +0.f via compare-and-mask: _mm256_max_ps(x, 0) would keep
  // -0.f (max(-0,+0) may return either operand), diverging from the scalar
  // ternary which returns +0.f for every non-positive input.
  const __m256 zero = _mm256_setzero_ps();
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 mask = _mm256_cmp_ps(vx, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(out + i, _mm256_and_ps(vx, mask));
  }
  for (int i = n8; i < n; ++i) out[i] = x[i] > 0 ? x[i] : 0.f;
}

double Avx2SumDouble(const double* x, int n) {
  __m256d acc = _mm256_setzero_pd();
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (int i = n4; i < n; ++i) lane[i & 3] += x[i];
  return detail::ReduceTree4(lane);
}

void Avx2DivDouble(double* x, double denom, int n) {
  const __m256d vd = _mm256_set1_pd(denom);
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), vd));
  }
  for (int i = n4; i < n; ++i) x[i] /= denom;
}

}  // namespace

const KernelBackend kAvx2Backend = {
    "avx2",
    static_cast<int>(Backend::kAvx2),
    Avx2Dot,
    Avx2Axpy,
    Avx2AddInto,
    Avx2MulAddInto,
    Avx2MulInto,
    Avx2ScaleInto,
    Avx2ReluInto,
    Avx2SumDouble,
    Avx2DivDouble,
};

}  // namespace glint::gnn::kernels

#endif  // x86_64
