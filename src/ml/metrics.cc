#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace glint::ml {
namespace {

struct ClassCounts {
  double tp = 0, fp = 0, fn = 0, support = 0;
};

std::vector<ClassCounts> CountPerClass(const std::vector<int>& y_true,
                                       const std::vector<int>& y_pred,
                                       int num_classes) {
  GLINT_CHECK(y_true.size() == y_pred.size());
  std::vector<ClassCounts> counts(static_cast<size_t>(num_classes));
  for (size_t i = 0; i < y_true.size(); ++i) {
    const int t = y_true[i];
    const int p = y_pred[i];
    counts[static_cast<size_t>(t)].support += 1;
    if (t == p) {
      counts[static_cast<size_t>(t)].tp += 1;
    } else {
      counts[static_cast<size_t>(p)].fp += 1;
      counts[static_cast<size_t>(t)].fn += 1;
    }
  }
  return counts;
}

double SafeDiv(double a, double b) { return b > 0 ? a / b : 0; }

}  // namespace

Metrics BinaryMetrics(const std::vector<int>& y_true,
                      const std::vector<int>& y_pred) {
  auto counts = CountPerClass(y_true, y_pred, 2);
  const auto& c = counts[1];
  Metrics m;
  double correct = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) correct += 1;
  }
  m.accuracy = SafeDiv(correct, static_cast<double>(y_true.size()));
  m.precision = SafeDiv(c.tp, c.tp + c.fp);
  m.recall = SafeDiv(c.tp, c.tp + c.fn);
  m.f1 = SafeDiv(2 * m.precision * m.recall, m.precision + m.recall);
  return m;
}

Metrics WeightedMetrics(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred, int num_classes) {
  auto counts = CountPerClass(y_true, y_pred, num_classes);
  Metrics m;
  double correct = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) correct += 1;
  }
  const double n = static_cast<double>(y_true.size());
  m.accuracy = SafeDiv(correct, n);
  for (const auto& c : counts) {
    const double w = SafeDiv(c.support, n);
    const double prec = SafeDiv(c.tp, c.tp + c.fp);
    const double rec = SafeDiv(c.tp, c.tp + c.fn);
    const double f1 = SafeDiv(2 * prec * rec, prec + rec);
    m.precision += w * prec;
    m.recall += w * rec;
    m.f1 += w * f1;
  }
  return m;
}

Stats Summarize(const std::vector<double>& values) {
  Stats s;
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  for (double v : values) s.mean += v;
  s.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

}  // namespace glint::ml
