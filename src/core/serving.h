#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/journal.h"
#include "core/session.h"
#include "util/status.h"

namespace glint::core {

/// Stable, user-visible home address. The fleet layer routes by HomeId
/// (consistent hashing — see fleet/sharding.h); the dense `int h` index is
/// a per-engine (per-shard) detail: it names a slot inside one engine and
/// is not stable across engines or shard counts. Ids are journaled with
/// the AddHome record and written into snapshots, so they survive
/// recovery.
using HomeId = std::string;

/// Multiplexes many DeploymentSessions (homes) over one shared
/// TrainedDetector — the "one detector, N homes" serving shape of the
/// ROADMAP's production target. Event ingestion is addressed per home;
/// InspectAll fans the per-home inspections out over the global ThreadPool.
///
/// Determinism: sessions are independent (each mutates only its own state;
/// the detector's memo caches store pure-function results), so InspectAll
/// returns bit-identical warnings for any thread count, in home order.
///
/// Durability (optional): Recover(dir) attaches a write-ahead log. Every
/// state-changing operation routed through the engine (TryAddHome /
/// TryAddRule / TryRemoveRule / TryOnEvent and their checked twins) is
/// appended to the WAL *before* it is applied; Snapshot() serializes every
/// session and truncates the log. After a crash, a fresh engine calling
/// Recover(dir) replays snapshot + tail and reaches a state whose
/// InspectAll output is bit-identical to the uninterrupted run's (the
/// recovery extension of the session-vs-cold determinism proof). Direct
/// home(h) mutation would bypass the WAL, so the mutable accessor refuses
/// (aborts) on durable engines — durable deployments mutate through the
/// Try* API and read through home_view().
class ServingEngine {
 public:
  struct Config {
    DeploymentSession::Config session;
    /// Automatic snapshot cadence for durable engines: snapshot after this
    /// many journaled ops (0 = manual Snapshot() only).
    uint64_t snapshot_every_ops = 0;
    /// fsync the WAL on every append (see Journal::Config).
    bool sync_each_append = false;
  };

  explicit ServingEngine(const TrainedDetector* detector);
  ServingEngine(const TrainedDetector* detector, Config config);

  // ---- Durability ------------------------------------------------------

  /// Attaches the state directory `dir` (created if missing): restores the
  /// snapshot + WAL tail into this (required empty) engine, truncates any
  /// torn tail, and journals every subsequent engine-routed mutation. On a
  /// fresh directory this is simply "enable durability".
  Status Recover(const std::string& dir);

  /// Serializes every session and truncates the WAL. Durable engines only.
  Status Snapshot();

  bool durable() const { return journal_ != nullptr; }
  /// Sequence number of the last journaled (and applied) operation.
  uint64_t journal_seq() const { return seq_; }
  /// What the last Recover() found (zero-initialized when never called).
  const Journal::RecoveryInfo& recovery_info() const {
    return recovery_info_;
  }

  // ---- Deployment mutations -------------------------------------------

  /// Registers a home under a caller-chosen stable id; returns the home's
  /// dense index inside this engine. InvalidArgument on an empty or
  /// duplicate id; journaled when durable (IOError if the WAL append
  /// fails — the home is then not registered).
  Result<int> TryAddHome(const HomeId& id,
                         const std::vector<rules::Rule>& deployed);

  /// Id-less variant: auto-assigns the id "#<index>" (single-engine tests
  /// and demos; fleet callers always address homes by explicit id).
  Result<int> TryAddHome(const std::vector<rules::Rule>& deployed);

  /// Checked twin of TryAddHome: aborts on journal failure (for callers
  /// without an error path; non-durable engines cannot fail).
  int AddHome(const std::vector<rules::Rule>& deployed);

  /// Deploys one rule into home `h` (journaled). InvalidArgument on a bad
  /// index, IOError on a WAL failure; on error nothing is applied.
  Status TryAddRule(int h, const rules::Rule& rule);

  /// Retires rule `rule_id` from home `h` (journaled). `*removed` (when
  /// non-null) reports whether the rule existed. A no-op removal is not
  /// journaled.
  Status TryRemoveRule(int h, int rule_id, bool* removed = nullptr);

  /// Routes one event to a home's session (journaled). Aborts on an
  /// invalid index or journal failure.
  void OnEvent(int h, const graph::Event& e);

  /// Validating variant: InvalidArgument instead of aborting when `h` does
  /// not name a registered home, IOError on a WAL failure.
  Status TryOnEvent(int h, const graph::Event& e);

  // ---- Id-addressed twins (the fleet/network-facing surface) ----------

  /// NotFound when `id` names no home in this engine; otherwise identical
  /// to the index-addressed variants (including journaling).
  Status TryAddRule(const HomeId& id, const rules::Rule& rule);
  Status TryRemoveRule(const HomeId& id, int rule_id,
                       bool* removed = nullptr);
  Status TryOnEvent(const HomeId& id, const graph::Event& e);
  Result<ThreatWarning> TryInspect(const HomeId& id, double now_hours);

  // ---- Lookups & inspection -------------------------------------------

  size_t num_homes() const { return sessions_.size(); }
  bool has_home(int h) const {
    return h >= 0 && h < static_cast<int>(sessions_.size());
  }

  /// Dense index of `id` in this engine, -1 when unknown.
  int ResolveHome(const HomeId& id) const;
  bool has_home(const HomeId& id) const { return ResolveHome(id) >= 0; }
  /// Stable id of slot `h` (checked).
  const HomeId& home_id(int h) const;
  /// Every home id, in registration (= dense index) order.
  const std::vector<HomeId>& home_ids() const { return ids_; }

  /// Checked *mutable* accessor: an out-of-range home index is a
  /// programmer error and aborts loudly (GLINT_CHECK) — and so is calling
  /// this on a durable engine at all: direct session mutation would bypass
  /// the WAL, so durable engines only hand out home_view() and route every
  /// mutation through the journaled Try* API. Callers routing *untrusted*
  /// indices (CLI input, network frontends) use FindHome / TryOnEvent /
  /// TryInspect instead.
  DeploymentSession& home(int h);
  const DeploymentSession& home(int h) const;

  /// Read-only accessor for durable engines' read paths (stats, rule
  /// listings): never a WAL-bypass hazard, so no durability check.
  const DeploymentSession& home_view(int h) const;

  /// Status-style lookup: nullptr when `h` is out of range.
  DeploymentSession* FindHome(int h);
  const DeploymentSession* FindHome(int h) const;

  /// Inspects every home at `now` in parallel; result i belongs to home i.
  std::vector<ThreatWarning> InspectAll(double now_hours);

  /// Batched InspectAll: the per-home cache/materialize/tensorize stage
  /// still fans out over the ThreadPool, but the verdict-cache misses are
  /// then packed into block-diagonal super-graphs of up to `max_batch`
  /// member graphs and analyzed with one ITGNN forward per super-graph,
  /// amortizing tape and dispatch overhead across the fleet. Warnings are
  /// bit-identical to InspectAll for every batch size, thread count and
  /// kernel backend (the segment-op contract in gnn/tensor.h), and the
  /// per-home verdict caches end up in the same state.
  std::vector<ThreatWarning> InspectAllBatched(double now_hours,
                                               int max_batch = 256);

  /// Validating single-home inspection: InvalidArgument when `h` is out of
  /// range or `now` precedes the home's event watermark — nothing an
  /// untrusted caller passes here can abort the process.
  Result<ThreatWarning> TryInspect(int h, double now_hours);

  /// Total rules deployed across all homes.
  size_t total_rules() const;

  /// Sum of every home's per-session counters (cache hit/miss, inspects,
  /// events) — the fleet-level half of a `--stats` report; pair it with
  /// obs::Registry::Global().TakeSnapshot() for stage latencies.
  DeploymentSession::CacheStats AggregateStats() const;

 private:
  /// WAL record operation tags (payload byte 0).
  enum Op : uint8_t {
    kOpAddHome = 1,
    kOpAddRule = 2,
    kOpRemoveRule = 3,
    kOpEvent = 4,
  };

  std::unique_ptr<DeploymentSession> MakeSession() const;
  /// Registers `id` for the next dense slot (ids_ + index_ bookkeeping).
  void RegisterHomeId(HomeId id);
  /// NotFound (with the id in the message) when `id` is unknown.
  Result<int> RequireHome(const HomeId& id) const;
  /// Appends `payload` as the next journaled op (no-op when not durable);
  /// on success bumps seq_. The caller applies the op only on OK.
  Status JournalAppend(const std::vector<char>& payload);
  /// Decodes and applies one WAL record during recovery.
  Status ApplyRecord(const std::vector<char>& payload);
  /// Serializes every session into a snapshot payload.
  std::vector<char> EncodeSnapshot() const;
  Status ApplySnapshot(const std::vector<char>& payload);
  Status MaybeAutoSnapshot();

  const TrainedDetector* detector_;
  Config config_;
  /// unique_ptr for stable addresses across AddHome growth.
  std::vector<std::unique_ptr<DeploymentSession>> sessions_;
  /// ids_[h] is the stable id of sessions_[h]; index_ is the reverse map.
  std::vector<HomeId> ids_;
  std::unordered_map<HomeId, int> index_;
  std::unique_ptr<Journal> journal_;
  uint64_t seq_ = 0;
  uint64_t ops_since_snapshot_ = 0;
  Journal::RecoveryInfo recovery_info_;
};

}  // namespace glint::core
