#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/event_log.h"
#include "util/rng.h"

namespace glint::testbed {

/// HAWatcher-style semantics-aware anomaly detector (Fu et al., USENIX
/// Security'21) — the strongest Fig. 11 baseline. It mines *binary
/// correlations* "event A is followed by event B within δ" from benign
/// training logs, then reports anomalies at runtime when a correlation's
/// antecedent occurs without its consequent (or a consequent appears with
/// no cause). Long-horizon and user-driven interactions are out of its
/// model — the paper's stated weakness that Glint addresses.
class HaWatcher {
 public:
  struct Params {
    double window_hours = 0.2;       ///< δ for correlation matching
    double min_confidence = 0.9;     ///< P(B follows A) to accept
    int min_support = 5;             ///< occurrences of A required
    /// Anomalies required before a window is flagged (single stragglers —
    /// e.g. a consequent delayed past δ — are tolerated).
    int flag_threshold = 2;
  };

  HaWatcher() : HaWatcher(Params()) {}
  explicit HaWatcher(Params p) : params_(p) {}

  /// Mines correlations from a benign training log (the "21 days of
  /// training" phase; ours is the simulated benign week).
  void Train(const graph::EventLog& benign);

  /// Number of mined correlations.
  size_t num_correlations() const { return correlations_.size(); }

  /// Anomaly count in a test window: violated correlations plus
  /// uncaused actuator events.
  int CountAnomalies(const std::vector<graph::Event>& window) const;

  /// Binary verdict for a test window.
  bool Flag(const std::vector<graph::Event>& window) const {
    return CountAnomalies(window) >= params_.flag_threshold;
  }

 private:
  /// Event signature "device:state".
  static std::string Sig(const graph::Event& e);

  struct Correlation {
    std::string antecedent;
    std::string consequent;
    double confidence = 0;
  };

  Params params_;
  std::vector<Correlation> correlations_;
  /// Signatures seen in benign data (events outside this set are suspect).
  std::map<std::string, int> known_;
};

}  // namespace glint::testbed
