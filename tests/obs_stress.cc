// Concurrency stress for glint::obs, built with -fsanitize=thread by the
// TSAN stage of tools/check.sh (minimal linkage: glint_obs only). Writer
// threads hammer one shared counter/gauge/histogram and the trace ring
// while a reader repeatedly takes snapshots and merges traces; afterwards
// the merged totals must equal the work submitted exactly.
//
// Exit code 0 on success; any TSAN report fails the invoking script.

#include <cstdio>
#include <thread>
#include <vector>

#include "obs/obs.h"

int main() {
  using namespace glint::obs;  // NOLINT
  auto& reg = Registry::Global();
  Counter* counter = reg.GetCounter("stress.counter");
  Gauge* gauge = reg.GetGauge("stress.gauge");
  Histogram* hist = reg.GetHistogram("stress.hist_ms");

  constexpr int kWriters = 8;
  constexpr int kIters = 30000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < kIters; ++i) {
        counter->Add();
        gauge->Add(1);
        hist->Observe(double((i + t) % 100) * 0.1);
        gauge->Add(-1);
        if (i % 64 == 0) {
          Span span("stress.span", hist);
        }
      }
    });
  }
  // Concurrent readers: snapshots and trace merges must be safe (and
  // TSAN-clean) while writers are live.
  std::thread reader([&reg]() {
    for (int i = 0; i < 200; ++i) {
      (void)reg.TakeSnapshot().RenderJson();
      (void)CollectTrace();
    }
  });
  for (auto& w : writers) w.join();
  reader.join();

  const uint64_t want = uint64_t(kWriters) * kIters;
  const uint64_t got = counter->Value();
  // Each span also observes into hist once per 64 iterations.
  const uint64_t want_hist = want + uint64_t(kWriters) * ((kIters + 63) / 64);
  const uint64_t got_hist = hist->Count();
  const bool ok = got == want && got_hist == want_hist && gauge->Value() == 0;
  std::printf("counter %llu/%llu  hist %llu/%llu  gauge %lld  %s\n",
              (unsigned long long)got, (unsigned long long)want,
              (unsigned long long)got_hist, (unsigned long long)want_hist,
              (long long)gauge->Value(), ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
