#!/usr/bin/env bash
# Tier-1 check: Release build, full test suite, throughput smoke bench, and
# a ThreadSanitizer pass over the thread pool.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"${JOBS}"
# Native pass: kernels auto-select the most capable backend this host has.
ctest --test-dir build --output-on-failure -j"${JOBS}"
# Forced-scalar pass: the same tier-1 suite on the portable reference
# kernels. Together with the native pass (and kernel_dispatch_test's
# per-primitive fingerprints) this proves the SIMD backends change nothing
# observable.
GLINT_KERNEL=scalar ctest --test-dir build --output-on-failure -j"${JOBS}"

# Smoke the throughput bench with a 2-thread pool (exercises the parallel
# build/train/inference paths end to end).
GLINT_THREADS=2 ./build/bench/bench_throughput --smoke

# Smoke the serving bench (cold full-rebuild vs warm incremental Inspect
# through a DeploymentSession; exits non-zero if warm != cold).
GLINT_THREADS=2 ./build/bench/bench_serving --smoke

# Observability gate: obs unit tests (bucket boundaries, quantiles vs an
# exact reference, registry collision aborts, snapshot-merge determinism),
# then the overhead bench — exits non-zero if telemetry costs >5% on the
# warm Inspect path or perturbs the verdicts.
./build/tests/obs_test
GLINT_THREADS=2 ./build/bench/bench_obs_overhead --smoke

# Data-race check: build the thread-pool and obs stress targets under TSAN
# and run both drivers.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGLINT_TSAN=ON
cmake --build build-tsan -j"${JOBS}" --target threadpool_stress obs_stress
./build-tsan/tests/threadpool_stress
./build-tsan/tests/obs_stress
# Batched serving under TSAN: InspectAllBatched fans BeginInspect out over
# the pool while sharing the detector's memo caches, then assembles the
# super-graph serially — the thread-count equivalence test is the racy
# surface. (Single suite under TSAN; the full sweep runs in the tier-1
# passes above.)
cmake --build build-tsan -j"${JOBS}" --target batched_serving_test
GLINT_THREADS=4 ./build-tsan/tests/batched_serving_test \
  --gtest_filter='BatchedServingTest.MatchesSequentialAcrossThreadCounts'

# Arena lifetime / aliasing check: the tape tests under ASan. Guards the
# bump-pointer arena (slot reuse after Reset, offset-based pools whose
# growth moves storage, scratch-matrix aliasing in MatMul's transposed-B
# kernel) against use-after-free and out-of-bounds regressions.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGLINT_ASAN=ON
cmake --build build-asan -j"${JOBS}" --target \
  gnn_tensor_test gnn_tape_reuse_test gnn_layers_test kernel_dispatch_test \
  batched_serving_test
./build-asan/tests/gnn_tensor_test
./build-asan/tests/gnn_tape_reuse_test
./build-asan/tests/gnn_layers_test
# Kernel backends + the batched serving path under ASan: the SIMD tail
# handling, the block-diagonal batch assembly (offset-shifted CSR copies),
# and the segment-op index pools are all raw-pointer arithmetic.
./build-asan/tests/kernel_dispatch_test
GLINT_THREADS=2 ./build-asan/tests/batched_serving_test

# Fault matrix under ASan: the injection framework's unit tests, then the
# WAL/snapshot crash-matrix suite — forks a child per (fault point, nth),
# kills it at the armed point, and requires recovery to be bit-identical to
# an uninterrupted run (torn-tail, flipped-byte, and corrupt-snapshot cases
# included). ASan guards the replay/truncation buffer handling.
cmake --build build-asan -j"${JOBS}" --target fault_test recovery_test
./build-asan/tests/fault_test
GLINT_THREADS=1 ./build-asan/tests/recovery_test

# Env-spec smoke through the real CLI surface (GLINT_FAULTS is what an
# operator arms against a production binary). Train a tiny model (also
# exercises the hardened model save/load path), serve durably with a delay
# fault armed (must pass through), then with a WAL-append failure armed
# (must exit non-zero via a handled IOError — never crash or hang), then
# serve again clean on the same state dir (must recover what was durable).
FAULT_SMOKE_DIR="$(mktemp -d /tmp/glint_check_fault_XXXXXX)"
trap 'rm -rf "${FAULT_SMOKE_DIR}"' EXIT
GLINT_THREADS=2 ./build/tools/glint train \
  --model-dir "${FAULT_SMOKE_DIR}/models" --graphs 40 --epochs 2
GLINT_FAULTS='wal.append.write=delay:1' GLINT_THREADS=2 ./build/tools/glint \
  serve --model-dir "${FAULT_SMOKE_DIR}/models" \
  --state-dir "${FAULT_SMOKE_DIR}/state" --homes 2 --hours 2
if GLINT_FAULTS='wal.append.write=fail' GLINT_THREADS=2 ./build/tools/glint \
    serve --model-dir "${FAULT_SMOKE_DIR}/models" \
    --state-dir "${FAULT_SMOKE_DIR}/state" --homes 2 --hours 2 \
    >/dev/null 2>&1; then
  echo "check.sh: GLINT_FAULTS=wal.append.write=fail should have surfaced" >&2
  exit 1
fi
GLINT_THREADS=2 ./build/tools/glint serve \
  --model-dir "${FAULT_SMOKE_DIR}/models" \
  --state-dir "${FAULT_SMOKE_DIR}/state" --homes 2 --hours 2

# Fleet stage. Wire robustness under ASan: the frame decode / codec paths
# are length-prefix-driven buffer arithmetic fed by untrusted bytes, so the
# malformed-frame matrix (truncated headers, flipped CRC bits, oversized
# prefixes, garbage bodies over real sockets) runs with bounds checking on.
cmake --build build-asan -j"${JOBS}" --target wire_test
./build-asan/tests/wire_test
# Bus/server concurrency under TSAN: multi-producer Post against per-shard
# consumers, Flush barriers, and concurrent wire connections are the racy
# surface. The fork-based crash-matrix legs are excluded under TSAN (fork
# from an instrumented multithreaded process is undefined for the runtime);
# they run in the native tier-1 pass above.
cmake --build build-tsan -j"${JOBS}" --target fleet_test
GLINT_THREADS=4 ./build-tsan/tests/fleet_test \
  --gtest_filter='-*CrashMatrix*:*TornTail*'
# Fleet bench smoke: register/ingest/inspect/wire legs; exits non-zero if
# the fleet-vs-single-engine sample diverges or the bus/wire legs lose
# messages.
GLINT_THREADS=2 ./build/bench/bench_fleet --smoke
# Durable fleet-serve smoke through the CLI: drive a small sharded fleet
# through the bus with per-shard WALs, then serve again on the same state
# dir (must recover every shard and resume, not re-register).
GLINT_THREADS=2 ./build/tools/glint fleet-serve \
  --model-dir "${FAULT_SMOKE_DIR}/models" \
  --state-dir "${FAULT_SMOKE_DIR}/fleet-state" --shards 3 --homes 6 --hours 2
GLINT_THREADS=2 ./build/tools/glint fleet-serve \
  --model-dir "${FAULT_SMOKE_DIR}/models" \
  --state-dir "${FAULT_SMOKE_DIR}/fleet-state" --shards 3 --homes 6 --hours 2

echo "check.sh: all stages passed"
