#pragma once

#include <memory>

#include "correlation/features.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/mlp.h"

namespace glint::correlation {

/// The learned rule-correlation discoverer of Sec. 4.1: an ensemble of MLP,
/// RandomForest and KNN (the paper's three chosen predictors) trained on
/// Algorithm-1 features. Pair label = majority vote (the paper's manual
/// review of disagreements is approximated by the vote).
class CorrelationDiscovery {
 public:
  explicit CorrelationDiscovery(const nlp::EmbeddingModel* model)
      : extractor_(model) {}

  /// Trains the ensemble on a labeled pair dataset.
  void Train(const ml::Dataset& pairs);

  /// Predicts whether src's action can trigger dst.
  bool Correlated(const rules::Rule& src, const rules::Rule& dst) const;

  /// Majority-vote probability in {0, 1/3, 2/3, 1}.
  double VoteShare(const rules::Rule& src, const rules::Rule& dst) const;

  const FeatureExtractor& extractor() const { return extractor_; }

  /// True after Train().
  bool trained() const { return trained_; }

 private:
  FeatureExtractor extractor_;
  ml::Mlp mlp_;
  ml::RandomForest forest_;
  ml::Knn knn_;
  bool trained_ = false;
};

}  // namespace glint::correlation
