#include "testbed/hawatcher.h"

#include <set>

#include "rules/device.h"

namespace glint::testbed {

std::string HaWatcher::Sig(const graph::Event& e) {
  return std::string(rules::DeviceWord(e.device)) + ":" + e.state;
}

void HaWatcher::Train(const graph::EventLog& benign) {
  correlations_.clear();
  known_.clear();
  const auto& events = benign.events();
  std::map<std::string, int> count_a;
  std::map<std::pair<std::string, std::string>, int> count_ab;

  for (size_t i = 0; i < events.size(); ++i) {
    const std::string sa = Sig(events[i]);
    known_[sa] += 1;
    count_a[sa] += 1;
    std::set<std::string> followers;
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (events[j].time_hours - events[i].time_hours > params_.window_hours) {
        break;
      }
      followers.insert(Sig(events[j]));
    }
    for (const auto& sb : followers) count_ab[{sa, sb}] += 1;
  }

  for (const auto& [pair, n_ab] : count_ab) {
    const auto& [sa, sb] = pair;
    if (sa == sb) continue;
    const int n_a = count_a[sa];
    if (n_a < params_.min_support) continue;
    const double conf = static_cast<double>(n_ab) / n_a;
    if (conf >= params_.min_confidence) {
      correlations_.push_back({sa, sb, conf});
    }
  }
}

int HaWatcher::CountAnomalies(const std::vector<graph::Event>& window) const {
  int anomalies = 0;
  const double window_end =
      window.empty() ? 0 : window.back().time_hours;
  // 1. Violated correlations: antecedent without consequent in δ. Events
  // too close to the window end are skipped — their consequent may simply
  // not have been observed yet.
  for (size_t i = 0; i < window.size(); ++i) {
    if (window_end - window[i].time_hours < params_.window_hours) continue;
    const std::string sa = Sig(window[i]);
    for (const auto& corr : correlations_) {
      if (corr.antecedent != sa) continue;
      bool satisfied = false;
      for (size_t j = i + 1; j < window.size(); ++j) {
        if (window[j].time_hours - window[i].time_hours >
            params_.window_hours) {
          break;
        }
        if (Sig(window[j]) == corr.consequent) satisfied = true;
      }
      if (!satisfied) ++anomalies;
    }
  }
  // 2. Events never observed in benign operation.
  for (const auto& e : window) {
    if (known_.find(Sig(e)) == known_.end()) ++anomalies;
  }
  return anomalies;
}

}  // namespace glint::testbed
