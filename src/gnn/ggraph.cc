#include "gnn/ggraph.h"

#include <cmath>
#include <cstddef>

#include "obs/obs.h"

namespace glint::gnn {

SparseMatrix NormalizedAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges) {
  // Build symmetrized A + I, then D^-1/2 (A+I) D^-1/2. The presence bitmap
  // and degree scratch are flat thread-local buffers re-used across calls
  // (this runs per VIPool coarsening inside every forward), so the
  // steady-state cost is the fill, not allocation.
  thread_local std::vector<char> present;
  thread_local std::vector<double> degree;
  present.assign(static_cast<size_t>(n) * static_cast<size_t>(n), 0);
  degree.assign(static_cast<size_t>(n), 0.0);
  auto at = [n](std::vector<char>& m, int i, int j) -> char& {
    return m[static_cast<size_t>(i) * static_cast<size_t>(n) +
             static_cast<size_t>(j)];
  };
  for (int i = 0; i < n; ++i) at(present, i, i) = 1;
  for (const auto& [s, d] : edges) {
    at(present, s, d) = 1;
    at(present, d, s) = 1;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) degree[static_cast<size_t>(i)] += at(present, i, j);
  }
  SparseMatrix adj;
  adj.rows = n;
  adj.cols = n;
  adj.Reserve(static_cast<size_t>(n) + 2 * edges.size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (at(present, i, j)) {
        const float v = static_cast<float>(
            1.0 / std::sqrt(degree[static_cast<size_t>(i)] *
                            degree[static_cast<size_t>(j)]));
        adj.Add(i, j, v);
      }
    }
  }
  adj.BuildCsrCache();
  return adj;
}

std::shared_ptr<const GnnGraph::TypeMeta> GnnGraph::TypeMetaView() const {
  auto cached = type_meta_.load(std::memory_order_acquire);
  if (cached) return cached;

  auto meta = std::make_shared<TypeMeta>();
  // Scatter permutation: node i reads row perm[i] of the stacked type
  // blocks (type 0 block first). Matches the block stacking order used by
  // MetapathConverter::Forward and HgslModel::Forward.
  meta->perm.assign(static_cast<size_t>(num_nodes), 0);
  int offset = 0;
  for (int type = 0; type < kNumNodeTypes; ++type) {
    const auto& rows = type_rows[type];
    for (size_t k = 0; k < rows.size(); ++k) {
      meta->perm[static_cast<size_t>(rows[k])] = offset + static_cast<int>(k);
    }
    offset += static_cast<int>(rows.size());
  }
  // Type-restricted mean-neighbour operators (self fallback when a node
  // has no neighbour of the type).
  for (int type = 0; type < kNumNodeTypes; ++type) {
    SparseMatrix& mean_t = meta->type_mean[type];
    mean_t.rows = num_nodes;
    mean_t.cols = num_nodes;
    for (int v = 0; v < num_nodes; ++v) {
      int count = 0;
      for (int u : neighbors[static_cast<size_t>(v)]) {
        if (node_types[static_cast<size_t>(u)] == type) ++count;
      }
      if (count == 0) {
        mean_t.entries.push_back({v, v, 1.f});
      } else {
        const float w = 1.0f / static_cast<float>(count);
        for (int u : neighbors[static_cast<size_t>(v)]) {
          if (node_types[static_cast<size_t>(u)] == type) {
            mean_t.entries.push_back({v, u, w});
          }
        }
      }
    }
    mean_t.BuildCsrCache();
  }

  std::shared_ptr<const TypeMeta> expected;
  std::shared_ptr<const TypeMeta> built = std::move(meta);
  if (type_meta_.compare_exchange_strong(expected, built)) return built;
  return expected;
}

GnnGraph ToGnnGraph(const graph::InteractionGraph& g) {
  GLINT_OBS_TIMER(timer, "glint.gnn.tensorize_ms");
  GnnGraph out;
  out.num_nodes = g.num_nodes();
  out.label = g.vulnerable() ? 1 : 0;
  out.node_types.reserve(static_cast<size_t>(out.num_nodes));

  // Group nodes by type.
  for (int i = 0; i < g.num_nodes(); ++i) {
    const auto& node = g.nodes()[static_cast<size_t>(i)];
    GLINT_CHECK(node.type >= 0 && node.type < kNumNodeTypes);
    out.node_types.push_back(node.type);
    out.type_rows[node.type].push_back(i);
  }
  for (int t = 0; t < kNumNodeTypes; ++t) {
    const auto& rows = out.type_rows[t];
    if (rows.empty()) continue;
    const int dim = kTypeDims[t];
    out.typed_features[t] = Matrix(static_cast<int>(rows.size()), dim);
    for (size_t k = 0; k < rows.size(); ++k) {
      const auto& feat = g.nodes()[static_cast<size_t>(rows[k])].features;
      GLINT_CHECK(static_cast<int>(feat.size()) == dim);
      for (int j = 0; j < dim; ++j) {
        out.typed_features[t].At(static_cast<int>(k), j) = feat[static_cast<size_t>(j)];
      }
    }
  }

  out.neighbors.assign(static_cast<size_t>(out.num_nodes), {});
  for (const auto& e : g.edges()) {
    out.edges.emplace_back(e.src, e.dst);
    out.neighbors[static_cast<size_t>(e.src)].push_back(e.dst);
    out.neighbors[static_cast<size_t>(e.dst)].push_back(e.src);
  }
  out.adj_norm = NormalizedAdjacency(out.num_nodes, out.edges);

  out.adj_raw.rows = out.num_nodes;
  out.adj_raw.cols = out.num_nodes;
  out.adj_raw.Reserve(2 * out.edges.size());
  for (const auto& [s, d] : out.edges) out.adj_raw.AddSymmetric(s, d, 1.f);
  out.adj_raw.BuildCsrCache();
  return out;
}

std::vector<GnnGraph> ToGnnGraphs(const graph::GraphDataset& ds) {
  std::vector<GnnGraph> out;
  out.reserve(ds.graphs.size());
  for (const auto& g : ds.graphs) out.push_back(ToGnnGraph(g));
  return out;
}

GnnBatch MakeGnnBatch(const std::vector<const GnnGraph*>& graphs) {
  GLINT_CHECK(!graphs.empty());
  GnnBatch batch;
  batch.offsets.reserve(graphs.size() + 1);
  batch.offsets.push_back(0);
  size_t total_edges = 0;
  int type_counts[kNumNodeTypes] = {};
  for (const GnnGraph* g : graphs) {
    GLINT_CHECK(g != nullptr && g->num_nodes > 0);
    batch.offsets.push_back(batch.offsets.back() + g->num_nodes);
    total_edges += g->edges.size();
    for (int t = 0; t < kNumNodeTypes; ++t) {
      type_counts[t] += static_cast<int>(g->type_rows[t].size());
    }
  }
  GnnGraph& out = batch.graph;
  out.num_nodes = batch.offsets.back();
  out.node_types.reserve(static_cast<size_t>(out.num_nodes));
  out.edges.reserve(total_edges);
  out.neighbors.reserve(static_cast<size_t>(out.num_nodes));
  for (int t = 0; t < kNumNodeTypes; ++t) {
    if (type_counts[t] > 0) {
      out.typed_features[t] = Matrix(type_counts[t], kTypeDims[t]);
      out.type_rows[t].reserve(static_cast<size_t>(type_counts[t]));
    }
  }

  int type_cursor[kNumNodeTypes] = {};
  size_t norm_entries = 0, raw_entries = 0;
  for (const GnnGraph* g : graphs) {
    norm_entries += g->adj_norm.entries.size();
    raw_entries += g->adj_raw.entries.size();
  }
  out.adj_norm.rows = out.adj_norm.cols = out.num_nodes;
  out.adj_norm.Reserve(norm_entries);
  out.adj_raw.rows = out.adj_raw.cols = out.num_nodes;
  out.adj_raw.Reserve(raw_entries);

  for (size_t b = 0; b < graphs.size(); ++b) {
    const GnnGraph& g = *graphs[b];
    const int off = batch.offsets[b];
    out.node_types.insert(out.node_types.end(), g.node_types.begin(),
                          g.node_types.end());
    for (int t = 0; t < kNumNodeTypes; ++t) {
      const auto& rows = g.type_rows[t];
      for (size_t k = 0; k < rows.size(); ++k) {
        const int dst = type_cursor[t] + static_cast<int>(k);
        out.type_rows[t].push_back(rows[k] + off);
        const float* src =
            g.typed_features[t].data.data() + k * g.typed_features[t].cols;
        std::copy(src, src + kTypeDims[t],
                  out.typed_features[t].data.data() +
                      static_cast<size_t>(dst) * kTypeDims[t]);
      }
      type_cursor[t] += static_cast<int>(rows.size());
    }
    for (const auto& [s, d] : g.edges) out.edges.emplace_back(s + off, d + off);
    for (const auto& nbrs : g.neighbors) {
      out.neighbors.emplace_back();
      out.neighbors.back().reserve(nbrs.size());
      for (int u : nbrs) out.neighbors.back().push_back(u + off);
    }
    // Entry lists are copied in graph order with shifted coordinates, so the
    // batch CSR row of node (off + v) holds exactly graph b's row v entries
    // in their original order — block-diagonal by construction.
    for (const auto& e : g.adj_norm.entries) {
      out.adj_norm.Add(e.r + off, e.c + off, e.v);
    }
    for (const auto& e : g.adj_raw.entries) {
      out.adj_raw.Add(e.r + off, e.c + off, e.v);
    }
  }
  out.adj_norm.BuildCsrCache();
  out.adj_raw.BuildCsrCache();
  return batch;
}

const GnnGraph* GnnGraphCache::Find(const Key& key) {
  for (auto& slot : slots_) {
    if (slot->key == key) {
      slot->tick = ++tick_;
      ++hits_;
      GLINT_OBS_COUNT("glint.gnn.tensor_cache.hits", 1);
      return &slot->graph;
    }
  }
  ++misses_;
  GLINT_OBS_COUNT("glint.gnn.tensor_cache.misses", 1);
  return nullptr;
}

const GnnGraph* GnnGraphCache::Insert(Key key, GnnGraph g) {
  if (slots_.size() >= capacity_ && !slots_.empty()) {
    size_t oldest = 0;
    for (size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i]->tick < slots_[oldest]->tick) oldest = i;
    }
    slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(oldest));
  }
  auto slot = std::make_unique<Slot>();
  slot->key = std::move(key);
  slot->graph = std::move(g);
  slot->tick = ++tick_;
  slots_.push_back(std::move(slot));
  return &slots_.back()->graph;
}

}  // namespace glint::gnn
