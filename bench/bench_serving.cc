// Serving-path bench: cold full-rebuild Inspect vs warm incremental Inspect
// through a DeploymentSession (1-rule delta on an N-rule home, learned
// correlation pipeline), plus ServingEngine whole-fleet throughput
// (rules/sec) at 1, 2, and hardware-concurrency threads. Emits one
// machine-readable JSON line (prefix BENCH_JSON) with the p50/p95
// latencies, the cold/warm speedup, and the per-thread-count rates.
//
// Usage: bench_serving [--smoke]
//   --smoke  tiny home / fewer reps and a {1, current} thread sweep; used
//            by tools/check.sh under GLINT_THREADS=2.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/glint.h"
#include "core/journal.h"
#include "core/serving.h"
#include "core/session.h"
#include "util/thread_pool.h"

namespace glint::bench {
namespace {

graph::Event EventFor(const rules::Rule& r, bool trigger, double t) {
  graph::Event e;
  e.time_hours = t;
  e.location = r.location;
  if (trigger || r.actions.empty()) {
    e.device = r.trigger.device;
    e.state = r.trigger.state;
  } else {
    e.device = r.actions[0].device;
    e.state = rules::CommandResultState(r.actions[0].command);
  }
  return e;
}

int Run(bool smoke) {
  const int home_rules = smoke ? 16 : 50;
  const int reps = smoke ? 6 : 20;
  const int homes = smoke ? 4 : 8;

  // A small trained detector: the learned correlation classifier is what
  // makes the cold O(n^2) pair scan expensive, so train it for real; the
  // GNN quality is irrelevant to the timing shape.
  core::Glint::Options opts;
  opts.corpus.ifttt = smoke ? 200 : 300;
  opts.corpus.smartthings = 40;
  opts.corpus.alexa = 60;
  opts.corpus.google_assistant = 40;
  opts.corpus.home_assistant = 40;
  opts.num_training_graphs = smoke ? 40 : 80;
  opts.builder.max_nodes = 8;
  opts.model.num_scales = 2;
  opts.model.embed_dim = 32;
  opts.train.epochs = 2;
  opts.pairs.num_positive = 60;
  opts.pairs.num_negative = 90;
  core::Glint glint(opts);
  std::printf("training the detector (offline stage)...\n");
  glint.TrainOffline();

  // The deployed home: home_rules corpus rules re-id'd, plus an event
  // stream so real-time edges are actually live.
  std::vector<rules::Rule> deployed(
      glint.corpus().begin(),
      glint.corpus().begin() + std::min<size_t>(
                                   static_cast<size_t>(home_rules),
                                   glint.corpus().size()));
  for (size_t i = 0; i < deployed.size(); ++i) {
    deployed[i].id = 9000 + static_cast<int>(i);
  }
  graph::EventLog log;
  double now = 10.0;
  for (size_t i = 0; i < deployed.size(); ++i) {
    now += 0.01;
    log.Append(EventFor(deployed[i], /*trigger=*/false, now));
    now += 0.01;
    log.Append(EventFor(deployed[(i + 1) % deployed.size()],
                        /*trigger=*/true, now));
  }

  Banner("Serving: cold full rebuild vs warm incremental Inspect",
         "the Sec. 5 deployment regime");

  // Cold: the pre-split pipeline — every Inspect re-runs the O(n^2)
  // learned-correlation scan and rebuilds the graph from scratch. (The
  // façade's predicate is deliberately unmemoized.)
  std::vector<double> cold_ms;
  core::ThreatWarning cold_w;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    cold_w = glint.Inspect(deployed, log, now);
    cold_ms.push_back(Seconds(t0) * 1e3);
  }

  // Warm: a DeploymentSession over the same rules and events. Each
  // measured op is a 1-rule delta (retire one rule, redeploy it) plus the
  // incremental Inspect — the caches never see an unchanged graph key, so
  // this times real incremental work, not verdict-cache hits.
  core::DeploymentSession session(&glint.detector());
  for (const auto& r : deployed) session.AddRule(r);
  for (const auto& e : log.events()) session.OnEvent(e);
  core::ThreatWarning warm_w = session.Inspect(now);

  std::vector<double> warm_ms;
  for (int r = 0; r < reps; ++r) {
    const auto cur = session.CurrentRules();
    const rules::Rule rotated = cur[static_cast<size_t>(r) % cur.size()];
    auto t0 = std::chrono::steady_clock::now();
    session.RemoveRule(rotated.id);
    session.AddRule(rotated);
    warm_w = session.Inspect(now);
    warm_ms.push_back(Seconds(t0) * 1e3);
  }
  // No-change Inspect: the graph key matches, so the verdict cache answers.
  std::vector<double> hit_ms;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    warm_w = session.Inspect(now);
    hit_ms.push_back(Seconds(t0) * 1e3);
  }

  // Sanity: warm and cold must agree bit-for-bit on the same deployment.
  const bool equivalent =
      session.Inspect(now).Render() ==
      glint.Inspect(session.CurrentRules(), log, now).Render();

  // Durability tax: the identical 1-rule-delta warm loop through a
  // ServingEngine with and without a WAL attached. The journaled run pays
  // one record encode + buffered fwrite + fflush per mutation; the gate
  // below holds it to <10% of the warm path (plus 0.5 ms absolute slack so
  // a noisy shared box cannot flake a sub-millisecond comparison). The two
  // engines are sampled in the same loop, alternating reps, so box-level
  // drift hits both distributions equally.
  auto warm_engine_rep = [&](core::ServingEngine* eng, int r) {
    // home_view: `eng` is the durable engine on half the calls, and the
    // mutable accessor refuses durable engines (WAL-bypass guard).
    const auto cur = eng->home_view(0).CurrentRules();
    const rules::Rule rotated = cur[static_cast<size_t>(r) % cur.size()];
    auto t0 = std::chrono::steady_clock::now();
    if (!eng->TryRemoveRule(0, rotated.id).ok() ||
        !eng->TryAddRule(0, rotated).ok() ||
        !eng->TryInspect(0, now).ok()) {
      std::fprintf(stderr, "warm engine loop op failed\n");
      std::exit(1);
    }
    return Seconds(t0) * 1e3;
  };
  core::ServingEngine plain_engine(&glint.detector());
  plain_engine.AddHome(deployed);
  for (const auto& e : log.events()) plain_engine.OnEvent(0, e);

  char state_dir[] = "/tmp/glint_bench_wal_XXXXXX";
  if (mkdtemp(state_dir) == nullptr) {
    std::fprintf(stderr, "cannot create bench state dir\n");
    return 1;
  }
  core::ServingEngine durable_engine(&glint.detector());
  if (!durable_engine.Recover(state_dir).ok()) {
    std::fprintf(stderr, "bench recovery failed\n");
    return 1;
  }
  durable_engine.AddHome(deployed);
  for (const auto& e : log.events()) durable_engine.OnEvent(0, e);

  std::vector<double> plain_ms, durable_ms;
  for (int r = 0; r < reps; ++r) {
    plain_ms.push_back(warm_engine_rep(&plain_engine, r));
    durable_ms.push_back(warm_engine_rep(&durable_engine, r));
  }
  const double warm_engine_p50 = Percentile(plain_ms, 0.50);
  const double warm_durable_p50 = Percentile(durable_ms, 0.50);
  const bool durable_gate_ok =
      warm_durable_p50 <= warm_engine_p50 * 1.10 + 0.5;

  // Raw WAL append latency, measured directly on the journal with a
  // typical event-record payload.
  std::vector<double> append_us;
  {
    char wal_dir[] = "/tmp/glint_bench_append_XXXXXX";
    if (mkdtemp(wal_dir) == nullptr) {
      std::fprintf(stderr, "cannot create append bench dir\n");
      return 1;
    }
    core::Journal journal((std::string(wal_dir)));
    core::Journal::RecoveryInfo info;
    auto nop_snapshot = [](const std::vector<char>&) {
      return Status::OK();
    };
    auto nop_record = [](uint64_t, const std::vector<char>&) {
      return Status::OK();
    };
    if (!journal.Recover(nop_snapshot, nop_record, &info).ok()) {
      std::fprintf(stderr, "append bench recovery failed\n");
      return 1;
    }
    const std::vector<char> payload(48, 'e');  // ~one encoded event op
    const int appends = smoke ? 500 : 2000;
    append_us.reserve(static_cast<size_t>(appends));
    for (int i = 0; i < appends; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      if (!journal.Append(static_cast<uint64_t>(i) + 1, payload).ok()) {
        std::fprintf(stderr, "bench append failed\n");
        return 1;
      }
      append_us.push_back(Seconds(t0) * 1e6);
    }
  }
  const double wal_append_us_p50 = Percentile(append_us, 0.50);
  const double wal_append_us_p95 = Percentile(append_us, 0.95);

  const double cold_p50 = Percentile(cold_ms, 0.50);
  const double cold_p95 = Percentile(cold_ms, 0.95);
  const double warm_p50 = Percentile(warm_ms, 0.50);
  const double warm_p95 = Percentile(warm_ms, 0.95);
  const double hit_p50 = Percentile(hit_ms, 0.50);
  const double speedup = warm_p50 > 0 ? cold_p50 / warm_p50 : 0;

  std::printf("%-34s %10s %10s\n", "inspect path", "p50 ms", "p95 ms");
  std::printf("%-34s %10.2f %10.2f\n", "cold full rebuild", cold_p50,
              cold_p95);
  std::printf("%-34s %10.2f %10.2f\n", "warm incremental (1-rule delta)",
              warm_p50, warm_p95);
  std::printf("%-34s %10.3f %10.3f\n", "warm no-change (verdict cache)",
              hit_p50, Percentile(hit_ms, 0.95));
  std::printf("cold/warm p50 speedup: %.1fx   warm==cold: %s\n", speedup,
              equivalent ? "yes" : "NO — DETERMINISM BUG");
  std::printf("%-34s %10.2f %10s\n", "warm engine (no WAL)", warm_engine_p50,
              "");
  std::printf("%-34s %10.2f %10s\n", "warm engine (journaled)",
              warm_durable_p50, "");
  std::printf("wal append p50: %.1f us  p95: %.1f us  durability gate: %s\n",
              wal_append_us_p50, wal_append_us_p95,
              durable_gate_ok ? "ok" : "FAIL (>10% warm-path regression)");

  // Fleet throughput: ServingEngine with `homes` sessions, one 1-rule
  // delta per home per round, InspectAll across the thread sweep.
  const int initial = ThreadPool::Global().threads();
  std::vector<int> sweep = {1};
  if (smoke) {
    if (initial > 1) sweep.push_back(initial);
  } else {
    if (initial >= 2) sweep.push_back(2);
    if (ThreadPool::ConfiguredThreads() > 2) {
      sweep.push_back(ThreadPool::ConfiguredThreads());
    }
  }

  core::ServingEngine engine(&glint.detector());
  for (int h = 0; h < homes; ++h) engine.AddHome(deployed);
  for (int h = 0; h < homes; ++h) {
    for (const auto& e : log.events()) engine.OnEvent(h, e);
  }

  std::printf("\n%8s %16s\n", "threads", "rules/sec");
  std::vector<double> rates;
  int round = 0;
  for (int t : sweep) {
    ThreadPool::SetGlobalThreads(t);
    const int rounds = smoke ? 2 : 4;
    auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < rounds; ++k, ++round) {
      for (int h = 0; h < homes; ++h) {
        const auto cur = engine.home_view(h).CurrentRules();
        const rules::Rule rotated =
            cur[static_cast<size_t>(round) % cur.size()];
        // Route mutations through the engine API (the journaled path on a
        // durable engine) instead of poking the session directly.
        if (!engine.TryRemoveRule(h, rotated.id).ok() ||
            !engine.TryAddRule(h, rotated).ok()) {
          std::fprintf(stderr, "thread-sweep rotate op failed\n");
          return 1;
        }
      }
      engine.InspectAll(now);
    }
    const double rate =
        static_cast<double>(engine.total_rules()) * rounds / Seconds(t0);
    rates.push_back(rate);
    std::printf("%8d %16.1f\n", t, rate);
  }
  ThreadPool::SetGlobalThreads(initial);

  // Batched warm fleet: two identical engines walk the same 1-rule-delta
  // script; each round times sequential InspectAll on one and
  // InspectAllBatched on the other, and the warnings must match
  // bit-for-bit (the serving equivalence gate — see batched_serving_test
  // for the full sweep). Alternating measurement within one loop keeps
  // box-level drift symmetric.
  core::ServingEngine eng_seq(&glint.detector());
  core::ServingEngine eng_bat(&glint.detector());
  for (int h = 0; h < homes; ++h) {
    eng_seq.AddHome(deployed);
    eng_bat.AddHome(deployed);
    for (const auto& e : log.events()) {
      eng_seq.OnEvent(h, e);
      eng_bat.OnEvent(h, e);
    }
  }
  bool batched_equivalent = true;
  std::vector<double> seq_fleet_ms, bat_fleet_ms;
  const int bat_rounds = smoke ? 4 : 8;
  for (int r = 0; r < bat_rounds; ++r) {
    for (int h = 0; h < homes; ++h) {
      const auto cur = eng_seq.home_view(h).CurrentRules();
      const rules::Rule rotated =
          cur[static_cast<size_t>(r + 1) % cur.size()];
      if (!eng_seq.TryRemoveRule(h, rotated.id).ok() ||
          !eng_seq.TryAddRule(h, rotated).ok() ||
          !eng_bat.TryRemoveRule(h, rotated.id).ok() ||
          !eng_bat.TryAddRule(h, rotated).ok()) {
        std::fprintf(stderr, "batched-fleet rotate op failed\n");
        return 1;
      }
    }
    auto t0 = std::chrono::steady_clock::now();
    const auto ws = eng_seq.InspectAll(now);
    seq_fleet_ms.push_back(Seconds(t0) * 1e3);
    t0 = std::chrono::steady_clock::now();
    const auto wb = eng_bat.InspectAllBatched(now);
    bat_fleet_ms.push_back(Seconds(t0) * 1e3);
    for (int h = 0; h < homes; ++h) {
      if (ws[static_cast<size_t>(h)].Render() !=
          wb[static_cast<size_t>(h)].Render()) {
        batched_equivalent = false;
      }
    }
  }
  const double seq_fleet_p50 = Percentile(seq_fleet_ms, 0.50);
  const double bat_fleet_p50 = Percentile(bat_fleet_ms, 0.50);
  const double batched_speedup =
      bat_fleet_p50 > 0 ? seq_fleet_p50 / bat_fleet_p50 : 0;
  std::printf("\n%-34s %10.2f\n", "warm fleet InspectAll p50 ms",
              seq_fleet_p50);
  std::printf("%-34s %10.2f\n", "warm fleet InspectAllBatched p50 ms",
              bat_fleet_p50);
  std::printf("batched fleet speedup: %.2fx   batched==sequential: %s\n",
              batched_speedup,
              batched_equivalent ? "yes" : "NO — EQUIVALENCE BUG");

  JsonWriter json;
  json.Str("bench", "serving");
  json.Int("home_rules", home_rules);
  json.Num("cold_p50_ms", cold_p50);
  json.Num("cold_p95_ms", cold_p95);
  json.Num("warm_p50_ms", warm_p50);
  json.Num("warm_p95_ms", warm_p95);
  json.Num("nochange_p50_ms", hit_p50, 4);
  json.Num("speedup_p50", speedup, 2);
  json.Bool("equivalent", equivalent);
  json.Num("warm_engine_p50_ms", warm_engine_p50);
  json.Num("warm_durable_p50_ms", warm_durable_p50);
  json.Num("wal_append_us_p50", wal_append_us_p50, 1);
  json.Num("wal_append_us_p95", wal_append_us_p95, 1);
  json.Bool("durable_gate_ok", durable_gate_ok);
  json.Ints("threads", sweep);
  json.Nums("rules_per_sec", rates);
  json.Num("fleet_seq_p50_ms", seq_fleet_p50);
  json.Num("fleet_batched_p50_ms", bat_fleet_p50);
  json.Num("batched_speedup", batched_speedup, 2);
  json.Bool("batched_equivalent", batched_equivalent);
  std::printf("BENCH_JSON %s\n", json.Render().c_str());
  if (!durable_gate_ok) return 1;
  if (!batched_equivalent) return 1;
  return equivalent ? 0 : 1;
}

}  // namespace
}  // namespace glint::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return glint::bench::Run(smoke);
}
