#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace glint::ml {

void Knn::Fit(const Dataset& data, const std::vector<double>& class_weights) {
  GLINT_CHECK(data.size() > 0);
  scaler_.Fit(data.x);
  train_ = data;
  scaler_.TransformInPlace(&train_.x);
  class_weights_ = class_weights;
  num_classes_ = std::max(2, data.NumClasses());
}

std::vector<double> Knn::Votes(const FloatVec& x) const {
  FloatVec q = scaler_.Transform(x);
  // Partial selection of the k nearest.
  std::vector<std::pair<double, int>> dists;
  dists.reserve(train_.size());
  for (size_t i = 0; i < train_.size(); ++i) {
    dists.emplace_back(EuclideanDistance(q, train_.x[i]), train_.y[i]);
  }
  const size_t k = std::min<size_t>(static_cast<size_t>(params_.k), dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                    dists.end());
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (size_t i = 0; i < k; ++i) {
    double w = params_.distance_weighted ? 1.0 / (dists[i].first + 1e-6) : 1.0;
    if (!class_weights_.empty()) {
      w *= class_weights_[static_cast<size_t>(dists[i].second)];
    }
    votes[static_cast<size_t>(dists[i].second)] += w;
  }
  return votes;
}

int Knn::Predict(const FloatVec& x) const {
  auto votes = Votes(x);
  int best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

double Knn::PredictProba(const FloatVec& x) const {
  auto votes = Votes(x);
  double total = 0;
  for (double v : votes) total += v;
  return total > 0 && votes.size() > 1 ? votes[1] / total : 0.0;
}

}  // namespace glint::ml
