#include "graph/live_graph.h"

#include <algorithm>
#include <cstddef>

#include "graph/threat_analyzer.h"
#include "obs/obs.h"
#include "rules/rule_io.h"
#include "util/status.h"

namespace glint::graph {

namespace {

// Identity of one deployed rule: semantic content mixed with the id, so two
// deployments of the same rule text under different ids stay distinct.
uint64_t IdentityHashOf(const rules::Rule& r) {
  uint64_t h = rules::RuleContentHash(r);
  h ^= static_cast<uint64_t>(static_cast<int64_t>(r.id)) *
       0x9e3779b97f4a7c15ULL;
  return h * 0x100000001b3ULL + 0x9e3779b9U;
}

// Sorted insert from the back (events arrive nearly chronologically).
void InsertTime(std::vector<double>* times, double t) {
  auto it = times->end();
  while (it != times->begin() && *(it - 1) > t) --it;
  times->insert(it, t);
}

}  // namespace

LiveGraph::LiveGraph(Config config, EdgePredicate edge_pred,
                     NodeFactory make_node)
    : config_(config),
      edge_pred_(std::move(edge_pred)),
      make_node_(std::move(make_node)) {
  GLINT_CHECK(edge_pred_ != nullptr);
  GLINT_CHECK(make_node_ != nullptr);
}

void LiveGraph::ReplayEvents(Entry* entry) const {
  entry->trigger_times.clear();
  entry->effect_times.clear();
  for (const Event& e : retained_) {
    if (EventFiresTrigger(e, entry->rule)) {
      entry->trigger_times.push_back(e.time_hours);
    }
    for (const auto& a : entry->rule.actions) {
      if (e.device == a.device &&
          rules::CommandAssertsState(a.command, e.state)) {
        entry->effect_times.push_back(e.time_hours);
        break;
      }
    }
  }
}

int LiveGraph::AddRule(const rules::Rule& rule) {
  GLINT_OBS_TIMER(timer, "glint.live.add_rule_ms");
  GLINT_OBS_COUNT("glint.live.rule_deltas", 1);
  Entry entry;
  entry.rule = rule;
  entry.node = make_node_(rule);
  entry.identity_hash = IdentityHashOf(rule);
  ReplayEvents(&entry);

  const size_t n = entries_.size();
  std::vector<char> sem_row(n + 1, 0);
  std::vector<char> share_row(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    sem_[i].push_back(edge_pred_(entries_[i].rule, rule) ? 1 : 0);
    sem_row[i] = edge_pred_(rule, entries_[i].rule) ? 1 : 0;
    const char sh = ShareDevice(entries_[i].rule, rule) ? 1 : 0;
    share_[i].push_back(sh);
    share_row[i] = sh;
  }
  sem_.push_back(std::move(sem_row));
  share_.push_back(std::move(share_row));
  entries_.push_back(std::move(entry));
  return static_cast<int>(n);
}

bool LiveGraph::RemoveRule(int rule_id) {
  size_t idx = entries_.size();
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].rule.id == rule_id) {
      idx = i;
      break;
    }
  }
  if (idx == entries_.size()) return false;
  GLINT_OBS_COUNT("glint.live.rule_deltas", 1);
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(idx));
  sem_.erase(sem_.begin() + static_cast<ptrdiff_t>(idx));
  share_.erase(share_.begin() + static_cast<ptrdiff_t>(idx));
  for (auto& row : sem_) row.erase(row.begin() + static_cast<ptrdiff_t>(idx));
  for (auto& row : share_) {
    row.erase(row.begin() + static_cast<ptrdiff_t>(idx));
  }
  return true;
}

void LiveGraph::OnEvent(const Event& e) {
  GLINT_OBS_COUNT("glint.live.events", 1);
  auto it = retained_.end();
  while (it != retained_.begin() && (it - 1)->time_hours > e.time_hours) --it;
  retained_.insert(it, e);
  latest_ = std::max(latest_, e.time_hours);

  for (auto& entry : entries_) {
    if (EventFiresTrigger(e, entry.rule)) {
      InsertTime(&entry.trigger_times, e.time_hours);
    }
    for (const auto& a : entry.rule.actions) {
      if (e.device == a.device &&
          rules::CommandAssertsState(a.command, e.state)) {
        InsertTime(&entry.effect_times, e.time_hours);
        break;
      }
    }
  }
  Prune();
}

void LiveGraph::Prune() {
  // An observation at t < latest - window can never fall inside
  // [now - window, now] again once now >= latest (the serving regime), so
  // it is dead weight: drop it in place.
  const double horizon = latest_ - config_.window_hours;
  auto first_kept = std::lower_bound(
      retained_.begin(), retained_.end(), horizon,
      [](const Event& e, double t) { return e.time_hours < t; });
  retained_.erase(retained_.begin(), first_kept);
  for (auto& entry : entries_) {
    auto drop = [horizon](std::vector<double>* times) {
      auto it = std::lower_bound(times->begin(), times->end(), horizon);
      times->erase(times->begin(), it);
    };
    drop(&entry.trigger_times);
    drop(&entry.effect_times);
  }
}

bool LiveGraph::EdgeLive(size_t i, size_t j, double now_hours) const {
  const double lo = now_hours - config_.window_hours;
  // Earliest effect of rule i within the window (lists are sorted).
  const auto& effects = entries_[i].effect_times;
  auto e_it = std::lower_bound(effects.begin(), effects.end(), lo);
  if (e_it == effects.end() || *e_it > now_hours) return false;
  // Latest trigger firing of rule j within the window.
  const auto& triggers = entries_[j].trigger_times;
  auto t_it = std::upper_bound(triggers.begin(), triggers.end(), now_hours);
  if (t_it == triggers.begin()) return false;
  const double t_max = *(t_it - 1);
  if (t_max < lo) return false;
  // Both within the window, so t_max - *e_it <= window holds; the edge is
  // live iff the effect precedes (or coincides with) the trigger firing.
  return *e_it <= t_max;
}

std::vector<rules::Rule> LiveGraph::CurrentRules() const {
  std::vector<rules::Rule> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.rule);
  return out;
}

std::vector<uint64_t> LiveGraph::IdentityHashes() const {
  std::vector<uint64_t> out;
  IdentityHashesInto(&out);
  return out;
}

void LiveGraph::IdentityHashesInto(std::vector<uint64_t>* out) const {
  out->clear();
  out->reserve(entries_.size());
  for (const auto& e : entries_) out->push_back(e.identity_hash);
}

std::vector<Edge> LiveGraph::StaticEdges() const {
  const size_t n = entries_.size();
  std::vector<Edge> edges;
  std::vector<char> seen(n * n, 0);
  auto add = [&](size_t s, size_t d) {
    if (seen[s * n + d]) return;
    seen[s * n + d] = 1;
    edges.push_back({static_cast<int>(s), static_cast<int>(d)});
  };
  // Mirror of GraphBuilder::AddEdges: semantic edge first, device link only
  // when the semantic predicate declined, in the same scan order.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (sem_[i][j]) {
        add(i, j);
      } else if (config_.device_edges && i < j && share_[i][j]) {
        add(i, j);
        add(j, i);
      }
    }
  }
  return edges;
}

std::vector<Edge> LiveGraph::RealTimeEdges(double now_hours) const {
  GLINT_CHECK(now_hours + 1e-9 >= latest_);
  const size_t n = entries_.size();
  std::vector<Edge> edges;
  std::vector<char> seen(n * n, 0);
  auto add = [&](size_t s, size_t d) {
    if (seen[s * n + d]) return;
    seen[s * n + d] = 1;
    edges.push_back({static_cast<int>(s), static_cast<int>(d)});
  };
  // Mirror of GraphBuilder::BuildRealTime: the event-ordered semantic scan,
  // then the unconditional shared-device pass.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j || !sem_[i][j]) continue;
      if (EdgeLive(i, j, now_hours)) add(i, j);
    }
  }
  if (config_.device_edges) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (share_[i][j]) {
          add(i, j);
          add(j, i);
        }
      }
    }
  }
  return edges;
}

InteractionGraph LiveGraph::Materialize(const std::vector<Edge>& edges) const {
  GLINT_OBS_TIMER(timer, "glint.live.materialize_ms");
  InteractionGraph g;
  for (const auto& e : entries_) g.AddNode(e.node);
  for (const auto& e : edges) g.AddEdge(e.src, e.dst);
  ThreatAnalyzer::Label(&g);
  return g;
}

InteractionGraph LiveGraph::MaterializeStatic() const {
  return Materialize(StaticEdges());
}

InteractionGraph LiveGraph::MaterializeRealTime(double now_hours) const {
  return Materialize(RealTimeEdges(now_hours));
}

void LiveGraph::SerializeTo(util::ByteWriter* w) const {
  w->U32(static_cast<uint32_t>(entries_.size()));
  for (const auto& e : entries_) rules::WriteRule(w, e.rule);
  w->U32(static_cast<uint32_t>(retained_.size()));
  for (const auto& e : retained_) WriteEvent(w, e);
  w->F64(latest_);
}

Status LiveGraph::Restore(util::ByteReader* r) {
  GLINT_CHECK(entries_.empty());  // restore targets a fresh graph
  uint32_t num_rules = 0;
  if (!r->U32(&num_rules) || num_rules > r->remaining()) {
    return Status::InvalidArgument("live graph snapshot: truncated header");
  }
  for (uint32_t i = 0; i < num_rules; ++i) {
    rules::Rule rule;
    if (!rules::ReadRule(r, &rule)) {
      return Status::InvalidArgument("live graph snapshot: truncated rule");
    }
    AddRule(rule);
  }
  uint32_t num_events = 0;
  if (!r->U32(&num_events) || num_events > r->remaining()) {
    return Status::InvalidArgument("live graph snapshot: truncated events");
  }
  for (uint32_t i = 0; i < num_events; ++i) {
    Event e;
    if (!ReadEvent(r, &e)) {
      return Status::InvalidArgument("live graph snapshot: truncated event");
    }
    OnEvent(e);
  }
  double latest = 0;
  if (!r->F64(&latest)) {
    return Status::InvalidArgument("live graph snapshot: missing watermark");
  }
  // The serialized watermark can exceed the retained events' maximum only
  // if pruning already ran at that watermark, so re-pruning here converges
  // to the exact serialized state.
  latest_ = std::max(latest_, latest);
  Prune();
  return Status::OK();
}

}  // namespace glint::graph
