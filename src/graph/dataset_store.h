#pragma once

#include <string>

#include "graph/interaction_graph.h"
#include "util/status.h"

namespace glint::graph {

/// Binary persistence of interaction-graph datasets — the DGL-file
/// substitute (Sec. 4.2 stores labeled datasets as graph files). Format:
/// magic + version header, then length-prefixed graphs with full rule IR,
/// node features, edges and labels. Endian-fragile by design (local
/// artifact, not an interchange format).
class DatasetStore {
 public:
  /// Writes `ds` to `path`, overwriting.
  static Status Save(const GraphDataset& ds, const std::string& path);

  /// Reads a dataset previously written by Save.
  static Result<GraphDataset> Load(const std::string& path);

  /// In-memory serialized size in bytes (for Table 3-style size reporting).
  static size_t SerializedBytes(const GraphDataset& ds);
};

}  // namespace glint::graph
