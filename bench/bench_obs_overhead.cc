// Overhead gate for the glint::obs telemetry layer: times the warm
// incremental Inspect path (1-rule delta on a deployed home — the serving
// hot path) with telemetry collecting vs. runtime-disabled, and fails if
// the enabled/disabled p50 ratio exceeds the 5% budget from DESIGN.md §9.
// Also asserts the warm verdicts are bit-identical under both modes: the
// telemetry layer must observe the pipeline, never perturb it.
//
// Emits one BENCH_JSON line with both p50s, the ratio, and pass/fail.
//
// Usage: bench_obs_overhead [--smoke]
//   --smoke  smaller home / fewer reps; used by tools/check.sh.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/glint.h"
#include "core/session.h"
#include "obs/obs.h"

namespace glint::bench {
namespace {

/// Ratio slack for sub-millisecond medians: when the warm path is this
/// fast, scheduler jitter between the two timed loops dwarfs any real
/// instrument cost, so the gate also accepts an absolute gap under 50µs.
constexpr double kAbsSlackMs = 0.05;
constexpr double kMaxRatio = 1.05;

struct Timing {
  std::vector<double> ms;
  std::string last_render;  // verdict text of the final Inspect
};

/// One warm measurement pass: `reps` (RemoveRule, AddRule, Inspect) deltas
/// against a session deployed with `rules`. A fresh session per pass keeps
/// the two modes symmetric (same cold start, same cache history).
Timing MeasureWarm(const core::Glint& glint,
                   const std::vector<rules::Rule>& deployed, int reps,
                   double now) {
  core::DeploymentSession session(&glint.detector());
  for (const auto& r : deployed) session.AddRule(r);
  core::ThreatWarning w = session.Inspect(now);  // untimed warm-up
  Timing out;
  for (int r = 0; r < reps; ++r) {
    const auto cur = session.CurrentRules();
    const rules::Rule rotated = cur[static_cast<size_t>(r) % cur.size()];
    auto t0 = std::chrono::steady_clock::now();
    session.RemoveRule(rotated.id);
    session.AddRule(rotated);
    w = session.Inspect(now);
    out.ms.push_back(Seconds(t0) * 1e3);
  }
  out.last_render = w.Render();
  return out;
}

int Run(bool smoke) {
  const int home_rules = smoke ? 12 : 40;
  const int reps = smoke ? 8 : 30;

  core::Glint::Options opts;
  opts.corpus.ifttt = smoke ? 200 : 300;
  opts.corpus.smartthings = 40;
  opts.corpus.alexa = 60;
  opts.corpus.google_assistant = 40;
  opts.corpus.home_assistant = 40;
  opts.num_training_graphs = smoke ? 40 : 80;
  opts.builder.max_nodes = 8;
  opts.model.num_scales = 2;
  opts.model.embed_dim = 32;
  opts.train.epochs = 2;
  opts.pairs.num_positive = 60;
  opts.pairs.num_negative = 90;
  core::Glint glint(opts);
  std::printf("training the detector (offline stage)...\n");
  glint.TrainOffline();

  std::vector<rules::Rule> deployed(
      glint.corpus().begin(),
      glint.corpus().begin() +
          std::min<size_t>(static_cast<size_t>(home_rules),
                           glint.corpus().size()));
  for (size_t i = 0; i < deployed.size(); ++i) {
    deployed[i].id = 9000 + static_cast<int>(i);
  }
  const double now = 10.0;

  Banner("obs overhead: warm Inspect with telemetry on vs. off",
         "the DESIGN.md §9 overhead budget");
#ifdef GLINT_OBS_DISABLED
  std::printf("glint::obs compiled out (GLINT_OBS_DISABLE); both modes are "
              "the disabled path — gate trivially passes.\n");
#endif

  // Alternate off/on per block so slow drift (thermal, other processes)
  // lands on both modes equally; first block is discarded implicitly by
  // MeasureWarm's internal warm-up.
  const int blocks = 4;
  std::vector<double> off_ms, on_ms;
  std::string off_render, on_render;
  for (int b = 0; b < blocks; ++b) {
    obs::SetEnabled(false);
    Timing off = MeasureWarm(glint, deployed, reps, now);
    obs::SetEnabled(true);
    Timing on = MeasureWarm(glint, deployed, reps, now);
    off_ms.insert(off_ms.end(), off.ms.begin(), off.ms.end());
    on_ms.insert(on_ms.end(), on.ms.begin(), on.ms.end());
    off_render = off.last_render;
    on_render = on.last_render;
  }

  const double off_p50 = Percentile(off_ms, 0.50);
  const double on_p50 = Percentile(on_ms, 0.50);
  const double ratio = off_p50 > 0 ? on_p50 / off_p50 : 1.0;
  const bool identical = on_render == off_render;
  const bool within =
      ratio <= kMaxRatio || (on_p50 - off_p50) <= kAbsSlackMs;
  const bool pass = within && identical;

  std::printf("%-28s %10s %10s\n", "telemetry", "p50 ms", "p95 ms");
  std::printf("%-28s %10.3f %10.3f\n", "disabled (GLINT_OBS=off)", off_p50,
              Percentile(off_ms, 0.95));
  std::printf("%-28s %10.3f %10.3f\n", "enabled", on_p50,
              Percentile(on_ms, 0.95));
  std::printf("enabled/disabled p50 ratio: %.3f (budget %.2f, abs slack "
              "%.0fus)   verdicts identical: %s\n",
              ratio, kMaxRatio, kAbsSlackMs * 1e3,
              identical ? "yes" : "NO — OBS PERTURBS THE PIPELINE");
  std::printf("%s\n", pass ? "PASS" : "FAIL: obs overhead gate");

  JsonWriter json;
  json.Str("bench", "obs_overhead");
  json.Int("home_rules", home_rules);
  json.Num("off_p50_ms", off_p50);
  json.Num("on_p50_ms", on_p50);
  json.Num("ratio", ratio);
  json.Bool("identical", identical);
  json.Bool("pass", pass);
  std::printf("BENCH_JSON %s\n", json.Render().c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace glint::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return glint::bench::Run(smoke);
}
