#include "rules/rule_io.h"

namespace glint::rules {

void WriteTrigger(util::ByteWriter* w, const TriggerSpec& t) {
  w->I32(static_cast<int32_t>(t.channel));
  w->I32(static_cast<int32_t>(t.device));
  w->I32(static_cast<int32_t>(t.cmp));
  w->F64(t.lo);
  w->F64(t.hi);
  w->Str(t.state);
  w->I32(t.direction);
  w->I32(t.has_time ? 1 : 0);
  w->I32(t.hour_lo);
  w->I32(t.hour_hi);
}

bool ReadTrigger(util::ByteReader* r, TriggerSpec* t) {
  int32_t ch, dev, cmp, dir, ht, hlo, hhi;
  if (!r->I32(&ch) || !r->I32(&dev) || !r->I32(&cmp) || !r->F64(&t->lo) ||
      !r->F64(&t->hi) || !r->Str(&t->state) || !r->I32(&dir) ||
      !r->I32(&ht) || !r->I32(&hlo) || !r->I32(&hhi)) {
    return false;
  }
  t->channel = static_cast<Channel>(ch);
  t->device = static_cast<DeviceType>(dev);
  t->cmp = static_cast<Comparator>(cmp);
  t->direction = dir;
  t->has_time = ht != 0;
  t->hour_lo = hlo;
  t->hour_hi = hhi;
  return true;
}

void WriteRule(util::ByteWriter* w, const Rule& rule) {
  w->I32(rule.id);
  w->I32(static_cast<int32_t>(rule.platform));
  w->I32(static_cast<int32_t>(rule.location));
  WriteTrigger(w, rule.trigger);
  w->U32(static_cast<uint32_t>(rule.conditions.size()));
  for (const auto& c : rule.conditions) {
    // Conditions share the trigger wire format (direction fixed at 0).
    TriggerSpec t;
    t.channel = c.channel;
    t.device = c.device;
    t.cmp = c.cmp;
    t.lo = c.lo;
    t.hi = c.hi;
    t.state = c.state;
    t.has_time = c.has_time;
    t.hour_lo = c.hour_lo;
    t.hour_hi = c.hour_hi;
    WriteTrigger(w, t);
  }
  w->U32(static_cast<uint32_t>(rule.actions.size()));
  for (const auto& a : rule.actions) {
    w->I32(static_cast<int32_t>(a.device));
    w->I32(static_cast<int32_t>(a.command));
    w->F64(a.level);
  }
  w->Str(rule.text);
  w->I32(rule.manual_mode_pin ? 1 : 0);
}

bool ReadRule(util::ByteReader* r, Rule* rule) {
  int32_t platform, location, pin;
  if (!r->I32(&rule->id) || !r->I32(&platform) || !r->I32(&location) ||
      !ReadTrigger(r, &rule->trigger)) {
    return false;
  }
  rule->platform = static_cast<Platform>(platform);
  rule->location = static_cast<Location>(location);
  uint32_t nc;
  if (!r->U32(&nc) || nc > r->remaining()) return false;
  rule->conditions.resize(nc);
  for (auto& c : rule->conditions) {
    TriggerSpec t;
    if (!ReadTrigger(r, &t)) return false;
    c.channel = t.channel;
    c.device = t.device;
    c.cmp = t.cmp;
    c.lo = t.lo;
    c.hi = t.hi;
    c.state = t.state;
    c.has_time = t.has_time;
    c.hour_lo = t.hour_lo;
    c.hour_hi = t.hour_hi;
  }
  uint32_t na;
  if (!r->U32(&na) || na > r->remaining()) return false;
  rule->actions.resize(na);
  for (auto& a : rule->actions) {
    int32_t dev, cmd;
    if (!r->I32(&dev) || !r->I32(&cmd) || !r->F64(&a.level)) return false;
    a.device = static_cast<DeviceType>(dev);
    a.command = static_cast<Command>(cmd);
  }
  if (!r->Str(&rule->text)) return false;
  if (!r->I32(&pin)) return false;
  rule->manual_mode_pin = pin != 0;
  return true;
}

}  // namespace glint::rules
