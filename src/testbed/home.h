#pragma once

#include <string>
#include <vector>

#include "graph/event_log.h"
#include "rules/rule.h"
#include "util/rng.h"

namespace glint::testbed {

/// A concrete device instance in the simulated house (Fig. 10 layout).
struct DeviceInstance {
  rules::DeviceType type;
  rules::Location location;
  std::string state;  ///< current state keyword ("on", "open", "active", ...)
};

/// Continuous environment per location plus house-wide signals.
struct Environment {
  double temperature[rules::kNumLocations];  ///< °F per location
  double humidity[rules::kNumLocations];     ///< %RH per location
  bool smoke = false;
  bool present = true;  ///< somebody home
};

/// Discrete-event smart-home simulator: a resident behaviour model drives
/// physical events (motion, doors, presence, temperature drift), an
/// automation engine executes the deployed rules, and everything lands in
/// an event log — the substitute for the paper's real-world testbed
/// (Sec. 4.8, one week of 1,813 events).
class SmartHome {
 public:
  struct Config {
    uint64_t seed = 1337;
    double start_hour = 0;
    /// Probability that a command silently fails (misconfiguration
    /// attacks raise this).
    double command_failure_rate = 0.0;
    /// Max rule-cascade depth per physical event.
    int max_cascade = 6;
  };

  SmartHome(Config config, std::vector<rules::Rule> deployed);

  /// Default Fig. 10 device layout (lights, motion/contact/temperature/
  /// presence sensors, camera, button, plus the actuators rules use).
  static std::vector<DeviceInstance> DefaultLayout();

  /// Advances simulated time by `hours`, emitting resident and automation
  /// events.
  void Simulate(double hours);

  /// Injects an external event (used by the attack models) and runs the
  /// automation cascade it causes.
  void InjectEvent(graph::Event e);

  /// Directly executes a command as if an attacker issued it.
  void InjectCommand(rules::DeviceType device, rules::Location loc,
                     rules::Command cmd);

  double now() const { return now_; }
  const graph::EventLog& log() const { return log_; }
  graph::EventLog* mutable_log() { return &log_; }
  const std::vector<DeviceInstance>& devices() const { return devices_; }
  const Environment& env() const { return env_; }
  const std::vector<rules::Rule>& deployed() const { return deployed_; }

  /// State of the first device of the given type ("" if absent).
  std::string DeviceState(rules::DeviceType type) const;

 private:
  void ResidentStep(double dt);
  void EnvironmentStep(double dt);
  bool NumericTriggerSatisfied(const rules::Rule& r) const;
  void RunCascade(const graph::Event& cause, int depth);
  void ExecuteAction(const rules::ActionSpec& action, rules::Location loc,
                     int source_rule_id, int depth);
  bool ConditionsHold(const rules::Rule& r) const;
  DeviceInstance* FindDevice(rules::DeviceType type, rules::Location loc);

  Config config_;
  Rng rng_;
  double now_;
  std::vector<rules::Rule> deployed_;
  std::vector<DeviceInstance> devices_;
  Environment env_;
  graph::EventLog log_;
};

}  // namespace glint::testbed
