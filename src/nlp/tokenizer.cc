#include "nlp/tokenizer.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

namespace glint::nlp {
namespace {

// Multi-word expressions normalised into lexicon entries. Checked greedily
// over (w1, w2) bigrams after basic tokenization.
const std::unordered_map<std::string, std::string>& Bigrams() {
  static const auto* m = new std::unordered_map<std::string, std::string>({
      {"turn on", "turn_on"},
      {"turn off", "turn_off"},
      {"switch on", "switch_on"},
      {"switch off", "switch_off"},
      {"shut off", "shut_off"},
      {"living room", "living_room"},
      {"motion sensor", "motion_sensor"},
      {"contact sensor", "contact_sensor"},
      {"temperature sensor", "temperature_sensor"},
      {"humidity sensor", "humidity_sensor"},
      {"presence sensor", "presence_sensor"},
      {"leak sensor", "leak_sensor"},
      {"smoke alarm", "smoke_alarm"},
      {"smoke detector", "smoke_alarm"},
      {"co detector", "co_detector"},
      {"air conditioner", "ac"},
      {"coffee maker", "coffee_maker"},
      {"vacuum cleaner", "vacuum"},
      {"robot vacuum", "vacuum"},
      {"power usage", "power_usage"},
      {"water level", "water_level"},
      {"home state", "home_obj_state"},
      {"sun rise", "sunrise"},
      {"sun set", "sunset"},
  });
  return *m;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

std::vector<Token> Tokenizer::Tokenize(const std::string& sentence) {
  // Pass 1: raw lowercase word/number tokens.
  std::vector<Token> raw;
  size_t i = 0;
  const size_t n = sentence.size();
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(sentence[i]);
    if (IsWordChar(static_cast<char>(c))) {
      size_t start = i;
      std::string tok;
      while (i < n && IsWordChar(sentence[i])) {
        tok.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(sentence[i]))));
        ++i;
      }
      raw.push_back({tok, start});
    } else if (c == 0xC2 && i + 1 < n &&
               static_cast<unsigned char>(sentence[i + 1]) == 0xB0) {
      // UTF-8 degree sign: normalise "°F"/"°C" to the token "degrees".
      size_t start = i;
      i += 2;
      if (i < n && (sentence[i] == 'F' || sentence[i] == 'f' ||
                    sentence[i] == 'C' || sentence[i] == 'c')) {
        ++i;
      }
      raw.push_back({"degrees", start});
    } else {
      ++i;
    }
  }

  // Pass 2: merge known bigrams.
  std::vector<Token> out;
  for (size_t k = 0; k < raw.size(); ++k) {
    if (k + 1 < raw.size()) {
      auto it = Bigrams().find(raw[k].text + " " + raw[k + 1].text);
      if (it != Bigrams().end()) {
        out.push_back({it->second, raw[k].offset});
        ++k;
        continue;
      }
    }
    out.push_back(raw[k]);
  }
  return out;
}

std::vector<std::string> Tokenizer::Words(const std::string& sentence) {
  std::vector<std::string> out;
  for (auto& t : Tokenize(sentence)) out.push_back(std::move(t.text));
  return out;
}

}  // namespace glint::nlp
