#pragma once

#include <vector>

#include "util/rng.h"
#include "util/vecmath.h"

namespace glint::ml {

/// Lloyd's K-means with k-means++ initialisation (used for the Fig. 9
/// cluster visualisation of contrastive graph embeddings).
class KMeans {
 public:
  struct Params {
    int k = 2;
    int max_iters = 100;
    uint64_t seed = 23;
  };

  KMeans() : KMeans(Params()) {}
  explicit KMeans(Params params) : params_(params) {}

  /// Clusters `xs`; afterwards centroids() and Assign() are valid.
  void Fit(const std::vector<FloatVec>& xs);

  /// Nearest-centroid assignment for one point.
  int Assign(const FloatVec& x) const;

  /// Assignments for the training data.
  const std::vector<int>& labels() const { return labels_; }

  const std::vector<FloatVec>& centroids() const { return centroids_; }

  /// Total within-cluster sum of squared distances (inertia).
  double Inertia(const std::vector<FloatVec>& xs) const;

 private:
  Params params_;
  std::vector<FloatVec> centroids_;
  std::vector<int> labels_;
};

}  // namespace glint::ml
