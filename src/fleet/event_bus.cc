#include "fleet/event_bus.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"

namespace glint::fleet {

EventBus::EventBus(ShardedFleet* fleet, Config config)
    : fleet_(fleet), config_(config) {
  GLINT_CHECK(fleet_ != nullptr);
  GLINT_CHECK(config_.capacity >= 1);
  const int n = fleet_->num_shards();
  queues_.reserve(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    queues_.push_back(std::make_unique<ShardQueue>());
  }
  if (!config_.manual_drain) {
    consumers_.reserve(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) {
      consumers_.emplace_back([this, k] { ConsumerLoop(k); });
    }
  }
}

EventBus::~EventBus() { Stop(); }

Status EventBus::Post(BusMessage msg) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("event bus is stopped");
  }
  const int k = fleet_->ShardOf(msg.home);
  ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  {
    std::unique_lock<std::mutex> lock(sq.mu);
    if (sq.q.size() >= config_.capacity) {
      if (config_.policy == Backpressure::kReject) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        GLINT_OBS_COUNT("glint.fleet.bus.rejected", 1);
        return Status::FailedPrecondition(
            "shard " + std::to_string(k) + " queue full (" +
            std::to_string(config_.capacity) + ")");
      }
      GLINT_OBS_COUNT("glint.fleet.bus.blocked", 1);
      sq.can_push.wait(lock, [&] {
        return sq.q.size() < config_.capacity ||
               stopping_.load(std::memory_order_acquire);
      });
    }
    // Re-check under sq.mu immediately before the push: a consumer exits
    // only after observing stopping+empty under this same lock, so a
    // stopping_ read of false here proves the consumer is still alive to
    // drain what we push. Without this, Stop() racing between the entry
    // check and the push could strand an accepted message forever.
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("event bus is stopped");
    }
    sq.q.push_back(std::move(msg));
    sq.high_water = std::max(sq.high_water, sq.q.size());
  }
  GLINT_OBS_COUNT("glint.fleet.bus.posted", 1);
  sq.can_pop.notify_one();
  return Status::OK();
}

void EventBus::ConsumerLoop(int k) {
  ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  for (;;) {
    BusMessage msg;
    {
      std::unique_lock<std::mutex> lock(sq.mu);
      sq.can_pop.wait(lock, [&] {
        return !sq.q.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (sq.q.empty()) return;  // stopping and fully drained
      msg = std::move(sq.q.front());
      sq.q.pop_front();
      sq.applying = true;
    }
    sq.can_push.notify_one();
    Status st = Apply(k, msg);
    if (!st.ok()) RecordApplyError(k, st);
    {
      std::lock_guard<std::mutex> lock(sq.mu);
      sq.applying = false;
      if (sq.q.empty()) sq.drained.notify_all();
    }
  }
}

Status EventBus::Apply(int k, const BusMessage& msg) {
  core::ServingEngine& engine = fleet_->shard(k);
  switch (msg.kind) {
    case BusMessage::Kind::kAddHome:
      return engine.TryAddHome(msg.home, msg.rules).status();
    case BusMessage::Kind::kAddRule:
      return engine.TryAddRule(msg.home, msg.rule);
    case BusMessage::Kind::kRemoveRule:
      return engine.TryRemoveRule(msg.home, msg.rule_id);
    case BusMessage::Kind::kEvent:
      return engine.TryOnEvent(msg.home, msg.event);
    case BusMessage::Kind::kTask:
      msg.task();
      return Status::OK();
  }
  return Status::Internal("unreachable bus message kind");
}

Status EventBus::RunOnShard(int k, std::function<void()> fn) {
  GLINT_CHECK(k >= 0 && k < static_cast<int>(queues_.size()));
  GLINT_CHECK(fn != nullptr);
  if (config_.manual_drain) {
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("event bus is stopped");
    }
    DrainOnce(k);
    fn();
    return Status::OK();
  }
  struct Done {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  // Shared, not stack-referenced: the consumer finishes with the task
  // strictly after signalling, by which time this frame may be gone.
  auto done = std::make_shared<Done>();
  BusMessage msg;
  msg.kind = BusMessage::Kind::kTask;
  msg.task = [fn = std::move(fn), done] {
    fn();
    {
      std::lock_guard<std::mutex> lock(done->mu);
      done->done = true;
    }
    done->cv.notify_all();
  };
  ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  {
    // No capacity check: tasks are control-plane, bounded by the callers
    // blocked right here — never by queue depth, which would let a full
    // queue under kReject starve reads. Same push/Stop discipline as
    // Post: re-check stopping_ under sq.mu so a task never strands (and
    // deadlocks its caller) behind an exiting consumer.
    std::lock_guard<std::mutex> lock(sq.mu);
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("event bus is stopped");
    }
    sq.q.push_back(std::move(msg));
    sq.high_water = std::max(sq.high_water, sq.q.size());
  }
  sq.can_pop.notify_one();
  std::unique_lock<std::mutex> lock(done->mu);
  done->cv.wait(lock, [&] { return done->done; });
  return Status::OK();
}

void EventBus::RecordApplyError(int k, const Status& st) {
  apply_errors_.fetch_add(1, std::memory_order_relaxed);
  GLINT_OBS_COUNT("glint.fleet.bus.apply_errors", 1);
  ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  std::lock_guard<std::mutex> lock(sq.mu);
  if (sq.first_error.ok()) sq.first_error = st;
}

void EventBus::FlushShard(int k) {
  ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  if (config_.manual_drain) {
    DrainOnce(k);
    return;
  }
  std::unique_lock<std::mutex> lock(sq.mu);
  sq.drained.wait(lock, [&] { return sq.q.empty() && !sq.applying; });
}

void EventBus::Flush() {
  for (int k = 0; k < fleet_->num_shards(); ++k) FlushShard(k);
}

void EventBus::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopping/stopped; joins below have happened or are racing in
    // the thread that won — nothing to do for idempotence.
    return;
  }
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> lock(q->mu);
    q->can_pop.notify_all();
    q->can_push.notify_all();
  }
  for (auto& t : consumers_) {
    if (t.joinable()) t.join();
  }
  // Consumers exit only when their queue is empty, and every push
  // re-checks stopping_ under the queue lock (the lock a consumer's exit
  // decision is made under), so everything accepted before Stop() has
  // been applied — an OK Post is never silently dropped.
}

size_t EventBus::DrainOnce(int k, size_t max) {
  GLINT_CHECK(config_.manual_drain);
  ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  size_t applied = 0;
  while (applied < max) {
    BusMessage msg;
    {
      std::lock_guard<std::mutex> lock(sq.mu);
      if (sq.q.empty()) break;
      msg = std::move(sq.q.front());
      sq.q.pop_front();
    }
    sq.can_push.notify_one();
    Status st = Apply(k, msg);
    if (!st.ok()) RecordApplyError(k, st);
    ++applied;
  }
  return applied;
}

size_t EventBus::queue_high_water(int k) const {
  const ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  std::lock_guard<std::mutex> lock(sq.mu);
  return sq.high_water;
}

uint64_t EventBus::rejected() const {
  return rejected_.load(std::memory_order_relaxed);
}

uint64_t EventBus::apply_errors() const {
  return apply_errors_.load(std::memory_order_relaxed);
}

Status EventBus::FirstError(int k) const {
  const ShardQueue& sq = *queues_[static_cast<size_t>(k)];
  std::lock_guard<std::mutex> lock(sq.mu);
  return sq.first_error;
}

}  // namespace glint::fleet
