#include "fleet/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/obs.h"

namespace glint::fleet {

FleetServer::FleetServer(ShardedFleet* fleet, Config config)
    : fleet_(fleet), config_(config) {
  GLINT_CHECK(fleet_ != nullptr);
}

FleetServer::~FleetServer() { Stop(); }

Status FleetServer::Start() {
  GLINT_CHECK(listen_fd_.load() < 0);  // Start is one-shot
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError("bind port " +
                                      std::to_string(config_.port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, config_.backlog) != 0) {
    const Status st =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status st =
        Status::IOError("getsockname: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_.store(fd, std::memory_order_release);
  bus_ = std::make_unique<EventBus>(fleet_, config_.bus);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FleetServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    // Closing the listener wakes accept(); the loop then exits.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (bus_ != nullptr) bus_->Stop();  // drains everything accepted
}

void FleetServer::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // Stop() already retired the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal: either way, stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    GLINT_OBS_COUNT("glint.fleet.server.connections", 1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void FleetServer::ServeConnection(int fd) {
  std::vector<char> payload;
  for (;;) {
    Status st = wire::RecvFrame(fd, &payload);
    if (st.code() == StatusCode::kNotFound) break;  // clean close
    if (!st.ok()) {
      // Malformed or torn frame: answer if the pipe still works, then
      // drop the connection — the stream cannot be resynchronized.
      GLINT_OBS_COUNT("glint.fleet.server.bad_frames", 1);
      (void)wire::SendFrame(fd, wire::EncodeReply(wire::AckFor(st)));
      break;
    }
    wire::Request req;
    st = wire::DecodeRequest(payload, &req);
    wire::Reply reply;
    if (!st.ok()) {
      // The frame itself was intact, so the stream is still in sync: an
      // unparseable body earns an error ack, not a disconnect.
      GLINT_OBS_COUNT("glint.fleet.server.bad_requests", 1);
      reply = wire::AckFor(st);
    } else {
      GLINT_OBS_COUNT("glint.fleet.server.requests", 1);
      reply = Dispatch(req);
    }
    if (!wire::SendFrame(fd, wire::EncodeReply(reply)).ok()) break;
  }
  {
    // Forget the fd before closing it: Stop() must never shutdown() a
    // number the OS has already recycled for an unrelated file.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_.erase(conn_fds_.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  ::close(fd);
}

wire::Reply FleetServer::Dispatch(const wire::Request& req) {
  switch (req.type) {
    case wire::MsgType::kPing: {
      wire::Reply reply;
      reply.type = wire::MsgType::kPong;
      return reply;
    }
    case wire::MsgType::kAddHome:
    case wire::MsgType::kAddRule:
    case wire::MsgType::kRemoveRule:
    case wire::MsgType::kEvent: {
      BusMessage msg;
      msg.home = req.home;
      switch (req.type) {
        case wire::MsgType::kAddHome:
          msg.kind = BusMessage::Kind::kAddHome;
          msg.rules = req.rules;
          break;
        case wire::MsgType::kAddRule:
          msg.kind = BusMessage::Kind::kAddRule;
          msg.rule = req.rule;
          break;
        case wire::MsgType::kRemoveRule:
          msg.kind = BusMessage::Kind::kRemoveRule;
          msg.rule_id = req.rule_id;
          break;
        default:
          msg.kind = BusMessage::Kind::kEvent;
          msg.event = req.event;
          break;
      }
      return wire::AckFor(bus_->Post(std::move(msg)));
    }
    case wire::MsgType::kInspect: {
      // Drain the home's shard first: the verdict must cover every event
      // the bus already accepted for it.
      bus_->FlushShard(fleet_->ShardOf(req.home));
      Result<core::ThreatWarning> w =
          fleet_->TryInspect(req.home, req.now_hours);
      wire::Reply reply;
      reply.type = wire::MsgType::kWarning;
      reply.code = static_cast<int32_t>(w.status().code());
      if (!w.ok()) {
        reply.message = w.status().ToString();
      } else {
        reply.threat = w.value().threat;
        reply.drifting = w.value().drifting;
        reply.confidence = w.value().confidence;
        reply.rendered = w.value().Render();
      }
      return reply;
    }
    case wire::MsgType::kStats: {
      bus_->Flush();
      fleet_->PublishShardGauges();
      const auto agg = fleet_->AggregateStats();
      wire::Reply reply;
      reply.type = wire::MsgType::kStatsReply;
      reply.homes = fleet_->num_homes();
      reply.rules = agg.rules;
      reply.events = agg.events;
      reply.inspects = agg.inspects;
      reply.bus_rejected = bus_->rejected();
      reply.bus_apply_errors = bus_->apply_errors();
      return reply;
    }
    default:
      return wire::AckFor(Status::InvalidArgument(
          "not a request type: " +
          std::to_string(static_cast<int>(req.type))));
  }
}

}  // namespace glint::fleet
