#pragma once

#include <string>

#include "rules/rule.h"
#include "util/rng.h"

namespace glint::rules {

/// Renders the natural-language description of a rule in the phrasing style
/// of its platform (IFTTT "If X, then Y.", SmartThings app descriptions,
/// Alexa voice skills, Google Assistant routines, Home Assistant
/// blueprints). The renderer injects controlled noise — synonym swaps,
/// optional brand names, article variation — so the corpus exhibits the
/// "large volume of noisy data with disparate formats" the paper describes.
class PhrasingEngine {
 public:
  explicit PhrasingEngine(uint64_t seed = 99) : rng_(seed) {}

  /// Produces a full description for the rule and stores it in `rule->text`.
  void Render(Rule* rule);

  /// Renders just a trigger / condition / action span (used for tests).
  std::string RenderTrigger(const TriggerSpec& t);
  std::string RenderCondition(const ConditionSpec& c);
  std::string RenderAction(const ActionSpec& a);

 private:
  std::string VerbFor(Command cmd);
  std::string DeviceNoun(DeviceType d);

  Rng rng_;
};

}  // namespace glint::rules
