#include "gnn/transfer.h"

namespace glint::gnn {

void TransferFineTune(GraphModel* model, const std::vector<GnnGraph>& target,
                      const TransferConfig& config) {
  auto groups = model->ParameterGroups();
  const int total = static_cast<int>(groups.size());
  int freeze = config.freeze_groups;
  if (freeze < 0) freeze = total - 1;
  freeze = std::min(freeze, total - 1);  // never freeze the head-only model

  for (int gi = 0; gi < total; ++gi) {
    for (Parameter* p : groups[static_cast<size_t>(gi)]) {
      p->frozen = gi < freeze;
    }
  }
  Trainer trainer(config.fine_tune);
  trainer.TrainSupervised(model, target);
  for (auto& group : groups) {
    for (Parameter* p : group) p->frozen = false;
  }
}

}  // namespace glint::gnn
