#include "correlation/features.h"

#include "nlp/dep_parser.h"
#include "nlp/dtw.h"
#include "nlp/lexicon.h"
#include "util/status.h"

namespace glint::correlation {
namespace {

// Concatenated nouns/verbs over the action clauses of a parsed rule.
void ActionNounsVerbs(const nlp::ParsedRule& parsed,
                      std::vector<std::string>* nouns,
                      std::vector<std::string>* verbs) {
  for (const nlp::Clause* c : parsed.actions()) {
    nouns->insert(nouns->end(), c->nouns.begin(), c->nouns.end());
    verbs->insert(verbs->end(), c->verbs.begin(), c->verbs.end());
  }
}

void TriggerNounsVerbs(const nlp::ParsedRule& parsed,
                       std::vector<std::string>* nouns,
                       std::vector<std::string>* verbs) {
  const nlp::Clause* t = parsed.trigger();
  if (t == nullptr && !parsed.clauses.empty()) t = &parsed.clauses[0];
  if (t == nullptr) return;
  nouns->insert(nouns->end(), t->nouns.begin(), t->nouns.end());
  verbs->insert(verbs->end(), t->verbs.begin(), t->verbs.end());
}

bool AnySynonym(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  const auto& lex = nlp::Lexicon::Instance();
  for (const auto& wa : a) {
    for (const auto& wb : b) {
      if (lex.AreSynonyms(wa, wb)) return true;
    }
  }
  return false;
}

bool AnyHypernym(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  const auto& lex = nlp::Lexicon::Instance();
  for (const auto& wa : a) {
    for (const auto& wb : b) {
      if (lex.HypernymRelated(wa, wb)) return true;
    }
  }
  return false;
}

bool AnyMeronym(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  const auto& lex = nlp::Lexicon::Instance();
  for (const auto& wa : a) {
    for (const auto& wb : b) {
      if (lex.MeronymRelated(wa, wb)) return true;
    }
  }
  return false;
}

// Shared-channel indicator: do the two word sets touch a common physical
// channel? (Captures "heater" ~ "temperature" style couplings that pure
// lexical relations miss.)
bool SharedChannel(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  const auto& lex = nlp::Lexicon::Instance();
  for (const auto& wa : a) {
    const std::string& ca = lex.ChannelOf(wa);
    if (ca.empty()) continue;
    for (const auto& wb : b) {
      if (lex.ChannelOf(wb) == ca) return true;
    }
  }
  return false;
}

}  // namespace

FloatVec FeatureExtractor::ExtractPair(const rules::Rule& src,
                                       const rules::Rule& dst) const {
  const nlp::ParsedRule ps = nlp::DepParser::Parse(src.text);
  const nlp::ParsedRule pd = nlp::DepParser::Parse(dst.text);

  std::vector<std::string> a_nouns, a_verbs, t_nouns, t_verbs;
  ActionNounsVerbs(ps, &a_nouns, &a_verbs);   // PoS(A), line 3
  TriggerNounsVerbs(pd, &t_nouns, &t_verbs);  // PoS(T), line 2

  FloatVec out;
  out.reserve(Dim());
  // V1 — DTW similarities (line 4).
  out.push_back(static_cast<float>(nlp::DtwWordDistance(a_verbs, t_verbs,
                                                        *model_)));
  out.push_back(static_cast<float>(nlp::DtwWordDistance(a_nouns, t_nouns,
                                                        *model_)));
  // V2 — binary verb relations (line 5).
  out.push_back(AnySynonym(a_verbs, t_verbs) ? 1.f : 0.f);
  out.push_back(AnyHypernym(a_verbs, t_verbs) ? 1.f : 0.f);
  // V3 — binary object relations (line 6).
  out.push_back(AnySynonym(a_nouns, t_nouns) ? 1.f : 0.f);
  out.push_back(AnyMeronym(a_nouns, t_nouns) ? 1.f : 0.f);
  std::vector<std::string> a_all(a_nouns);
  a_all.insert(a_all.end(), a_verbs.begin(), a_verbs.end());
  std::vector<std::string> t_all(t_nouns);
  t_all.insert(t_all.end(), t_verbs.begin(), t_verbs.end());
  out.push_back(SharedChannel(a_all, t_all) ? 1.f : 0.f);
  // V4 — E_T + E_A (line 7).
  FloatVec ea = model_->Average(a_all);
  FloatVec et = model_->Average(t_all);
  if (ea.empty()) ea.assign(model_->dim(), 0.f);
  if (et.empty()) et.assign(model_->dim(), 0.f);
  for (size_t i = 0; i < ea.size(); ++i) out.push_back(ea[i] + et[i]);
  GLINT_CHECK(out.size() == Dim());
  return out;
}

ml::Dataset BuildPairDataset(const std::vector<rules::Rule>& corpus,
                             const FeatureExtractor& extractor,
                             const PairDatasetConfig& config) {
  GLINT_CHECK(corpus.size() >= 2);
  Rng rng(config.seed);
  ml::Dataset ds;
  int pos = 0, neg = 0;
  int attempts = 0;
  const int max_attempts = 400 * (config.num_positive + config.num_negative);
  while ((pos < config.num_positive || neg < config.num_negative) &&
         attempts++ < max_attempts) {
    const auto& a = corpus[rng.Below(corpus.size())];
    const auto& b = corpus[rng.Below(corpus.size())];
    if (a.id == b.id) continue;
    const bool correlated = rules::RuleTriggersRule(a, b);
    if (correlated && pos < config.num_positive) {
      ds.Add(extractor.ExtractPair(a, b), 1);
      ++pos;
    } else if (!correlated && neg < config.num_negative) {
      ds.Add(extractor.ExtractPair(a, b), 0);
      ++neg;
    }
  }
  return ds;
}

}  // namespace glint::correlation
