#include "util/table.h"

#include <cstdio>

#include "util/status.h"
#include "util/string_utils.h"

namespace glint {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  GLINT_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) cells.push_back(StrFormat("%.*f", precision, v));
  AddRow(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace glint
