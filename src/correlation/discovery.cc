#include "correlation/discovery.h"

namespace glint::correlation {

void CorrelationDiscovery::Train(const ml::Dataset& pairs) {
  const auto weights = ml::BalancedClassWeights(pairs.y, 2);
  mlp_.Fit(pairs, weights);
  forest_.Fit(pairs, weights);
  knn_.Fit(pairs, weights);
  trained_ = true;
}

double CorrelationDiscovery::VoteShare(const rules::Rule& src,
                                       const rules::Rule& dst) const {
  GLINT_CHECK(trained_);
  const FloatVec f = extractor_.ExtractPair(src, dst);
  int votes = 0;
  votes += mlp_.Predict(f) == 1 ? 1 : 0;
  votes += forest_.Predict(f) == 1 ? 1 : 0;
  votes += knn_.Predict(f) == 1 ? 1 : 0;
  return votes / 3.0;
}

bool CorrelationDiscovery::Correlated(const rules::Rule& src,
                                      const rules::Rule& dst) const {
  return VoteShare(src, dst) >= 0.5;
}

}  // namespace glint::correlation
