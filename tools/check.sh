#!/usr/bin/env bash
# Tier-1 check: Release build, full test suite, throughput smoke bench, and
# a ThreadSanitizer pass over the thread pool.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

# Smoke the throughput bench with a 2-thread pool (exercises the parallel
# build/train/inference paths end to end).
GLINT_THREADS=2 ./build/bench/bench_throughput --smoke

# Smoke the serving bench (cold full-rebuild vs warm incremental Inspect
# through a DeploymentSession; exits non-zero if warm != cold).
GLINT_THREADS=2 ./build/bench/bench_serving --smoke

# Data-race check: build only the thread-pool targets under TSAN and run
# the stress driver.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGLINT_TSAN=ON
cmake --build build-tsan -j"${JOBS}" --target threadpool_stress
./build-tsan/tests/threadpool_stress

echo "check.sh: all stages passed"
