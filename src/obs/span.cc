#include "obs/span.h"

#include <algorithm>
#include <chrono>

namespace glint::obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Per-thread bounded span buffer. Push is owner-thread-only but Collect /
/// Clear run from other threads, so every access takes the ring's mutex —
/// spans are stage-scale (>= microseconds), an uncontended lock is noise.
class TraceRing {
 public:
  explicit TraceRing(uint32_t thread) : thread_(thread) {}

  void Push(const char* stage, uint64_t start_ns, uint64_t dur_ns) {
    std::lock_guard<std::mutex> lk(mu_);
    TraceEvent e{stage, start_ns, dur_ns, thread_};
    if (events_.size() < kTraceRingCapacity) {
      events_.push_back(e);
    } else {
      events_[head_] = e;
      head_ = (head_ + 1) % kTraceRingCapacity;
    }
  }

  void AppendTo(std::vector<TraceEvent>* out) const {
    std::lock_guard<std::mutex> lk(mu_);
    // Oldest-first: [head_, end) then [0, head_).
    for (size_t i = head_; i < events_.size(); ++i) out->push_back(events_[i]);
    for (size_t i = 0; i < head_; ++i) out->push_back(events_[i]);
  }

  void Clear() {
    std::lock_guard<std::mutex> lk(mu_);
    events_.clear();
    head_ = 0;
  }

 private:
  const uint32_t thread_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t head_ = 0;
};

struct RingDirectory {
  std::mutex mu;
  /// Rings live for the process lifetime (a thread's spans remain
  /// collectable after it exits); bounded by peak thread count.
  std::vector<std::unique_ptr<TraceRing>> rings;
};

RingDirectory& Directory() {
  static RingDirectory* dir = new RingDirectory();
  return *dir;
}

TraceRing& LocalRing() {
  thread_local TraceRing* ring = [] {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lk(dir.mu);
    dir.rings.push_back(
        std::make_unique<TraceRing>(static_cast<uint32_t>(dir.rings.size())));
    return dir.rings.back().get();
  }();
  return *ring;
}

}  // namespace

Span::~Span() {
  if (stage_ == nullptr) return;
  const uint64_t dur = NowNs() - start_ns_;
  if (hist_ != nullptr) hist_->Observe(double(dur) * 1e-6);
  LocalRing().Push(stage_, start_ns_, dur);
}

std::vector<TraceEvent> CollectTrace() {
  std::vector<TraceEvent> out;
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lk(dir.mu);
  for (const auto& ring : dir.rings) ring->AppendTo(&out);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.thread < b.thread;
                   });
  return out;
}

void ClearTrace() {
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lk(dir.mu);
  for (const auto& ring : dir.rings) ring->Clear();
}

}  // namespace glint::obs
