#pragma once

#include <string>
#include <vector>

#include "rules/rule.h"
#include "util/binio.h"

namespace glint::graph {

/// One event-log record: time, object (device + location) and new status —
/// the "three basic elements" the paper fuses for online graph construction
/// (Sec. 3.2.2).
struct Event {
  double time_hours = 0;  ///< hours since epoch of the trace
  rules::DeviceType device = rules::DeviceType::kLight;
  rules::Location location = rules::Location::kAny;
  std::string state;      ///< "on", "open", "active", ...
  rules::Platform platform = rules::Platform::kSmartThings;
  /// Id of the rule whose action produced the event (0 = external/physical
  /// cause). Ground truth for the testbed; detectors never read it.
  int source_rule_id = 0;
};

/// A chronologically ordered event trace.
class EventLog {
 public:
  void Append(Event e);

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Events within [t - window, t].
  std::vector<Event> Window(double t, double window_hours) const;

  /// Latest state of a device at time t ("" if never reported).
  std::string StateAt(rules::DeviceType device, rules::Location loc,
                      double t) const;

  /// Render as "2022-05-08 20:08:30  Door is locked (Alexa)"-style lines.
  std::vector<std::string> Render() const;

 private:
  std::vector<Event> events_;
};

/// True when `e` can fire `trigger` of rule `r` (device/state/channel match
/// in scope). Time-of-day triggers match when the event hour is in window.
bool EventFiresTrigger(const Event& e, const rules::Rule& r);

/// Binary codec for one Event (WAL records, serving snapshots). ReadEvent
/// returns false on truncation.
void WriteEvent(util::ByteWriter* w, const Event& e);
bool ReadEvent(util::ByteReader* r, Event* e);

}  // namespace glint::graph
