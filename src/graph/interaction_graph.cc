#include "graph/interaction_graph.h"

#include "util/status.h"

namespace glint::graph {

const char* ThreatTypeName(ThreatType t) {
  switch (t) {
    case ThreatType::kNone: return "none";
    case ThreatType::kConditionBypass: return "condition_bypass";
    case ThreatType::kConditionBlock: return "condition_block";
    case ThreatType::kActionRevert: return "action_revert";
    case ThreatType::kActionConflict: return "action_conflict";
    case ThreatType::kActionLoop: return "action_loop";
    case ThreatType::kGoalConflict: return "goal_conflict";
    case ThreatType::kActionBlock: return "action_block";
    case ThreatType::kActionAblation: return "action_ablation";
    case ThreatType::kTriggerIntake: return "trigger_intake";
    case ThreatType::kConditionDuplicate: return "condition_duplicate";
  }
  return "?";
}

int NodeTypeOf(rules::Platform p) {
  switch (p) {
    case rules::Platform::kAlexa:
    case rules::Platform::kGoogleAssistant:
      return 1;  // voice platforms -> sentence-encoder feature space
    default:
      return 0;  // text platforms -> word-vector feature space
  }
}

int InteractionGraph::AddNode(Node node) {
  nodes_.push_back(std::move(node));
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

void InteractionGraph::AddEdge(int src, int dst) {
  GLINT_CHECK(src >= 0 && src < num_nodes());
  GLINT_CHECK(dst >= 0 && dst < num_nodes());
  if (HasEdge(src, dst)) return;
  edges_.push_back({src, dst});
  out_[static_cast<size_t>(src)].push_back(dst);
  in_[static_cast<size_t>(dst)].push_back(src);
}

const std::vector<int>& InteractionGraph::OutNeighbors(int v) const {
  return out_[static_cast<size_t>(v)];
}

const std::vector<int>& InteractionGraph::InNeighbors(int v) const {
  return in_[static_cast<size_t>(v)];
}

bool InteractionGraph::HasEdge(int src, int dst) const {
  for (int n : out_[static_cast<size_t>(src)]) {
    if (n == dst) return true;
  }
  return false;
}

bool InteractionGraph::IsHeterogeneous() const {
  if (nodes_.empty()) return false;
  const int t0 = nodes_[0].type;
  for (const auto& n : nodes_) {
    if (n.type != t0) return true;
  }
  return false;
}

bool InteractionGraph::IsWeaklyConnected() const {
  if (nodes_.size() <= 1) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> stack{0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    auto visit = [&](int u) {
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = true;
        ++count;
        stack.push_back(u);
      }
    };
    for (int u : out_[static_cast<size_t>(v)]) visit(u);
    for (int u : in_[static_cast<size_t>(v)]) visit(u);
  }
  return count == nodes_.size();
}

}  // namespace glint::graph
