// Regenerates Figure 8: heterogeneous graph classification with HGSL,
// MAGCN, MAGXN and ITGNN on the 5-platform dataset.

#include <cstdio>
#include <ctime>

#include "bench_common.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT

int main() {
  Banner("Figure 8: heterogeneous graph classification", "Fig. 8");
  auto corpus = DefaultCorpus();
  // 1:10 scale of the paper's 12,758 labeled heterogeneous graphs.
  auto graphs = gnn::ToGnnGraphs(BuildGraphs(corpus, 1280, 81));
  int vul = 0;
  for (const auto& g : graphs) vul += g.label;
  std::printf("dataset: %zu heterogeneous graphs, %d vulnerable (%.1f%%)\n",
              graphs.size(), vul,
              100.0 * vul / static_cast<double>(graphs.size()));

  struct PaperRow {
    const char* model;
    double acc, prec, rec, f1;
  };
  const PaperRow paper[] = {
      {"HGSL", 92.9, 92.8, 92.9, 92.8},
      {"MAGCN", 90.2, 90.1, 90.2, 90.1},
      {"MAGXN", 81.7, 82.0, 81.7, 81.5},
      {"ITGNN", 95.5, 95.9, 95.6, 95.6},
  };

  const int kTrials = 2;
  TablePrinter t({"model", "accuracy", "precision", "recall", "F1",
                  "paper acc"});
  for (const auto& row : paper) {
    ml::Metrics sum;
    const std::clock_t t0 = std::clock();
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(800 + static_cast<uint64_t>(trial));
      std::vector<gnn::GnnGraph> train, test;
      gnn::SplitGraphs(graphs, 0.8, &rng, &train, &test);
      auto model = MakeHeteroModel(row.model, 42 + static_cast<uint64_t>(trial));
      gnn::TrainConfig tc;
      tc.epochs = 12;
      tc.seed = 5000 + static_cast<uint64_t>(trial);
      gnn::Trainer trainer(tc);
      trainer.TrainSupervised(model.get(), train);
      auto m = gnn::Trainer::Evaluate(model.get(), test);
      sum.accuracy += m.accuracy;
      sum.precision += m.precision;
      sum.recall += m.recall;
      sum.f1 += m.f1;
    }
    const double inv = 100.0 / kTrials;
    t.AddRow({row.model, StrFormat("%.1f", sum.accuracy * inv),
              StrFormat("%.1f", sum.precision * inv),
              StrFormat("%.1f", sum.recall * inv),
              StrFormat("%.1f", sum.f1 * inv), StrFormat("%.1f", row.acc)});
    std::printf("  %s done (%.0fs)\n", row.model,
                static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
  }
  t.Print();
  std::printf("paper shape to check: ITGNN leads; HGSL and MAGCN are\n"
              "competitive; MAGXN trails (over-parameterized, Sec. 4.5's\n"
              "\"no free lunch\" discussion).\n");
  return 0;
}
