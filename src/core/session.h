#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.h"
#include "gnn/ggraph.h"
#include "graph/live_graph.h"

namespace glint::core {

/// Per-home mutable serving state: the online half of the Glint split.
///
/// A session owns a LiveGraph (incrementally maintained rules, pairwise
/// correlations, and event-window edge liveness) plus two caches keyed by
/// the exact graph structure (rule identity hashes + directed edge list):
///   - a tensorization cache (GnnGraphCache), so an Inspect whose graph
///     matches a recent one skips ToGnnGraph;
///   - a verdict cache, so a no-change Inspect skips straight to the
///     previously computed ThreatWarning.
///
/// Determinism: Inspect(now) is bit-identical to the cold pipeline
///   GraphBuilder::BuildRealTime(CurrentRules(), log, now) -> Analyze
/// under the same edge predicate, and InspectStatic() to
///   BuildFromRules(CurrentRules()) -> Analyze.
/// Cache keys are compared exactly, so hits can only return what the cold
/// path would recompute.
///
/// Thread model: a session is single-threaded, but any number of sessions
/// may run concurrently over one shared (const) TrainedDetector.
class DeploymentSession {
 public:
  struct Config {
    /// Sliding event window (Sec. 3.2.2 chronological pruning); matches the
    /// BuildRealTime default.
    double window_hours = 3.0;
    /// Entries kept in the tensorization / verdict caches.
    size_t cache_capacity = 4;
  };

  explicit DeploymentSession(const TrainedDetector* detector)
      : DeploymentSession(detector, Config()) {}
  DeploymentSession(const TrainedDetector* detector, Config config);

  /// Deploys a rule (O(n) incremental pair-row update). Returns its node
  /// index.
  int AddRule(const rules::Rule& rule);

  /// Retires the rule with this id. Returns false if absent.
  bool RemoveRule(int rule_id);

  /// Ingests one event-log record.
  void OnEvent(const graph::Event& e);

  /// Online inspection at time `now` (steps 4-6 of Fig. 2) over the
  /// event-pruned live graph.
  ThreatWarning Inspect(double now_hours);

  /// Split inspection for batched serving. BeginInspect runs everything up
  /// to (but excluding) the model analysis: counters, cache-key build,
  /// verdict-cache lookup, and on a miss the materialize + tensorize steps.
  /// The caller then analyzes `gg`/`graph` (alone or inside a batch) and
  /// hands the warning to FinishInspect, which records it in the verdict
  /// cache and returns it. Contract: no session mutation (AddRule /
  /// RemoveRule / OnEvent / Inspect) may happen between the two calls, and
  /// every uncached BeginInspect must be finished before the next begins —
  /// the pair shares the session's key scratch and tensor-cache entry.
  /// Inspect(now) == FinishInspect(Analyze(...BeginInspect(now)...)) by
  /// construction, so batched callers inherit the determinism contract.
  struct Pending {
    bool cached = false;       ///< verdict served straight from the cache
    ThreatWarning warning;     ///< valid when `cached`
    graph::InteractionGraph graph;      ///< materialized graph (uncached)
    const gnn::GnnGraph* gg = nullptr;  ///< tensor-cache entry (uncached)
  };
  Pending BeginInspect(double now_hours);
  ThreatWarning FinishInspect(const ThreatWarning& warning);

  /// Initial-setup inspection over the static (unpruned) graph.
  ThreatWarning InspectStatic();

  /// Validating inspection: InvalidArgument (instead of the RealTimeEdges
  /// monotonicity CHECK) when `now` precedes the latest ingested event —
  /// the untrusted-input variant for CLI / frontend callers.
  Result<ThreatWarning> TryInspect(double now_hours);

  /// Serializes the session's logical state (the LiveGraph: deployed rules
  /// in node order, retained events, watermark) into a snapshot payload.
  void SerializeTo(util::ByteWriter* w) const { live_.SerializeTo(w); }

  /// Rebuilds a fresh session from a SerializeTo payload. Inspect output
  /// after restore is bit-identical to the serialized session's (caches
  /// start cold, but they are exact-key and cannot change verdicts).
  Status RestoreFrom(util::ByteReader* r) { return live_.Restore(r); }

  int num_rules() const { return live_.num_rules(); }
  std::vector<rules::Rule> CurrentRules() const {
    return live_.CurrentRules();
  }
  const graph::LiveGraph& live() const { return live_; }
  const TrainedDetector& detector() const { return *detector_; }

  // Cache observability (bench / test instrumentation).
  size_t inspect_count() const { return inspects_; }
  size_t verdict_hits() const { return verdict_hits_; }
  size_t tensor_hits() const { return tensor_cache_.hits(); }

  /// Per-home counter snapshot (the per-session half of glint::obs: these
  /// are plain members, not registry instruments, so one home's activity is
  /// attributable even when many sessions share the process registry).
  struct CacheStats {
    uint64_t inspects = 0;
    uint64_t events = 0;
    uint64_t rules = 0;
    uint64_t verdict_hits = 0;
    uint64_t verdict_misses = 0;
    uint64_t tensor_hits = 0;
    uint64_t tensor_misses = 0;

    CacheStats& operator+=(const CacheStats& o) {
      inspects += o.inspects;
      events += o.events;
      rules += o.rules;
      verdict_hits += o.verdict_hits;
      verdict_misses += o.verdict_misses;
      tensor_hits += o.tensor_hits;
      tensor_misses += o.tensor_misses;
      return *this;
    }
  };
  CacheStats Stats() const;

 private:
  /// Shared tail of Inspect / InspectStatic: cache lookups, then the
  /// materialize -> tensorize -> analyze pipeline on miss. Composed from
  /// Begin + Analyze + FinishInspect so the batched path is the same code.
  ThreatWarning Render(const std::vector<graph::Edge>& edges);

  /// Edge-list flavour of BeginInspect (shared by Inspect/InspectStatic).
  Pending Begin(const std::vector<graph::Edge>& edges);

  struct Verdict {
    gnn::GnnGraphCache::Key key;
    ThreatWarning warning;
    uint64_t tick = 0;
  };

  const TrainedDetector* detector_;
  Config config_;
  graph::LiveGraph live_;
  gnn::GnnGraphCache tensor_cache_;
  /// Cache-key scratch reused across Render calls: a warm no-change Inspect
  /// rebuilds the key into retained storage instead of allocating one.
  gnn::GnnGraphCache::Key key_scratch_;
  std::vector<Verdict> verdicts_;
  uint64_t tick_ = 0;
  size_t inspects_ = 0;
  size_t verdict_hits_ = 0;
  size_t events_ = 0;
};

}  // namespace glint::core
