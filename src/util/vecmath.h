#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/status.h"

namespace glint {

/// Dense float vector helpers shared by the NLP embedding model and the
/// classic ML substrate. (The GNN stack has its own Tensor type; these are
/// for plain feature vectors.)

using FloatVec = std::vector<float>;

inline double Dot(const FloatVec& a, const FloatVec& b) {
  GLINT_CHECK(a.size() == b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += double(a[i]) * b[i];
  return s;
}

inline double Norm(const FloatVec& a) { return std::sqrt(Dot(a, a)); }

inline double CosineSimilarity(const FloatVec& a, const FloatVec& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na == 0 || nb == 0) return 0;
  return Dot(a, b) / (na * nb);
}

inline double EuclideanDistance(const FloatVec& a, const FloatVec& b) {
  GLINT_CHECK(a.size() == b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = double(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

inline void AddInPlace(FloatVec* a, const FloatVec& b) {
  GLINT_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += b[i];
}

inline void ScaleInPlace(FloatVec* a, float s) {
  for (float& x : *a) x *= s;
}

/// Mean of a set of equally sized vectors; returns an empty vector if the
/// input is empty.
inline FloatVec Mean(const std::vector<FloatVec>& vecs) {
  if (vecs.empty()) return {};
  FloatVec out(vecs[0].size(), 0.f);
  for (const auto& v : vecs) AddInPlace(&out, v);
  ScaleInPlace(&out, 1.0f / static_cast<float>(vecs.size()));
  return out;
}

/// Median of a copy of `v` (empty input -> 0).
inline double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + mid - 1, v.end());
    m = 0.5 * (m + v[mid - 1]);
  }
  return m;
}

}  // namespace glint
