// Regenerates Table 6: cross-domain transfer learning. For each
// (model, source, target) row, a source-trained model is frozen up to its
// last layers and fine-tuned on the target; "No trans." is the same model
// trained on the target only.

#include <cstdio>
#include <ctime>

#include "bench_common.h"
#include "gnn/transfer.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT
using gnn::GnnGraph;

namespace {

std::unique_ptr<gnn::GraphModel> MakeByName(const std::string& model,
                                            uint64_t seed) {
  // All Table-6 models must accept both homogeneous and heterogeneous
  // graphs, so GCN/GIN are wrapped with the metapath converter when needed;
  // here we use the hetero-capable variants throughout (the converter is a
  // no-op projection on single-type graphs).
  if (model == "GCN") return std::make_unique<gnn::MagcnModel>(64, 2, seed);
  if (model == "GIN") return MakeHomoModel("GIN", 300, seed);
  return MakeHeteroModel("ITGNN", seed);
}

double TrainEval(gnn::GraphModel* model, const std::vector<GnnGraph>& data,
                 int epochs, uint64_t seed) {
  Rng rng(seed);
  std::vector<GnnGraph> train, test;
  gnn::SplitGraphs(data, 0.8, &rng, &train, &test);
  gnn::TrainConfig tc;
  tc.epochs = epochs;
  gnn::Trainer trainer(tc);
  trainer.TrainSupervised(model, train);
  return gnn::Trainer::Evaluate(model, test).accuracy;
}

double TransferEval(gnn::GraphModel* model,
                    const std::vector<GnnGraph>& source,
                    const std::vector<GnnGraph>& target, int freeze_groups,
                    uint64_t seed) {
  Rng rng(seed);
  // Pre-train on the full source domain.
  gnn::TrainConfig tc;
  tc.epochs = 10;
  gnn::Trainer trainer(tc);
  trainer.TrainSupervised(model, source);
  // Freeze-and-fine-tune on the target train split; evaluate on its test
  // split.
  std::vector<GnnGraph> train, test;
  gnn::SplitGraphs(target, 0.8, &rng, &train, &test);
  gnn::TransferConfig xfer;
  xfer.freeze_groups = freeze_groups;
  xfer.fine_tune.epochs = 8;
  gnn::TransferFineTune(model, train, xfer);
  return gnn::Trainer::Evaluate(model, test).accuracy;
}

}  // namespace

int main() {
  Banner("Table 6: transfer learning across domains", "Table 6");
  auto corpus = DefaultCorpus();
  auto ifttt_rules = PlatformRules(corpus, rules::Platform::kIFTTT);
  auto st_rules = PlatformRules(corpus, rules::Platform::kSmartThings);

  auto ifttt = gnn::ToGnnGraphs(BuildGraphs(ifttt_rules, 900, 61));
  auto smartthings = gnn::ToGnnGraphs(BuildGraphs(st_rules, 165, 62, 20));
  auto hetero = gnn::ToGnnGraphs(BuildGraphs(corpus, 900, 63));

  struct Row {
    const char* model;
    const char* target;
    const char* source;
    const std::vector<GnnGraph>* target_data;
    const std::vector<GnnGraph>* source_data;
    int freeze;           // -1 = all but head (tiny targets)
    double paper_no, paper_with;
  };
  const Row rows[] = {
      {"GIN", "SmartThings", "IFTTT", &smartthings, &ifttt, -1, 89.7, 92.3},
      {"GIN", "IFTTT", "SmartThings", &ifttt, &smartthings, 2, 95.0, 95.2},
      {"GCN", "SmartThings", "IFTTT", &smartthings, &ifttt, -1, 90.9, 94.1},
      {"GCN", "IFTTT", "SmartThings", &ifttt, &smartthings, 2, 89.5, 93.9},
      {"ITGNN", "SmartThings", "IFTTT", &smartthings, &ifttt, -1, 88.2, 100},
      {"ITGNN", "IFTTT", "SmartThings", &ifttt, &smartthings, 2, 95.7, 96.4},
      {"ITGNN", "IFTTT", "Heterogeneous", &ifttt, &hetero, 2, 95.7, 96.1},
      {"ITGNN", "Heterogeneous", "IFTTT", &hetero, &ifttt, 2, 95.1, 95.5},
  };

  TablePrinter t({"model", "target", "source", "no trans.", "trans.",
                  "improved", "paper no/with"});
  int row_id = 0;
  for (const auto& row : rows) {
    const std::clock_t t0 = std::clock();
    const uint64_t seed = 600 + static_cast<uint64_t>(row_id++);
    auto base = MakeByName(row.model, seed);
    const double no_trans =
        TrainEval(base.get(), *row.target_data, 12, seed);
    auto pretrained = MakeByName(row.model, seed);
    const double with_trans = TransferEval(
        pretrained.get(), *row.source_data, *row.target_data, row.freeze,
        seed);
    t.AddRow({row.model, row.target, row.source,
              StrFormat("%.1f%%", 100 * no_trans),
              StrFormat("%.1f%%", 100 * with_trans),
              StrFormat("%+.1f%%", 100 * (with_trans - no_trans)),
              StrFormat("%.1f/%.1f", row.paper_no, row.paper_with)});
    std::printf("  %s %s<-%s done (%.0fs)\n", row.model, row.target,
                row.source,
                static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
  }
  t.Print();
  std::printf("paper shape to check: transfer never hurts (no negative\n"
              "transfer) and helps most on the scarce SmartThings target.\n");
  return 0;
}
