#pragma once

#include "testbed/attacks.h"
#include "testbed/home.h"

namespace glint::testbed {

/// One evaluation case for the Fig. 11 comparison: a deployment, an event
/// trace, and ground truth.
struct Scenario {
  std::vector<rules::Rule> deployed;
  graph::EventLog log;
  double now_hours = 0;
  bool threat = false;
  /// True = complex-correlation threat (CCT, >2 culprit rules);
  /// false = binary-correlation threat (BCT) or benign.
  bool complex = false;
  AttackType attack = AttackType::kNone;
};

/// Builds the benign automation deployment used by the testbed (verified
/// threat-free by the analyzer) and generates benign/BCT/CCT scenarios by
/// running the simulator with injected vulnerable rule combos and attacks
/// (Sec. 4.8.1: 600 graphs, 150 BCT + 150 CCT).
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(uint64_t seed = 31337) : rng_(seed) {}

  /// The benign base deployment (motion lighting, presence security,
  /// climate control) — no classic threats among these rules.
  static std::vector<rules::Rule> BenignDeployment();

  /// A long benign trace for training the anomaly-detection baselines
  /// (the paper's one-week collection, 1,813 events).
  graph::EventLog BenignWeek(double hours = 168);

  /// A benign test scenario (a few hours of normal operation).
  Scenario MakeBenign();

  /// A binary-correlation threat scenario: two conflicting rules deployed
  /// and driven to interact (plus a triggering attack).
  Scenario MakeBct();

  /// A complex-correlation threat scenario: a >2-rule chain (loop,
  /// trigger-intake chain, condition-duplicate chain).
  Scenario MakeCct();

 private:
  Scenario Run(std::vector<rules::Rule> deployed, AttackType attack,
               bool threat, bool complex);

  Rng rng_;
  int next_rule_id_ = 1000;
};

}  // namespace glint::testbed
