#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/event_log.h"
#include "graph/interaction_graph.h"
#include "nlp/embedding.h"
#include "rules/rule.h"
#include "util/rng.h"

namespace glint::graph {

/// Predicate deciding whether an "action-trigger" edge exists between two
/// rules. The default is the ground-truth semantic oracle; benches can
/// inject the *learned* correlation classifier (Sec. 3.2.1) to mirror the
/// paper's pipeline.
using EdgePredicate =
    std::function<bool(const rules::Rule& src, const rules::Rule& dst)>;

/// True when the two rules command the same physical device instance (same
/// device class, compatible rooms) — the "interacting device" links of
/// Fig. 1. Shared by the batch builder and the incremental LiveGraph.
bool ShareDevice(const rules::Rule& a, const rules::Rule& b);

/// Builds interaction graphs from rule pools (offline) and from deployed
/// rules + event logs (online), embedding each rule's text into node
/// features (300-d word vectors for text platforms, 512-d sentence codes
/// for voice platforms).
class GraphBuilder {
 public:
  struct Config {
    int min_nodes = 2;
    int max_nodes = 50;
    /// Exponent of the size distribution: size = min + (max-min) * u^skew.
    /// Larger skew -> smaller graphs dominate (matches the paper's mix of
    /// many small graphs and a tail of 50-node ones).
    double size_skew = 5.0;
    /// Probability that each new node is grown from an existing node's
    /// correlation (vs. sampled independently).
    double chain_prob = 0.8;
    /// Attempts to find a correlated rule before falling back to random.
    int chain_tries = 200;
    /// Also connect rules that command the same device instance (Fig. 1
    /// shows rules linked "via interacting devices", e.g. the two window
    /// rules of Table 1). Without these edges a conflict between two
    /// otherwise-unrelated rules is invisible to message passing.
    bool device_edges = true;
    uint64_t seed = 1234;
  };

  GraphBuilder(Config config, const nlp::EmbeddingModel* word_model,
               const nlp::EmbeddingModel* sentence_model);

  /// Overrides the edge predicate (default: semantic oracle).
  void set_edge_predicate(EdgePredicate pred) { edge_pred_ = std::move(pred); }

  /// Builds one random interaction graph from the pool (offline stage):
  /// chained sampling of correlated rules, full pairwise edge scan, labels
  /// via ThreatAnalyzer.
  InteractionGraph BuildGraph(const std::vector<rules::Rule>& pool);

  /// Builds a labeled dataset of `num_graphs` graphs.
  GraphDataset BuildDataset(const std::vector<rules::Rule>& pool,
                            int num_graphs);

  /// Builds the complete (static) interaction graph over an explicit rule
  /// set — every pairwise correlation becomes an edge (Table 1 / Fig. 1).
  InteractionGraph BuildFromRules(const std::vector<rules::Rule>& deployed);

  /// Online stage: prunes the static graph with event-log evidence — an
  /// edge survives only if the source rule's effect was observed before the
  /// destination rule's trigger within `window_hours` (Sec. 3.2.2's
  /// chronological pruning). Nodes whose rules never fired are kept but
  /// isolated.
  InteractionGraph BuildRealTime(const std::vector<rules::Rule>& deployed,
                                 const EventLog& log, double now_hours,
                                 double window_hours = 3.0);

  /// Node features for a rule (selects embedding model by platform).
  /// Feature vectors are memoized by (node type, rule text): a rule that
  /// recurs across graphs, datasets, or deployment sessions is embedded
  /// once. Thread-safe; the vector is a pure function of the key, so the
  /// cache cannot change results.
  Node MakeNode(const rules::Rule& rule) const;

 private:
  /// BuildGraph with an explicit RNG stream. BuildDataset gives graph i the
  /// stream seeded by `config_.seed ^ i`, so the dataset is identical for
  /// any thread count; the public BuildGraph draws from the member stream.
  InteractionGraph BuildGraphWith(const std::vector<rules::Rule>& pool,
                                  Rng* rng) const;

  /// Adds all edges for the chosen rule set: action-trigger correlations
  /// via the edge predicate plus (optionally) shared-device links.
  void AddEdges(const std::vector<rules::Rule>& rs, InteractionGraph* g) const;

  Config config_;
  const nlp::EmbeddingModel* word_model_;
  const nlp::EmbeddingModel* sentence_model_;
  EdgePredicate edge_pred_;
  Rng rng_;
  /// MakeNode feature memo, keyed by type-salted text hash.
  mutable std::mutex feature_mu_;
  mutable std::unordered_map<uint64_t, FloatVec> feature_cache_;
};

}  // namespace glint::graph
