#include "graph/threat_analyzer.h"

#include <algorithm>
#include <limits>

namespace glint::graph {
namespace {

using rules::ActionSpec;
using rules::Channel;
using rules::Command;
using rules::Comparator;
using rules::DeviceType;
using rules::Rule;

// ---- Co-fireability helpers ------------------------------------------------

// Time window during which the rule can run: intersection of the trigger's
// time and any time conditions. Returns false if the rule is unconstrained.
bool TimeWindow(const Rule& r, int* lo, int* hi) {
  bool has = false;
  int wlo = 0, whi = 24;
  if (r.trigger.has_time) {
    wlo = r.trigger.hour_lo;
    whi = r.trigger.hour_hi;
    has = true;
  }
  for (const auto& c : r.conditions) {
    if (c.has_time) {
      wlo = std::max(wlo, c.hour_lo);
      whi = std::min(whi, c.hour_hi);
      has = true;
    }
  }
  *lo = wlo;
  *hi = whi;
  return has;
}

// Numeric value range in which the trigger fires (for threshold triggers).
bool TriggerRange(const rules::TriggerSpec& t, double* lo, double* hi) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  switch (t.cmp) {
    case Comparator::kAbove: *lo = t.lo; *hi = kInf; return true;
    case Comparator::kBelow: *lo = -kInf; *hi = t.lo; return true;
    case Comparator::kBetween: *lo = t.lo; *hi = t.hi; return true;
    default: return false;
  }
}

// Conservative test: can the two rules execute close together in time?
// False only when we can *prove* disjointness (disjoint time windows, or
// disjoint numeric ranges on the same channel in the same room).
bool CoFireable(const Rule& a, const Rule& b) {
  int alo, ahi, blo, bhi;
  const bool at = TimeWindow(a, &alo, &ahi);
  const bool bt = TimeWindow(b, &blo, &bhi);
  if (at && bt && (ahi < blo || bhi < alo)) return false;

  // Mutually exclusive state triggers: "presence == away" can never
  // co-fire with "presence == present" on the same channel/scope.
  if (a.trigger.cmp == Comparator::kEquals &&
      b.trigger.cmp == Comparator::kEquals && !a.trigger.state.empty() &&
      !b.trigger.state.empty() &&
      a.trigger.channel == b.trigger.channel &&
      a.trigger.device == b.trigger.device &&
      rules::SameScope(a.location, b.location, a.trigger.channel) &&
      a.trigger.state != b.trigger.state) {
    return false;
  }

  double ralo, rahi, rblo, rbhi;
  if (a.trigger.channel == b.trigger.channel &&
      rules::SameScope(a.location, b.location, a.trigger.channel) &&
      TriggerRange(a.trigger, &ralo, &rahi) &&
      TriggerRange(b.trigger, &rblo, &rbhi)) {
    if (rahi < rblo || rbhi < ralo) return false;
  }
  return true;
}

// The two actions drive the same physical device instance: same device
// class and either a house-wide channel (a lock is THE lock), the same
// explicit room, or both rules room-less ("the light" with no room named
// reads as the same light).
bool SameDeviceInstance(const Rule& ra, const ActionSpec& a, const Rule& rb,
                        const ActionSpec& b) {
  if (a.device != b.device) return false;
  if (rules::IsHouseWideChannel(rules::StateChannelOf(a.device))) return true;
  return ra.location == rb.location;
}

// Commands that *assert* a goal (turn something on / open / start) as
// opposed to releasing one; goal conflicts are between two asserted goals.
bool IsAssertive(Command c) {
  return c == Command::kOn || c == Command::kOpen || c == Command::kPlay ||
         c == Command::kSetLevel || c == Command::kStartClean ||
         c == Command::kBrighten;
}

// For deduplicating pairwise findings.
void AddPairFinding(std::vector<ThreatFinding>* out, ThreatType type, int i,
                    int j) {
  for (const auto& f : *out) {
    if (f.type == type && f.nodes.size() == 2 &&
        ((f.nodes[0] == i && f.nodes[1] == j) ||
         (f.nodes[0] == j && f.nodes[1] == i))) {
      return;
    }
  }
  out->push_back({type, {i, j}});
}

}  // namespace

// ---------------------------------------------------------------------------
// Classic detectors
// ---------------------------------------------------------------------------

std::vector<ThreatFinding> ThreatAnalyzer::DetectActionConflict(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = i + 1; j < g.num_nodes(); ++j) {
      const Rule& ri = nodes[static_cast<size_t>(i)].rule;
      const Rule& rj = nodes[static_cast<size_t>(j)].rule;
      // Chained opposition is action revert / loop, not conflict.
      if (rules::RuleTriggersRule(ri, rj) || rules::RuleTriggersRule(rj, ri)) {
        continue;
      }
      if (!CoFireable(ri, rj)) continue;
      for (const auto& ai : ri.actions) {
        for (const auto& aj : rj.actions) {
          if (SameDeviceInstance(ri, ai, rj, aj) &&
              rules::CommandsOppose(ai.command, aj.command)) {
            AddPairFinding(&out, ThreatType::kActionConflict, i, j);
          }
        }
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectActionRevert(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (i == j) continue;
      const Rule& ri = nodes[static_cast<size_t>(i)].rule;
      const Rule& rj = nodes[static_cast<size_t>(j)].rule;
      if (!rules::RuleTriggersRule(ri, rj)) continue;
      for (const auto& ai : ri.actions) {
        for (const auto& aj : rj.actions) {
          if (SameDeviceInstance(ri, ai, rj, aj) &&
              rules::CommandsOppose(ai.command, aj.command)) {
            AddPairFinding(&out, ThreatType::kActionRevert, i, j);
          }
        }
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectActionLoop(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const int n = g.num_nodes();
  // Semantic trigger adjacency (independent of stored, possibly learned,
  // edges).
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Loops count only instantaneous links; slow env oscillations are
      // action reverts, not loops.
      if (i != j &&
          rules::RuleTriggersRuleInstant(
              g.nodes()[static_cast<size_t>(i)].rule,
              g.nodes()[static_cast<size_t>(j)].rule)) {
        adj[static_cast<size_t>(i)].push_back(j);
      }
    }
  }
  // Iterative DFS cycle detection; report each cycle once via its smallest
  // node.
  std::vector<int> color(static_cast<size_t>(n), 0);  // 0=white,1=gray,2=black
  std::vector<int> parent(static_cast<size_t>(n), -1);
  for (int start = 0; start < n; ++start) {
    if (color[static_cast<size_t>(start)] != 0) continue;
    struct Frame { int v; size_t next; };
    std::vector<Frame> stack{{start, 0}};
    color[static_cast<size_t>(start)] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < adj[static_cast<size_t>(f.v)].size()) {
        const int u = adj[static_cast<size_t>(f.v)][f.next++];
        if (color[static_cast<size_t>(u)] == 0) {
          color[static_cast<size_t>(u)] = 1;
          parent[static_cast<size_t>(u)] = f.v;
          stack.push_back({u, 0});
        } else if (color[static_cast<size_t>(u)] == 1) {
          // Back edge: reconstruct the cycle u -> ... -> f.v -> u.
          std::vector<int> cycle{u};
          int cur = f.v;
          while (cur != u && cur != -1) {
            cycle.push_back(cur);
            cur = parent[static_cast<size_t>(cur)];
          }
          std::sort(cycle.begin(), cycle.end());
          bool dup = false;
          for (const auto& prev : out) {
            if (prev.nodes == cycle) dup = true;
          }
          if (!dup) out.push_back({ThreatType::kActionLoop, cycle});
        }
      } else {
        color[static_cast<size_t>(f.v)] = 2;
        stack.pop_back();
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectConditionBypass(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (i == j) continue;
      const Rule& fine = nodes[static_cast<size_t>(i)].rule;    // strict rule
      const Rule& coarse = nodes[static_cast<size_t>(j)].rule;  // lax rule
      // Same action goal.
      bool same_action = false;
      for (const auto& ai : fine.actions) {
        for (const auto& aj : coarse.actions) {
          if (SameDeviceInstance(fine, ai, coarse, aj) &&
              ai.command == aj.command) {
            same_action = true;
          }
        }
      }
      if (!same_action) continue;
      // Same trigger channel & direction; the fine rule must be strictly
      // more constrained (extra conditions or a time gate the coarse rule
      // lacks).
      if (fine.trigger.channel != coarse.trigger.channel) continue;
      if (fine.trigger.cmp != coarse.trigger.cmp) continue;
      int flo, fhi, clo, chi;
      const bool fine_timed = TimeWindow(fine, &flo, &fhi);
      const bool coarse_timed = TimeWindow(coarse, &clo, &chi);
      const bool stricter =
          (fine.conditions.size() > coarse.conditions.size()) ||
          (fine_timed && !coarse_timed);
      if (stricter) {
        AddPairFinding(&out, ThreatType::kConditionBypass, i, j);
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectConditionBlock(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Rule& guarded = nodes[static_cast<size_t>(i)].rule;
    for (const auto& cond : guarded.conditions) {
      if (cond.state.empty()) continue;
      for (int j = 0; j < g.num_nodes(); ++j) {
        if (i == j) continue;
        const Rule& blocker = nodes[static_cast<size_t>(j)].rule;
        for (const auto& a : blocker.actions) {
          const bool same_target =
              a.device == cond.device ||
              rules::StateChannelOf(a.device) == cond.channel;
          if (same_target &&
              rules::SameScope(blocker.location, guarded.location,
                               cond.channel) &&
              rules::CommandNegatesState(a.command, cond.state)) {
            AddPairFinding(&out, ThreatType::kConditionBlock, i, j);
          }
        }
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectGoalConflict(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = i + 1; j < g.num_nodes(); ++j) {
      const Rule& ri = nodes[static_cast<size_t>(i)].rule;
      const Rule& rj = nodes[static_cast<size_t>(j)].rule;
      if (!CoFireable(ri, rj)) continue;
      for (const auto& ai : ri.actions) {
        for (const auto& aj : rj.actions) {
          if (ai.device == aj.device) continue;  // same device => conflict
          // A goal conflict is two *asserted* goals pulling a slow
          // environmental channel in opposite directions (heater on vs
          // window open), not transient side effects.
          if (!IsAssertive(ai.command) || !IsAssertive(aj.command)) continue;
          for (const auto& ei : rules::EffectsOf(ai.device, ai.command)) {
            for (const auto& ej : rules::EffectsOf(aj.device, aj.command)) {
              if (ei.channel == ej.channel && ei.slow && ej.slow &&
                  ei.direction * ej.direction < 0 &&
                  rules::SameScope(ri.location, rj.location, ei.channel)) {
                AddPairFinding(&out, ThreatType::kGoalConflict, i, j);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// New-type detectors (Sec. 4.7)
// ---------------------------------------------------------------------------

std::vector<ThreatFinding> ThreatAnalyzer::DetectActionBlock(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Rule& pin = nodes[static_cast<size_t>(i)].rule;
    if (!pin.manual_mode_pin || pin.actions.empty()) continue;
    const DeviceType pinned = pin.actions[0].device;
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (i == j) continue;
      const Rule& victim = nodes[static_cast<size_t>(j)].rule;
      for (const auto& a : victim.actions) {
        if (a.device == pinned && a.command != pin.actions[0].command &&
            rules::SameScope(pin.location, victim.location,
                             rules::StateChannelOf(pinned))) {
          AddPairFinding(&out, ThreatType::kActionBlock, i, j);
        }
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectActionAblation(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (i == j) continue;
      const Rule& ri = nodes[static_cast<size_t>(i)].rule;
      const Rule& rj = nodes[static_cast<size_t>(j)].rule;
      // ri's action perturbs a *slow* channel that eventually fires rj,
      // whose action undoes ri's — a revert manifesting over a long
      // horizon.
      bool slow_link = false;
      for (const auto& ai : ri.actions) {
        for (const auto& e : rules::EffectsOf(ai.device, ai.command)) {
          if (!e.slow || e.channel != rj.trigger.channel) continue;
          if (!rules::SameScope(ri.location, rj.location, e.channel)) continue;
          if ((rj.trigger.cmp == Comparator::kBelow && e.direction < 0) ||
              (rj.trigger.cmp == Comparator::kAbove && e.direction > 0)) {
            slow_link = true;
          }
        }
      }
      if (!slow_link) continue;
      for (const auto& ai : ri.actions) {
        for (const auto& aj : rj.actions) {
          if (SameDeviceInstance(ri, ai, rj, aj) &&
              rules::CommandsOppose(ai.command, aj.command)) {
            AddPairFinding(&out, ThreatType::kActionAblation, i, j);
          }
        }
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectTriggerIntake(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Rule& src = nodes[static_cast<size_t>(i)].rule;
    // A non-sensor device whose side effect is motion/sound (vacuum, pet
    // feeder...) spuriously firing someone else's sensor trigger.
    bool emits_motion = false;
    for (const auto& a : src.actions) {
      if (a.device == DeviceType::kVacuum) {
        for (const auto& e : rules::EffectsOf(a.device, a.command)) {
          if (e.channel == Channel::kMotion && e.direction > 0) {
            emits_motion = true;
          }
        }
      }
    }
    if (!emits_motion) continue;
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (i == j) continue;
      const Rule& victim = nodes[static_cast<size_t>(j)].rule;
      if (victim.trigger.device != DeviceType::kMotionSensor) continue;
      if (!rules::SameScope(src.location, victim.location, Channel::kMotion)) {
        continue;
      }
      // The annoyance is user-facing (notification / snapshot spam).
      for (const auto& a : victim.actions) {
        if (a.command == Command::kNotify || a.command == Command::kSnapshot) {
          AddPairFinding(&out, ThreatType::kTriggerIntake, i, j);
        }
      }
    }
  }
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectConditionDuplicate(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  const auto& nodes = g.nodes();
  // Chain: media-playing action (j) -> occupancy reporter triggered by
  // sound (i) -> occupancy-conditioned automation (k).
  for (int i = 0; i < g.num_nodes(); ++i) {
    const Rule& reporter = nodes[static_cast<size_t>(i)].rule;
    if (reporter.trigger.channel != Channel::kSound ||
        reporter.trigger.state != "playing") {
      continue;
    }
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (j == i) continue;
      const Rule& media = nodes[static_cast<size_t>(j)].rule;
      bool plays = false;
      for (const auto& a : media.actions) {
        if (a.command == Command::kPlay) plays = true;
      }
      if (!plays) continue;
      for (int k = 0; k < g.num_nodes(); ++k) {
        if (k == i || k == j) continue;
        const Rule& consumer = nodes[static_cast<size_t>(k)].rule;
        bool occupancy_gated =
            consumer.trigger.channel == Channel::kOccupancy;
        for (const auto& c : consumer.conditions) {
          if (c.channel == Channel::kOccupancy) occupancy_gated = true;
        }
        if (occupancy_gated) {
          out.push_back({ThreatType::kConditionDuplicate, {j, i, k}});
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

std::vector<ThreatFinding> ThreatAnalyzer::DetectClassic(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  auto append = [&](std::vector<ThreatFinding> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  append(DetectConditionBypass(g));
  append(DetectConditionBlock(g));
  append(DetectActionRevert(g));
  append(DetectActionConflict(g));
  append(DetectActionLoop(g));
  append(DetectGoalConflict(g));
  return out;
}

std::vector<ThreatFinding> ThreatAnalyzer::DetectNewTypes(
    const InteractionGraph& g) {
  std::vector<ThreatFinding> out;
  auto append = [&](std::vector<ThreatFinding> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  append(DetectActionBlock(g));
  append(DetectActionAblation(g));
  append(DetectTriggerIntake(g));
  append(DetectConditionDuplicate(g));
  return out;
}

void ThreatAnalyzer::Label(InteractionGraph* g) {
  auto findings = DetectClassic(*g);
  g->set_vulnerable(!findings.empty());
  std::vector<ThreatType> types;
  std::vector<int> culprits;
  for (const auto& f : findings) {
    if (std::find(types.begin(), types.end(), f.type) == types.end()) {
      types.push_back(f.type);
    }
    for (int n : f.nodes) {
      if (std::find(culprits.begin(), culprits.end(), n) == culprits.end()) {
        culprits.push_back(n);
      }
    }
  }
  std::sort(culprits.begin(), culprits.end());
  g->set_threat_types(std::move(types));
  g->set_culprit_nodes(std::move(culprits));
}

}  // namespace glint::graph
