#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace glint {
namespace {

TEST(ThreadPoolTest, ConstructDestructVariousSizes) {
  for (int t = 1; t <= 4; ++t) {
    ThreadPool pool(t);
    EXPECT_EQ(pool.threads(), t);
  }
  // Sizes below 1 clamp to serial.
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t grain : {int64_t{1}, int64_t{3}, int64_t{7}, int64_t{100},
                        int64_t{100000}}) {
    constexpr int64_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(0, kN, grain, [&](int64_t lo, int64_t hi) {
      ASSERT_LE(lo, hi);
      for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, NonZeroBeginAndEmptyRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(40, 100, 9, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), i >= 40 ? 1 : 0);
  }
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(7, 5, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 1000, 1,
                                [](int64_t lo, int64_t) {
                                  if (lo == 500) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives and keeps working after an exception.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 64, 1, [&](int64_t, int64_t) { count++; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 100);
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // serial pools take the whole range in one call
}

TEST(ThreadPoolTest, NestedParallelForCompletesWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pool.ParallelFor(0, 10, 1,
                       [&](int64_t l2, int64_t h2) { total += h2 - l2; });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, GlintThreadsEnvVarForcesSerial) {
  setenv("GLINT_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreads(), 1);
  ThreadPool::SetGlobalThreads(ThreadPool::ConfiguredThreads());
  EXPECT_EQ(ThreadPool::Global().threads(), 1);
  const auto caller = std::this_thread::get_id();
  ParallelFor(0, 64, 4, [&](int64_t, int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });

  setenv("GLINT_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreads(), 3);

  unsetenv("GLINT_THREADS");
  EXPECT_GE(ThreadPool::ConfiguredThreads(), 1);
  ThreadPool::SetGlobalThreads(ThreadPool::ConfiguredThreads());
}

}  // namespace
}  // namespace glint
