#include "correlation/discovery.h"

#include "obs/obs.h"

namespace glint::correlation {

std::optional<bool> CorrelationCache::Lookup(uint64_t src_hash,
                                             uint64_t dst_hash) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(Key{src_hash, dst_hash});
  if (it == map_.end()) {
    ++misses_;
    GLINT_OBS_COUNT("glint.correlation.cache.misses", 1);
    return std::nullopt;
  }
  ++hits_;
  GLINT_OBS_COUNT("glint.correlation.cache.hits", 1);
  return it->second;
}

void CorrelationCache::Insert(uint64_t src_hash, uint64_t dst_hash,
                              bool correlated) {
  std::lock_guard<std::mutex> lk(mu_);
  map_.emplace(Key{src_hash, dst_hash}, correlated);
}

size_t CorrelationCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

size_t CorrelationCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

size_t CorrelationCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

void CorrelationDiscovery::Train(const ml::Dataset& pairs) {
  const auto weights = ml::BalancedClassWeights(pairs.y, 2);
  mlp_.Fit(pairs, weights);
  forest_.Fit(pairs, weights);
  knn_.Fit(pairs, weights);
  trained_ = true;
}

double CorrelationDiscovery::VoteShare(const rules::Rule& src,
                                       const rules::Rule& dst) const {
  GLINT_CHECK(trained_);
  GLINT_OBS_TIMER(timer, "glint.correlation.predict_ms");
  const FloatVec f = extractor_.ExtractPair(src, dst);
  int votes = 0;
  votes += mlp_.Predict(f) == 1 ? 1 : 0;
  votes += forest_.Predict(f) == 1 ? 1 : 0;
  votes += knn_.Predict(f) == 1 ? 1 : 0;
  return votes / 3.0;
}

bool CorrelationDiscovery::Correlated(const rules::Rule& src,
                                      const rules::Rule& dst,
                                      CorrelationCache* cache) const {
  if (cache == nullptr) return VoteShare(src, dst) >= 0.5;
  const uint64_t hs = rules::RuleContentHash(src);
  const uint64_t hd = rules::RuleContentHash(dst);
  if (auto hit = cache->Lookup(hs, hd)) return *hit;
  const bool verdict = VoteShare(src, dst) >= 0.5;
  cache->Insert(hs, hd, verdict);
  return verdict;
}

}  // namespace glint::correlation
