#include "ml/mlp.h"

#include <cmath>

namespace glint::ml {
namespace {

void Softmax(std::vector<double>* logits) {
  double mx = (*logits)[0];
  for (double v : *logits) mx = std::max(mx, v);
  double sum = 0;
  for (double& v : *logits) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : *logits) v /= sum;
}

}  // namespace

std::vector<double> Mlp::Forward(const FloatVec& x,
                                 std::vector<FloatVec>* activations) const {
  FloatVec cur = scaler_.Transform(x);
  if (activations) activations->push_back(cur);
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    FloatVec next(layer.b.size());
    for (size_t o = 0; o < next.size(); ++o) {
      double s = layer.b[o];
      const FloatVec& row = layer.w[o];
      for (size_t i = 0; i < cur.size(); ++i) s += double(row[i]) * cur[i];
      next[o] = static_cast<float>(s);
    }
    const bool last = (li + 1 == layers_.size());
    if (!last) {
      for (auto& v : next) v = v > 0 ? v : 0.f;  // ReLU
    }
    if (activations) activations->push_back(next);
    cur = std::move(next);
  }
  std::vector<double> logits(cur.begin(), cur.end());
  Softmax(&logits);
  return logits;
}

void Mlp::Fit(const Dataset& data, const std::vector<double>& class_weights) {
  GLINT_CHECK(data.size() > 0);
  scaler_.Fit(data.x);
  num_classes_ = std::max(2, data.NumClasses());

  Rng rng(params_.seed);
  // Build layers: input -> hidden... -> num_classes.
  std::vector<size_t> dims;
  dims.push_back(data.dim());
  for (size_t h : params_.hidden) dims.push_back(h);
  dims.push_back(static_cast<size_t>(num_classes_));
  layers_.clear();
  for (size_t li = 0; li + 1 < dims.size(); ++li) {
    Layer layer;
    const size_t in = dims[li];
    const size_t out = dims[li + 1];
    const double scale = std::sqrt(2.0 / static_cast<double>(in));  // He init
    layer.w.assign(out, FloatVec(in));
    layer.mw.assign(out, FloatVec(in, 0.f));
    layer.vw.assign(out, FloatVec(in, 0.f));
    layer.b.assign(out, 0.f);
    layer.mb.assign(out, 0.f);
    layer.vb.assign(out, 0.f);
    for (auto& row : layer.w) {
      for (auto& v : row) v = static_cast<float>(rng.Gaussian(0, scale));
    }
    layers_.push_back(std::move(layer));
  }

  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double step_count = 0;

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(params_.batch_size)) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(params_.batch_size));
      // Accumulate gradients over the batch.
      std::vector<std::vector<FloatVec>> gw(layers_.size());
      std::vector<FloatVec> gb(layers_.size());
      for (size_t li = 0; li < layers_.size(); ++li) {
        gw[li].assign(layers_[li].w.size(),
                      FloatVec(layers_[li].w[0].size(), 0.f));
        gb[li].assign(layers_[li].b.size(), 0.f);
      }

      for (size_t bi = start; bi < end; ++bi) {
        const size_t i = order[bi];
        std::vector<FloatVec> acts;
        std::vector<double> probs = Forward(data.x[i], &acts);
        const int label = data.y[i];
        const double cw =
            class_weights.empty()
                ? 1.0
                : class_weights[static_cast<size_t>(label)];
        // dL/dlogit = (p - onehot) * cw
        FloatVec delta(probs.size());
        for (size_t c = 0; c < probs.size(); ++c) {
          delta[c] = static_cast<float>(
              cw * (probs[c] - (static_cast<int>(c) == label ? 1.0 : 0.0)));
        }
        // Backprop through layers (acts[li] is input to layer li).
        for (size_t li = layers_.size(); li-- > 0;) {
          const FloatVec& input = acts[li];
          for (size_t o = 0; o < delta.size(); ++o) {
            gb[li][o] += delta[o];
            FloatVec& grow = gw[li][o];
            for (size_t d = 0; d < input.size(); ++d) {
              grow[d] += delta[o] * input[d];
            }
          }
          if (li == 0) break;
          // Propagate delta to previous layer through W and ReLU.
          FloatVec prev(input.size(), 0.f);
          for (size_t o = 0; o < delta.size(); ++o) {
            const FloatVec& row = layers_[li].w[o];
            for (size_t d = 0; d < input.size(); ++d) {
              prev[d] += delta[o] * row[d];
            }
          }
          for (size_t d = 0; d < prev.size(); ++d) {
            if (input[d] <= 0) prev[d] = 0;  // ReLU'
          }
          delta = std::move(prev);
        }
      }

      // Adam update.
      step_count += 1;
      const double bc1 = 1.0 - std::pow(beta1, step_count);
      const double bc2 = 1.0 - std::pow(beta2, step_count);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (size_t li = 0; li < layers_.size(); ++li) {
        Layer& layer = layers_[li];
        for (size_t o = 0; o < layer.w.size(); ++o) {
          for (size_t d = 0; d < layer.w[o].size(); ++d) {
            const double g = gw[li][o][d] * inv_batch +
                             params_.weight_decay * layer.w[o][d];
            layer.mw[o][d] = static_cast<float>(beta1 * layer.mw[o][d] +
                                                (1 - beta1) * g);
            layer.vw[o][d] = static_cast<float>(beta2 * layer.vw[o][d] +
                                                (1 - beta2) * g * g);
            layer.w[o][d] -= static_cast<float>(
                params_.lr * (layer.mw[o][d] / bc1) /
                (std::sqrt(layer.vw[o][d] / bc2) + eps));
          }
          const double g = gb[li][o] * inv_batch;
          layer.mb[o] = static_cast<float>(beta1 * layer.mb[o] + (1 - beta1) * g);
          layer.vb[o] = static_cast<float>(beta2 * layer.vb[o] +
                                           (1 - beta2) * g * g);
          layer.b[o] -= static_cast<float>(params_.lr * (layer.mb[o] / bc1) /
                                           (std::sqrt(layer.vb[o] / bc2) + eps));
        }
      }
    }
  }
}

std::vector<double> Mlp::Probabilities(const FloatVec& x) const {
  return Forward(x, nullptr);
}

int Mlp::Predict(const FloatVec& x) const {
  auto probs = Probabilities(x);
  int best = 0;
  for (size_t c = 1; c < probs.size(); ++c) {
    if (probs[c] > probs[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

double Mlp::PredictProba(const FloatVec& x) const {
  auto probs = Probabilities(x);
  return probs.size() > 1 ? probs[1] : 0.0;
}

}  // namespace glint::ml
