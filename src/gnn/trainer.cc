#include "gnn/trainer.h"

#include <algorithm>
#include <cstdio>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace glint::gnn {

namespace {

/// Merges the first `active` per-sample gradient sinks into the parameters.
/// Iterates samples in order and parameters in their registration order
/// (never the unordered_map), so the reduction is deterministic for any
/// thread count. Sink matrices are zeroed rather than erased so the map
/// nodes and their storage survive to the next batch; only the active
/// prefix is merged so short final batches never depend on the subtle
/// claim that adding a zeroed stale sink is a bitwise no-op.
void MergeGradSinks(const std::vector<Parameter*>& params, size_t active,
                    std::vector<Tape::GradSink>* sinks) {
  for (size_t s = 0; s < active; ++s) {
    auto& sink = (*sinks)[s];
    for (Parameter* p : params) {
      auto it = sink.find(p);
      if (it == sink.end()) continue;
      for (size_t i = 0; i < p->grad.data.size(); ++i) {
        p->grad.data[i] += it->second.data[i];
      }
    }
    for (auto& [p, m] : sink) std::fill(m.data.begin(), m.data.end(), 0.f);
  }
}

}  // namespace

void SplitGraphs(const std::vector<GnnGraph>& all, double train_frac,
                 Rng* rng, std::vector<GnnGraph>* train,
                 std::vector<GnnGraph>* test) {
  std::vector<size_t> idx(all.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng->Shuffle(&idx);
  const size_t n_train =
      static_cast<size_t>(train_frac * static_cast<double>(all.size()));
  train->clear();
  test->clear();
  for (size_t i = 0; i < idx.size(); ++i) {
    (i < n_train ? train : test)->push_back(all[idx[i]]);
  }
}

std::vector<GnnGraph> OversampleGraphs(const std::vector<GnnGraph>& train,
                                       double factor, Rng* rng) {
  std::vector<GnnGraph> out = train;
  std::vector<size_t> minority;
  for (size_t i = 0; i < train.size(); ++i) {
    if (train[i].label == 1) minority.push_back(i);
  }
  if (minority.empty()) return out;
  const size_t extra = static_cast<size_t>(
      (factor - 1.0) * static_cast<double>(minority.size()));
  for (size_t k = 0; k < extra; ++k) {
    out.push_back(train[minority[rng->Below(minority.size())]]);
  }
  return out;
}

void Trainer::TrainSupervised(GraphModel* model,
                              const std::vector<GnnGraph>& train_in) {
  Rng rng(config_.seed);
  std::vector<GnnGraph> train =
      OversampleGraphs(train_in, config_.oversample_factor, &rng);

  // Class weights inversely proportional to frequency (Eq. 2's w_y).
  double n1 = 0;
  for (const auto& g : train) n1 += g.label;
  const double n = static_cast<double>(train.size());
  float w[2] = {static_cast<float>(n / (2.0 * std::max(1.0, n - n1))),
                static_cast<float>(n / (2.0 * std::max(1.0, n1)))};

  Adam adam({config_.lr, 0.9, 0.999, 1e-8, config_.weight_decay});
  auto params = model->Parameters();

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const int kBatch = 8;  // gradient accumulation window
  std::vector<Tape::GradSink> sinks(kBatch);
  std::vector<double> losses(kBatch, 0.0);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total_loss = 0;
    // Graphs within a batch are independent: each gets its own tape and a
    // private gradient sink, so the batch runs in parallel; sinks are then
    // merged in sample order and the merged result matches the serial run
    // bit for bit.
    for (size_t start = 0; start < order.size(); start += kBatch) {
      const size_t stop = std::min(order.size(), start + kBatch);
      ParallelFor(
          static_cast<int64_t>(start), static_cast<int64_t>(stop), 1,
          [&](int64_t lo, int64_t hi) {
            for (int64_t oi = lo; oi < hi; ++oi) {
              const GnnGraph& g = train[order[static_cast<size_t>(oi)]];
              ScopedTape lease;  // worker-local tape, reused across samples
              Tape& tape = *lease;
              tape.set_grad_sink(&sinks[static_cast<size_t>(oi) - start]);
              ForwardResult r = model->Forward(&tape, g);
              Tensor* loss = SoftmaxCrossEntropy(&tape, r.logits, g.label,
                                                 w[g.label]);
              // β·L_pool: per-scale BCE logits against the label (Eq. 2).
              if (!r.pool_logits.empty() && config_.beta_pool > 0) {
                Tensor* pool_loss = nullptr;
                for (Tensor* logit : r.pool_logits) {
                  pool_loss =
                      AddLoss(&tape, pool_loss,
                              BceWithLogit(&tape, logit, g.label, 1.0f));
                }
                loss = AddLoss(
                    &tape, loss,
                    Scale(&tape, pool_loss,
                          static_cast<float>(config_.beta_pool /
                                             static_cast<double>(
                                                 r.pool_logits.size()))));
              }
              Tensor* aux = model->AuxLoss(&tape, g, r);
              if (aux != nullptr) {
                loss = AddLoss(&tape, loss, Scale(&tape, aux, 0.5f));
              }
              losses[static_cast<size_t>(oi) - start] = loss->value.data[0];
              tape.Backward(loss);
            }
          });
      for (size_t i = 0; i < stop - start; ++i) total_loss += losses[i];
      MergeGradSinks(params, stop - start, &sinks);
      adam.Step(params);
    }
    if (config_.verbose) {
      std::fprintf(stderr, "[%s] epoch %d loss %.4f\n",
                   model->Name().c_str(), epoch,
                   total_loss / static_cast<double>(train.size()));
    }
  }
}

void Trainer::TrainContrastive(GraphModel* model,
                               const std::vector<GnnGraph>& train) {
  Rng rng(config_.seed ^ 0xc0ffee);
  Adam adam({config_.lr, 0.9, 0.999, 1e-8, config_.weight_decay});
  auto params = model->Parameters();

  // Index by class for balanced pair sampling.
  std::vector<size_t> by_class[2];
  for (size_t i = 0; i < train.size(); ++i) {
    by_class[train[i].label].push_back(i);
  }
  if (by_class[0].empty() || by_class[1].empty()) return;

  const size_t pairs_per_epoch = std::max<size_t>(
      8, static_cast<size_t>(config_.pairs_per_sample *
                             static_cast<double>(train.size())));
  const int kBatch = 8;
  struct Pair {
    size_t ia, ib;
    bool same;
  };
  std::vector<Pair> batch;
  std::vector<Tape::GradSink> sinks(kBatch);
  std::vector<double> losses(kBatch, 0.0);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    double total_loss = 0;
    for (size_t start = 0; start < pairs_per_epoch; start += kBatch) {
      const size_t stop = std::min(pairs_per_epoch, start + kBatch);
      // Pair sampling stays on the caller thread (single RNG stream);
      // embedding + backward of the sampled pairs fans out across the pool
      // with per-pair gradient sinks.
      batch.clear();
      for (size_t k = start; k < stop; ++k) {
        // 50% same-class pairs, 50% cross-class pairs.
        Pair p;
        if (rng.Chance(0.5)) {
          const auto& cls = by_class[rng.Chance(0.5) ? 1 : 0];
          p.ia = cls[rng.Below(cls.size())];
          p.ib = cls[rng.Below(cls.size())];
          p.same = true;
        } else {
          p.ia = by_class[0][rng.Below(by_class[0].size())];
          p.ib = by_class[1][rng.Below(by_class[1].size())];
          p.same = false;
        }
        batch.push_back(p);
      }
      ParallelFor(0, static_cast<int64_t>(batch.size()), 1,
                  [&](int64_t lo, int64_t hi) {
                    for (int64_t k = lo; k < hi; ++k) {
                      const Pair& p = batch[static_cast<size_t>(k)];
                      ScopedTape lease;  // reused across pairs and epochs
                      Tape& tape = *lease;
                      tape.set_grad_sink(&sinks[static_cast<size_t>(k)]);
                      Tensor* za =
                          model->Forward(&tape, train[p.ia]).embedding;
                      Tensor* zb =
                          model->Forward(&tape, train[p.ib]).embedding;
                      Tensor* loss = ContrastiveLoss(
                          &tape, za, zb, p.same,
                          static_cast<float>(config_.contrastive_margin));
                      losses[static_cast<size_t>(k)] = loss->value.data[0];
                      tape.Backward(loss);
                    }
                  });
      for (size_t k = 0; k < batch.size(); ++k) total_loss += losses[k];
      MergeGradSinks(params, batch.size(), &sinks);
      adam.Step(params);
    }
    if (config_.verbose) {
      std::fprintf(stderr, "[%s-C] epoch %d loss %.4f\n",
                   model->Name().c_str(), epoch,
                   total_loss / static_cast<double>(pairs_per_epoch));
    }
  }
}

int Trainer::Predict(GraphModel* model, const GnnGraph& g) {
  ScopedTape tape;  // worker-local tape, reused across calls
  tape->set_freeze_leaves(true);  // inference only: skip grad bookkeeping
  ForwardResult r = model->Forward(tape.get(), g);
  double p[2];
  SoftmaxRowInto(r.logits, p);
  return p[1] > p[0] ? 1 : 0;
}

ml::Metrics Trainer::Evaluate(GraphModel* model,
                              const std::vector<GnnGraph>& test) {
  // Per-graph inference is independent; each slot is written by exactly one
  // thread, so the metrics are identical for any thread count.
  std::vector<int> y_true(test.size()), y_pred(test.size());
  ParallelFor(0, static_cast<int64_t>(test.size()), 1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  const auto& g = test[static_cast<size_t>(i)];
                  y_true[static_cast<size_t>(i)] = g.label;
                  y_pred[static_cast<size_t>(i)] = Predict(model, g);
                }
              });
  return ml::WeightedMetrics(y_true, y_pred, 2);
}

FloatVec Trainer::Embed(GraphModel* model, const GnnGraph& g) {
  GLINT_OBS_TIMER(timer, "glint.gnn.embed_ms");
  ScopedTape tape;  // worker-local tape, reused across calls
  tape->set_freeze_leaves(true);  // inference only: skip grad bookkeeping
  ForwardResult r = model->Forward(tape.get(), g);
  return FloatVec(r.embedding->value.data.begin(),
                  r.embedding->value.data.end());
}

std::vector<FloatVec> Trainer::EmbedAll(GraphModel* model,
                                        const std::vector<GnnGraph>& set) {
  std::vector<FloatVec> out(set.size());
  ParallelFor(0, static_cast<int64_t>(set.size()), 1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  out[static_cast<size_t>(i)] =
                      Embed(model, set[static_cast<size_t>(i)]);
                }
              });
  return out;
}

}  // namespace glint::gnn
