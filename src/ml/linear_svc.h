#pragma once

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace glint::ml {

/// Linear C-support-vector classifier trained with subgradient descent on
/// the L2-regularized hinge loss (Pegasos-style). Features are standardized
/// internally. Binary labels {0, 1}.
class LinearSvc : public Classifier {
 public:
  struct Params {
    double c = 1.0;          ///< inverse regularization strength
    int epochs = 60;
    double lr = 0.05;
    uint64_t seed = 7;
  };

  LinearSvc() : LinearSvc(Params()) {}
  explicit LinearSvc(Params params) : params_(params) {}

  void Fit(const Dataset& data, const std::vector<double>& class_weights) override;
  int Predict(const FloatVec& x) const override;
  double PredictProba(const FloatVec& x) const override;
  std::string Name() const override { return "SVC"; }

  /// Raw decision value w·x + b (after scaling).
  double Decision(const FloatVec& x) const;

 private:
  Params params_;
  StandardScaler scaler_;
  FloatVec w_;
  double b_ = 0;
};

}  // namespace glint::ml
