#include "gnn/drift.h"

#include <cmath>

#include "obs/obs.h"

namespace glint::gnn {

void DriftDetector::Fit(const std::vector<FloatVec>& embeddings,
                        const std::vector<int>& labels) {
  GLINT_CHECK(embeddings.size() == labels.size());
  GLINT_CHECK(!embeddings.empty());
  constexpr int kClasses = 2;
  centroids_.assign(kClasses, FloatVec(embeddings[0].size(), 0.f));
  std::vector<int> counts(kClasses, 0);
  for (size_t i = 0; i < embeddings.size(); ++i) {
    AddInPlace(&centroids_[static_cast<size_t>(labels[i])], embeddings[i]);
    counts[static_cast<size_t>(labels[i])] += 1;
  }
  for (int c = 0; c < kClasses; ++c) {
    if (counts[static_cast<size_t>(c)] > 0) {
      ScaleInPlace(&centroids_[static_cast<size_t>(c)],
                   1.0f / static_cast<float>(counts[static_cast<size_t>(c)]));
    }
  }
  // Per-class distances to the centroid; median + MAD (lines 5-9).
  median_dist_.assign(kClasses, 0.0);
  mad_.assign(kClasses, 1.0);
  for (int c = 0; c < kClasses; ++c) {
    std::vector<double> dists;
    for (size_t i = 0; i < embeddings.size(); ++i) {
      if (labels[i] == c) {
        dists.push_back(
            EuclideanDistance(embeddings[i], centroids_[static_cast<size_t>(c)]));
      }
    }
    if (dists.empty()) continue;
    median_dist_[static_cast<size_t>(c)] = Median(dists);
    std::vector<double> dev;
    dev.reserve(dists.size());
    for (double d : dists) {
      dev.push_back(std::fabs(d - median_dist_[static_cast<size_t>(c)]));
    }
    // Floor the MAD at a fraction of the median distance: contrastive
    // training can collapse a class into a near-degenerate shell whose raw
    // MAD would flag everything as drifting (Alg. 3 assumes a healthy
    // spread, as CADE does).
    const double mad = Median(dev);
    const double floor =
        std::max(1e-9, 0.15 * median_dist_[static_cast<size_t>(c)]);
    mad_[static_cast<size_t>(c)] = std::max(mad, floor);
  }
}

double DriftDetector::DriftingDegree(const FloatVec& embedding) const {
  GLINT_CHECK(!centroids_.empty());
  GLINT_OBS_COUNT("glint.drift.checks", 1);
  GLINT_OBS_TIMER(timer, "glint.drift.degree_ms");
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    const double d = EuclideanDistance(embedding, centroids_[c]);
    const double a = std::fabs(d - median_dist_[c]) / mad_[c];
    best = std::min(best, a);
  }
  return best;
}

void DriftDetector::FitFromModel(GraphModel* model,
                                 const std::vector<GnnGraph>& train) {
  std::vector<FloatVec> embeddings = Trainer::EmbedAll(model, train);
  std::vector<int> labels;
  labels.reserve(train.size());
  for (const auto& g : train) labels.push_back(g.label);
  Fit(embeddings, labels);
}

void DriftDetector::SerializeTo(util::ByteWriter* w) const {
  w->U32(static_cast<uint32_t>(centroids_.size()));
  for (size_t c = 0; c < centroids_.size(); ++c) {
    w->U32(static_cast<uint32_t>(centroids_[c].size()));
    w->Raw(centroids_[c].data(), sizeof(float) * centroids_[c].size());
    w->F64(median_dist_[c]);
    w->F64(mad_[c]);
  }
}

bool DriftDetector::RestoreFrom(util::ByteReader* r) {
  uint32_t classes = 0;
  if (!r->U32(&classes) || classes == 0 || classes > 16) return false;
  std::vector<FloatVec> centroids(classes);
  std::vector<double> median(classes, 0.0);
  std::vector<double> mad(classes, 1.0);
  for (uint32_t c = 0; c < classes; ++c) {
    uint32_t dim = 0;
    // Cap the embedding dimension so a corrupt length field cannot drive a
    // multi-gigabyte allocation before the payload runs out.
    if (!r->U32(&dim) || dim == 0 || dim > (1u << 24)) return false;
    centroids[c].resize(dim);
    if (!r->Raw(centroids[c].data(), sizeof(float) * dim)) return false;
    if (!r->F64(&median[c]) || !r->F64(&mad[c])) return false;
    if (!(mad[c] > 0.0)) return false;  // division guard (also rejects NaN)
  }
  centroids_ = std::move(centroids);
  median_dist_ = std::move(median);
  mad_ = std::move(mad);
  return true;
}

std::vector<bool> DriftDetector::DetectDrifting(
    GraphModel* model, const std::vector<GnnGraph>& unlabeled) const {
  std::vector<bool> out;
  out.reserve(unlabeled.size());
  for (const auto& g : unlabeled) {
    out.push_back(IsDrifting(Trainer::Embed(model, g)));
  }
  return out;
}

}  // namespace glint::gnn
