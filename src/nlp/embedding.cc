#include "nlp/embedding.h"

#include <cmath>

#include "nlp/lexicon.h"
#include "nlp/tokenizer.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace glint::nlp {

EmbeddingModel::EmbeddingModel(size_t dim, uint64_t seed, double noise_share)
    : dim_(dim), seed_(seed), noise_share_(noise_share) {}

FloatVec EmbeddingModel::UnitGaussian(uint64_t seed) const {
  Rng rng(seed ^ seed_);
  FloatVec v(dim_);
  double norm2 = 0;
  for (size_t i = 0; i < dim_; ++i) {
    v[i] = static_cast<float>(rng.Gaussian());
    norm2 += double(v[i]) * v[i];
  }
  double inv = 1.0 / std::sqrt(norm2 > 0 ? norm2 : 1.0);
  for (auto& x : v) x = static_cast<float>(x * inv);
  return v;
}

const FloatVec& EmbeddingModel::WordVector(const std::string& word) const {
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    auto it = cache_.find(word);
    if (it != cache_.end()) return it->second;
  }

  const Lexicon& lex = Lexicon::Instance();
  // Pick the semantic anchor: synonym cluster > physical channel > the word.
  std::string anchor = lex.ClusterOf(word);
  if (anchor.empty()) anchor = lex.ChannelOf(word);
  if (anchor.empty()) anchor = word;

  FloatVec centroid =
      UnitGaussian(HashString(anchor.data(), anchor.size()) * 0x9e37u + 1);
  FloatVec noise =
      UnitGaussian(HashString(word.data(), word.size()) * 0x85ebu + 2);

  const float wc = static_cast<float>(std::sqrt(1.0 - noise_share_));
  const float wn = static_cast<float>(std::sqrt(noise_share_));
  FloatVec v(dim_);
  for (size_t i = 0; i < dim_; ++i) v[i] = wc * centroid[i] + wn * noise[i];
  // try_emplace keeps the first insertion if another thread raced us here;
  // both candidates are identical (the vector is a pure function of `word`).
  std::lock_guard<std::mutex> lk(cache_mu_);
  return cache_.try_emplace(word, std::move(v)).first->second;
}

FloatVec EmbeddingModel::Average(const std::vector<std::string>& tokens) const {
  const Lexicon& lex = Lexicon::Instance();
  FloatVec out(dim_, 0.f);
  int count = 0;
  for (const auto& t : tokens) {
    if (lex.IsStopWord(t) || lex.IsNamedEntity(t)) continue;
    AddInPlace(&out, WordVector(t));
    ++count;
  }
  if (count > 0) ScaleInPlace(&out, 1.0f / static_cast<float>(count));
  return out;
}

FloatVec EmbeddingModel::EmbedSentence(const std::string& sentence) const {
  {
    std::lock_guard<std::mutex> lk(sentence_mu_);
    auto it = embed_cache_.find(sentence);
    if (it != embed_cache_.end()) {
      GLINT_OBS_COUNT("glint.nlp.sentence_cache.hits", 1);
      return it->second;
    }
  }
  GLINT_OBS_COUNT("glint.nlp.sentence_cache.misses", 1);
  GLINT_OBS_TIMER(timer, "glint.nlp.embed_ms");
  FloatVec v = Average(Tokenizer::Words(sentence));
  std::lock_guard<std::mutex> lk(sentence_mu_);
  return embed_cache_.try_emplace(sentence, std::move(v)).first->second;
}

FloatVec EmbeddingModel::EncodeSentence(const std::string& sentence) const {
  {
    std::lock_guard<std::mutex> lk(sentence_mu_);
    auto it = encode_cache_.find(sentence);
    if (it != encode_cache_.end()) {
      GLINT_OBS_COUNT("glint.nlp.sentence_cache.hits", 1);
      return it->second;
    }
  }
  GLINT_OBS_COUNT("glint.nlp.sentence_cache.misses", 1);
  GLINT_OBS_TIMER(timer, "glint.nlp.embed_ms");
  const Lexicon& lex = Lexicon::Instance();
  auto tokens = Tokenizer::Words(sentence);
  FloatVec out(dim_, 0.f);
  int count = 0;
  size_t pos = 0;
  for (const auto& t : tokens) {
    ++pos;
    if (lex.IsStopWord(t) || lex.IsNamedEntity(t)) continue;
    const FloatVec& w = WordVector(t);
    // Positional mixing: add a small position-dependent fraction of the
    // shifted vector. Keeps the cosine geometry dominant (shifted random
    // vectors are near-orthogonal, so a small alpha is a small nudge) while
    // making word order observable, as in a real sentence encoder.
    const float alpha =
        0.25f * static_cast<float>((pos * 7) % 5) / 5.0f;
    for (size_t i = 0; i < dim_; ++i) {
      out[i] += w[i] + alpha * w[(i + 1) % dim_];
    }
    ++count;
  }
  if (count > 0) ScaleInPlace(&out, 1.0f / static_cast<float>(count));
  std::lock_guard<std::mutex> lk(sentence_mu_);
  return encode_cache_.try_emplace(sentence, std::move(out)).first->second;
}

}  // namespace glint::nlp
