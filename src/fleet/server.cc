#include "fleet/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/obs.h"

namespace glint::fleet {

FleetServer::FleetServer(ShardedFleet* fleet, Config config)
    : fleet_(fleet), config_(config) {
  GLINT_CHECK(fleet_ != nullptr);
}

FleetServer::~FleetServer() { Stop(); }

Status FleetServer::Start() {
  GLINT_CHECK(listen_fd_.load() < 0);  // Start is one-shot
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError("bind port " +
                                      std::to_string(config_.port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, config_.backlog) != 0) {
    const Status st =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status st =
        Status::IOError("getsockname: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_.store(fd, std::memory_order_release);
  bus_ = std::make_unique<EventBus>(fleet_, config_.bus);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FleetServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    // Closing the listener wakes accept(); the loop then exits.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Taking ownership of the handle and shutting the fd down under one
    // lock hold: the serving thread cannot have closed (and the OS
    // recycled) an fd that is still in the map.
    for (auto& [fd, t] : conn_threads_) {
      ::shutdown(fd, SHUT_RDWR);
      threads.push_back(std::move(t));
    }
    conn_threads_.clear();
    for (auto& t : done_threads_) threads.push_back(std::move(t));
    done_threads_.clear();
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (bus_ != nullptr) bus_->Stop();  // drains everything accepted
}

void FleetServer::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // Stop() already retired the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM || errno == EAGAIN) {
        // Transient resource pressure: the pending connection stays in
        // the backlog; back off briefly rather than abandoning the
        // listener while the server still looks alive.
        GLINT_OBS_COUNT("glint.fleet.server.accept_backoffs", 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      if (listen_fd_.load(std::memory_order_acquire) < 0) {
        return;  // Stop() closed the listener out from under accept()
      }
      GLINT_OBS_COUNT("glint.fleet.server.accept_errors", 1);
      return;  // the listening socket itself is broken
    }
    ReapDoneThreads();
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    GLINT_OBS_COUNT("glint.fleet.server.connections", 1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace(fd, std::thread([this, fd] { ServeConnection(fd); }));
  }
}

void FleetServer::ReapDoneThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    done.swap(done_threads_);
  }
  // A done thread has already passed its last conn_mu_ hold; joining
  // outside the lock only waits for its final close()+return.
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

void FleetServer::ServeConnection(int fd) {
  std::vector<char> payload;
  for (;;) {
    Status st = wire::RecvFrame(fd, &payload);
    if (st.code() == StatusCode::kNotFound) break;  // clean close
    if (!st.ok()) {
      // Malformed or torn frame: answer if the pipe still works, then
      // drop the connection — the stream cannot be resynchronized.
      GLINT_OBS_COUNT("glint.fleet.server.bad_frames", 1);
      (void)wire::SendFrame(fd, wire::EncodeReply(wire::AckFor(st)));
      break;
    }
    wire::Request req;
    st = wire::DecodeRequest(payload, &req);
    wire::Reply reply;
    if (!st.ok()) {
      // The frame itself was intact, so the stream is still in sync: an
      // unparseable body earns an error ack, not a disconnect.
      GLINT_OBS_COUNT("glint.fleet.server.bad_requests", 1);
      reply = wire::AckFor(st);
    } else {
      GLINT_OBS_COUNT("glint.fleet.server.requests", 1);
      reply = Dispatch(req);
    }
    if (!wire::SendFrame(fd, wire::EncodeReply(reply)).ok()) break;
  }
  {
    // Retire our map entry before closing the fd: Stop() must never
    // shutdown() a number the OS has already recycled for an unrelated
    // file. Moving our own thread handle onto done_threads_ is safe — the
    // joiner simply waits out the few instructions left below. If Stop()
    // already emptied the map, it owns the handle and the shutdown.
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = conn_threads_.find(fd);
    if (it != conn_threads_.end()) {
      done_threads_.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
  }
  ::close(fd);
}

wire::Reply FleetServer::Dispatch(const wire::Request& req) {
  switch (req.type) {
    case wire::MsgType::kPing: {
      wire::Reply reply;
      reply.type = wire::MsgType::kPong;
      return reply;
    }
    case wire::MsgType::kAddHome:
    case wire::MsgType::kAddRule:
    case wire::MsgType::kRemoveRule:
    case wire::MsgType::kEvent: {
      BusMessage msg;
      msg.home = req.home;
      switch (req.type) {
        case wire::MsgType::kAddHome:
          msg.kind = BusMessage::Kind::kAddHome;
          msg.rules = req.rules;
          break;
        case wire::MsgType::kAddRule:
          msg.kind = BusMessage::Kind::kAddRule;
          msg.rule = req.rule;
          break;
        case wire::MsgType::kRemoveRule:
          msg.kind = BusMessage::Kind::kRemoveRule;
          msg.rule_id = req.rule_id;
          break;
        default:
          msg.kind = BusMessage::Kind::kEvent;
          msg.event = req.event;
          break;
      }
      return wire::AckFor(bus_->Post(std::move(msg)));
    }
    case wire::MsgType::kInspect: {
      // Inspect on the owning shard's consumer thread, behind everything
      // the bus already accepted for that shard. This is the only
      // race-free read while other connections keep posting: a flush
      // barrier alone would let the consumer apply a just-posted event
      // to the engine while we read it.
      Result<core::ThreatWarning> w =
          Status::FailedPrecondition("fleet server is stopping");
      const Status ran = bus_->RunOnShard(
          fleet_->ShardOf(req.home),
          [&] { w = fleet_->TryInspect(req.home, req.now_hours); });
      if (!ran.ok()) w = ran;
      wire::Reply reply;
      reply.type = wire::MsgType::kWarning;
      reply.code = static_cast<int32_t>(w.status().code());
      if (!w.ok()) {
        reply.message = w.status().ToString();
      } else {
        reply.threat = w.value().threat;
        reply.drifting = w.value().drifting;
        reply.confidence = w.value().confidence;
        reply.rendered = w.value().Render();
      }
      return reply;
    }
    case wire::MsgType::kStats: {
      // Read each shard on its own consumer thread (same discipline as
      // kInspect — a fleet-wide Flush is not a barrier against clients
      // still posting), then aggregate here. Shards are visited one at a
      // time, so the accumulators need no locking.
      core::DeploymentSession::CacheStats agg;
      uint64_t homes = 0;
      for (int k = 0; k < fleet_->num_shards(); ++k) {
        (void)bus_->RunOnShard(k, [&, k] {
          homes += fleet_->shard(k).num_homes();
          agg += fleet_->shard(k).AggregateStats();
          fleet_->PublishShardGauges(k);
        });  // only fails once Stop() has begun: report what we have
      }
      auto& reg = obs::Registry::Global();
      reg.GetGauge("glint.fleet.shards")->Set(fleet_->num_shards());
      reg.GetGauge("glint.fleet.homes")->Set(static_cast<int64_t>(homes));
      wire::Reply reply;
      reply.type = wire::MsgType::kStatsReply;
      reply.homes = homes;
      reply.rules = agg.rules;
      reply.events = agg.events;
      reply.inspects = agg.inspects;
      reply.bus_rejected = bus_->rejected();
      reply.bus_apply_errors = bus_->apply_errors();
      return reply;
    }
    default:
      return wire::AckFor(Status::InvalidArgument(
          "not a request type: " +
          std::to_string(static_cast<int>(req.type))));
  }
}

}  // namespace glint::fleet
