#include "fleet/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "graph/event_log.h"
#include "rules/rule_io.h"
#include "util/crc32c.h"

namespace glint::fleet::wire {

// ---- Framing ------------------------------------------------------------

void AppendFrame(std::vector<char>* out, const std::vector<char>& payload) {
  GLINT_CHECK(payload.size() <= kMaxFramePayload);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = util::Crc32c(payload.data(), payload.size());
  const char* lp = reinterpret_cast<const char*>(&len);
  const char* cp = reinterpret_cast<const char*>(&crc);
  out->insert(out->end(), lp, lp + sizeof len);
  out->insert(out->end(), cp, cp + sizeof crc);
  out->insert(out->end(), payload.begin(), payload.end());
}

Status DecodeFrame(util::ByteReader* r, std::vector<char>* payload) {
  uint32_t len = 0, crc = 0;
  if (!r->U32(&len) || !r->U32(&crc)) {
    return Status::InvalidArgument("wire: truncated frame header");
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("wire: oversized frame (" +
                                   std::to_string(len) + " bytes)");
  }
  if (len > r->remaining()) {
    return Status::InvalidArgument("wire: truncated frame payload");
  }
  payload->resize(len);
  if (len > 0 && !r->Raw(payload->data(), len)) {
    return Status::InvalidArgument("wire: truncated frame payload");
  }
  const uint32_t actual = util::Crc32c(payload->data(), payload->size());
  if (actual != crc) {
    return Status::InvalidArgument("wire: frame checksum mismatch");
  }
  return Status::OK();
}

// ---- Message codecs -----------------------------------------------------

std::vector<char> EncodeRequest(const Request& req) {
  util::ByteWriter w;
  w.U8(static_cast<uint8_t>(req.type));
  switch (req.type) {
    case MsgType::kPing:
    case MsgType::kStats:
      break;
    case MsgType::kAddHome:
      w.Str(req.home);
      w.U32(static_cast<uint32_t>(req.rules.size()));
      for (const auto& rule : req.rules) rules::WriteRule(&w, rule);
      break;
    case MsgType::kAddRule:
      w.Str(req.home);
      rules::WriteRule(&w, req.rule);
      break;
    case MsgType::kRemoveRule:
      w.Str(req.home);
      w.I32(req.rule_id);
      break;
    case MsgType::kEvent:
      w.Str(req.home);
      graph::WriteEvent(&w, req.event);
      break;
    case MsgType::kInspect:
      w.Str(req.home);
      w.F64(req.now_hours);
      break;
    default:
      GLINT_CHECK(false && "EncodeRequest: not a request type");
  }
  return w.TakeBuffer();
}

Status DecodeRequest(const std::vector<char>& payload, Request* req) {
  util::ByteReader r(payload);
  uint8_t type = 0;
  if (!r.U8(&type)) {
    return Status::InvalidArgument("wire request: missing type");
  }
  *req = Request();
  req->type = static_cast<MsgType>(type);
  switch (req->type) {
    case MsgType::kPing:
    case MsgType::kStats:
      break;
    case MsgType::kAddHome: {
      uint32_t n = 0;
      if (!r.Str(&req->home) || !r.U32(&n) || n > r.remaining()) {
        return Status::InvalidArgument("wire AddHome: truncated body");
      }
      req->rules.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!rules::ReadRule(&r, &req->rules[i])) {
          return Status::InvalidArgument("wire AddHome: truncated rule");
        }
      }
      break;
    }
    case MsgType::kAddRule:
      if (!r.Str(&req->home) || !rules::ReadRule(&r, &req->rule)) {
        return Status::InvalidArgument("wire AddRule: truncated body");
      }
      break;
    case MsgType::kRemoveRule:
      if (!r.Str(&req->home) || !r.I32(&req->rule_id)) {
        return Status::InvalidArgument("wire RemoveRule: truncated body");
      }
      break;
    case MsgType::kEvent:
      if (!r.Str(&req->home) || !graph::ReadEvent(&r, &req->event)) {
        return Status::InvalidArgument("wire Event: truncated body");
      }
      break;
    case MsgType::kInspect:
      if (!r.Str(&req->home) || !r.F64(&req->now_hours)) {
        return Status::InvalidArgument("wire Inspect: truncated body");
      }
      break;
    default:
      return Status::InvalidArgument("wire request: unknown type " +
                                     std::to_string(type));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("wire request: trailing bytes");
  }
  return Status::OK();
}

std::vector<char> EncodeReply(const Reply& reply) {
  util::ByteWriter w;
  w.U8(static_cast<uint8_t>(reply.type));
  switch (reply.type) {
    case MsgType::kPong:
      break;
    case MsgType::kAck:
      w.I32(reply.code);
      w.Str(reply.message);
      break;
    case MsgType::kWarning:
      w.I32(reply.code);
      w.Str(reply.message);
      w.U8(reply.threat ? 1 : 0);
      w.U8(reply.drifting ? 1 : 0);
      w.F64(reply.confidence);
      w.Str(reply.rendered);
      break;
    case MsgType::kStatsReply:
      w.U64(reply.homes);
      w.U64(reply.rules);
      w.U64(reply.events);
      w.U64(reply.inspects);
      w.U64(reply.bus_rejected);
      w.U64(reply.bus_apply_errors);
      break;
    default:
      GLINT_CHECK(false && "EncodeReply: not a reply type");
  }
  return w.TakeBuffer();
}

Status DecodeReply(const std::vector<char>& payload, Reply* reply) {
  util::ByteReader r(payload);
  uint8_t type = 0;
  if (!r.U8(&type)) {
    return Status::InvalidArgument("wire reply: missing type");
  }
  *reply = Reply();
  reply->type = static_cast<MsgType>(type);
  uint8_t threat = 0, drifting = 0;
  switch (reply->type) {
    case MsgType::kPong:
      break;
    case MsgType::kAck:
      if (!r.I32(&reply->code) || !r.Str(&reply->message)) {
        return Status::InvalidArgument("wire Ack: truncated body");
      }
      break;
    case MsgType::kWarning:
      if (!r.I32(&reply->code) || !r.Str(&reply->message) ||
          !r.U8(&threat) || !r.U8(&drifting) || !r.F64(&reply->confidence) ||
          !r.Str(&reply->rendered)) {
        return Status::InvalidArgument("wire Warning: truncated body");
      }
      reply->threat = threat != 0;
      reply->drifting = drifting != 0;
      break;
    case MsgType::kStatsReply:
      if (!r.U64(&reply->homes) || !r.U64(&reply->rules) ||
          !r.U64(&reply->events) || !r.U64(&reply->inspects) ||
          !r.U64(&reply->bus_rejected) || !r.U64(&reply->bus_apply_errors)) {
        return Status::InvalidArgument("wire StatsReply: truncated body");
      }
      break;
    default:
      return Status::InvalidArgument("wire reply: unknown type " +
                                     std::to_string(type));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("wire reply: trailing bytes");
  }
  return Status::OK();
}

Reply AckFor(const Status& st) {
  Reply reply;
  reply.type = MsgType::kAck;
  reply.code = static_cast<int32_t>(st.code());
  reply.message = st.ok() ? "" : st.ToString();
  return reply;
}

// ---- Blocking socket I/O ------------------------------------------------

namespace {

/// Full write with EINTR retry; false on any hard failure.
bool WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

/// Full read with EINTR retry. Returns bytes read (< n only at EOF).
size_t ReadAll(int fd, char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return off;
    }
    if (r == 0) return off;  // EOF
    off += static_cast<size_t>(r);
  }
  return off;
}

}  // namespace

Status SendFrame(int fd, const std::vector<char>& payload) {
  std::vector<char> frame;
  frame.reserve(payload.size() + 8);
  AppendFrame(&frame, payload);
  if (!WriteAll(fd, frame.data(), frame.size())) {
    return Status::IOError("wire send: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status RecvFrame(int fd, std::vector<char>* payload) {
  char header[8];
  const size_t got = ReadAll(fd, header, sizeof header);
  if (got == 0) {
    return Status::NotFound("wire: connection closed");  // clean EOF
  }
  if (got < sizeof header) {
    return Status::IOError("wire: EOF inside frame header");
  }
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, header, sizeof len);
  std::memcpy(&crc, header + 4, sizeof crc);
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("wire: oversized frame (" +
                                   std::to_string(len) + " bytes)");
  }
  payload->resize(len);
  if (len > 0 && ReadAll(fd, payload->data(), len) < len) {
    return Status::IOError("wire: EOF inside frame payload");
  }
  if (util::Crc32c(payload->data(), payload->size()) != crc) {
    return Status::InvalidArgument("wire: frame checksum mismatch");
  }
  return Status::OK();
}

// ---- Client -------------------------------------------------------------

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Connect(const std::string& host, int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return Status::OK();
}

Status Client::Call(const Request& req, Reply* reply) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  GLINT_RETURN_IF_ERROR(SendFrame(fd_, EncodeRequest(req)));
  std::vector<char> payload;
  GLINT_RETURN_IF_ERROR(RecvFrame(fd_, &payload));
  return DecodeReply(payload, reply);
}

}  // namespace glint::fleet::wire
