#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/builder.h"
#include "graph/event_log.h"
#include "graph/interaction_graph.h"
#include "rules/rule.h"
#include "util/binio.h"
#include "util/status.h"

namespace glint::graph {

/// Incrementally maintained interaction graph of one deployment (the live
/// counterpart of GraphBuilder::BuildFromRules / BuildRealTime).
///
/// Instead of re-running the edge predicate over all O(n²) pairs and
/// re-embedding every rule on each inspection, LiveGraph keeps:
///   - one Node (features) per rule, computed once on AddRule;
///   - the pairwise semantic-correlation and shared-device matrices, where
///     adding or removing a rule touches only that rule's O(n) row/column;
///   - per-rule trigger/effect observation times, appended on OnEvent and
///     pruned in place by the sliding window (edge *liveness* is then a
///     cheap min/max comparison per semantically-correlated pair).
///
/// Determinism contract: MaterializeStatic() is bit-identical to
/// GraphBuilder::BuildFromRules over CurrentRules(), and
/// MaterializeRealTime(now) is bit-identical to GraphBuilder::BuildRealTime
/// over (CurrentRules(), the same event sequence, now) — same node order,
/// same edge insertion order, same labels — provided the edge predicate and
/// node factory are pure and `now` is monotonically non-decreasing across
/// OnEvent/Materialize calls (the serving regime).
class LiveGraph {
 public:
  struct Config {
    /// Chronological-pruning window (Sec. 3.2.2); must match the
    /// window_hours passed to BuildRealTime for equivalence.
    double window_hours = 3.0;
    /// Mirror of GraphBuilder::Config::device_edges.
    bool device_edges = true;
  };

  /// Builds a Node (features) for a rule; typically GraphBuilder::MakeNode.
  using NodeFactory = std::function<Node(const rules::Rule&)>;

  LiveGraph(Config config, EdgePredicate edge_pred, NodeFactory make_node);

  /// Adds a rule: embeds it once and evaluates its O(n) pair row/column
  /// against the existing rules. Returns the rule's node index.
  int AddRule(const rules::Rule& rule);

  /// Removes the first rule with this id (erasing its row/column from the
  /// pair matrices and its observation times). Returns false if absent.
  bool RemoveRule(int rule_id);

  /// Ingests one event: updates the matching rules' trigger/effect time
  /// lists and prunes observations that have slid out of every possible
  /// future window. Events must arrive (approximately) chronologically.
  void OnEvent(const Event& e);

  int num_rules() const { return static_cast<int>(entries_.size()); }

  /// The deployed rules in node order (the order a cold rebuild must use).
  std::vector<rules::Rule> CurrentRules() const;

  /// Per-rule identity hashes (content hash mixed with the rule id), in
  /// node order; used by sessions to key verdict/tensor caches.
  std::vector<uint64_t> IdentityHashes() const;

  /// Allocation-reusing variant: overwrites *out with the identity hashes
  /// so a warm session keys its caches without a fresh vector per Inspect.
  void IdentityHashesInto(std::vector<uint64_t>* out) const;

  /// Directed edges of the static graph, in BuildFromRules insertion order.
  std::vector<Edge> StaticEdges() const;

  /// Directed edges of the event-pruned graph at `now`, in BuildRealTime
  /// insertion order. Requires now >= the latest ingested event time.
  std::vector<Edge> RealTimeEdges(double now_hours) const;

  /// Assembles the full interaction graph (nodes + analyzer labels) from a
  /// previously computed edge list (StaticEdges / RealTimeEdges), saving
  /// the caller a recomputation when it already holds the edges.
  InteractionGraph Materialize(const std::vector<Edge>& edges) const;

  /// Full static interaction graph (nodes + edges + analyzer labels);
  /// bit-identical to GraphBuilder::BuildFromRules(CurrentRules()).
  InteractionGraph MaterializeStatic() const;

  /// Full real-time graph; bit-identical to BuildRealTime at `now`.
  InteractionGraph MaterializeRealTime(double now_hours) const;

  /// Latest event time ingested (0 if none).
  double latest_event_hours() const { return latest_; }

  /// Chronologically sorted events still inside the retained horizon —
  /// together with CurrentRules() and latest_event_hours(), the complete
  /// logical state of the graph (everything else is derived).
  const std::vector<Event>& retained_events() const { return retained_; }

  /// Serializes the logical state (deployed rules in node order, retained
  /// events, watermark) — the serving snapshot payload of one home.
  void SerializeTo(util::ByteWriter* w) const;

  /// Rebuilds this graph from a SerializeTo payload by replaying AddRule /
  /// OnEvent, restoring state bit-identical to the serialized instance
  /// (same node order, same pair matrices, same observation times) given
  /// the same edge predicate and node factory. Requires an empty graph;
  /// returns InvalidArgument on a malformed payload.
  Status Restore(util::ByteReader* r);

 private:
  struct Entry {
    rules::Rule rule;
    Node node;
    uint64_t identity_hash = 0;
    /// Sorted observation times within the retained horizon.
    std::vector<double> trigger_times;
    std::vector<double> effect_times;
  };

  /// True when edge i -> j is alive at `now`: some effect of rule i was
  /// observed before (or at) some firing of rule j's trigger, both within
  /// [now - window, now].
  bool EdgeLive(size_t i, size_t j, double now_hours) const;

  /// Recomputes `entry`'s observation times from the retained events.
  void ReplayEvents(Entry* entry) const;

  /// Drops retained events and observation times older than
  /// latest - window (they can never re-enter a window once `now` has
  /// reached `latest`).
  void Prune();

  Config config_;
  EdgePredicate edge_pred_;
  NodeFactory make_node_;
  std::vector<Entry> entries_;
  /// sem_[i][j]: edge predicate verdict for the ordered pair (i, j).
  std::vector<std::vector<char>> sem_;
  /// share_[i][j]: symmetric shared-device relation.
  std::vector<std::vector<char>> share_;
  /// Chronologically sorted events within the retained horizon.
  std::vector<Event> retained_;
  double latest_ = 0;
};

}  // namespace glint::graph
