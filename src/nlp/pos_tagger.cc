#include "nlp/pos_tagger.h"

#include <cctype>

#include "util/string_utils.h"

namespace glint::nlp {
namespace {

bool IsNumber(const std::string& w) {
  if (w.empty()) return false;
  for (char c : w) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Pos SuffixGuess(const std::string& w) {
  if (IsNumber(w)) return Pos::kNumber;
  if (EndsWith(w, "ing") || EndsWith(w, "ed")) return Pos::kVerb;
  if (EndsWith(w, "ly")) return Pos::kAdverb;
  if (EndsWith(w, "ous") || EndsWith(w, "ful") || EndsWith(w, "ive")) {
    return Pos::kAdjective;
  }
  return Pos::kNoun;
}

}  // namespace

std::vector<TaggedToken> PosTagger::Tag(const std::vector<Token>& tokens) {
  const Lexicon& lex = Lexicon::Instance();
  std::vector<TaggedToken> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    Pos pos = lex.Contains(t.text) ? lex.PosOf(t.text) : SuffixGuess(t.text);
    out.push_back({t.text, pos});
  }
  // Contextual repair.
  for (size_t i = 0; i < out.size(); ++i) {
    if (i > 0 && out[i - 1].pos == Pos::kDeterminer &&
        out[i].pos == Pos::kVerb && !lex.Contains(out[i].text)) {
      out[i].pos = Pos::kNoun;  // "the <unknown-ing>" reads as a noun.
    }
    if (i == 0 && out[i].pos == Pos::kNoun && !lex.Contains(out[i].text)) {
      // Clause-initial unknown in imperative position: likely a verb
      // ("Dim the lights" with "dim" unknown would land here).
      if (out.size() > 1 && (out[1].pos == Pos::kDeterminer ||
                             out[1].pos == Pos::kNoun)) {
        out[i].pos = Pos::kVerb;
      }
    }
  }
  return out;
}

std::vector<TaggedToken> PosTagger::TagSentence(const std::string& sentence) {
  return Tag(Tokenizer::Tokenize(sentence));
}

NounsVerbs ExtractNounsVerbs(const std::vector<TaggedToken>& tagged) {
  const Lexicon& lex = Lexicon::Instance();
  NounsVerbs nv;
  for (const auto& t : tagged) {
    if (lex.IsNamedEntity(t.text) || lex.IsStopWord(t.text)) continue;
    if (t.pos == Pos::kNoun) {
      nv.nouns.push_back(t.text);
    } else if (t.pos == Pos::kVerb) {
      nv.verbs.push_back(t.text);
    }
  }
  return nv;
}

}  // namespace glint::nlp
