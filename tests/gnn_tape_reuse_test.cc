// Proves the arena-backed reusable tape is bit-identical to a fresh tape
// in every mode the system uses (supervised, contrastive, freeze-leaves,
// tracked-constants), and that a second identical forward/backward on a
// Reset() tape performs no heap allocation at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include "gnn/models.h"
#include "gnn/tensor.h"
#include "gnn/trainer.h"
#include "graph/builder.h"
#include "nlp/embedding.h"
#include "rules/corpus.h"
#include "util/thread_pool.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps the
// counter, so a measured region's delta is its exact heap-allocation count.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_allocs{0};
}  // namespace

__attribute__((noinline)) void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t n) { return ::operator new(n); }
__attribute__((noinline)) void operator delete(void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// Nothrow forms too (libstdc++ temporary buffers use them): with every
// variant funneled through malloc/free, ASan sees matched pairs.
__attribute__((noinline)) void* operator new(std::size_t n,
                                             const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
__attribute__((noinline)) void* operator new[](
    std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
__attribute__((noinline)) void operator delete(
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace glint::gnn {
namespace {

// Bitwise float-vector equality: stricter than ==, catches -0.0 vs +0.0
// and distinguishes NaN payloads.
bool SameBits(const Matrix::Storage& a, const Matrix::Storage& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

class TapeReuseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Embedding models are only needed while building the dataset; scoped
    // so the ASan stage sees no leaks.
    auto wm = std::make_unique<nlp::EmbeddingModel>(300, 17);
    auto sm = std::make_unique<nlp::EmbeddingModel>(512, 18);
    rules::CorpusConfig cc;
    cc.ifttt = 120;
    cc.smartthings = 20;
    cc.alexa = 30;
    cc.google_assistant = 20;
    cc.home_assistant = 20;
    auto corpus = rules::CorpusGenerator(cc).Generate();
    graph::GraphBuilder::Config bc;
    bc.max_nodes = 12;
    bc.seed = 1234;
    graph::GraphBuilder builder(bc, wm.get(), sm.get());
    graphs_ = new std::vector<GnnGraph>(
        ToGnnGraphs(builder.BuildDataset(corpus, 10)));
  }

  static void TearDownTestSuite() {
    delete graphs_;
    graphs_ = nullptr;
  }

  // One supervised step: forward, weighted cross-entropy, backward into the
  // sink. Returns the loss value.
  static float SupervisedStep(Tape* t, GraphModel* model, const GnnGraph& g,
                              Tape::GradSink* sink) {
    t->set_grad_sink(sink);
    ForwardResult r = model->Forward(t, g);
    Tensor* loss = SoftmaxCrossEntropy(t, r.logits, g.label, 1.25f);
    t->Backward(loss);
    return loss->value.data[0];
  }

  // One contrastive step over a pair of graphs.
  static float ContrastiveStep(Tape* t, GraphModel* model, const GnnGraph& a,
                               const GnnGraph& b, bool same,
                               Tape::GradSink* sink) {
    t->set_grad_sink(sink);
    Tensor* za = model->Forward(t, a).embedding;
    Tensor* zb = model->Forward(t, b).embedding;
    Tensor* loss = ContrastiveLoss(t, za, zb, same, 5.0f);
    t->Backward(loss);
    return loss->value.data[0];
  }

  // Snapshot of a grad sink in parameter-registration order.
  static std::vector<Matrix::Storage> SinkBits(
      const std::vector<Parameter*>& params, const Tape::GradSink& sink) {
    std::vector<Matrix::Storage> out;
    for (Parameter* p : params) {
      auto it = sink.find(p);
      out.push_back(it == sink.end() ? Matrix::Storage{}
                                     : it->second.data);
    }
    return out;
  }

  static std::vector<GnnGraph>* graphs_;
};

std::vector<GnnGraph>* TapeReuseTest::graphs_ = nullptr;

TEST_F(TapeReuseTest, SupervisedReusedTapeMatchesFreshBitwise) {
  ItgnnModel::Config mc;
  mc.seed = 21;
  ItgnnModel fresh_model(mc), reused_model(mc);
  auto fresh_params = fresh_model.Parameters();
  auto reused_params = reused_model.Parameters();

  Tape reused;
  for (const auto& g : *graphs_) {
    Tape::GradSink fresh_sink, reused_sink;
    Tape tape;  // fresh tape per sample: the old allocation pattern
    const float fresh_loss = SupervisedStep(&tape, &fresh_model, g,
                                            &fresh_sink);
    const float reused_loss = SupervisedStep(&reused, &reused_model, g,
                                             &reused_sink);
    reused.Reset();

    EXPECT_EQ(0, std::memcmp(&fresh_loss, &reused_loss, sizeof(float)));
    const auto fresh_bits = SinkBits(fresh_params, fresh_sink);
    const auto reused_bits = SinkBits(reused_params, reused_sink);
    ASSERT_EQ(fresh_bits.size(), reused_bits.size());
    for (size_t i = 0; i < fresh_bits.size(); ++i) {
      EXPECT_TRUE(SameBits(fresh_bits[i], reused_bits[i])) << "param " << i;
    }
  }
}

TEST_F(TapeReuseTest, ContrastiveReusedTapeMatchesFreshBitwise) {
  ItgnnModel::Config mc;
  mc.seed = 22;
  ItgnnModel fresh_model(mc), reused_model(mc);
  auto fresh_params = fresh_model.Parameters();
  auto reused_params = reused_model.Parameters();

  Tape reused;
  const auto& gs = *graphs_;
  for (size_t i = 0; i + 1 < gs.size(); i += 2) {
    const bool same = (i / 2) % 2 == 0;
    Tape::GradSink fresh_sink, reused_sink;
    Tape tape;
    const float fresh_loss = ContrastiveStep(&tape, &fresh_model, gs[i],
                                             gs[i + 1], same, &fresh_sink);
    const float reused_loss = ContrastiveStep(&reused, &reused_model, gs[i],
                                              gs[i + 1], same, &reused_sink);
    reused.Reset();

    EXPECT_EQ(0, std::memcmp(&fresh_loss, &reused_loss, sizeof(float)));
    const auto fresh_bits = SinkBits(fresh_params, fresh_sink);
    const auto reused_bits = SinkBits(reused_params, reused_sink);
    ASSERT_EQ(fresh_bits.size(), reused_bits.size());
    for (size_t i2 = 0; i2 < fresh_bits.size(); ++i2) {
      EXPECT_TRUE(SameBits(fresh_bits[i2], reused_bits[i2]))
          << "param " << i2;
    }
  }
}

TEST_F(TapeReuseTest, FreezeLeavesReusedTapeMatchesFreshBitwise) {
  ItgnnModel::Config mc;
  mc.seed = 23;
  ItgnnModel model(mc);

  Tape reused;
  for (const auto& g : *graphs_) {
    Tape tape;
    tape.set_freeze_leaves(true);
    ForwardResult fresh = model.Forward(&tape, g);

    reused.set_freeze_leaves(true);
    ForwardResult warm = model.Forward(&reused, g);

    EXPECT_TRUE(SameBits(fresh.logits->value.data, warm.logits->value.data));
    EXPECT_TRUE(
        SameBits(fresh.embedding->value.data, warm.embedding->value.data));
    reused.Reset();
  }
}

TEST_F(TapeReuseTest, TrackedConstantsReusedTapeMatchesFreshBitwise) {
  // The explainer's gradient screen: freeze leaves, track input constants,
  // backward from the class margin, read d(margin)/d(features).
  ItgnnModel::Config mc;
  mc.seed = 24;
  ItgnnModel model(mc);

  auto screen = [&](Tape* t,
                    const GnnGraph& g) -> std::vector<Matrix::Storage> {
    t->set_freeze_leaves(true);
    t->set_track_constants(true);
    ForwardResult r = model.Forward(t, g);
    t->set_track_constants(false);
    Matrix dir(2, 1);
    dir.At(0, 0) = -1.f;
    dir.At(1, 0) = 1.f;
    Tensor* margin = MatMul(t, r.logits, t->Constant(dir));
    t->Backward(margin);
    std::vector<Matrix::Storage> grads;
    for (const Tensor* x : t->tracked_constants()) {
      grads.push_back(x->grad.data);
    }
    return grads;
  };

  Tape reused;
  for (const auto& g : *graphs_) {
    Tape tape;
    const auto fresh = screen(&tape, g);
    const auto warm = screen(&reused, g);
    reused.Reset();

    ASSERT_FALSE(fresh.empty());
    ASSERT_EQ(fresh.size(), warm.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_TRUE(SameBits(fresh[i], warm[i])) << "input " << i;
    }
  }
}

TEST_F(TapeReuseTest, SecondIdenticalPassAllocatesNothing) {
  // Serial pool so ParallelFor runs inline: any allocation counted below
  // comes from the tape machinery itself, not task dispatch.
  ThreadPool::SetGlobalThreads(1);
  GcnModel model(300, 16, 2, 31);
  const GnnGraph* homo = nullptr;
  for (const auto& g : *graphs_) {
    if (!g.IsHeterogeneous() && g.type_rows[0].size() > 1) homo = &g;
  }
  ASSERT_NE(homo, nullptr);
  homo->adj_norm.CsrView();  // build the CSR cache outside the measurement
  homo->TypeMetaView();

  Tape tape;
  Tape::GradSink sink;
  SupervisedStep(&tape, &model, *homo, &sink);  // warm-up pass
  const Tape::Stats warm_stats = tape.stats();
  EXPECT_GT(warm_stats.nodes, 0u);
  EXPECT_GT(warm_stats.bytes_retained, 0u);
  tape.Reset();
  EXPECT_EQ(tape.stats().nodes, 0u);

  const size_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  SupervisedStep(&tape, &model, *homo, &sink);  // identical warm pass
  const size_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  const Tape::Stats warm2 = tape.stats();
  tape.Reset();

  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "warm forward/backward must not touch the heap";
  EXPECT_EQ(warm2.growth_allocs, warm_stats.growth_allocs)
      << "arena capacity must not grow on an identical replay";
  EXPECT_EQ(warm2.nodes, warm_stats.nodes);
}

TEST_F(TapeReuseTest, ScopedTapeReusesThreadLocalTape) {
  const Tape* first = nullptr;
  {
    ScopedTape lease;
    first = lease.get();
    lease->Constant(Matrix(2, 2));
    EXPECT_EQ(lease->size(), 1u);
  }
  {
    ScopedTape lease;
    // Same thread: the pooled tape comes back, already Reset.
    EXPECT_EQ(lease.get(), first);
    EXPECT_EQ(lease->size(), 0u);
    // Nesting acquires a distinct tape; release order is stack-ordered.
    ScopedTape nested;
    EXPECT_NE(nested.get(), lease.get());
  }
}

}  // namespace
}  // namespace glint::gnn
