#pragma once

#include <functional>

#include "gnn/models.h"
#include "ml/metrics.h"

namespace glint::gnn {

/// Training configuration shared by the supervised (Eq. 2) and contrastive
/// (Eq. 1) regimes.
struct TrainConfig {
  int epochs = 12;
  double lr = 2e-3;
  double weight_decay = 1e-5;
  /// Eq. 2's β: weight of the VIPool pooling loss.
  double beta_pool = 0.3;
  /// Oversample the minority class by this factor in the training set
  /// (Sec. 4.4 doubles the vulnerable graphs).
  double oversample_factor = 2.0;
  /// Eq. 1's ε margin for contrastive training.
  double contrastive_margin = 4.0;
  /// Contrastive pairs drawn per epoch = pairs_per_sample * n.
  double pairs_per_sample = 1.0;
  uint64_t seed = 2024;
  bool verbose = false;
};

/// Trainer for graph models: supervised classification with class weights
/// and oversampling (ITGNN-S & baselines), or contrastive representation
/// learning (ITGNN-C).
class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}
  Trainer() : Trainer(TrainConfig()) {}

  /// Supervised training with Eq. 2 (class-weighted CE + β L_pool).
  void TrainSupervised(GraphModel* model, const std::vector<GnnGraph>& train);

  /// Contrastive training with Eq. 1 on pairs of graphs.
  void TrainContrastive(GraphModel* model, const std::vector<GnnGraph>& train);

  /// Weighted evaluation metrics on a test set.
  static ml::Metrics Evaluate(GraphModel* model,
                              const std::vector<GnnGraph>& test);

  /// Predicted class for one graph.
  static int Predict(GraphModel* model, const GnnGraph& g);

  /// Graph embedding for one graph.
  static FloatVec Embed(GraphModel* model, const GnnGraph& g);

  /// Embeddings for a whole set.
  static std::vector<FloatVec> EmbedAll(GraphModel* model,
                                        const std::vector<GnnGraph>& set);

 private:
  TrainConfig config_;
};

/// Random 80/20-style split of a graph dataset.
void SplitGraphs(const std::vector<GnnGraph>& all, double train_frac, Rng* rng,
                 std::vector<GnnGraph>* train, std::vector<GnnGraph>* test);

/// Class-1 oversampling for graph lists.
std::vector<GnnGraph> OversampleGraphs(const std::vector<GnnGraph>& train,
                                       double factor, Rng* rng);

}  // namespace glint::gnn
