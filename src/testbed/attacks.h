#pragma once

#include "testbed/home.h"

namespace glint::testbed {

/// The five attack/misbehaviour models of Sec. 4.8.1.
enum class AttackType {
  kNone = 0,
  kFakeCommand,      ///< targeted compromise: attacker issues a command
  kStealthyCommand,  ///< targeted compromise: vacuum started to fire sensors
  kFakeEvent,        ///< interaction abuse: forged sensor event
  kEventLoss,        ///< interaction abuse: events dropped from the log
  kCommandFailure,   ///< misconfiguration: commands silently fail
};
constexpr int kNumAttackTypes = 6;

const char* AttackName(AttackType a);

/// Applies one attack instance to the running home at its current time.
/// kEventLoss removes recent events from the log; the others inject.
void ApplyAttack(AttackType type, SmartHome* home, Rng* rng);

}  // namespace glint::testbed
