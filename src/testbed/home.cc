#include "testbed/home.h"

#include <cmath>

namespace glint::testbed {

using rules::Channel;
using rules::Command;
using rules::DeviceType;
using rules::Location;

std::vector<DeviceInstance> SmartHome::DefaultLayout() {
  // Fig. 10: light bulbs, motion sensors, contact sensors, a temperature
  // sensor, a presence sensor, a camera, a smart button — plus the
  // actuators the deployed automations command.
  return {
      {DeviceType::kLight, Location::kLivingRoom, "off"},
      {DeviceType::kLight, Location::kBedroom, "off"},
      {DeviceType::kLight, Location::kKitchen, "off"},
      {DeviceType::kMotionSensor, Location::kLivingRoom, "inactive"},
      {DeviceType::kMotionSensor, Location::kHallway, "inactive"},
      {DeviceType::kContactSensor, Location::kLivingRoom, "closed"},
      {DeviceType::kTemperatureSensor, Location::kLivingRoom, "normal"},
      {DeviceType::kPresenceSensor, Location::kAny, "present"},
      {DeviceType::kCamera, Location::kHallway, "idle"},
      {DeviceType::kButton, Location::kBedroom, "idle"},
      {DeviceType::kWindow, Location::kLivingRoom, "closed"},
      {DeviceType::kDoor, Location::kHallway, "closed"},
      {DeviceType::kLock, Location::kHallway, "unlocked"},
      {DeviceType::kAc, Location::kLivingRoom, "off"},
      {DeviceType::kHeater, Location::kLivingRoom, "off"},
      {DeviceType::kTv, Location::kLivingRoom, "off"},
      {DeviceType::kSpeaker, Location::kLivingRoom, "stopped"},
      {DeviceType::kVacuum, Location::kLivingRoom, "off"},
      {DeviceType::kHumidifier, Location::kBedroom, "off"},
      {DeviceType::kSmokeAlarm, Location::kKitchen, "quiet"},
      {DeviceType::kSecuritySystem, Location::kAny, "disarmed"},
      {DeviceType::kPhone, Location::kAny, "idle"},
  };
}

SmartHome::SmartHome(Config config, std::vector<rules::Rule> deployed)
    : config_(config),
      rng_(config.seed),
      now_(config.start_hour),
      deployed_(std::move(deployed)),
      devices_(DefaultLayout()) {
  for (int l = 0; l < rules::kNumLocations; ++l) {
    env_.temperature[l] = 70;
    env_.humidity[l] = 45;
  }
}

DeviceInstance* SmartHome::FindDevice(DeviceType type, Location loc) {
  DeviceInstance* any_match = nullptr;
  for (auto& d : devices_) {
    if (d.type != type) continue;
    if (d.location == loc) return &d;
    if (loc == Location::kAny || d.location == Location::kAny) {
      any_match = &d;
    }
    if (any_match == nullptr) any_match = &d;  // same type, other room
  }
  return any_match;
}

std::string SmartHome::DeviceState(DeviceType type) const {
  for (const auto& d : devices_) {
    if (d.type == type) return d.state;
  }
  return "";
}

bool SmartHome::ConditionsHold(const rules::Rule& r) const {
  for (const auto& c : r.conditions) {
    if (c.has_time) {
      const double hour = std::fmod(now_, 24.0);
      if (hour < c.hour_lo || hour > c.hour_hi) return false;
      continue;
    }
    if (!c.state.empty()) {
      bool matched = false;
      for (const auto& d : devices_) {
        if (d.type == c.device && d.state == c.state) matched = true;
      }
      if (!matched) return false;
      continue;
    }
    if (c.cmp == rules::Comparator::kAbove || c.cmp == rules::Comparator::kBelow) {
      const int loc = static_cast<int>(
          r.location == Location::kAny ? Location::kLivingRoom : r.location);
      double value = 0;
      if (c.channel == Channel::kTemperature) value = env_.temperature[loc];
      if (c.channel == Channel::kHumidity) value = env_.humidity[loc];
      if (c.cmp == rules::Comparator::kAbove && !(value > c.lo)) return false;
      if (c.cmp == rules::Comparator::kBelow && !(value < c.lo)) return false;
    }
  }
  return true;
}

void SmartHome::ExecuteAction(const rules::ActionSpec& action, Location loc,
                              int source_rule_id, int depth) {
  if (rng_.Chance(config_.command_failure_rate)) return;  // silent failure
  DeviceInstance* dev = FindDevice(action.device, loc);
  const std::string new_state = rules::CommandResultState(action.command);
  Location event_loc = loc;
  if (dev != nullptr) {
    dev->state = new_state;
    event_loc = dev->location;
  }
  graph::Event e;
  e.time_hours = now_;
  e.device = action.device;
  e.location = event_loc;
  e.state = new_state;
  e.source_rule_id = source_rule_id;
  log_.Append(e);

  // Environmental side effects (fast ones manifest immediately; slow ones
  // nudge the continuous state so thresholds can be crossed next steps).
  for (const auto& eff : rules::EffectsOf(action.device, action.command)) {
    const int l = static_cast<int>(
        event_loc == Location::kAny ? Location::kLivingRoom : event_loc);
    if (eff.channel == Channel::kTemperature) {
      env_.temperature[l] += eff.direction * (eff.slow ? 2.5 : 5.0);
    } else if (eff.channel == Channel::kHumidity) {
      env_.humidity[l] += eff.direction * (eff.slow ? 3.0 : 6.0);
    } else if (eff.channel == Channel::kMotion && eff.direction > 0) {
      // e.g. a vacuum spuriously firing the motion sensor (trigger intake).
      graph::Event m;
      m.time_hours = now_ + 0.003;
      m.device = DeviceType::kMotionSensor;
      m.location = event_loc;
      m.state = "active";
      m.source_rule_id = source_rule_id;
      log_.Append(m);
      if (auto* ms = FindDevice(DeviceType::kMotionSensor, event_loc)) {
        ms->state = "active";
      }
      RunCascade(m, depth + 1);
    }
  }

  RunCascade(e, depth + 1);
}

bool SmartHome::NumericTriggerSatisfied(const rules::Rule& r) const {
  const auto& t = r.trigger;
  if (t.cmp != rules::Comparator::kAbove &&
      t.cmp != rules::Comparator::kBelow &&
      t.cmp != rules::Comparator::kBetween) {
    return true;  // state/time triggers are matched by the event itself
  }
  const int loc = static_cast<int>(
      r.location == Location::kAny ? Location::kLivingRoom : r.location);
  double value = 0;
  if (t.channel == Channel::kTemperature) {
    value = env_.temperature[loc];
  } else if (t.channel == Channel::kHumidity) {
    value = env_.humidity[loc];
  } else {
    return true;
  }
  switch (t.cmp) {
    case rules::Comparator::kAbove: return value > t.lo;
    case rules::Comparator::kBelow: return value < t.lo;
    case rules::Comparator::kBetween: return value >= t.lo && value <= t.hi;
    default: return true;
  }
}

void SmartHome::RunCascade(const graph::Event& cause, int depth) {
  if (depth >= config_.max_cascade) return;
  for (const auto& r : deployed_) {
    if (!graph::EventFiresTrigger(cause, r)) continue;
    // Numeric triggers additionally require the environment to actually be
    // past the threshold (the event only says the channel changed).
    if (!NumericTriggerSatisfied(r)) continue;
    if (!ConditionsHold(r)) continue;
    for (const auto& a : r.actions) {
      ExecuteAction(a, r.location == Location::kAny ? cause.location
                                                    : r.location,
                    r.id, depth);
    }
  }
}

void SmartHome::InjectEvent(graph::Event e) {
  e.time_hours = now_;
  log_.Append(e);
  // Reflect sensor state.
  if (auto* dev = FindDevice(e.device, e.location)) dev->state = e.state;
  RunCascade(e, 0);
}

void SmartHome::InjectCommand(DeviceType device, Location loc, Command cmd) {
  rules::ActionSpec a;
  a.device = device;
  a.command = cmd;
  ExecuteAction(a, loc, /*source_rule_id=*/0, 0);
}

void SmartHome::ResidentStep(double dt) {
  const double hour = std::fmod(now_, 24.0);
  const bool awake = hour > 6.5 && hour < 23.0;
  // Motion: active when awake and present.
  if (env_.present && awake && rng_.Chance(0.6 * dt * 60 / 10)) {
    static const Location kRooms[] = {Location::kLivingRoom,
                                      Location::kHallway};
    graph::Event e;
    e.device = DeviceType::kMotionSensor;
    e.location = kRooms[rng_.Below(2)];
    e.state = "active";
    InjectEvent(e);
  }
  // Presence transitions around commute times.
  if (env_.present && hour > 8.2 && hour < 9.2 && rng_.Chance(0.3)) {
    env_.present = false;
    graph::Event e;
    e.device = DeviceType::kPresenceSensor;
    e.state = "away";
    InjectEvent(e);
  }
  if (!env_.present && hour > 17.2 && hour < 19.0 && rng_.Chance(0.35)) {
    env_.present = true;
    graph::Event e;
    e.device = DeviceType::kPresenceSensor;
    e.state = "present";
    InjectEvent(e);
  }
  // Door usage.
  if (env_.present && awake && rng_.Chance(0.12 * dt * 60 / 10)) {
    graph::Event e;
    e.device = DeviceType::kContactSensor;
    e.location = Location::kLivingRoom;
    e.state = rng_.Chance(0.5) ? "open" : "closed";
    InjectEvent(e);
  }
  // Occasional button press.
  if (env_.present && awake && rng_.Chance(0.03 * dt * 60 / 10)) {
    graph::Event e;
    e.device = DeviceType::kButton;
    e.location = Location::kBedroom;
    e.state = "pressed";
    InjectEvent(e);
  }
}

void SmartHome::EnvironmentStep(double dt) {
  // Diurnal outdoor forcing + relaxation toward it.
  const double hour = std::fmod(now_, 24.0);
  const double outdoor = 65 + 15 * std::sin((hour - 9) / 24.0 * 2 * 3.14159);
  for (int l = 0; l < rules::kNumLocations; ++l) {
    env_.temperature[l] += (outdoor - env_.temperature[l]) * 0.05 * dt;
    env_.humidity[l] += (45 - env_.humidity[l]) * 0.05 * dt;
    env_.humidity[l] = std::min(95.0, std::max(5.0, env_.humidity[l]));
  }
  // Threshold crossings emit sensor events.
  const int l = static_cast<int>(Location::kLivingRoom);
  if (rng_.Chance(0.25 * dt * 60 / 10)) {
    graph::Event e;
    e.device = DeviceType::kTemperatureSensor;
    e.location = Location::kLivingRoom;
    e.state = env_.temperature[l] > 78   ? "high"
              : env_.temperature[l] < 62 ? "low"
                                         : "normal";
    InjectEvent(e);
  }
}

void SmartHome::Simulate(double hours) {
  const double dt = 10.0 / 60.0;  // 10-minute ticks
  double remaining = hours;
  while (remaining > 1e-9) {
    const double step = std::min(dt, remaining);
    now_ += step;
    remaining -= step;
    ResidentStep(step);
    EnvironmentStep(step);
  }
}

}  // namespace glint::testbed
