#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/vecmath.h"

namespace glint::nlp {

/// Deterministic distributional embedding model — the substitute for spaCy's
/// `en_core_web_lg` word vectors (300-d) and the Universal Sentence Encoder
/// (512-d).
///
/// Construction: a word's vector is
///     w = sqrt(1-a) * centroid(cluster(word)) + sqrt(a) * noise(word)
/// where the cluster comes from the domain lexicon (synonym cluster if any,
/// else the word's physical channel, else the word itself) and both centroid
/// and noise are unit Gaussian vectors seeded by stable string hashes. This
/// reproduces the property the paper relies on: synonyms and channel-mates
/// have high cosine similarity while unrelated words are near-orthogonal in
/// expectation.
class EmbeddingModel {
 public:
  /// Creates a model emitting `dim`-dimensional vectors. `noise_share` (the
  /// `a` above) controls how word-specific the vectors are.
  explicit EmbeddingModel(size_t dim = 300, uint64_t seed = 17,
                          double noise_share = 0.25);

  /// Embedding of one word (cached; deterministic across calls/processes).
  const FloatVec& WordVector(const std::string& word) const;

  /// Averaged embedding of the content words in `tokens` (stop words and
  /// named entities excluded); this is the paper's rule-level embedding.
  FloatVec Average(const std::vector<std::string>& tokens) const;

  /// Averaged embedding of a raw sentence (tokenizes internally). Memoized
  /// per sentence: rule texts recur across pairs, graphs, and sessions, and
  /// the embedding is a pure function of the sentence.
  FloatVec EmbedSentence(const std::string& sentence) const;

  /// Sentence encoding with positional mixing — the USE substitute: each
  /// token vector is rotated by a position-dependent permutation before
  /// averaging, so word order perturbs the code slightly (as a transformer
  /// encoder would) while keeping the semantic geometry dominant.
  /// Memoized like EmbedSentence.
  FloatVec EncodeSentence(const std::string& sentence) const;

  size_t dim() const { return dim_; }

 private:
  FloatVec UnitGaussian(uint64_t seed) const;

  size_t dim_;
  uint64_t seed_;
  double noise_share_;
  /// Guards cache_ lookups/inserts; the graph builder embeds rule text from
  /// pool workers. References returned by WordVector stay valid because
  /// unordered_map nodes are stable and entries are never erased.
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<std::string, FloatVec> cache_;
  /// Sentence-level memoization for EmbedSentence / EncodeSentence. Entries
  /// are pure functions of the sentence, so a racing double-insert is
  /// harmless (both candidates are identical).
  mutable std::mutex sentence_mu_;
  mutable std::unordered_map<std::string, FloatVec> embed_cache_;
  mutable std::unordered_map<std::string, FloatVec> encode_cache_;
};

}  // namespace glint::nlp
