#pragma once

// FleetServer — the network front end of a ShardedFleet: a TCP listener
// (loopback by default) speaking the wire protocol, feeding mutations
// through an EventBus onto the shards.
//
// Layering: sockets/framing here, queueing/backpressure in EventBus,
// routing/durability in ShardedFleet, per-home serving in ServingEngine.
//
// Semantics per request:
//   mutations (AddHome/AddRule/RemoveRule/Event)
//       enqueued on the owning shard's bus queue and acknowledged as
//       *accepted* (kAck OK) — apply is asynchronous, at-most-once; apply
//       errors are counted and surfaced via kStats, not the ack. A full
//       queue under the kReject policy is an error ack (backpressure made
//       visible to the producer); under kBlock the ack itself applies the
//       backpressure by arriving late.
//   kInspect
//       drains the home's shard queue first (so the verdict covers every
//       event this connection — or any other — already had accepted),
//       then inspects synchronously and returns the warning.
//   kStats / kPing
//       fleet aggregate counters / liveness.
//
// A malformed frame (bad checksum, oversized length, truncated body) gets
// an error kAck where the stream still permits one and the connection is
// closed — a corrupt byte stream cannot be resynchronized — but the
// server itself never aborts, and other connections are unaffected.

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/event_bus.h"
#include "fleet/sharding.h"
#include "fleet/wire.h"

namespace glint::fleet {

class FleetServer {
 public:
  struct Config {
    /// TCP port to bind on 127.0.0.1; 0 = ephemeral (read back via port()).
    int port = 0;
    int backlog = 64;
    EventBus::Config bus;
  };

  /// The fleet must outlive the server.
  FleetServer(ShardedFleet* fleet, Config config);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Binds, listens, and starts the accept loop + bus consumers.
  Status Start();
  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Stops accepting, shuts every live connection, drains the bus, joins
  /// all threads. Idempotent; the destructor calls it.
  void Stop();

  /// The ingestion bus (bench/test introspection: queue high-water,
  /// reject/apply-error counters).
  EventBus& bus() { return *bus_; }
  ShardedFleet& fleet() { return *fleet_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  wire::Reply Dispatch(const wire::Request& req);

  ShardedFleet* fleet_;
  Config config_;
  std::unique_ptr<EventBus> bus_;
  /// Atomic: Stop() retires the fd while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace glint::fleet
