// Regenerates Figure 11 (and the Fig. 10 testbed): the real-life testbed
// comparison of Glint (ITGNN) vs HAWatcher vs OCSVM vs IsolationForest on
// binary-correlation threats (BCT) and complex-correlation threats (CCT),
// under the five simulated attack types of Sec. 4.8.1.

#include <cstdio>
#include <ctime>

#include "bench_common.h"
#include "core/glint.h"
#include "ml/isolation_forest.h"
#include "ml/ocsvm.h"
#include "testbed/frames.h"
#include "testbed/hawatcher.h"
#include "testbed/scenarios.h"

using namespace glint;          // NOLINT
using namespace glint::bench;   // NOLINT
using namespace glint::testbed; // NOLINT

namespace {

struct Verdicts {
  std::vector<int> truth;
  std::vector<int> glint, hawatcher, ocsvm, iforest;
};

void PrintMetrics(const char* title, const Verdicts& v,
                  const std::vector<std::pair<const char*, double>>& paper_p,
                  const std::vector<std::pair<const char*, double>>& paper_r) {
  std::printf("\n--- %s ---\n", title);
  TablePrinter t({"detector", "precision", "recall", "F1", "paper prec",
                  "paper rec"});
  const struct {
    const char* name;
    const std::vector<int>* pred;
  } rows[] = {{"Glint (ITGNN)", &v.glint},
              {"HAWatcher", &v.hawatcher},
              {"OCSVM", &v.ocsvm},
              {"IsolationForest", &v.iforest}};
  for (size_t i = 0; i < 4; ++i) {
    auto m = ml::BinaryMetrics(v.truth, *rows[i].pred);
    t.AddRow({rows[i].name, StrFormat("%.1f", 100 * m.precision),
              StrFormat("%.1f", 100 * m.recall),
              StrFormat("%.1f", 100 * m.f1),
              StrFormat("%.1f", paper_p[i].second),
              StrFormat("%.1f", paper_r[i].second)});
  }
  t.Print();
}

}  // namespace

int main() {
  Banner("Figure 11: real-life testbed detector comparison", "Fig. 10/11");

  // ---- Offline: train Glint (the cloud-trained public model) -------------
  std::printf("training Glint offline (corpus -> correlation -> graphs -> "
              "ITGNN)...\n");
  std::clock_t t0 = std::clock();
  core::Glint::Options opts;
  opts.corpus.ifttt = 500;
  opts.corpus.smartthings = 80;
  opts.corpus.alexa = 150;
  opts.corpus.google_assistant = 80;
  opts.corpus.home_assistant = 80;
  opts.num_training_graphs = 600;
  opts.builder.max_nodes = 10;
  opts.builder.size_skew = 2.0;
  opts.model.num_scales = 2;
  opts.model.embed_dim = 64;
  opts.train.epochs = 14;
  opts.train.oversample_factor = 2.5;
  opts.pairs.num_positive = 200;
  opts.pairs.num_negative = 300;
  core::Glint glint(opts);
  glint.TrainOffline();
  std::printf("Glint trained in %.0fs (paper: \"no more than 1 hour\" on an "
              "A6000)\n",
              static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);

  // ---- Baselines: one benign simulated week (1,813-event scale) ----------
  ScenarioGenerator gen(20260706);
  auto benign_week = gen.BenignWeek(168);
  std::printf("benign training week: %zu events (paper: 1,813)\n",
              benign_week.size());

  HaWatcher hawatcher;
  hawatcher.Train(benign_week);
  std::printf("HAWatcher mined %zu binary correlations\n",
              hawatcher.num_correlations());

  FrameEncoder encoder(SmartHome::DefaultLayout());
  auto benign_windows = encoder.Windows(benign_week);
  ml::OneClassSvm ocsvm;
  ocsvm.Fit(benign_windows);
  ml::IsolationForest iforest;
  iforest.Fit(benign_windows);
  iforest.FitThreshold(benign_windows, 0.05);

  // ---- Test set: 600 scenarios (150 BCT + 150 CCT + 300 benign) ----------
  auto evaluate = [&](bool complex, int n_threat, int n_benign) {
    Verdicts v;
    for (int i = 0; i < n_threat + n_benign; ++i) {
      Scenario s = i < n_threat ? (complex ? gen.MakeCct() : gen.MakeBct())
                                : gen.MakeBenign();
      v.truth.push_back(s.threat ? 1 : 0);
      // Glint: the deployment's interaction graph (learned correlations)
      // through the trained classifier — the configuration is what carries
      // the interactive threat; the logs below are what the event-driven
      // baselines see.
      auto graph = glint.BuildGraph(s.deployed);
      graph.set_threat_types({});  // detector must not see analyzer labels
      auto warning = glint.InspectGraph(graph);
      v.glint.push_back(warning.threat ? 1 : 0);
      // HAWatcher: correlation verification over the recent window.
      auto window = s.log.Window(s.now_hours, 3.0);
      v.hawatcher.push_back(hawatcher.Flag(window) ? 1 : 0);
      // OCSVM / IsolationForest over state-frame windows.
      graph::EventLog tail;
      for (const auto& e : window) tail.Append(e);
      auto frames = encoder.Windows(tail);
      int oc_anom = 0, if_anom = 0;
      for (const auto& f : frames) {
        oc_anom += ocsvm.Predict(f) == -1 ? 1 : 0;
        if_anom += iforest.Predict(f) == -1 ? 1 : 0;
      }
      const double denom = std::max<size_t>(1, frames.size());
      v.ocsvm.push_back(oc_anom / denom > 0.15 ? 1 : 0);
      v.iforest.push_back(if_anom / denom > 0.15 ? 1 : 0);
    }
    return v;
  };

  std::printf("\nevaluating 600 scenarios (this drives the five attack "
              "models of Sec. 4.8.1)...\n");
  t0 = std::clock();
  Verdicts bct = evaluate(/*complex=*/false, 150, 150);
  Verdicts cct = evaluate(/*complex=*/true, 150, 150);
  std::printf("evaluation took %.0fs\n",
              static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);

  PrintMetrics("Binary-correlation threats (BCT)", bct,
               {{"glint", 100}, {"haw", 97.8}, {"ocsvm", 75}, {"iforest", 72}},
               {{"glint", 100}, {"haw", 94.1}, {"ocsvm", 70}, {"iforest", 68}});
  PrintMetrics("Complex-correlation threats (CCT)", cct,
               {{"glint", 96.0}, {"haw", 83.2}, {"ocsvm", 66.9}, {"iforest", 65}},
               {{"glint", 95.3}, {"haw", 82.7}, {"ocsvm", 63.3}, {"iforest", 62}});

  std::printf("\npaper shape to check: Glint > HAWatcher > OCSVM/IForest;\n"
              "HAWatcher's gap widens on CCT (long-term and multi-rule\n"
              "correlations are outside its binary-correlation model).\n");
  return 0;
}
