#pragma once

// glint::obs — process-wide telemetry: named Counter / Gauge / Histogram
// instruments in a Registry (sharded atomic storage, wait-free hot path),
// RAII ScopedTimer / Span wall-time recorders with a bounded per-thread
// trace ring, and text / single-line JSON exporters (STATS_JSON).
//
// Instrument names follow `glint.<subsystem>.<name>`; histograms end in a
// unit suffix (`_ms`). See DESIGN.md §9 for the taxonomy and schema.
//
// Call sites use the macros below: the instrument is resolved once per site
// (function-local static), so the steady-state cost is the Enabled() branch
// inside the instrument. Building with -DGLINT_OBS_DISABLED compiles every
// macro away entirely.

#include "obs/registry.h"
#include "obs/span.h"

#ifdef GLINT_OBS_DISABLED

#define GLINT_OBS_COUNT(name, n) \
  do {                           \
  } while (0)
#define GLINT_OBS_GAUGE_ADD(name, d) \
  do {                               \
  } while (0)
#define GLINT_OBS_GAUGE_SET(name, v) \
  do {                               \
  } while (0)
#define GLINT_OBS_OBSERVE(name, x) \
  do {                             \
  } while (0)
#define GLINT_OBS_TIMER(var, name) ((void)0)
#define GLINT_OBS_SPAN(var, name) ((void)0)

#else

/// Adds `n` to the counter `name`.
#define GLINT_OBS_COUNT(name, n)                           \
  do {                                                     \
    static ::glint::obs::Counter* _glint_obs_counter =     \
        ::glint::obs::Registry::Global().GetCounter(name); \
    _glint_obs_counter->Add(n);                            \
  } while (0)

/// Applies a delta to the gauge `name` (tracks the peak automatically).
#define GLINT_OBS_GAUGE_ADD(name, d)                     \
  do {                                                   \
    static ::glint::obs::Gauge* _glint_obs_gauge =       \
        ::glint::obs::Registry::Global().GetGauge(name); \
    _glint_obs_gauge->Add(d);                            \
  } while (0)

/// Sets the gauge `name` to an absolute value.
#define GLINT_OBS_GAUGE_SET(name, v)                     \
  do {                                                   \
    static ::glint::obs::Gauge* _glint_obs_gauge =       \
        ::glint::obs::Registry::Global().GetGauge(name); \
    _glint_obs_gauge->Set(v);                            \
  } while (0)

/// Records one sample into the histogram `name` (default latency buckets).
#define GLINT_OBS_OBSERVE(name, x)                           \
  do {                                                       \
    static ::glint::obs::Histogram* _glint_obs_hist =        \
        ::glint::obs::Registry::Global().GetHistogram(name); \
    _glint_obs_hist->Observe(x);                             \
  } while (0)

/// Declares a scope-timing RAII object `var` feeding histogram `name`.
#define GLINT_OBS_TIMER(var, name)                          \
  static ::glint::obs::Histogram* var##_obs_hist =          \
      ::glint::obs::Registry::Global().GetHistogram(name);  \
  ::glint::obs::ScopedTimer var(var##_obs_hist)

/// Like GLINT_OBS_TIMER, but also records a stage-tagged TraceEvent in the
/// per-thread trace ring. `name` doubles as the stage tag.
#define GLINT_OBS_SPAN(var, name)                          \
  static ::glint::obs::Histogram* var##_obs_hist =         \
      ::glint::obs::Registry::Global().GetHistogram(name); \
  ::glint::obs::Span var(name, var##_obs_hist)

#endif  // GLINT_OBS_DISABLED
