#include "core/explain.h"

#include <algorithm>
#include <numeric>

namespace glint::core {
namespace {

double ThreatMargin(gnn::GraphModel* model, const gnn::GnnGraph& g) {
  gnn::Tape tape;
  auto r = model->Forward(&tape, g);
  return double(r.logits->value.At(0, 1)) - r.logits->value.At(0, 0);
}

}  // namespace

std::vector<double> ExplainNodes(gnn::GraphModel* model,
                                 const gnn::GnnGraph& g) {
  const double base = ThreatMargin(model, g);
  std::vector<double> importance(static_cast<size_t>(g.num_nodes), 0.0);
  for (int v = 0; v < g.num_nodes; ++v) {
    gnn::GnnGraph masked = g;
    // Zero the occluded node's feature row.
    const int type = g.node_types[static_cast<size_t>(v)];
    for (size_t k = 0; k < g.type_rows[type].size(); ++k) {
      if (g.type_rows[type][k] == v) {
        auto& m = masked.typed_features[type];
        for (int c = 0; c < m.cols; ++c) m.At(static_cast<int>(k), c) = 0.f;
      }
    }
    importance[static_cast<size_t>(v)] = base - ThreatMargin(model, masked);
  }
  // Shift-normalise to [0, 1].
  const double lo = *std::min_element(importance.begin(), importance.end());
  const double hi = *std::max_element(importance.begin(), importance.end());
  const double range = hi - lo;
  for (auto& x : importance) x = range > 1e-12 ? (x - lo) / range : 0.0;
  return importance;
}

std::vector<int> TopCulprits(const std::vector<double>& importance, int k) {
  std::vector<int> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return importance[static_cast<size_t>(a)] > importance[static_cast<size_t>(b)];
  });
  order.resize(std::min<size_t>(order.size(), static_cast<size_t>(k)));
  return order;
}

}  // namespace glint::core
