#include "gnn/model_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/binio.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace glint::gnn {

namespace {

constexpr uint32_t kModelMagic = 0x474d444cu;  // "GMDL"
constexpr uint32_t kDriftMagic = 0x46524447u;  // "GDRF"
constexpr uint32_t kVersion = 2;
// magic | version | payload_len | crc32c(payload)
constexpr size_t kHeaderBytes = 4 * sizeof(uint32_t);
/// Reject corrupt length fields before they drive a huge allocation.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

void EncodeParams(GraphModel* model, util::ByteWriter* w) {
  auto params = model->Parameters();
  w->U32(static_cast<uint32_t>(params.size()));
  for (Parameter* p : params) {
    w->I32(p->value.rows);
    w->I32(p->value.cols);
    w->Raw(p->value.data.data(), sizeof(float) * p->value.data.size());
  }
}

/// Writes `payload` under the magic/version/len/crc header, staged to a
/// temp file and renamed so a crash mid-save never leaves a half-written
/// file where a good one used to be.
Status SaveContainer(uint32_t magic, const util::ByteWriter& payload,
                     const std::string& path) {
  util::ByteWriter header;
  header.U32(magic);
  header.U32(kVersion);
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U32(util::Crc32c(payload.buffer().data(), payload.size()));

  const std::string tmp = path + ".tmp";
  GLINT_FAULT_POINT("model.save.open");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("cannot open for write", tmp);
  auto write_all = [&]() -> Status {
    GLINT_FAULT_POINT("model.save.write");
    if (std::fwrite(header.buffer().data(), 1, header.size(), f) !=
            header.size() ||
        std::fwrite(payload.buffer().data(), 1, payload.size(), f) !=
            payload.size()) {
      return ErrnoStatus("cannot write model", tmp);
    }
    GLINT_FAULT_POINT("model.save.flush");
    if (std::fflush(f) != 0) return ErrnoStatus("cannot flush model", tmp);
    return Status::OK();
  };
  Status st = write_all();
  std::fclose(f);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  GLINT_FAULT_POINT("model.save.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return ErrnoStatus("cannot rename model", tmp);
  }
  return Status::OK();
}

/// Reads and authenticates a container written by SaveContainer. On OK the
/// payload bytes passed the CRC; structural validation is the caller's.
Status LoadContainer(uint32_t magic, const std::string& path,
                     std::vector<char>* payload) {
  GLINT_FAULT_POINT("model.load.open");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ErrnoStatus("cannot open for read", path);

  uint32_t file_magic = 0, version = 0, len = 0, crc = 0;
  GLINT_FAULT_POINT("model.load.read");
  bool header_ok = std::fread(&file_magic, sizeof file_magic, 1, f) == 1 &&
                   std::fread(&version, sizeof version, 1, f) == 1 &&
                   std::fread(&len, sizeof len, 1, f) == 1 &&
                   std::fread(&crc, sizeof crc, 1, f) == 1;
  if (!header_ok || file_magic != magic) {
    std::fclose(f);
    return Status::IOError("bad model file magic: " + path);
  }
  if (version != kVersion) {
    std::fclose(f);
    return Status::FailedPrecondition(
        "model format version " + std::to_string(version) + " (want " +
        std::to_string(kVersion) + "): " + path);
  }
  if (len > kMaxPayloadBytes) {
    std::fclose(f);
    return Status::IOError("absurd model payload length: " + path);
  }
  payload->resize(len);
  const bool body_ok = std::fread(payload->data(), 1, len, f) == len;
  // A trailing byte means the file is not what SaveContainer wrote.
  const bool at_eof = std::fgetc(f) == EOF;
  std::fclose(f);
  if (!body_ok || !at_eof) {
    return Status::IOError("truncated or oversized model file: " + path);
  }
  if (util::Crc32c(payload->data(), payload->size()) != crc) {
    return Status::IOError("model checksum mismatch: " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveModel(GraphModel* model, const std::string& path) {
  util::ByteWriter payload;
  EncodeParams(model, &payload);
  return SaveContainer(kModelMagic, payload, path);
}

Status LoadModel(GraphModel* model, const std::string& path) {
  std::vector<char> payload;
  GLINT_RETURN_IF_ERROR(LoadContainer(kModelMagic, path, &payload));

  // The bytes are authentic; shape errors from here are a model/file
  // architecture disagreement, not corruption.
  util::ByteReader r(payload);
  auto params = model->Parameters();
  uint32_t count = 0;
  if (!r.U32(&count) || count != params.size()) {
    return Status::FailedPrecondition(
        "model architecture mismatch (" + std::to_string(count) + " vs " +
        std::to_string(params.size()) + " parameters): " + path);
  }
  for (Parameter* p : params) {
    int32_t rows = 0, cols = 0;
    if (!r.I32(&rows) || !r.I32(&cols) || rows != p->value.rows ||
        cols != p->value.cols) {
      return Status::FailedPrecondition("parameter shape mismatch: " + path);
    }
    if (!r.Raw(p->value.data.data(),
               sizeof(float) * p->value.data.size())) {
      return Status::IOError("truncated model payload: " + path);
    }
  }
  if (!r.exhausted()) {
    return Status::FailedPrecondition("trailing model payload bytes: " + path);
  }
  return Status::OK();
}

size_t ModelBytes(GraphModel* model) {
  size_t bytes = kHeaderBytes + sizeof(uint32_t);  // header + param count
  for (Parameter* p : model->Parameters()) {
    bytes += sizeof(int32_t) * 2 + sizeof(float) * p->value.size();
  }
  return bytes;
}

Status SaveDriftStats(const DriftDetector& drift, const std::string& path) {
  if (!drift.fitted()) {
    return Status::FailedPrecondition("drift detector not fitted: " + path);
  }
  util::ByteWriter payload;
  drift.SerializeTo(&payload);
  return SaveContainer(kDriftMagic, payload, path);
}

Status LoadDriftStats(DriftDetector* drift, const std::string& path) {
  std::vector<char> payload;
  GLINT_RETURN_IF_ERROR(LoadContainer(kDriftMagic, path, &payload));
  util::ByteReader r(payload);
  if (!drift->RestoreFrom(&r) || !r.exhausted()) {
    return Status::FailedPrecondition("malformed drift statistics: " + path);
  }
  return Status::OK();
}

}  // namespace glint::gnn
