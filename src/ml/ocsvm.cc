#include "ml/ocsvm.h"

#include <cmath>

#include "util/status.h"

namespace glint::ml {

FloatVec OneClassSvm::FeatureMap(const FloatVec& x) const {
  FloatVec xs = scaler_.Transform(x);
  if (params_.rff_dim <= 0) return xs;
  FloatVec out(static_cast<size_t>(params_.rff_dim));
  const double scale =
      std::sqrt(2.0 / static_cast<double>(params_.rff_dim));
  for (size_t d = 0; d < out.size(); ++d) {
    const double proj = Dot(rff_w_[d], xs) + rff_b_[d];
    out[d] = static_cast<float>(scale * std::cos(proj));
  }
  return out;
}

void OneClassSvm::Fit(const std::vector<FloatVec>& xs) {
  GLINT_CHECK(!xs.empty());
  scaler_.Fit(xs);
  Rng rng(params_.seed);

  if (params_.rff_dim > 0) {
    const size_t dim = xs[0].size();
    rff_w_.assign(static_cast<size_t>(params_.rff_dim), FloatVec(dim));
    rff_b_.assign(static_cast<size_t>(params_.rff_dim), 0.f);
    const double sigma = std::sqrt(2.0 * params_.gamma);
    for (auto& row : rff_w_) {
      for (auto& v : row) v = static_cast<float>(rng.Gaussian(0, sigma));
    }
    for (auto& b : rff_b_) {
      b = static_cast<float>(rng.Uniform(0, 2 * 3.14159265358979));
    }
  }

  std::vector<FloatVec> feats;
  feats.reserve(xs.size());
  for (const auto& x : xs) feats.push_back(FeatureMap(x));

  const size_t fdim = feats[0].size();
  w_.assign(fdim, 0.f);
  rho_ = 0;
  const double n = static_cast<double>(feats.size());
  const double inv_nu_n = 1.0 / (params_.nu * n);

  std::vector<size_t> order(feats.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double t = 1;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      const double eta = params_.lr / std::sqrt(t);
      t += 1;
      double margin = -rho_;
      for (size_t d = 0; d < fdim; ++d) margin += double(w_[d]) * feats[i][d];
      // Gradient of ½|w|² term.
      const float shrink = static_cast<float>(1.0 - eta);
      for (auto& wd : w_) wd *= shrink;
      if (margin < 0) {
        // Hinge active: push w toward x, lower rho.
        const float step = static_cast<float>(eta * inv_nu_n * n);
        for (size_t d = 0; d < fdim; ++d) w_[d] += step * feats[i][d];
        rho_ -= eta * (inv_nu_n * n - 1.0);
      } else {
        rho_ += eta;
      }
    }
  }
}

double OneClassSvm::Decision(const FloatVec& x) const {
  FloatVec f = FeatureMap(x);
  double v = -rho_;
  for (size_t d = 0; d < f.size(); ++d) v += double(w_[d]) * f[d];
  return v;
}

int OneClassSvm::Predict(const FloatVec& x) const {
  return Decision(x) >= 0 ? 1 : -1;
}

}  // namespace glint::ml
