// Regenerates Figure 9 and the Sec. 4.7 drifting-sample study: ITGNN-C
// contrastive embeddings, PCA projection to 2-d, K-means clustering,
// MAD-based drifting-sample detection on the unlabeled IFTTT and
// heterogeneous datasets, and the discovery of the four new threat types in
// Home Assistant blueprints.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "gnn/drift.h"
#include "graph/threat_analyzer.h"
#include "ml/kmeans.h"
#include "ml/pca.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT
using gnn::GnnGraph;

namespace {

// ASCII scatter of 2-d points by cluster (the Fig. 9 plot, in a terminal).
void AsciiScatter(const std::vector<FloatVec>& pts,
                  const std::vector<int>& cluster,
                  const std::vector<bool>& drifting) {
  const int W = 64, H = 20;
  float xmin = 1e9f, xmax = -1e9f, ymin = 1e9f, ymax = -1e9f;
  for (const auto& p : pts) {
    xmin = std::min(xmin, p[0]);
    xmax = std::max(xmax, p[0]);
    ymin = std::min(ymin, p[1]);
    ymax = std::max(ymax, p[1]);
  }
  std::vector<std::string> canvas(H, std::string(W, ' '));
  for (size_t i = 0; i < pts.size(); ++i) {
    const int x = static_cast<int>((pts[i][0] - xmin) / (xmax - xmin + 1e-9f) *
                                   (W - 1));
    const int y = static_cast<int>((pts[i][1] - ymin) / (ymax - ymin + 1e-9f) *
                                   (H - 1));
    char c = cluster[i] == 0 ? 'o' : '+';
    if (drifting[i]) c = 'X';
    canvas[static_cast<size_t>(H - 1 - y)][static_cast<size_t>(x)] = c;
  }
  std::printf("  o = cluster 0 (normal-dominated), + = cluster 1 "
              "(threat-dominated), X = drifting\n");
  for (const auto& line : canvas) std::printf("  |%s|\n", line.c_str());
}

}  // namespace

int main() {
  Banner("Figure 9 + Sec. 4.7: contrastive clusters and drifting samples",
         "Fig. 9");
  auto corpus = DefaultCorpus();

  // Train ITGNN-C on labeled heterogeneous graphs.
  auto labeled = gnn::ToGnnGraphs(BuildGraphs(corpus, 900, 91));
  gnn::ItgnnModel::Config cfg;
  cfg.embed_dim = 256;  // the paper's 256-d latent space
  gnn::ItgnnModel model(cfg);
  gnn::TrainConfig tc;
  tc.epochs = 18;
  tc.pairs_per_sample = 2.0;
  gnn::Trainer trainer(tc);
  std::printf("training ITGNN-C (contrastive, 256-d latents)...\n");
  trainer.TrainContrastive(&model, labeled);

  gnn::DriftDetector drift;
  drift.FitFromModel(&model, labeled);

  // PCA 256 -> 2 and K-means on the labeled embeddings (Fig. 9).
  auto z = gnn::Trainer::EmbedAll(&model, labeled);
  ml::Pca pca;
  pca.Fit(z);
  auto z2 = pca.TransformBatch(z);
  ml::KMeans::Params kp;
  kp.k = 2;
  ml::KMeans km(kp);
  km.Fit(z2);
  // Cluster/label agreement.
  int agree[2][2] = {{0, 0}, {0, 0}};
  for (size_t i = 0; i < z2.size(); ++i) {
    agree[km.labels()[i]][labeled[i].label] += 1;
  }
  std::printf("PCA variance captured: %.1f%% + %.1f%%\n",
              100 * pca.explained_variance()[0] /
                  (pca.explained_variance()[0] + pca.explained_variance()[1] + 1e-9),
              100 * pca.explained_variance()[1] /
                  (pca.explained_variance()[0] + pca.explained_variance()[1] + 1e-9));
  TablePrinter ct({"cluster", "normal graphs", "vulnerable graphs"});
  ct.AddRow({"0", StrFormat("%d", agree[0][0]), StrFormat("%d", agree[0][1])});
  ct.AddRow({"1", StrFormat("%d", agree[1][0]), StrFormat("%d", agree[1][1])});
  ct.Print();

  std::vector<bool> no_drift(z2.size(), false);
  AsciiScatter(z2, km.labels(), no_drift);

  // Drifting detection on unlabeled datasets (paper: 63 / 10,000 IFTTT and
  // 104 / 19,440 heterogeneous; ours at 1:10 scale).
  auto ifttt_rules = PlatformRules(corpus, rules::Platform::kIFTTT);
  auto unlabeled_ifttt = BuildGraphs(ifttt_rules, 1000, 92);
  auto unlabeled_hetero = BuildGraphs(corpus, 1944, 93);

  // Inject the Sec. 4.7 blueprint groups (the genuinely novel patterns)
  // into the heterogeneous unlabeled set.
  graph::GraphBuilder builder({}, &WordModel(), &SentenceModel());
  auto blueprint_groups = rules::CorpusGenerator::NewThreatBlueprints();
  const size_t first_injected = unlabeled_hetero.graphs.size();
  for (const auto& group : blueprint_groups) {
    unlabeled_hetero.graphs.push_back(builder.BuildFromRules(group));
  }

  struct Unlabeled {
    const char* name;
    const graph::GraphDataset* ds;
    int paper_total, paper_drifting;
  };
  const Unlabeled sets[] = {
      {"IFTTT (unlabeled)", &unlabeled_ifttt, 10000, 63},
      {"heterogeneous (unlabeled + blueprints)", &unlabeled_hetero, 19440,
       104},
  };

  TablePrinter dt({"dataset", "paper graphs", "ours", "paper drifting",
                   "ours drifting", "ratio"});
  std::vector<double> hetero_degrees;  // background for percentile ranks
  for (const auto& set : sets) {
    auto graphs = gnn::ToGnnGraphs(*set.ds);
    int n_drift = 0;
    for (const auto& g : graphs) {
      const double degree =
          drift.DriftingDegree(gnn::Trainer::Embed(&model, g));
      n_drift += degree > 3.0 ? 1 : 0;
      if (set.ds == &unlabeled_hetero) hetero_degrees.push_back(degree);
    }
    dt.AddRow({set.name, StrFormat("%d", set.paper_total),
               StrFormat("%zu", graphs.size()),
               StrFormat("%d", set.paper_drifting),
               StrFormat("%d", n_drift),
               StrFormat("%.2f%%",
                         100.0 * n_drift / static_cast<double>(graphs.size()))});
  }
  dt.Print();
  std::sort(hetero_degrees.begin(), hetero_degrees.end());

  // Were the injected blueprint graphs surfaced, and what do the new-type
  // detectors say about the drifting samples a security analyst reviews?
  std::printf("\nmanual review of drifting samples (Sec. 4.7): the four\n"
              "injected Home Assistant blueprint groups ->\n");
  TablePrinter bt({"blueprint group", "drifting degree", "percentile",
                   "flagged", "new threat type found"});
  const char* expected[] = {"action_block", "action_ablation",
                            "trigger_intake", "condition_duplicate"};
  for (size_t k = 0; k < blueprint_groups.size(); ++k) {
    const auto& ig = unlabeled_hetero.graphs[first_injected + k];
    auto gg = gnn::ToGnnGraph(ig);
    const double degree = drift.DriftingDegree(gnn::Trainer::Embed(&model, gg));
    auto findings = graph::ThreatAnalyzer::DetectNewTypes(ig);
    std::string found = "-";
    for (const auto& f : findings) {
      if (std::string(graph::ThreatTypeName(f.type)) == expected[k]) {
        found = expected[k];
      }
    }
    const double pct =
        100.0 *
        static_cast<double>(std::lower_bound(hetero_degrees.begin(),
                                             hetero_degrees.end(), degree) -
                            hetero_degrees.begin()) /
        std::max<size_t>(1, hetero_degrees.size());
    bt.AddRow({StrFormat("%zu", k + 1), StrFormat("%.2f", degree),
               StrFormat("p%.0f", pct), degree > 3.0 ? "YES" : "no", found});
  }
  bt.Print();
  std::printf("paper shape to check: drifting ratio well under 1%%; the\n"
              "unusual blueprint interactions stand out for analyst review\n"
              "and contain the four new threat types.\n");
  return 0;
}
