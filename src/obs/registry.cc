#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace glint::obs {

uint32_t ShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

#ifndef GLINT_OBS_DISABLED
namespace {
std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> on{[] {
    const char* env = std::getenv("GLINT_OBS");
    return !(env != nullptr &&
             (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0));
  }()};
  return on;
}
}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }
void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}
#endif

// ---- Counter --------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// ---- Gauge ----------------------------------------------------------------

void Gauge::RaisePeak(int64_t candidate) {
  int64_t cur = peak_.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !peak_.compare_exchange_weak(cur, candidate,
                                      std::memory_order_relaxed)) {
  }
}

void Gauge::Set(int64_t v) {
  if (!Enabled()) return;
  v_.store(v, std::memory_order_relaxed);
  RaisePeak(v);
}

void Gauge::Add(int64_t d) {
  if (!Enabled()) return;
  RaisePeak(v_.fetch_add(d, std::memory_order_relaxed) + d);
}

void Gauge::Reset() {
  v_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  GLINT_CHECK(!bounds_.empty());
  GLINT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  shards_.reserve(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::Observe(double x) {
  if (!Enabled()) return;
  // lower_bound, not upper_bound: bounds are *inclusive* upper edges, so an
  // observation exactly on an edge belongs to the bucket it closes.
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  Shard& sh = *shards_[ShardIndex()];
  sh.counts[b].fetch_add(1, std::memory_order_relaxed);
  sh.count.fetch_add(1, std::memory_order_relaxed);
  double cur = sh.sum.load(std::memory_order_relaxed);
  while (!sh.sum.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const auto& s : shards_) {
    total += s->sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (size_t b = 0; b < merged.size(); ++b) {
      merged[b] += s->counts[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::Quantile(double q) const {
  Registry::Snapshot::Hist h;
  h.count = Count();
  h.sum = Sum();
  h.bounds = bounds_;
  h.counts = BucketCounts();
  return h.Quantile(q);
}

void Histogram::Reset() {
  for (auto& s : shards_) {
    for (auto& c : s->counts) c.store(0, std::memory_order_relaxed);
    s->count.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::LatencyBucketsMs() {
  std::vector<double> bounds;
  // 1-2.5-5 ladder per decade, 1e-3 ms (1us) .. 1e4 ms (10s).
  for (double decade = 1e-3; decade < 1e4 * 0.5; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.5);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(1e4);
  return bounds;
}

// ---- Registry -------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* global = new Registry();
  return *global;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kCounter) {
      std::fprintf(stderr, "obs: instrument name collision: '%s'\n",
                   name.c_str());
      GLINT_CHECK(it->second.kind == Kind::kCounter);
    }
    return it->second.counter.get();
  }
  Entry e;
  e.kind = Kind::kCounter;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kGauge) {
      std::fprintf(stderr, "obs: instrument name collision: '%s'\n",
                   name.c_str());
      GLINT_CHECK(it->second.kind == Kind::kGauge);
    }
    return it->second.gauge.get();
  }
  Entry e;
  e.kind = Kind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  if (bounds.empty()) bounds = Histogram::LatencyBucketsMs();
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    const bool same_kind = it->second.kind == Kind::kHistogram;
    if (!same_kind || it->second.histogram->bounds() != bounds) {
      std::fprintf(stderr, "obs: instrument name collision: '%s'\n",
                   name.c_str());
      GLINT_CHECK(same_kind && it->second.histogram->bounds() == bounds);
    }
    return it->second.histogram.get();
  }
  Entry e;
  e.kind = Kind::kHistogram;
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e.histogram.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Registry::Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters[name] = e.counter->Value();
        break;
      case Kind::kGauge:
        snap.gauges[name] = {e.gauge->Value(), e.gauge->Peak()};
        break;
      case Kind::kHistogram: {
        Snapshot::Hist h;
        h.count = e.histogram->Count();
        h.sum = e.histogram->Sum();
        h.bounds = e.histogram->bounds();
        h.counts = e.histogram->BucketCounts();
        snap.histograms[name] = std::move(h);
        break;
      }
    }
  }
  return snap;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->Reset(); break;
      case Kind::kGauge: e.gauge->Reset(); break;
      case Kind::kHistogram: e.histogram->Reset(); break;
    }
  }
}

size_t Registry::num_instruments() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

// ---- Snapshot rendering ---------------------------------------------------

double Registry::Snapshot::Hist::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * double(count);
  uint64_t cum = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (double(cum) + double(in_bucket) >= target) {
      // Interpolate inside [lower, upper). The overflow bucket has no upper
      // edge; report its lower edge (the estimate saturates there).
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      if (b >= bounds.size()) return lower;
      const double upper = bounds[b];
      const double into = std::max(0.0, target - double(cum));
      return lower + (upper - lower) * (into / double(in_bucket));
    }
    cum += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string Registry::Snapshot::RenderText() const {
  std::string out;
  char buf[256];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : counters) {
      std::snprintf(buf, sizeof(buf), "  %-44s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += buf;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, vp] : gauges) {
      std::snprintf(buf, sizeof(buf), "  %-44s %12lld  (peak %lld)\n",
                    name.c_str(), static_cast<long long>(vp.first),
                    static_cast<long long>(vp.second));
      out += buf;
    }
  }
  if (!histograms.empty()) {
    out += "histograms (ms):\n";
    for (const auto& [name, h] : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-44s count=%-8llu mean=%-9.4f p50=%-9.4f "
                    "p95=%-9.4f p99=%.4f\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    h.Mean(), h.Quantile(0.50), h.Quantile(0.95),
                    h.Quantile(0.99));
      out += buf;
    }
  }
  if (out.empty()) out = "(no instruments registered)\n";
  return out;
}

std::string Registry::Snapshot::RenderJson() const {
  std::string out = "{\"counters\":{";
  char buf[128];
  bool first = true;
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                  name.c_str(), static_cast<unsigned long long>(v));
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, vp] : gauges) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":{\"value\":%lld,\"peak\":%lld}",
                  first ? "" : ",", name.c_str(),
                  static_cast<long long>(vp.first),
                  static_cast<long long>(vp.second));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"count\":%llu,\"sum_ms\":%.4f,\"mean\":%.4f,"
        "\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f}",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count), h.sum, h.Mean(),
        h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace glint::obs
