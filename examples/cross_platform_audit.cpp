// Cross-platform audit: the heterogeneous story of the paper — audit a
// five-platform rule set, transfer knowledge from the data-rich IFTTT
// domain to the scarce SmartThings domain, and surface the four new threat
// types hiding in Home Assistant blueprints via drifting-sample detection.

#include <cstdio>

#include "core/glint.h"
#include "gnn/drift.h"
#include "gnn/transfer.h"
#include "graph/threat_analyzer.h"

using namespace glint;  // NOLINT

int main() {
  std::printf("== Glint cross-platform audit ==\n\n");

  core::Glint::Options options;
  options.corpus.ifttt = 600;
  options.corpus.smartthings = 100;
  options.corpus.alexa = 150;
  options.corpus.google_assistant = 80;
  options.corpus.home_assistant = 100;
  options.num_training_graphs = 500;
  options.builder.max_nodes = 12;
  options.builder.size_skew = 2.0;
  options.model.num_scales = 2;
  options.model.embed_dim = 64;
  options.train.epochs = 12;
  options.pairs.num_positive = 200;
  options.pairs.num_negative = 300;
  core::Glint glint(options);
  std::printf("training the heterogeneous detector...\n");
  glint.TrainOffline();

  // ---- 1. Transfer learning: IFTTT -> SmartThings ------------------------
  // The textbook setup of Sec. 3.3.4: a model pre-trained on the data-rich
  // IFTTT domain is adapted to the 165-graph SmartThings domain and
  // compared against training on SmartThings alone.
  std::printf("\n[1] transfer learning to the scarce SmartThings domain\n");
  std::vector<rules::Rule> st_rules, ifttt_rules;
  for (const auto& r : glint.corpus()) {
    if (r.platform == rules::Platform::kSmartThings) st_rules.push_back(r);
    if (r.platform == rules::Platform::kIFTTT) ifttt_rules.push_back(r);
  }
  graph::GraphBuilder::Config bc;
  bc.max_nodes = 20;
  bc.size_skew = 2.0;
  bc.seed = 321;
  graph::GraphBuilder builder(bc, &glint.word_model(),
                              &glint.sentence_model());
  auto st_graphs = gnn::ToGnnGraphs(builder.BuildDataset(st_rules, 165));
  auto ifttt_graphs =
      gnn::ToGnnGraphs(builder.BuildDataset(ifttt_rules, 500));
  Rng rng(5);
  std::vector<gnn::GnnGraph> st_train, st_test;
  gnn::SplitGraphs(st_graphs, 0.8, &rng, &st_train, &st_test);

  gnn::TrainConfig tc;
  tc.epochs = 12;
  // Target-only baseline: 132 training graphs are not much to learn from.
  gnn::MagcnModel target_only(64, 2, 600);
  gnn::Trainer(tc).TrainSupervised(&target_only, st_train);
  const double before =
      gnn::Trainer::Evaluate(&target_only, st_test).accuracy;
  // Pre-train on IFTTT, then freeze-and-fine-tune on SmartThings.
  gnn::MagcnModel transferred(64, 2, 600);
  gnn::Trainer(tc).TrainSupervised(&transferred, ifttt_graphs);
  gnn::TransferConfig xfer;
  xfer.freeze_groups = -1;  // the paper's head-only fine-tune for tiny data
  xfer.fine_tune.epochs = 8;
  gnn::TransferFineTune(&transferred, st_train, xfer);
  const double after = gnn::Trainer::Evaluate(&transferred, st_test).accuracy;
  std::printf("  SmartThings accuracy: %.1f%% (target-only) -> %.1f%% "
              "(IFTTT pre-training + fine-tune)\n",
              100 * before, 100 * after);

  // ---- 2. Drifting blueprints: the four new threat types -----------------
  std::printf("\n[2] drifting-sample review of Home Assistant blueprints\n");
  gnn::DriftDetector drift = glint.drift_detector();
  auto groups = rules::CorpusGenerator::NewThreatBlueprints();
  for (size_t i = 0; i < groups.size(); ++i) {
    auto g = builder.BuildFromRules(groups[i]);
    auto gg = gnn::ToGnnGraph(g);
    const double degree =
        drift.DriftingDegree(gnn::Trainer::Embed(glint.contrastive(), gg));
    auto findings = graph::ThreatAnalyzer::DetectNewTypes(g);
    std::printf("  blueprint group %zu: drifting degree %.2f%s\n", i + 1,
                degree, degree > 3 ? "  << DRIFTING, review:" : "");
    for (const auto& r : groups[i]) {
      std::printf("      [%s] %s\n", rules::PlatformName(r.platform),
                  r.text.c_str());
    }
    for (const auto& f : findings) {
      std::printf("      analyst verdict: %s (rules",
                  graph::ThreatTypeName(f.type));
      for (int n : f.nodes) std::printf(" %d", n + 1);
      std::printf(")\n");
    }
  }

  // ---- 3. User feedback loop ---------------------------------------------
  std::printf("\n[3] user feedback: confirming a blueprint threat and "
              "fine-tuning\n");
  auto confirmed = builder.BuildFromRules(groups[2]);  // trigger intake
  auto warn_before = glint.InspectGraph(confirmed);
  glint.FineTune({confirmed}, {true});
  auto warn_after = glint.InspectGraph(confirmed);
  std::printf("  trigger-intake blueprint confidence: %.2f -> %.2f\n",
              warn_before.confidence, warn_after.confidence);
  std::printf("\naudit complete.\n");
  return 0;
}
