#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace glint {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every source of randomness in Glint flows through an Rng so
/// that datasets, model initialisation, and experiments are reproducible
/// bit-for-bit across runs and platforms.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator; the subsequent stream matches a freshly
  /// constructed Rng with the same seed.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the single seed word into the 4-word state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Int(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one sample per call; the pair's second
  /// half is discarded to keep the stream position predictable).
  double Gaussian() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// Gaussian with explicit mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return Uniform() < p; }

  /// Uniformly selects an element index weighted by `weights` (need not be
  /// normalised; all weights must be >= 0 and sum > 0).
  size_t Weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.size() - 1;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks one element uniformly. Requires non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

  /// Derives an independent child generator; used to give each dataset /
  /// model / trial its own stream while staying reproducible.
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Stable 64-bit hash of a string (FNV-1a); used to derive deterministic
/// embeddings and identifiers from vocabulary words.
inline uint64_t HashString(const char* s, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(s[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace glint
