#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace glint::gnn::kernels {

/// Runtime-dispatched dense kernel backend.
///
/// These are the hot primitives behind the tape ops (kMatMul row dots, kSpMM
/// row accumulation, leaf-gradient accumulation, the elementwise forwards,
/// and the kSoftmaxRow normalization). One backend is selected once at
/// startup — AVX2 / NEON when the CPU advertises it, portable scalar
/// otherwise — overridable with GLINT_KERNEL=scalar|avx2|neon.
///
/// Bit-identity contract (the kernel-level twin of the thread-count
/// determinism proved by parallel_determinism_test): every backend must
/// return bit-identical floats for identical inputs. Reductions therefore
/// fix their shape independently of the instruction set:
///   - float dots accumulate into 8 striped lanes (element i enters lane
///     i mod 8; the tail enters lanes scalar-wise) and reduce with the fixed
///     tree ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7));
///   - double sums accumulate into 4 striped lanes and reduce with
///     (l0+l2)+(l1+l3);
///   - no FMA anywhere: an fmadd skips the intermediate rounding a mul+add
///     pair performs, so contracted and uncontracted code disagree in the
///     last ulp. Kernel translation units are compiled with
///     -ffp-contract=off and the vector paths use explicit mul-then-add.
/// Elementwise kernels are trivially identical (IEEE ops are exactly
/// rounded); transcendental elementwise math (exp, tanh, sigmoid) stays on
/// scalar libm calls in every backend.
struct KernelBackend {
  const char* name;
  int code;  ///< exported as the glint.kernel.backend gauge

  /// 8-lane striped dot product with the fixed reduction tree.
  float (*Dot)(const float* a, const float* b, int n);
  /// y[i] += alpha * x[i]
  void (*Axpy)(float* y, float alpha, const float* x, int n);
  /// y[i] += x[i]
  void (*AddInto)(float* y, const float* x, int n);
  /// y[i] += a[i] * b[i]
  void (*MulAddInto)(float* y, const float* a, const float* b, int n);
  /// out[i] = a[i] * b[i]
  void (*MulInto)(float* out, const float* a, const float* b, int n);
  /// out[i] = s * x[i]
  void (*ScaleInto)(float* out, float s, const float* x, int n);
  /// out[i] = x[i] > 0 ? x[i] : +0.f  (matches the scalar ternary on -0/NaN)
  void (*ReluInto)(float* out, const float* x, int n);
  /// 4-lane striped double sum with the fixed reduction tree.
  double (*SumDouble)(const double* x, int n);
  /// x[i] /= denom
  void (*DivDouble)(double* x, double denom, int n);
};

enum class Backend : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The selected backend (first call resolves GLINT_KERNEL / CPUID and
/// publishes the glint.kernel.backend gauge). Hot ops load this once per op
/// and call through the function pointers.
const KernelBackend& Kernels();

/// Kind / name of the selected backend.
Backend CurrentBackend();
const char* BackendName();

/// Every backend this binary can run on this CPU (always contains kScalar).
std::vector<Backend> AvailableBackends();

/// Test / bench hook: forces a backend. Returns false (and changes nothing)
/// when the backend is not available on this CPU.
bool SetBackend(Backend b);

// ---- Shared reduction trees (every backend funnels through these) --------

namespace detail {

/// The fixed 8-lane float reduction: exactly the shape of an AVX2
/// horizontal reduce, used verbatim by the scalar backend so both produce
/// the same bits.
inline float ReduceTree8(const float* lane) {
  const float t0 = lane[0] + lane[4];
  const float t1 = lane[1] + lane[5];
  const float t2 = lane[2] + lane[6];
  const float t3 = lane[3] + lane[7];
  return (t0 + t2) + (t1 + t3);
}

/// The fixed 4-lane double reduction.
inline double ReduceTree4(const double* lane) {
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

}  // namespace detail

/// Debug check that a kernel operand sits on the 64-byte boundary the
/// aligned Matrix storage guarantees (base pointers only — row offsets
/// within a matrix are not padded, which is why the vector loads stay
/// alignment-tolerant).
#if !defined(NDEBUG)
#define GLINT_KERNEL_ASSERT_ALIGNED(p) \
  assert((reinterpret_cast<uintptr_t>(p) & 63u) == 0)
#else
#define GLINT_KERNEL_ASSERT_ALIGNED(p) ((void)0)
#endif

// Backend tables (internal: the per-ISA translation units define these).
extern const KernelBackend kScalarBackend;
#if defined(__x86_64__) || defined(_M_X64)
extern const KernelBackend kAvx2Backend;
#endif
#if defined(__aarch64__)
extern const KernelBackend kNeonBackend;
#endif

}  // namespace glint::gnn::kernels
