#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/threat_analyzer.h"
#include "nlp/embedding.h"
#include "testbed/frames.h"
#include "testbed/hawatcher.h"
#include "testbed/scenarios.h"

namespace glint::testbed {
namespace {

using rules::Command;
using rules::DeviceType;
using rules::Location;

TEST(SmartHome, SimulationProducesEvents) {
  SmartHome home({}, ScenarioGenerator::BenignDeployment());
  home.Simulate(24);
  EXPECT_GT(home.log().size(), 20u);
  EXPECT_NEAR(home.now(), 24.0, 1e-6);
}

TEST(SmartHome, WeekProducesPaperScaleTrace) {
  // The paper collected 1,813 events in a week; ours lands in the same
  // order of magnitude.
  ScenarioGenerator gen(5);
  auto log = gen.BenignWeek(168);
  EXPECT_GT(log.size(), 400u);
  EXPECT_LT(log.size(), 20000u);
}

TEST(SmartHome, DeterministicForSeed) {
  SmartHome::Config cfg;
  cfg.seed = 99;
  SmartHome a(cfg, ScenarioGenerator::BenignDeployment());
  SmartHome b(cfg, ScenarioGenerator::BenignDeployment());
  a.Simulate(12);
  b.Simulate(12);
  ASSERT_EQ(a.log().size(), b.log().size());
  for (size_t i = 0; i < a.log().size(); ++i) {
    EXPECT_EQ(a.log().events()[i].state, b.log().events()[i].state);
  }
}

TEST(SmartHome, AutomationCascadeFires) {
  // Motion event must cascade into the light automation.
  SmartHome home({}, ScenarioGenerator::BenignDeployment());
  graph::Event motion;
  motion.device = DeviceType::kMotionSensor;
  motion.location = Location::kLivingRoom;
  motion.state = "active";
  home.InjectEvent(motion);
  EXPECT_EQ(home.DeviceState(DeviceType::kLight), "on");
  // The light event carries its source rule id (rule 1 of the deployment).
  bool rule_event = false;
  for (const auto& e : home.log().events()) {
    rule_event |= e.device == DeviceType::kLight && e.source_rule_id == 1;
  }
  EXPECT_TRUE(rule_event);
}

TEST(SmartHome, ConditionsGateRules) {
  // Rule with an "armed" condition must not fire while disarmed.
  auto deployed = ScenarioGenerator::BenignDeployment();
  rules::Rule guarded;
  guarded.id = 50;
  guarded.trigger.device = DeviceType::kButton;
  guarded.trigger.channel = rules::SensedChannelOf(DeviceType::kButton);
  guarded.trigger.cmp = rules::Comparator::kEquals;
  guarded.trigger.state = "pressed";
  rules::ConditionSpec armed;
  armed.channel = rules::Channel::kSecurity;
  armed.device = DeviceType::kSecuritySystem;
  armed.cmp = rules::Comparator::kEquals;
  armed.state = "armed";
  guarded.conditions.push_back(armed);
  guarded.actions.push_back({DeviceType::kCamera, Command::kSnapshot, 0});
  deployed.push_back(guarded);

  SmartHome home({}, deployed);
  graph::Event press;
  press.device = DeviceType::kButton;
  press.location = Location::kBedroom;
  press.state = "pressed";
  home.InjectEvent(press);
  EXPECT_NE(home.DeviceState(DeviceType::kCamera), "captured");
}

TEST(SmartHome, CommandFailureRateSuppressesEvents) {
  SmartHome::Config ok_cfg;
  ok_cfg.seed = 7;
  SmartHome ok(ok_cfg, ScenarioGenerator::BenignDeployment());
  SmartHome::Config fail_cfg;
  fail_cfg.seed = 7;
  fail_cfg.command_failure_rate = 1.0;
  SmartHome failing(fail_cfg, ScenarioGenerator::BenignDeployment());
  for (int i = 0; i < 5; ++i) {
    ok.InjectCommand(DeviceType::kLight, Location::kLivingRoom, Command::kOn);
    failing.InjectCommand(DeviceType::kLight, Location::kLivingRoom,
                          Command::kOn);
  }
  EXPECT_GT(ok.log().size(), failing.log().size());
}

TEST(SmartHome, BenignDeploymentIsAnalyzerClean) {
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  auto g = builder.BuildFromRules(ScenarioGenerator::BenignDeployment());
  EXPECT_FALSE(g.vulnerable());
}

// ---------------------------------------------------------------------------
// Attacks
// ---------------------------------------------------------------------------

TEST(Attacks, StealthyCommandTriggersMotion) {
  SmartHome home({}, ScenarioGenerator::BenignDeployment());
  Rng rng(3);
  const size_t before = home.log().size();
  ApplyAttack(AttackType::kStealthyCommand, &home, &rng);
  // Vacuum start emits a motion event which cascades to the light rule.
  bool motion = false, vacuum = false;
  for (const auto& e : home.log().events()) {
    motion |= e.device == DeviceType::kMotionSensor && e.state == "active";
    vacuum |= e.device == DeviceType::kVacuum;
  }
  EXPECT_TRUE(motion);
  EXPECT_TRUE(vacuum);
  EXPECT_GT(home.log().size(), before);
}

TEST(Attacks, EventLossShrinksLog) {
  SmartHome home({}, ScenarioGenerator::BenignDeployment());
  home.Simulate(24);
  Rng rng(5);
  const size_t before = home.log().size();
  ApplyAttack(AttackType::kEventLoss, &home, &rng);
  EXPECT_LT(home.log().size(), before);
}

TEST(Attacks, FakeEventInjectsSensorReport) {
  SmartHome home({}, ScenarioGenerator::BenignDeployment());
  Rng rng(9);
  ApplyAttack(AttackType::kFakeEvent, &home, &rng);
  EXPECT_GE(home.log().size(), 1u);
}

TEST(Attacks, NamesResolve) {
  EXPECT_STREQ(AttackName(AttackType::kFakeCommand), "fake_command");
  EXPECT_STREQ(AttackName(AttackType::kEventLoss), "event_loss");
}

// ---------------------------------------------------------------------------
// Frame encoder
// ---------------------------------------------------------------------------

TEST(FrameEncoderTest, FrameShape) {
  FrameEncoder enc(SmartHome::DefaultLayout());
  SmartHome home({}, ScenarioGenerator::BenignDeployment());
  home.Simulate(12);
  ASSERT_GT(home.log().size(), 4u);
  const FloatVec frame = enc.FrameAt(home.log(), 0);
  EXPECT_EQ(frame.size(), enc.frame_dim());
  EXPECT_EQ(frame.size(), SmartHome::DefaultLayout().size() + 1);
}

TEST(FrameEncoderTest, WindowsConcatenateFourFrames) {
  FrameEncoder enc(SmartHome::DefaultLayout());
  SmartHome home({}, ScenarioGenerator::BenignDeployment());
  home.Simulate(12);
  auto windows = enc.Windows(home.log(), 4);
  ASSERT_FALSE(windows.empty());
  EXPECT_EQ(windows[0].size(), 4 * enc.frame_dim());
  EXPECT_EQ(windows.size(), home.log().size() - 3);
}

TEST(FrameEncoderTest, ShortLogYieldsNoWindows) {
  FrameEncoder enc(SmartHome::DefaultLayout());
  graph::EventLog log;
  graph::Event e;
  e.device = DeviceType::kLight;
  e.state = "on";
  log.Append(e);
  EXPECT_TRUE(enc.Windows(log, 4).empty());
}

// ---------------------------------------------------------------------------
// HAWatcher
// ---------------------------------------------------------------------------

TEST(HaWatcherTest, MinesCorrelationsFromBenignTrace) {
  ScenarioGenerator gen(11);
  auto benign = gen.BenignWeek(168);
  HaWatcher hw;
  hw.Train(benign);
  // The motion->light correlation must be found.
  EXPECT_GT(hw.num_correlations(), 0u);
}

TEST(HaWatcherTest, BenignWindowMostlyClean) {
  ScenarioGenerator gen(13);
  auto benign = gen.BenignWeek(168);
  HaWatcher hw;
  hw.Train(benign);
  // Score fresh benign windows: most must be clean.
  ScenarioGenerator gen2(17);
  int clean = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    auto s = gen2.MakeBenign();
    auto window = s.log.Window(s.now_hours, 3.0);
    clean += hw.Flag(window) ? 0 : 1;
  }
  EXPECT_GT(clean, n / 2);
}

TEST(HaWatcherTest, DetectsUnknownEventSignatures) {
  ScenarioGenerator gen(19);
  auto benign = gen.BenignWeek(100);
  HaWatcher hw;
  hw.Train(benign);
  // A smoke alarm beep never occurs in benign data -> anomaly.
  graph::Event smoke;
  smoke.device = DeviceType::kSmokeAlarm;
  smoke.state = "beeping";
  smoke.time_hours = 1.0;
  EXPECT_GT(hw.CountAnomalies({smoke}), 0);
}

// ---------------------------------------------------------------------------
// Scenario generator
// ---------------------------------------------------------------------------

TEST(Scenarios, LabelsAndShapes) {
  ScenarioGenerator gen(23);
  auto benign = gen.MakeBenign();
  EXPECT_FALSE(benign.threat);
  EXPECT_GT(benign.log.size(), 0u);

  auto bct = gen.MakeBct();
  EXPECT_TRUE(bct.threat);
  EXPECT_FALSE(bct.complex);
  EXPECT_GT(bct.deployed.size(), ScenarioGenerator::BenignDeployment().size());

  auto cct = gen.MakeCct();
  EXPECT_TRUE(cct.threat);
  EXPECT_TRUE(cct.complex);
}

TEST(Scenarios, BctGraphsAreAnalyzerVulnerable) {
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  ScenarioGenerator gen(29);
  int vulnerable = 0;
  const int n = 9;
  for (int i = 0; i < n; ++i) {
    auto s = gen.MakeBct();
    auto g = builder.BuildFromRules(s.deployed);
    vulnerable += g.vulnerable() ? 1 : 0;
  }
  EXPECT_EQ(vulnerable, n);  // every BCT combo is a classic threat
}

TEST(Scenarios, CctGraphsInvolveAtLeastThreeCulprits) {
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  ScenarioGenerator gen(31);
  // At least some CCT combos produce >2 culprit nodes (complex chains);
  // all are either classic-vulnerable or carry a new-type chain.
  int complex_found = 0;
  for (int i = 0; i < 9; ++i) {
    auto s = gen.MakeCct();
    auto g = builder.BuildFromRules(s.deployed);
    auto classic = graph::ThreatAnalyzer::DetectClassic(g);
    auto fresh = graph::ThreatAnalyzer::DetectNewTypes(g);
    EXPECT_TRUE(!classic.empty() || !fresh.empty());
    for (const auto& f : fresh) {
      if (f.nodes.size() >= 3) ++complex_found;
    }
    if (g.culprit_nodes().size() >= 3) ++complex_found;
  }
  EXPECT_GT(complex_found, 0);
}

}  // namespace
}  // namespace glint::testbed
