// Sharded-fleet proof obligations:
//   1. Routing: ShardOf is a pure, stable function of (id, shard count)
//      and spreads homes across shards.
//   2. Bit-identity: a ShardedFleet serving a scripted workload produces
//      per-home output BIT-IDENTICAL to one ServingEngine serving the same
//      homes — for shard counts {1,2,8}, thread counts {1,4}, and with the
//      workload flowing through the EventBus (threaded consumers, multiple
//      producers) instead of synchronous calls.
//   3. Backpressure: kReject surfaces a full queue as FailedPrecondition +
//      counter; kBlock is lossless; apply errors are counted, never thrown.
//   4. Crash-safety: with per-shard WALs, killing the process at every
//      registered I/O fault point loses at most the in-flight op of ONE
//      shard; recovery + per-shard tail replay lands on the reference
//      fingerprint. A torn WAL tail on one shard never affects the others.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/glint.h"
#include "fleet/event_bus.h"
#include "fleet/server.h"
#include "fleet/sharding.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace glint::fleet {
namespace {

using core::DeploymentSession;
using core::Glint;
using core::ServingEngine;
using core::ThreatWarning;

struct Op {
  enum Kind { kAddHome, kAddRule, kRemoveRule, kEvent } kind;
  HomeId home;
  std::vector<rules::Rule> deployed;  // kAddHome
  rules::Rule rule;                   // kAddRule
  int rule_id = 0;                    // kRemoveRule
  graph::Event event;                 // kEvent
};

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Crash-matrix tests fork; a forked child must not depend on pool
    // worker threads that do not survive fork.
    ThreadPool::SetGlobalThreads(1);

    Glint::Options opts;
    opts.corpus.ifttt = 200;
    opts.corpus.smartthings = 40;
    opts.corpus.alexa = 60;
    opts.corpus.google_assistant = 40;
    opts.corpus.home_assistant = 40;
    opts.num_training_graphs = 40;
    opts.builder.max_nodes = 8;
    opts.model.num_scales = 2;
    opts.model.embed_dim = 32;
    opts.train.epochs = 2;
    opts.pairs.num_positive = 60;
    opts.pairs.num_negative = 90;
    glint_ = new Glint(opts);
    glint_->TrainOffline();

    BuildScript();

    // The reference: ONE engine serving every home, synchronously.
    ServingEngine ref(&glint_->detector());
    for (const auto& op : *script_) {
      ASSERT_TRUE(ApplyToEngine(&ref, op).ok());
    }
    *reference_ = EngineMap(&ref);
    ASSERT_EQ(reference_->size(), kHomes.size());

    char tmpl[] = "/tmp/glint_fleet_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    base_dir_ = new std::string(tmpl);
  }

  void SetUp() override { fault::Registry::Global().Clear(); }
  void TearDown() override {
    fault::Registry::Global().Clear();
    ThreadPool::SetGlobalThreads(1);
  }

  static std::vector<rules::Rule> RulePool(int n) {
    std::vector<rules::Rule> out(
        glint_->corpus().begin(),
        glint_->corpus().begin() +
            std::min<size_t>(static_cast<size_t>(n),
                             glint_->corpus().size()));
    for (size_t i = 0; i < out.size(); ++i) {
      out[i].id = 9000 + static_cast<int>(i);
    }
    return out;
  }

  static graph::Event EventFor(const rules::Rule& r, double t) {
    graph::Event e;
    e.time_hours = t;
    e.location = r.location;
    e.device = r.trigger.device;
    e.state = r.trigger.state;
    return e;
  }

  /// Ten homes with id shapes a real frontend would produce; FNV-1a
  /// scatters them across shards.
  static inline const std::vector<HomeId> kHomes = {
      "alpha", "bravo-2", "charlie", "delta#4", "echo",
      "fox",   "golf-77", "hotel",   "india",   "juliet-x"};

  static void BuildScript() {
    auto pool = RulePool(8);
    auto add_home = [&](const HomeId& id, std::vector<rules::Rule> d) {
      Op op;
      op.kind = Op::kAddHome;
      op.home = id;
      op.deployed = std::move(d);
      script_->push_back(std::move(op));
    };
    auto add_rule = [&](const HomeId& id, const rules::Rule& r) {
      Op op;
      op.kind = Op::kAddRule;
      op.home = id;
      op.rule = r;
      script_->push_back(std::move(op));
    };
    auto remove_rule = [&](const HomeId& id, int rid) {
      Op op;
      op.kind = Op::kRemoveRule;
      op.home = id;
      op.rule_id = rid;
      script_->push_back(std::move(op));
    };
    auto event = [&](const HomeId& id, const rules::Rule& r, double t) {
      Op op;
      op.kind = Op::kEvent;
      op.home = id;
      op.event = EventFor(r, t);
      script_->push_back(std::move(op));
    };

    for (size_t i = 0; i < kHomes.size(); ++i) {
      // Home i deploys 2-3 rules from the shared pool (shared content
      // keeps detector memo caches warm across homes, as in production).
      std::vector<rules::Rule> d = {pool[i % 8], pool[(i + 3) % 8]};
      if (i % 2 == 0) d.push_back(pool[(i + 5) % 8]);
      add_home(kHomes[i], std::move(d));
    }
    double t = 0.4;
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < kHomes.size(); ++i) {
        event(kHomes[i], pool[(i + static_cast<size_t>(round)) % 8], t);
        t += 0.07;
      }
    }
    add_rule(kHomes[1], pool[6]);
    add_rule(kHomes[4], pool[7]);
    remove_rule(kHomes[0], 9000 + static_cast<int>(0 % 8));
    remove_rule(kHomes[6], 9000 + static_cast<int>((6 + 3) % 8));
    for (size_t i = 0; i < kHomes.size(); ++i) {
      event(kHomes[i], pool[(i + 1) % 8], t);
      t += 0.07;
    }
  }

  static Status ApplyToEngine(ServingEngine* e, const Op& op) {
    switch (op.kind) {
      case Op::kAddHome:
        return e->TryAddHome(op.home, op.deployed).status();
      case Op::kAddRule:
        return e->TryAddRule(op.home, op.rule);
      case Op::kRemoveRule:
        return e->TryRemoveRule(op.home, op.rule_id);
      case Op::kEvent:
        return e->TryOnEvent(op.home, op.event);
    }
    return Status::Internal("unreachable");
  }

  static Status ApplyToFleet(ShardedFleet* f, const Op& op) {
    switch (op.kind) {
      case Op::kAddHome:
        return f->TryAddHome(op.home, op.deployed).status();
      case Op::kAddRule:
        return f->TryAddRule(op.home, op.rule);
      case Op::kRemoveRule:
        return f->TryRemoveRule(op.home, op.rule_id);
      case Op::kEvent:
        return f->TryOnEvent(op.home, op.event);
    }
    return Status::Internal("unreachable");
  }

  static BusMessage ToMessage(const Op& op) {
    BusMessage m;
    m.home = op.home;
    switch (op.kind) {
      case Op::kAddHome:
        m.kind = BusMessage::Kind::kAddHome;
        m.rules = op.deployed;
        break;
      case Op::kAddRule:
        m.kind = BusMessage::Kind::kAddRule;
        m.rule = op.rule;
        break;
      case Op::kRemoveRule:
        m.kind = BusMessage::Kind::kRemoveRule;
        m.rule_id = op.rule_id;
        break;
      case Op::kEvent:
        m.kind = BusMessage::Kind::kEvent;
        m.event = op.event;
        break;
    }
    return m;
  }

  /// Full-precision observable state of one home: rules, watermark, and
  /// every field of its warning (%.17a doubles — string equality is bit
  /// identity).
  static std::string HomeLine(const DeploymentSession& s,
                              const ThreatWarning& w) {
    std::string out;
    char buf[64];
    auto hex = [&](double v) {
      std::snprintf(buf, sizeof buf, "%.17a", v);
      out += buf;
    };
    out += "rules";
    for (const auto& r : s.CurrentRules()) out += " " + std::to_string(r.id);
    out += " events " + std::to_string(s.live().retained_events().size()) +
           " watermark ";
    hex(s.live().latest_event_hours());
    out += " threat " + std::to_string(w.threat) + " drifting " +
           std::to_string(w.drifting) + " confidence ";
    hex(w.confidence);
    out += " types";
    for (auto ty : w.types) out += " " + std::to_string(static_cast<int>(ty));
    for (const auto& c : w.culprits) {
      out += " culprit " + std::to_string(c.node) + " " + c.platform + " '" +
             c.rule_text + "' ";
      hex(c.importance);
    }
    return out;
  }

  static std::map<HomeId, std::string> EngineMap(ServingEngine* e) {
    std::map<HomeId, std::string> m;
    auto warnings = e->InspectAll(kInspectHour);
    for (size_t h = 0; h < e->num_homes(); ++h) {
      m[e->home_id(static_cast<int>(h))] =
          HomeLine(e->home_view(static_cast<int>(h)), warnings[h]);
    }
    return m;
  }

  static std::map<HomeId, std::string> FleetMap(ShardedFleet* f,
                                                int max_batch = 4) {
    std::map<HomeId, std::string> m;
    FleetWarnings fw = f->InspectAll(kInspectHour, max_batch);
    EXPECT_EQ(fw.ids.size(), fw.warnings.size());
    for (size_t i = 0; i < fw.ids.size(); ++i) {
      const ServingEngine& shard = f->shard(f->ShardOf(fw.ids[i]));
      const int h = shard.ResolveHome(fw.ids[i]);
      EXPECT_GE(h, 0);
      m[fw.ids[i]] = HomeLine(shard.home_view(h), fw.warnings[i]);
    }
    return m;
  }

  static std::string Dir(const std::string& name) {
    std::string d = *base_dir_ + "/" + name;
    for (char& c : d) {
      if (c == '.') c = '_';
    }
    return d;
  }

  /// Applies the script to a fleet, skipping for each shard the prefix it
  /// already recovered durably (shard K's journal_seq = ops applied to K).
  /// Snapshot after script index `snapshot_after` when durable (-1 =
  /// never). Stops at the first error.
  static Status RunFleetScript(ShardedFleet* fleet, int snapshot_after) {
    std::vector<uint64_t> done(static_cast<size_t>(fleet->num_shards()));
    for (int k = 0; k < fleet->num_shards(); ++k) {
      done[static_cast<size_t>(k)] = fleet->shard(k).journal_seq();
    }
    std::vector<uint64_t> seen(static_cast<size_t>(fleet->num_shards()), 0);
    for (size_t i = 0; i < script_->size(); ++i) {
      const Op& op = (*script_)[i];
      const size_t k = static_cast<size_t>(fleet->ShardOf(op.home));
      ++seen[k];
      if (seen[k] > done[k]) {
        GLINT_RETURN_IF_ERROR(ApplyToFleet(fleet, op));
      }
      if (static_cast<int>(i) == snapshot_after && fleet->durable()) {
        GLINT_RETURN_IF_ERROR(fleet->Snapshot());
      }
    }
    return Status::OK();
  }

  static constexpr double kInspectHour = 3.5;
  static constexpr int kSnapshotAfter = 17;

  static Glint* glint_;
  static std::vector<Op>* script_;
  static std::map<HomeId, std::string>* reference_;
  static std::string* base_dir_;
};

Glint* FleetTest::glint_ = nullptr;
std::vector<Op>* FleetTest::script_ = new std::vector<Op>();
std::map<HomeId, std::string>* FleetTest::reference_ =
    new std::map<HomeId, std::string>();
std::string* FleetTest::base_dir_ = nullptr;

// ---- Routing ------------------------------------------------------------

TEST_F(FleetTest, ShardRoutingIsStableAndSpreads) {
  FleetConfig cfg;
  cfg.num_shards = 8;
  ShardedFleet a(&glint_->detector(), cfg);
  ShardedFleet b(&glint_->detector(), cfg);
  std::set<int> used;
  for (int i = 0; i < 1000; ++i) {
    const HomeId id = "home-" + std::to_string(i);
    const int k = a.ShardOf(id);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 8);
    // Pure function of (id, shard count): two fleets agree.
    EXPECT_EQ(b.ShardOf(id), k);
    used.insert(k);
  }
  // 1000 ids over 8 shards: every shard owns some.
  EXPECT_EQ(used.size(), 8u);
}

TEST_F(FleetTest, GrowingTheRingMovesOnlyAFraction) {
  FleetConfig c4, c5;
  c4.num_shards = 4;
  c5.num_shards = 5;
  ShardedFleet f4(&glint_->detector(), c4);
  ShardedFleet f5(&glint_->detector(), c5);
  int moved = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const HomeId id = "home-" + std::to_string(i);
    moved += f4.ShardOf(id) != f5.ShardOf(id);
  }
  // Consistent hashing: going 4 -> 5 shards should move ~1/5 of homes;
  // naive modulo would move ~4/5. Allow generous slack over 1/5.
  EXPECT_LT(moved, n * 2 / 5) << "ring reshuffles too much";
  EXPECT_GT(moved, 0);
}

// ---- Crash-safety (fork-based; must run while the pool is 1 thread) -----

TEST_F(FleetTest, ShardCrashMatrixRecoversBitIdentical) {
  // Register every reachable I/O fault point by running one throwaway
  // durable fleet workload.
  {
    FleetConfig cfg;
    cfg.num_shards = 3;
    cfg.state_dir = Dir("enumerate");
    ShardedFleet fleet(&glint_->detector(), cfg);
    ASSERT_TRUE(fleet.Recover().ok());
    ASSERT_TRUE(RunFleetScript(&fleet, kSnapshotAfter).ok());
    ASSERT_TRUE(fleet.Snapshot().ok());
    EXPECT_EQ(FleetMap(&fleet), *reference_);
  }
  std::vector<std::string> points;
  for (const auto& p : fault::Registry::Global().Points()) {
    if (p.rfind("wal.", 0) == 0 || p.rfind("snapshot.", 0) == 0 ||
        p.rfind("journal.", 0) == 0) {
      points.push_back(p);
    }
  }
  ASSERT_GE(points.size(), 10u) << "fault-point enumeration looks broken";

  int crashes = 0;
  for (const auto& point : points) {
    // nth=3: with 3 shards the first hits land in shard 0's journal; later
    // hits land mid-workload in other shards — either way exactly one
    // shard's I/O is interrupted.
    for (int nth : {1, 3}) {
      const std::string context =
          "crash @ " + point + " hit " + std::to_string(nth);
      const std::string dir =
          Dir("crash_" + point + "_" + std::to_string(nth));

      const pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        fault::Registry::Global().Clear();
        fault::Registry::Global().Arm(point, fault::Mode::kCrash, nth);
        FleetConfig cfg;
        cfg.num_shards = 3;
        cfg.state_dir = dir;
        ShardedFleet fleet(&glint_->detector(), cfg);
        Status st = fleet.Recover();
        if (st.ok()) st = RunFleetScript(&fleet, kSnapshotAfter);
        if (st.ok()) st = fleet.Snapshot();
        _exit(st.ok() ? 0 : 3);
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus)) << context;
      const int code = WEXITSTATUS(wstatus);
      ASSERT_TRUE(code == fault::kCrashExitCode || code == 0)
          << context << " exited " << code;
      crashes += (code == fault::kCrashExitCode);

      // Recovery: every shard recovers its own journal independently; the
      // per-shard tail replay reapplies only what each shard lost.
      FleetConfig cfg;
      cfg.num_shards = 3;
      cfg.state_dir = dir;
      ShardedFleet fleet(&glint_->detector(), cfg);
      Status st = fleet.Recover();
      ASSERT_TRUE(st.ok()) << context << ": " << st.ToString();
      st = RunFleetScript(&fleet, -1);
      ASSERT_TRUE(st.ok()) << context << ": " << st.ToString();
      EXPECT_EQ(FleetMap(&fleet), *reference_) << context;
    }
  }
  EXPECT_GE(crashes, static_cast<int>(points.size()));
}

TEST_F(FleetTest, TornTailOnOneShardDoesNotTouchTheOthers) {
  const std::string dir = Dir("torn_shard");
  {
    FleetConfig cfg;
    cfg.num_shards = 3;
    cfg.state_dir = dir;
    ShardedFleet fleet(&glint_->detector(), cfg);
    ASSERT_TRUE(fleet.Recover().ok());
    ASSERT_TRUE(RunFleetScript(&fleet, -1).ok());
  }
  // Tear shard 1's WAL tail only: a frame header announcing 16 bytes,
  // followed by 4.
  {
    std::FILE* f = std::fopen((dir + "/shard-1/wal.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint32_t len = 16, crc = 0xabad1dea;
    std::fwrite(&len, sizeof len, 1, f);
    std::fwrite(&crc, sizeof crc, 1, f);
    std::fwrite("torn", 1, 4, f);
    std::fclose(f);
  }
  FleetConfig cfg;
  cfg.num_shards = 3;
  cfg.state_dir = dir;
  ShardedFleet fleet(&glint_->detector(), cfg);
  ASSERT_TRUE(fleet.Recover().ok());
  EXPECT_TRUE(fleet.shard(1).recovery_info().tail_torn);
  EXPECT_FALSE(fleet.shard(0).recovery_info().tail_torn);
  EXPECT_FALSE(fleet.shard(2).recovery_info().tail_torn);
  // No complete record was lost, so no replay is needed anywhere.
  ASSERT_TRUE(RunFleetScript(&fleet, -1).ok());
  EXPECT_EQ(FleetMap(&fleet), *reference_);
  // The fleet still serves: all shards accept new work after recovery.
  EXPECT_TRUE(fleet
                  .TryOnEvent(kHomes[0],
                              EventFor(RulePool(1)[0], kInspectHour - 0.2))
                  .ok());
}

// ---- Bit-identity: fleet vs single engine -------------------------------

TEST_F(FleetTest, FleetMatchesSingleEngineAcrossShardAndThreadCounts) {
  for (int shards : {1, 2, 8}) {
    for (int threads : {1, 4}) {
      ThreadPool::SetGlobalThreads(threads);
      FleetConfig cfg;
      cfg.num_shards = shards;
      ShardedFleet fleet(&glint_->detector(), cfg);
      for (const auto& op : *script_) {
        ASSERT_TRUE(ApplyToFleet(&fleet, op).ok());
      }
      for (int max_batch : {1, 4, 256}) {
        EXPECT_EQ(FleetMap(&fleet, max_batch), *reference_)
            << "shards=" << shards << " threads=" << threads
            << " max_batch=" << max_batch;
      }
      EXPECT_EQ(fleet.num_homes(), kHomes.size());
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

TEST_F(FleetTest, BusPathMatchesSynchronousApply) {
  FleetConfig cfg;
  cfg.num_shards = 4;
  ShardedFleet fleet(&glint_->detector(), cfg);
  EventBus bus(&fleet, {});
  // Two producers, homes partitioned between them, each posting its homes'
  // ops in script order — per-home order is preserved, which is all the
  // bus promises and all determinism needs.
  auto produce = [&](int parity) {
    for (const auto& op : *script_) {
      if (static_cast<int>(std::hash<std::string>{}(op.home) & 1) != parity) {
        continue;
      }
      Status st = bus.Post(ToMessage(op));
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  };
  std::thread p0(produce, 0), p1(produce, 1);
  p0.join();
  p1.join();
  bus.Flush();
  EXPECT_EQ(bus.apply_errors(), 0u);
  EXPECT_EQ(FleetMap(&fleet), *reference_);
  bus.Stop();
  // After Stop, posts are refused.
  EXPECT_EQ(bus.Post(ToMessage((*script_)[0])).code(),
            StatusCode::kFailedPrecondition);
}

// ---- Backpressure & error surfacing -------------------------------------

TEST_F(FleetTest, RejectPolicySurfacesFullQueues) {
  FleetConfig cfg;
  cfg.num_shards = 1;
  ShardedFleet fleet(&glint_->detector(), cfg);
  ASSERT_TRUE(fleet.TryAddHome("bp-home", RulePool(2)).ok());
  EventBus::Config bc;
  bc.capacity = 2;
  bc.policy = EventBus::Backpressure::kReject;
  bc.manual_drain = true;  // no consumers: the queue fills deterministically
  EventBus bus(&fleet, bc);
  auto pool = RulePool(2);
  BusMessage m;
  m.kind = BusMessage::Kind::kEvent;
  m.home = "bp-home";
  m.event = EventFor(pool[0], 0.5);
  EXPECT_TRUE(bus.Post(m).ok());
  EXPECT_TRUE(bus.Post(m).ok());
  Status st = bus.Post(m);  // queue full
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(bus.rejected(), 1u);
  EXPECT_EQ(bus.queue_high_water(0), 2u);
  EXPECT_EQ(bus.DrainOnce(0), 2u);
  EXPECT_TRUE(bus.Post(m).ok());  // space again
  EXPECT_EQ(bus.DrainOnce(0), 1u);
  EXPECT_EQ(bus.apply_errors(), 0u);
  bus.Stop();
}

TEST_F(FleetTest, BlockPolicyIsLossless) {
  FleetConfig cfg;
  cfg.num_shards = 2;
  ShardedFleet fleet(&glint_->detector(), cfg);
  ASSERT_TRUE(fleet.TryAddHome("bl-a", RulePool(2)).ok());
  ASSERT_TRUE(fleet.TryAddHome("bl-b", RulePool(2)).ok());
  EventBus::Config bc;
  bc.capacity = 1;  // every second post must wait for the consumer
  EventBus bus(&fleet, bc);
  auto pool = RulePool(2);
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    BusMessage m;
    m.kind = BusMessage::Kind::kEvent;
    m.home = (i & 1) ? "bl-a" : "bl-b";
    m.event = EventFor(pool[i & 1], 0.1 + 0.01 * i);
    ASSERT_TRUE(bus.Post(std::move(m)).ok());
  }
  bus.Flush();
  EXPECT_EQ(bus.rejected(), 0u);
  EXPECT_EQ(bus.apply_errors(), 0u);
  const auto agg = fleet.AggregateStats();
  EXPECT_EQ(agg.events, static_cast<uint64_t>(n));
  bus.Stop();
}

TEST_F(FleetTest, ApplyErrorsAreCountedNotThrown) {
  FleetConfig cfg;
  cfg.num_shards = 2;
  ShardedFleet fleet(&glint_->detector(), cfg);
  EventBus::Config bc;
  bc.manual_drain = true;
  EventBus bus(&fleet, bc);
  BusMessage m;
  m.kind = BusMessage::Kind::kEvent;
  m.home = "nobody-home";
  m.event = EventFor(RulePool(1)[0], 0.5);
  ASSERT_TRUE(bus.Post(m).ok());  // accepted: routing never fails
  const int k = fleet.ShardOf("nobody-home");
  EXPECT_EQ(bus.DrainOnce(k), 1u);
  EXPECT_EQ(bus.apply_errors(), 1u);
  Status first = bus.FirstError(k);
  EXPECT_EQ(first.code(), StatusCode::kNotFound);
  bus.Stop();
}

// ---- RunOnShard: the race-free read path --------------------------------

TEST_F(FleetTest, RunOnShardRunsBehindEverythingAccepted) {
  FleetConfig cfg;
  cfg.num_shards = 2;
  ShardedFleet fleet(&glint_->detector(), cfg);
  ASSERT_TRUE(fleet.TryAddHome("ros-home", RulePool(2)).ok());
  const int k = fleet.ShardOf("ros-home");
  auto pool = RulePool(2);
  EventBus bus(&fleet, {});
  const uint64_t n = 32;
  for (uint64_t i = 0; i < n; ++i) {
    BusMessage m;
    m.kind = BusMessage::Kind::kEvent;
    m.home = "ros-home";
    m.event = EventFor(pool[i & 1], 0.1 + 0.01 * static_cast<double>(i));
    ASSERT_TRUE(bus.Post(std::move(m)).ok());
  }
  // FIFO: the task is queued after the n events, so it must observe all
  // of them applied — and it must run on the shard's consumer thread,
  // which is what makes the read race-free against other producers.
  uint64_t seen = 0;
  std::thread::id task_thread;
  ASSERT_TRUE(bus.RunOnShard(k, [&] {
                   seen = fleet.shard(k).AggregateStats().events;
                   task_thread = std::this_thread::get_id();
                 }).ok());
  EXPECT_EQ(seen, n);
  EXPECT_NE(task_thread, std::this_thread::get_id());
  bus.Stop();
  // A stopped bus refuses the task and never runs the closure.
  bool ran = false;
  EXPECT_EQ(bus.RunOnShard(k, [&] { ran = true; }).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(ran);
}

TEST_F(FleetTest, RunOnShardManualDrainAppliesThenRunsInline) {
  FleetConfig cfg;
  cfg.num_shards = 1;
  ShardedFleet fleet(&glint_->detector(), cfg);
  ASSERT_TRUE(fleet.TryAddHome("ros-md", RulePool(2)).ok());
  EventBus::Config bc;
  bc.manual_drain = true;
  EventBus bus(&fleet, bc);
  auto pool = RulePool(2);
  for (int i = 0; i < 3; ++i) {
    BusMessage m;
    m.kind = BusMessage::Kind::kEvent;
    m.home = "ros-md";
    m.event = EventFor(pool[i & 1], 0.2 + 0.05 * i);
    ASSERT_TRUE(bus.Post(std::move(m)).ok());
  }
  uint64_t seen = 0;
  std::thread::id task_thread;
  ASSERT_TRUE(bus.RunOnShard(0, [&] {
                   seen = fleet.shard(0).AggregateStats().events;
                   task_thread = std::this_thread::get_id();
                 }).ok());
  EXPECT_EQ(seen, 3u);  // drained before the closure ran
  EXPECT_EQ(task_thread, std::this_thread::get_id());  // inline, no consumer
  bus.Stop();
}

TEST_F(FleetTest, AcceptedPostsAreAppliedDespiteConcurrentStop) {
  FleetConfig cfg;
  cfg.num_shards = 2;
  ShardedFleet fleet(&glint_->detector(), cfg);
  ASSERT_TRUE(fleet.TryAddHome("st-a", RulePool(2)).ok());
  ASSERT_TRUE(fleet.TryAddHome("st-b", RulePool(2)).ok());
  EventBus::Config bc;
  bc.capacity = 4;  // small: most posts ride the blocking path mid-Stop
  EventBus bus(&fleet, bc);
  auto pool = RulePool(2);
  // The guarantee under test: a Post that returned OK is applied before
  // Stop() returns, even when Stop races the push — never silently lost.
  std::atomic<uint64_t> accepted{0};
  auto produce = [&](const HomeId& home) {
    for (int i = 0; i < 400; ++i) {
      BusMessage m;
      m.kind = BusMessage::Kind::kEvent;
      m.home = home;
      m.event = EventFor(pool[i & 1], 0.1 + 0.001 * i);
      if (bus.Post(std::move(m)).ok()) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread p0(produce, "st-a"), p1(produce, "st-b");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  bus.Stop();
  p0.join();
  p1.join();
  EXPECT_EQ(bus.apply_errors(), 0u);
  EXPECT_EQ(fleet.AggregateStats().events, accepted.load());
}

// ---- Wire server end to end ---------------------------------------------

/// Raw loopback TCP connect (bypassing wire::Client) so tests can put
/// arbitrary bytes on the wire.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(FleetTest, ServerServesTheWireProtocolEndToEnd) {
  FleetConfig cfg;
  cfg.num_shards = 2;
  ShardedFleet fleet(&glint_->detector(), cfg);
  FleetServer server(&fleet, {});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  wire::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  wire::Request req;
  wire::Reply reply;
  req.type = wire::MsgType::kPing;
  ASSERT_TRUE(client.Call(req, &reply).ok());
  EXPECT_EQ(reply.type, wire::MsgType::kPong);

  auto pool = RulePool(4);
  req = wire::Request();
  req.type = wire::MsgType::kAddHome;
  req.home = "net-a";
  req.rules = {pool[0], pool[1]};
  ASSERT_TRUE(client.Call(req, &reply).ok());
  EXPECT_EQ(reply.type, wire::MsgType::kAck);
  EXPECT_EQ(reply.code, 0) << reply.message;

  for (int i = 0; i < 4; ++i) {
    req = wire::Request();
    req.type = wire::MsgType::kEvent;
    req.home = "net-a";
    req.event = EventFor(pool[i % 2], 0.5 + 0.3 * i);
    ASSERT_TRUE(client.Call(req, &reply).ok());
    EXPECT_EQ(reply.code, 0) << reply.message;
  }

  // Inspect over the wire == inspect in process (the kInspect path runs on
  // the owning shard's consumer thread, behind the accepted events).
  req = wire::Request();
  req.type = wire::MsgType::kInspect;
  req.home = "net-a";
  req.now_hours = 2.0;
  ASSERT_TRUE(client.Call(req, &reply).ok());
  ASSERT_EQ(reply.type, wire::MsgType::kWarning);
  ASSERT_EQ(reply.code, 0) << reply.message;
  auto direct = fleet.TryInspect("net-a", 2.0);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(reply.rendered, direct.value().Render());
  EXPECT_EQ(reply.threat, direct.value().threat);

  // Mutations for unknown homes are *accepted* (ack OK) and fail at apply;
  // the failure surfaces in the stats counters, not the ack.
  req = wire::Request();
  req.type = wire::MsgType::kEvent;
  req.home = "net-ghost";
  req.event = EventFor(pool[0], 1.0);
  ASSERT_TRUE(client.Call(req, &reply).ok());
  EXPECT_EQ(reply.code, 0);

  req = wire::Request();
  req.type = wire::MsgType::kStats;
  ASSERT_TRUE(client.Call(req, &reply).ok());
  ASSERT_EQ(reply.type, wire::MsgType::kStatsReply);
  EXPECT_EQ(reply.homes, 1u);
  EXPECT_EQ(reply.events, 4u);
  EXPECT_EQ(reply.bus_apply_errors, 1u);

  // An inspect for an unknown home is a synchronous NotFound.
  req = wire::Request();
  req.type = wire::MsgType::kInspect;
  req.home = "net-ghost";
  req.now_hours = 2.0;
  ASSERT_TRUE(client.Call(req, &reply).ok());
  EXPECT_EQ(reply.type, wire::MsgType::kWarning);
  EXPECT_EQ(reply.code, static_cast<int32_t>(StatusCode::kNotFound));

  client.Close();
  server.Stop();
}

TEST_F(FleetTest, ServerSurvivesMalformedFramesAndKeepsServing) {
  FleetConfig cfg;
  cfg.num_shards = 2;
  ShardedFleet fleet(&glint_->detector(), cfg);
  FleetServer server(&fleet, {});
  ASSERT_TRUE(server.Start().ok());

  // 1. Frame-level corruption: flipped CRC. The server answers with an
  //    error ack where it can, then drops the connection (the stream
  //    cannot be resynchronized).
  {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    wire::Request ping;
    ping.type = wire::MsgType::kPing;
    std::vector<char> frame;
    wire::AppendFrame(&frame, wire::EncodeRequest(ping));
    frame[4] = static_cast<char>(frame[4] ^ 0x40);  // corrupt the crc field
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    std::vector<char> payload;
    Status st = wire::RecvFrame(fd, &payload);
    if (st.ok()) {  // the error ack, if the pipe still carried it
      wire::Reply reply;
      ASSERT_TRUE(wire::DecodeReply(payload, &reply).ok());
      EXPECT_EQ(reply.type, wire::MsgType::kAck);
      EXPECT_NE(reply.code, 0);
      // ...and then the connection is gone.
      EXPECT_FALSE(wire::RecvFrame(fd, &payload).ok());
    }
    ::close(fd);
  }

  // 2. Oversized length prefix: refused without buffering, connection
  //    dropped.
  {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    char header[8] = {0};
    const uint32_t len = wire::kMaxFramePayload + 1;
    std::memcpy(header, &len, sizeof len);
    ASSERT_EQ(::send(fd, header, sizeof header, 0), 8);
    std::vector<char> payload;
    Status st = wire::RecvFrame(fd, &payload);
    if (st.ok()) {
      wire::Reply reply;
      ASSERT_TRUE(wire::DecodeReply(payload, &reply).ok());
      EXPECT_NE(reply.code, 0);
    }
    ::close(fd);
  }

  // 3. An intact frame with a garbage body: error ack, connection STAYS —
  //    the stream is still in sync.
  {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::vector<char> frame;
    wire::AppendFrame(&frame, {char(0x33), 'x', 'y'});  // unknown type 0x33
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    std::vector<char> payload;
    ASSERT_TRUE(wire::RecvFrame(fd, &payload).ok());
    wire::Reply reply;
    ASSERT_TRUE(wire::DecodeReply(payload, &reply).ok());
    EXPECT_EQ(reply.type, wire::MsgType::kAck);
    EXPECT_NE(reply.code, 0);
    // Same connection still serves valid requests.
    wire::Request ping;
    ping.type = wire::MsgType::kPing;
    ASSERT_TRUE(wire::SendFrame(fd, wire::EncodeRequest(ping)).ok());
    ASSERT_TRUE(wire::RecvFrame(fd, &payload).ok());
    ASSERT_TRUE(wire::DecodeReply(payload, &reply).ok());
    EXPECT_EQ(reply.type, wire::MsgType::kPong);
    ::close(fd);
  }

  // After all that abuse the server still accepts fresh connections.
  wire::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  wire::Request req;
  wire::Reply reply;
  req.type = wire::MsgType::kPing;
  ASSERT_TRUE(client.Call(req, &reply).ok());
  EXPECT_EQ(reply.type, wire::MsgType::kPong);
  server.Stop();
}

// The reviewer-found race this pins down: one connection inspecting a
// shard while another keeps posting events to it. kInspect/kStats must
// read the engine on the shard's consumer thread (RunOnShard), never on
// the connection thread behind a mere flush — the TSAN leg of check.sh
// runs this suite, so a regression to flush-then-read fails loudly there.
TEST_F(FleetTest, ConcurrentClientsPostAndInspectWithoutRacing) {
  FleetConfig cfg;
  cfg.num_shards = 2;
  ShardedFleet fleet(&glint_->detector(), cfg);
  FleetServer server(&fleet, {});
  ASSERT_TRUE(server.Start().ok());
  auto pool = RulePool(4);
  const std::vector<HomeId> homes = {"cc-a", "cc-b"};
  {
    wire::Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    for (const auto& home : homes) {
      wire::Request req;
      wire::Reply reply;
      req.type = wire::MsgType::kAddHome;
      req.home = home;
      req.rules = {pool[0], pool[1]};
      ASSERT_TRUE(c.Call(req, &reply).ok());
      ASSERT_EQ(reply.code, 0) << reply.message;
    }
  }
  // Every client hammers BOTH homes, alternating mutations and reads, so
  // posters and inspectors collide on each shard the whole run.
  const int kClients = 4;
  const int kOpsPerClient = 60;
  std::atomic<uint64_t> posted{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      wire::Client c;
      if (!c.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kOpsPerClient; ++i) {
        wire::Request req;
        wire::Reply reply;
        req.home = homes[static_cast<size_t>(i & 1)];
        switch ((t + i) % 3) {
          case 0:
            req.type = wire::MsgType::kEvent;
            req.event = EventFor(pool[static_cast<size_t>(i % 4)],
                                 0.2 + 0.01 * i);
            break;
          case 1:
            req.type = wire::MsgType::kInspect;
            req.now_hours = 2.0;
            break;
          default:
            req.type = wire::MsgType::kStats;
            break;
        }
        if (!c.Call(req, &reply).ok() || reply.code != 0) {
          failures.fetch_add(1);
          return;
        }
        if (req.type == wire::MsgType::kEvent) posted.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every acked event was applied: kStats drains each shard behind its
  // accepted messages before reading the counters.
  wire::Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
  wire::Request req;
  wire::Reply reply;
  req.type = wire::MsgType::kStats;
  ASSERT_TRUE(c.Call(req, &reply).ok());
  EXPECT_EQ(reply.homes, homes.size());
  EXPECT_EQ(reply.events, posted.load());
  EXPECT_EQ(reply.bus_apply_errors, 0u);
  server.Stop();
}

// ---- Fleet-level routing sanity over the scripted homes -----------------

TEST_F(FleetTest, RoutedOpsLandOnTheOwningShardOnly) {
  FleetConfig cfg;
  cfg.num_shards = 8;
  ShardedFleet fleet(&glint_->detector(), cfg);
  for (const auto& op : *script_) {
    ASSERT_TRUE(ApplyToFleet(&fleet, op).ok());
  }
  size_t total = 0;
  for (int k = 0; k < fleet.num_shards(); ++k) {
    for (size_t h = 0; h < fleet.shard(k).num_homes(); ++h) {
      const HomeId& id = fleet.shard(k).home_id(static_cast<int>(h));
      EXPECT_EQ(fleet.ShardOf(id), k) << id << " on the wrong shard";
    }
    total += fleet.shard(k).num_homes();
  }
  EXPECT_EQ(total, kHomes.size());
  EXPECT_TRUE(fleet.has_home("alpha"));
  EXPECT_FALSE(fleet.has_home("zulu"));
  // Duplicate registration is refused fleet-wide (same ring position).
  EXPECT_FALSE(fleet.TryAddHome("alpha", RulePool(1)).ok());
}

}  // namespace
}  // namespace glint::fleet
