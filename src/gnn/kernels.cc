#include "gnn/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "obs/obs.h"
#include "util/status.h"

// This translation unit is compiled with -ffp-contract=off (see
// src/gnn/CMakeLists.txt): the scalar loops below must round every mul and
// add separately to stay bit-identical to the explicit mul-then-add vector
// backends.

namespace glint::gnn::kernels {

namespace {

float ScalarDot(const float* a, const float* b, int n) {
  float lane[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    for (int j = 0; j < 8; ++j) lane[j] += a[i + j] * b[i + j];
  }
  for (int i = n8; i < n; ++i) lane[i & 7] += a[i] * b[i];
  return detail::ReduceTree8(lane);
}

void ScalarAxpy(float* y, float alpha, const float* x, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarAddInto(float* y, const float* x, int n) {
  for (int i = 0; i < n; ++i) y[i] += x[i];
}

void ScalarMulAddInto(float* y, const float* a, const float* b, int n) {
  for (int i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void ScalarMulInto(float* out, const float* a, const float* b, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ScalarScaleInto(float* out, float s, const float* x, int n) {
  for (int i = 0; i < n; ++i) out[i] = s * x[i];
}

void ScalarReluInto(float* out, const float* x, int n) {
  for (int i = 0; i < n; ++i) out[i] = x[i] > 0 ? x[i] : 0.f;
}

double ScalarSumDouble(const double* x, int n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    for (int j = 0; j < 4; ++j) lane[j] += x[i + j];
  }
  for (int i = n4; i < n; ++i) lane[i & 3] += x[i];
  return detail::ReduceTree4(lane);
}

void ScalarDivDouble(double* x, double denom, int n) {
  for (int i = 0; i < n; ++i) x[i] /= denom;
}

}  // namespace

const KernelBackend kScalarBackend = {
    "scalar",
    static_cast<int>(Backend::kScalar),
    ScalarDot,
    ScalarAxpy,
    ScalarAddInto,
    ScalarMulAddInto,
    ScalarMulInto,
    ScalarScaleInto,
    ScalarReluInto,
    ScalarSumDouble,
    ScalarDivDouble,
};

// ---- Dispatch ------------------------------------------------------------

namespace {

const KernelBackend* TableFor(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &kScalarBackend;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      if (__builtin_cpu_supports("avx2")) return &kAvx2Backend;
#endif
      return nullptr;
    case Backend::kNeon:
#if defined(__aarch64__)
      return &kNeonBackend;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelBackend* BestAvailable() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) return &kAvx2Backend;
#endif
#if defined(__aarch64__)
  return &kNeonBackend;
#endif
  return &kScalarBackend;
}

std::atomic<const KernelBackend*> g_backend{nullptr};

void PublishBackendGauge(const KernelBackend* b) {
  GLINT_OBS_GAUGE_SET("glint.kernel.backend",
                      static_cast<int64_t>(b->code));
}

/// First-use resolution: GLINT_KERNEL wins (an unknown or unavailable name
/// aborts loudly — a production operator forcing a backend the CPU lacks is
/// a deployment error, not something to paper over), else best-available
/// from CPUID.
const KernelBackend* InitBackend() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const KernelBackend* b = g_backend.load(std::memory_order_acquire);
  if (b != nullptr) return b;
  const char* env = std::getenv("GLINT_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    const std::string want(env);
    const KernelBackend* forced = nullptr;
    if (want == "scalar") {
      forced = TableFor(Backend::kScalar);
    } else if (want == "avx2") {
      forced = TableFor(Backend::kAvx2);
    } else if (want == "neon") {
      forced = TableFor(Backend::kNeon);
    } else {
      GLINT_CHECK(false && "GLINT_KERNEL: unknown backend name");
    }
    GLINT_CHECK(forced != nullptr &&
                "GLINT_KERNEL: backend not available on this CPU");
    b = forced;
  } else {
    b = BestAvailable();
  }
  PublishBackendGauge(b);
  g_backend.store(b, std::memory_order_release);
  return b;
}

}  // namespace

const KernelBackend& Kernels() {
  const KernelBackend* b = g_backend.load(std::memory_order_acquire);
  if (b == nullptr) b = InitBackend();
  return *b;
}

Backend CurrentBackend() {
  return static_cast<Backend>(Kernels().code);
}

const char* BackendName() { return Kernels().name; }

std::vector<Backend> AvailableBackends() {
  std::vector<Backend> out = {Backend::kScalar};
  if (TableFor(Backend::kAvx2) != nullptr) out.push_back(Backend::kAvx2);
  if (TableFor(Backend::kNeon) != nullptr) out.push_back(Backend::kNeon);
  return out;
}

bool SetBackend(Backend b) {
  Kernels();  // ensure first-use init ran (keeps init/force ordering sane)
  const KernelBackend* table = TableFor(b);
  if (table == nullptr) return false;
  g_backend.store(table, std::memory_order_release);
  PublishBackendGauge(table);
  return true;
}

}  // namespace glint::gnn::kernels
