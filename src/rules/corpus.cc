#include "rules/corpus.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace glint::rules {
namespace {

// Actuator devices with their plausible commands.
struct Actuator {
  DeviceType device;
  std::vector<Command> commands;
  double weight;
};

const std::vector<Actuator>& Actuators() {
  using D = DeviceType;
  using C = Command;
  static const auto* v = new std::vector<Actuator>{
      {D::kLight, {C::kOn, C::kOff, C::kDim, C::kBrighten, C::kSetLevel}, 3.0},
      {D::kWindow, {C::kOpen, C::kClose}, 2.0},
      {D::kDoor, {C::kOpen, C::kClose}, 1.2},
      {D::kLock, {C::kLock, C::kUnlock}, 1.5},
      {D::kGarage, {C::kOpen, C::kClose}, 0.6},
      {D::kBlind, {C::kOpen, C::kClose}, 0.8},
      {D::kAc, {C::kOn, C::kOff}, 1.5},
      {D::kHeater, {C::kOn, C::kOff}, 1.3},
      {D::kOven, {C::kOn, C::kOff}, 0.5},
      {D::kHumidifier, {C::kOn, C::kOff}, 0.8},
      {D::kDehumidifier, {C::kOn, C::kOff}, 0.4},
      {D::kFan, {C::kOn, C::kOff}, 0.9},
      {D::kTv, {C::kOn, C::kOff, C::kPlay, C::kStopPlay}, 1.2},
      {D::kSpeaker, {C::kPlay, C::kStopPlay, C::kOn, C::kOff}, 1.2},
      {D::kVacuum, {C::kStartClean, C::kOff}, 0.7},
      {D::kSprinkler, {C::kOn, C::kOff}, 0.6},
      {D::kCoffeeMaker, {C::kOn, C::kOff}, 0.5},
      {D::kKettle, {C::kOn, C::kOff}, 0.3},
      {D::kCamera, {C::kSnapshot, C::kOn, C::kOff}, 0.8},
      {D::kPlug, {C::kOn, C::kOff}, 0.8},
      {D::kSecuritySystem, {C::kArm, C::kDisarm}, 0.8},
      {D::kPhone, {C::kNotify}, 1.5},
  };
  return *v;
}

}  // namespace

CorpusGenerator::CorpusGenerator(const CorpusConfig& config)
    : config_(config), rng_(config.seed), phrasing_(config.seed ^ 0xbeef) {}

TriggerSpec CorpusGenerator::RandomTrigger(Rng* rng) {
  TriggerSpec t;
  const double kind = rng->Uniform();
  if (kind < 0.22) {
    // Numeric environmental threshold.
    const bool temp = rng->Chance(0.7);
    t.channel = temp ? Channel::kTemperature : Channel::kHumidity;
    t.device = temp ? DeviceType::kTemperatureSensor
                    : DeviceType::kHumiditySensor;
    const double r = rng->Uniform();
    if (r < 0.4) {
      t.cmp = Comparator::kAbove;
      t.lo = temp ? rng->Int(70, 100) : rng->Int(50, 80);
      t.direction = +1;
    } else if (r < 0.8) {
      t.cmp = Comparator::kBelow;
      t.lo = temp ? rng->Int(30, 68) : rng->Int(20, 45);
      t.direction = -1;
    } else {
      t.cmp = Comparator::kBetween;
      t.lo = temp ? rng->Int(55, 70) : rng->Int(30, 50);
      t.hi = t.lo + rng->Int(10, 25);
    }
  } else if (kind < 0.40) {
    // Sensor event.
    static const std::vector<std::pair<DeviceType, std::string>> sensors = {
        {DeviceType::kMotionSensor, "active"},
        {DeviceType::kSmokeAlarm, "beeping"},
        {DeviceType::kPresenceSensor, "present"},
        {DeviceType::kPresenceSensor, "away"},
        {DeviceType::kLeakSensor, "wet"},
        {DeviceType::kButton, "pressed"},
    };
    auto [dev, state] = rng->Pick(sensors);
    t.device = dev;
    t.channel = SensedChannelOf(dev);
    t.cmp = Comparator::kEquals;
    t.state = state;
    t.direction = +1;
  } else if (kind < 0.55) {
    // Time-of-day trigger.
    t.channel = Channel::kTime;
    t.device = DeviceType::kButton;  // placeholder; channel is what matters
    t.cmp = Comparator::kEquals;
    t.has_time = true;
    t.hour_lo = static_cast<int>(rng->Int(0, 23));
    t.hour_hi = t.hour_lo;
  } else {
    // Device-state trigger ("when the door opens", "when the light is off").
    static const std::vector<std::pair<DeviceType, std::vector<std::string>>>
        states = {
            {DeviceType::kDoor, {"open", "closed"}},
            {DeviceType::kWindow, {"open", "closed"}},
            {DeviceType::kGarage, {"open", "closed"}},
            {DeviceType::kLight, {"on", "off"}},
            {DeviceType::kLock, {"locked", "unlocked"}},
            {DeviceType::kTv, {"on", "playing", "off"}},
            {DeviceType::kSpeaker, {"playing"}},
            {DeviceType::kAc, {"on", "off"}},
            {DeviceType::kHeater, {"on", "off"}},
            {DeviceType::kSecuritySystem, {"armed", "disarmed"}},
            {DeviceType::kPlug, {"on", "off"}},
        };
    const auto& [dev, opts] = rng->Pick(states);
    t.device = dev;
    t.channel = StateChannelOf(dev);
    t.cmp = Comparator::kEquals;
    t.state = rng->Pick(opts);
    t.direction = +1;
  }
  return t;
}

ConditionSpec CorpusGenerator::RandomCondition(Rng* rng) {
  ConditionSpec c;
  const double kind = rng->Uniform();
  if (kind < 0.35) {
    c.has_time = true;
    c.hour_lo = static_cast<int>(rng->Int(0, 20));
    c.hour_hi = c.hour_lo + static_cast<int>(rng->Int(1, 4));
    c.channel = Channel::kTime;
  } else if (kind < 0.6) {
    c.channel = Channel::kSecurity;
    c.device = DeviceType::kSecuritySystem;
    c.cmp = Comparator::kEquals;
    c.state = rng->Chance(0.5) ? "armed" : "disarmed";
  } else if (kind < 0.8) {
    c.channel = Channel::kTemperature;
    c.device = DeviceType::kTemperatureSensor;
    c.cmp = rng->Chance(0.5) ? Comparator::kAbove : Comparator::kBelow;
    c.lo = rng->Int(40, 90);
  } else {
    c.channel = Channel::kPresence;
    c.device = DeviceType::kPresenceSensor;
    c.cmp = Comparator::kEquals;
    c.state = rng->Chance(0.5) ? "present" : "away";
  }
  return c;
}

ActionSpec CorpusGenerator::RandomAction(Rng* rng) {
  std::vector<double> weights;
  for (const auto& a : Actuators()) weights.push_back(a.weight);
  const Actuator& act = Actuators()[rng->Weighted(weights)];
  ActionSpec a;
  a.device = act.device;
  a.command = rng->Pick(act.commands);
  if (a.command == Command::kSetLevel) {
    a.level = static_cast<double>(rng->Int(1, 10) * 10);
  }
  return a;
}

TriggerSpec CorpusGenerator::RandomWebTrigger(Rng* rng) {
  TriggerSpec t;
  static const std::vector<DeviceType> kWebSources = {
      DeviceType::kEmailService, DeviceType::kWeatherService,
      DeviceType::kCalendar, DeviceType::kSocialMedia};
  t.device = rng->Pick(kWebSources);
  t.channel = Channel::kDigital;
  t.cmp = Comparator::kAny;
  return t;
}

ActionSpec CorpusGenerator::RandomWebAction(Rng* rng) {
  static const std::vector<std::pair<DeviceType, Command>> kWebSinks = {
      {DeviceType::kEmailService, Command::kNotify},
      {DeviceType::kSocialMedia, Command::kNotify},
      {DeviceType::kSpreadsheet, Command::kSetLevel},
      {DeviceType::kPhone, Command::kNotify},
  };
  auto [dev, cmd] = rng->Pick(kWebSinks);
  ActionSpec a;
  a.device = dev;
  a.command = cmd;
  return a;
}

Rule CorpusGenerator::GenerateRule(Platform p) {
  return GenerateRuleImpl(p, next_id_++, &rng_, &phrasing_);
}

Rule CorpusGenerator::GenerateRuleImpl(Platform p, int id, Rng* rng,
                                       PhrasingEngine* phrasing) {
  Rule r;
  r.id = id;
  r.platform = p;
  // ~55% of rules are room-scoped; the rest apply anywhere.
  if (rng->Chance(0.55)) {
    r.location = static_cast<Location>(rng->Int(1, kNumLocations - 1));
  }

  // Real IFTTT corpora are dominated by non-IoT web applets (email,
  // weather, social feeds); other platforms have a smaller share.
  double web_p = 0.05;
  switch (p) {
    case Platform::kIFTTT: web_p = 0.45; break;
    case Platform::kGoogleAssistant: web_p = 0.25; break;
    case Platform::kAlexa: web_p = 0.15; break;
    case Platform::kHomeAssistant: web_p = 0.12; break;
    case Platform::kSmartThings: web_p = 0.05; break;
  }
  if (rng->Chance(web_p)) {
    const double mix = rng->Uniform();
    if (mix < 0.5) {  // web trigger -> web action
      r.trigger = RandomWebTrigger(rng);
      r.actions.push_back(RandomWebAction(rng));
    } else if (mix < 0.75) {  // web trigger -> device action
      r.trigger = RandomWebTrigger(rng);
      r.actions.push_back(RandomAction(rng));
    } else {  // device trigger -> web action
      r.trigger = RandomTrigger(rng);
      r.actions.push_back(RandomWebAction(rng));
    }
    phrasing->Render(&r);
    return r;
  }

  r.trigger = RandomTrigger(rng);
  // Alexa voice skills are mostly single-clause; others carry conditions.
  const double cond_p = (p == Platform::kAlexa) ? 0.08 : 0.3;
  if (rng->Chance(cond_p)) r.conditions.push_back(RandomCondition(rng));
  r.actions.push_back(RandomAction(rng));
  if (rng->Chance(p == Platform::kIFTTT ? 0.25 : 0.12)) {
    r.actions.push_back(RandomAction(rng));
  }
  phrasing->Render(&r);
  return r;
}

std::vector<Rule> CorpusGenerator::GeneratePlatform(Platform p, int n) {
  std::vector<Rule> out(static_cast<size_t>(n));
  const int base_id = next_id_;
  next_id_ += n;
  // Fixed-size shards with per-shard RNG and phrasing streams seeded from
  // the corpus seed, the platform, and the shard index: rule i is produced
  // by the same shard stream regardless of thread count, so the corpus is
  // bit-identical for any GLINT_THREADS.
  constexpr int kShardSize = 128;
  const int64_t num_shards = (n + kShardSize - 1) / kShardSize;
  ParallelFor(0, num_shards, 1, [&](int64_t s_lo, int64_t s_hi) {
    for (int64_t shard = s_lo; shard < s_hi; ++shard) {
      const int lo = static_cast<int>(shard) * kShardSize;
      const int hi = std::min(n, lo + kShardSize);
      const uint64_t shard_seed =
          config_.seed ^
          (static_cast<uint64_t>(p) * 0x100000001b3ULL) ^
          (static_cast<uint64_t>(shard) * 0x9e3779b97f4a7c15ULL);
      Rng rng(shard_seed);
      PhrasingEngine phrasing(shard_seed ^ 0xbeef);
      for (int i = lo; i < hi; ++i) {
        out[static_cast<size_t>(i)] =
            GenerateRuleImpl(p, base_id + i, &rng, &phrasing);
      }
    }
  });
  return out;
}

std::vector<Rule> CorpusGenerator::Generate() {
  std::vector<Rule> out;
  for (int pi = 0; pi < kNumPlatforms; ++pi) {
    Platform p = static_cast<Platform>(pi);
    auto batch = GeneratePlatform(p, config_.CountFor(p));
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Paper's concrete rule sets.
// ---------------------------------------------------------------------------

namespace {

Rule MakeRule(int id, Platform p, TriggerSpec t, std::vector<ConditionSpec> cs,
              std::vector<ActionSpec> as, const char* text) {
  Rule r;
  r.id = id;
  r.platform = p;
  r.trigger = t;
  r.conditions = std::move(cs);
  r.actions = std::move(as);
  r.text = text;
  return r;
}

TriggerSpec StateTrigger(DeviceType d, const char* state) {
  TriggerSpec t;
  t.device = d;
  t.channel = StateChannelOf(d);
  t.cmp = Comparator::kEquals;
  t.state = state;
  t.direction = +1;
  return t;
}

TriggerSpec NumTrigger(Channel ch, DeviceType d, Comparator cmp, double lo,
                       double hi = 0) {
  TriggerSpec t;
  t.channel = ch;
  t.device = d;
  t.cmp = cmp;
  t.lo = lo;
  t.hi = hi;
  t.direction = cmp == Comparator::kAbove ? +1 : -1;
  return t;
}

TriggerSpec TimeTrigger(int hour) {
  TriggerSpec t;
  t.channel = Channel::kTime;
  t.cmp = Comparator::kEquals;
  t.has_time = true;
  t.hour_lo = hour;
  t.hour_hi = hour;
  return t;
}

ActionSpec Act(DeviceType d, Command c, double level = 0) {
  return ActionSpec{d, c, level};
}

}  // namespace

std::vector<Rule> CorpusGenerator::Table1Rules() {
  using D = DeviceType;
  using C = Command;
  using P = Platform;
  std::vector<Rule> rules;
  rules.push_back(MakeRule(1, P::kSmartThings, StateTrigger(D::kTv, "playing"),
                           {}, {Act(D::kLight, C::kOff)},
                           "Turn off lights if playing movies."));
  {
    TriggerSpec t = NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                               Comparator::kBetween, 65, 80);
    ConditionSpec c;
    c.has_time = true;
    c.hour_lo = 6;
    c.hour_hi = 20;
    c.channel = Channel::kTime;
    rules.push_back(MakeRule(
        2, P::kSmartThings, t, {c}, {Act(D::kWindow, C::kOpen)},
        "If the outdoor temperature is between 65 degrees and 80 degrees, "
        "open windows after sun rise."));
  }
  rules.push_back(
      MakeRule(3, P::kSmartThings,
               NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                          Comparator::kBelow, 60),
               {}, {Act(D::kWindow, C::kClose)},
               "If outdoor temperature is below 60 degrees, then close "
               "windows."));
  rules.push_back(
      MakeRule(4, P::kSmartThings,
               NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                          Comparator::kAbove, 85),
               {}, {Act(D::kAc, C::kOn)},
               "Turn on the air conditioner when temperature is above 85 "
               "degrees."));
  rules.push_back(MakeRule(5, P::kIFTTT, StateTrigger(D::kAc, "on"), {},
                           {Act(D::kWindow, C::kClose)},
                           "If air conditioner is on, then close windows."));
  rules.push_back(
      MakeRule(6, P::kIFTTT, StateTrigger(D::kSmokeAlarm, "beeping"), {},
               {Act(D::kWindow, C::kOpen), Act(D::kLock, C::kUnlock)},
               "If the smoke alarm is beeping, then open the window and "
               "unlock the door."));
  rules.push_back(MakeRule(7, P::kIFTTT,
                           StateTrigger(D::kMotionSensor, "active"), {},
                           {Act(D::kLight, C::kOn)},
                           "If motion is detected, turn on lights."));
  rules.push_back(MakeRule(8, P::kIFTTT,
                           StateTrigger(D::kMotionSensor, "active"), {},
                           {Act(D::kDoor, C::kOpen)},
                           "If motion is detected, open the door."));
  rules.push_back(MakeRule(9, P::kAlexa, StateTrigger(D::kLight, "off"), {},
                           {Act(D::kLock, C::kLock)},
                           "Lock the door if all lights are turned off."));
  return rules;
}

std::vector<Rule> CorpusGenerator::Table4Settings() {
  using D = DeviceType;
  using C = Command;
  using P = Platform;
  std::vector<Rule> rules;

  // (1)+(2) Condition bypass.
  {
    TriggerSpec t = NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                               Comparator::kAbove, 70);
    ConditionSpec c;
    c.has_time = true;
    c.hour_lo = 11;
    c.hour_hi = 11;
    c.channel = Channel::kTime;
    rules.push_back(MakeRule(
        1, P::kSmartThings, t, {c}, {Act(D::kWindow, C::kOpen)},
        "If outside temperature is above 70 degrees and time is 11 am, then "
        "open windows."));
  }
  rules.push_back(
      MakeRule(2, P::kAlexa,
               NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                          Comparator::kAbove, 70),
               {}, {Act(D::kWindow, C::kOpen)},
               "If outside temperature is above 70 degrees, then open "
               "windows."));

  // (3)(4)(5) Condition block.
  {
    TriggerSpec t = StateTrigger(D::kMotionSensor, "active");
    ConditionSpec c;
    c.channel = Channel::kSecurity;
    c.device = D::kSecuritySystem;
    c.cmp = Comparator::kEquals;
    c.state = "armed";
    rules.push_back(MakeRule(
        3, P::kIFTTT, t, {c}, {Act(D::kPhone, C::kNotify)},
        "If motion is detected at the door and home is in armed state, then "
        "send a notification."));
  }
  rules.push_back(MakeRule(4, P::kIFTTT, StateTrigger(D::kLight, "on"), {},
                           {Act(D::kSecuritySystem, C::kDisarm)},
                           "When light is on, disarm home state."));
  rules.push_back(MakeRule(5, P::kSmartThings, TimeTrigger(19), {},
                           {Act(D::kLight, C::kOn)},
                           "Turn on the light at 7 pm."));

  // (6)(7) Action revert.
  rules.push_back(
      MakeRule(6, P::kAlexa,
               NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                          Comparator::kAbove, 100),
               {}, {Act(D::kAc, C::kOn)},
               "Turn on the air conditioner when temperature is above 100 "
               "degrees."));
  rules.push_back(
      MakeRule(7, P::kIFTTT,
               NumTrigger(Channel::kHumidity, D::kHumiditySensor,
                          Comparator::kBelow, 30),
               {}, {Act(D::kHumidifier, C::kOn), Act(D::kAc, C::kOff)},
               "When humidity is below 30 percent, turn on humidifier and "
               "turn off air conditioner."));

  // (8)(9) Action conflict.
  rules.push_back(MakeRule(
      8, P::kSmartThings, StateTrigger(D::kSmokeAlarm, "beeping"), {},
      {Act(D::kLock, C::kUnlock)}, "If smoke is detected, unlock the door."));
  rules.push_back(MakeRule(9, P::kAlexa, TimeTrigger(22), {},
                           {Act(D::kLock, C::kLock)},
                           "Lock the door at 10 pm every day."));

  // (10)(11) Action loop.
  rules.push_back(MakeRule(10, P::kIFTTT, StateTrigger(D::kLight, "on"), {},
                           {Act(D::kLight, C::kOff)},
                           "Turn off the living-room light when bedroom "
                           "light is on."));
  {
    TriggerSpec t = StateTrigger(D::kLight, "off");
    ConditionSpec c;
    c.channel = Channel::kPresence;
    c.device = D::kPresenceSensor;
    c.cmp = Comparator::kEquals;
    c.state = "away";
    rules.push_back(MakeRule(
        11, P::kIFTTT, t, {c}, {Act(D::kLight, C::kOn)},
        "If the living-room light is turned off and the homestate is away, "
        "then turn on bedroom light."));
  }

  // (12)(13) Goal conflict.
  rules.push_back(MakeRule(12, P::kAlexa, TimeTrigger(18), {},
                           {Act(D::kHeater, C::kOn)}, "Turn on a heater."));
  rules.push_back(
      MakeRule(13, P::kSmartThings,
               NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                          Comparator::kAbove, 80),
               {}, {Act(D::kWindow, C::kOpen)},
               "Open windows if indoor temperature is above 80 degrees."));
  return rules;
}

std::vector<std::vector<Rule>> CorpusGenerator::NewThreatBlueprints() {
  using D = DeviceType;
  using C = Command;
  using P = Platform;
  std::vector<std::vector<Rule>> groups;

  // Action block: a manual-mode pin makes another automation ineffective.
  {
    std::vector<Rule> g;
    TriggerSpec t;
    t.device = D::kLight;
    t.channel = Channel::kIlluminance;
    t.cmp = Comparator::kEquals;
    t.state = "manual";
    Rule r1 = MakeRule(1, P::kHomeAssistant, t, {},
                       {Act(D::kLight, C::kSetLevel, 100)},
                       "Blueprint: if the light is set in manual mode, keep "
                       "the light level to 100 percent.");
    r1.manual_mode_pin = true;
    g.push_back(r1);
    g.push_back(MakeRule(2, P::kHomeAssistant, StateTrigger(D::kTv, "on"), {},
                         {Act(D::kLight, C::kDim)},
                         "Blueprint: when the tv is on, dim the lights."));
    groups.push_back(g);
  }

  // Action ablation: AC state reverted over time via the humidity channel.
  {
    std::vector<Rule> g;
    g.push_back(
        MakeRule(1, P::kHomeAssistant,
                 NumTrigger(Channel::kTemperature, D::kTemperatureSensor,
                            Comparator::kAbove, 95),
                 {}, {Act(D::kAc, C::kOn)},
                 "Blueprint: when the temperature is above 95 degrees, turn "
                 "on the ac."));
    g.push_back(
        MakeRule(2, P::kHomeAssistant,
                 NumTrigger(Channel::kHumidity, D::kHumiditySensor,
                            Comparator::kBelow, 30),
                 {}, {Act(D::kHumidifier, C::kOn), Act(D::kAc, C::kOff)},
                 "Blueprint: when the humidity is below 30 percent, turn on "
                 "the humidifier and turn off the ac."));
    groups.push_back(g);
  }

  // Trigger intake: the vacuum spuriously fires the motion-snapshot rule.
  {
    std::vector<Rule> g;
    g.push_back(MakeRule(
        1, P::kHomeAssistant, StateTrigger(D::kMotionSensor, "active"), {},
        {Act(D::kCamera, C::kSnapshot), Act(D::kPhone, C::kNotify)},
        "Blueprint: when motion is detected at the door, capture a snapshot "
        "with the camera and notify my phone."));
    g.push_back(MakeRule(2, P::kHomeAssistant, TimeTrigger(21), {},
                         {Act(D::kVacuum, C::kStartClean)},
                         "Blueprint: at 9 pm, run the vacuum cleaner."));
    groups.push_back(g);
  }

  // Condition duplicate: played music fakes the occupancy condition.
  {
    std::vector<Rule> g;
    TriggerSpec occ;
    occ.device = D::kSpeaker;
    occ.channel = Channel::kSound;
    occ.cmp = Comparator::kEquals;
    occ.state = "playing";
    g.push_back(MakeRule(
        1, P::kHomeAssistant, occ, {},
        {Act(D::kPhone, C::kNotify)},
        "Blueprint: report the room is occupied when motion is detected or "
        "the door is shut or media is playing on devices in the room."));
    {
      TriggerSpec t = TimeTrigger(15);
      ConditionSpec c;
      c.has_time = true;
      c.hour_lo = 15;
      c.hour_hi = 16;
      c.channel = Channel::kTime;
      g.push_back(MakeRule(2, P::kIFTTT, t, {c},
                           {Act(D::kSpeaker, C::kPlay)},
                           "If the time is 3 pm, then play music in the room "
                           "from 3 pm to 4 pm."));
    }
    {
      TriggerSpec t;
      t.device = D::kPresenceSensor;
      t.channel = Channel::kOccupancy;
      t.cmp = Comparator::kEquals;
      t.state = "occupied";
      ConditionSpec c;
      c.channel = Channel::kTemperature;
      c.device = D::kTemperatureSensor;
      c.cmp = Comparator::kBelow;
      c.lo = 60;
      g.push_back(MakeRule(3, P::kHomeAssistant, t, {c},
                           {Act(D::kHeater, C::kOn)},
                           "Blueprint: start the heating when the room is "
                           "occupied and the temperature is below 60 "
                           "degrees."));
    }
    groups.push_back(g);
  }
  return groups;
}

}  // namespace glint::rules
