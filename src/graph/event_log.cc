#include "graph/event_log.h"

#include <cmath>

#include "util/string_utils.h"

namespace glint::graph {

void EventLog::Append(Event e) {
  // Keep chronological order (append is nearly always in order already).
  if (!events_.empty() && e.time_hours < events_.back().time_hours) {
    auto it = events_.end();
    while (it != events_.begin() && (it - 1)->time_hours > e.time_hours) --it;
    events_.insert(it, std::move(e));
    return;
  }
  events_.push_back(std::move(e));
}

std::vector<Event> EventLog::Window(double t, double window_hours) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.time_hours <= t && e.time_hours >= t - window_hours) {
      out.push_back(e);
    }
  }
  return out;
}

std::string EventLog::StateAt(rules::DeviceType device, rules::Location loc,
                              double t) const {
  std::string state;
  for (const auto& e : events_) {
    if (e.time_hours > t) break;
    if (e.device == device &&
        (loc == rules::Location::kAny || e.location == rules::Location::kAny ||
         e.location == loc)) {
      state = e.state;
    }
  }
  return state;
}

std::vector<std::string> EventLog::Render() const {
  std::vector<std::string> out;
  for (const auto& e : events_) {
    const int day = static_cast<int>(e.time_hours / 24);
    int total_seconds =
        static_cast<int>(std::round((e.time_hours - day * 24) * 3600));
    total_seconds = std::min(total_seconds, 24 * 3600 - 1);
    const int hh = total_seconds / 3600;
    const int mm = (total_seconds / 60) % 60;
    const int ss = total_seconds % 60;
    out.push_back(StrFormat("2022-05-%02d %02d:%02d:%02d  %s is %s (%s)",
                            8 + day, hh, mm, ss,
                            rules::DeviceWord(e.device), e.state.c_str(),
                            rules::PlatformName(e.platform)));
  }
  return out;
}

bool EventFiresTrigger(const Event& e, const rules::Rule& r) {
  const auto& t = r.trigger;
  if (!rules::SameScope(e.location, r.location, t.channel)) return false;

  // Time-of-day trigger: the event's hour falls in the trigger window.
  if (t.has_time && t.channel == rules::Channel::kTime) {
    const double hour = std::fmod(e.time_hours, 24.0);
    return hour >= t.hour_lo && hour <= t.hour_hi + 1;
  }

  // Device-state trigger: same device class and matching state keyword.
  if (e.device == t.device || rules::StateChannelOf(e.device) == t.channel ||
      rules::SensedChannelOf(e.device) == t.channel) {
    if (t.state.empty()) return true;
    return e.state == t.state;
  }
  return false;
}

void WriteEvent(util::ByteWriter* w, const Event& e) {
  w->F64(e.time_hours);
  w->I32(static_cast<int32_t>(e.device));
  w->I32(static_cast<int32_t>(e.location));
  w->Str(e.state);
  w->I32(static_cast<int32_t>(e.platform));
  w->I32(e.source_rule_id);
}

bool ReadEvent(util::ByteReader* r, Event* e) {
  int32_t device, location, platform;
  if (!r->F64(&e->time_hours) || !r->I32(&device) || !r->I32(&location) ||
      !r->Str(&e->state) || !r->I32(&platform) ||
      !r->I32(&e->source_rule_id)) {
    return false;
  }
  e->device = static_cast<rules::DeviceType>(device);
  e->location = static_cast<rules::Location>(location);
  e->platform = static_cast<rules::Platform>(platform);
  return true;
}

}  // namespace glint::graph
