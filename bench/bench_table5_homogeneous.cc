// Regenerates Table 5: homogeneous graph classification on the IFTTT and
// SmartThings datasets with GCN, GXN, GIN, InfoGraph, SVC, KNN, ITGNN-C and
// ITGNN-S. Protocol follows Sec. 4.4: trials with 8:2 splits, minority
// oversampling, balanced class weights, weighted metrics.

#include <cstdio>
#include <ctime>

#include "bench_common.h"
#include "ml/knn.h"
#include "ml/linear_svc.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT
using gnn::GnnGraph;

namespace {

// Mean node-feature vector of a graph (the paper's input for SVC/KNN).
ml::Dataset FlattenGraphs(const std::vector<GnnGraph>& graphs) {
  ml::Dataset ds;
  for (const auto& g : graphs) {
    // Use the (single) type block's column means.
    const gnn::Matrix* feats = nullptr;
    for (int t = 0; t < gnn::kNumNodeTypes; ++t) {
      if (g.typed_features[t].rows > 0) feats = &g.typed_features[t];
    }
    FloatVec mean(static_cast<size_t>(feats->cols), 0.f);
    for (int i = 0; i < feats->rows; ++i) {
      for (int j = 0; j < feats->cols; ++j) {
        mean[static_cast<size_t>(j)] += feats->At(i, j);
      }
    }
    for (auto& v : mean) v /= static_cast<float>(feats->rows);
    ds.Add(std::move(mean), g.label);
  }
  return ds;
}

// Nearest-centroid classification in a contrastive latent space (how the
// ITGNN-C row of Table 5 classifies).
ml::Metrics EvalContrastive(gnn::GraphModel* model,
                            const std::vector<GnnGraph>& train,
                            const std::vector<GnnGraph>& test) {
  std::vector<FloatVec> centroid(2);
  std::vector<int> count(2, 0);
  for (const auto& g : train) {
    FloatVec z = gnn::Trainer::Embed(model, g);
    if (centroid[static_cast<size_t>(g.label)].empty()) {
      centroid[static_cast<size_t>(g.label)].assign(z.size(), 0.f);
    }
    AddInPlace(&centroid[static_cast<size_t>(g.label)], z);
    count[static_cast<size_t>(g.label)] += 1;
  }
  for (int c = 0; c < 2; ++c) {
    if (count[c] > 0) {
      ScaleInPlace(&centroid[static_cast<size_t>(c)],
                   1.f / static_cast<float>(count[c]));
    }
  }
  std::vector<int> y_true, y_pred;
  for (const auto& g : test) {
    FloatVec z = gnn::Trainer::Embed(model, g);
    const double d0 = EuclideanDistance(z, centroid[0]);
    const double d1 = EuclideanDistance(z, centroid[1]);
    y_true.push_back(g.label);
    y_pred.push_back(d1 < d0 ? 1 : 0);
  }
  return ml::WeightedMetrics(y_true, y_pred, 2);
}

struct PaperRow {
  const char* model;
  double acc, prec, rec, f1;
};

void RunDataset(const char* name, const std::vector<GnnGraph>& graphs,
                int trials, int epochs, const std::vector<PaperRow>& paper) {
  std::printf("\n--- %s dataset: %zu graphs ---\n", name, graphs.size());
  const char* models[] = {"GCN", "GXN", "GIN", "IFG", "SVC", "KNN",
                          "ITGNN-C", "ITGNN-S"};
  TablePrinter t({"model", "accuracy", "precision", "recall", "F1",
                  "paper acc", "paper F1"});
  for (const char* model_name : models) {
    ml::Metrics sum;
    const std::clock_t t0 = std::clock();
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(1000 + static_cast<uint64_t>(trial));
      std::vector<GnnGraph> train, test;
      gnn::SplitGraphs(graphs, 0.8, &rng, &train, &test);
      ml::Metrics m;
      const std::string nm(model_name);
      if (nm == "SVC" || nm == "KNN") {
        ml::Dataset train_flat = FlattenGraphs(train);
        ml::Dataset test_flat = FlattenGraphs(test);
        std::unique_ptr<ml::Classifier> clf;
        if (nm == "SVC") {
          clf = std::make_unique<ml::LinearSvc>();
        } else {
          clf = std::make_unique<ml::Knn>();
        }
        clf->Fit(train_flat, ml::BalancedClassWeights(train_flat.y, 2));
        m = ml::WeightedMetrics(test_flat.y, clf->PredictBatch(test_flat.x),
                                2);
      } else {
        auto model = MakeHomoModel(nm, 300, 42 + static_cast<uint64_t>(trial));
        gnn::TrainConfig tc;
        tc.epochs = epochs;
        tc.seed = 2024 + static_cast<uint64_t>(trial);
        gnn::Trainer trainer(tc);
        if (nm == "ITGNN-C") {
          trainer.TrainContrastive(model.get(), train);
          m = EvalContrastive(model.get(), train, test);
        } else {
          trainer.TrainSupervised(model.get(), train);
          m = gnn::Trainer::Evaluate(model.get(), test);
        }
      }
      sum.accuracy += m.accuracy;
      sum.precision += m.precision;
      sum.recall += m.recall;
      sum.f1 += m.f1;
    }
    const double inv = 1.0 / trials;
    const PaperRow* pr = nullptr;
    for (const auto& row : paper) {
      if (std::string(row.model) == model_name) pr = &row;
    }
    t.AddRow({model_name, StrFormat("%.1f", 100 * sum.accuracy * inv),
              StrFormat("%.1f", 100 * sum.precision * inv),
              StrFormat("%.1f", 100 * sum.recall * inv),
              StrFormat("%.1f", 100 * sum.f1 * inv),
              pr ? StrFormat("%.1f", pr->acc) : "-",
              pr ? StrFormat("%.1f", pr->f1) : "-"});
    std::printf("  %s done (%.0fs)\n", model_name,
                static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
  }
  t.Print();
}

}  // namespace

int main() {
  Banner("Table 5: homogeneous graph classification", "Table 5");
  auto corpus = DefaultCorpus();
  auto ifttt_rules = PlatformRules(corpus, rules::Platform::kIFTTT);
  auto st_rules = PlatformRules(corpus, rules::Platform::kSmartThings);

  // IFTTT: 1:5 scale of the paper's 6,000 labeled graphs.
  auto ifttt = gnn::ToGnnGraphs(BuildGraphs(ifttt_rules, 1200, 51));
  // SmartThings: full paper size (165 graphs — the scarce-data regime).
  auto smartthings = gnn::ToGnnGraphs(BuildGraphs(st_rules, 165, 52, 20));

  const std::vector<PaperRow> paper_ifttt = {
      {"GCN", 89.5, 100, 89.5, 94.5}, {"GXN", 78.7, 79.0, 76.4, 76.3},
      {"GIN", 95, 94.7, 94, 94.4},    {"IFG", 69.8, 75.5, 70.2, 67.4},
      {"SVC", 84.1, 84.1, 84, 83.9},  {"KNN", 89.5, 90.9, 89.5, 89.6},
      {"ITGNN-C", 95.4, 95.3, 94.9, 95},
      {"ITGNN-S", 95.7, 95.9, 95.7, 95.8},
  };
  const std::vector<PaperRow> paper_st = {
      {"GCN", 90.9, 82.6, 90.9, 86.6}, {"GXN", 88.2, 89.9, 88.2, 87.2},
      {"GIN", 89.7, 85.9, 89.5, 87.7}, {"IFG", 86.1, 89.3, 87.5, 85.9},
      {"SVC", 84.4, 87.3, 84.8, 81.3}, {"KNN", 84.8, 83.8, 84.8, 83.2},
      {"ITGNN-C", 76.5, 69, 70.6, 69.5},
      {"ITGNN-S", 88.2, 89.9, 88.2, 87.2},
  };

  RunDataset("IFTTT", ifttt, /*trials=*/2, /*epochs=*/12, paper_ifttt);
  RunDataset("SmartThings", smartthings, /*trials=*/5, /*epochs=*/14,
             paper_st);

  std::printf(
      "\npaper shape to check: (i) graph models beat flattened SVC/KNN on\n"
      "IFTTT; (ii) ITGNN-S is best-or-near-best on IFTTT; (iii) ITGNN-C\n"
      "degrades on tiny SmartThings (contrastive learning is data hungry).\n");
  return 0;
}
