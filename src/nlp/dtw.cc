#include "nlp/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace glint::nlp {

double DtwDistance(const std::vector<std::vector<double>>& cost,
                   double gap_cost) {
  const size_t n = cost.size();
  const size_t m = n > 0 ? cost[0].size() : 0;
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return gap_cost * static_cast<double>(n + m);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> d(n + 1, std::vector<double>(m + 1, kInf));
  d[0][0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      double best = std::min({d[i - 1][j], d[i][j - 1], d[i - 1][j - 1]});
      d[i][j] = cost[i - 1][j - 1] + best;
    }
  }
  return d[n][m];
}

double DtwDistance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    return static_cast<double>(a.size() + b.size());  // gap cost 1 each
  }
  std::vector<std::vector<double>> cost(a.size(),
                                        std::vector<double>(b.size()));
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) cost[i][j] = std::fabs(a[i] - b[j]);
  }
  return DtwDistance(cost);
}

double DtwWordDistance(const std::vector<std::string>& a,
                       const std::vector<std::string>& b,
                       const EmbeddingModel& model) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  std::vector<std::vector<double>> cost(a.size(),
                                        std::vector<double>(b.size()));
  for (size_t i = 0; i < a.size(); ++i) {
    const FloatVec& va = model.WordVector(a[i]);
    for (size_t j = 0; j < b.size(); ++j) {
      const FloatVec& vb = model.WordVector(b[j]);
      cost[i][j] = 1.0 - CosineSimilarity(va, vb);
    }
  }
  // Normalise by the longest path length to keep the value in ~[0, 2].
  double path_len = static_cast<double>(std::max(a.size(), b.size()));
  return DtwDistance(cost) / path_len;
}

}  // namespace glint::nlp
