#include <gtest/gtest.h>

#include "nlp/dtw.h"

namespace glint::nlp {
namespace {

TEST(Dtw, IdenticalSequencesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(DtwDistance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Dtw, SymmetricScalar) {
  const std::vector<double> a{1, 3, 5}, b{2, 4};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
}

TEST(Dtw, EmptyCases) {
  const std::vector<double> none;
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_DOUBLE_EQ(DtwDistance(none, none), 0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(two, none), 2.0);  // gap cost 1 each
  EXPECT_DOUBLE_EQ(DtwDistance(none, one), 1.0);
}

TEST(Dtw, KnownSmallExample) {
  // a = [0, 1], b = [0, 1, 1]: the warping path aligns the trailing 1s at
  // zero cost; total distance 0.
  EXPECT_DOUBLE_EQ(DtwDistance({0, 1}, {0, 1, 1}), 0.0);
}

TEST(Dtw, MonotoneUnderNoise) {
  // Small perturbations cost less than large ones.
  const std::vector<double> base{1, 2, 3, 4};
  EXPECT_LT(DtwDistance(base, {1.1, 2.1, 3.1, 4.1}),
            DtwDistance(base, {5, 6, 7, 8}));
}

TEST(Dtw, StretchedSequenceIsCheap) {
  // DTW's raison d'être: time-stretched versions align cheaply.
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> stretched{1, 1, 2, 2, 3, 3};
  EXPECT_DOUBLE_EQ(DtwDistance(a, stretched), 0.0);
}

TEST(Dtw, Triangleish) {
  // Not a true metric, but distance to self is minimal among candidates.
  const std::vector<double> a{1, 2, 3};
  EXPECT_LE(DtwDistance(a, a), DtwDistance(a, {2, 3, 4}));
}

TEST(DtwWord, IdenticalWordsZero) {
  EmbeddingModel m(300, 17);
  EXPECT_NEAR(DtwWordDistance({"open", "window"}, {"open", "window"}, m),
              0.0, 1e-6);
}

TEST(DtwWord, SynonymsCheaperThanUnrelated) {
  EmbeddingModel m(300, 17);
  const double syn = DtwWordDistance({"turn_on"}, {"activate"}, m);
  const double unrel = DtwWordDistance({"turn_on"}, {"window"}, m);
  EXPECT_LT(syn, unrel);
}

TEST(DtwWord, EmptyVsNonEmpty) {
  EmbeddingModel m(300, 17);
  EXPECT_DOUBLE_EQ(DtwWordDistance({}, {"open"}, m), 1.0);
  EXPECT_DOUBLE_EQ(DtwWordDistance({}, {}, m), 0.0);
}

TEST(DtwWord, NormalizedByLength) {
  EmbeddingModel m(300, 17);
  // Repeating the same word keeps the normalized distance ~0.
  EXPECT_NEAR(DtwWordDistance({"open"}, {"open", "open", "open"}, m), 0.0,
              1e-6);
}

TEST(DtwWord, VariableLengthComparison) {
  // The Algorithm-1 use case: verb lists of different lengths.
  EmbeddingModel m(300, 17);
  const double d = DtwWordDistance({"open", "unlock"}, {"open"}, m);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);  // partially matching
}

}  // namespace
}  // namespace glint::nlp
