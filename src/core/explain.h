#pragma once

#include <vector>

#include "gnn/models.h"
#include "graph/interaction_graph.h"

namespace glint::core {

/// Occlusion-based GNN explanation (the PGExplainer/SubgraphX stand-in used
/// to highlight culprit rules in warnings, Sec. 3.1): each node's
/// importance is the drop in the threat logit-margin when the node's
/// features are zeroed out. Scores are normalized to [0, 1].
std::vector<double> ExplainNodes(gnn::GraphModel* model,
                                 const gnn::GnnGraph& g);

/// Indices of the top-k most important nodes.
std::vector<int> TopCulprits(const std::vector<double>& importance, int k);

}  // namespace glint::core
