#include "core/detector.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "core/explain.h"
#include "gnn/model_io.h"
#include "graph/threat_analyzer.h"
#include "obs/obs.h"

namespace glint::core {

TrainedDetector::TrainedDetector(Options options)
    : options_(std::move(options)),
      word_model_(300, options_.seed ^ 0x17),
      sentence_model_(512, options_.seed ^ 0x18) {
  builder_ = std::make_unique<graph::GraphBuilder>(options_.builder,
                                                   &word_model_,
                                                   &sentence_model_);
}

void TrainedDetector::TrainOffline() {
  // 1. Corpus (the crawl substitute).
  rules::CorpusGenerator gen(options_.corpus);
  corpus_rules_ = gen.Generate();

  // 2. Rule correlation discovery (Sec. 3.2.1).
  discovery_ =
      std::make_unique<correlation::CorrelationDiscovery>(&word_model_);
  ml::Dataset pairs = correlation::BuildPairDataset(
      corpus_rules_, discovery_->extractor(), options_.pairs);
  discovery_->Train(pairs);

  // 3. Interaction graph dataset, labeled by the analyzer (Sec. 3.2.2).
  graph::GraphDataset ds =
      builder_->BuildDataset(corpus_rules_, options_.num_training_graphs);
  train_graphs_ = gnn::ToGnnGraphs(ds);

  // 4. ITGNN-S (classification) and ITGNN-C (contrastive) training.
  gnn::ItgnnModel::Config s_cfg = options_.model;
  classifier_ = std::make_unique<gnn::ItgnnModel>(s_cfg);
  gnn::Trainer trainer(options_.train);
  trainer.TrainSupervised(classifier_.get(), train_graphs_);

  gnn::ItgnnModel::Config c_cfg = options_.model;
  c_cfg.seed ^= 0xc0;
  contrastive_ = std::make_unique<gnn::ItgnnModel>(c_cfg);
  trainer.TrainContrastive(contrastive_.get(), train_graphs_);

  // 5. Drift detector over the contrastive latent space (Alg. 3).
  drift_ = gnn::DriftDetector({options_.t_mad});
  drift_.FitFromModel(contrastive_.get(), train_graphs_);

  ready_ = true;
}

bool TrainedDetector::Correlated(const rules::Rule& src,
                                 const rules::Rule& dst) const {
  if (options_.use_learned_correlation && discovery_ != nullptr &&
      discovery_->trained()) {
    return discovery_->Correlated(src, dst, &corr_cache_);
  }
  return rules::RuleTriggersRule(src, dst);
}

graph::Node TrainedDetector::MakeNode(const rules::Rule& rule) const {
  return builder_->MakeNode(rule);
}

ThreatWarning TrainedDetector::Analyze(const gnn::GnnGraph& gg,
                                       const graph::InteractionGraph& g) const {
  GLINT_CHECK(ready_);
  GLINT_OBS_SPAN(analyze_span, "glint.detector.analyze_ms");
  ThreatWarning warning;

  // Drift check first (Fig. 2 step 5): unfamiliar patterns go to the user
  // rather than the classifier.
  {
    GLINT_OBS_SPAN(span, "glint.drift.check_ms");
    FloatVec z = gnn::Trainer::Embed(contrastive_.get(), gg);
    warning.drifting = drift_.IsDrifting(z);
  }
  if (warning.drifting) GLINT_OBS_COUNT("glint.drift.flagged", 1);

  // Pooled tape: a warm serving session replays classification into the
  // same arena every Inspect, so the steady state allocates nothing. The
  // explainer below acquires its own lease; stack discipline keeps the
  // nesting safe.
  gnn::ScopedTape tape;
  tape->set_freeze_leaves(true);  // inference only: skip grad bookkeeping
  auto r = classifier_->Forward(tape.get(), gg);
  double p[2];
  gnn::SoftmaxRowInto(r.logits, p);
  warning.confidence = p[1];
  warning.threat = p[1] > 0.5;

  if (warning.threat) {
    GLINT_OBS_COUNT("glint.detector.threats", 1);
    // Explanation: top culprit rules, PGExplainer-style (Sec. 3.1).
    auto importance = ExplainNodes(classifier_.get(), gg);
    for (int v : TopCulprits(importance, 3)) {
      const auto& node = g.nodes()[static_cast<size_t>(v)];
      warning.culprits.push_back(
          {v, rules::PlatformName(node.rule.platform), node.rule.text,
           importance[static_cast<size_t>(v)]});
    }
    // Report the analyzer's threat taxonomy when available (it is attached
    // to graphs built by our own builder).
    warning.types = g.threat_types();
  }
  return warning;
}

ThreatWarning TrainedDetector::AnalyzeGraph(
    const graph::InteractionGraph& g) const {
  return Analyze(gnn::ToGnnGraph(g), g);
}

std::vector<ThreatWarning> TrainedDetector::AnalyzeBatch(
    const std::vector<const gnn::GnnGraph*>& ggs,
    const std::vector<const graph::InteractionGraph*>& gs) const {
  GLINT_CHECK(ready_);
  GLINT_CHECK(ggs.size() == gs.size());
  std::vector<ThreatWarning> out(ggs.size());
  if (ggs.empty()) return out;
  GLINT_OBS_SPAN(analyze_span, "glint.detector.analyze_batch_ms");
  const gnn::GnnBatch batch = gnn::MakeGnnBatch(ggs);
  const int B = batch.size();

  // Drift check over the contrastive latent space: one batched forward,
  // then per-graph MAD tests on the embedding rows (each row bit-matches
  // Trainer::Embed on that graph).
  {
    GLINT_OBS_SPAN(span, "glint.drift.check_ms");
    gnn::ScopedTape tape;
    tape->set_freeze_leaves(true);
    auto rc = contrastive_->ForwardBatched(tape.get(), batch);
    const int dim = rc.embeddings->cols();
    for (int b = 0; b < B; ++b) {
      const float* row =
          rc.embeddings->value.data.data() + static_cast<size_t>(b) * dim;
      FloatVec z(row, row + dim);
      out[static_cast<size_t>(b)].drifting = drift_.IsDrifting(z);
      if (out[static_cast<size_t>(b)].drifting) {
        GLINT_OBS_COUNT("glint.drift.flagged", 1);
      }
    }
  }

  // One batched classification forward; per-row softmax uses the exact
  // sequential row normalization.
  gnn::ScopedTape tape;
  tape->set_freeze_leaves(true);
  auto r = classifier_->ForwardBatched(tape.get(), batch);
  for (int b = 0; b < B; ++b) {
    ThreatWarning& warning = out[static_cast<size_t>(b)];
    double p[2];
    gnn::SoftmaxRowInto(
        r.logits->value.data.data() + static_cast<size_t>(b) * 2, 2, p);
    warning.confidence = p[1];
    warning.threat = p[1] > 0.5;
    if (!warning.threat) continue;
    GLINT_OBS_COUNT("glint.detector.threats", 1);
    // Explanation stays per-graph: the saliency screen needs per-graph
    // input gradients, and threats are the rare case.
    auto importance = ExplainNodes(classifier_.get(), *ggs[static_cast<size_t>(b)]);
    for (int v : TopCulprits(importance, 3)) {
      const auto& node = gs[static_cast<size_t>(b)]->nodes()[static_cast<size_t>(v)];
      warning.culprits.push_back(
          {v, rules::PlatformName(node.rule.platform), node.rule.text,
           importance[static_cast<size_t>(v)]});
    }
    warning.types = gs[static_cast<size_t>(b)]->threat_types();
  }
  return out;
}

void TrainedDetector::FineTune(
    const std::vector<graph::InteractionGraph>& feedback,
    const std::vector<bool>& is_threat) {
  GLINT_CHECK(ready_);
  GLINT_CHECK(feedback.size() == is_threat.size());
  std::vector<gnn::GnnGraph> extra = train_graphs_;
  for (size_t i = 0; i < feedback.size(); ++i) {
    gnn::GnnGraph g = gnn::ToGnnGraph(feedback[i]);
    g.label = is_threat[i] ? 1 : 0;
    // User-confirmed cases are weighted by replication so a handful of
    // feedback graphs can move the decision against hundreds of training
    // graphs.
    const int copies = std::max<int>(
        12, static_cast<int>(train_graphs_.size() / 40));
    for (int k = 0; k < copies; ++k) extra.push_back(g);
  }
  gnn::TransferConfig tc;
  tc.freeze_groups = -1;  // adapt only the head to the user's preferences
  tc.fine_tune = options_.train;
  tc.fine_tune.epochs = std::max(3, options_.train.epochs / 3);
  gnn::TransferFineTune(classifier_.get(), extra, tc);
}

Status TrainedDetector::SaveModels(const std::string& dir) const {
  GLINT_CHECK(ready_);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create model dir " + dir + ": " +
                           std::strerror(errno));
  }
  GLINT_RETURN_IF_ERROR(
      gnn::SaveModel(classifier_.get(), dir + "/itgnn_s.bin"));
  GLINT_RETURN_IF_ERROR(
      gnn::SaveModel(contrastive_.get(), dir + "/itgnn_c.bin"));
  // Drift statistics are fitted at training time, not derivable from the
  // weights alone; without them a loaded detector would abort at its first
  // drift check.
  GLINT_RETURN_IF_ERROR(gnn::SaveDriftStats(drift_, dir + "/drift.bin"));
  return Status::OK();
}

Status TrainedDetector::LoadModels(const std::string& dir) {
  if (classifier_ == nullptr) {
    classifier_ = std::make_unique<gnn::ItgnnModel>(options_.model);
  }
  if (contrastive_ == nullptr) {
    gnn::ItgnnModel::Config c_cfg = options_.model;
    c_cfg.seed ^= 0xc0;
    contrastive_ = std::make_unique<gnn::ItgnnModel>(c_cfg);
  }
  GLINT_RETURN_IF_ERROR(
      gnn::LoadModel(classifier_.get(), dir + "/itgnn_s.bin"));
  GLINT_RETURN_IF_ERROR(
      gnn::LoadModel(contrastive_.get(), dir + "/itgnn_c.bin"));
  drift_ = gnn::DriftDetector({options_.t_mad});
  GLINT_RETURN_IF_ERROR(gnn::LoadDriftStats(&drift_, dir + "/drift.bin"));
  ready_ = true;
  return Status::OK();
}

}  // namespace glint::core
