// Regenerates Table 2: the number of rules per platform. The paper crawled
// the five platforms; we generate a synthetic corpus with the same
// proportions at a 1:100 scale for the large platforms (DESIGN.md).

#include <cstdio>
#include <ctime>

#include "bench_common.h"
#include "nlp/dep_parser.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT

int main() {
  Banner("Table 2: number of rules from 5 platforms", "Table 2");

  const int paper_counts[] = {316928, 185, 5506, 5292, 574};
  rules::CorpusConfig cc;

  const std::clock_t t0 = std::clock();
  rules::CorpusGenerator gen(cc);
  auto corpus = gen.Generate();
  const double gen_seconds =
      static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC;

  int counts[rules::kNumPlatforms] = {0};
  int web_rules = 0;
  for (const auto& r : corpus) {
    counts[static_cast<int>(r.platform)] += 1;
    web_rules += r.trigger.channel == rules::Channel::kDigital ? 1 : 0;
  }

  TablePrinter t({"platform", "paper (crawled)", "ours (synthetic)", "scale"});
  for (int p = 0; p < rules::kNumPlatforms; ++p) {
    t.AddRow({rules::PlatformName(static_cast<rules::Platform>(p)),
              StrFormat("%d", paper_counts[p]), StrFormat("%d", counts[p]),
              StrFormat("1:%.0f",
                        static_cast<double>(paper_counts[p]) /
                            std::max(1, counts[p]))});
  }
  t.Print();
  std::printf("total rules: %zu (%.0f rules/s generation throughput)\n",
              corpus.size(), static_cast<double>(corpus.size()) /
                                 std::max(1e-9, gen_seconds));
  std::printf("non-IoT web-service rules: %d (%.1f%% — IFTTT-style mix)\n",
              web_rules, 100.0 * web_rules / static_cast<double>(corpus.size()));

  // Sanity of the NLP pipeline over the whole corpus: every rule parses
  // into at least one clause with a verb.
  int parsed_ok = 0;
  for (const auto& r : corpus) {
    auto parsed = nlp::DepParser::Parse(r.text);
    bool has_verb = false;
    for (const auto& c : parsed.clauses) has_verb |= !c.verbs.empty();
    parsed_ok += has_verb ? 1 : 0;
  }
  std::printf("NLP pipeline recovers a verb clause in %d/%zu rules (%.1f%%)\n",
              parsed_ok, corpus.size(),
              100.0 * parsed_ok / static_cast<double>(corpus.size()));

  std::printf("\nsample rules:\n");
  for (int p = 0; p < rules::kNumPlatforms; ++p) {
    for (const auto& r : corpus) {
      if (r.platform == static_cast<rules::Platform>(p)) {
        std::printf("  [%s] %s\n", rules::PlatformName(r.platform),
                    r.text.c_str());
        break;
      }
    }
  }
  return 0;
}
