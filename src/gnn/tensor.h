#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"
#include "util/status.h"

namespace glint::gnn {

/// Dense row-major float matrix — the numeric workhorse of the GNN stack.
/// Storage is 64-byte aligned so the SIMD kernel backends (gnn/kernels.h)
/// always see cache-line-aligned base pointers.
struct Matrix {
  using Storage = std::vector<float, util::AlignedAllocator<float, 64>>;

  int rows = 0;
  int cols = 0;
  Storage data;

  Matrix() = default;
  Matrix(int r, int c, float fill = 0.f)
      : rows(r), cols(c), data(static_cast<size_t>(r) * c, fill) {
    // Debug guard for the kernel-backend contract: base pointers handed to
    // the SIMD tables are 64-byte aligned (AlignedAllocator's job).
    assert((reinterpret_cast<uintptr_t>(data.data()) & 63u) == 0);
  }

  float& At(int r, int c) { return data[static_cast<size_t>(r) * cols + c]; }
  float At(int r, int c) const {
    return data[static_cast<size_t>(r) * cols + c];
  }
  size_t size() const { return data.size(); }

  /// Fills with He-scaled Gaussian noise (fan_in based).
  static Matrix HeInit(int r, int c, Rng* rng);
};

/// Sparse matrix in coordinate form (used for normalized adjacencies), with
/// a build-once CSR mirror for fast row-wise multiplies and a build-once
/// dense mirror for models that consume the adjacency densely.
///
/// Usage contract: entries are appended during construction, then the
/// matrix is read-only. Construction sites that feed hot SpMM paths call
/// BuildCsrCache() once at the end; SpMM builds (and caches) the CSR form
/// on demand otherwise. Copies share the immutable caches.
struct SparseMatrix {
  int rows = 0;
  int cols = 0;
  struct Entry {
    int r, c;
    float v;
  };
  std::vector<Entry> entries;

  /// CSR mirror: entries grouped by row (insertion order kept within a
  /// row), rows+1 offsets in row_ptr.
  struct Csr {
    std::vector<int> row_ptr;
    std::vector<int> col_idx;
    std::vector<float> vals;
  };

  SparseMatrix() = default;
  SparseMatrix(const SparseMatrix& o)
      : rows(o.rows),
        cols(o.cols),
        entries(o.entries),
        csr_(o.csr_.load()),
        dense_(o.dense_.load()) {}
  SparseMatrix& operator=(const SparseMatrix& o) {
    if (this == &o) return *this;
    rows = o.rows;
    cols = o.cols;
    entries = o.entries;
    csr_.store(o.csr_.load());
    dense_.store(o.dense_.load());
    return *this;
  }
  SparseMatrix(SparseMatrix&& o) noexcept
      : rows(o.rows),
        cols(o.cols),
        entries(std::move(o.entries)),
        csr_(o.csr_.load()),
        dense_(o.dense_.load()) {
    o.rows = 0;
    o.cols = 0;
    o.csr_.store(std::shared_ptr<const Csr>());
    o.dense_.store(std::shared_ptr<const Matrix>());
  }
  SparseMatrix& operator=(SparseMatrix&& o) noexcept {
    if (this == &o) return *this;
    rows = o.rows;
    cols = o.cols;
    entries = std::move(o.entries);
    csr_.store(o.csr_.load());
    dense_.store(o.dense_.load());
    o.rows = 0;
    o.cols = 0;
    o.csr_.store(std::shared_ptr<const Csr>());
    o.dense_.store(std::shared_ptr<const Matrix>());
    return *this;
  }

  void Reserve(size_t n) { entries.reserve(n); }
  void Add(int r, int c, float v) { entries.push_back({r, c, v}); }
  /// Appends both {a,b,v} and {b,a,v} (symmetric adjacency edge).
  void AddSymmetric(int a, int b, float v) {
    entries.push_back({a, b, v});
    entries.push_back({b, a, v});
  }

  /// Returns the CSR mirror, building and caching it on first use. Safe to
  /// call concurrently on a fully-constructed matrix: the first build wins
  /// and is never replaced, so returned references stay valid.
  std::shared_ptr<const Csr> CsrView() const;
  /// Eagerly builds the CSR cache (call once after construction).
  void BuildCsrCache() const { (void)CsrView(); }

  /// Returns the densified form (entry list scattered into a rows x cols
  /// Matrix, later duplicates winning), building and caching it on first
  /// use with the same first-build-wins discipline as CsrView().
  std::shared_ptr<const Matrix> DenseView() const;

  const std::vector<int>& RowPtr() const { return CsrView()->row_ptr; }
  const std::vector<int>& ColIdx() const { return CsrView()->col_idx; }
  const std::vector<float>& Vals() const { return CsrView()->vals; }

 private:
  mutable std::atomic<std::shared_ptr<const Csr>> csr_;
  mutable std::atomic<std::shared_ptr<const Matrix>> dense_;
};

/// A node in the autograd tape: value and gradient. Backward logic lives in
/// the tape's op records (see OpRecord), not on the node.
struct Tensor {
  Matrix value;
  Matrix grad;
  bool requires_grad = false;

  int rows() const { return value.rows; }
  int cols() const { return value.cols; }
};

/// A trainable parameter: persistent value + accumulated gradient + Adam
/// moments. Parameters live in layers; each forward pass leases them into
/// the tape via Tape::Leaf.
struct Parameter {
  Matrix value;
  Matrix grad;
  Matrix m, v;  ///< Adam moments
  bool frozen = false;  ///< transfer learning: excluded from updates

  explicit Parameter(Matrix init)
      : value(std::move(init)),
        grad(value.rows, value.cols),
        m(value.rows, value.cols),
        v(value.rows, value.cols) {}

  void ZeroGrad() { std::fill(grad.data.begin(), grad.data.end(), 0.f); }
};

/// Op tag for the closure-free backward dispatch (internal to the tape).
enum class OpKind : uint8_t {
  kLeaf,
  kMatMul,
  kAdd,
  kMul,
  kScale,
  kRelu,
  kSigmoid,
  kTanh,
  kConcatCols,
  kConcatRows,
  kMeanRows,
  kMaxRows,
  kGatherRows,
  kSpMM,
  kRowScale,
  kSumAll,
  kSoftmaxXent,
  kBceLogit,
  kContrastiveMargin,
  kSoftmaxRow,
  kScaleByEntry,
  kTranspose,
  kSegmentMeanRows,
  kSegmentMaxRows,
  kSoftmaxRows,
  kSegmentScaleByCol,
};

/// One recorded gradient-flowing op: tag, operand pointers, and a small
/// fixed payload. Trivially destructible, so the record list clears without
/// per-element work; integer/double payloads index into the arena pools.
struct OpRecord {
  OpKind kind;
  Tensor* out = nullptr;
  Tensor* a = nullptr;
  Tensor* b = nullptr;
  Parameter* param = nullptr;   ///< kLeaf
  const void* aux = nullptr;    ///< kSpMM: borrowed SparseMatrix::Csr*
  float f0 = 0.f;               ///< scale factor / sample weight
  double d0 = 0.0, d1 = 0.0;    ///< kContrastiveMargin: norm, margin
  int i0 = 0, i1 = 0;           ///< pool offsets / lengths / labels / flags
};

/// Bump-pointer arena behind a Tape: owns the Tensor slots plus int, double
/// and scratch-Matrix pools. Reset() rewinds the cursors but keeps every
/// allocation, so replaying an identical op sequence re-uses the same
/// storage and performs no heap allocation after the first (warm-up) pass.
class TapeArena {
 public:
  TapeArena() = default;
  TapeArena(const TapeArena&) = delete;
  TapeArena& operator=(const TapeArena&) = delete;
  ~TapeArena();

  /// Returns the next Tensor slot (address-stable across Reset and growth).
  Tensor* NewTensor();

  /// Reserves `n` ints in the pool; returns the pool offset. Pointers from
  /// Ints() are invalidated by the next AllocInts call (growth may move the
  /// pool), which is why records store offsets, not pointers.
  size_t AllocInts(size_t n);
  int* Ints(size_t off) { return ints_.data() + off; }
  const int* Ints(size_t off) const { return ints_.data() + off; }

  /// Same contract as AllocInts, for doubles.
  size_t AllocDoubles(size_t n);
  double* Doubles(size_t off) { return doubles_.data() + off; }
  const double* Doubles(size_t off) const { return doubles_.data() + off; }

  /// Returns a forward-only temporary shaped rows x cols. The contents are
  /// NOT zeroed — callers must fully overwrite. Valid until Reset().
  Matrix* Scratch(int rows, int cols);

  /// Shapes `m` to rows x cols, optionally zero-filling. Growth beyond the
  /// retained capacity is counted in the arena stats.
  void Shape(Matrix* m, int rows, int cols, bool zero);

  /// Rewinds all cursors; capacity (and therefore all retained float/int/
  /// double storage) is kept for the next identical-shape pass.
  void Reset();

  size_t nodes() const { return tensor_cursor_; }
  size_t bytes_retained() const { return bytes_retained_; }
  size_t growth_allocs() const { return growth_allocs_; }

  /// Process-wide bytes retained across all live arenas (for obs export).
  static size_t TotalBytesRetained();

  /// Counts a capacity change of an external buffer (op records, CSR refs)
  /// into this arena's growth stats. Internal to the tape machinery.
  void CountGrowth(size_t old_cap_bytes, size_t new_cap_bytes);

 private:
  static constexpr size_t kChunk = 128;  ///< tensors per chunk
  std::vector<std::unique_ptr<Tensor[]>> chunks_;
  size_t tensor_cursor_ = 0;
  std::vector<std::unique_ptr<Matrix>> scratch_;
  size_t scratch_cursor_ = 0;
  std::vector<int> ints_;
  size_t int_cursor_ = 0;
  std::vector<double> doubles_;
  size_t double_cursor_ = 0;
  size_t bytes_retained_ = 0;
  size_t growth_allocs_ = 0;
};

/// Reverse-mode autograd tape. All tensors created through a tape are owned
/// by its arena; Backward() replays the op records in reverse creation
/// order (creation order is already a topological order). Reset() rewinds
/// the tape for re-use — after one warm-up pass over a given op sequence,
/// subsequent identical passes allocate nothing.
class Tape {
 public:
  /// Per-tape gradient buffer keyed by parameter (see set_grad_sink).
  using GradSink = std::unordered_map<Parameter*, Matrix>;

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Creates a tensor from a value (no gradient tracking unless
  /// set_track_constants(true) was called on this tape). The value is
  /// copied into arena-retained storage.
  Tensor* Constant(const Matrix& value);

  /// When enabled, subsequent Constant() tensors are gradient-tracked and
  /// recorded in creation order (see tracked_constants()). Model inputs
  /// enter the tape as constants, so this is how input-saliency explanation
  /// gets d(margin)/d(features): models create the typed feature constants
  /// first, in ascending node-type order, before any auxiliary constants.
  void set_track_constants(bool on) { track_constants_ = on; }
  const std::vector<Tensor*>& tracked_constants() const {
    return tracked_constants_;
  }

  /// When enabled, Leaf() tensors are untracked: no gradient buffers are
  /// allocated for parameters and no parameter gradients are computed on
  /// Backward(). Inference-only forwards set this to skip all gradient
  /// bookkeeping; combined with set_track_constants(true), Backward()
  /// computes input gradients only (the saliency screen's fast path).
  void set_freeze_leaves(bool on) { freeze_leaves_ = on; }

  /// Creates a gradient-tracked leaf bound to a parameter: the forward pass
  /// reads param->value, the backward pass accumulates into param->grad.
  Tensor* Leaf(Parameter* param);

  /// Allocates an intermediate tensor (value zero-filled; grad zero-filled
  /// when requires_grad).
  Tensor* New(int rows, int cols, bool requires_grad);

  /// Runs backward from `loss` (must be 1x1).
  void Backward(Tensor* loss);

  /// Redirects Leaf gradient accumulation from Parameter::grad into
  /// `sink[param]` (zero-initialized on first touch). The parallel trainer
  /// gives each per-graph tape a private sink and merges the sinks into the
  /// parameters serially, in sample order, so gradients are bit-identical
  /// for any thread count. Set before the first Leaf-touching Backward().
  void set_grad_sink(GradSink* sink) { grad_sink_ = sink; }

  size_t size() const { return arena_.nodes(); }

  /// Rewinds the tape for re-use: node/record cursors to zero, per-pass
  /// state (sink pointer, modes, tracked constants, CSR refs) cleared,
  /// all storage capacity retained. Also publishes arena stats to obs.
  void Reset();

  struct Stats {
    size_t nodes = 0;           ///< tensors on the tape
    size_t records = 0;         ///< backward op records
    size_t bytes_retained = 0;  ///< arena bytes held across Reset()
    size_t growth_allocs = 0;   ///< cumulative arena growth events
  };
  Stats stats() const;

  // ---- Internal API for the op implementations -----------------------
  TapeArena* arena() { return &arena_; }
  void Record(const OpRecord& r);
  /// Keeps a CSR view alive for the lifetime of the pass (kSpMM borrows a
  /// raw pointer in its record).
  void RetainCsr(std::shared_ptr<const SparseMatrix::Csr> csr);

 private:
  void RunBackward(const OpRecord& r);

  TapeArena arena_;
  std::vector<OpRecord> records_;
  std::vector<std::shared_ptr<const SparseMatrix::Csr>> csr_refs_;
  GradSink* grad_sink_ = nullptr;
  bool track_constants_ = false;
  bool freeze_leaves_ = false;
  std::vector<Tensor*> tracked_constants_;
  size_t growth_published_ = 0;  ///< growth_allocs already sent to obs
};

/// RAII lease of a thread-local pooled Tape: acquires a warm tape (or
/// creates one on first use), and Reset()s it back into the pool on scope
/// exit. Stack-ordered acquire/release makes nesting safe (e.g. the
/// explainer opening a tape while the detector's is live). This is how the
/// trainer, detector, session and explainer get zero-malloc tapes after
/// each worker thread's first pass.
class ScopedTape {
 public:
  ScopedTape();
  ~ScopedTape();
  ScopedTape(const ScopedTape&) = delete;
  ScopedTape& operator=(const ScopedTape&) = delete;

  Tape* get() const { return tape_; }
  Tape* operator->() const { return tape_; }
  Tape& operator*() const { return *tape_; }

 private:
  Tape* tape_;
};

// ---- Ops (all append to the tape; gradients flow where inputs track) -----

/// C = A * B.
Tensor* MatMul(Tape* t, Tensor* a, Tensor* b);
/// C = A + B (same shape), or row-broadcast when B is 1 x cols.
Tensor* Add(Tape* t, Tensor* a, Tensor* b);
/// C = A - B (same shape).
Tensor* Sub(Tape* t, Tensor* a, Tensor* b);
/// Elementwise product (same shape).
Tensor* Mul(Tape* t, Tensor* a, Tensor* b);
/// C = s * A.
Tensor* Scale(Tape* t, Tensor* a, float s);
/// Elementwise ReLU.
Tensor* Relu(Tape* t, Tensor* a);
/// Elementwise sigmoid.
Tensor* Sigmoid(Tape* t, Tensor* a);
/// Elementwise tanh.
Tensor* Tanh(Tape* t, Tensor* a);
/// Column-wise concatenation [A | B] (same row count).
Tensor* ConcatCols(Tape* t, Tensor* a, Tensor* b);
/// Row-wise concatenation [A ; B] (same column count).
Tensor* ConcatRows(Tape* t, Tensor* a, Tensor* b);
/// 1 x cols mean over rows (mean readout).
Tensor* MeanRows(Tape* t, Tensor* a);
/// 1 x cols max over rows (max readout).
Tensor* MaxRows(Tape* t, Tensor* a);
/// Select a subset of rows (graph pooling): out[i] = a[idx[i]].
Tensor* GatherRows(Tape* t, Tensor* a, const std::vector<int>& idx);
/// Sparse-dense product: C = S * A (S untracked).
Tensor* SpMM(Tape* t, const SparseMatrix& s, Tensor* a);
/// Scale each row i of A by the scalar in column vector g (n x 1).
Tensor* RowScale(Tape* t, Tensor* a, Tensor* g);
/// Sum of all entries (1x1).
Tensor* SumAll(Tape* t, Tensor* a);
/// C = A^T.
Tensor* Transpose(Tape* t, Tensor* a);
/// Weighted softmax cross-entropy over logits (1 x k) with integer label;
/// returns 1x1 loss. `weight` scales the sample's loss (class weighting).
Tensor* SoftmaxCrossEntropy(Tape* t, Tensor* logits, int label, float weight);
/// Binary cross-entropy of a single logit (1x1) against label in {0,1}.
Tensor* BceWithLogit(Tape* t, Tensor* logit, int label, float weight);
/// Squared L2 distance between two 1 x d tensors (1x1).
Tensor* SquaredDistance(Tape* t, Tensor* a, Tensor* b);
/// Contrastive loss (Eq. 1) for a pair of 1 x d embeddings: same-label
/// pulls together, different-label pushes apart up to margin `eps`.
Tensor* ContrastiveLoss(Tape* t, Tensor* za, Tensor* zb, bool same_label,
                        float eps);
/// a + b where either may be nullptr (returns the other).
Tensor* AddLoss(Tape* t, Tensor* a, Tensor* b);
/// Row softmax of a 1 x k tensor with exact Jacobian backward (used for
/// inter-metapath semantic attention).
Tensor* SoftmaxRowOp(Tape* t, Tensor* a);
/// out = a * s(0, idx): scales a matrix by one entry of a tracked tensor.
Tensor* ScaleByEntry(Tape* t, Tensor* a, Tensor* s, int idx);

// ---- Segment ops (block-diagonal batched inference) ----------------------
//
// `offsets` is a B+1 ascending segment table: segment b covers rows
// [offsets[b], offsets[b+1]) of `a`, and every segment is non-empty. Each
// segment is processed with exactly the iteration (and therefore float
// summation) order of the corresponding whole-matrix op on that row range,
// so a batched forward is bit-identical per graph to B sequential forwards.

/// B x cols per-segment mean over rows (batched kMeanRows).
Tensor* SegmentMeanRows(Tape* t, Tensor* a, const std::vector<int>& offsets);
/// B x cols per-segment max over rows (batched kMaxRows; strict > argmax).
Tensor* SegmentMaxRows(Tape* t, Tensor* a, const std::vector<int>& offsets);
/// Independent row-wise softmax of a B x k tensor (batched kSoftmaxRow;
/// each row uses the exact SoftmaxRowInto operation order).
Tensor* SoftmaxRows(Tape* t, Tensor* a);
/// Row i in segment b scaled by s(b, col) — the batched twin of
/// ScaleByEntry for a B x P per-segment weight tensor.
Tensor* SegmentScaleByCol(Tape* t, Tensor* a, Tensor* s, int col,
                          const std::vector<int>& offsets);

/// Softmax probabilities of a 1 x k logits row (forward only helper).
std::vector<double> SoftmaxRow(const Tensor* logits);

/// Allocation-free SoftmaxRow: writes the probabilities into `p`, which
/// must hold logits->value.data.size() doubles. Identical operation order
/// to SoftmaxRow, so the results are bit-identical.
void SoftmaxRowInto(const Tensor* logits, double* p);

/// Row-pointer variant for one row of a batched logits matrix: softmax of
/// the k floats at `logits` into `p` with the same operation order as the
/// tensor overload (so per-row results are bit-identical).
void SoftmaxRowInto(const float* logits, int k, double* p);

/// Adam update over a set of parameters (skips frozen ones) and zeroes
/// gradients.
class Adam {
 public:
  struct Params {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  Adam() : Adam(Params()) {}
  explicit Adam(Params p) : params_(p) {}

  void Step(const std::vector<Parameter*>& parameters);

 private:
  Params params_;
  long t_ = 0;
};

}  // namespace glint::gnn
