#pragma once

#include <vector>

#include "gnn/models.h"
#include "graph/interaction_graph.h"

namespace glint::core {

/// Occlusion-based GNN explanation (the PGExplainer/SubgraphX stand-in used
/// to highlight culprit rules in warnings, Sec. 3.1): each node's
/// importance is the drop in the threat logit-margin when the node's
/// features are zeroed out. Small graphs get the exact per-node occlusion
/// scan; larger ones use a two-stage scheme — an input-gradient screen
/// (one forward/backward, first-order occlusion estimate for every node)
/// followed by exact occlusion on the screened top candidates — so the
/// serving-path cost stays O(1) forwards instead of O(n). Scores are
/// normalized to [0, 1].
std::vector<double> ExplainNodes(gnn::GraphModel* model,
                                 const gnn::GnnGraph& g);

/// Indices of the top-k most important nodes.
std::vector<int> TopCulprits(const std::vector<double>& importance, int k);

}  // namespace glint::core
