// Crash-safety proof for the durable ServingEngine: a scripted workload of
// AddHome / AddRule / RemoveRule / OnEvent ops (plus a mid-run snapshot) is
// run against a write-ahead-logged engine while fault injection kills or
// fails the process at every registered I/O fault point; after each
// interruption a fresh engine recovers from the state directory, the
// not-yet-durable tail of the script is reapplied, and the resulting
// InspectAll output must be BIT-IDENTICAL to an uninterrupted reference
// run. Plus: torn-tail truncation, flipped-byte checksum detection, and
// corrupt-snapshot refusal.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/glint.h"
#include "core/serving.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace glint::core {
namespace {

/// One scripted engine mutation. The script below is the ground truth both
/// the reference run and every recovery replays.
struct Op {
  enum Kind { kAddHome, kAddRule, kRemoveRule, kEvent } kind;
  HomeId home;                        // stable id (rides the WAL for kAddHome)
  std::vector<rules::Rule> deployed;  // kAddHome
  rules::Rule rule;                   // kAddRule
  int rule_id = 0;                    // kRemoveRule
  graph::Event event;                 // kEvent
};

class RecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Run everything on the calling thread: the crash-matrix tests fork,
    // and a forked child must not depend on worker threads that do not
    // survive fork.
    ThreadPool::SetGlobalThreads(1);

    Glint::Options opts;
    opts.corpus.ifttt = 200;
    opts.corpus.smartthings = 40;
    opts.corpus.alexa = 60;
    opts.corpus.google_assistant = 40;
    opts.corpus.home_assistant = 40;
    opts.num_training_graphs = 40;
    opts.builder.max_nodes = 8;
    opts.model.num_scales = 2;
    opts.model.embed_dim = 32;
    opts.train.epochs = 2;
    opts.pairs.num_positive = 60;
    opts.pairs.num_negative = 90;
    glint_ = new Glint(opts);
    glint_->TrainOffline();

    BuildScript();

    // The uninterrupted reference: a non-durable engine running the whole
    // script. Every recovery below must land on this exact fingerprint.
    ServingEngine ref(&glint_->detector());
    ASSERT_TRUE(RunScript(&ref, 0, -1).ok());
    *reference_ = Fingerprint(&ref);
    ASSERT_FALSE(reference_->empty());

    char tmpl[] = "/tmp/glint_recovery_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    base_dir_ = new std::string(tmpl);
  }

  void SetUp() override { fault::Registry::Global().Clear(); }
  void TearDown() override { fault::Registry::Global().Clear(); }

  static std::vector<rules::Rule> HomeRules(int n) {
    std::vector<rules::Rule> out(
        glint_->corpus().begin(),
        glint_->corpus().begin() +
            std::min<size_t>(static_cast<size_t>(n),
                             glint_->corpus().size()));
    for (size_t i = 0; i < out.size(); ++i) {
      out[i].id = 9000 + static_cast<int>(i);
    }
    return out;
  }

  static graph::Event EventFor(const rules::Rule& r, double t) {
    graph::Event e;
    e.time_hours = t;
    e.location = r.location;
    e.device = r.trigger.device;
    e.state = r.trigger.state;
    return e;
  }

  static void BuildScript() {
    auto rules = HomeRules(8);
    // Homes are addressed by stable string ids throughout the script, so
    // the crash matrix also proves ids survive WAL replay and snapshots.
    const HomeId ids[2] = {"home-a", "home-b"};
    auto add_home = [&](const HomeId& id, std::vector<rules::Rule> deployed) {
      Op op;
      op.kind = Op::kAddHome;
      op.home = id;
      op.deployed = std::move(deployed);
      script_->push_back(std::move(op));
    };
    auto add_rule = [&](int h, const rules::Rule& r) {
      Op op;
      op.kind = Op::kAddRule;
      op.home = ids[h];
      op.rule = r;
      script_->push_back(std::move(op));
    };
    auto remove_rule = [&](int h, int id) {
      Op op;
      op.kind = Op::kRemoveRule;
      op.home = ids[h];
      op.rule_id = id;
      script_->push_back(std::move(op));
    };
    auto event = [&](int h, const rules::Rule& r, double t) {
      Op op;
      op.kind = Op::kEvent;
      op.home = ids[h];
      op.event = EventFor(r, t);
      script_->push_back(std::move(op));
    };

    add_home(ids[0], {rules[0], rules[1], rules[2]});
    add_home(ids[1], {rules[3], rules[4]});
    event(0, rules[0], 0.5);
    event(1, rules[3], 0.6);
    add_rule(0, rules[5]);
    event(0, rules[1], 0.9);
    event(1, rules[4], 1.1);
    add_rule(1, rules[6]);
    event(0, rules[5], 1.4);
    remove_rule(0, 9001);  // retire rules[1]
    event(1, rules[6], 1.7);
    event(0, rules[2], 2.0);
    add_rule(0, rules[7]);
    event(0, rules[7], 2.3);
    event(1, rules[3], 2.6);
    remove_rule(1, 9004);  // retire rules[4]
    event(0, rules[0], 2.9);
    event(1, rules[6], 3.1);
  }

  static Status ApplyOp(ServingEngine* engine, const Op& op) {
    switch (op.kind) {
      case Op::kAddHome:
        return engine->TryAddHome(op.home, op.deployed).status();
      case Op::kAddRule:
        return engine->TryAddRule(op.home, op.rule);
      case Op::kRemoveRule:
        return engine->TryRemoveRule(op.home, op.rule_id);
      case Op::kEvent:
        return engine->TryOnEvent(op.home, op.event);
    }
    return Status::Internal("unreachable");
  }

  /// Applies script ops [from, end), snapshotting after op index
  /// `snapshot_after` when the engine is durable (-1 = never). Stops at
  /// the first error.
  static Status RunScript(ServingEngine* engine, size_t from,
                          int snapshot_after) {
    for (size_t i = from; i < script_->size(); ++i) {
      GLINT_RETURN_IF_ERROR(ApplyOp(engine, (*script_)[i]));
      if (static_cast<int>(i) == snapshot_after && engine->durable()) {
        GLINT_RETURN_IF_ERROR(engine->Snapshot());
      }
    }
    return Status::OK();
  }

  /// Full-precision serialization of the engine's observable state: the
  /// per-home rule sets, event watermarks, and every field of every
  /// InspectAll warning. String equality here is bit-identity of the
  /// doubles (%.17a round-trips exactly).
  static std::string Fingerprint(ServingEngine* engine) {
    std::string out;
    char buf[64];
    auto hex = [&](double v) {
      std::snprintf(buf, sizeof buf, "%.17a", v);
      out += buf;
    };
    auto warnings = engine->InspectAll(kInspectHour);
    for (size_t h = 0; h < engine->num_homes(); ++h) {
      // home_view: most fingerprinted engines here are durable, and the
      // mutable home() accessor refuses those (WAL-bypass guard). The home
      // id is part of the fingerprint — id recovery is part of the proof.
      const DeploymentSession& s = engine->home_view(static_cast<int>(h));
      out += "home " + engine->home_id(static_cast<int>(h)) + " rules";
      for (const auto& r : s.CurrentRules()) {
        out += " " + std::to_string(r.id);
      }
      out += " events " +
             std::to_string(s.live().retained_events().size()) +
             " watermark ";
      hex(s.live().latest_event_hours());
      const ThreatWarning& w = warnings[h];
      out += " threat " + std::to_string(w.threat) + " drifting " +
             std::to_string(w.drifting) + " confidence ";
      hex(w.confidence);
      out += " types";
      for (auto t : w.types) {
        out += " " + std::to_string(static_cast<int>(t));
      }
      for (const auto& c : w.culprits) {
        out += " culprit " + std::to_string(c.node) + " " + c.platform +
               " '" + c.rule_text + "' ";
        hex(c.importance);
      }
      out += "\n";
    }
    return out;
  }

  static std::string Dir(const std::string& name) {
    std::string d = *base_dir_ + "/" + name;
    for (char& c : d) {
      if (c == '.') c = '_';
    }
    return d;
  }

  /// Recovers a fresh engine from `dir`, reapplies the script tail that
  /// was not yet durable, and checks bit-identity with the reference.
  static void RecoverAndVerify(const std::string& dir,
                               const std::string& context) {
    ServingEngine engine(&glint_->detector());
    Status st = engine.Recover(dir);
    ASSERT_TRUE(st.ok()) << context << ": " << st.ToString();
    const uint64_t seq = engine.journal_seq();
    ASSERT_LE(seq, script_->size()) << context;
    st = RunScript(&engine, static_cast<size_t>(seq), -1);
    ASSERT_TRUE(st.ok()) << context << ": " << st.ToString();
    EXPECT_EQ(Fingerprint(&engine), *reference_) << context;
  }

  static constexpr double kInspectHour = 3.5;
  static constexpr int kSnapshotAfter = 8;

  static Glint* glint_;
  static std::vector<Op>* script_;
  static std::string* reference_;
  static std::string* base_dir_;
};

Glint* RecoveryTest::glint_ = nullptr;
std::vector<Op>* RecoveryTest::script_ = new std::vector<Op>();
std::string* RecoveryTest::reference_ = new std::string();
std::string* RecoveryTest::base_dir_ = nullptr;

TEST_F(RecoveryTest, DurableUninterruptedMatchesReference) {
  const std::string dir = Dir("uninterrupted");
  ServingEngine engine(&glint_->detector());
  ASSERT_TRUE(engine.Recover(dir).ok());
  EXPECT_TRUE(engine.durable());
  ASSERT_TRUE(RunScript(&engine, 0, kSnapshotAfter).ok());
  EXPECT_EQ(engine.journal_seq(), script_->size());
  EXPECT_EQ(Fingerprint(&engine), *reference_);

  // A clean restart (snapshot + WAL tail, nothing torn) is also identical.
  ASSERT_TRUE(engine.Snapshot().ok());
  RecoverAndVerify(dir, "clean restart");
}

TEST_F(RecoveryTest, MutableHomeAccessorRefusesDurableEngine) {
  // The WAL-bypass hole: a mutable session handle on a durable engine
  // would let callers mutate state the journal never sees. Reads go
  // through home_view(); the mutable accessor aborts.
  const std::string dir = Dir("walbypass");
  ServingEngine engine(&glint_->detector());
  ASSERT_TRUE(engine.Recover(dir).ok());
  ASSERT_TRUE(engine.TryAddHome("home-x", HomeRules(2)).ok());
  EXPECT_EQ(engine.home_view(0).num_rules(), 2);
  EXPECT_EQ(engine.home_id(0), "home-x");
  EXPECT_EQ(engine.ResolveHome("home-x"), 0);
  EXPECT_DEATH((void)engine.home(0), "durable");
}

TEST_F(RecoveryTest, HomeIdsSurviveSnapshotAndReplay) {
  const std::string dir = Dir("ids");
  {
    ServingEngine engine(&glint_->detector());
    ASSERT_TRUE(engine.Recover(dir).ok());
    ASSERT_TRUE(engine.TryAddHome("kitchen-42", HomeRules(2)).ok());
    ASSERT_TRUE(engine.Snapshot().ok());  // id must ride the snapshot...
    ASSERT_TRUE(engine.TryAddHome("loft-7", HomeRules(3)).ok());  // ...and WAL
    // Duplicate and empty ids are rejected before anything is journaled.
    EXPECT_FALSE(engine.TryAddHome("kitchen-42", HomeRules(1)).ok());
    EXPECT_FALSE(engine.TryAddHome("", HomeRules(1)).ok());
  }
  ServingEngine engine(&glint_->detector());
  ASSERT_TRUE(engine.Recover(dir).ok());
  ASSERT_EQ(engine.num_homes(), 2u);
  EXPECT_EQ(engine.home_id(0), "kitchen-42");
  EXPECT_EQ(engine.home_id(1), "loft-7");
  EXPECT_EQ(engine.ResolveHome("loft-7"), 1);
  EXPECT_EQ(engine.ResolveHome("cellar"), -1);
  EXPECT_FALSE(engine.TryOnEvent("cellar", graph::Event{}).ok());
}

TEST_F(RecoveryTest, RecoverOnFreshDirIsEmptyEngine) {
  const std::string dir = Dir("fresh");
  ServingEngine engine(&glint_->detector());
  ASSERT_TRUE(engine.Recover(dir).ok());
  EXPECT_EQ(engine.num_homes(), 0u);
  EXPECT_EQ(engine.journal_seq(), 0u);
  EXPECT_FALSE(engine.recovery_info().snapshot_loaded);
  EXPECT_FALSE(engine.recovery_info().tail_torn);
}

/// Every I/O fault point reachable by the durable workload, discovered by
/// running it once (points self-register on first execution), plus the
/// armed-only torn-write point.
std::vector<std::string> MatrixPoints() {
  std::vector<std::string> out;
  for (const auto& p : fault::Registry::Global().Points()) {
    if (p.rfind("wal.", 0) == 0 || p.rfind("snapshot.", 0) == 0 ||
        p.rfind("journal.", 0) == 0) {
      out.push_back(p);
    }
  }
  bool has_tear = false;
  for (const auto& p : out) has_tear |= (p == "wal.append.tear");
  if (!has_tear) out.push_back("wal.append.tear");
  return out;
}

TEST_F(RecoveryTest, CrashMatrixRecoversBitIdentical) {
  // The DurableUninterruptedMatchesReference workload above has already
  // executed every reachable point at least once in this process; running
  // it first is also what makes gtest ordering a requirement here, so
  // re-run a throwaway durable workload to guarantee registration even if
  // this test runs alone.
  {
    const std::string dir = Dir("enumerate");
    ServingEngine engine(&glint_->detector());
    ASSERT_TRUE(engine.Recover(dir).ok());
    ASSERT_TRUE(RunScript(&engine, 0, kSnapshotAfter).ok());
    ASSERT_TRUE(engine.Snapshot().ok());
  }

  const auto points = MatrixPoints();
  ASSERT_GE(points.size(), 10u) << "fault-point enumeration looks broken";
  int crashes = 0;
  for (const auto& point : points) {
    for (int nth = 1; nth <= 2; ++nth) {
      const std::string context =
          "crash @ " + point + " hit " + std::to_string(nth);
      const std::string dir =
          Dir("crash_" + point + "_" + std::to_string(nth));

      const pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        // Child: arm the kill switch and run the durable workload to
        // completion (initial recovery, ops, mid-run + final snapshot).
        // _exit keeps gtest/stdio state out of the picture.
        fault::Registry::Global().Clear();
        fault::Registry::Global().Arm(point, fault::Mode::kCrash, nth);
        ServingEngine engine(&glint_->detector());
        Status st = engine.Recover(dir);
        if (st.ok()) st = RunScript(&engine, 0, kSnapshotAfter);
        if (st.ok()) st = engine.Snapshot();
        _exit(st.ok() ? 0 : 3);
      }

      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus)) << context;
      const int code = WEXITSTATUS(wstatus);
      // 112 = the armed crash fired mid-I/O; 0 = this workload never
      // reaches hit `nth` of this point (e.g. a recovery-only point), so
      // the run completed — still a valid recovery input.
      ASSERT_TRUE(code == fault::kCrashExitCode || code == 0)
          << context << " exited " << code;
      crashes += (code == fault::kCrashExitCode);

      RecoverAndVerify(dir, context);
    }
  }
  // The matrix must actually kill the process most of the time, or the
  // points are not wired where the I/O happens.
  EXPECT_GE(crashes, static_cast<int>(points.size()));
}

TEST_F(RecoveryTest, FailMatrixRecoversBitIdentical) {
  const auto points = MatrixPoints();
  ASSERT_GE(points.size(), 10u);
  for (const auto& point : points) {
    const std::string context = "fail @ " + point;
    const std::string dir = Dir("fail_" + point);
    {
      fault::Registry::Global().Clear();
      fault::Registry::Global().Arm(point, fault::Mode::kFail, 1);
      ServingEngine engine(&glint_->detector());
      Status st = engine.Recover(dir);
      // An injected failure during initial recovery leaves the engine
      // non-durable; the workload then runs in-memory only and recovery
      // below replays nothing — the reapply covers the whole script.
      if (st.ok()) {
        st = RunScript(&engine, 0, kSnapshotAfter);
        if (st.ok()) st = engine.Snapshot();
      }
      // Whatever the injected failure aborted, the engine never applied a
      // non-durable op; the WAL is still at a record boundary.
      fault::Registry::Global().Clear();
    }
    RecoverAndVerify(dir, context);
  }
}

TEST_F(RecoveryTest, TornTailIsDetectedAndTruncated) {
  const std::string dir = Dir("torn");
  {
    ServingEngine engine(&glint_->detector());
    ASSERT_TRUE(engine.Recover(dir).ok());
    ASSERT_TRUE(RunScript(&engine, 0, -1).ok());
  }
  // Fake a torn final append: a full frame announcing a 12-byte record,
  // followed by only 5 bytes of body.
  {
    std::FILE* f = std::fopen((dir + "/wal.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint32_t len = 12, crc = 0xdeadbeef;
    std::fwrite(&len, sizeof len, 1, f);
    std::fwrite(&crc, sizeof crc, 1, f);
    std::fwrite("torn!", 1, 5, f);
    std::fclose(f);
  }
  {
    ServingEngine engine(&glint_->detector());
    ASSERT_TRUE(engine.Recover(dir).ok());
    EXPECT_TRUE(engine.recovery_info().tail_torn);
    EXPECT_EQ(engine.recovery_info().truncated_bytes, 13u);
    EXPECT_EQ(engine.journal_seq(), script_->size());
    EXPECT_EQ(Fingerprint(&engine), *reference_);
  }
  // The truncation repaired the file: a second recovery sees a clean log.
  {
    ServingEngine engine(&glint_->detector());
    ASSERT_TRUE(engine.Recover(dir).ok());
    EXPECT_FALSE(engine.recovery_info().tail_torn);
    EXPECT_EQ(Fingerprint(&engine), *reference_);
  }
}

TEST_F(RecoveryTest, FlippedByteEndsReplayAtLastValidRecord) {
  const std::string dir = Dir("flip");
  {
    ServingEngine engine(&glint_->detector());
    ASSERT_TRUE(engine.Recover(dir).ok());
    ASSERT_TRUE(RunScript(&engine, 0, -1).ok());
  }
  // Walk the record frames to find a mid-log record, then flip one payload
  // byte in it. Replay must stop just before it and drop everything after.
  const std::string wal = dir + "/wal.log";
  std::FILE* f = std::fopen(wal.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);  // WAL header
  long corrupt_at = -1;
  size_t target = script_->size() / 2;
  for (size_t rec = 0; rec < script_->size(); ++rec) {
    uint32_t len = 0, crc = 0;
    ASSERT_EQ(std::fread(&len, sizeof len, 1, f), 1u);
    ASSERT_EQ(std::fread(&crc, sizeof crc, 1, f), 1u);
    if (rec == target) {
      corrupt_at = std::ftell(f) + 9;  // a payload byte past the seq
      break;
    }
    std::fseek(f, static_cast<long>(len), SEEK_CUR);
  }
  ASSERT_GT(corrupt_at, 0);
  std::fseek(f, corrupt_at, SEEK_SET);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  std::fseek(f, corrupt_at, SEEK_SET);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  ServingEngine engine(&glint_->detector());
  ASSERT_TRUE(engine.Recover(dir).ok());
  EXPECT_TRUE(engine.recovery_info().tail_torn);
  EXPECT_EQ(engine.journal_seq(), target);
  EXPECT_GT(engine.recovery_info().truncated_bytes, 0u);
  ASSERT_TRUE(RunScript(&engine, target, -1).ok());
  EXPECT_EQ(Fingerprint(&engine), *reference_);
}

TEST_F(RecoveryTest, CorruptSnapshotIsRefusedNotGuessed) {
  const std::string dir = Dir("badsnap");
  {
    ServingEngine engine(&glint_->detector());
    ASSERT_TRUE(engine.Recover(dir).ok());
    ASSERT_TRUE(RunScript(&engine, 0, -1).ok());
    ASSERT_TRUE(engine.Snapshot().ok());
  }
  {
    std::FILE* f = std::fopen((dir + "/snapshot.bin").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 30, SEEK_SET);  // past the 24-byte header
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    std::fseek(f, 30, SEEK_SET);
    std::fputc(byte ^ 0x01, f);
    std::fclose(f);
  }
  ServingEngine engine(&glint_->detector());
  Status st = engine.Recover(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("corrupt snapshot"), std::string::npos);
}

}  // namespace
}  // namespace glint::core
