#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rules/device.h"

namespace glint::rules {

/// Room/zone a rule's devices live in. Physical channels such as
/// temperature or illuminance only couple rules in the same location (the
/// paper's Sec. 4.8.3 "the oven in the kitchen can hardly influence the
/// temperature in the living room"); house-wide channels (smoke, presence,
/// security, time) couple across locations.
enum class Location {
  kAny = 0,  ///< unspecified — interacts with every location
  kLivingRoom,
  kBedroom,
  kKitchen,
  kBathroom,
  kHallway,
  kGarden,
};
constexpr int kNumLocations = 7;

const char* LocationWord(Location l);

/// True when the channel is house-scoped (couples all locations).
bool IsHouseWideChannel(Channel c);

/// True when two locations can interact over `channel`.
bool SameScope(Location a, Location b, Channel channel);

/// Comparison applied to a channel value in triggers/conditions.
enum class Comparator {
  kAny = 0,   ///< fires on any event on the channel/device
  kAbove,
  kBelow,
  kBetween,
  kEquals,    ///< state equality ("door is open", "mode == manual")
};

/// Trigger specification: what event starts the rule.
struct TriggerSpec {
  Channel channel = Channel::kNone;  ///< observed channel
  DeviceType device = DeviceType::kMotionSensor;  ///< observing device
  Comparator cmp = Comparator::kAny;
  double lo = 0;   ///< threshold (kAbove/kBetween) or equality code
  double hi = 0;   ///< upper threshold for kBetween
  /// For state triggers: the device state that fires it ("open", "on", ...)
  std::string state;
  /// Direction of change that fires the trigger: +1 (value rising / state
  /// asserted), -1 (falling / de-asserted), 0 (either).
  int direction = 0;
  /// Optional fixed time-of-day trigger or window [hour_lo, hour_hi].
  bool has_time = false;
  int hour_lo = 0;
  int hour_hi = 24;
};

/// Extra gating condition (same shape as a trigger but does not fire).
struct ConditionSpec {
  Channel channel = Channel::kNone;
  DeviceType device = DeviceType::kMotionSensor;
  Comparator cmp = Comparator::kAny;
  double lo = 0;
  double hi = 0;
  std::string state;
  bool has_time = false;
  int hour_lo = 0;
  int hour_hi = 24;
};

/// One action: a command issued to a device.
struct ActionSpec {
  DeviceType device = DeviceType::kLight;
  Command command = Command::kOn;
  double level = 0;  ///< target level for kSetLevel
};

/// A smart-home automation rule: platform, trigger, conditions, actions,
/// plus the natural-language description a platform would show. The NL text
/// is all the learning system sees; the structured fields are ground truth
/// used by the corpus generator, the threat analyzer (labeling), and the
/// testbed automation engine.
struct Rule {
  int id = 0;
  Platform platform = Platform::kIFTTT;
  Location location = Location::kAny;
  TriggerSpec trigger;
  std::vector<ConditionSpec> conditions;
  std::vector<ActionSpec> actions;
  std::string text;
  /// True when the rule intentionally encodes a "manual mode" style pin
  /// (used by the Home Assistant blueprint generator for the new threat
  /// types of Sec. 4.7).
  bool manual_mode_pin = false;
};

/// Stable 64-bit hash of a rule's semantic content: platform, location,
/// trigger, conditions, actions, text, and the manual-mode pin — everything
/// the embedding models, the correlation discoverer, and the threat
/// analyzer can observe. The rule `id` is deliberately excluded so that two
/// rules with identical content share cache entries (embeddings and
/// pairwise correlation verdicts are pure functions of content, not id).
uint64_t RuleContentHash(const Rule& r);

/// True when executing `action` (in `action_loc`) can cause `trigger`
/// (observed in `trigger_loc`) to fire — the ground truth "action-trigger"
/// correlation the learned classifier of Sec. 3.2.1 approximates. Covers
/// (i) direct device-state matches ("open window" -> "when the window
/// opens"), (ii) environmental channel coupling ("turn on heater" -> "when
/// temperature is above X"), and (iii) sensor intake ("start vacuum" ->
/// "when motion is detected"). Room-scoped channels require compatible
/// locations.
bool ActionTriggers(const ActionSpec& action, const TriggerSpec& trigger,
                    Location action_loc = Location::kAny,
                    Location trigger_loc = Location::kAny);

/// True when any action of `src` can trigger `dst`.
bool RuleTriggersRule(const Rule& src, const Rule& dst);

/// Like RuleTriggersRule but only counts *instantaneous* links (direct
/// device-state matches and fast environmental effects). Slow channels such
/// as temperature drift are excluded; the action-loop detector uses this so
/// that thermostat-style oscillations are classified as reverts, not loops.
bool RuleTriggersRuleInstant(const Rule& src, const Rule& dst);

/// State keyword produced by a command ("open", "off", "locked", ...).
std::string CommandResultState(Command cmd);

/// True when `state` on device `d` is asserted by command `cmd`
/// (e.g. cmd=kOpen asserts state "open"; kOff asserts "off").
bool CommandAssertsState(Command cmd, const std::string& state);

/// True when `cmd` *negates* `state` (e.g. kClose negates "open").
bool CommandNegatesState(Command cmd, const std::string& state);

}  // namespace glint::rules
