// Unit tests for the glint::fault injection framework: registration and
// enumeration, hit counting, Nth-hit one-shot triggers, GLINT_FAULTS spec
// parsing, delay mode, and the GLINT_FAULT_POINT macro's early-return
// behavior inside a Status-returning function.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "util/fault.h"
#include "util/status.h"

namespace glint::fault {
namespace {

/// A Status-returning "I/O call" with one fault point, as the real WAL /
/// snapshot / model-file code uses them.
Status GuardedOp() {
  GLINT_FAULT_POINT("fault_test.guarded_op");
  return Status::OK();
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().Clear(); }
  void TearDown() override { Registry::Global().Clear(); }
};

TEST_F(FaultTest, UnarmedPointPassesThroughAndRegisters) {
  EXPECT_FALSE(Registry::Armed());
  EXPECT_TRUE(GuardedOp().ok());
  auto points = Registry::Global().Points();
  bool found = false;
  for (const auto& p : points) found |= (p == "fault_test.guarded_op");
  EXPECT_TRUE(found);
  // Unarmed hits are not counted (the site skips Hit() entirely).
  EXPECT_EQ(Registry::Global().hits("fault_test.guarded_op"), 0u);
}

TEST_F(FaultTest, FailModeTriggersOnceOnNextHit) {
  Registry::Global().Arm("fault_test.guarded_op", Mode::kFail);
  EXPECT_TRUE(Registry::Armed());

  Status st = GuardedOp();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("fault_test.guarded_op"), std::string::npos);

  // One-shot: the trigger disarms itself.
  EXPECT_FALSE(Registry::Armed());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(FaultTest, NthHitCountsArmedHitsOnly) {
  Registry::Global().Arm("fault_test.guarded_op", Mode::kFail, /*nth=*/3);
  EXPECT_TRUE(GuardedOp().ok());   // hit 1
  EXPECT_TRUE(GuardedOp().ok());   // hit 2
  EXPECT_FALSE(GuardedOp().ok());  // hit 3 fires
  EXPECT_TRUE(GuardedOp().ok());   // disarmed again — hit not counted
  EXPECT_EQ(Registry::Global().hits("fault_test.guarded_op"), 3u);
}

TEST_F(FaultTest, DisarmCancelsPendingTrigger) {
  Registry::Global().Arm("fault_test.guarded_op", Mode::kFail);
  Registry::Global().Disarm("fault_test.guarded_op");
  EXPECT_FALSE(Registry::Armed());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(FaultTest, DelayModeSleepsThenContinues) {
  Registry::Global().Arm("fault_test.guarded_op", Mode::kDelay, /*nth=*/1,
                         /*delay_ms=*/30);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(GuardedOp().ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 25);
  EXPECT_FALSE(Registry::Armed());
}

TEST_F(FaultTest, SpecParsesMultipleEntries) {
  Status st = Registry::Global().ArmFromSpec(
      "fault_test.a=fail,fault_test.b:3=crash,fault_test.c=delay:250");
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(Registry::Armed());
  Registry::Global().Clear();
}

TEST_F(FaultTest, SpecRejectsMalformedEntries) {
  EXPECT_FALSE(Registry::Global().ArmFromSpec("no_mode_here").ok());
  EXPECT_FALSE(Registry::Global().ArmFromSpec("=fail").ok());
  EXPECT_FALSE(Registry::Global().ArmFromSpec("p=explode").ok());
  EXPECT_FALSE(Registry::Global().ArmFromSpec("p:0=fail").ok());
  EXPECT_FALSE(Registry::Global().ArmFromSpec("p:x=fail").ok());
}

TEST_F(FaultTest, ClearResetsHitCounters) {
  Registry::Global().Arm("fault_test.guarded_op", Mode::kFail, /*nth=*/5);
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(Registry::Global().hits("fault_test.guarded_op"), 1u);
  Registry::Global().Clear();
  EXPECT_EQ(Registry::Global().hits("fault_test.guarded_op"), 0u);
  EXPECT_FALSE(Registry::Armed());
}

}  // namespace
}  // namespace glint::fault
