#pragma once

#include <string>
#include <vector>

#include "gnn/ggraph.h"
#include "gnn/tensor.h"

namespace glint::gnn {

/// Fully connected layer y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(int in, int out, Rng* rng)
      : w_(Matrix::HeInit(in, out, rng)), b_(Matrix(1, out)) {}

  Tensor* Forward(Tape* t, Tensor* x) {
    return Add(t, MatMul(t, x, t->Leaf(&w_)), t->Leaf(&b_));
  }

  std::vector<Parameter*> Parameters() { return {&w_, &b_}; }
  void SetFrozen(bool frozen) {
    w_.frozen = frozen;
    b_.frozen = frozen;
  }
  int in_dim() const { return w_.value.rows; }
  int out_dim() const { return w_.value.cols; }

 private:
  Parameter w_{Matrix(1, 1)};
  Parameter b_{Matrix(1, 1)};
};

/// Graph convolution (Kipf & Welling): H' = ReLU(Â H W + b).
class GcnConv {
 public:
  GcnConv() = default;
  GcnConv(int in, int out, Rng* rng) : lin_(in, out, rng) {}

  Tensor* Forward(Tape* t, const SparseMatrix& adj_norm, Tensor* h) {
    return Relu(t, SpMM(t, adj_norm, lin_.Forward(t, h)));
  }

  std::vector<Parameter*> Parameters() { return lin_.Parameters(); }
  void SetFrozen(bool f) { lin_.SetFrozen(f); }

 private:
  Linear lin_;
};

/// Graph isomorphism layer (Xu et al.): H' = MLP((1+eps) H + sum_N H).
class GinConv {
 public:
  GinConv() = default;
  GinConv(int in, int out, Rng* rng)
      : lin1_(in, out, rng), lin2_(out, out, rng) {}

  Tensor* Forward(Tape* t, const SparseMatrix& adj_raw, Tensor* h) {
    Tensor* agg = SpMM(t, adj_raw, h);           // sum over neighbours
    Tensor* self = Scale(t, h, 1.f + eps_);
    Tensor* mix = Add(t, self, agg);
    return Relu(t, lin2_.Forward(t, Relu(t, lin1_.Forward(t, mix))));
  }

  std::vector<Parameter*> Parameters() {
    auto p = lin1_.Parameters();
    auto q = lin2_.Parameters();
    p.insert(p.end(), q.begin(), q.end());
    return p;
  }
  void SetFrozen(bool f) {
    lin1_.SetFrozen(f);
    lin2_.SetFrozen(f);
  }

 private:
  Linear lin1_, lin2_;
  float eps_ = 0.f;
};

/// Topology-adaptive graph convolution (Du et al.): H' = Σ_{k=0..K} Â^k H W_k
/// — exact polynomial filtering, no convolution approximation (Sec. 3.3.1).
class TagConv {
 public:
  TagConv() = default;
  TagConv(int in, int out, int hops, Rng* rng) {
    for (int k = 0; k <= hops; ++k) hop_lins_.emplace_back(in, out, rng);
  }

  Tensor* Forward(Tape* t, const SparseMatrix& adj_norm, Tensor* h) {
    Tensor* acc = nullptr;
    Tensor* power = h;  // Â^0 H
    for (size_t k = 0; k < hop_lins_.size(); ++k) {
      acc = AddLoss(t, acc, hop_lins_[k].Forward(t, power));
      if (k + 1 < hop_lins_.size()) power = SpMM(t, adj_norm, power);
    }
    return Relu(t, acc);
  }

  std::vector<Parameter*> Parameters() {
    std::vector<Parameter*> out;
    for (auto& lin : hop_lins_) {
      auto p = lin.Parameters();
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }
  void SetFrozen(bool f) {
    for (auto& lin : hop_lins_) lin.SetFrozen(f);
  }

 private:
  std::vector<Linear> hop_lins_;
};

/// Inter-metapath semantic attention (Algorithm 2 lines 9-11): summarizes
/// each metapath's node matrix, scores it with an attention vector, and
/// returns the softmax-weighted combination.
class SemanticAttention {
 public:
  SemanticAttention() = default;
  SemanticAttention(int dim, int num_paths, Rng* rng)
      : summar_(dim, dim, rng), q_(Matrix::HeInit(dim, 1, rng)) {
    (void)num_paths;
  }

  /// `paths` are per-metapath node matrices (same shape). Returns the
  /// attended combination (same shape).
  Tensor* Forward(Tape* t, const std::vector<Tensor*>& paths);

  /// Block-diagonal batched twin: rows are grouped into segments by
  /// `offsets` (B+1 table, see gnn/ggraph.h GnnBatch), each segment gets
  /// its own per-metapath summary / softmax weights, and segment b of the
  /// result is bit-identical to Forward on that graph alone.
  Tensor* ForwardBatched(Tape* t, const std::vector<Tensor*>& paths,
                         const std::vector<int>& offsets);

  std::vector<Parameter*> Parameters() {
    auto p = summar_.Parameters();
    p.push_back(&q_);
    return p;
  }
  void SetFrozen(bool f) {
    summar_.SetFrozen(f);
    q_.frozen = f;
  }

 private:
  Linear summar_;
  Parameter q_{Matrix(1, 1)};
};

/// Vertex-infomax pooling (Li et al., GXN): scores vertices by the
/// (neural-estimated) mutual information between a vertex and its
/// neighbourhood, keeps the top `ratio` fraction, and gates the kept
/// features by their scores. Also emits a per-scale graph logit used by the
/// pooling loss of Eq. 2.
class VIPool {
 public:
  VIPool() = default;
  VIPool(int dim, double ratio, Rng* rng)
      : ratio_(ratio), score_(2 * dim, 1, rng), logit_(dim, 1, rng) {}

  struct Result {
    Tensor* features = nullptr;      ///< pooled node features
    SparseMatrix adj_norm;           ///< pooled normalized adjacency
    SparseMatrix adj_raw;            ///< pooled raw adjacency
    std::vector<int> kept;           ///< kept node indices (into input)
    Tensor* graph_logit = nullptr;   ///< per-scale logit for L_pool
  };

  Result Forward(Tape* t, const SparseMatrix& adj_norm,
                 const SparseMatrix& adj_raw, Tensor* h);

  /// Block-diagonal batched pooling: every segment of `offsets` is scored,
  /// ranked and coarsened independently (the exact Forward algorithm on its
  /// row range), and the pooled segments are re-packed block-diagonally.
  /// `offsets` describes the rows of `h`; the result carries the pooled
  /// segment table.
  struct BatchedResult {
    Tensor* features = nullptr;      ///< pooled node features (all segments)
    SparseMatrix adj_norm;           ///< pooled block-diagonal adjacency
    SparseMatrix adj_raw;            ///< pooled raw adjacency
    std::vector<int> kept;           ///< kept row indices (into input rows)
    std::vector<int> offsets;        ///< pooled B+1 segment table
    Tensor* graph_logits = nullptr;  ///< B x 1 per-scale logits for L_pool
  };

  BatchedResult ForwardBatched(Tape* t, const SparseMatrix& adj_norm,
                               const SparseMatrix& adj_raw, Tensor* h,
                               const std::vector<int>& offsets);

  std::vector<Parameter*> Parameters() {
    auto p = score_.Parameters();
    auto q = logit_.Parameters();
    p.insert(p.end(), q.begin(), q.end());
    return p;
  }
  void SetFrozen(bool f) {
    score_.SetFrozen(f);
    logit_.SetFrozen(f);
  }

 private:
  double ratio_ = 0.6;
  Linear score_;
  Linear logit_;
};

}  // namespace glint::gnn
