#include "nlp/lexicon.h"

namespace glint::nlp {

const char* PosName(Pos pos) {
  switch (pos) {
    case Pos::kNoun: return "NOUN";
    case Pos::kVerb: return "VERB";
    case Pos::kAdjective: return "ADJ";
    case Pos::kAdverb: return "ADV";
    case Pos::kAdposition: return "ADP";
    case Pos::kDeterminer: return "DET";
    case Pos::kSconj: return "SCONJ";
    case Pos::kCconj: return "CCONJ";
    case Pos::kPronoun: return "PRON";
    case Pos::kNumber: return "NUM";
    case Pos::kParticle: return "PART";
    case Pos::kProperNoun: return "PROPN";
    case Pos::kOther: return "X";
  }
  return "X";
}

const Lexicon& Lexicon::Instance() {
  static const Lexicon* lexicon = new Lexicon();
  return *lexicon;
}

Lexicon::Lexicon() {
  // ---- Function words -----------------------------------------------------
  AddWords(Pos::kDeterminer, {"the", "a", "an", "any", "all", "every", "some"});
  AddWords(Pos::kSconj, {"if", "when", "whenever", "while", "after", "before",
                         "until", "once"});
  AddWords(Pos::kCconj, {"and", "or", "but", "then"});
  AddWords(Pos::kAdposition,
           {"in", "on", "at", "to", "from", "of", "above", "below", "between",
            "during", "for", "with", "by", "into", "near"});
  AddWords(Pos::kPronoun, {"it", "they", "them", "i", "you", "my", "your"});
  AddWords(Pos::kParticle, {"not", "no"});
  for (const char* w :
       {"the", "a", "an", "is", "are", "be", "to", "of", "and", "or", "if",
        "when", "then", "it", "at", "in", "on", "for", "with", "my", "your",
        "i", "you", "that", "this", "please"}) {
    stop_words_.insert(w);
  }

  // ---- Verbs: synonym clusters (actions on devices) -----------------------
  AddCluster("power_on", {"turn_on", "activate", "enable", "start", "switch_on",
                          "power"});
  AddCluster("power_off",
             {"turn_off", "deactivate", "disable", "stop", "switch_off",
              "shut_off"});
  AddCluster("open_act", {"open", "raise", "uncover"});
  AddCluster("close_act", {"close", "shut", "lower"});
  AddCluster("lock_act", {"lock", "secure"});
  AddCluster("unlock_act", {"unlock", "unlatch"});
  AddCluster("detect_act", {"detect", "sense", "notice", "observe"});
  AddCluster("notify_act", {"notify", "send", "alert", "text", "email",
                            "report", "announce"});
  AddCluster("play_act", {"play", "stream"});
  AddCluster("set_act", {"set", "adjust", "change", "configure"});
  AddCluster("dim_act", {"dim", "darken"});
  AddCluster("brighten_act", {"brighten", "lighten"});
  AddCluster("increase_act", {"increase", "rise", "raise_level", "grow"});
  AddCluster("decrease_act", {"decrease", "drop", "fall", "reduce"});
  AddCluster("arrive_act", {"arrive", "enter", "come"});
  AddCluster("leave_act", {"leave", "depart", "exit"});
  AddCluster("arm_act", {"arm"});
  AddCluster("disarm_act", {"disarm"});
  AddCluster("record_act", {"record", "capture", "snapshot_act"});
  AddCluster("beep_act", {"beep", "ring", "chime", "sound_act", "buzz"});
  AddCluster("run_act", {"run", "execute", "trigger", "launch"});
  AddCluster("heat_act", {"heat", "warm", "preheat"});
  AddCluster("cool_act", {"cool", "chill"});
  AddCluster("water_act", {"water", "irrigate", "sprinkle"});
  AddCluster("clean_act", {"clean", "vacuum_act", "sweep"});
  for (const char* w :
       {"turn_on", "activate", "enable", "start", "switch_on", "power",
        "turn_off", "deactivate", "disable", "stop", "switch_off", "shut_off",
        "open", "raise", "uncover", "close", "shut", "lower", "lock", "secure",
        "unlock", "unlatch", "detect", "sense", "notice", "observe", "notify",
        "send", "alert", "text", "email", "report", "announce", "play",
        "stream", "set", "adjust", "change", "configure", "dim", "darken",
        "brighten", "lighten", "increase", "rise", "grow", "decrease", "drop",
        "fall", "reduce", "arrive", "enter", "come", "leave", "depart", "exit",
        "arm", "disarm", "record", "capture", "beep", "ring", "chime", "buzz",
        "run", "execute", "trigger", "launch", "heat", "warm", "preheat",
        "cool", "chill", "water", "irrigate", "sprinkle", "clean", "sweep",
        "turn", "keep", "make", "check", "unlocked", "locked", "opened",
        "closed", "turned", "playing", "beeping", "detected", "armed",
        "disarmed", "occupied"}) {
    pos_.emplace(w, Pos::kVerb);
  }

  // ---- Device nouns & hypernym taxonomy -----------------------------------
  AddHypernym("device",
              {"light", "lock", "window", "door", "sensor", "appliance",
               "thermostat", "camera", "speaker", "switch", "plug", "valve",
               "button", "assistant", "blind", "garage"});
  AddHypernym("light", {"bulb", "lamp", "chandelier", "nightlight"});
  AddHypernym("sensor",
              {"motion_sensor", "contact_sensor", "temperature_sensor",
               "smoke_alarm", "humidity_sensor", "presence_sensor",
               "leak_sensor", "co_detector", "doorbell"});
  AddHypernym("appliance",
              {"ac", "heater", "oven", "humidifier", "dehumidifier", "fan",
               "tv", "vacuum", "sprinkler", "coffee_maker", "washer", "dryer",
               "fridge", "dishwasher", "kettle"});
  AddHypernym("speaker", {"alexa", "echo", "soundbar"});
  AddHypernym("opening", {"window", "door", "garage", "blind", "gate"});

  for (const char* w :
       {"device", "light", "lights", "lock", "window", "windows", "door",
        "doors", "sensor", "appliance", "thermostat", "camera", "speaker",
        "switch", "plug", "valve", "button", "assistant", "blind", "blinds",
        "garage", "bulb", "lamp", "chandelier", "nightlight", "motion_sensor",
        "contact_sensor", "temperature_sensor", "smoke_alarm",
        "humidity_sensor", "presence_sensor", "leak_sensor", "co_detector",
        "doorbell", "ac", "heater", "oven", "humidifier", "dehumidifier",
        "fan", "tv", "vacuum", "sprinkler", "coffee_maker", "washer", "dryer",
        "fridge", "dishwasher", "kettle", "echo", "soundbar", "gate",
        "opening", "temperature", "humidity", "smoke", "motion", "presence",
        "brightness", "sound", "music", "movie", "movies", "notification",
        "snapshot", "alarm", "state", "mode", "home", "house", "room",
        "bedroom", "kitchen", "bathroom", "living_room", "hallway", "garden",
        "lawn", "sun", "sunrise", "sunset", "midnight", "noon", "morning",
        "evening", "night", "time", "timer", "schedule", "weather", "rain",
        "wind", "co", "leak", "water_level", "energy", "power_usage", "scene",
        "routine", "command", "voice", "user", "guest", "visitor", "pet",
        "degree", "degrees", "percent", "level", "status", "condition",
        "heating", "cooling", "occupancy", "email", "message", "calendar",
        "event", "spreadsheet", "row", "forecast", "feed", "post", "tweet"}) {
    pos_.emplace(w, Pos::kNoun);
  }

  // Map plural forms into their singular clusters for similarity purposes.
  AddCluster("light_obj", {"light", "lights", "bulb", "lamp"});
  AddCluster("window_obj", {"window", "windows"});
  AddCluster("door_obj", {"door", "doors", "gate"});
  AddCluster("blind_obj", {"blind", "blinds"});
  AddCluster("movie_obj", {"movie", "movies", "music"});
  AddCluster("home_obj", {"home", "house"});
  AddCluster("temp_obj", {"temperature", "thermostat"});

  // ---- Meronymy (part-of) --------------------------------------------------
  AddMeronym("door", {"lock", "doorbell", "contact_sensor"});
  AddMeronym("house", {"room", "door", "window", "garage", "garden"});
  AddMeronym("room",
             {"light", "window", "door", "thermostat", "tv", "speaker"});
  AddMeronym("garden", {"sprinkler", "lawn", "gate"});
  AddMeronym("window", {"blind", "contact_sensor"});

  // ---- Physical channels ----------------------------------------------------
  AddChannel("temperature", {"temperature", "thermostat", "ac", "heater",
                             "oven", "temperature_sensor", "degree",
                             "degrees", "heating", "cooling", "heat", "warm",
                             "cool", "preheat"});
  AddChannel("humidity", {"humidity", "humidifier", "dehumidifier",
                          "humidity_sensor"});
  AddChannel("smoke", {"smoke", "smoke_alarm", "co", "co_detector"});
  AddChannel("motion", {"motion", "motion_sensor", "vacuum", "pet",
                        "visitor"});
  AddChannel("illuminance", {"light", "lights", "bulb", "lamp", "brightness",
                             "sun", "sunrise", "sunset", "dim", "brighten",
                             "nightlight", "chandelier"});
  AddChannel("sound", {"sound", "music", "speaker", "alexa", "echo",
                       "soundbar", "tv", "movie", "movies", "beep", "ring",
                       "chime", "buzz", "play", "stream"});
  AddChannel("contact", {"window", "windows", "door", "doors", "garage",
                         "gate", "contact_sensor", "blind", "blinds", "open",
                         "close", "shut"});
  AddChannel("lock_state", {"lock", "unlock", "locked", "unlocked",
                            "secure"});
  AddChannel("presence", {"presence", "presence_sensor", "arrive", "leave",
                          "home", "user", "guest", "occupancy", "occupied"});
  AddChannel("water", {"leak", "leak_sensor", "sprinkler", "valve", "water",
                       "irrigate", "sprinkle", "washer", "rain"});
  AddChannel("power", {"plug", "switch", "energy", "power_usage",
                       "coffee_maker", "kettle"});
  AddChannel("security", {"arm", "disarm", "armed", "disarmed", "alarm",
                          "camera", "snapshot", "record", "capture",
                          "notification", "notify", "alert"});
  AddChannel("time", {"time", "timer", "schedule", "midnight", "noon",
                      "morning", "evening", "night", "sunrise", "sunset"});
  AddChannel("digital", {"email", "message", "calendar", "event",
                         "spreadsheet", "row", "forecast", "feed", "post",
                         "tweet", "weather", "rain"});

  // ---- Named entities (brands) — discarded by Algorithm 1 ------------------
  for (const char* w : {"wyze", "philips", "hue", "samsung", "nest", "ring_brand",
                        "ecobee", "tplink", "sonos", "arlo", "eufy", "lifx"}) {
    named_entities_.insert(w);
    pos_.emplace(w, Pos::kProperNoun);
  }

  // ---- Adjectives / adverbs -------------------------------------------------
  AddWords(Pos::kAdjective,
           {"smart", "outdoor", "indoor", "outside", "inside", "high", "low",
            "hot", "cold", "warm_adj", "bright", "dark", "manual", "automatic",
            "armed_adj", "away", "asleep", "active", "inactive", "wet", "dry",
            "loud", "quiet", "front", "back", "new", "old", "horror",
            "living", "every_adj"});
  AddWords(Pos::kAdverb, {"automatically", "immediately", "slowly", "quickly",
                          "daily", "again", "forever"});
}

void Lexicon::AddWords(Pos pos, const std::vector<std::string>& words) {
  for (const auto& w : words) pos_.emplace(w, pos);
}

void Lexicon::AddCluster(const std::string& cluster,
                         const std::vector<std::string>& words) {
  for (const auto& w : words) cluster_[w] = cluster;
}

void Lexicon::AddHypernym(const std::string& parent,
                          const std::vector<std::string>& children) {
  for (const auto& c : children) hypernym_parent_[c] = parent;
}

void Lexicon::AddMeronym(const std::string& whole,
                         const std::vector<std::string>& parts) {
  auto& v = meronym_parts_[whole];
  v.insert(v.end(), parts.begin(), parts.end());
}

void Lexicon::AddChannel(const std::string& channel,
                         const std::vector<std::string>& words) {
  for (const auto& w : words) channel_.emplace(w, channel);
}

Pos Lexicon::PosOf(const std::string& word) const {
  auto it = pos_.find(word);
  return it == pos_.end() ? Pos::kOther : it->second;
}

bool Lexicon::Contains(const std::string& word) const {
  return pos_.count(word) > 0;
}

const std::string& Lexicon::ClusterOf(const std::string& word) const {
  auto it = cluster_.find(word);
  return it == cluster_.end() ? empty_ : it->second;
}

bool Lexicon::AreSynonyms(const std::string& a, const std::string& b) const {
  if (a == b) return true;
  const std::string& ca = ClusterOf(a);
  return !ca.empty() && ca == ClusterOf(b);
}

bool Lexicon::IsHypernym(const std::string& ancestor,
                         const std::string& word) const {
  std::string cur = word;
  // The taxonomy is a forest of depth <= 4; walk to the root.
  for (int hops = 0; hops < 8; ++hops) {
    auto it = hypernym_parent_.find(cur);
    if (it == hypernym_parent_.end()) return false;
    if (it->second == ancestor) return true;
    cur = it->second;
  }
  return false;
}

bool Lexicon::HypernymRelated(const std::string& a,
                              const std::string& b) const {
  if (IsHypernym(a, b) || IsHypernym(b, a)) return true;
  auto ia = hypernym_parent_.find(a);
  auto ib = hypernym_parent_.find(b);
  return ia != hypernym_parent_.end() && ib != hypernym_parent_.end() &&
         ia->second == ib->second;
}

bool Lexicon::IsMeronym(const std::string& part,
                        const std::string& whole) const {
  auto it = meronym_parts_.find(whole);
  if (it == meronym_parts_.end()) return false;
  for (const auto& p : it->second) {
    if (p == part || IsMeronym(part, p)) return true;
  }
  return false;
}

bool Lexicon::MeronymRelated(const std::string& a,
                             const std::string& b) const {
  return IsMeronym(a, b) || IsMeronym(b, a);
}

bool Lexicon::IsNamedEntity(const std::string& word) const {
  return named_entities_.count(word) > 0;
}

bool Lexicon::IsStopWord(const std::string& word) const {
  return stop_words_.count(word) > 0;
}

const std::string& Lexicon::ChannelOf(const std::string& word) const {
  auto it = channel_.find(word);
  return it == channel_.end() ? empty_ : it->second;
}

std::vector<std::string> Lexicon::Words() const {
  std::vector<std::string> out;
  out.reserve(pos_.size());
  for (const auto& [w, p] : pos_) out.push_back(w);
  return out;
}

}  // namespace glint::nlp
