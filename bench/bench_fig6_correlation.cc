// Regenerates Figure 6: accuracy / precision / recall / F1 distributions of
// the five rule-correlation classifiers (SVC, MLP, RForest, KNN, GBoost)
// under 10-fold cross validation with balanced class weights, on
// Algorithm-1 features of labeled action-trigger pairs.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "correlation/features.h"
#include "ml/decision_tree.h"
#include "ml/kfold.h"
#include "ml/knn.h"
#include "ml/linear_svc.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT

namespace {

struct ModelRow {
  const char* name;
  std::function<std::unique_ptr<ml::Classifier>()> factory;
  // Paper's Fig. 6 medians (approximate, read off the box plots).
  double paper_acc, paper_f1;
};

void PrintDistribution(const char* metric,
                       const std::vector<std::vector<double>>& per_model,
                       const std::vector<ModelRow>& rows) {
  TablePrinter t({"classifier", std::string(metric) + " mean", "stddev",
                  "min", "max"});
  for (size_t i = 0; i < rows.size(); ++i) {
    auto s = ml::Summarize(per_model[i]);
    t.AddRow({rows[i].name, StrFormat("%.3f", s.mean),
              StrFormat("%.3f", s.stddev), StrFormat("%.3f", s.min),
              StrFormat("%.3f", s.max)});
  }
  t.Print();
}

}  // namespace

int main() {
  Banner("Figure 6: rule correlation discovery, 5 classifiers x 10-fold CV",
         "Fig. 6 + Sec. 4.1");

  auto corpus = DefaultCorpus();
  correlation::FeatureExtractor extractor(&WordModel());
  correlation::PairDatasetConfig pc;
  pc.num_positive = 560;   // 1:10 scale of the paper's 5,600
  pc.num_negative = 800;   // 1:10 scale of the paper's 8,000
  std::printf("building %d labeled action-trigger pairs (Algorithm 1 "
              "features, dim=%zu)...\n",
              pc.num_positive + pc.num_negative, extractor.Dim());
  ml::Dataset pairs = correlation::BuildPairDataset(corpus, extractor, pc);

  std::vector<ModelRow> rows = {
      {"SVC", [] { return std::unique_ptr<ml::Classifier>(new ml::LinearSvc()); },
       0.96, 0.93},
      {"MLP",
       [] {
         ml::Mlp::Params p;
         p.epochs = 35;
         return std::unique_ptr<ml::Classifier>(new ml::Mlp(p));
       },
       0.982, 0.97},
      {"RForest",
       [] { return std::unique_ptr<ml::Classifier>(new ml::RandomForest()); },
       0.984, 0.98},
      {"KNN", [] { return std::unique_ptr<ml::Classifier>(new ml::Knn()); },
       0.95, 0.93},
      {"GBoost",
       [] {
         return std::unique_ptr<ml::Classifier>(new ml::GradientBoosting());
       },
       0.97, 0.95},
  };

  std::vector<std::vector<double>> acc(rows.size()), prec(rows.size()),
      rec(rows.size()), f1(rows.size());
  Rng rng(606);
  for (size_t i = 0; i < rows.size(); ++i) {
    Rng fold_rng = rng.Fork();
    auto metrics = ml::CrossValidate(pairs, 10, rows[i].factory, &fold_rng);
    for (const auto& m : metrics) {
      acc[i].push_back(m.accuracy);
      prec[i].push_back(m.precision);
      rec[i].push_back(m.recall);
      f1[i].push_back(m.f1);
    }
    std::printf("  %s done\n", rows[i].name);
  }

  PrintDistribution("accuracy", acc, rows);
  PrintDistribution("precision", prec, rows);
  PrintDistribution("recall", rec, rows);
  PrintDistribution("f1", f1, rows);

  TablePrinter cmp({"classifier", "paper acc (median)", "ours acc (mean)",
                    "paper f1", "ours f1"});
  for (size_t i = 0; i < rows.size(); ++i) {
    cmp.AddRow({rows[i].name, StrFormat("%.3f", rows[i].paper_acc),
                StrFormat("%.3f", ml::Summarize(acc[i]).mean),
                StrFormat("%.3f", rows[i].paper_f1),
                StrFormat("%.3f", ml::Summarize(f1[i]).mean)});
  }
  cmp.Print();
  std::printf("paper shape: all five classifiers land in the >0.9 band; MLP\n"
              "and RForest lead, so the MLP+RForest+KNN ensemble labels the\n"
              "remaining unlabeled pairs (Sec. 4.1).\n");
  return 0;
}
