#include "graph/builder.h"

#include <cmath>

#include "graph/threat_analyzer.h"
#include "obs/obs.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace glint::graph {

GraphBuilder::GraphBuilder(Config config,
                           const nlp::EmbeddingModel* word_model,
                           const nlp::EmbeddingModel* sentence_model)
    : config_(config),
      word_model_(word_model),
      sentence_model_(sentence_model),
      rng_(config.seed) {
  GLINT_CHECK(word_model_ != nullptr);
  GLINT_CHECK(sentence_model_ != nullptr);
  edge_pred_ = [](const rules::Rule& a, const rules::Rule& b) {
    return rules::RuleTriggersRule(a, b);
  };
}

bool ShareDevice(const rules::Rule& a, const rules::Rule& b) {
  for (const auto& ai : a.actions) {
    for (const auto& bi : b.actions) {
      if (ai.device != bi.device) continue;
      if (rules::IsHouseWideChannel(rules::StateChannelOf(ai.device)) ||
          a.location == b.location) {
        return true;
      }
    }
  }
  return false;
}

void GraphBuilder::AddEdges(const std::vector<rules::Rule>& rs,
                            InteractionGraph* g) const {
  for (int i = 0; i < g->num_nodes(); ++i) {
    for (int j = 0; j < g->num_nodes(); ++j) {
      if (i == j) continue;
      if (edge_pred_(rs[static_cast<size_t>(i)], rs[static_cast<size_t>(j)])) {
        g->AddEdge(i, j);
      } else if (config_.device_edges && i < j &&
                 ShareDevice(rs[static_cast<size_t>(i)],
                             rs[static_cast<size_t>(j)])) {
        g->AddEdge(i, j);
        g->AddEdge(j, i);
      }
    }
  }
}

Node GraphBuilder::MakeNode(const rules::Rule& rule) const {
  Node node;
  node.rule = rule;
  node.type = NodeTypeOf(rule.platform);
  // Features depend only on (type, text); memoize on that key. The rule
  // (with its id) is copied into the node fresh each call.
  const uint64_t key =
      HashString(rule.text.data(), rule.text.size()) ^
      (node.type == 1 ? 0x9e3779b97f4a7c15ULL : 0);
  {
    std::lock_guard<std::mutex> lk(feature_mu_);
    auto it = feature_cache_.find(key);
    if (it != feature_cache_.end()) {
      GLINT_OBS_COUNT("glint.graph.feature_cache.hits", 1);
      node.features = it->second;
      return node;
    }
  }
  GLINT_OBS_COUNT("glint.graph.feature_cache.misses", 1);
  node.features = node.type == 1 ? sentence_model_->EncodeSentence(rule.text)
                                 : word_model_->EmbedSentence(rule.text);
  std::lock_guard<std::mutex> lk(feature_mu_);
  feature_cache_.try_emplace(key, node.features);
  return node;
}

InteractionGraph GraphBuilder::BuildGraph(const std::vector<rules::Rule>& pool) {
  return BuildGraphWith(pool, &rng_);
}

InteractionGraph GraphBuilder::BuildGraphWith(
    const std::vector<rules::Rule>& pool, Rng* rng) const {
  GLINT_CHECK(!pool.empty());
  const double u = rng->Uniform();
  const int n = config_.min_nodes +
                static_cast<int>(std::pow(u, config_.size_skew) *
                                 (config_.max_nodes - config_.min_nodes));

  std::vector<rules::Rule> chosen;
  chosen.push_back(rng->Pick(pool));
  while (static_cast<int>(chosen.size()) < n) {
    bool chained = false;
    if (rng->Chance(config_.chain_prob)) {
      // Grow from a random existing node: find a pool rule correlated with
      // it in either direction.
      const rules::Rule& anchor = chosen[rng->Below(chosen.size())];
      for (int t = 0; t < config_.chain_tries && !chained; ++t) {
        const rules::Rule& cand = pool[rng->Below(pool.size())];
        if (cand.id == anchor.id) continue;
        if (edge_pred_(anchor, cand) || edge_pred_(cand, anchor)) {
          chosen.push_back(cand);
          chained = true;
        }
      }
    }
    if (!chained) chosen.push_back(rng->Pick(pool));
  }

  InteractionGraph g;
  for (const auto& r : chosen) g.AddNode(MakeNode(r));
  AddEdges(chosen, &g);
  ThreatAnalyzer::Label(&g);
  return g;
}

GraphDataset GraphBuilder::BuildDataset(const std::vector<rules::Rule>& pool,
                                        int num_graphs) {
  GraphDataset ds;
  ds.graphs.resize(static_cast<size_t>(num_graphs));
  // One independent RNG stream per graph, seeded from the builder seed and
  // the graph index: graph i is the same no matter which thread builds it.
  ParallelFor(0, num_graphs, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Rng rng(config_.seed ^ static_cast<uint64_t>(i));
      ds.graphs[static_cast<size_t>(i)] = BuildGraphWith(pool, &rng);
    }
  });
  return ds;
}

InteractionGraph GraphBuilder::BuildFromRules(
    const std::vector<rules::Rule>& deployed) {
  GLINT_OBS_SPAN(span, "glint.graph.build_ms");
  InteractionGraph g;
  for (const auto& r : deployed) g.AddNode(MakeNode(r));
  AddEdges(deployed, &g);
  ThreatAnalyzer::Label(&g);
  return g;
}

InteractionGraph GraphBuilder::BuildRealTime(
    const std::vector<rules::Rule>& deployed, const EventLog& log,
    double now_hours, double window_hours) {
  GLINT_OBS_SPAN(span, "glint.graph.build_ms");
  InteractionGraph g;
  for (const auto& r : deployed) g.AddNode(MakeNode(r));

  const auto window = log.Window(now_hours, window_hours);
  // For each rule, the times at which its trigger fired and at which its
  // action effects were observed within the window.
  const size_t n = deployed.size();
  std::vector<std::vector<double>> trigger_times(n);
  std::vector<std::vector<double>> effect_times(n);
  for (const auto& e : window) {
    for (size_t i = 0; i < n; ++i) {
      if (EventFiresTrigger(e, deployed[i])) {
        trigger_times[i].push_back(e.time_hours);
      }
      for (const auto& a : deployed[i].actions) {
        if (e.device == a.device &&
            rules::CommandAssertsState(a.command, e.state)) {
          effect_times[i].push_back(e.time_hours);
        }
      }
    }
  }

  // Keep an edge i -> j only when semantics allow it AND rule i's effect
  // was observed strictly before a firing of rule j's trigger.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (!edge_pred_(deployed[i], deployed[j])) continue;
      bool ordered = false;
      for (double te : effect_times[i]) {
        for (double tt : trigger_times[j]) {
          if (te <= tt && tt - te <= window_hours) ordered = true;
        }
      }
      if (ordered) {
        g.AddEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  if (config_.device_edges) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (ShareDevice(deployed[i], deployed[j])) {
          g.AddEdge(static_cast<int>(i), static_cast<int>(j));
          g.AddEdge(static_cast<int>(j), static_cast<int>(i));
        }
      }
    }
  }
  ThreatAnalyzer::Label(&g);
  return g;
}

}  // namespace glint::graph
