#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "ml/decision_tree.h"
#include "ml/isolation_forest.h"
#include "ml/kfold.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "ml/linear_svc.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/ocsvm.h"
#include "ml/pca.h"
#include "ml/scaler.h"

namespace glint::ml {
namespace {

// Two Gaussian blobs, linearly separable with margin.
Dataset MakeBlobs(int n_per_class, double separation, uint64_t seed,
                  size_t dim = 6) {
  Rng rng(seed);
  Dataset ds;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < n_per_class; ++i) {
      FloatVec x(dim);
      for (size_t d = 0; d < dim; ++d) {
        x[d] = static_cast<float>(rng.Gaussian(c == 1 ? separation : 0, 1.0));
      }
      ds.Add(std::move(x), c);
    }
  }
  return ds;
}

// XOR-style dataset (not linearly separable).
Dataset MakeXor(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  for (int i = 0; i < n; ++i) {
    const double a = rng.Gaussian(rng.Chance(0.5) ? 2 : -2, 0.5);
    const double b = rng.Gaussian(rng.Chance(0.5) ? 2 : -2, 0.5);
    ds.Add({static_cast<float>(a), static_cast<float>(b)},
           (a > 0) != (b > 0) ? 1 : 0);
  }
  return ds;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, PerfectPrediction) {
  auto m = BinaryMetrics({0, 1, 1, 0}, {0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, KnownConfusion) {
  // TP=1 FP=1 FN=1 TN=1 -> precision=recall=f1=0.5, acc=0.5
  auto m = BinaryMetrics({1, 1, 0, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(Metrics, AllNegativePredictionsGiveZeroPrecision) {
  auto m = BinaryMetrics({1, 1, 0}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(Metrics, WeightedAveragesBySupport) {
  // Class 0 has 3 samples (all right), class 1 has 1 (wrong):
  // weighted recall = 0.75*1 + 0.25*0 = 0.75.
  auto m = WeightedMetrics({0, 0, 0, 1}, {0, 0, 0, 0}, 2);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.75);
  EXPECT_DOUBLE_EQ(m.recall, 0.75);
}

TEST(Metrics, SummarizeStats) {
  auto s = Summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

// ---------------------------------------------------------------------------
// Scaler / dataset helpers
// ---------------------------------------------------------------------------

TEST(Scaler, ZeroMeanUnitVariance) {
  StandardScaler s;
  std::vector<FloatVec> xs{{0, 10}, {2, 20}, {4, 30}};
  s.Fit(xs);
  s.TransformInPlace(&xs);
  double mean0 = 0;
  for (const auto& x : xs) mean0 += x[0];
  EXPECT_NEAR(mean0 / 3, 0.0, 1e-6);
}

TEST(Scaler, ConstantFeatureSafe) {
  StandardScaler s;
  std::vector<FloatVec> xs{{5, 1}, {5, 2}};
  s.Fit(xs);
  auto t = s.Transform({5, 1.5});
  EXPECT_FLOAT_EQ(t[0], 0.f);  // centred, unit scale
}

TEST(DatasetHelpers, BalancedClassWeightsInverse) {
  auto w = BalancedClassWeights({0, 0, 0, 1}, 2);
  EXPECT_GT(w[1], w[0]);
  EXPECT_NEAR(w[0] * 3 + w[1] * 1, 4.0, 1e-9);  // reweighted mass preserved
}

TEST(DatasetHelpers, OversampleDoublesMinority) {
  Dataset ds = MakeBlobs(10, 3, 1);
  // Remove most of class 1 to create imbalance.
  Dataset imb;
  int kept1 = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.y[i] == 1 && kept1 >= 3) continue;
    kept1 += ds.y[i] == 1;
    imb.Add(ds.x[i], ds.y[i]);
  }
  Rng rng(2);
  Dataset over = Oversample(imb, 1, 2.0, &rng);
  int n1 = 0;
  for (int y : over.y) n1 += y;
  EXPECT_EQ(n1, 6);
}

TEST(DatasetHelpers, TrainTestSplitPartitions) {
  Dataset ds = MakeBlobs(50, 3, 3);
  Rng rng(4);
  auto split = TrainTestSplit(ds, 0.8, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  EXPECT_EQ(split.train.size(), 80u);
}

// ---------------------------------------------------------------------------
// Classifiers (parameterized over implementations)
// ---------------------------------------------------------------------------

using Factory = std::function<std::unique_ptr<Classifier>()>;

class ClassifierSuite : public ::testing::TestWithParam<
                            std::pair<const char*, Factory>> {};

TEST_P(ClassifierSuite, LearnsSeparableBlobs) {
  auto clf = GetParam().second();
  Dataset train = MakeBlobs(80, 4.0, 11);
  Dataset test = MakeBlobs(40, 4.0, 12);
  clf->Fit(train, BalancedClassWeights(train.y, 2));
  auto m = BinaryMetrics(test.y, clf->PredictBatch(test.x));
  EXPECT_GT(m.accuracy, 0.92) << GetParam().first;
}

TEST_P(ClassifierSuite, ProbaMonotoneWithClass) {
  auto clf = GetParam().second();
  Dataset train = MakeBlobs(80, 4.0, 13);
  clf->Fit(train, {});
  // Deep inside each blob the probability ordering must hold.
  FloatVec neg(6, 0.f), pos(6, 4.f);
  EXPECT_LT(clf->PredictProba(neg), clf->PredictProba(pos))
      << GetParam().first;
}

TEST_P(ClassifierSuite, DeterministicAcrossRuns) {
  auto a = GetParam().second();
  auto b = GetParam().second();
  Dataset train = MakeBlobs(60, 3.0, 17);
  a->Fit(train, {});
  b->Fit(train, {});
  Dataset probe = MakeBlobs(20, 3.0, 18);
  EXPECT_EQ(a->PredictBatch(probe.x), b->PredictBatch(probe.x))
      << GetParam().first;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ClassifierSuite,
    ::testing::Values(
        std::make_pair("svc",
                       Factory([] {
                         return std::unique_ptr<Classifier>(new LinearSvc());
                       })),
        std::make_pair("mlp",
                       Factory([] {
                         Mlp::Params p;
                         p.epochs = 40;
                         return std::unique_ptr<Classifier>(new Mlp(p));
                       })),
        std::make_pair("knn",
                       Factory([] {
                         return std::unique_ptr<Classifier>(new Knn());
                       })),
        std::make_pair("rforest",
                       Factory([] {
                         return std::unique_ptr<Classifier>(
                             new RandomForest());
                       })),
        std::make_pair("gboost", Factory([] {
                         return std::unique_ptr<Classifier>(
                             new GradientBoosting());
                       }))));

TEST(NonLinearModels, SolveXor) {
  // Tree/ensemble/NN models must handle XOR; the linear SVC cannot.
  Dataset train = MakeXor(400, 21);
  Dataset test = MakeXor(100, 22);

  Mlp::Params mp;
  mp.epochs = 120;
  Mlp mlp(mp);
  mlp.Fit(train, {});
  EXPECT_GT(BinaryMetrics(test.y, mlp.PredictBatch(test.x)).accuracy, 0.9);

  RandomForest forest;
  forest.Fit(train, {});
  EXPECT_GT(BinaryMetrics(test.y, forest.PredictBatch(test.x)).accuracy, 0.9);

  GradientBoosting gb;
  gb.Fit(train, {});
  EXPECT_GT(BinaryMetrics(test.y, gb.PredictBatch(test.x)).accuracy, 0.9);

  LinearSvc svc;
  svc.Fit(train, {});
  EXPECT_LT(BinaryMetrics(test.y, svc.PredictBatch(test.x)).accuracy, 0.75);
}

TEST(ClassWeights, ShiftDecisionTowardMinority) {
  // Highly imbalanced data: without weights the minority recall collapses;
  // with balanced weights it recovers.
  Rng rng(31);
  Dataset train;
  for (int i = 0; i < 300; ++i) {
    train.Add({static_cast<float>(rng.Gaussian(0, 1))}, 0);
  }
  for (int i = 0; i < 15; ++i) {
    train.Add({static_cast<float>(rng.Gaussian(2.0, 1))}, 1);
  }
  Dataset test;
  for (int i = 0; i < 50; ++i) {
    test.Add({static_cast<float>(rng.Gaussian(2.0, 1))}, 1);
  }
  LinearSvc plain;
  plain.Fit(train, {});
  LinearSvc weighted;
  weighted.Fit(train, BalancedClassWeights(train.y, 2));
  const double recall_plain =
      BinaryMetrics(test.y, plain.PredictBatch(test.x)).recall;
  const double recall_weighted =
      BinaryMetrics(test.y, weighted.PredictBatch(test.x)).recall;
  EXPECT_GT(recall_weighted, recall_plain);
}

// ---------------------------------------------------------------------------
// Decision tree internals
// ---------------------------------------------------------------------------

TEST(DecisionTree, FitsStepFunctionRegression) {
  std::vector<FloatVec> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<float>(i)});
    y.push_back(i < 50 ? 1.0 : 5.0);
  }
  DecisionTree tree;
  tree.FitRegressor(x, y);
  EXPECT_NEAR(tree.PredictValue({10}), 1.0, 1e-9);
  EXPECT_NEAR(tree.PredictValue({90}), 5.0, 1e-9);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Dataset ds = MakeBlobs(100, 1.0, 41, 4);
  DecisionTree::Params p;
  p.max_depth = 3;
  DecisionTree tree(p);
  tree.FitClassifier(ds.x, ds.y, {}, 2);
  EXPECT_LE(tree.Depth(), 3);
}

TEST(DecisionTree, PureNodeIsLeaf) {
  std::vector<FloatVec> x{{1}, {2}, {3}};
  std::vector<int> y{1, 1, 1};
  DecisionTree tree;
  tree.FitClassifier(x, y, {}, 2);
  EXPECT_EQ(tree.Depth(), 0);
  EXPECT_EQ(tree.PredictClass({5}), 1);
}

// ---------------------------------------------------------------------------
// KMeans
// ---------------------------------------------------------------------------

TEST(KMeansTest, SeparatesTwoBlobs) {
  Dataset ds = MakeBlobs(100, 8.0, 51, 2);
  KMeans::Params p;
  p.k = 2;
  KMeans km(p);
  km.Fit(ds.x);
  // Clusters must align with the ground-truth blobs (up to label swap).
  int agree = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    agree += km.labels()[i] == ds.y[i] ? 1 : 0;
  }
  const double rate = static_cast<double>(agree) / static_cast<double>(ds.size());
  EXPECT_TRUE(rate > 0.95 || rate < 0.05);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Dataset ds = MakeBlobs(60, 6.0, 53, 2);
  KMeans::Params p1;
  p1.k = 1;
  KMeans km1(p1);
  km1.Fit(ds.x);
  KMeans::Params p4;
  p4.k = 4;
  KMeans km4(p4);
  km4.Fit(ds.x);
  EXPECT_LT(km4.Inertia(ds.x), km1.Inertia(ds.x));
}

TEST(KMeansTest, AssignReturnsNearestCentroid) {
  KMeans::Params p;
  p.k = 2;
  KMeans km(p);
  km.Fit({{0, 0}, {0, 1}, {10, 10}, {10, 11}});
  const int a = km.Assign({0, 0.5});
  const int b = km.Assign({10, 10.5});
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// PCA
// ---------------------------------------------------------------------------

TEST(PcaTest, RecoversPrincipalDirection) {
  // Data varies mostly along (1, 1)/sqrt(2).
  Rng rng(61);
  std::vector<FloatVec> xs;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.Gaussian(0, 5);
    const double n = rng.Gaussian(0, 0.3);
    xs.push_back({static_cast<float>(t + n), static_cast<float>(t - n)});
  }
  Pca::Params p;
  p.num_components = 2;
  Pca pca(p);
  pca.Fit(xs);
  const auto& c0 = pca.components()[0];
  EXPECT_NEAR(std::abs(c0[0]), std::abs(c0[1]), 0.05);
  EXPECT_GT(pca.explained_variance()[0], 10 * pca.explained_variance()[1]);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Dataset ds = MakeBlobs(100, 2.0, 63, 5);
  Pca::Params p;
  p.num_components = 3;
  Pca pca(p);
  pca.Fit(ds.x);
  const auto& c = pca.components();
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(Norm(c[i]), 1.0, 1e-3);
    for (size_t j = i + 1; j < c.size(); ++j) {
      EXPECT_NEAR(Dot(c[i], c[j]), 0.0, 1e-3);
    }
  }
}

TEST(PcaTest, TransformReducesDimension) {
  Dataset ds = MakeBlobs(50, 2.0, 65, 8);
  Pca pca;
  pca.Fit(ds.x);
  EXPECT_EQ(pca.Transform(ds.x[0]).size(), 2u);
  EXPECT_EQ(pca.TransformBatch(ds.x).size(), ds.size());
}

// ---------------------------------------------------------------------------
// One-class SVM / isolation forest
// ---------------------------------------------------------------------------

TEST(OneClassSvmTest, FlagsFarOutliers) {
  Rng rng(71);
  std::vector<FloatVec> normal;
  for (int i = 0; i < 300; ++i) {
    normal.push_back({static_cast<float>(rng.Gaussian(0, 1)),
                      static_cast<float>(rng.Gaussian(0, 1))});
  }
  OneClassSvm svm;
  svm.Fit(normal);
  int inliers = 0;
  for (int i = 0; i < 100; ++i) {
    inliers += svm.Predict(normal[static_cast<size_t>(i)]) == 1 ? 1 : 0;
  }
  EXPECT_GT(inliers, 70);  // most training data inside the boundary
  EXPECT_EQ(svm.Predict({50, 50}), -1);
  EXPECT_EQ(svm.Predict({-40, 60}), -1);
}

TEST(IsolationForestTest, OutlierScoresHigher) {
  Rng rng(73);
  std::vector<FloatVec> normal;
  for (int i = 0; i < 256; ++i) {
    normal.push_back({static_cast<float>(rng.Gaussian(0, 1)),
                      static_cast<float>(rng.Gaussian(0, 1))});
  }
  IsolationForest forest;
  forest.Fit(normal);
  const double inlier_score = forest.Score({0, 0});
  const double outlier_score = forest.Score({8, -8});
  EXPECT_GT(outlier_score, inlier_score);
  EXPECT_GT(outlier_score, 0.6);
}

TEST(IsolationForestTest, ThresholdCalibration) {
  Rng rng(79);
  std::vector<FloatVec> normal;
  for (int i = 0; i < 300; ++i) {
    normal.push_back({static_cast<float>(rng.Gaussian(0, 1))});
  }
  IsolationForest forest;
  forest.Fit(normal);
  forest.FitThreshold(normal, 0.1);
  int flagged = 0;
  for (const auto& x : normal) flagged += forest.Predict(x) == -1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(flagged) / 300.0, 0.1, 0.05);
}

// ---------------------------------------------------------------------------
// K-fold CV
// ---------------------------------------------------------------------------

TEST(KFold, PartitionsAllIndices) {
  Rng rng(81);
  auto folds = KFoldSplit(103, 10, &rng);
  ASSERT_EQ(folds.size(), 10u);
  std::vector<int> seen(103, 0);
  for (const auto& f : folds) {
    for (size_t i : f.test) seen[i] += 1;
    EXPECT_EQ(f.train.size() + f.test.size(), 103u);
  }
  for (int c : seen) EXPECT_EQ(c, 1);  // each index in exactly one test fold
}

TEST(KFold, CrossValidateReturnsPerFoldMetrics) {
  Dataset ds = MakeBlobs(60, 4.0, 83);
  Rng rng(84);
  auto metrics = CrossValidate(
      ds, 5, [] { return std::unique_ptr<Classifier>(new Knn()); }, &rng);
  ASSERT_EQ(metrics.size(), 5u);
  for (const auto& m : metrics) EXPECT_GT(m.accuracy, 0.85);
}

TEST(KFold, GridSearchPicksBetterConfig) {
  Dataset ds = MakeXor(300, 85);
  Rng rng(86);
  // Config 0: linear SVC (bad on XOR). Config 1: random forest (good).
  std::vector<std::function<std::unique_ptr<Classifier>()>> factories = {
      [] { return std::unique_ptr<Classifier>(new LinearSvc()); },
      [] { return std::unique_ptr<Classifier>(new RandomForest()); },
  };
  EXPECT_EQ(GridSearch(ds, 4, factories, &rng), 1u);
}

}  // namespace
}  // namespace glint::ml
