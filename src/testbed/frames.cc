#include "testbed/frames.h"

#include <cmath>
#include <unordered_map>

namespace glint::testbed {

FrameEncoder::FrameEncoder(std::vector<DeviceInstance> devices)
    : devices_(std::move(devices)) {}

float FrameEncoder::StateCode(const std::string& state) {
  static const std::unordered_map<std::string, float>* codes =
      new std::unordered_map<std::string, float>{
          {"off", 0},      {"on", 1},        {"open", 1},
          {"closed", 0},   {"locked", 1},    {"unlocked", 0},
          {"active", 1},   {"inactive", 0},  {"present", 1},
          {"away", 0},     {"beeping", 1},   {"quiet", 0},
          {"playing", 1},  {"stopped", 0},   {"armed", 1},
          {"disarmed", 0}, {"cleaning", 1},  {"idle", 0},
          {"high", 1},     {"low", -1},      {"normal", 0},
          {"bright", 1},   {"dim", 0.5f},    {"captured", 1},
          {"notified", 1}, {"pressed", 1},   {"set", 1},
      };
  auto it = codes->find(state);
  return it == codes->end() ? 0.5f : it->second;
}

FloatVec FrameEncoder::FrameAt(const graph::EventLog& log,
                               size_t event_index) const {
  const auto& events = log.events();
  GLINT_CHECK(event_index < events.size());
  const double t = events[event_index].time_hours;
  FloatVec frame;
  frame.reserve(frame_dim());
  for (const auto& dev : devices_) {
    const std::string state = log.StateAt(dev.type, dev.location, t);
    frame.push_back(state.empty() ? StateCode(dev.state) : StateCode(state));
  }
  // Hour-of-day feature (as a fraction) so diurnal structure is learnable.
  frame.push_back(static_cast<float>(std::fmod(t, 24.0) / 24.0));
  return frame;
}

std::vector<FloatVec> FrameEncoder::Windows(const graph::EventLog& log,
                                            int window) const {
  std::vector<FloatVec> out;
  const auto& events = log.events();
  if (events.size() < static_cast<size_t>(window)) return out;
  // Precompute per-event frames, then concatenate sliding windows.
  std::vector<FloatVec> frames;
  frames.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) frames.push_back(FrameAt(log, i));
  for (size_t i = 0; i + static_cast<size_t>(window) <= frames.size(); ++i) {
    FloatVec v;
    v.reserve(frame_dim() * static_cast<size_t>(window));
    for (int k = 0; k < window; ++k) {
      const auto& f = frames[i + static_cast<size_t>(k)];
      v.insert(v.end(), f.begin(), f.end());
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace glint::testbed
