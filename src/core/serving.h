#pragma once

#include <memory>
#include <vector>

#include "core/session.h"
#include "util/status.h"

namespace glint::core {

/// Multiplexes many DeploymentSessions (homes) over one shared
/// TrainedDetector — the "one detector, N homes" serving shape of the
/// ROADMAP's production target. Event ingestion is addressed per home;
/// InspectAll fans the per-home inspections out over the global ThreadPool.
///
/// Determinism: sessions are independent (each mutates only its own state;
/// the detector's memo caches store pure-function results), so InspectAll
/// returns bit-identical warnings for any thread count, in home order.
class ServingEngine {
 public:
  struct Config {
    DeploymentSession::Config session;
  };

  explicit ServingEngine(const TrainedDetector* detector,
                         Config config = Config());

  /// Registers a home with its deployed rules; returns the home index.
  int AddHome(const std::vector<rules::Rule>& deployed);

  size_t num_homes() const { return sessions_.size(); }
  bool has_home(int h) const {
    return h >= 0 && h < static_cast<int>(sessions_.size());
  }

  /// Checked accessors: an out-of-range home index is a programmer error
  /// and aborts loudly (GLINT_CHECK). Callers routing *untrusted* indices
  /// (CLI input, network frontends) use FindHome / TryOnEvent instead.
  DeploymentSession& home(int h);
  const DeploymentSession& home(int h) const;

  /// Status-style lookup: nullptr when `h` is out of range.
  DeploymentSession* FindHome(int h);
  const DeploymentSession* FindHome(int h) const;

  /// Routes one event to a home's session. Aborts on an invalid index.
  void OnEvent(int h, const graph::Event& e);

  /// Validating variant: InvalidArgument instead of aborting when `h` does
  /// not name a registered home.
  Status TryOnEvent(int h, const graph::Event& e);

  /// Inspects every home at `now` in parallel; result i belongs to home i.
  std::vector<ThreatWarning> InspectAll(double now_hours);

  /// Total rules deployed across all homes.
  size_t total_rules() const;

  /// Sum of every home's per-session counters (cache hit/miss, inspects,
  /// events) — the fleet-level half of a `--stats` report; pair it with
  /// obs::Registry::Global().TakeSnapshot() for stage latencies.
  DeploymentSession::CacheStats AggregateStats() const;

 private:
  const TrainedDetector* detector_;
  Config config_;
  /// unique_ptr for stable addresses across AddHome growth.
  std::vector<std::unique_ptr<DeploymentSession>> sessions_;
};

}  // namespace glint::core
