// Throughput bench for the parallel compute layer: graphs/sec for dataset
// build, ITGNN train-epoch, and inference at 1, 2, and hardware-concurrency
// threads. Emits one machine-readable JSON line (prefix BENCH_JSON) with the
// per-thread-count rates and speedups so the numbers can be tracked across
// commits.
//
// Usage: bench_throughput [--smoke]
//   --smoke  tiny sizes and a {1, current} thread sweep; used by
//            tools/check.sh under GLINT_THREADS=2.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gnn/ggraph.h"
#include "gnn/kernels.h"
#include "util/thread_pool.h"

// Global allocation counter (bench-binary-wide): lets the bench report the
// steady-state mallocs per training step / warm inference after the tape
// arena has absorbed the hot-path allocations.
namespace {
std::atomic<size_t> g_allocs{0};
}  // namespace

__attribute__((noinline)) void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t n) { return ::operator new(n); }
__attribute__((noinline)) void operator delete(void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// Nothrow forms too (libstdc++ temporary buffers use them): with every
// variant funneled through malloc/free, sanitizers see matched pairs.
__attribute__((noinline)) void* operator new(std::size_t n,
                                             const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
__attribute__((noinline)) void* operator new[](
    std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
__attribute__((noinline)) void operator delete(
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace glint::bench {
namespace {

/// Steady-state allocation stats for the tape hot paths, measured at one
/// thread so ParallelFor runs inline and counted allocations are the work
/// itself, not task dispatch.
struct TapeStats {
  double train_mallocs_per_step = 0;
  double infer_mallocs_per_graph = 0;
  size_t tape_nodes_per_step = 0;
  size_t arena_bytes_retained = 0;
};

TapeStats MeasureTapeStats(const std::vector<gnn::GnnGraph>& graphs) {
  ThreadPool::SetGlobalThreads(1);
  TapeStats out;

  gnn::ItgnnModel::Config mc;
  mc.seed = 7;
  gnn::ItgnnModel model(mc);
  size_t minority = 0;
  for (const auto& g : graphs) minority += static_cast<size_t>(g.label);

  // Same-call-shape difference: allocs(3 epochs) - allocs(1 epoch) is two
  // epochs of steady-state work — per-call setup (Adam state, sinks,
  // oversampled copies) cancels, and the first call doubles as the tape
  // warm-up. The residual is data-dependent graph work (VIPool coarsening
  // rebuilds pooled adjacencies whose structure depends on learned
  // scores); the tape itself allocates nothing (see gnn_tape_reuse_test).
  auto train_allocs = [&](int epochs) {
    gnn::TrainConfig tc;
    tc.epochs = epochs;
    const size_t before = g_allocs.load(std::memory_order_relaxed);
    gnn::Trainer(tc).TrainSupervised(&model, graphs);
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  const size_t one_epoch = train_allocs(1);
  const size_t three_epochs = train_allocs(3);
  const double trained_per_epoch =
      static_cast<double>(graphs.size()) +
      (gnn::TrainConfig().oversample_factor - 1.0) *
          static_cast<double>(minority);
  out.train_mallocs_per_step =
      static_cast<double>(three_epochs - one_epoch) /
      (2.0 * trained_per_epoch);

  // Warm single-graph inference (the serving classification path).
  const gnn::GnnGraph& g0 = graphs.front();
  gnn::Trainer::Predict(&model, g0);
  gnn::Trainer::Predict(&model, g0);  // warm
  const int reps = 20;
  const size_t before = g_allocs.load(std::memory_order_relaxed);
  for (int r = 0; r < reps; ++r) gnn::Trainer::Predict(&model, g0);
  out.infer_mallocs_per_graph =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed) - before) /
      reps;

  {
    gnn::ScopedTape lease;
    lease->set_freeze_leaves(true);
    model.Forward(lease.get(), g0);
    out.tape_nodes_per_step = lease->stats().nodes;
  }
  out.arena_bytes_retained = gnn::TapeArena::TotalBytesRetained();
  return out;
}

struct Rates {
  double build_gps = 0;   // graphs built per second
  double train_gps = 0;   // graphs trained per second (one epoch)
  double infer_gps = 0;   // graphs classified per second
};

Rates MeasureAt(int threads, const std::vector<rules::Rule>& pool,
                int num_graphs, int epochs) {
  ThreadPool::SetGlobalThreads(threads);
  Rates rates;

  auto t0 = std::chrono::steady_clock::now();
  graph::GraphDataset ds = BuildGraphs(pool, num_graphs, /*seed=*/77);
  rates.build_gps = num_graphs / Seconds(t0);

  std::vector<gnn::GnnGraph> graphs = gnn::ToGnnGraphs(ds);

  gnn::ItgnnModel::Config mc;
  mc.seed = 7;
  gnn::ItgnnModel model(mc);
  gnn::TrainConfig tc;
  tc.epochs = epochs;
  gnn::Trainer trainer(tc);
  t0 = std::chrono::steady_clock::now();
  trainer.TrainSupervised(&model, graphs);
  // TrainSupervised oversamples class 1 by tc.oversample_factor; report
  // per-epoch throughput over the actual trained set size.
  size_t minority = 0;
  for (const auto& g : graphs) minority += static_cast<size_t>(g.label);
  const double trained_per_epoch =
      static_cast<double>(graphs.size()) +
      (tc.oversample_factor - 1.0) * static_cast<double>(minority);
  rates.train_gps = trained_per_epoch * epochs / Seconds(t0);

  t0 = std::chrono::steady_clock::now();
  const int reps = 3;
  for (int r = 0; r < reps; ++r) {
    gnn::Trainer::Evaluate(&model, graphs);
  }
  rates.infer_gps = static_cast<double>(graphs.size()) * reps / Seconds(t0);
  return rates;
}

// ---- Kernel-backend / batched-inference section ------------------------

const int kBatchSizes[] = {1, 8, 64, 256};

/// Warm per-graph classification, exactly the serving shape: one pooled
/// tape lease, one Forward, one row softmax per graph.
double MeasureSequentialInfer(gnn::ItgnnModel* model,
                              const std::vector<const gnn::GnnGraph*>& cycle,
                              int total) {
  double sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < total; ++i) {
    gnn::ScopedTape tape;
    tape->set_freeze_leaves(true);
    auto r = model->Forward(tape.get(), *cycle[static_cast<size_t>(i) %
                                               cycle.size()]);
    double p[2];
    gnn::SoftmaxRowInto(r.logits, p);
    sink += p[1];
  }
  const double gps = total / Seconds(t0);
  return sink == -1 ? 0 : gps;  // keep the verdicts observable
}

/// Batched classification as InspectAllBatched drives it: batch assembly
/// (MakeGnnBatch) is *inside* the timed region, then one ForwardBatched and
/// a per-row softmax.
double MeasureBatchedInfer(gnn::ItgnnModel* model,
                           const std::vector<const gnn::GnnGraph*>& cycle,
                           int batch, int total) {
  double sink = 0;
  size_t cursor = 0;
  int done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < total) {
    std::vector<const gnn::GnnGraph*> members;
    members.reserve(static_cast<size_t>(batch));
    for (int i = 0; i < batch && done + i < total; ++i) {
      members.push_back(cycle[cursor++ % cycle.size()]);
    }
    const gnn::GnnBatch b = gnn::MakeGnnBatch(members);
    gnn::ScopedTape tape;
    tape->set_freeze_leaves(true);
    auto r = model->ForwardBatched(tape.get(), b);
    for (int row = 0; row < b.size(); ++row) {
      double p[2];
      gnn::SoftmaxRowInto(
          r.logits->value.data.data() + static_cast<size_t>(row) * 2, 2, p);
      sink += p[1];
    }
    done += b.size();
  }
  const double gps = done / Seconds(t0);
  return sink == -1 ? 0 : gps;
}

struct BackendRates {
  std::string name;
  double infer_gps = 0;
  std::vector<double> batched_infer_gps;  ///< at kBatchSizes
};

/// Sweeps every runtime-available kernel backend at one thread (pure
/// dispatch/tape amortization, no ParallelFor effects). Returns rates in
/// AvailableBackends() order (scalar first).
std::vector<BackendRates> MeasureBackends(
    const std::vector<gnn::GnnGraph>& graphs, int total) {
  ThreadPool::SetGlobalThreads(1);
  gnn::ItgnnModel::Config mc;
  mc.seed = 7;
  gnn::ItgnnModel model(mc);
  std::vector<const gnn::GnnGraph*> cycle;
  for (const auto& g : graphs) {
    if (g.num_nodes > 0) cycle.push_back(&g);
  }

  std::vector<BackendRates> out;
  for (gnn::kernels::Backend b : gnn::kernels::AvailableBackends()) {
    gnn::kernels::SetBackend(b);
    BackendRates r;
    r.name = gnn::kernels::BackendName();
    // Untimed warm-up: fault the tape arenas / caches in before timing.
    MeasureSequentialInfer(&model, cycle, std::min(total, 8));
    r.infer_gps = MeasureSequentialInfer(&model, cycle, total);
    for (int batch : kBatchSizes) {
      r.batched_infer_gps.push_back(
          MeasureBatchedInfer(&model, cycle, batch, total));
    }
    out.push_back(std::move(r));
  }
  gnn::kernels::SetBackend(gnn::kernels::AvailableBackends().back());
  return out;
}

int Run(bool smoke) {
  const int num_graphs = smoke ? 32 : 160;
  const int epochs = smoke ? 1 : 2;

  rules::CorpusConfig cc;
  cc.ifttt = smoke ? 400 : 1000;
  cc.alexa = smoke ? 80 : 200;
  cc.google_assistant = smoke ? 80 : 200;
  cc.home_assistant = smoke ? 80 : 200;
  cc.smartthings = smoke ? 40 : 100;
  std::vector<rules::Rule> pool = rules::CorpusGenerator(cc).Generate();

  const int initial = ThreadPool::Global().threads();
  std::vector<int> sweep = {1};
  if (smoke) {
    if (initial > 1) sweep.push_back(initial);
  } else {
    if (initial >= 2) sweep.push_back(2);
    if (ThreadPool::ConfiguredThreads() > 2) {
      sweep.push_back(ThreadPool::ConfiguredThreads());
    }
  }

  // Untimed warm-up: the first dataset build fills the shared embedding
  // word-vector caches; without this the later sweep entries look faster
  // for cache reasons, not thread-count reasons.
  (void)BuildGraphs(pool, num_graphs, /*seed=*/77);

  Banner("Throughput: build / train-epoch / inference vs. thread count",
         "Sec. 6.6 efficiency claims");
  std::printf("%8s %14s %14s %14s\n", "threads", "build g/s", "train g/s",
              "infer g/s");
  std::vector<Rates> results;
  for (int t : sweep) {
    results.push_back(MeasureAt(t, pool, num_graphs, epochs));
    const Rates& r = results.back();
    std::printf("%8d %14.1f %14.1f %14.1f\n", t, r.build_gps, r.train_gps,
                r.infer_gps);
  }
  // Tape memory stats on the same corpus (threads reset inside).
  const TapeStats tape = MeasureTapeStats(
      gnn::ToGnnGraphs(BuildGraphs(pool, num_graphs, /*seed=*/77)));

  // Kernel-backend sweep: warm per-graph inference vs block-diagonal
  // batched inference on every runtime-available backend, single-threaded.
  const int batched_total = smoke ? 256 : 512;
  const std::vector<BackendRates> backends = MeasureBackends(
      gnn::ToGnnGraphs(BuildGraphs(pool, num_graphs, /*seed=*/77)),
      batched_total);
  ThreadPool::SetGlobalThreads(initial);
  std::printf("\nkernel backends (1 thread): sequential vs batched infer g/s\n");
  std::printf("%8s %14s", "backend", "seq g/s");
  for (int b : kBatchSizes) std::printf("      batch=%-3d", b);
  std::printf("\n");
  for (const auto& r : backends) {
    std::printf("%8s %14.1f", r.name.c_str(), r.infer_gps);
    for (double g : r.batched_infer_gps) std::printf(" %14.1f", g);
    std::printf("\n");
  }
  // Dispatch-amortization gate: on the scalar backend (first entry — the
  // floor every host has), batching at >= 64 graphs must beat sequential
  // per-graph dispatch. A regression here means the batched path stopped
  // amortizing tape/dispatch overhead.
  const BackendRates& scalar = backends.front();
  const double scalar_b64 = scalar.batched_infer_gps[2];  // kBatchSizes[2]
  const bool amortization_ok = scalar_b64 > scalar.infer_gps;
  std::printf("scalar batch=64 speedup over sequential: %.2fx (%s)\n",
              scalar_b64 / scalar.infer_gps,
              amortization_ok ? "ok" : "REGRESSION");
  std::printf(
      "steady state: %.2f mallocs/train-step, %.2f mallocs/warm-infer, "
      "%zu tape nodes/step, %zu arena bytes retained\n",
      tape.train_mallocs_per_step, tape.infer_mallocs_per_graph,
      tape.tape_nodes_per_step, tape.arena_bytes_retained);

  // Machine-readable trajectory line.
  auto column = [&results](double Rates::* field) {
    std::vector<double> xs;
    for (const auto& r : results) xs.push_back(r.*field);
    return xs;
  };
  JsonWriter json;
  json.Str("bench", "throughput");
  json.Ints("threads", sweep);
  json.Nums("build_gps", column(&Rates::build_gps));
  json.Nums("train_gps", column(&Rates::train_gps));
  json.Nums("infer_gps", column(&Rates::infer_gps));
  json.Num("train_speedup", results.back().train_gps / results.front().train_gps,
           2);
  json.Num("infer_speedup", results.back().infer_gps / results.front().infer_gps,
           2);
  json.Num("mallocs_per_step", tape.train_mallocs_per_step, 2);
  json.Num("infer_mallocs_per_graph", tape.infer_mallocs_per_graph, 2);
  json.Num("tape_nodes_per_step",
           static_cast<double>(tape.tape_nodes_per_step), 0);
  json.Num("arena_bytes_retained",
           static_cast<double>(tape.arena_bytes_retained), 0);
  {
    std::string names = "[";
    for (size_t i = 0; i < backends.size(); ++i) {
      names += (i ? ",\"" : "\"") + backends[i].name + "\"";
    }
    json.Raw("kernel_backends", names + "]");
  }
  json.Ints("batch_sizes",
            std::vector<int>(kBatchSizes, kBatchSizes + 4));
  for (const auto& r : backends) {
    json.Num("infer_gps_" + r.name, r.infer_gps, 1);
    json.Nums("batched_infer_gps_" + r.name, r.batched_infer_gps);
  }
  json.Num("batched_speedup_scalar_b64", scalar_b64 / scalar.infer_gps, 2);
  json.Bool("batched_amortization_ok", amortization_ok);
  std::printf("BENCH_JSON %s\n", json.Render().c_str());
  return amortization_ok ? 0 : 1;
}

}  // namespace
}  // namespace glint::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return glint::bench::Run(smoke);
}
