#include "fleet/sharding.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/obs.h"

namespace glint::fleet {

namespace {

/// 64-bit FNV-1a over a byte string.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Murmur3-style avalanche finalizer. Raw FNV-1a of short, similar strings
/// ("home-0", "home-1", ...) barely stirs the high bits, and ring placement
/// compares full 64-bit values — without this mix, consecutive ids cluster
/// onto a handful of shards.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

uint64_t HashBytes(const void* data, size_t n) {
  return Mix64(Fnv1a64(data, n));
}

}  // namespace

uint64_t ShardedFleet::HashHomeId(const HomeId& id) {
  return HashBytes(id.data(), id.size());
}

ShardedFleet::ShardedFleet(const core::TrainedDetector* detector,
                           FleetConfig config)
    : config_(std::move(config)) {
  GLINT_CHECK(detector != nullptr);
  GLINT_CHECK(config_.num_shards >= 1);
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  ring_.reserve(static_cast<size_t>(config_.num_shards) * kVirtualNodes);
  for (int k = 0; k < config_.num_shards; ++k) {
    // Every shard gets the one shared engine config — the fleet level owns
    // the knobs, so shards cannot diverge.
    shards_.push_back(
        std::make_unique<core::ServingEngine>(detector, config_.engine));
    for (int v = 0; v < kVirtualNodes; ++v) {
      const std::string point =
          "shard-" + std::to_string(k) + "#" + std::to_string(v);
      ring_.push_back({HashBytes(point.data(), point.size()), k});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardedFleet::ShardOf(const HomeId& id) const {
  const uint64_t h = HashHomeId(id);
  // First ring point at or after h, wrapping to the ring start.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), RingPoint{h, -1},
      [](const RingPoint& a, const RingPoint& b) { return a.hash < b.hash; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

// ---- Durability ---------------------------------------------------------

Status ShardedFleet::Recover() {
  if (config_.state_dir.empty()) return Status::OK();
  // The per-shard Journal creates its own leaf directory; the fleet root
  // is ours to create.
  if (::mkdir(config_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + config_.state_dir + ": " +
                           std::strerror(errno));
  }
  for (int k = 0; k < num_shards(); ++k) {
    Status st = shards_[static_cast<size_t>(k)]->Recover(
        config_.state_dir + "/shard-" + std::to_string(k));
    if (!st.ok()) {
      return Status(st.code(), "shard " + std::to_string(k) +
                                   " recovery: " + st.message());
    }
  }
  return Status::OK();
}

Status ShardedFleet::Snapshot() {
  for (int k = 0; k < num_shards(); ++k) {
    auto& shard = *shards_[static_cast<size_t>(k)];
    if (!shard.durable()) continue;
    Status st = shard.Snapshot();
    if (!st.ok()) {
      return Status(st.code(), "shard " + std::to_string(k) +
                                   " snapshot: " + st.message());
    }
  }
  return Status::OK();
}

bool ShardedFleet::durable() const {
  for (const auto& s : shards_) {
    if (s->durable()) return true;
  }
  return false;
}

// ---- Home-addressed operations ------------------------------------------

Result<int> ShardedFleet::TryAddHome(const HomeId& id,
                                     const std::vector<rules::Rule>& deployed) {
  const int k = ShardOf(id);
  Result<int> local = shards_[static_cast<size_t>(k)]->TryAddHome(id, deployed);
  if (!local.ok()) return local.status();
  GLINT_OBS_COUNT("glint.fleet.homes_added", 1);
  return k;
}

Status ShardedFleet::TryAddRule(const HomeId& id, const rules::Rule& rule) {
  return shards_[static_cast<size_t>(ShardOf(id))]->TryAddRule(id, rule);
}

Status ShardedFleet::TryRemoveRule(const HomeId& id, int rule_id,
                                   bool* removed) {
  return shards_[static_cast<size_t>(ShardOf(id))]->TryRemoveRule(id, rule_id,
                                                                  removed);
}

Status ShardedFleet::TryOnEvent(const HomeId& id, const graph::Event& e) {
  return shards_[static_cast<size_t>(ShardOf(id))]->TryOnEvent(id, e);
}

Result<core::ThreatWarning> ShardedFleet::TryInspect(const HomeId& id,
                                                     double now_hours) {
  return shards_[static_cast<size_t>(ShardOf(id))]->TryInspect(id, now_hours);
}

bool ShardedFleet::has_home(const HomeId& id) const {
  return shards_[static_cast<size_t>(ShardOf(id))]->has_home(id);
}

// ---- Fleet-wide inspection ----------------------------------------------

FleetWarnings ShardedFleet::InspectAll(double now_hours, int max_batch) {
  GLINT_OBS_SPAN(span, "glint.fleet.inspect_all_ms");
  FleetWarnings out;
  out.ids.reserve(num_homes());
  out.warnings.reserve(num_homes());
  // Shard by shard, serially: each shard's InspectAllBatched already fans
  // the per-home stage over the global thread pool, and serial shard order
  // keeps the output layout a pure function of fleet state.
  for (const auto& shard : shards_) {
    std::vector<core::ThreatWarning> w =
        shard->InspectAllBatched(now_hours, max_batch);
    out.ids.insert(out.ids.end(), shard->home_ids().begin(),
                   shard->home_ids().end());
    out.warnings.insert(out.warnings.end(),
                        std::make_move_iterator(w.begin()),
                        std::make_move_iterator(w.end()));
  }
  return out;
}

// ---- Shard access & rollups ---------------------------------------------

core::ServingEngine& ShardedFleet::shard(int k) {
  GLINT_CHECK(k >= 0 && k < num_shards());
  return *shards_[static_cast<size_t>(k)];
}

const core::ServingEngine& ShardedFleet::shard(int k) const {
  GLINT_CHECK(k >= 0 && k < num_shards());
  return *shards_[static_cast<size_t>(k)];
}

size_t ShardedFleet::num_homes() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->num_homes();
  return n;
}

size_t ShardedFleet::total_rules() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->total_rules();
  return n;
}

core::DeploymentSession::CacheStats ShardedFleet::AggregateStats() const {
  core::DeploymentSession::CacheStats total;
  for (const auto& s : shards_) total += s->AggregateStats();
  return total;
}

void ShardedFleet::PublishShardGauges() const {
  auto& reg = obs::Registry::Global();
  for (int k = 0; k < num_shards(); ++k) PublishShardGauges(k);
  reg.GetGauge("glint.fleet.shards")->Set(num_shards());
  reg.GetGauge("glint.fleet.homes")->Set(static_cast<int64_t>(num_homes()));
}

void ShardedFleet::PublishShardGauges(int k) const {
  GLINT_CHECK(k >= 0 && k < num_shards());
  auto& reg = obs::Registry::Global();
  const auto& shard = *shards_[static_cast<size_t>(k)];
  const std::string prefix = "glint.fleet.shard" + std::to_string(k);
  reg.GetGauge(prefix + ".homes")
      ->Set(static_cast<int64_t>(shard.num_homes()));
  reg.GetGauge(prefix + ".rules")
      ->Set(static_cast<int64_t>(shard.total_rules()));
}

}  // namespace glint::fleet
