#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rules/rule.h"
#include "util/vecmath.h"

namespace glint::graph {

/// The ten interactive-threat types: six from prior work used as labeling
/// criteria (Sec. 4.2) and the four new types Glint discovered (Sec. 4.7).
enum class ThreatType {
  kNone = 0,
  // Classic (labeling criteria).
  kConditionBypass,
  kConditionBlock,
  kActionRevert,
  kActionConflict,
  kActionLoop,
  kGoalConflict,
  // New types surfaced via drifting samples.
  kActionBlock,
  kActionAblation,
  kTriggerIntake,
  kConditionDuplicate,
};
constexpr int kNumThreatTypes = 11;

const char* ThreatTypeName(ThreatType t);

/// A node: one automation rule with its semantic embedding. The embedding
/// dimension depends on the platform family — text platforms use the 300-d
/// word-vector space, voice platforms the 512-d sentence-encoder space —
/// which is what makes cross-platform graphs *heterogeneous*.
struct Node {
  rules::Rule rule;
  FloatVec features;
  /// Node type for metapath learning: 0 = text-rule platforms (IFTTT,
  /// SmartThings, Home Assistant), 1 = voice platforms (Alexa, Google
  /// Assistant).
  int type = 0;
};

/// Node type of a platform (see Node::type).
int NodeTypeOf(rules::Platform p);

/// Directed edge: the source rule's action can trigger the destination rule
/// ("action-trigger" correlation).
struct Edge {
  int src = 0;
  int dst = 0;
};

/// An interaction graph: rules as nodes, trigger-action correlations as
/// directed edges. The ground-truth label and threat types are attached by
/// the ThreatAnalyzer during dataset construction.
class InteractionGraph {
 public:
  InteractionGraph() = default;

  /// Adds a node, returns its index.
  int AddNode(Node node);

  /// Adds a directed edge src -> dst (deduplicated).
  void AddEdge(int src, int dst);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<Node>& nodes() const { return nodes_; }
  std::vector<Node>* mutable_nodes() { return &nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing neighbour indices of `v`.
  const std::vector<int>& OutNeighbors(int v) const;
  /// Incoming neighbour indices of `v`.
  const std::vector<int>& InNeighbors(int v) const;

  bool HasEdge(int src, int dst) const;

  /// True when node types are mixed (cross-platform graph).
  bool IsHeterogeneous() const;

  /// Ground-truth label: true = contains an interactive threat.
  bool vulnerable() const { return vulnerable_; }
  void set_vulnerable(bool v) { vulnerable_ = v; }

  /// Threat types present (set by the analyzer).
  const std::vector<ThreatType>& threat_types() const { return threat_types_; }
  void set_threat_types(std::vector<ThreatType> t) {
    threat_types_ = std::move(t);
  }

  /// True if the graph is weakly connected (singletons count as connected
  /// only for n <= 1).
  bool IsWeaklyConnected() const;

  /// Nodes flagged as threat culprits (for warnings / Fig. 3 display).
  const std::vector<int>& culprit_nodes() const { return culprits_; }
  void set_culprit_nodes(std::vector<int> c) { culprits_ = std::move(c); }

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  bool vulnerable_ = false;
  std::vector<ThreatType> threat_types_;
  std::vector<int> culprits_;
};

/// A collection of interaction graphs (one platform or heterogeneous).
struct GraphDataset {
  std::vector<InteractionGraph> graphs;

  size_t size() const { return graphs.size(); }
  int CountVulnerable() const {
    int n = 0;
    for (const auto& g : graphs) n += g.vulnerable() ? 1 : 0;
    return n;
  }
};

}  // namespace glint::graph
