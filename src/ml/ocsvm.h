#pragma once

#include "ml/scaler.h"
#include "util/rng.h"
#include "util/vecmath.h"

namespace glint::ml {

/// Linear one-class SVM trained with SGD (Schölkopf et al. 2001 objective:
/// min ½‖w‖² + 1/(νn) Σ max(0, ρ − w·x) − ρ). Samples with w·x < ρ are
/// outliers (score -1), matching scikit-learn's OneClassSVM convention used
/// as a Fig. 11 baseline. A random-Fourier-feature map approximates the RBF
/// kernel so non-linearly-shaped normal regions are representable.
class OneClassSvm {
 public:
  struct Params {
    double nu = 0.1;          ///< expected outlier fraction
    int epochs = 40;
    double lr = 0.02;
    int rff_dim = 128;        ///< random Fourier features (0 = linear)
    double gamma = 0.5;       ///< RBF bandwidth for the feature map
    uint64_t seed = 31;
  };

  OneClassSvm() : OneClassSvm(Params()) {}
  explicit OneClassSvm(Params params) : params_(params) {}

  /// Fits on (assumed mostly normal) data.
  void Fit(const std::vector<FloatVec>& xs);

  /// +1 for inliers (normal), -1 for outliers (threat).
  int Predict(const FloatVec& x) const;

  /// Signed decision value w·φ(x) − ρ (negative = outlier).
  double Decision(const FloatVec& x) const;

 private:
  FloatVec FeatureMap(const FloatVec& x) const;

  Params params_;
  StandardScaler scaler_;
  std::vector<FloatVec> rff_w_;  ///< random projection directions
  FloatVec rff_b_;               ///< random phases
  FloatVec w_;
  double rho_ = 0;
};

}  // namespace glint::ml
