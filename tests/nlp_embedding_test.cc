#include <gtest/gtest.h>

#include "nlp/embedding.h"
#include "util/vecmath.h"

namespace glint::nlp {
namespace {

TEST(Embedding, Deterministic) {
  EmbeddingModel a(300, 17), b(300, 17);
  EXPECT_EQ(a.WordVector("window"), b.WordVector("window"));
}

TEST(Embedding, SeedChangesVectors) {
  EmbeddingModel a(300, 17), b(300, 18);
  EXPECT_NE(a.WordVector("window"), b.WordVector("window"));
}

TEST(Embedding, Dimension) {
  EmbeddingModel m300(300, 1), m512(512, 1);
  EXPECT_EQ(m300.WordVector("door").size(), 300u);
  EXPECT_EQ(m512.WordVector("door").size(), 512u);
}

TEST(Embedding, ApproximatelyUnitNorm) {
  EmbeddingModel m(300, 17);
  const double n = Norm(m.WordVector("heater"));
  EXPECT_GT(n, 0.7);
  EXPECT_LT(n, 1.3);
}

// Property: synonyms land close, unrelated words near-orthogonal.
struct SynonymCase {
  const char* a;
  const char* b;
  const char* unrelated;
};

class EmbeddingGeometry : public ::testing::TestWithParam<SynonymCase> {};

TEST_P(EmbeddingGeometry, SynonymsCloserThanUnrelated) {
  EmbeddingModel m(300, 17);
  const auto& p = GetParam();
  const double syn = CosineSimilarity(m.WordVector(p.a), m.WordVector(p.b));
  const double unrel =
      CosineSimilarity(m.WordVector(p.a), m.WordVector(p.unrelated));
  EXPECT_GT(syn, 0.5) << p.a << " ~ " << p.b;
  EXPECT_GT(syn, unrel + 0.2) << p.a << " vs " << p.unrelated;
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, EmbeddingGeometry,
    ::testing::Values(SynonymCase{"turn_on", "activate", "window"},
                      SynonymCase{"turn_off", "deactivate", "smoke"},
                      SynonymCase{"open", "raise", "music"},
                      SynonymCase{"close", "shut", "motion"},
                      SynonymCase{"lock", "secure", "temperature"},
                      SynonymCase{"detect", "sense", "door"},
                      SynonymCase{"notify", "alert", "kettle"},
                      SynonymCase{"light", "lamp", "lock"},
                      SynonymCase{"window", "windows", "heater"}));

TEST(Embedding, ChannelMatesAreRelated) {
  // heater and thermostat share the temperature channel anchor.
  EmbeddingModel m(300, 17);
  const double related =
      CosineSimilarity(m.WordVector("heater"), m.WordVector("cooling"));
  const double unrelated =
      CosineSimilarity(m.WordVector("heater"), m.WordVector("doorbell"));
  EXPECT_GT(related, unrelated);
}

TEST(Embedding, AverageSkipsStopWords) {
  EmbeddingModel m(300, 17);
  const FloatVec with = m.Average({"the", "window", "is", "open"});
  const FloatVec without = m.Average({"window", "open"});
  for (size_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(with[i], without[i]);
}

TEST(Embedding, AverageSkipsNamedEntities) {
  EmbeddingModel m(300, 17);
  EXPECT_EQ(m.Average({"wyze", "camera"}), m.Average({"camera"}));
}

TEST(Embedding, AverageOfNothingIsZero) {
  EmbeddingModel m(300, 17);
  const FloatVec v = m.Average({"the", "is"});
  EXPECT_DOUBLE_EQ(Norm(v), 0.0);
}

TEST(Embedding, EmbedSentenceMatchesTokenAverage) {
  EmbeddingModel m(300, 17);
  EXPECT_EQ(m.EmbedSentence("open the window"),
            m.Average({"open", "the", "window"}));
}

TEST(Embedding, SentenceEncoderIsOrderSensitive) {
  EmbeddingModel m(512, 17);
  const FloatVec ab = m.EncodeSentence("door opens light");
  const FloatVec ba = m.EncodeSentence("light opens door");
  EXPECT_NE(ab, ba);
  // ... but semantically close (same words).
  EXPECT_GT(CosineSimilarity(ab, ba), 0.5);
}

TEST(Embedding, SimilarSentencesEncodeClose) {
  EmbeddingModel m(512, 17);
  const FloatVec a = m.EncodeSentence("turn on the light");
  const FloatVec b = m.EncodeSentence("activate the lamp");
  const FloatVec c = m.EncodeSentence("the smoke alarm is beeping");
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c));
}

}  // namespace
}  // namespace glint::nlp
