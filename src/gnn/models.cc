#include "gnn/models.h"

#include "obs/obs.h"

namespace glint::gnn {

Tensor* HomogeneousFeatures(Tape* t, const GnnGraph& g) {
  GLINT_CHECK(!g.IsHeterogeneous());
  for (int type = 0; type < kNumNodeTypes; ++type) {
    if (!g.type_rows[type].empty()) {
      return t->Constant(g.typed_features[type]);
    }
  }
  GLINT_CHECK(false && "empty graph");
  return nullptr;
}

// ---------------------------------------------------------------------------
// GCN
// ---------------------------------------------------------------------------

GcnModel::GcnModel(int in_dim, int hidden, int num_layers, uint64_t seed)
    : hidden_(hidden) {
  Rng rng(seed);
  int in = in_dim;
  for (int l = 0; l < num_layers; ++l) {
    convs_.emplace_back(in, hidden, &rng);
    in = hidden;
  }
  head_ = Linear(2 * hidden, 2, &rng);
}

ForwardResult GcnModel::Forward(Tape* t, const GnnGraph& g) {
  Tensor* h = HomogeneousFeatures(t, g);
  for (auto& conv : convs_) h = conv.Forward(t, g.adj_norm, h);
  ForwardResult r;
  r.embedding = ConcatCols(t, MeanRows(t, h), MaxRows(t, h));
  r.logits = head_.Forward(t, r.embedding);
  return r;
}

std::vector<Parameter*> GcnModel::Parameters() {
  std::vector<Parameter*> out;
  for (auto& c : convs_) {
    auto p = c.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  auto h = head_.Parameters();
  out.insert(out.end(), h.begin(), h.end());
  return out;
}

std::vector<std::vector<Parameter*>> GcnModel::ParameterGroups() {
  std::vector<std::vector<Parameter*>> groups;
  for (auto& c : convs_) groups.push_back(c.Parameters());
  groups.push_back(head_.Parameters());
  return groups;
}

// ---------------------------------------------------------------------------
// GIN / InfoGraph
// ---------------------------------------------------------------------------

GinModel::GinModel(int in_dim, int hidden, int num_layers, uint64_t seed)
    : hidden_(hidden) {
  Rng rng(seed);
  int in = in_dim;
  for (int l = 0; l < num_layers; ++l) {
    convs_.emplace_back(in, hidden, &rng);
    in = hidden;
  }
  head_ = Linear(2 * hidden, 2, &rng);
}

Tensor* GinModel::Encode(Tape* t, const GnnGraph& g,
                         Tensor** node_embeddings) {
  Tensor* h = HomogeneousFeatures(t, g);
  for (auto& conv : convs_) h = conv.Forward(t, g.adj_raw, h);
  if (node_embeddings != nullptr) *node_embeddings = h;
  return ConcatCols(t, MeanRows(t, h), MaxRows(t, h));
}

ForwardResult GinModel::Forward(Tape* t, const GnnGraph& g) {
  ForwardResult r;
  r.embedding = Encode(t, g, nullptr);
  r.logits = head_.Forward(t, r.embedding);
  return r;
}

std::vector<Parameter*> GinModel::Parameters() {
  std::vector<Parameter*> out;
  for (auto& c : convs_) {
    auto p = c.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  auto h = head_.Parameters();
  out.insert(out.end(), h.begin(), h.end());
  return out;
}

std::vector<std::vector<Parameter*>> GinModel::ParameterGroups() {
  std::vector<std::vector<Parameter*>> groups;
  for (auto& c : convs_) groups.push_back(c.Parameters());
  groups.push_back(head_.Parameters());
  return groups;
}

InfoGraphModel::InfoGraphModel(int in_dim, int hidden, int num_layers,
                               uint64_t seed)
    : GinModel(in_dim, hidden, num_layers, seed) {
  Rng rng(seed ^ 0x1f6a);
  disc_w_ = Parameter(Matrix::HeInit(2 * hidden, hidden, &rng));
}

Tensor* InfoGraphModel::AuxLoss(Tape* t, const GnnGraph& g,
                                const ForwardResult& r) {
  // Positive pairs: (graph embedding, node embedding) from the true graph.
  Tensor* nodes = nullptr;
  Encode(t, g, &nodes);
  // Corrupted graph: node features shuffled within the graph. The shuffle
  // stream is derived from the graph itself (not a member RNG) so AuxLoss
  // is stateless — the corruption is identical regardless of call order or
  // thread count.
  uint64_t h = 0xfeedULL;
  auto mix = [&h](uint64_t x) { h = (h ^ x) * 0x9e3779b97f4a7c15ULL; };
  mix(static_cast<uint64_t>(g.num_nodes));
  mix(static_cast<uint64_t>(g.label) + 1);
  for (const auto& [s, d] : g.edges) {
    mix((static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(d));
  }
  Rng corrupt_rng(h);
  GnnGraph corrupted = g;
  for (int type = 0; type < kNumNodeTypes; ++type) {
    Matrix& m = corrupted.typed_features[type];
    if (m.rows <= 1) continue;
    for (int i = m.rows - 1; i > 0; --i) {
      const int j =
          static_cast<int>(corrupt_rng.Below(static_cast<uint64_t>(i + 1)));
      for (int c = 0; c < m.cols; ++c) std::swap(m.At(i, c), m.At(j, c));
    }
  }
  Tensor* corrupt_nodes = nullptr;
  Encode(t, corrupted, &corrupt_nodes);

  // Bilinear discriminator: D(z, h) = z W h^T — BCE with positives 1,
  // corrupted 0. Averaged over nodes.
  Tensor* zw = MatMul(t, r.embedding, t->Leaf(&disc_w_));  // 1 x hidden
  Tensor* loss = nullptr;
  const float inv = 1.0f / static_cast<float>(std::max(1, g.num_nodes));
  for (int split = 0; split < 2; ++split) {
    Tensor* h = split == 0 ? nodes : corrupt_nodes;
    const int label = split == 0 ? 1 : 0;
    // scores = h * (zw)^T computed as row-wise dot: (n x d) * (d x 1).
    Tensor* zt = Transpose(t, zw);
    Tensor* scores = MatMul(t, h, zt);  // n x 1
    for (int i = 0; i < scores->rows(); ++i) {
      Tensor* s = GatherRows(t, scores, {i});
      loss = AddLoss(t, loss, BceWithLogit(t, s, label, inv));
    }
  }
  return Scale(t, loss, 0.5f);
}

std::vector<Parameter*> InfoGraphModel::Parameters() {
  auto out = GinModel::Parameters();
  out.push_back(&disc_w_);
  return out;
}

// ---------------------------------------------------------------------------
// GXN
// ---------------------------------------------------------------------------

GxnModel::GxnModel(int in_dim, int hidden, int num_scales,
                   double pooling_ratio, uint64_t seed)
    : hidden_(hidden) {
  Rng rng(seed);
  input_ = Linear(in_dim, hidden, &rng);
  for (int s = 0; s < num_scales; ++s) {
    convs_.emplace_back(hidden, hidden, &rng);
    if (s + 1 < num_scales) pools_.emplace_back(hidden, pooling_ratio, &rng);
  }
  embed_dim_ = hidden;
  fuse_ = Linear(2 * hidden * num_scales, embed_dim_, &rng);
  head_ = Linear(embed_dim_, 2, &rng);
}

ForwardResult GxnModel::Forward(Tape* t, const GnnGraph& g) {
  Tensor* h = Relu(t, input_.Forward(t, HomogeneousFeatures(t, g)));
  // Walk the adjacency chain by pointer: scale 0 reads the graph's own
  // matrices, later scales read the pooled result (no copies either way).
  const SparseMatrix* adj_norm = &g.adj_norm;
  const SparseMatrix* adj_raw = &g.adj_raw;
  VIPool::Result pooled;
  ForwardResult r;
  Tensor* readouts = nullptr;
  for (size_t s = 0; s < convs_.size(); ++s) {
    h = convs_[s].Forward(t, *adj_norm, h);
    Tensor* ro = ConcatCols(t, MeanRows(t, h), MaxRows(t, h));
    readouts = readouts == nullptr ? ro : ConcatCols(t, readouts, ro);
    if (s < pools_.size()) {
      pooled = pools_[s].Forward(t, *adj_norm, *adj_raw, h);
      h = pooled.features;
      adj_norm = &pooled.adj_norm;
      adj_raw = &pooled.adj_raw;
      r.pool_logits.push_back(pooled.graph_logit);
    }
  }
  r.embedding = Relu(t, fuse_.Forward(t, readouts));
  r.logits = head_.Forward(t, r.embedding);
  return r;
}

std::vector<Parameter*> GxnModel::Parameters() {
  std::vector<Parameter*> out;
  auto add = [&](std::vector<Parameter*> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  add(input_.Parameters());
  for (auto& c : convs_) add(c.Parameters());
  for (auto& p : pools_) add(p.Parameters());
  add(fuse_.Parameters());
  add(head_.Parameters());
  return out;
}

std::vector<std::vector<Parameter*>> GxnModel::ParameterGroups() {
  std::vector<std::vector<Parameter*>> groups;
  groups.push_back(input_.Parameters());
  for (size_t s = 0; s < convs_.size(); ++s) {
    auto g = convs_[s].Parameters();
    if (s < pools_.size()) {
      auto p = pools_[s].Parameters();
      g.insert(g.end(), p.begin(), p.end());
    }
    groups.push_back(g);
  }
  auto tail = fuse_.Parameters();
  auto h = head_.Parameters();
  tail.insert(tail.end(), h.begin(), h.end());
  groups.push_back(tail);
  return groups;
}

// ---------------------------------------------------------------------------
// MAGCN
// ---------------------------------------------------------------------------

MagcnModel::MagcnModel(int hidden, int num_layers, uint64_t seed)
    : hidden_(hidden) {
  Rng rng(seed);
  converter_ = MetapathConverter({hidden, true, true}, &rng);
  for (int l = 0; l < num_layers; ++l) convs_.emplace_back(hidden, hidden, &rng);
  head_ = Linear(2 * hidden, 2, &rng);
}

ForwardResult MagcnModel::Forward(Tape* t, const GnnGraph& g) {
  Tensor* h = converter_.Forward(t, g);
  for (auto& conv : convs_) h = conv.Forward(t, g.adj_norm, h);
  ForwardResult r;
  r.embedding = ConcatCols(t, MeanRows(t, h), MaxRows(t, h));
  r.logits = head_.Forward(t, r.embedding);
  return r;
}

std::vector<Parameter*> MagcnModel::Parameters() {
  auto out = converter_.Parameters();
  for (auto& c : convs_) {
    auto p = c.Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  auto h = head_.Parameters();
  out.insert(out.end(), h.begin(), h.end());
  return out;
}

std::vector<std::vector<Parameter*>> MagcnModel::ParameterGroups() {
  std::vector<std::vector<Parameter*>> groups;
  groups.push_back(converter_.Parameters());
  for (auto& c : convs_) groups.push_back(c.Parameters());
  groups.push_back(head_.Parameters());
  return groups;
}

// ---------------------------------------------------------------------------
// MAGXN
// ---------------------------------------------------------------------------

MagxnModel::MagxnModel(int hidden, int num_scales, double pooling_ratio,
                       uint64_t seed)
    : hidden_(hidden) {
  Rng rng(seed);
  converter_ = MetapathConverter({hidden, true, true}, &rng);
  for (int s = 0; s < num_scales; ++s) {
    convs_.emplace_back(hidden, hidden, &rng);
    if (s + 1 < num_scales) pools_.emplace_back(hidden, pooling_ratio, &rng);
  }
  embed_dim_ = hidden;
  fuse_ = Linear(2 * hidden * num_scales, embed_dim_, &rng);
  head_ = Linear(embed_dim_, 2, &rng);
}

ForwardResult MagxnModel::Forward(Tape* t, const GnnGraph& g) {
  Tensor* h = converter_.Forward(t, g);
  const SparseMatrix* adj_norm = &g.adj_norm;
  const SparseMatrix* adj_raw = &g.adj_raw;
  VIPool::Result pooled;
  ForwardResult r;
  Tensor* readouts = nullptr;
  for (size_t s = 0; s < convs_.size(); ++s) {
    h = convs_[s].Forward(t, *adj_norm, h);
    Tensor* ro = ConcatCols(t, MeanRows(t, h), MaxRows(t, h));
    readouts = readouts == nullptr ? ro : ConcatCols(t, readouts, ro);
    if (s < pools_.size()) {
      pooled = pools_[s].Forward(t, *adj_norm, *adj_raw, h);
      h = pooled.features;
      adj_norm = &pooled.adj_norm;
      adj_raw = &pooled.adj_raw;
      r.pool_logits.push_back(pooled.graph_logit);
    }
  }
  r.embedding = Relu(t, fuse_.Forward(t, readouts));
  r.logits = head_.Forward(t, r.embedding);
  return r;
}

std::vector<Parameter*> MagxnModel::Parameters() {
  auto out = converter_.Parameters();
  auto add = [&](std::vector<Parameter*> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  for (auto& c : convs_) add(c.Parameters());
  for (auto& p : pools_) add(p.Parameters());
  add(fuse_.Parameters());
  add(head_.Parameters());
  return out;
}

std::vector<std::vector<Parameter*>> MagxnModel::ParameterGroups() {
  std::vector<std::vector<Parameter*>> groups;
  groups.push_back(converter_.Parameters());
  for (size_t s = 0; s < convs_.size(); ++s) {
    auto g = convs_[s].Parameters();
    if (s < pools_.size()) {
      auto p = pools_[s].Parameters();
      g.insert(g.end(), p.begin(), p.end());
    }
    groups.push_back(g);
  }
  auto tail = fuse_.Parameters();
  auto h = head_.Parameters();
  tail.insert(tail.end(), h.begin(), h.end());
  groups.push_back(tail);
  return groups;
}

// ---------------------------------------------------------------------------
// HGSL
// ---------------------------------------------------------------------------

HgslModel::HgslModel(int hidden, uint64_t seed) : hidden_(hidden) {
  Rng rng(seed);
  for (int t = 0; t < kNumNodeTypes; ++t) {
    proj_[t] = Linear(kTypeDims[t], hidden, &rng);
  }
  sim_w_ = Parameter(Matrix::HeInit(hidden, hidden, &rng));
  conv1_ = Linear(hidden, hidden, &rng);
  conv2_ = Linear(hidden, hidden, &rng);
  head_ = Linear(hidden, 2, &rng);
}

ForwardResult HgslModel::Forward(Tape* t, const GnnGraph& g) {
  // Per-type projection + scatter to node order (cached permutation).
  const auto meta = g.TypeMetaView();
  Tensor* blocks = nullptr;
  for (int type = 0; type < kNumNodeTypes; ++type) {
    if (g.type_rows[type].empty()) continue;
    Tensor* projected =
        proj_[type].Forward(t, t->Constant(g.typed_features[type]));
    blocks = blocks == nullptr ? projected : ConcatRows(t, blocks, projected);
  }
  Tensor* h = GatherRows(t, blocks, meta->perm);

  // Structure learning: S = sigmoid(H W H^T); mix with the observed
  // adjacency (densified once per graph), then two graph convolutions over
  // the mixture.
  Tensor* hw = MatMul(t, h, t->Leaf(&sim_w_));  // n x d
  Tensor* ht = Transpose(t, h);
  Tensor* sim = Sigmoid(t, MatMul(t, hw, ht));  // n x n

  Tensor* mixed =
      Add(t, Scale(t, sim, 0.3f), t->Constant(*g.adj_norm.DenseView()));

  h = Relu(t, MatMul(t, mixed, conv1_.Forward(t, h)));
  h = Relu(t, MatMul(t, mixed, conv2_.Forward(t, h)));

  ForwardResult r;
  r.embedding = MeanRows(t, h);
  r.logits = head_.Forward(t, r.embedding);
  return r;
}

std::vector<Parameter*> HgslModel::Parameters() {
  std::vector<Parameter*> out;
  auto add = [&](std::vector<Parameter*> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  for (int t = 0; t < kNumNodeTypes; ++t) add(proj_[t].Parameters());
  out.push_back(&sim_w_);
  add(conv1_.Parameters());
  add(conv2_.Parameters());
  add(head_.Parameters());
  return out;
}

std::vector<std::vector<Parameter*>> HgslModel::ParameterGroups() {
  std::vector<std::vector<Parameter*>> groups;
  std::vector<Parameter*> front;
  for (int t = 0; t < kNumNodeTypes; ++t) {
    auto p = proj_[t].Parameters();
    front.insert(front.end(), p.begin(), p.end());
  }
  groups.push_back(front);
  std::vector<Parameter*> mid = conv1_.Parameters();
  mid.push_back(&sim_w_);
  groups.push_back(mid);
  groups.push_back(conv2_.Parameters());
  groups.push_back(head_.Parameters());
  return groups;
}

// ---------------------------------------------------------------------------
// ITGNN
// ---------------------------------------------------------------------------

ItgnnModel::ItgnnModel(Config config) : config_(config) {
  Rng rng(config.seed);
  converter_ = MetapathConverter(
      {config.hidden, config.use_intra, config.use_inter,
       config.use_hadamard},
      &rng);
  for (int s = 0; s < config.num_scales; ++s) {
    std::vector<TagConv> layer;
    for (int l = 0; l < config.prop_layers; ++l) {
      layer.emplace_back(config.hidden, config.hidden, config.tag_hops, &rng);
    }
    scale_convs_.push_back(std::move(layer));
    if (s + 1 < config.num_scales) {
      pools_.emplace_back(config.hidden, config.pooling_ratio, &rng);
    }
  }
  fuse_ = Linear(2 * config.hidden * config.num_scales, config.embed_dim,
                 &rng);
  head_ = Linear(config.embed_dim, 2, &rng);
}

ForwardResult ItgnnModel::Forward(Tape* t, const GnnGraph& g) {
  GLINT_OBS_TIMER(timer, "glint.gnn.forward_ms");
  // Metapath-based node transformation (lines 1-13 of Algorithm 2).
  Tensor* h = converter_.Forward(t, g);

  // Multi-scale graph generation + TAG propagation (lines 15-21).
  const SparseMatrix* adj_norm = &g.adj_norm;
  const SparseMatrix* adj_raw = &g.adj_raw;
  VIPool::Result pooled;
  ForwardResult r;
  Tensor* readouts = nullptr;
  for (size_t s = 0; s < scale_convs_.size(); ++s) {
    for (auto& conv : scale_convs_[s]) h = conv.Forward(t, *adj_norm, h);
    Tensor* ro = ConcatCols(t, MeanRows(t, h), MaxRows(t, h));
    readouts = readouts == nullptr ? ro : ConcatCols(t, readouts, ro);
    if (s < pools_.size()) {
      pooled = pools_[s].Forward(t, *adj_norm, *adj_raw, h);
      h = pooled.features;
      adj_norm = &pooled.adj_norm;
      adj_raw = &pooled.adj_raw;
      r.pool_logits.push_back(pooled.graph_logit);
    }
  }
  // Fused multi-scale readout (line 22).
  r.embedding = Relu(t, fuse_.Forward(t, readouts));
  r.logits = head_.Forward(t, r.embedding);
  return r;
}

BatchedForwardResult ItgnnModel::ForwardBatched(Tape* t,
                                                const GnnBatch& batch) {
  GLINT_OBS_TIMER(timer, "glint.gnn.forward_batched_ms");
  const GnnGraph& g = batch.graph;
  Tensor* h = converter_.ForwardBatched(t, g, batch.offsets);

  // The sequential loop, with per-graph readouts and pooling swapped for
  // their segment twins. TagConv itself is row/CSR-row local, so the
  // block-diagonal adjacency keeps every graph's propagation independent.
  const SparseMatrix* adj_norm = &g.adj_norm;
  const SparseMatrix* adj_raw = &g.adj_raw;
  const std::vector<int>* offsets = &batch.offsets;
  VIPool::BatchedResult pooled;
  BatchedForwardResult r;
  Tensor* readouts = nullptr;
  for (size_t s = 0; s < scale_convs_.size(); ++s) {
    for (auto& conv : scale_convs_[s]) h = conv.Forward(t, *adj_norm, h);
    Tensor* ro = ConcatCols(t, SegmentMeanRows(t, h, *offsets),
                            SegmentMaxRows(t, h, *offsets));
    readouts = readouts == nullptr ? ro : ConcatCols(t, readouts, ro);
    if (s < pools_.size()) {
      pooled = pools_[s].ForwardBatched(t, *adj_norm, *adj_raw, h, *offsets);
      h = pooled.features;
      adj_norm = &pooled.adj_norm;
      adj_raw = &pooled.adj_raw;
      offsets = &pooled.offsets;
      r.pool_logits.push_back(pooled.graph_logits);
    }
  }
  r.embeddings = Relu(t, fuse_.Forward(t, readouts));
  r.logits = head_.Forward(t, r.embeddings);
  return r;
}

std::vector<Parameter*> ItgnnModel::Parameters() {
  auto out = converter_.Parameters();
  auto add = [&](std::vector<Parameter*> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  for (auto& scale : scale_convs_) {
    for (auto& conv : scale) add(conv.Parameters());
  }
  for (auto& p : pools_) add(p.Parameters());
  add(fuse_.Parameters());
  add(head_.Parameters());
  return out;
}

std::vector<std::vector<Parameter*>> ItgnnModel::ParameterGroups() {
  std::vector<std::vector<Parameter*>> groups;
  groups.push_back(converter_.Parameters());
  for (size_t s = 0; s < scale_convs_.size(); ++s) {
    std::vector<Parameter*> g;
    for (auto& conv : scale_convs_[s]) {
      auto p = conv.Parameters();
      g.insert(g.end(), p.begin(), p.end());
    }
    if (s < pools_.size()) {
      auto p = pools_[s].Parameters();
      g.insert(g.end(), p.begin(), p.end());
    }
    groups.push_back(std::move(g));
  }
  auto tail = fuse_.Parameters();
  auto h = head_.Parameters();
  tail.insert(tail.end(), h.begin(), h.end());
  groups.push_back(tail);
  return groups;
}

}  // namespace glint::gnn
