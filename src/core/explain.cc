#include "core/explain.h"

#include <algorithm>
#include <numeric>

#include "obs/obs.h"

namespace glint::core {
namespace {

/// Graphs up to this many nodes get the exact per-node occlusion scan; on
/// larger graphs each occlusion forward costs as much as classification
/// itself, so a gradient screen picks the candidates first.
constexpr int kExactOcclusionMax = 24;
/// Number of screened candidates refined with exact occlusion (the warning
/// surfaces 3 culprits; the extra slot absorbs screening-rank noise).
constexpr int kRefineCandidates = 4;

double ThreatMargin(gnn::GraphModel* model, const gnn::GnnGraph& g) {
  gnn::ScopedTape tape;  // pooled tape: occlusion scans reuse one arena
  tape->set_freeze_leaves(true);  // inference only: skip grad bookkeeping
  auto r = model->Forward(tape.get(), g);
  return double(r.logits->value.At(0, 1)) - r.logits->value.At(0, 0);
}

/// Margin drop when node v's feature row is zeroed (one full forward).
double OcclusionDrop(gnn::GraphModel* model, const gnn::GnnGraph& g,
                     double base, int v) {
  gnn::GnnGraph masked = g;
  const int type = g.node_types[static_cast<size_t>(v)];
  for (size_t k = 0; k < g.type_rows[type].size(); ++k) {
    if (g.type_rows[type][k] == v) {
      auto& m = masked.typed_features[type];
      for (int c = 0; c < m.cols; ++c) m.At(static_cast<int>(k), c) = 0.f;
    }
  }
  return base - ThreatMargin(model, masked);
}

void ShiftNormalize(std::vector<double>* importance) {
  const double lo = *std::min_element(importance->begin(), importance->end());
  const double hi = *std::max_element(importance->begin(), importance->end());
  const double range = hi - lo;
  for (auto& x : *importance) x = range > 1e-12 ? (x - lo) / range : 0.0;
}

}  // namespace

std::vector<double> ExplainNodes(gnn::GraphModel* model,
                                 const gnn::GnnGraph& g) {
  const size_t n = static_cast<size_t>(g.num_nodes);
  std::vector<double> importance(n, 0.0);

  GLINT_OBS_COUNT("glint.explain.runs", 1);
  if (g.num_nodes <= kExactOcclusionMax) {
    GLINT_OBS_SPAN(span, "glint.explain.occlusion_ms");
    const double base = ThreatMargin(model, g);
    for (int v = 0; v < g.num_nodes; ++v) {
      importance[static_cast<size_t>(v)] = OcclusionDrop(model, g, base, v);
    }
    ShiftNormalize(&importance);
    return importance;
  }

  // Stage 1 — gradient screen: one tracked forward/backward gives every
  // node's first-order occlusion estimate, grad(margin) . features. The
  // typed feature matrices enter the tape as the first tracked constants,
  // in ascending node-type order (all model families share this layout).
  double base = 0.0;
  {
    GLINT_OBS_SPAN(span, "glint.explain.screen_ms");
    gnn::ScopedTape lease;  // pooled: nested safely inside detector tapes
    gnn::Tape& tape = *lease;
    tape.set_freeze_leaves(true);  // saliency needs input grads only
    tape.set_track_constants(true);
    auto r = model->Forward(&tape, g);
    tape.set_track_constants(false);
    gnn::Matrix dir(2, 1);
    dir.At(0, 0) = -1.f;
    dir.At(1, 0) = 1.f;
    gnn::Tensor* margin = MatMul(&tape, r.logits, tape.Constant(dir));
    tape.Backward(margin);
    base = margin->value.At(0, 0);

    size_t next_input = 0;
    const auto& inputs = tape.tracked_constants();
    for (int type = 0; type < gnn::kNumNodeTypes; ++type) {
      const auto& rows = g.type_rows[type];
      if (rows.empty()) continue;
      GLINT_CHECK(next_input < inputs.size());
      const gnn::Tensor* x = inputs[next_input++];
      GLINT_CHECK(x->value.rows == static_cast<int>(rows.size()));
      for (size_t k = 0; k < rows.size(); ++k) {
        double drop = 0.0;
        for (int c = 0; c < x->value.cols; ++c) {
          drop += double(x->grad.At(static_cast<int>(k), c)) *
                  x->value.At(static_cast<int>(k), c);
        }
        importance[static_cast<size_t>(rows[k])] = drop;
      }
    }
  }

  // Stage 2 — exact occlusion on the screened top candidates, so the
  // culprits shown in the warning carry true occlusion scores.
  {
    GLINT_OBS_SPAN(span, "glint.explain.occlusion_ms");
    for (int v : TopCulprits(importance, kRefineCandidates)) {
      importance[static_cast<size_t>(v)] = OcclusionDrop(model, g, base, v);
    }
  }
  ShiftNormalize(&importance);
  return importance;
}

std::vector<int> TopCulprits(const std::vector<double>& importance, int k) {
  std::vector<int> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return importance[static_cast<size_t>(a)] > importance[static_cast<size_t>(b)];
  });
  order.resize(std::min<size_t>(order.size(), static_cast<size_t>(k)));
  return order;
}

}  // namespace glint::core
