#pragma once

// glint::fleet — the million-home serving shape: one process hosts N
// independent ServingEngine shards behind a HomeId router.
//
// A ShardedFleet owns `num_shards` ServingEngine instances over one shared
// TrainedDetector and routes every home-addressed operation by *stable
// consistent hashing* on the HomeId: each shard owns kVirtualNodes points
// on a 64-bit hash ring, and a home lives on the shard owning the first
// ring point at or after hash(id) (FNV-1a through a murmur-style avalanche
// finalizer). Adding a shard therefore moves only
// ~1/(N+1) of the homes — the property that lets a deployment grow its
// shard count without rehashing the world — and the mapping is a pure
// function of (id, num_shards): identical across processes, restarts, and
// platforms.
//
// Durability is per shard: shard K journals to `<state_dir>/shard-K/`
// (reusing core::Journal), so shards recover independently — one shard's
// crash, torn WAL tail, or corrupt snapshot never blocks the others.
// Recovery reconstructs each shard's homes (ids included; they ride in the
// AddHome WAL records and snapshots) and the fleet's id→shard map is
// re-derived from the hash ring, so nothing fleet-global needs its own log.
//
// Determinism: shards are disjoint (a home maps to exactly one shard) and
// a ServingEngine's sessions are already independent, so fleet inspection
// is bit-identical to a single engine serving the same homes — for any
// shard count and any thread count. InspectAll drives per-shard
// InspectAllBatched (SIMD batching amortizes within a shard) and returns
// warnings in (shard, within-shard registration) order; match them to
// homes via Warnings()'s parallel id vector, since cross-shard order is a
// function of the ring, not of registration order.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/serving.h"

namespace glint::fleet {

using core::HomeId;

/// One fleet-wide configuration: every shard is constructed from the same
/// `engine` block, so per-shard knobs (snapshot cadence, fsync policy,
/// session window/caches) cannot silently diverge across the fleet.
struct FleetConfig {
  int num_shards = 4;
  /// Shared per-shard engine config (snapshot_every_ops, sync_each_append,
  /// session window + cache sizes).
  core::ServingEngine::Config engine;
  /// Root state directory; shard K journals under `<state_dir>/shard-K/`.
  /// Empty = in-memory fleet (Recover() is then just a no-op).
  std::string state_dir;
};

/// A fleet inspection result: warnings[i] belongs to ids[i].
struct FleetWarnings {
  std::vector<HomeId> ids;
  std::vector<core::ThreatWarning> warnings;
};

class ShardedFleet {
 public:
  /// Virtual ring points per shard: enough that home counts stay within a
  /// few percent of uniform at fleet scale.
  static constexpr int kVirtualNodes = 64;

  ShardedFleet(const core::TrainedDetector* detector, FleetConfig config);

  /// 64-bit FNV-1a of the id bytes, avalanched through a murmur-style
  /// finalizer — the stable hash the ring is built on. Pure function of
  /// the bytes: identical across processes, restarts, and platforms.
  static uint64_t HashHomeId(const HomeId& id);

  /// Shard owning `id` under this fleet's ring (pure, stable).
  int ShardOf(const HomeId& id) const;

  // ---- Durability ------------------------------------------------------

  /// Recovers every shard from `<state_dir>/shard-K/` (directories created
  /// as needed) and enables journaling; no-op on an in-memory fleet. Fails
  /// on the first shard whose recovery fails — shards before it stay
  /// recovered and durable, mirroring ServingEngine::Recover semantics.
  Status Recover();

  /// Snapshots every durable shard (serialize + truncate its WAL).
  Status Snapshot();

  bool durable() const;

  // ---- Home-addressed operations (routed) ------------------------------

  /// Registers a home fleet-wide; InvalidArgument on a duplicate id.
  /// Returns the owning shard index.
  Result<int> TryAddHome(const HomeId& id,
                         const std::vector<rules::Rule>& deployed);
  Status TryAddRule(const HomeId& id, const rules::Rule& rule);
  Status TryRemoveRule(const HomeId& id, int rule_id,
                       bool* removed = nullptr);
  Status TryOnEvent(const HomeId& id, const graph::Event& e);
  Result<core::ThreatWarning> TryInspect(const HomeId& id, double now_hours);
  bool has_home(const HomeId& id) const;

  // ---- Fleet-wide inspection ------------------------------------------

  /// Inspects every home at `now` — shard by shard, each via the batched
  /// path (`max_batch` member graphs per block-diagonal forward; 1 =
  /// sequential). Output order is (shard, within-shard registration);
  /// `ids` names each slot. Bit-identical per home to a single engine
  /// serving the same homes, for any shard count / thread count / batch
  /// size (tests/fleet_test.cc).
  FleetWarnings InspectAll(double now_hours, int max_batch = 256);

  // ---- Shard access & rollups -----------------------------------------

  int num_shards() const { return static_cast<int>(shards_.size()); }
  core::ServingEngine& shard(int k);
  const core::ServingEngine& shard(int k) const;

  size_t num_homes() const;
  size_t total_rules() const;
  /// Sum of every shard's AggregateStats.
  core::DeploymentSession::CacheStats AggregateStats() const;
  /// Publishes per-shard gauges (glint.fleet.shard<K>.homes / .rules) and
  /// the fleet totals — the obs rollup half of a stats report. Reads every
  /// shard: only for quiesced fleets (use the per-shard overload from a
  /// bus consumer while producers are live).
  void PublishShardGauges() const;
  /// Publishes shard `k`'s gauges only — touches no other shard, so it is
  /// safe from shard `k`'s bus consumer thread (EventBus::RunOnShard).
  void PublishShardGauges(int k) const;

  const FleetConfig& config() const { return config_; }

 private:
  struct RingPoint {
    uint64_t hash;
    int shard;
    bool operator<(const RingPoint& o) const {
      return hash != o.hash ? hash < o.hash : shard < o.shard;
    }
  };

  FleetConfig config_;
  std::vector<std::unique_ptr<core::ServingEngine>> shards_;
  /// Sorted hash ring; built once (shard count is fixed per fleet).
  std::vector<RingPoint> ring_;
};

}  // namespace glint::fleet
