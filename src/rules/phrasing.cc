#include "rules/phrasing.h"

#include "util/string_utils.h"

namespace glint::rules {
namespace {

// Synonym pools for verbs; the first entry is the canonical lexicon word.
const std::vector<std::string>& Synonyms(Command cmd) {
  static const auto* on = new std::vector<std::string>{
      "turn on", "activate", "switch on", "enable", "start"};
  static const auto* off = new std::vector<std::string>{
      "turn off", "deactivate", "switch off", "disable", "stop"};
  static const auto* open = new std::vector<std::string>{"open", "raise"};
  static const auto* close = new std::vector<std::string>{"close", "shut"};
  static const auto* lock = new std::vector<std::string>{"lock", "secure"};
  static const auto* unlock = new std::vector<std::string>{"unlock"};
  static const auto* dim = new std::vector<std::string>{"dim", "darken"};
  static const auto* brighten = new std::vector<std::string>{"brighten"};
  static const auto* play = new std::vector<std::string>{"play", "stream"};
  static const auto* stop_play = new std::vector<std::string>{"stop", "pause"};
  static const auto* notify = new std::vector<std::string>{
      "send a notification to", "notify", "alert", "text"};
  static const auto* snapshot = new std::vector<std::string>{
      "capture a snapshot with", "record"};
  static const auto* arm = new std::vector<std::string>{"arm"};
  static const auto* disarm = new std::vector<std::string>{"disarm"};
  static const auto* clean = new std::vector<std::string>{"run", "start"};
  static const auto* set = new std::vector<std::string>{"set", "adjust"};
  switch (cmd) {
    case Command::kOn: return *on;
    case Command::kOff: return *off;
    case Command::kOpen: return *open;
    case Command::kClose: return *close;
    case Command::kLock: return *lock;
    case Command::kUnlock: return *unlock;
    case Command::kDim: return *dim;
    case Command::kBrighten: return *brighten;
    case Command::kPlay: return *play;
    case Command::kStopPlay: return *stop_play;
    case Command::kNotify: return *notify;
    case Command::kSnapshot: return *snapshot;
    case Command::kArm: return *arm;
    case Command::kDisarm: return *disarm;
    case Command::kStartClean: return *clean;
    case Command::kSetLevel: return *set;
  }
  return *set;
}

std::string NounSurface(DeviceType d, Rng* rng) {
  // Human-readable noun phrases; multi-word forms are re-merged by the
  // tokenizer's bigram table.
  switch (d) {
    case DeviceType::kAc: return "air conditioner";
    case DeviceType::kMotionSensor: return "motion sensor";
    case DeviceType::kContactSensor: return "contact sensor";
    case DeviceType::kTemperatureSensor: return "temperature sensor";
    case DeviceType::kHumiditySensor: return "humidity sensor";
    case DeviceType::kSmokeAlarm:
      return rng->Chance(0.5) ? "smoke alarm" : "smoke detector";
    case DeviceType::kPresenceSensor: return "presence sensor";
    case DeviceType::kLeakSensor: return "leak sensor";
    case DeviceType::kCoffeeMaker: return "coffee maker";
    case DeviceType::kVacuum:
      return rng->Chance(0.5) ? "vacuum cleaner" : "robot vacuum";
    case DeviceType::kPhone: return "phone";
    case DeviceType::kSecuritySystem: return "alarm";
    case DeviceType::kLight:
      return rng->Chance(0.3) ? "lights" : "light";
    case DeviceType::kWindow:
      return rng->Chance(0.3) ? "windows" : "window";
    default: return DeviceWord(d);
  }
}

std::string HourPhrase(int hour) {
  if (hour == 0) return "midnight";
  if (hour == 12) return "noon";
  if (hour < 12) return StrFormat("%d am", hour);
  return StrFormat("%d pm", hour - 12);
}

}  // namespace

std::string PhrasingEngine::VerbFor(Command cmd) {
  const auto& pool = Synonyms(cmd);
  // Bias toward the canonical phrasing; noisy variants appear ~35% of time.
  if (pool.size() == 1 || rng_.Chance(0.65)) return pool[0];
  return pool[1 + rng_.Below(pool.size() - 1)];
}

std::string PhrasingEngine::DeviceNoun(DeviceType d) {
  std::string noun = NounSurface(d, &rng_);
  // Occasional brand prefix (a named entity Algorithm 1 must discard).
  if (rng_.Chance(0.08)) {
    static const std::vector<std::string> brands = {"wyze", "philips", "nest",
                                                    "samsung", "ecobee"};
    noun = rng_.Pick(brands) + " " + noun;
  }
  return noun;
}

std::string PhrasingEngine::RenderTrigger(const TriggerSpec& t) {
  std::string dev = DeviceNoun(t.device);
  switch (t.cmp) {
    case Comparator::kAbove:
      return StrFormat("the %s %s is above %.0f degrees",
                       rng_.Chance(0.5) ? "outdoor" : "indoor",
                       ChannelName(t.channel), t.lo);
    case Comparator::kBelow:
      return StrFormat("the %s is below %.0f%s", ChannelName(t.channel), t.lo,
                       t.channel == Channel::kHumidity ? " percent"
                                                       : " degrees");
    case Comparator::kBetween:
      return StrFormat("the %s is between %.0f and %.0f degrees",
                       ChannelName(t.channel), t.lo, t.hi);
    case Comparator::kEquals:
    case Comparator::kAny: {
      if (t.has_time && t.channel == Channel::kTime) {
        return "the time is " + HourPhrase(t.hour_lo);
      }
      switch (t.device) {
        case DeviceType::kEmailService:
          return rng_.Chance(0.5) ? "a new email arrives"
                                  : "i receive an email";
        case DeviceType::kWeatherService:
          return rng_.Chance(0.5) ? "the weather forecast says rain"
                                  : "rain is expected";
        case DeviceType::kCalendar: return "a calendar event starts";
        case DeviceType::kSocialMedia: return "a new message is posted";
        default: break;
      }
      std::string state = t.state;
      if (t.device == DeviceType::kMotionSensor) {
        return "motion is detected";
      }
      if (t.device == DeviceType::kSmokeAlarm) {
        return rng_.Chance(0.5) ? "smoke is detected"
                                : "the smoke alarm is beeping";
      }
      if (t.device == DeviceType::kPresenceSensor) {
        return state == "present" ? "someone arrives home"
                                  : "everyone leaves home";
      }
      if (t.device == DeviceType::kLeakSensor) return "a leak is detected";
      if (t.device == DeviceType::kButton) return "the button is pressed";
      if (state.empty()) return "the " + dev + " changes";
      if (state == "playing") return "media is playing on the " + dev;
      return "the " + dev + " is " + state;
    }
  }
  return "the " + dev + " changes";
}

std::string PhrasingEngine::RenderCondition(const ConditionSpec& c) {
  if (c.has_time) {
    return StrFormat("the time is between %s and %s",
                     HourPhrase(c.hour_lo).c_str(),
                     HourPhrase(c.hour_hi % 24).c_str());
  }
  TriggerSpec t;
  t.channel = c.channel;
  t.device = c.device;
  t.cmp = c.cmp;
  t.lo = c.lo;
  t.hi = c.hi;
  t.state = c.state;
  return RenderTrigger(t);
}

std::string PhrasingEngine::RenderAction(const ActionSpec& a) {
  switch (a.device) {
    case DeviceType::kEmailService: return "send me an email";
    case DeviceType::kSocialMedia: return "post a message";
    case DeviceType::kSpreadsheet: return "add a row to the spreadsheet";
    default: break;
  }
  std::string verb = VerbFor(a.command);
  std::string dev = DeviceNoun(a.device);
  if (a.command == Command::kNotify) return verb + " my " + dev;
  if (a.command == Command::kSetLevel) {
    return StrFormat("%s the %s level to %.0f percent", verb.c_str(),
                     dev.c_str(), a.level);
  }
  if (a.command == Command::kSnapshot) return verb + " the " + dev;
  const char* article = rng_.Chance(0.8) ? "the" : "my";
  return verb + " " + article + " " + dev;
}

void PhrasingEngine::Render(Rule* rule) {
  std::string trig = RenderTrigger(rule->trigger);
  if (rule->location != Location::kAny && rng_.Chance(0.8)) {
    std::string room = LocationWord(rule->location);
    for (auto& ch : room) {
      if (ch == '_') ch = ' ';
    }
    trig += " in the " + room;
  }
  std::vector<std::string> actions;
  for (const auto& a : rule->actions) actions.push_back(RenderAction(a));
  std::string act = Join(actions, " and ");
  std::string cond;
  if (!rule->conditions.empty()) {
    std::vector<std::string> conds;
    for (const auto& c : rule->conditions) conds.push_back(RenderCondition(c));
    cond = Join(conds, " and ");
  }

  std::string text;
  switch (rule->platform) {
    case Platform::kIFTTT: {
      // "If <trigger>[ and <cond>], then <action>."
      text = "If " + trig;
      if (!cond.empty()) text += " and " + cond;
      text += ", then " + act + ".";
      break;
    }
    case Platform::kSmartThings: {
      // App-description style, action-first half the time.
      if (rng_.Chance(0.5)) {
        std::string a0 = act;
        a0[0] = static_cast<char>(std::toupper(a0[0]));
        text = a0 + " when " + trig;
        if (!cond.empty()) text += " and " + cond;
        text += ".";
      } else {
        text = "If " + trig + ", " + act;
        if (!cond.empty()) text += " when " + cond;
        text += ".";
      }
      break;
    }
    case Platform::kAlexa: {
      text = "Alexa, " + act;
      if (rng_.Chance(0.8)) text += " if " + trig;
      if (!cond.empty()) text += " and " + cond;
      text += ".";
      break;
    }
    case Platform::kGoogleAssistant: {
      text = "When " + trig;
      if (!cond.empty()) text += " and " + cond;
      text += ", " + act + ".";
      break;
    }
    case Platform::kHomeAssistant: {
      text = "Blueprint: when " + trig;
      if (!cond.empty()) text += " and if " + cond;
      text += ", " + act + ".";
      break;
    }
  }
  rule->text = text;
}

}  // namespace glint::rules
