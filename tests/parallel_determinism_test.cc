// Serial-vs-parallel determinism contract: corpus generation, dataset
// construction, training, evaluation, and embedding must produce
// bit-identical results at 1 thread and at N threads (DESIGN.md,
// "Concurrency model").

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/glint.h"
#include "core/serving.h"
#include "core/session.h"
#include "gnn/ggraph.h"
#include "gnn/models.h"
#include "gnn/trainer.h"
#include "graph/builder.h"
#include "nlp/embedding.h"
#include "rules/corpus.h"
#include "util/thread_pool.h"

namespace glint {
namespace {

/// Restores the global pool to its env-configured size when a test ends.
struct ThreadRestore {
  ~ThreadRestore() {
    ThreadPool::SetGlobalThreads(ThreadPool::ConfiguredThreads());
  }
};

constexpr int kParallelThreads = 4;

std::vector<rules::Rule> SmallCorpus() {
  rules::CorpusConfig cc;
  cc.ifttt = 300;
  cc.smartthings = 50;
  cc.alexa = 60;
  cc.google_assistant = 60;
  cc.home_assistant = 60;
  return rules::CorpusGenerator(cc).Generate();
}

const nlp::EmbeddingModel& WordModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(300, 17);
  return *m;
}
const nlp::EmbeddingModel& SentenceModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(512, 18);
  return *m;
}

std::vector<gnn::GnnGraph> BuildGraphs(const std::vector<rules::Rule>& pool,
                                       int num_graphs) {
  graph::GraphBuilder::Config bc;
  bc.seed = 99;
  bc.max_nodes = 12;
  graph::GraphBuilder builder(bc, &WordModel(), &SentenceModel());
  return gnn::ToGnnGraphs(builder.BuildDataset(pool, num_graphs));
}

void ExpectSameGraphs(const std::vector<gnn::GnnGraph>& a,
                      const std::vector<gnn::GnnGraph>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].num_nodes, b[i].num_nodes) << "graph " << i;
    ASSERT_EQ(a[i].label, b[i].label) << "graph " << i;
    ASSERT_EQ(a[i].node_types, b[i].node_types) << "graph " << i;
    ASSERT_EQ(a[i].edges, b[i].edges) << "graph " << i;
    for (int t = 0; t < gnn::kNumNodeTypes; ++t) {
      ASSERT_EQ(a[i].typed_features[t].data, b[i].typed_features[t].data)
          << "graph " << i << " type " << t;
    }
    ASSERT_EQ(a[i].adj_norm.entries.size(), b[i].adj_norm.entries.size());
    for (size_t k = 0; k < a[i].adj_norm.entries.size(); ++k) {
      const auto& ea = a[i].adj_norm.entries[k];
      const auto& eb = b[i].adj_norm.entries[k];
      ASSERT_EQ(ea.r, eb.r);
      ASSERT_EQ(ea.c, eb.c);
      ASSERT_EQ(ea.v, eb.v);
    }
  }
}

TEST(ParallelDeterminismTest, CorpusIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto serial = SmallCorpus();
  ThreadPool::SetGlobalThreads(kParallelThreads);
  const auto parallel = SmallCorpus();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].id, parallel[i].id) << "rule " << i;
    ASSERT_EQ(serial[i].platform, parallel[i].platform) << "rule " << i;
    ASSERT_EQ(serial[i].text, parallel[i].text) << "rule " << i;
    ASSERT_EQ(serial[i].trigger.device, parallel[i].trigger.device);
    ASSERT_EQ(serial[i].conditions.size(), parallel[i].conditions.size());
    ASSERT_EQ(serial[i].actions.size(), parallel[i].actions.size());
  }
}

TEST(ParallelDeterminismTest, DatasetIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  const auto pool = SmallCorpus();
  ThreadPool::SetGlobalThreads(1);
  const auto serial = BuildGraphs(pool, 10);
  ThreadPool::SetGlobalThreads(kParallelThreads);
  const auto parallel = BuildGraphs(pool, 10);
  ExpectSameGraphs(serial, parallel);
}

TEST(ParallelDeterminismTest, EvaluateAndEmbedAllIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto graphs = BuildGraphs(SmallCorpus(), 16);

  gnn::ItgnnModel::Config mc;
  mc.seed = 5;
  gnn::ItgnnModel model(mc);

  const auto serial_metrics = gnn::Trainer::Evaluate(&model, graphs);
  const auto serial_embeds = gnn::Trainer::EmbedAll(&model, graphs);
  ThreadPool::SetGlobalThreads(kParallelThreads);
  const auto parallel_metrics = gnn::Trainer::Evaluate(&model, graphs);
  const auto parallel_embeds = gnn::Trainer::EmbedAll(&model, graphs);

  EXPECT_EQ(serial_metrics.accuracy, parallel_metrics.accuracy);
  EXPECT_EQ(serial_metrics.precision, parallel_metrics.precision);
  EXPECT_EQ(serial_metrics.recall, parallel_metrics.recall);
  EXPECT_EQ(serial_metrics.f1, parallel_metrics.f1);
  ASSERT_EQ(serial_embeds.size(), parallel_embeds.size());
  for (size_t i = 0; i < serial_embeds.size(); ++i) {
    ASSERT_EQ(serial_embeds[i], parallel_embeds[i]) << "embedding " << i;
  }
}

TEST(ParallelDeterminismTest, SupervisedTrainingIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto graphs = BuildGraphs(SmallCorpus(), 16);

  auto train_and_embed = [&graphs](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    gnn::ItgnnModel::Config mc;
    mc.seed = 3;
    gnn::ItgnnModel model(mc);
    gnn::TrainConfig tc;
    tc.epochs = 2;
    gnn::Trainer(tc).TrainSupervised(&model, graphs);
    return gnn::Trainer::EmbedAll(&model, graphs);
  };
  const auto serial = train_and_embed(1);
  const auto parallel = train_and_embed(kParallelThreads);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "embedding " << i;
  }
}

TEST(ParallelDeterminismTest, ContrastiveTrainingIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  ThreadPool::SetGlobalThreads(1);
  const auto graphs = BuildGraphs(SmallCorpus(), 16);

  auto train_and_embed = [&graphs](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    gnn::ItgnnModel::Config mc;
    mc.seed = 11;
    gnn::ItgnnModel model(mc);
    gnn::TrainConfig tc;
    tc.epochs = 2;
    gnn::Trainer(tc).TrainContrastive(&model, graphs);
    return gnn::Trainer::EmbedAll(&model, graphs);
  };
  const auto serial = train_and_embed(1);
  const auto parallel = train_and_embed(kParallelThreads);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "embedding " << i;
  }
}

/// One small trained detector shared by the serving determinism tests
/// (training is the expensive part; both tests only read it).
core::Glint& SmallTrainedGlint() {
  static core::Glint* g = [] {
    core::Glint::Options opts;
    opts.corpus.ifttt = 300;
    opts.corpus.smartthings = 50;
    opts.corpus.alexa = 60;
    opts.corpus.google_assistant = 60;
    opts.corpus.home_assistant = 60;
    opts.num_training_graphs = 80;
    opts.builder.max_nodes = 8;
    opts.model.num_scales = 2;
    opts.model.embed_dim = 32;
    opts.train.epochs = 2;
    opts.pairs.num_positive = 60;
    opts.pairs.num_negative = 90;
    auto* gl = new core::Glint(opts);
    gl->TrainOffline();
    return gl;
  }();
  return *g;
}

struct HomeTrace {
  std::vector<std::string> renders;
  std::vector<double> confidences;
  bool operator==(const HomeTrace& o) const {
    return renders == o.renders && confidences == o.confidences;
  }
};

/// Runs one home's scripted session (rules, an event stream, periodic
/// inspections) against the shared detector and records every warning.
HomeTrace RunHome(const std::vector<rules::Rule>& rules, uint64_t seed) {
  core::DeploymentSession session(&SmallTrainedGlint().detector());
  for (const auto& r : rules) session.AddRule(r);
  HomeTrace trace;
  Rng rng(seed);
  double now = 10.0;
  for (int step = 0; step < 8; ++step) {
    now += 0.1 + rng.Uniform() * 0.3;
    const auto cur = session.CurrentRules();
    const auto& rule = cur[rng.Below(cur.size())];
    graph::Event e;
    e.time_hours = now;
    e.location = rule.location;
    if (rng.Chance(0.5) || rule.actions.empty()) {
      e.device = rule.trigger.device;
      e.state = rule.trigger.state;
    } else {
      const auto& a = rule.actions[rng.Below(rule.actions.size())];
      e.device = a.device;
      e.state = rules::CommandResultState(a.command);
    }
    session.OnEvent(e);
    auto w = session.Inspect(now);
    trace.renders.push_back(w.Render());
    trace.confidences.push_back(w.confidence);
  }
  return trace;
}

TEST(ParallelDeterminismTest, SharedDetectorSessionsIdenticalAcrossThreads) {
  // Two DeploymentSessions over ONE TrainedDetector, each on its own
  // thread, must reproduce the serial run bit-for-bit: the detector's memo
  // caches store pure-function results, so sharing cannot change verdicts.
  const auto home_a = rules::CorpusGenerator::Table1Rules();
  const auto home_b = rules::CorpusGenerator::Table4Settings();

  const HomeTrace ref_a = RunHome(home_a, 3);
  const HomeTrace ref_b = RunHome(home_b, 5);

  HomeTrace par_a, par_b;
  std::thread ta([&] { par_a = RunHome(home_a, 3); });
  std::thread tb([&] { par_b = RunHome(home_b, 5); });
  ta.join();
  tb.join();

  EXPECT_EQ(ref_a, par_a);
  EXPECT_EQ(ref_b, par_b);
}

TEST(ParallelDeterminismTest, ServingEngineInspectAllIdenticalAcrossThreadCounts) {
  ThreadRestore restore;
  const auto& glint = SmallTrainedGlint();
  std::vector<std::vector<rules::Rule>> homes = {
      rules::CorpusGenerator::Table1Rules(),
      rules::CorpusGenerator::Table4Settings(),
  };
  for (const auto& g : rules::CorpusGenerator::NewThreatBlueprints()) {
    homes.push_back(g);
    if (homes.size() >= 5) break;
  }

  auto run = [&](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    core::ServingEngine engine(&glint.detector());
    for (const auto& h : homes) engine.AddHome(h);
    Rng rng(9);
    double now = 10.0;
    std::vector<std::string> out;
    for (int round = 0; round < 3; ++round) {
      for (int h = 0; h < static_cast<int>(homes.size()); ++h) {
        now += 0.05;
        const auto cur = engine.home_view(h).CurrentRules();
        const auto& rule = cur[rng.Below(cur.size())];
        graph::Event e;
        e.time_hours = now;
        e.device = rule.trigger.device;
        e.state = rule.trigger.state;
        e.location = rule.location;
        engine.OnEvent(h, e);
      }
      for (const auto& w : engine.InspectAll(now)) {
        out.push_back(w.Render());
      }
    }
    return out;
  };

  const auto serial = run(1);
  const auto parallel = run(kParallelThreads);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace glint
