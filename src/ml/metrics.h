#pragma once

#include <vector>

namespace glint::ml {

/// Classification quality metrics (all in [0, 1]).
struct Metrics {
  double accuracy = 0;
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// Binary metrics with class 1 as the positive ("threat"/"true") class.
Metrics BinaryMetrics(const std::vector<int>& y_true,
                      const std::vector<int>& y_pred);

/// Weighted-average metrics across classes, each class weighted by its
/// support (scikit-learn `average="weighted"`); the paper uses weighted F1
/// for the imbalanced graph datasets (Sec. 4.4).
Metrics WeightedMetrics(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred, int num_classes = 2);

/// Mean and sample standard deviation of a series.
struct Stats {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
};
Stats Summarize(const std::vector<double>& values);

}  // namespace glint::ml
