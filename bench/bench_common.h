#pragma once

// Shared harness utilities for the per-table / per-figure benchmark
// binaries. Each binary regenerates one table or figure of the paper on the
// synthetic substitute datasets (see DESIGN.md for the substitution map)
// and prints paper-reported values next to the measured ones.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gnn/models.h"
#include "gnn/trainer.h"
#include "graph/builder.h"
#include "nlp/embedding.h"
#include "rules/corpus.h"
#include "util/string_utils.h"
#include "util/table.h"

namespace glint::bench {

/// Elapsed wall-clock seconds since `t0`.
inline double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Nearest-rank percentile of an unsorted sample; `p` in [0, 1].
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = static_cast<size_t>(p * (xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

/// Builds the one-line machine-readable record each bench prints with a
/// BENCH_JSON prefix (and bench_obs_overhead's pass/fail summary). Keys are
/// emitted in insertion order so diffs across commits stay stable.
class JsonWriter {
 public:
  void Raw(const std::string& key, const std::string& raw) {
    body_ += (body_.empty() ? "\"" : ",\"") + key + "\":" + raw;
  }
  void Str(const std::string& key, const std::string& v) {
    Raw(key, "\"" + v + "\"");
  }
  void Bool(const std::string& key, bool v) { Raw(key, v ? "true" : "false"); }
  void Int(const std::string& key, long long v) {
    Raw(key, std::to_string(v));
  }
  void Num(const std::string& key, double v, int decimals = 3) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    Raw(key, buf);
  }
  void Ints(const std::string& key, const std::vector<int>& xs) {
    std::string a = "[";
    for (size_t i = 0; i < xs.size(); ++i) {
      a += (i ? "," : "") + std::to_string(xs[i]);
    }
    Raw(key, a + "]");
  }
  void Nums(const std::string& key, const std::vector<double>& xs,
            int decimals = 1) {
    std::string a = "[";
    for (size_t i = 0; i < xs.size(); ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s%.*f", i ? "," : "", decimals,
                    xs[i]);
      a += buf;
    }
    Raw(key, a + "]");
  }
  std::string Render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Embedding models shared by every bench (fixed seeds; all benches see the
/// same feature space).
inline const nlp::EmbeddingModel& WordModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(300, 17);
  return *m;
}
inline const nlp::EmbeddingModel& SentenceModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(512, 18);
  return *m;
}

/// The default evaluation corpus (Table 2 proportions at 1:100 scale).
inline std::vector<rules::Rule> DefaultCorpus(uint64_t seed = 4242) {
  rules::CorpusConfig cc;
  cc.seed = seed;
  return rules::CorpusGenerator(cc).Generate();
}

/// Rules of a single platform from a corpus.
inline std::vector<rules::Rule> PlatformRules(
    const std::vector<rules::Rule>& corpus, rules::Platform p) {
  std::vector<rules::Rule> out;
  for (const auto& r : corpus) {
    if (r.platform == p) out.push_back(r);
  }
  return out;
}

/// Builds a labeled graph dataset over a rule pool.
inline graph::GraphDataset BuildGraphs(const std::vector<rules::Rule>& pool,
                                       int num_graphs, uint64_t seed,
                                       int max_nodes = 50) {
  graph::GraphBuilder::Config bc;
  bc.seed = seed;
  bc.max_nodes = max_nodes;
  graph::GraphBuilder builder(bc, &WordModel(), &SentenceModel());
  return builder.BuildDataset(pool, num_graphs);
}

/// Named homogeneous model factory (Table 5 row set).
inline std::unique_ptr<gnn::GraphModel> MakeHomoModel(const std::string& name,
                                                      int in_dim,
                                                      uint64_t seed) {
  if (name == "GCN") {
    return std::make_unique<gnn::GcnModel>(in_dim, 64, 2, seed);
  }
  if (name == "GXN") {
    return std::make_unique<gnn::GxnModel>(in_dim, 64, 3, 0.6, seed);
  }
  if (name == "GIN") {
    return std::make_unique<gnn::GinModel>(in_dim, 64, 2, seed);
  }
  if (name == "IFG") {
    return std::make_unique<gnn::InfoGraphModel>(in_dim, 64, 2, seed);
  }
  if (name == "ITGNN-C" || name == "ITGNN-S" || name == "ITGNN") {
    gnn::ItgnnModel::Config cfg;
    cfg.seed = seed;
    return std::make_unique<gnn::ItgnnModel>(cfg);
  }
  return nullptr;
}

/// Named heterogeneous model factory (Fig. 8 row set).
inline std::unique_ptr<gnn::GraphModel> MakeHeteroModel(
    const std::string& name, uint64_t seed) {
  if (name == "HGSL") return std::make_unique<gnn::HgslModel>(64, seed);
  if (name == "MAGCN") return std::make_unique<gnn::MagcnModel>(64, 2, seed);
  if (name == "MAGXN") {
    return std::make_unique<gnn::MagxnModel>(64, 3, 0.6, seed);
  }
  if (name == "ITGNN") {
    gnn::ItgnnModel::Config cfg;
    cfg.seed = seed;
    return std::make_unique<gnn::ItgnnModel>(cfg);
  }
  return nullptr;
}

/// Prints a section header for a bench.
inline void Banner(const char* title, const char* paper_ref) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n(reproduces %s; synthetic substitute data — compare shapes,\n"
              "not absolute values; see DESIGN.md)\n", title, paper_ref);
  std::printf("==================================================================\n");
}

}  // namespace glint::bench
