#include "rules/rule.h"

namespace glint::rules {

const char* LocationWord(Location l) {
  switch (l) {
    case Location::kAny: return "";
    case Location::kLivingRoom: return "living_room";
    case Location::kBedroom: return "bedroom";
    case Location::kKitchen: return "kitchen";
    case Location::kBathroom: return "bathroom";
    case Location::kHallway: return "hallway";
    case Location::kGarden: return "garden";
  }
  return "";
}

bool IsHouseWideChannel(Channel c) {
  switch (c) {
    case Channel::kSmoke:
    case Channel::kPresence:
    case Channel::kSecurity:
    case Channel::kTime:
    case Channel::kWater:
    case Channel::kPower:
    case Channel::kLockState:
    case Channel::kDigital:
      return true;
    default:
      return false;
  }
}

bool SameScope(Location a, Location b, Channel channel) {
  if (IsHouseWideChannel(channel)) return true;
  return a == Location::kAny || b == Location::kAny || a == b;
}

std::string CommandResultState(Command cmd) {
  switch (cmd) {
    case Command::kOn: return "on";
    case Command::kOff: return "off";
    case Command::kOpen: return "open";
    case Command::kClose: return "closed";
    case Command::kLock: return "locked";
    case Command::kUnlock: return "unlocked";
    case Command::kDim: return "dim";
    case Command::kBrighten: return "bright";
    case Command::kPlay: return "playing";
    case Command::kStopPlay: return "stopped";
    case Command::kNotify: return "notified";
    case Command::kSnapshot: return "captured";
    case Command::kArm: return "armed";
    case Command::kDisarm: return "disarmed";
    case Command::kStartClean: return "cleaning";
    case Command::kSetLevel: return "set";
  }
  return "";
}

bool CommandAssertsState(Command cmd, const std::string& state) {
  if (state.empty()) return true;
  if (CommandResultState(cmd) == state) return true;
  // A few equivalences used by rule phrasing ("on" ~ "playing" for media).
  if (cmd == Command::kPlay && state == "on") return true;
  if (cmd == Command::kOn && state == "playing") return true;
  if (cmd == Command::kStartClean && state == "on") return true;
  return false;
}

bool CommandNegatesState(Command cmd, const std::string& state) {
  static const struct {
    const char* state;
    Command negator;
  } kNegations[] = {
      {"on", Command::kOff},        {"off", Command::kOn},
      {"open", Command::kClose},    {"closed", Command::kOpen},
      {"locked", Command::kUnlock}, {"unlocked", Command::kLock},
      {"playing", Command::kStopPlay}, {"stopped", Command::kPlay},
      {"armed", Command::kDisarm},
      {"disarmed", Command::kArm},  {"bright", Command::kDim},
      {"dim", Command::kBrighten},
  };
  for (const auto& n : kNegations) {
    if (state == n.state && cmd == n.negator) return true;
  }
  return false;
}

bool ActionTriggers(const ActionSpec& action, const TriggerSpec& trigger,
                    Location action_loc, Location trigger_loc) {
  if (!SameScope(action_loc, trigger_loc, trigger.channel)) return false;
  // (i) Direct device-state trigger: the trigger watches the very device
  // class the action commands, and the resulting state matches.
  if (trigger.channel == StateChannelOf(action.device) &&
      trigger.device == action.device) {
    if (trigger.cmp == Comparator::kEquals || !trigger.state.empty()) {
      if (CommandAssertsState(action.command, trigger.state)) return true;
    } else if (trigger.cmp == Comparator::kAny) {
      return true;
    }
  }
  // Contact-sensor indirection: a contact sensor on a door/window observes
  // open/close commands on that opening.
  if (trigger.device == DeviceType::kContactSensor &&
      (action.device == DeviceType::kWindow ||
       action.device == DeviceType::kDoor ||
       action.device == DeviceType::kGarage)) {
    if (trigger.state.empty() ||
        CommandAssertsState(action.command, trigger.state)) {
      return true;
    }
  }

  // (ii)+(iii) Environmental coupling: the action perturbs the channel the
  // trigger observes, in a direction consistent with the comparator.
  for (const EnvEffect& e : EffectsOf(action.device, action.command)) {
    if (e.channel != trigger.channel) continue;
    switch (trigger.cmp) {
      case Comparator::kAbove:
        if (e.direction > 0) return true;
        break;
      case Comparator::kBelow:
        if (e.direction < 0) return true;
        break;
      case Comparator::kBetween:
      case Comparator::kAny:
      case Comparator::kEquals:
        // Any perturbation can move the value into the band / fire an
        // any-event trigger; state equality on env channels ("motion
        // detected") fires on positive perturbation.
        if (trigger.cmp == Comparator::kEquals) {
          if (e.direction > 0) return true;
        } else {
          return true;
        }
        break;
    }
  }
  return false;
}

bool RuleTriggersRule(const Rule& src, const Rule& dst) {
  for (const auto& a : src.actions) {
    if (ActionTriggers(a, dst.trigger, src.location, dst.location)) {
      return true;
    }
  }
  return false;
}

namespace {

// ActionTriggers restricted to instantaneous couplings: direct device-state
// matches, contact-sensor indirection, and fast (non-slow) env effects.
bool ActionTriggersInstant(const ActionSpec& action,
                           const TriggerSpec& trigger, Location action_loc,
                           Location trigger_loc) {
  if (!SameScope(action_loc, trigger_loc, trigger.channel)) return false;
  if (trigger.channel == StateChannelOf(action.device) &&
      trigger.device == action.device) {
    if (trigger.cmp == Comparator::kEquals || !trigger.state.empty()) {
      if (CommandAssertsState(action.command, trigger.state)) return true;
    } else if (trigger.cmp == Comparator::kAny) {
      return true;
    }
  }
  if (trigger.device == DeviceType::kContactSensor &&
      (action.device == DeviceType::kWindow ||
       action.device == DeviceType::kDoor ||
       action.device == DeviceType::kGarage)) {
    if (trigger.state.empty() ||
        CommandAssertsState(action.command, trigger.state)) {
      return true;
    }
  }
  for (const EnvEffect& e : EffectsOf(action.device, action.command)) {
    if (e.channel != trigger.channel || e.slow) continue;
    if (trigger.cmp == Comparator::kEquals) {
      if (e.direction > 0) return true;
    } else if (trigger.cmp == Comparator::kAbove) {
      if (e.direction > 0) return true;
    } else if (trigger.cmp == Comparator::kBelow) {
      if (e.direction < 0) return true;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

bool RuleTriggersRuleInstant(const Rule& src, const Rule& dst) {
  for (const auto& a : src.actions) {
    if (ActionTriggersInstant(a, dst.trigger, src.location, dst.location)) {
      return true;
    }
  }
  return false;
}

namespace {

// FNV-1a accumulation helpers for RuleContentHash.
inline uint64_t HashMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashMixStr(uint64_t h, const std::string& s) {
  h = HashMix(h, s.size());
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashMixDouble(uint64_t h, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return HashMix(h, bits);
}

}  // namespace

uint64_t RuleContentHash(const Rule& r) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = HashMix(h, static_cast<uint64_t>(r.platform));
  h = HashMix(h, static_cast<uint64_t>(r.location));
  const auto mix_trigger_shape = [&h](const TriggerSpec& t) {
    h = HashMix(h, static_cast<uint64_t>(t.channel));
    h = HashMix(h, static_cast<uint64_t>(t.device));
    h = HashMix(h, static_cast<uint64_t>(t.cmp));
    h = HashMixDouble(h, t.lo);
    h = HashMixDouble(h, t.hi);
    h = HashMixStr(h, t.state);
    h = HashMix(h, static_cast<uint64_t>(t.direction));
    h = HashMix(h, t.has_time ? 1 : 0);
    h = HashMix(h, static_cast<uint64_t>(t.hour_lo));
    h = HashMix(h, static_cast<uint64_t>(t.hour_hi));
  };
  mix_trigger_shape(r.trigger);
  h = HashMix(h, r.conditions.size());
  for (const auto& c : r.conditions) {
    h = HashMix(h, static_cast<uint64_t>(c.channel));
    h = HashMix(h, static_cast<uint64_t>(c.device));
    h = HashMix(h, static_cast<uint64_t>(c.cmp));
    h = HashMixDouble(h, c.lo);
    h = HashMixDouble(h, c.hi);
    h = HashMixStr(h, c.state);
    h = HashMix(h, c.has_time ? 1 : 0);
    h = HashMix(h, static_cast<uint64_t>(c.hour_lo));
    h = HashMix(h, static_cast<uint64_t>(c.hour_hi));
  }
  h = HashMix(h, r.actions.size());
  for (const auto& a : r.actions) {
    h = HashMix(h, static_cast<uint64_t>(a.device));
    h = HashMix(h, static_cast<uint64_t>(a.command));
    h = HashMixDouble(h, a.level);
  }
  h = HashMixStr(h, r.text);
  h = HashMix(h, r.manual_mode_pin ? 1 : 0);
  return h;
}

}  // namespace glint::rules
