#pragma once

#include <string>
#include <vector>

#include "nlp/pos_tagger.h"

namespace glint::nlp {

/// A clause extracted from a rule sentence: the root verb (main task), its
/// object nouns, and modifiers. Approximates the spaCy dependency output of
/// Figure 4 with patterns tuned to trigger-action sentences.
struct Clause {
  std::string root_verb;               ///< main task, e.g. "turn_on"
  std::vector<std::string> objects;    ///< dobj/nsubj nouns, e.g. "light"
  std::vector<std::string> modifiers;  ///< adjectives/adverbs on the objects
  std::vector<std::string> verbs;      ///< all verbs in the clause
  std::vector<std::string> nouns;      ///< all content nouns in the clause
};

/// Full parse of a rule sentence.
struct ParsedRule {
  /// Clauses in trigger-first order: clause 0 is the trigger ("if/when..."),
  /// the remainder are actions ("then ..."). Imperative sentences with no
  /// subordinating conjunction yield a single action clause.
  std::vector<Clause> clauses;

  /// True when a subordinating conjunction introduced a trigger clause.
  bool has_trigger = false;

  const Clause* trigger() const {
    return has_trigger && !clauses.empty() ? &clauses[0] : nullptr;
  }
  std::vector<const Clause*> actions() const {
    std::vector<const Clause*> out;
    for (size_t i = has_trigger ? 1 : 0; i < clauses.size(); ++i) {
      out.push_back(&clauses[i]);
    }
    return out;
  }
};

/// Pattern-based dependency extractor for trigger-action rule sentences.
class DepParser {
 public:
  /// Parses a raw rule sentence.
  static ParsedRule Parse(const std::string& sentence);

  /// Parses a single clause from tagged tokens.
  static Clause ParseClause(const std::vector<TaggedToken>& tagged);
};

}  // namespace glint::nlp
