#pragma once

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace glint::ml {

/// K-nearest-neighbours classifier (brute force, Euclidean distance on
/// standardized features, distance-weighted class-weighted voting).
class Knn : public Classifier {
 public:
  struct Params {
    int k = 5;
    bool distance_weighted = true;
  };

  Knn() : Knn(Params()) {}
  explicit Knn(Params params) : params_(params) {}

  void Fit(const Dataset& data, const std::vector<double>& class_weights) override;
  int Predict(const FloatVec& x) const override;
  double PredictProba(const FloatVec& x) const override;
  std::string Name() const override { return "KNN"; }

 private:
  std::vector<double> Votes(const FloatVec& x) const;

  Params params_;
  StandardScaler scaler_;
  Dataset train_;
  std::vector<double> class_weights_;
  int num_classes_ = 2;
};

}  // namespace glint::ml
