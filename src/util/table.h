#pragma once

#include <string>
#include <vector>

namespace glint {

/// ASCII table printer used by the benchmark harness to render the paper's
/// tables and figure data series in the terminal.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 1);

  /// Renders the table with aligned columns and separators.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace glint
