#pragma once

#include <string>

#include "gnn/models.h"
#include "util/status.h"

namespace glint::gnn {

/// Serializes a model's parameter values to a binary file (used for the
/// Sec. 4.8.2 model-size measurement and for shipping the cloud-trained
/// public model to the hub).
Status SaveModel(GraphModel* model, const std::string& path);

/// Loads parameter values into a model of identical architecture.
Status LoadModel(GraphModel* model, const std::string& path);

/// Serialized size in bytes without writing a file.
size_t ModelBytes(GraphModel* model);

}  // namespace glint::gnn
