#include <gtest/gtest.h>

#include <set>

#include "nlp/tokenizer.h"
#include "rules/corpus.h"
#include "rules/rule.h"

namespace glint::rules {
namespace {

// ---------------------------------------------------------------------------
// Device taxonomy
// ---------------------------------------------------------------------------

TEST(Device, NamesResolve) {
  EXPECT_STREQ(DeviceWord(DeviceType::kAc), "ac");
  EXPECT_STREQ(DeviceWord(DeviceType::kSmokeAlarm), "smoke_alarm");
  EXPECT_STREQ(PlatformName(Platform::kIFTTT), "IFTTT");
  EXPECT_STREQ(ChannelName(Channel::kTemperature), "temperature");
}

TEST(Device, SensorsSenseTheirChannel) {
  EXPECT_EQ(SensedChannelOf(DeviceType::kMotionSensor), Channel::kMotion);
  EXPECT_EQ(SensedChannelOf(DeviceType::kSmokeAlarm), Channel::kSmoke);
  EXPECT_EQ(SensedChannelOf(DeviceType::kLight), Channel::kNone);
  EXPECT_TRUE(IsSensor(DeviceType::kLeakSensor));
  EXPECT_FALSE(IsSensor(DeviceType::kHeater));
}

TEST(Device, StateChannels) {
  EXPECT_EQ(StateChannelOf(DeviceType::kWindow), Channel::kContact);
  EXPECT_EQ(StateChannelOf(DeviceType::kLock), Channel::kLockState);
  EXPECT_EQ(StateChannelOf(DeviceType::kEmailService), Channel::kDigital);
}

class CommandOpposition
    : public ::testing::TestWithParam<std::pair<Command, Command>> {};

TEST_P(CommandOpposition, OpposesSymmetrically) {
  auto [a, b] = GetParam();
  EXPECT_TRUE(CommandsOppose(a, b));
  EXPECT_TRUE(CommandsOppose(b, a));
  EXPECT_FALSE(CommandsOppose(a, a));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CommandOpposition,
    ::testing::Values(std::make_pair(Command::kOn, Command::kOff),
                      std::make_pair(Command::kOpen, Command::kClose),
                      std::make_pair(Command::kLock, Command::kUnlock),
                      std::make_pair(Command::kDim, Command::kBrighten),
                      std::make_pair(Command::kPlay, Command::kStopPlay),
                      std::make_pair(Command::kArm, Command::kDisarm)));

TEST(Device, NonOpposingCommands) {
  EXPECT_FALSE(CommandsOppose(Command::kOn, Command::kOpen));
  EXPECT_FALSE(CommandsOppose(Command::kNotify, Command::kSnapshot));
}

TEST(Device, EffectsOfHeater) {
  auto effects = EffectsOf(DeviceType::kHeater, Command::kOn);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].channel, Channel::kTemperature);
  EXPECT_EQ(effects[0].direction, +1);
  EXPECT_TRUE(effects[0].slow);
}

TEST(Device, AcCoolsAndDries) {
  auto effects = EffectsOf(DeviceType::kAc, Command::kOn);
  ASSERT_EQ(effects.size(), 2u);
  EXPECT_EQ(effects[0].channel, Channel::kTemperature);
  EXPECT_EQ(effects[0].direction, -1);
  EXPECT_EQ(effects[1].channel, Channel::kHumidity);
  EXPECT_EQ(effects[1].direction, -1);
}

TEST(Device, VacuumEmitsMotion) {
  auto effects = EffectsOf(DeviceType::kVacuum, Command::kStartClean);
  bool motion = false;
  for (const auto& e : effects) {
    motion |= e.channel == Channel::kMotion && e.direction > 0 && !e.slow;
  }
  EXPECT_TRUE(motion);
}

TEST(Device, PhoneHasNoPhysicalEffects) {
  EXPECT_TRUE(EffectsOf(DeviceType::kPhone, Command::kNotify).empty());
}

// ---------------------------------------------------------------------------
// Command-state semantics
// ---------------------------------------------------------------------------

TEST(CommandState, ResultStates) {
  EXPECT_EQ(CommandResultState(Command::kOpen), "open");
  EXPECT_EQ(CommandResultState(Command::kLock), "locked");
  EXPECT_EQ(CommandResultState(Command::kStartClean), "cleaning");
}

TEST(CommandState, AssertsOwnResult) {
  EXPECT_TRUE(CommandAssertsState(Command::kOpen, "open"));
  EXPECT_TRUE(CommandAssertsState(Command::kOn, "on"));
  EXPECT_FALSE(CommandAssertsState(Command::kOpen, "closed"));
  EXPECT_TRUE(CommandAssertsState(Command::kOpen, ""));  // wildcard
}

TEST(CommandState, MediaEquivalences) {
  EXPECT_TRUE(CommandAssertsState(Command::kPlay, "on"));
  EXPECT_TRUE(CommandAssertsState(Command::kOn, "playing"));
}

TEST(CommandState, Negations) {
  EXPECT_TRUE(CommandNegatesState(Command::kClose, "open"));
  EXPECT_TRUE(CommandNegatesState(Command::kDisarm, "armed"));
  EXPECT_TRUE(CommandNegatesState(Command::kLock, "unlocked"));
  EXPECT_FALSE(CommandNegatesState(Command::kOpen, "open"));
}

// ---------------------------------------------------------------------------
// Location scoping
// ---------------------------------------------------------------------------

TEST(Location, HouseWideChannels) {
  EXPECT_TRUE(IsHouseWideChannel(Channel::kSmoke));
  EXPECT_TRUE(IsHouseWideChannel(Channel::kDigital));
  EXPECT_FALSE(IsHouseWideChannel(Channel::kTemperature));
  EXPECT_FALSE(IsHouseWideChannel(Channel::kIlluminance));
}

TEST(Location, SameScopeRules) {
  // Room channels couple same room or kAny.
  EXPECT_TRUE(SameScope(Location::kKitchen, Location::kKitchen,
                        Channel::kTemperature));
  EXPECT_TRUE(SameScope(Location::kAny, Location::kKitchen,
                        Channel::kTemperature));
  EXPECT_FALSE(SameScope(Location::kKitchen, Location::kBedroom,
                         Channel::kTemperature));
  // House channels couple everything.
  EXPECT_TRUE(SameScope(Location::kKitchen, Location::kBedroom,
                        Channel::kSmoke));
}

// ---------------------------------------------------------------------------
// ActionTriggers semantics (the correlation oracle)
// ---------------------------------------------------------------------------

TriggerSpec MakeStateTrigger(DeviceType d, const char* state) {
  TriggerSpec t;
  t.device = d;
  t.channel = StateChannelOf(d);
  t.cmp = Comparator::kEquals;
  t.state = state;
  return t;
}

TEST(ActionTriggers, DirectStateMatch) {
  ActionSpec open_window{DeviceType::kWindow, Command::kOpen, 0};
  EXPECT_TRUE(ActionTriggers(open_window,
                             MakeStateTrigger(DeviceType::kWindow, "open")));
  EXPECT_FALSE(ActionTriggers(open_window,
                              MakeStateTrigger(DeviceType::kWindow, "closed")));
}

TEST(ActionTriggers, ContactSensorIndirection) {
  ActionSpec open_door{DeviceType::kDoor, Command::kOpen, 0};
  TriggerSpec t;
  t.device = DeviceType::kContactSensor;
  t.channel = Channel::kContact;
  t.cmp = Comparator::kEquals;
  t.state = "open";
  EXPECT_TRUE(ActionTriggers(open_door, t));
}

TEST(ActionTriggers, EnvThresholdCoupling) {
  ActionSpec heater_on{DeviceType::kHeater, Command::kOn, 0};
  TriggerSpec above;
  above.channel = Channel::kTemperature;
  above.device = DeviceType::kTemperatureSensor;
  above.cmp = Comparator::kAbove;
  above.lo = 80;
  EXPECT_TRUE(ActionTriggers(heater_on, above));
  TriggerSpec below = above;
  below.cmp = Comparator::kBelow;
  EXPECT_FALSE(ActionTriggers(heater_on, below));  // heating cannot cool
}

TEST(ActionTriggers, SensorIntake) {
  ActionSpec vacuum{DeviceType::kVacuum, Command::kStartClean, 0};
  TriggerSpec motion;
  motion.channel = Channel::kMotion;
  motion.device = DeviceType::kMotionSensor;
  motion.cmp = Comparator::kEquals;
  motion.state = "active";
  EXPECT_TRUE(ActionTriggers(vacuum, motion));
}

TEST(ActionTriggers, LocationBlocksRoomChannels) {
  ActionSpec heater_on{DeviceType::kHeater, Command::kOn, 0};
  TriggerSpec above;
  above.channel = Channel::kTemperature;
  above.cmp = Comparator::kAbove;
  above.lo = 80;
  EXPECT_FALSE(ActionTriggers(heater_on, above, Location::kKitchen,
                              Location::kBedroom));
  EXPECT_TRUE(ActionTriggers(heater_on, above, Location::kKitchen,
                             Location::kKitchen));
}

TEST(ActionTriggers, InstantExcludesSlowChannels) {
  Rule heater;
  heater.actions.push_back({DeviceType::kHeater, Command::kOn, 0});
  Rule temp_rule;
  temp_rule.trigger.channel = Channel::kTemperature;
  temp_rule.trigger.cmp = Comparator::kAbove;
  temp_rule.trigger.lo = 80;
  EXPECT_TRUE(RuleTriggersRule(heater, temp_rule));
  EXPECT_FALSE(RuleTriggersRuleInstant(heater, temp_rule));

  Rule light;
  light.actions.push_back({DeviceType::kLight, Command::kOn, 0});
  Rule light_watch;
  light_watch.trigger = MakeStateTrigger(DeviceType::kLight, "on");
  EXPECT_TRUE(RuleTriggersRuleInstant(light, light_watch));
}

// ---------------------------------------------------------------------------
// Paper rule sets
// ---------------------------------------------------------------------------

TEST(PaperRules, Table1HasNineRules) {
  auto rules = CorpusGenerator::Table1Rules();
  ASSERT_EQ(rules.size(), 9u);
  EXPECT_EQ(rules[0].platform, Platform::kSmartThings);
  EXPECT_EQ(rules[4].platform, Platform::kIFTTT);
  EXPECT_EQ(rules[8].platform, Platform::kAlexa);
}

TEST(PaperRules, Table1KnownCorrelations) {
  auto rules = CorpusGenerator::Table1Rules();
  // Rule 1 (lights off) triggers Rule 9 (lock when lights off).
  EXPECT_TRUE(RuleTriggersRule(rules[0], rules[8]));
  // Rule 4 (AC on) triggers Rule 5 (close windows when AC on).
  EXPECT_TRUE(RuleTriggersRule(rules[3], rules[4]));
  // Rule 5 (close windows) does not trigger Rule 6 (smoke).
  EXPECT_FALSE(RuleTriggersRule(rules[4], rules[5]));
}

TEST(PaperRules, Table4HasThirteenSettings) {
  EXPECT_EQ(CorpusGenerator::Table4Settings().size(), 13u);
}

TEST(PaperRules, NewThreatBlueprintsHaveFourGroups) {
  auto groups = CorpusGenerator::NewThreatBlueprints();
  ASSERT_EQ(groups.size(), 4u);
  for (const auto& g : groups) EXPECT_GE(g.size(), 2u);
  EXPECT_TRUE(groups[0][0].manual_mode_pin);
}

// ---------------------------------------------------------------------------
// Corpus generation
// ---------------------------------------------------------------------------

TEST(Corpus, RespectsConfiguredCounts) {
  CorpusConfig cfg;
  cfg.ifttt = 50;
  cfg.smartthings = 10;
  cfg.alexa = 20;
  cfg.google_assistant = 5;
  cfg.home_assistant = 15;
  CorpusGenerator gen(cfg);
  auto corpus = gen.Generate();
  EXPECT_EQ(corpus.size(), 100u);
  int counts[kNumPlatforms] = {0};
  for (const auto& r : corpus) counts[static_cast<int>(r.platform)]++;
  EXPECT_EQ(counts[0], 50);
  EXPECT_EQ(counts[1], 10);
  EXPECT_EQ(counts[2], 20);
}

TEST(Corpus, DeterministicForSeed) {
  CorpusConfig cfg;
  cfg.ifttt = 30;
  cfg.smartthings = 0;
  cfg.alexa = 0;
  cfg.google_assistant = 0;
  cfg.home_assistant = 0;
  auto a = CorpusGenerator(cfg).Generate();
  auto b = CorpusGenerator(cfg).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

TEST(Corpus, UniqueIds) {
  CorpusConfig cfg;
  cfg.ifttt = 100;
  CorpusGenerator gen(cfg);
  auto corpus = gen.Generate();
  std::set<int> ids;
  for (const auto& r : corpus) ids.insert(r.id);
  EXPECT_EQ(ids.size(), corpus.size());
}

TEST(Corpus, EveryRuleHasTextAndAction) {
  CorpusConfig cfg;
  cfg.ifttt = 80;
  cfg.alexa = 40;
  CorpusGenerator gen(cfg);
  for (const auto& r : gen.Generate()) {
    EXPECT_FALSE(r.text.empty());
    EXPECT_FALSE(r.actions.empty());
  }
}

TEST(Corpus, PhrasingMentionsDeviceWord) {
  // Rendered text must contain a token resolvable to the action device (so
  // the NLP pipeline can recover semantics). Allow synonym surfaces by
  // checking a small candidate set per device type.
  CorpusConfig cfg;
  cfg.ifttt = 60;
  CorpusGenerator gen(cfg);
  int mentions = 0, total = 0;
  for (const auto& r : gen.Generate()) {
    auto words = nlp::Tokenizer::Words(r.text);
    const std::string dev = DeviceWord(r.actions[0].device);
    ++total;
    for (const auto& w : words) {
      if (w == dev || w + "s" == dev || w == dev + "s") {
        ++mentions;
        break;
      }
    }
  }
  // Most rules mention the device noun (brands/plurals cause a few misses).
  EXPECT_GT(mentions, total * 7 / 10);
}

TEST(Corpus, IftttHasWebRules) {
  CorpusConfig cfg;
  cfg.ifttt = 300;
  CorpusGenerator gen(cfg);
  int web = 0;
  for (const auto& r : gen.Generate()) {
    if (r.trigger.channel == Channel::kDigital) ++web;
  }
  EXPECT_GT(web, 50);  // ~45% web triggers, half of web rules
}

TEST(Corpus, AlexaRulesRarelyHaveConditions) {
  CorpusConfig cfg;
  cfg.ifttt = 0;
  cfg.smartthings = 0;
  cfg.google_assistant = 0;
  cfg.home_assistant = 0;
  cfg.alexa = 200;
  CorpusGenerator gen(cfg);
  int with_cond = 0;
  for (const auto& r : gen.Generate()) with_cond += !r.conditions.empty();
  EXPECT_LT(with_cond, 40);
}

}  // namespace
}  // namespace glint::rules
