#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "gnn/drift.h"
#include "gnn/model_io.h"
#include "gnn/trainer.h"
#include "gnn/transfer.h"
#include "graph/builder.h"
#include "rules/corpus.h"

namespace glint::gnn {
namespace {

// Shared fixture: a small labeled homogeneous dataset and a heterogeneous
// one, built once for the whole file.
class ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    nlp::EmbeddingModel* wm = new nlp::EmbeddingModel(300, 17);
    nlp::EmbeddingModel* sm = new nlp::EmbeddingModel(512, 18);
    {
      rules::CorpusConfig cc;
      cc.ifttt = 400;
      cc.smartthings = 0;
      cc.alexa = 0;
      cc.google_assistant = 0;
      cc.home_assistant = 0;
      auto corpus = rules::CorpusGenerator(cc).Generate();
      graph::GraphBuilder::Config bc;
      bc.max_nodes = 16;
      graph::GraphBuilder builder(bc, wm, sm);
      homo_ = new std::vector<GnnGraph>(
          ToGnnGraphs(builder.BuildDataset(corpus, 160)));
    }
    {
      rules::CorpusConfig cc;
      cc.ifttt = 200;
      cc.smartthings = 40;
      cc.alexa = 120;
      cc.google_assistant = 60;
      cc.home_assistant = 40;
      auto corpus = rules::CorpusGenerator(cc).Generate();
      graph::GraphBuilder::Config bc;
      bc.max_nodes = 16;
      bc.seed = 777;
      graph::GraphBuilder builder(bc, wm, sm);
      hetero_ = new std::vector<GnnGraph>(
          ToGnnGraphs(builder.BuildDataset(corpus, 120)));
    }
  }

  static std::vector<GnnGraph>* homo_;
  static std::vector<GnnGraph>* hetero_;
};

std::vector<GnnGraph>* ModelTest::homo_ = nullptr;
std::vector<GnnGraph>* ModelTest::hetero_ = nullptr;

// ---------------------------------------------------------------------------
// Conversion
// ---------------------------------------------------------------------------

TEST_F(ModelTest, ConversionShapes) {
  for (const auto& g : *homo_) {
    EXPECT_GT(g.num_nodes, 0);
    EXPECT_EQ(g.node_types.size(), static_cast<size_t>(g.num_nodes));
    EXPECT_EQ(g.typed_features[0].rows, g.num_nodes);  // all type 0
    EXPECT_EQ(g.typed_features[0].cols, 300);
  }
}

TEST_F(ModelTest, HeteroDatasetMixesTypes) {
  int hetero_graphs = 0;
  for (const auto& g : *hetero_) hetero_graphs += g.IsHeterogeneous();
  EXPECT_GT(hetero_graphs, 20);
}

TEST(NormalizedAdjacencyTest, RowsSumNearOneForRegularGraph) {
  // A symmetric pair with self-loops: entries 1/2 each.
  auto adj = NormalizedAdjacency(2, {{0, 1}});
  double row0 = 0;
  for (const auto& e : adj.entries) {
    if (e.r == 0) row0 += e.v;
  }
  EXPECT_NEAR(row0, 1.0, 1e-6);
}

TEST(NormalizedAdjacencyTest, IsolatedNodeKeepsSelfLoop) {
  auto adj = NormalizedAdjacency(1, {});
  ASSERT_EQ(adj.entries.size(), 1u);
  EXPECT_FLOAT_EQ(adj.entries[0].v, 1.f);
}

// ---------------------------------------------------------------------------
// Forward shapes for every model
// ---------------------------------------------------------------------------

TEST_F(ModelTest, AllModelsProduceWellFormedOutputs) {
  std::vector<std::unique_ptr<GraphModel>> homo_models;
  homo_models.emplace_back(new GcnModel(300, 32, 2, 1));
  homo_models.emplace_back(new GinModel(300, 32, 2, 2));
  homo_models.emplace_back(new InfoGraphModel(300, 32, 2, 3));
  homo_models.emplace_back(new GxnModel(300, 32, 3, 0.6, 4));
  for (auto& m : homo_models) {
    Tape tape;
    auto r = m->Forward(&tape, (*homo_)[0]);
    EXPECT_EQ(r.logits->rows(), 1) << m->Name();
    EXPECT_EQ(r.logits->cols(), 2) << m->Name();
    EXPECT_EQ(r.embedding->cols(), m->EmbedDim()) << m->Name();
    EXPECT_FALSE(std::isnan(r.logits->value.data[0])) << m->Name();
  }

  std::vector<std::unique_ptr<GraphModel>> hetero_models;
  hetero_models.emplace_back(new MagcnModel(32, 2, 5));
  hetero_models.emplace_back(new MagxnModel(32, 3, 0.6, 6));
  hetero_models.emplace_back(new HgslModel(32, 7));
  hetero_models.emplace_back(new ItgnnModel());
  for (auto& m : hetero_models) {
    for (int gi = 0; gi < 5; ++gi) {
      Tape tape;
      auto r = m->Forward(&tape, (*hetero_)[static_cast<size_t>(gi)]);
      EXPECT_EQ(r.logits->cols(), 2) << m->Name();
      EXPECT_FALSE(std::isnan(r.logits->value.data[0])) << m->Name();
    }
  }
}

TEST_F(ModelTest, ItgnnEmitsPoolLogitsPerScale) {
  ItgnnModel::Config cfg;
  cfg.num_scales = 3;
  ItgnnModel model(cfg);
  Tape tape;
  auto r = model.Forward(&tape, (*hetero_)[0]);
  EXPECT_EQ(r.pool_logits.size(), 2u);  // scales - 1 pools
}

TEST_F(ModelTest, SingleScaleItgnnHasNoPoolLogits) {
  ItgnnModel::Config cfg;
  cfg.num_scales = 1;
  ItgnnModel model(cfg);
  Tape tape;
  auto r = model.Forward(&tape, (*hetero_)[0]);
  EXPECT_TRUE(r.pool_logits.empty());
}

TEST_F(ModelTest, SingleNodeGraphSurvivesAllModels) {
  // Degenerate case: pooling and readouts on one node.
  GnnGraph g;
  g.num_nodes = 1;
  g.label = 0;
  g.node_types = {0};
  g.type_rows[0] = {0};
  g.typed_features[0] = Matrix(1, 300, 0.1f);
  g.adj_norm = NormalizedAdjacency(1, {});
  g.adj_raw.rows = 1;
  g.adj_raw.cols = 1;
  g.neighbors.resize(1);
  ItgnnModel model;
  Tape tape;
  auto r = model.Forward(&tape, g);
  EXPECT_FALSE(std::isnan(r.logits->value.data[0]));
}

TEST_F(ModelTest, ParameterGroupsPartitionParameters) {
  ItgnnModel model;
  size_t grouped = 0;
  for (const auto& g : model.ParameterGroups()) grouped += g.size();
  EXPECT_EQ(grouped, model.Parameters().size());
  EXPECT_GE(model.ParameterGroups().size(), 3u);
}

// ---------------------------------------------------------------------------
// Training behaviour
// ---------------------------------------------------------------------------

TEST_F(ModelTest, SupervisedTrainingFitsTrainingSet) {
  std::vector<GnnGraph> train(homo_->begin(), homo_->begin() + 80);
  GcnModel model(300, 32, 2, 11);
  TrainConfig tc;
  tc.epochs = 15;
  Trainer trainer(tc);
  trainer.TrainSupervised(&model, train);
  auto m = Trainer::Evaluate(&model, train);
  EXPECT_GT(m.accuracy, 0.85);
}

TEST_F(ModelTest, TrainingGeneralizesAboveChance) {
  Rng rng(21);
  std::vector<GnnGraph> train, test;
  SplitGraphs(*homo_, 0.8, &rng, &train, &test);
  ItgnnModel::Config cfg;
  cfg.num_scales = 2;
  ItgnnModel model(cfg);
  TrainConfig tc;
  tc.epochs = 12;
  Trainer trainer(tc);
  trainer.TrainSupervised(&model, train);
  auto m = Trainer::Evaluate(&model, test);
  EXPECT_GT(m.accuracy, 0.7);
}

TEST_F(ModelTest, ContrastiveSeparatesClasses) {
  std::vector<GnnGraph> train(homo_->begin(), homo_->begin() + 100);
  ItgnnModel::Config cfg;
  cfg.num_scales = 2;
  cfg.embed_dim = 32;
  ItgnnModel model(cfg);
  TrainConfig tc;
  tc.epochs = 10;
  Trainer trainer(tc);
  trainer.TrainContrastive(&model, train);
  // Mean within-class distance should be below cross-class distance.
  std::vector<FloatVec> z = Trainer::EmbedAll(&model, train);
  double within = 0, across = 0;
  int nw = 0, na = 0;
  for (size_t i = 0; i < z.size(); ++i) {
    for (size_t j = i + 1; j < z.size(); ++j) {
      const double d = EuclideanDistance(z[i], z[j]);
      if (train[i].label == train[j].label) {
        within += d;
        ++nw;
      } else {
        across += d;
        ++na;
      }
    }
  }
  ASSERT_GT(nw, 0);
  ASSERT_GT(na, 0);
  EXPECT_LT(within / nw, across / na);
}

TEST_F(ModelTest, OversampleGraphsGrowsMinority) {
  Rng rng(31);
  auto over = OversampleGraphs(*homo_, 2.0, &rng);
  int before = 0, after = 0;
  for (const auto& g : *homo_) before += g.label;
  for (const auto& g : over) after += g.label;
  EXPECT_EQ(after, 2 * before);
}

TEST_F(ModelTest, SplitGraphsPartitions) {
  Rng rng(41);
  std::vector<GnnGraph> train, test;
  SplitGraphs(*homo_, 0.75, &rng, &train, &test);
  EXPECT_EQ(train.size() + test.size(), homo_->size());
  EXPECT_EQ(train.size(), static_cast<size_t>(0.75 * homo_->size()));
}

// ---------------------------------------------------------------------------
// Model IO
// ---------------------------------------------------------------------------

TEST_F(ModelTest, SaveLoadPreservesPredictions) {
  ItgnnModel::Config cfg;
  cfg.num_scales = 2;
  ItgnnModel a(cfg);
  std::vector<GnnGraph> train(homo_->begin(), homo_->begin() + 40);
  TrainConfig tc;
  tc.epochs = 3;
  Trainer trainer(tc);
  trainer.TrainSupervised(&a, train);

  const std::string path = "/tmp/glint_model_test.bin";
  ASSERT_TRUE(SaveModel(&a, path).ok());

  ItgnnModel b(cfg);
  ASSERT_TRUE(LoadModel(&b, path).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Trainer::Predict(&a, (*homo_)[static_cast<size_t>(i)]),
              Trainer::Predict(&b, (*homo_)[static_cast<size_t>(i)]));
  }
  std::remove(path.c_str());
}

TEST_F(ModelTest, LoadRejectsWrongArchitecture) {
  ItgnnModel::Config small;
  small.num_scales = 2;
  small.hidden = 16;
  ItgnnModel a(small);
  const std::string path = "/tmp/glint_model_arch.bin";
  ASSERT_TRUE(SaveModel(&a, path).ok());
  ItgnnModel::Config big;
  big.num_scales = 3;
  ItgnnModel b(big);
  EXPECT_FALSE(LoadModel(&b, path).ok());
  std::remove(path.c_str());
}

// Malformed model files must surface as Status, never abort. Each case
// starts from a valid saved file and damages it a different way.
TEST_F(ModelTest, MalformedModelFilesAreStatusesNotAborts) {
  GcnModel model(300, 16, 2, 51);
  const std::string path = "/tmp/glint_model_malformed.bin";
  ASSERT_TRUE(SaveModel(&model, path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<size_t>(size));
  ASSERT_EQ(fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  fclose(f);

  auto write_variant = [&](const std::vector<char>& b) {
    FILE* w = fopen(path.c_str(), "wb");
    ASSERT_NE(w, nullptr);
    ASSERT_EQ(fwrite(b.data(), 1, b.size(), w), b.size());
    fclose(w);
  };
  GcnModel target(300, 16, 2, 51);

  // Bad magic.
  {
    auto b = bytes;
    b[0] ^= 0x5a;
    write_variant(b);
    Status st = LoadModel(&target, path);
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    EXPECT_NE(st.message().find("magic"), std::string::npos);
  }
  // Unknown future format version.
  {
    auto b = bytes;
    b[4] = 99;
    write_variant(b);
    EXPECT_EQ(LoadModel(&target, path).code(),
              StatusCode::kFailedPrecondition);
  }
  // Truncated mid-payload.
  {
    auto b = bytes;
    b.resize(b.size() / 2);
    write_variant(b);
    EXPECT_EQ(LoadModel(&target, path).code(), StatusCode::kIOError);
  }
  // Single flipped payload byte → checksum mismatch.
  {
    auto b = bytes;
    b[b.size() - 3] ^= 0x01;
    write_variant(b);
    Status st = LoadModel(&target, path);
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    EXPECT_NE(st.message().find("checksum"), std::string::npos);
  }
  // Trailing garbage byte after a valid image.
  {
    auto b = bytes;
    b.push_back('x');
    write_variant(b);
    EXPECT_EQ(LoadModel(&target, path).code(), StatusCode::kIOError);
  }
  // The original bytes still load after all that.
  write_variant(bytes);
  EXPECT_TRUE(LoadModel(&target, path).ok());
  std::remove(path.c_str());
}

TEST_F(ModelTest, ModelBytesMatchesFile) {
  GcnModel model(300, 16, 2, 51);
  const std::string path = "/tmp/glint_model_bytes.bin";
  ASSERT_TRUE(SaveModel(&model, path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  fclose(f);
  EXPECT_EQ(static_cast<size_t>(size), ModelBytes(&model));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Transfer learning
// ---------------------------------------------------------------------------

TEST_F(ModelTest, FrozenGroupsDoNotChange) {
  ItgnnModel::Config cfg;
  cfg.num_scales = 2;
  ItgnnModel model(cfg);
  auto groups = model.ParameterGroups();
  // Snapshot group 0 (the converter).
  std::vector<Matrix> before;
  for (Parameter* p : groups[0]) before.push_back(p->value);

  TransferConfig tc;
  tc.freeze_groups = 1;
  tc.fine_tune.epochs = 2;
  std::vector<GnnGraph> target(homo_->begin(), homo_->begin() + 30);
  TransferFineTune(&model, target, tc);

  auto after_groups = model.ParameterGroups();
  for (size_t i = 0; i < after_groups[0].size(); ++i) {
    EXPECT_EQ(after_groups[0][i]->value.data, before[i].data);
  }
  // And all parameters are unfrozen afterwards.
  for (const auto& g : model.ParameterGroups()) {
    for (Parameter* p : g) EXPECT_FALSE(p->frozen);
  }
}

TEST_F(ModelTest, HeadOnlyFineTuneChangesHead) {
  ItgnnModel::Config cfg;
  cfg.num_scales = 2;
  ItgnnModel model(cfg);
  auto groups = model.ParameterGroups();
  Matrix head_before = groups.back()[0]->value;

  TransferConfig tc;
  tc.freeze_groups = -1;  // all but last
  tc.fine_tune.epochs = 2;
  std::vector<GnnGraph> target(homo_->begin(), homo_->begin() + 30);
  TransferFineTune(&model, target, tc);

  EXPECT_NE(model.ParameterGroups().back()[0]->value.data, head_before.data);
}

// ---------------------------------------------------------------------------
// Drift detection (Algorithm 3)
// ---------------------------------------------------------------------------

TEST(DriftDetectorTest, FlagsFarSamplesOnly) {
  // Two synthetic tight clusters in 2-d.
  Rng rng(61);
  std::vector<FloatVec> z;
  std::vector<int> y;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 50; ++i) {
      z.push_back({static_cast<float>(rng.Gaussian(c * 10, 0.5)),
                   static_cast<float>(rng.Gaussian(0, 0.5))});
      y.push_back(c);
    }
  }
  DriftDetector dd;
  dd.Fit(z, y);
  // In-distribution points are not drifting.
  EXPECT_FALSE(dd.IsDrifting({0.2f, 0.1f}));
  EXPECT_FALSE(dd.IsDrifting({10.1f, -0.2f}));
  // A point far from both centroids is.
  EXPECT_TRUE(dd.IsDrifting({5.f, 40.f}));
  EXPECT_GT(dd.DriftingDegree({5.f, 40.f}), 3.0);
}

TEST(DriftDetectorTest, DegreeIsMinAcrossClasses) {
  std::vector<FloatVec> z{{0.f},    {0.1f},  {-0.1f}, {0.2f},  {-0.2f},
                          {10.f},   {10.1f}, {9.9f},  {10.2f}, {9.8f}};
  std::vector<int> y{0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  DriftDetector dd;
  dd.Fit(z, y);
  // Near class 1's centroid: small degree even though far from class 0.
  EXPECT_LT(dd.DriftingDegree({10.05f}), 3.0);
}

TEST(DriftDetectorTest, StatsRoundTripThroughFile) {
  Rng rng(62);
  std::vector<FloatVec> z;
  std::vector<int> y;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 50; ++i) {
      z.push_back({static_cast<float>(rng.Gaussian(c * 10, 0.5)),
                   static_cast<float>(rng.Gaussian(0, 0.5))});
      y.push_back(c);
    }
  }
  DriftDetector fitted;
  fitted.Fit(z, y);
  const std::string path = "/tmp/glint_drift_roundtrip.bin";
  ASSERT_TRUE(SaveDriftStats(fitted, path).ok());

  DriftDetector restored;
  EXPECT_FALSE(restored.fitted());
  ASSERT_TRUE(LoadDriftStats(&restored, path).ok());
  ASSERT_TRUE(restored.fitted());
  // Bit-identical scoring: same degree for in-band and far probes.
  for (const FloatVec& probe :
       {FloatVec{0.2f, 0.1f}, FloatVec{10.1f, -0.2f}, FloatVec{5.f, 40.f}}) {
    EXPECT_EQ(fitted.DriftingDegree(probe), restored.DriftingDegree(probe));
  }

  // A flipped payload byte is caught by the container checksum.
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 20, SEEK_SET);
  int b = fgetc(f);
  fseek(f, 20, SEEK_SET);
  fputc(b ^ 0x10, f);
  fclose(f);
  DriftDetector corrupt_target;
  Status st = LoadDriftStats(&corrupt_target, path);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_FALSE(corrupt_target.fitted());
  std::remove(path.c_str());

  // Saving an unfitted detector is a FailedPrecondition, not a crash.
  DriftDetector unfitted;
  EXPECT_EQ(SaveDriftStats(unfitted, path).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DriftDetectorTest, RestoreRejectsStructurallyInvalidPayloads) {
  // Truncated: class count promises more than the buffer holds.
  {
    util::ByteWriter w;
    w.U32(2);
    w.U32(3);  // dim
    DriftDetector dd;
    util::ByteReader r(w.buffer());
    EXPECT_FALSE(dd.RestoreFrom(&r));
    EXPECT_FALSE(dd.fitted());
  }
  // Absurd dimension must be rejected before it drives the allocation.
  {
    util::ByteWriter w;
    w.U32(1);
    w.U32(0xffffffffu);
    DriftDetector dd;
    util::ByteReader r(w.buffer());
    EXPECT_FALSE(dd.RestoreFrom(&r));
  }
  // Non-positive MAD would divide by zero at scoring time.
  {
    util::ByteWriter w;
    w.U32(1);
    w.U32(1);
    w.Raw("\0\0\0\0", 4);  // one f32 centroid component
    w.F64(1.0);            // median
    w.F64(0.0);            // mad
    DriftDetector dd;
    util::ByteReader r(w.buffer());
    EXPECT_FALSE(dd.RestoreFrom(&r));
  }
}

TEST_F(ModelTest, DriftPipelineOnGraphs) {
  std::vector<GnnGraph> train(homo_->begin(), homo_->begin() + 100);
  ItgnnModel::Config cfg;
  cfg.num_scales = 2;
  cfg.embed_dim = 32;
  ItgnnModel model(cfg);
  TrainConfig tc;
  tc.epochs = 8;
  Trainer trainer(tc);
  trainer.TrainContrastive(&model, train);
  DriftDetector dd;
  dd.FitFromModel(&model, train);
  // Most in-distribution samples are not drifting.
  auto flags = dd.DetectDrifting(&model, train);
  int drifting = 0;
  for (bool f : flags) drifting += f;
  EXPECT_LT(drifting, static_cast<int>(train.size()) / 4);
}

}  // namespace
}  // namespace glint::gnn
