#include "core/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/obs.h"
#include "util/binio.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace glint::core {

namespace {

constexpr uint32_t kWalMagic = 0x4c415747;   // "GWAL"
constexpr uint32_t kSnapMagic = 0x504e5347;  // "GSNP"
constexpr uint32_t kVersion = 1;
constexpr size_t kWalHeaderBytes = 2 * sizeof(uint32_t);
/// Per-record frame ahead of the payload: length + checksum.
constexpr size_t kRecordFrameBytes = 2 * sizeof(uint32_t);
/// Refuse absurd record lengths so a corrupt length field cannot drive a
/// multi-gigabyte allocation.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

Status FsyncFile(std::FILE* f, const std::string& path) {
  if (::fsync(fileno(f)) != 0) return ErrnoStatus("cannot fsync", path);
  return Status::OK();
}

/// fsyncs a directory so a rename inside it is durable.
Status FsyncDir(const std::string& dir) {
  GLINT_FAULT_POINT("journal.dirsync");
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("cannot open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("cannot fsync dir", dir);
  return Status::OK();
}

}  // namespace

Journal::Journal(std::string dir) : Journal(std::move(dir), Config()) {}

Journal::Journal(std::string dir, Config config)
    : dir_(std::move(dir)), config_(config) {}

Journal::~Journal() {
  if (wal_ != nullptr) {
    std::fflush(wal_);
    std::fclose(wal_);
  }
}

Status Journal::CloseWal() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
  return Status::OK();
}

Status Journal::OpenWal(bool truncate) {
  CloseWal();
  GLINT_FAULT_POINT("wal.open");
  wal_ = std::fopen(wal_path().c_str(), truncate ? "wb" : "ab");
  if (wal_ == nullptr) {
    return ErrnoStatus("cannot open WAL", wal_path());
  }
  std::fseek(wal_, 0, SEEK_END);
  long size = std::ftell(wal_);
  if (size < 0) size = 0;
  if (truncate || static_cast<size_t>(size) < kWalHeaderBytes) {
    GLINT_FAULT_POINT("wal.header.write");
    const uint32_t header[2] = {kWalMagic, kVersion};
    if (std::fwrite(header, sizeof header, 1, wal_) != 1) {
      return ErrnoStatus("cannot write WAL header", wal_path());
    }
    GLINT_FAULT_POINT("wal.header.flush");
    if (std::fflush(wal_) != 0) {
      return ErrnoStatus("cannot flush WAL header", wal_path());
    }
  }
  return Status::OK();
}

Status Journal::Append(uint64_t seq, const std::vector<char>& payload) {
  GLINT_CHECK(recovered_);  // Recover() opens the WAL
  if (wal_ == nullptr) {
    // A previous post-snapshot reopen failed; refuse instead of writing
    // through a dead handle.
    return Status::IOError("WAL not open: " + wal_path());
  }
  GLINT_OBS_COUNT("glint.journal.appends", 1);
  util::ByteWriter frame;
  const uint32_t body_len =
      static_cast<uint32_t>(sizeof(uint64_t) + payload.size());
  util::ByteWriter body;
  body.U64(seq);
  body.Raw(payload.data(), payload.size());
  frame.U32(body_len);
  frame.U32(util::Crc32c(body.buffer().data(), body.buffer().size()));

  // The stdio buffer is empty here (every append ends with a flush), so
  // ftell is the true record boundary; a failed append is rolled back to
  // it so the next append cannot emit a duplicate-seq or interleaved
  // record after a transient failure.
  const long start_off = std::ftell(wal_);

  Status st = [&]() -> Status {
    GLINT_FAULT_POINT("wal.append.write");
    if (std::fwrite(frame.buffer().data(), 1, frame.size(), wal_) !=
        frame.size()) {
      return ErrnoStatus("cannot append WAL frame", wal_path());
    }
    if (fault::Registry::Armed()) {
      // Push the frame to the OS before the tear point so a crash here
      // leaves a frame-without-body torn record on disk — the torn-write
      // shape recovery must detect and truncate. Unarmed appends stay one
      // buffered write + one flush.
      std::fflush(wal_);
      GLINT_FAULT_POINT("wal.append.tear");
    }
    if (std::fwrite(body.buffer().data(), 1, body.size(), wal_) !=
        body.size()) {
      return ErrnoStatus("cannot append WAL record", wal_path());
    }
    GLINT_FAULT_POINT("wal.append.flush");
    if (std::fflush(wal_) != 0) {
      return ErrnoStatus("cannot flush WAL", wal_path());
    }
    return Status::OK();
  }();
  if (!st.ok()) {
    if (start_off >= 0) {
      std::fflush(wal_);
      if (::ftruncate(fileno(wal_), static_cast<off_t>(start_off)) == 0) {
        std::fseek(wal_, 0, SEEK_END);
      }
    }
    return st;
  }
  if (config_.sync_each_append) return Sync();
  return Status::OK();
}

Status Journal::Sync() {
  GLINT_CHECK(recovered_);
  GLINT_FAULT_POINT("wal.sync");
  return FsyncFile(wal_, wal_path());
}

Status Journal::WriteSnapshot(uint64_t seq,
                              const std::vector<char>& payload) {
  GLINT_CHECK(recovered_);
  GLINT_OBS_COUNT("glint.journal.snapshots", 1);
  GLINT_OBS_TIMER(timer, "glint.journal.snapshot_ms");
  const std::string tmp = snapshot_path() + ".tmp";

  GLINT_FAULT_POINT("snapshot.open");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("cannot open snapshot", tmp);

  util::ByteWriter header;
  header.U32(kSnapMagic);
  header.U32(kVersion);
  header.U64(seq);
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U32(util::Crc32c(payload.data(), payload.size()));

  auto write_all = [&]() -> Status {
    GLINT_FAULT_POINT("snapshot.write");
    if (std::fwrite(header.buffer().data(), 1, header.size(), f) !=
            header.size() ||
        std::fwrite(payload.data(), 1, payload.size(), f) != payload.size()) {
      return ErrnoStatus("cannot write snapshot", tmp);
    }
    GLINT_FAULT_POINT("snapshot.sync");
    if (std::fflush(f) != 0) return ErrnoStatus("cannot flush snapshot", tmp);
    return FsyncFile(f, tmp);
  };
  Status st = write_all();
  std::fclose(f);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }

  GLINT_FAULT_POINT("snapshot.rename");
  if (std::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    std::remove(tmp.c_str());
    return ErrnoStatus("cannot rename snapshot", tmp);
  }
  GLINT_RETURN_IF_ERROR(FsyncDir(dir_));

  // The snapshot is durable; the logged ops it covers are dead weight.
  // A crash before this truncate double-covers them, which replay's seq
  // filter makes harmless.
  GLINT_FAULT_POINT("wal.truncate");
  return OpenWal(/*truncate=*/true);
}

Status Journal::Recover(
    const std::function<Status(const std::vector<char>&)>& apply_snapshot,
    const std::function<Status(uint64_t, const std::vector<char>&)>&
        apply_record,
    RecoveryInfo* info) {
  GLINT_CHECK(!recovered_);
  *info = RecoveryInfo();

  GLINT_FAULT_POINT("journal.mkdir");
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("cannot create state dir", dir_);
  }

  // ---- Snapshot --------------------------------------------------------
  {
    GLINT_FAULT_POINT("snapshot.read");
    std::FILE* f = std::fopen(snapshot_path().c_str(), "rb");
    if (f != nullptr) {
      uint32_t magic = 0, version = 0, len = 0, crc = 0;
      uint64_t seq = 0;
      std::vector<char> payload;
      bool ok = std::fread(&magic, sizeof magic, 1, f) == 1 &&
                magic == kSnapMagic &&
                std::fread(&version, sizeof version, 1, f) == 1 &&
                version == kVersion &&
                std::fread(&seq, sizeof seq, 1, f) == 1 &&
                std::fread(&len, sizeof len, 1, f) == 1 &&
                std::fread(&crc, sizeof crc, 1, f) == 1 &&
                len <= kMaxRecordBytes;
      if (ok) {
        payload.resize(len);
        ok = std::fread(payload.data(), 1, len, f) == len &&
             util::Crc32c(payload.data(), len) == crc;
      }
      std::fclose(f);
      if (!ok) {
        // A snapshot is replaced atomically, so a bad one means external
        // corruption of the authoritative state — refuse to guess.
        return Status::IOError("corrupt snapshot: " + snapshot_path());
      }
      GLINT_RETURN_IF_ERROR(apply_snapshot(payload));
      info->snapshot_loaded = true;
      info->snapshot_seq = seq;
      GLINT_OBS_COUNT("glint.recovery.snapshots_loaded", 1);
    }
  }

  // ---- WAL tail --------------------------------------------------------
  GLINT_FAULT_POINT("wal.recover.read");
  std::FILE* f = std::fopen(wal_path().c_str(), "rb");
  if (f != nullptr) {
    size_t valid_end = 0;  // file offset after the last valid record
    uint32_t header[2] = {0, 0};
    if (std::fread(header, sizeof header, 1, f) == 1 &&
        header[0] == kWalMagic && header[1] == kVersion) {
      valid_end = kWalHeaderBytes;
      std::vector<char> body;
      for (;;) {
        uint32_t len = 0, crc = 0;
        if (std::fread(&len, sizeof len, 1, f) != 1 ||
            std::fread(&crc, sizeof crc, 1, f) != 1) {
          break;  // clean end or torn frame
        }
        if (len < sizeof(uint64_t) || len > kMaxRecordBytes) break;
        body.resize(len);
        if (std::fread(body.data(), 1, len, f) != len) break;  // torn body
        if (util::Crc32c(body.data(), len) != crc) break;      // corrupt
        util::ByteReader r(body.data(), body.size());
        uint64_t seq = 0;
        r.U64(&seq);
        if (seq <= info->snapshot_seq) {
          // Already folded into the snapshot (crash landed between the
          // snapshot rename and the WAL truncate).
          ++info->skipped_records;
        } else {
          std::vector<char> payload(body.begin() + sizeof(uint64_t),
                                    body.end());
          Status st = apply_record(seq, payload);
          if (!st.ok()) {
            std::fclose(f);
            return st;
          }
          ++info->tail_records;
        }
        valid_end += kRecordFrameBytes + len;
      }
    }
    std::fseek(f, 0, SEEK_END);
    const long file_size = std::ftell(f);
    std::fclose(f);
    if (file_size > 0 && static_cast<size_t>(file_size) > valid_end) {
      info->truncated_bytes = static_cast<size_t>(file_size) - valid_end;
      info->tail_torn = true;
      GLINT_OBS_COUNT("glint.recovery.torn_tails", 1);
      GLINT_OBS_COUNT("glint.recovery.truncated_bytes",
                      static_cast<int64_t>(info->truncated_bytes));
      GLINT_FAULT_POINT("wal.recover.truncate");
      if (::truncate(wal_path().c_str(),
                     static_cast<off_t>(valid_end)) != 0) {
        return ErrnoStatus("cannot truncate torn WAL tail", wal_path());
      }
    }
    GLINT_OBS_COUNT("glint.recovery.records_replayed",
                    static_cast<int64_t>(info->tail_records));
  }

  // Recovery never rewrites history: reopen for append (creating the file
  // and header if this is a fresh directory).
  recovered_ = true;
  Status st = OpenWal(/*truncate=*/false);
  if (!st.ok()) recovered_ = false;
  return st;
}

}  // namespace glint::core
