// Standalone ThreadPool stress driver for the ThreadSanitizer build
// (tools/check.sh configures -DGLINT_TSAN=ON and runs this binary). Kept
// gtest-free so the sanitizer build only needs glint_util.

#include <atomic>
#include <cstdio>
#include <vector>

#include "util/thread_pool.h"

int main() {
  constexpr int kRounds = 50;
  constexpr int64_t kN = 2048;
  glint::ThreadPool pool(4);

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(0, kN, 7, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (int64_t i = 0; i < kN; ++i) {
      if (hits[static_cast<size_t>(i)].load() != 1) {
        std::fprintf(stderr, "round %d: index %lld hit %d times\n", round,
                     static_cast<long long>(i),
                     hits[static_cast<size_t>(i)].load());
        return 1;
      }
    }

    // Nested calls run the inner range inline on pool workers.
    std::atomic<int64_t> total{0};
    pool.ParallelFor(0, 16, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        pool.ParallelFor(0, 32, 4,
                         [&](int64_t l2, int64_t h2) { total += h2 - l2; });
      }
    });
    if (total.load() != 16 * 32) {
      std::fprintf(stderr, "round %d: nested total %lld != 512\n", round,
                   static_cast<long long>(total.load()));
      return 1;
    }
  }
  std::printf("threadpool_stress: OK (%d rounds)\n", kRounds);
  return 0;
}
