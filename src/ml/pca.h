#pragma once

#include <vector>

#include "util/vecmath.h"

namespace glint::ml {

/// Principal component analysis via orthogonally-deflated power iteration
/// on the covariance matrix (sufficient for the small k used by Fig. 9's
/// 2-d projection of graph embeddings).
class Pca {
 public:
  struct Params {
    int num_components = 2;
    int power_iters = 200;
    uint64_t seed = 29;
  };

  Pca() : Pca(Params()) {}
  explicit Pca(Params params) : params_(params) {}

  /// Fits on `xs` (any dimension); stores mean and components.
  void Fit(const std::vector<FloatVec>& xs);

  /// Projects one vector into component space.
  FloatVec Transform(const FloatVec& x) const;

  /// Projects a batch.
  std::vector<FloatVec> TransformBatch(const std::vector<FloatVec>& xs) const;

  /// Variance captured by each component.
  const std::vector<double>& explained_variance() const { return variance_; }

  const std::vector<FloatVec>& components() const { return components_; }

 private:
  Params params_;
  FloatVec mean_;
  std::vector<FloatVec> components_;
  std::vector<double> variance_;
};

}  // namespace glint::ml
