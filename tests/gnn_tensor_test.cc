#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gnn/tensor.h"

namespace glint::gnn {
namespace {

Matrix RandMatrix(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (auto& v : m.data) v = static_cast<float>(rng.Gaussian(0, 1));
  return m;
}

// Numerical gradient check: `forward` maps parameter values to a scalar
// loss built on a fresh tape. We compare the autograd gradient against
// central finite differences for every parameter entry.
void CheckGradients(
    std::vector<Parameter*> params,
    const std::function<Tensor*(Tape*)>& forward, double tol = 2e-2) {
  // Analytic gradients.
  for (auto* p : params) p->ZeroGrad();
  {
    Tape tape;
    Tensor* loss = forward(&tape);
    tape.Backward(loss);
  }
  const double eps = 1e-3;
  for (auto* p : params) {
    for (size_t i = 0; i < p->value.data.size(); ++i) {
      const float orig = p->value.data[i];
      p->value.data[i] = orig + static_cast<float>(eps);
      double up, down;
      {
        Tape tape;
        up = forward(&tape)->value.data[0];
      }
      p->value.data[i] = orig - static_cast<float>(eps);
      {
        Tape tape;
        down = forward(&tape)->value.data[0];
      }
      p->value.data[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      const double analytic = p->grad.data[i];
      EXPECT_NEAR(analytic, numeric, tol + 0.05 * std::fabs(numeric))
          << "entry " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Forward correctness
// ---------------------------------------------------------------------------

TEST(TensorOps, MatMulForward) {
  Tape t;
  Matrix a(2, 3);
  a.data = {1, 2, 3, 4, 5, 6};
  Matrix b(3, 2);
  b.data = {7, 8, 9, 10, 11, 12};
  Tensor* c = MatMul(&t, t.Constant(a), t.Constant(b));
  EXPECT_FLOAT_EQ(c->value.At(0, 0), 58);
  EXPECT_FLOAT_EQ(c->value.At(0, 1), 64);
  EXPECT_FLOAT_EQ(c->value.At(1, 0), 139);
  EXPECT_FLOAT_EQ(c->value.At(1, 1), 154);
}

TEST(TensorOps, AddBroadcastsRow) {
  Tape t;
  Matrix a(2, 2);
  a.data = {1, 2, 3, 4};
  Matrix b(1, 2);
  b.data = {10, 20};
  Tensor* c = Add(&t, t.Constant(a), t.Constant(b));
  EXPECT_FLOAT_EQ(c->value.At(0, 0), 11);
  EXPECT_FLOAT_EQ(c->value.At(1, 1), 24);
}

TEST(TensorOps, ReluClamps) {
  Tape t;
  Matrix a(1, 3);
  a.data = {-1, 0, 2};
  Tensor* c = Relu(&t, t.Constant(a));
  EXPECT_FLOAT_EQ(c->value.At(0, 0), 0);
  EXPECT_FLOAT_EQ(c->value.At(0, 2), 2);
}

TEST(TensorOps, SigmoidRange) {
  Tape t;
  Matrix a(1, 2);
  a.data = {-100, 100};
  Tensor* c = Sigmoid(&t, t.Constant(a));
  EXPECT_NEAR(c->value.At(0, 0), 0, 1e-6);
  EXPECT_NEAR(c->value.At(0, 1), 1, 1e-6);
}

TEST(TensorOps, MeanMaxRows) {
  Tape t;
  Matrix a(2, 2);
  a.data = {1, 5, 3, 2};
  Tensor* mean = MeanRows(&t, t.Constant(a));
  Tensor* mx = MaxRows(&t, t.Constant(a));
  EXPECT_FLOAT_EQ(mean->value.At(0, 0), 2);
  EXPECT_FLOAT_EQ(mean->value.At(0, 1), 3.5);
  EXPECT_FLOAT_EQ(mx->value.At(0, 0), 3);
  EXPECT_FLOAT_EQ(mx->value.At(0, 1), 5);
}

TEST(TensorOps, ConcatShapes) {
  Tape t;
  Tensor* a = t.Constant(Matrix(2, 3, 1.f));
  Tensor* b = t.Constant(Matrix(2, 4, 2.f));
  Tensor* c = ConcatCols(&t, a, b);
  EXPECT_EQ(c->rows(), 2);
  EXPECT_EQ(c->cols(), 7);
  EXPECT_FLOAT_EQ(c->value.At(0, 0), 1.f);
  EXPECT_FLOAT_EQ(c->value.At(0, 6), 2.f);

  Tensor* d = ConcatRows(&t, t.Constant(Matrix(1, 3, 1.f)),
                         t.Constant(Matrix(2, 3, 2.f)));
  EXPECT_EQ(d->rows(), 3);
  EXPECT_FLOAT_EQ(d->value.At(2, 0), 2.f);
}

TEST(TensorOps, GatherRows) {
  Tape t;
  Matrix a(3, 2);
  a.data = {1, 2, 3, 4, 5, 6};
  Tensor* g = GatherRows(&t, t.Constant(a), {2, 0});
  EXPECT_FLOAT_EQ(g->value.At(0, 0), 5);
  EXPECT_FLOAT_EQ(g->value.At(1, 1), 2);
}

TEST(TensorOps, SpMMForward) {
  Tape t;
  SparseMatrix s;
  s.rows = 2;
  s.cols = 2;
  s.entries = {{0, 1, 2.f}, {1, 0, 3.f}};
  Matrix a(2, 1);
  a.data = {5, 7};
  Tensor* c = SpMM(&t, s, t.Constant(a));
  EXPECT_FLOAT_EQ(c->value.At(0, 0), 14);
  EXPECT_FLOAT_EQ(c->value.At(1, 0), 15);
}

TEST(TensorOps, SoftmaxRowSumsToOne) {
  Tape t;
  Matrix a(1, 4);
  a.data = {1, 2, 3, 4};
  auto p = SoftmaxRow(t.Constant(a));
  double sum = 0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(p[3], p[0]);
}

TEST(TensorOps, CrossEntropyOfConfidentCorrectIsSmall) {
  Tape t;
  Matrix logits(1, 2);
  logits.data = {-10, 10};
  Tensor* loss =
      SoftmaxCrossEntropy(&t, t.Constant(logits), /*label=*/1, 1.f);
  EXPECT_LT(loss->value.data[0], 1e-4);
}

TEST(TensorOps, BceWithLogitKnownValue) {
  Tape t;
  Matrix z(1, 1);
  z.data = {0};
  Tensor* loss = BceWithLogit(&t, t.Constant(z), 1, 1.f);
  EXPECT_NEAR(loss->value.data[0], std::log(2.0), 1e-6);
}

TEST(TensorOps, ContrastiveSamePullsTogether) {
  Tape t;
  Matrix a(1, 2), b(1, 2);
  a.data = {1, 0};
  b.data = {0, 1};
  Tensor* same = ContrastiveLoss(&t, t.Constant(a), t.Constant(b), true, 2.f);
  EXPECT_NEAR(same->value.data[0], 2.0, 1e-6);  // squared distance
}

TEST(TensorOps, ContrastiveDifferentUsesMargin) {
  Tape t;
  Matrix a(1, 1), b(1, 1);
  a.data = {0};
  b.data = {1};  // distance 1, margin 3 -> (3-1)^2 = 4
  Tensor* diff =
      ContrastiveLoss(&t, t.Constant(a), t.Constant(b), false, 3.f);
  EXPECT_NEAR(diff->value.data[0], 4.0, 1e-5);
  // Beyond the margin the loss vanishes.
  Matrix c(1, 1);
  c.data = {10};
  Tensor* far = ContrastiveLoss(&t, t.Constant(a), t.Constant(c), false, 3.f);
  EXPECT_NEAR(far->value.data[0], 0.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Gradient checks (numerical)
// ---------------------------------------------------------------------------

TEST(GradCheck, MatMulChain) {
  Parameter w(RandMatrix(3, 2, 1));
  Matrix x = RandMatrix(2, 3, 2);
  CheckGradients({&w}, [&](Tape* t) {
    return SumAll(t, MatMul(t, t->Constant(x), t->Leaf(&w)));
  });
}

TEST(GradCheck, AddBroadcastBias) {
  Parameter b(RandMatrix(1, 3, 3));
  Matrix x = RandMatrix(4, 3, 4);
  CheckGradients({&b}, [&](Tape* t) {
    return SumAll(t, Add(t, t->Constant(x), t->Leaf(&b)));
  });
}

TEST(GradCheck, ReluSigmoidTanhChain) {
  Parameter w(RandMatrix(3, 3, 5));
  Matrix x = RandMatrix(2, 3, 6);
  CheckGradients({&w}, [&](Tape* t) {
    Tensor* h = MatMul(t, t->Constant(x), t->Leaf(&w));
    return SumAll(t, Tanh(t, Sigmoid(t, Relu(t, h))));
  });
}

TEST(GradCheck, MulAndScale) {
  Parameter a(RandMatrix(2, 2, 7));
  Parameter b(RandMatrix(2, 2, 8));
  CheckGradients({&a, &b}, [&](Tape* t) {
    return SumAll(t, Scale(t, Mul(t, t->Leaf(&a), t->Leaf(&b)), 0.5f));
  });
}

TEST(GradCheck, ConcatAndReadouts) {
  Parameter w(RandMatrix(3, 4, 9));
  Matrix x = RandMatrix(3, 3, 10);
  CheckGradients({&w}, [&](Tape* t) {
    Tensor* h = MatMul(t, t->Constant(x), t->Leaf(&w));
    Tensor* ro = ConcatCols(t, MeanRows(t, h), MaxRows(t, h));
    return SumAll(t, ro);
  });
}

TEST(GradCheck, GatherAndRowScale) {
  Parameter w(RandMatrix(2, 3, 11));
  Parameter gate(RandMatrix(2, 1, 12));
  CheckGradients({&w, &gate}, [&](Tape* t) {
    Tensor* scaled = RowScale(t, t->Leaf(&w), Sigmoid(t, t->Leaf(&gate)));
    return SumAll(t, GatherRows(t, scaled, {1, 0, 1}));
  });
}

TEST(GradCheck, SpMMGraphConv) {
  SparseMatrix adj;
  adj.rows = 3;
  adj.cols = 3;
  adj.entries = {{0, 0, 0.5f}, {0, 1, 0.5f}, {1, 1, 1.f}, {2, 0, 0.7f},
                 {2, 2, 0.3f}};
  Parameter w(RandMatrix(2, 2, 13));
  Matrix x = RandMatrix(3, 2, 14);
  CheckGradients({&w}, [&](Tape* t) {
    Tensor* h = MatMul(t, t->Constant(x), t->Leaf(&w));
    return SumAll(t, Relu(t, SpMM(t, adj, h)));
  });
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Parameter w(RandMatrix(4, 2, 15));
  Matrix x = RandMatrix(1, 4, 16);
  CheckGradients({&w}, [&](Tape* t) {
    Tensor* logits = MatMul(t, t->Constant(x), t->Leaf(&w));
    return SoftmaxCrossEntropy(t, logits, 1, 1.3f);
  });
}

TEST(GradCheck, BceWithLogit) {
  Parameter w(RandMatrix(3, 1, 17));
  Matrix x = RandMatrix(1, 3, 18);
  CheckGradients({&w}, [&](Tape* t) {
    Tensor* z = MatMul(t, t->Constant(x), t->Leaf(&w));
    return BceWithLogit(t, z, 0, 0.7f);
  });
}

TEST(GradCheck, ContrastiveBothBranches) {
  Parameter wa(RandMatrix(1, 4, 19));
  Parameter wb(RandMatrix(1, 4, 20));
  CheckGradients({&wa, &wb}, [&](Tape* t) {
    return ContrastiveLoss(t, t->Leaf(&wa), t->Leaf(&wb), true, 2.f);
  });
  CheckGradients({&wa, &wb}, [&](Tape* t) {
    return ContrastiveLoss(t, t->Leaf(&wa), t->Leaf(&wb), false, 5.f);
  });
}

TEST(GradCheck, SoftmaxRowOpAttention) {
  Parameter scores(RandMatrix(1, 3, 21));
  Matrix h0 = RandMatrix(2, 2, 22);
  Matrix h1 = RandMatrix(2, 2, 23);
  Matrix h2 = RandMatrix(2, 2, 24);
  CheckGradients({&scores}, [&](Tape* t) {
    Tensor* beta = SoftmaxRowOp(t, t->Leaf(&scores));
    Tensor* out = ScaleByEntry(t, t->Constant(h0), beta, 0);
    out = Add(t, out, ScaleByEntry(t, t->Constant(h1), beta, 1));
    out = Add(t, out, ScaleByEntry(t, t->Constant(h2), beta, 2));
    return SumAll(t, out);
  });
}

TEST(GradCheck, ConcatRowsPath) {
  Parameter a(RandMatrix(2, 3, 25));
  Parameter b(RandMatrix(1, 3, 26));
  CheckGradients({&a, &b}, [&](Tape* t) {
    return SumAll(t, ConcatRows(t, t->Leaf(&a), t->Leaf(&b)));
  });
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  Parameter w(Matrix(1, 1, 0.f));
  Adam adam({0.1, 0.9, 0.999, 1e-8, 0});
  for (int i = 0; i < 300; ++i) {
    w.grad.data[0] = 2 * (w.value.data[0] - 3.f);
    adam.Step({&w});
  }
  EXPECT_NEAR(w.value.data[0], 3.0, 0.05);
}

TEST(AdamTest, SkipsFrozenParameters) {
  Parameter w(Matrix(1, 1, 1.f));
  w.frozen = true;
  Adam adam;
  w.grad.data[0] = 100.f;
  adam.Step({&w});
  EXPECT_FLOAT_EQ(w.value.data[0], 1.f);
  EXPECT_FLOAT_EQ(w.grad.data[0], 0.f);  // gradient still cleared
}

TEST(TapeTest, LeafAccumulatesIntoParameter) {
  Parameter w(Matrix(1, 2, 1.f));
  w.ZeroGrad();
  Tape tape;
  Tensor* loss = SumAll(&tape, tape.Leaf(&w));
  tape.Backward(loss);
  EXPECT_FLOAT_EQ(w.grad.data[0], 1.f);
  EXPECT_FLOAT_EQ(w.grad.data[1], 1.f);
}

TEST(TapeTest, ConstantsHaveNoGradient) {
  Tape tape;
  Tensor* c = tape.Constant(Matrix(2, 2, 1.f));
  EXPECT_FALSE(c->requires_grad);
  Tensor* d = Relu(&tape, c);
  EXPECT_FALSE(d->requires_grad);
}

}  // namespace
}  // namespace glint::gnn
