// Regenerates Table 3: the interaction-graph datasets — homogeneous IFTTT
// (labeled + unlabeled), homogeneous SmartThings, and the 5-platform
// heterogeneous sets — with their vulnerable-graph counts and serialized
// store sizes (the paper's 21.8G/0.018G/81.6G DGL files, at our scale).

#include <cstdio>

#include "bench_common.h"
#include "graph/dataset_store.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT

namespace {

struct DatasetRow {
  const char* type;
  const char* platforms;
  const char* label;
  graph::GraphDataset ds;
  int paper_total;
  int paper_unsafe;  // -1 for unlabeled
};

}  // namespace

int main() {
  Banner("Table 3: interaction graph datasets", "Table 3");
  auto corpus = DefaultCorpus();
  auto ifttt = PlatformRules(corpus, rules::Platform::kIFTTT);
  auto smartthings = PlatformRules(corpus, rules::Platform::kSmartThings);

  std::printf("building datasets (1:10 scale of the paper counts)...\n");
  std::vector<DatasetRow> rows;
  rows.push_back({"Homo.", "IFTTT", "labeled",
                  BuildGraphs(ifttt, 600, 31), 6000, 1473});
  rows.push_back({"Homo.", "IFTTT", "unlabeled",
                  BuildGraphs(ifttt, 1000, 32), 10000, -1});
  rows.push_back({"Homo.", "SmartThings", "labeled",
                  BuildGraphs(smartthings, 165, 33), 165, 36});
  rows.push_back({"Hetero.", "5 platforms", "labeled",
                  BuildGraphs(corpus, 1276, 34), 12758, 3828});
  rows.push_back({"Hetero.", "5 platforms", "unlabeled",
                  BuildGraphs(corpus, 1944, 35), 19440, -1});

  TablePrinter t({"type", "platforms", "label", "paper total", "ours total",
                  "paper unsafe", "ours unsafe", "store size"});
  for (const auto& row : rows) {
    const size_t bytes = graph::DatasetStore::SerializedBytes(row.ds);
    t.AddRow({row.type, row.platforms, row.label,
              StrFormat("%d", row.paper_total),
              StrFormat("%zu", row.ds.size()),
              row.paper_unsafe < 0 ? "*" : StrFormat("%d", row.paper_unsafe),
              row.paper_unsafe < 0
                  ? StrFormat("(%d)", row.ds.CountVulnerable())
                  : StrFormat("%d", row.ds.CountVulnerable()),
              StrFormat("%.1f MB", static_cast<double>(bytes) / 1e6)});
  }
  t.Print();
  std::printf("paper unsafe ratios: IFTTT 24.6%%, SmartThings 21.8%%, hetero "
              "30.0%%\n");
  for (const auto& row : rows) {
    if (row.paper_unsafe < 0) continue;
    std::printf("ours %s/%s: %.1f%% unsafe\n", row.type, row.platforms,
                100.0 * row.ds.CountVulnerable() /
                    static_cast<double>(row.ds.size()));
  }

  // Graph size distribution (the paper builds 2..50-node graphs).
  int hist[6] = {0};  // 2-5, 6-10, 11-20, 21-30, 31-40, 41-50
  double mean_nodes = 0, mean_edges = 0;
  const auto& hetero = rows[3].ds;
  for (const auto& g : hetero.graphs) {
    const int n = g.num_nodes();
    mean_nodes += n;
    mean_edges += g.num_edges();
    if (n <= 5) hist[0]++;
    else if (n <= 10) hist[1]++;
    else if (n <= 20) hist[2]++;
    else if (n <= 30) hist[3]++;
    else if (n <= 40) hist[4]++;
    else hist[5]++;
  }
  std::printf("\nheterogeneous graph sizes: mean %.1f nodes, %.1f edges\n",
              mean_nodes / static_cast<double>(hetero.size()),
              mean_edges / static_cast<double>(hetero.size()));
  std::printf("  2-5: %d  6-10: %d  11-20: %d  21-30: %d  31-40: %d  "
              "41-50: %d\n", hist[0], hist[1], hist[2], hist[3], hist[4],
              hist[5]);

  // Round-trip the SmartThings store as an I/O check.
  const std::string path = "/tmp/glint_bench_smartthings.bin";
  if (graph::DatasetStore::Save(rows[2].ds, path).ok()) {
    auto loaded = graph::DatasetStore::Load(path);
    std::printf("\nDGL-substitute store round-trip: %s (%zu graphs)\n",
                loaded.ok() ? "OK" : loaded.status().ToString().c_str(),
                loaded.ok() ? loaded.value().size() : 0);
    std::remove(path.c_str());
  }
  return 0;
}
