#include "core/session.h"

#include <cstddef>
#include <utility>

#include "obs/obs.h"

namespace glint::core {

DeploymentSession::DeploymentSession(const TrainedDetector* detector,
                                     Config config)
    : detector_(detector),
      config_(config),
      live_(
          graph::LiveGraph::Config{
              config.window_hours,
              detector->options().builder.device_edges},
          [detector](const rules::Rule& a, const rules::Rule& b) {
            return detector->Correlated(a, b);
          },
          [detector](const rules::Rule& r) { return detector->MakeNode(r); }),
      tensor_cache_(config.cache_capacity) {
  GLINT_CHECK(detector_ != nullptr);
}

int DeploymentSession::AddRule(const rules::Rule& rule) {
  return live_.AddRule(rule);
}

bool DeploymentSession::RemoveRule(int rule_id) {
  return live_.RemoveRule(rule_id);
}

void DeploymentSession::OnEvent(const graph::Event& e) {
  ++events_;
  live_.OnEvent(e);
}

DeploymentSession::CacheStats DeploymentSession::Stats() const {
  CacheStats s;
  s.inspects = inspects_;
  s.events = events_;
  s.rules = static_cast<uint64_t>(live_.num_rules());
  s.verdict_hits = verdict_hits_;
  s.verdict_misses = inspects_ - verdict_hits_;
  s.tensor_hits = tensor_cache_.hits();
  s.tensor_misses = tensor_cache_.misses();
  return s;
}

ThreatWarning DeploymentSession::Inspect(double now_hours) {
  return Render(live_.RealTimeEdges(now_hours));
}

Result<ThreatWarning> DeploymentSession::TryInspect(double now_hours) {
  if (now_hours + 1e-9 < live_.latest_event_hours()) {
    return Status::InvalidArgument(
        "inspection time " + std::to_string(now_hours) +
        "h precedes the latest ingested event at " +
        std::to_string(live_.latest_event_hours()) + "h");
  }
  return Inspect(now_hours);
}

ThreatWarning DeploymentSession::InspectStatic() {
  return Render(live_.StaticEdges());
}

DeploymentSession::Pending DeploymentSession::BeginInspect(double now_hours) {
  return Begin(live_.RealTimeEdges(now_hours));
}

DeploymentSession::Pending DeploymentSession::Begin(
    const std::vector<graph::Edge>& edges) {
  ++inspects_;
  Pending pending;
  gnn::GnnGraphCache::Key& key = key_scratch_;
  live_.IdentityHashesInto(&key.node_ids);
  key.edges.clear();
  key.edges.reserve(edges.size());
  for (const auto& e : edges) key.edges.emplace_back(e.src, e.dst);

  // Fast path: the graph structure is unchanged since a recent inspection,
  // so the verdict is too (Analyze is deterministic in the graph).
  for (auto& v : verdicts_) {
    if (v.key == key) {
      v.tick = ++tick_;
      ++verdict_hits_;
      GLINT_OBS_COUNT("glint.session.verdict_cache.hits", 1);
      pending.cached = true;
      pending.warning = v.warning;
      return pending;
    }
  }
  GLINT_OBS_COUNT("glint.session.verdict_cache.misses", 1);

  pending.graph = live_.Materialize(edges);
  pending.gg = tensor_cache_.Find(key);
  if (pending.gg == nullptr) {
    pending.gg = tensor_cache_.Insert(key, gnn::ToGnnGraph(pending.graph));
  }
  return pending;
}

ThreatWarning DeploymentSession::FinishInspect(const ThreatWarning& warning) {
  if (verdicts_.size() >= config_.cache_capacity && !verdicts_.empty()) {
    size_t oldest = 0;
    for (size_t i = 1; i < verdicts_.size(); ++i) {
      if (verdicts_[i].tick < verdicts_[oldest].tick) oldest = i;
    }
    verdicts_.erase(verdicts_.begin() + static_cast<ptrdiff_t>(oldest));
  }
  // Copy (not move) the key so the scratch keeps its storage for reuse.
  verdicts_.push_back(Verdict{key_scratch_, warning, ++tick_});
  return warning;
}

ThreatWarning DeploymentSession::Render(
    const std::vector<graph::Edge>& edges) {
  GLINT_OBS_SPAN(span, "glint.session.inspect_ms");
  Pending pending = Begin(edges);
  if (pending.cached) return pending.warning;
  return FinishInspect(detector_->Analyze(*pending.gg, pending.graph));
}

}  // namespace glint::core
