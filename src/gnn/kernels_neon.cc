// NEON kernel backend (aarch64). Compiled with -ffp-contract=off; NEON is
// baseline on aarch64, so no runtime CPUID gate is needed — dispatch simply
// prefers this table there.
//
// Bit-identity: NEON vectors are 4 lanes wide, so the float kernels run two
// q-registers side by side to emulate the same 8 striped accumulation lanes
// (and the double kernels two 2-lane registers for the 4 double lanes) that
// the scalar and AVX2 backends use, then reduce with the shared fixed
// trees. Mul and add stay separate instructions (no vfma), and tails run
// the scalar code into the striped lanes.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "gnn/kernels.h"

namespace glint::gnn::kernels {

namespace {

float NeonDot(const float* a, const float* b, int n) {
  float32x4_t acc_lo = vdupq_n_f32(0.f);  // lanes 0..3
  float32x4_t acc_hi = vdupq_n_f32(0.f);  // lanes 4..7
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8) {
    acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc_hi = vaddq_f32(acc_hi,
                       vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  float lane[8];
  vst1q_f32(lane, acc_lo);
  vst1q_f32(lane + 4, acc_hi);
  for (int i = n8; i < n; ++i) lane[i & 7] += a[i] * b[i];
  return detail::ReduceTree8(lane);
}

void NeonAxpy(float* y, float alpha, const float* x, int n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    vst1q_f32(y + i,
              vaddq_f32(vld1q_f32(y + i), vmulq_f32(va, vld1q_f32(x + i))));
  }
  for (int i = n4; i < n; ++i) y[i] += alpha * x[i];
}

void NeonAddInto(float* y, const float* x, int n) {
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (int i = n4; i < n; ++i) y[i] += x[i];
}

void NeonMulAddInto(float* y, const float* a, const float* b, int n) {
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i),
                               vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i))));
  }
  for (int i = n4; i < n; ++i) y[i] += a[i] * b[i];
}

void NeonMulInto(float* out, const float* a, const float* b, int n) {
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (int i = n4; i < n; ++i) out[i] = a[i] * b[i];
}

void NeonScaleInto(float* out, float s, const float* x, int n) {
  const float32x4_t vs = vdupq_n_f32(s);
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vs, vld1q_f32(x + i)));
  }
  for (int i = n4; i < n; ++i) out[i] = s * x[i];
}

void NeonReluInto(float* out, const float* x, int n) {
  // Compare-and-mask, not vmaxq: max(-0,+0) keeps -0, the scalar ternary
  // returns +0 for every non-positive input.
  const float32x4_t zero = vdupq_n_f32(0.f);
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    const float32x4_t vx = vld1q_f32(x + i);
    const uint32x4_t mask = vcgtq_f32(vx, zero);
    vst1q_f32(out + i, vreinterpretq_f32_u32(vandq_u32(
                           vreinterpretq_u32_f32(vx), mask)));
  }
  for (int i = n4; i < n; ++i) out[i] = x[i] > 0 ? x[i] : 0.f;
}

double NeonSumDouble(const double* x, int n) {
  float64x2_t acc_lo = vdupq_n_f64(0.0);  // lanes 0..1
  float64x2_t acc_hi = vdupq_n_f64(0.0);  // lanes 2..3
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    acc_lo = vaddq_f64(acc_lo, vld1q_f64(x + i));
    acc_hi = vaddq_f64(acc_hi, vld1q_f64(x + i + 2));
  }
  double lane[4];
  vst1q_f64(lane, acc_lo);
  vst1q_f64(lane + 2, acc_hi);
  for (int i = n4; i < n; ++i) lane[i & 3] += x[i];
  return detail::ReduceTree4(lane);
}

void NeonDivDouble(double* x, double denom, int n) {
  const float64x2_t vd = vdupq_n_f64(denom);
  const int n2 = n & ~1;
  for (int i = 0; i < n2; i += 2) {
    vst1q_f64(x + i, vdivq_f64(vld1q_f64(x + i), vd));
  }
  for (int i = n2; i < n; ++i) x[i] /= denom;
}

}  // namespace

const KernelBackend kNeonBackend = {
    "neon",
    static_cast<int>(Backend::kNeon),
    NeonDot,
    NeonAxpy,
    NeonAddInto,
    NeonMulAddInto,
    NeonMulInto,
    NeonScaleInto,
    NeonReluInto,
    NeonSumDouble,
    NeonDivDouble,
};

}  // namespace glint::gnn::kernels

#endif  // __aarch64__
