// Reproduces the running example of the paper: the Table 1 / Fig. 1
// interaction graph and the Table 4 threat-type settings, analyzed by the
// ground-truth ThreatAnalyzer.

#include <cstdio>

#include "bench_common.h"
#include "graph/threat_analyzer.h"

using namespace glint;          // NOLINT
using namespace glint::bench;   // NOLINT

namespace {

void PrintFindings(const graph::InteractionGraph& g,
                   const std::vector<graph::ThreatFinding>& findings) {
  for (const auto& f : findings) {
    std::printf("  %-18s nodes:", graph::ThreatTypeName(f.type));
    for (int n : f.nodes) std::printf(" %d", n + 1);  // 1-based as in paper
    std::printf("\n");
  }
  (void)g;
}

}  // namespace

int main() {
  graph::GraphBuilder builder({}, &WordModel(), &SentenceModel());

  Banner("Running example: Table 1 / Figure 1 interaction graph",
         "Table 1, Fig. 1");
  auto table1 = rules::CorpusGenerator::Table1Rules();
  auto g1 = builder.BuildFromRules(table1);
  TablePrinter t1({"node", "platform", "rule"});
  for (int i = 0; i < g1.num_nodes(); ++i) {
    const auto& r = g1.nodes()[static_cast<size_t>(i)].rule;
    t1.AddRow({StrFormat("%d", i + 1), rules::PlatformName(r.platform),
               r.text.substr(0, 70)});
  }
  t1.Print();
  std::printf("graph: %d nodes, %d edges, heterogeneous=%s, vulnerable=%s\n",
              g1.num_nodes(), g1.num_edges(),
              g1.IsHeterogeneous() ? "yes" : "no",
              g1.vulnerable() ? "YES" : "no");
  std::printf("paper: \"the window cannot open when smoke is detected\" —\n"
              "       rules 5/6 conflict on the window, 6/9 on the lock.\n");
  std::printf("detected threats:\n");
  PrintFindings(g1, graph::ThreatAnalyzer::DetectClassic(g1));

  Banner("Threat-type settings of Table 4 (labeling criteria)", "Table 4");
  auto table4 = rules::CorpusGenerator::Table4Settings();
  auto g4 = builder.BuildFromRules(table4);
  struct Row {
    const char* name;
    std::vector<graph::ThreatFinding> findings;
  };
  const Row rows[] = {
      {"condition bypass", graph::ThreatAnalyzer::DetectConditionBypass(g4)},
      {"condition block", graph::ThreatAnalyzer::DetectConditionBlock(g4)},
      {"action revert", graph::ThreatAnalyzer::DetectActionRevert(g4)},
      {"action conflict", graph::ThreatAnalyzer::DetectActionConflict(g4)},
      {"action loop", graph::ThreatAnalyzer::DetectActionLoop(g4)},
      {"goal conflict", graph::ThreatAnalyzer::DetectGoalConflict(g4)},
  };
  TablePrinter t4({"threat type (paper settings)", "detected", "culprit settings"});
  for (const auto& row : rows) {
    std::string culprits;
    for (const auto& f : row.findings) {
      for (int n : f.nodes) culprits += StrFormat("%d ", n + 1);
    }
    t4.AddRow({row.name, row.findings.empty() ? "no" : "yes", culprits});
  }
  t4.Print();

  Banner("New threat types (Sec. 4.7) on Home Assistant blueprints",
         "Sec. 4.7");
  const char* expected[] = {"action_block", "action_ablation",
                            "trigger_intake", "condition_duplicate"};
  auto groups = rules::CorpusGenerator::NewThreatBlueprints();
  TablePrinter tn({"blueprint group", "expected", "detected"});
  for (size_t i = 0; i < groups.size(); ++i) {
    auto g = builder.BuildFromRules(groups[i]);
    auto findings = graph::ThreatAnalyzer::DetectNewTypes(g);
    std::string detected;
    for (const auto& f : findings) {
      detected += std::string(graph::ThreatTypeName(f.type)) + " ";
    }
    tn.AddRow({StrFormat("%zu", i + 1), expected[i], detected});
  }
  tn.Print();
  return 0;
}
